// Package rfid is a from-scratch reproduction of "Revisiting Tag Collision
// Problem in RFID Systems" (Yang et al., ICPP 2010): the Quick Collision
// Detection (QCD) scheme — a bitwise-complement collision preamble that
// replaces CRC-based collision detection — together with every substrate
// the paper's evaluation rests on.
//
// # What is implemented
//
//   - Bit-level RF channel where concurrent transmissions overlap as a
//     bitwise Boolean sum (the paper's ∨ operator).
//   - Collision detectors: QCD (r ‖ r̄ preamble, Theorem 1), the CRC-CD
//     baseline (ID ‖ crc(ID) in every slot, with real CRC-5/16/32 engines
//     built from first principles), and an idealised oracle for ablations.
//   - Anti-collision protocols: framed slotted ALOHA (constant frame,
//     Schoute dynamic, EPC Gen-2 Q-adaptive), binary tree splitting with
//     ABS, and query tree with AQS plus a blocker-tag adversary.
//   - The paper's evaluation harness: τ-per-bit timing, slot censuses,
//     throughput, accuracy, utilisation rate, identification delay,
//     efficiency improvement; deterministic parallel Monte-Carlo rounds;
//     and the Table V multi-reader floor (100 readers, 100 m × 100 m, 3 m
//     range).
//
// # Quick start
//
//	cfg := rfid.Config{
//	    Tags: 500, Rounds: 10, Seed: 1,
//	    Algorithm: rfid.AlgFSA, FrameSize: 300,
//	    Detector: rfid.DetQCD, Strength: 8,
//	}
//	agg, err := rfid.Run(cfg)
//	if err != nil { ... }
//	fmt.Println(agg.TimeMicros.Mean(), agg.Throughput.Mean())
//
// Every table and figure of the paper can be regenerated through
// RunExperiment (or the cmd/paper binary); see DESIGN.md for the
// experiment index and EXPERIMENTS.md for paper-vs-measured results.
//
// Alongside the one-shot CLIs (cmd/paper, cmd/rfidsim, cmd/qcdbench),
// cmd/rfidd serves experiments over HTTP: submissions queue onto a
// bounded worker pool and identical configurations are answered from a
// content-addressed result cache — see the README's "Running as a
// service" section.
package rfid
