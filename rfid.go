package rfid

import (
	"context"

	"repro/internal/air"
	"repro/internal/aloha"
	"repro/internal/analytic"
	"repro/internal/bitstr"
	"repro/internal/btree"
	"repro/internal/crc"
	"repro/internal/deploy"
	"repro/internal/detect"
	"repro/internal/epc"
	"repro/internal/estimate"
	"repro/internal/experiment"
	"repro/internal/gen2"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/obs"
	"repro/internal/obs/audit"
	"repro/internal/privacy"
	"repro/internal/prng"
	"repro/internal/qtree"
	"repro/internal/report"
	"repro/internal/signal"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tagmodel"
	"repro/internal/timing"
	"repro/internal/trace"
)

// ---- Simulation API ----

// Config describes one identification experiment; see the field docs on
// the underlying type for defaults (64-bit IDs, strength 8, τ = 1 μs,
// GOMAXPROCS workers).
type Config = sim.Config

// Aggregate is the deterministic cross-round summary Run produces.
type Aggregate = sim.Aggregate

// Session holds the metrics of a single identification run.
type Session = metrics.Session

// Census is the idle/single/collided slot count of a session.
type Census = metrics.Census

// Algorithm names for Config.Algorithm.
const (
	AlgFSA       = sim.AlgFSA       // framed slotted ALOHA
	AlgBT        = sim.AlgBT        // binary tree splitting
	AlgQAdaptive = sim.AlgQAdaptive // EPC Gen-2 Q algorithm
	AlgQT        = sim.AlgQT        // query tree
	AlgEDFSA     = sim.AlgEDFSA     // enhanced dynamic FSA (FrameSize = cap)
)

// Detector names for Config.Detector.
const (
	DetQCD    = sim.DetQCD    // the paper's contribution
	DetCRCCD  = sim.DetCRCCD  // the CRC-based baseline
	DetOracle = sim.DetOracle // idealised lower bound
)

// Frame-policy names for Config.FramePolicy (FSA only).
const (
	PolicyFixed      = sim.PolicyFixed
	PolicySchoute    = sim.PolicySchoute
	PolicyLowerBound = sim.PolicyLowerBound
	PolicyOptimal    = sim.PolicyOptimal
)

// Simulation modes for Config.Mode. The default ("" or ModeExact) is
// the bit-exact per-tag simulation; ModeStat is the opt-in vectorised
// Monte-Carlo mode — same distributions at a fraction of the cost, for
// framed-ALOHA algorithms on the ideal channel (see internal/sim for
// the equivalence contract).
const (
	ModeExact = sim.ModeExact
	ModeStat  = sim.ModeStat
)

// Run executes Config.Rounds Monte-Carlo identification sessions in
// parallel and folds them into a deterministic Aggregate.
func Run(c Config) (*Aggregate, error) { return sim.Run(c) }

// RunContext is Run honouring a context: cancellation is checked between
// rounds, so long experiments can be aborted by a timeout or an explicit
// cancel (the rfidd service relies on this for job cancellation).
func RunContext(ctx context.Context, c Config) (*Aggregate, error) { return sim.RunContext(ctx, c) }

// RunRound executes one session with an explicit round seed; useful when
// the caller wants the raw per-tag delays of a single run.
func RunRound(c Config, roundSeed uint64) (*Session, error) { return sim.RunRound(c, roundSeed) }

// ---- Observability: verdict auditing and live telemetry ----

// Auditor accumulates the shadow-oracle verdict confusion matrix; see
// EnableAudit and Auditor.Report.
type Auditor = audit.Auditor

// AuditReport is the auditor's JSON-ready snapshot: per-detector
// confusion cells, measured vs analytic false-single rates, and the
// captured misclassification exemplars.
type AuditReport = audit.Report

// AuditExemplar is one captured misclassified slot.
type AuditExemplar = audit.Exemplar

// EnableAudit turns on shadow-oracle verdict auditing process-wide:
// every subsequent run re-classifies each slot with the ground-truth
// oracle alongside its configured detector and folds the result into
// the returned Auditor (retaining at most exemplarCap misclassified
// slots; <= 0 uses the default 64). Auditing only observes — audited
// runs stay bit-identical to unaudited ones — and costs nothing once
// DisableAudit is called.
func EnableAudit(exemplarCap int) *Auditor {
	a := audit.New(obs.NewRegistry(), audit.Options{ExemplarCap: exemplarCap})
	sim.InstrumentAudit(a)
	return a
}

// DisableAudit turns shadow-oracle auditing back off.
func DisableAudit() { sim.UninstrumentAudit() }

// TelemetryBus is a bounded pub/sub stream of live experiment events
// ("round" progress, "frame" censuses, "audit" hits); attach one to a
// run with WithTelemetry and consume it via TelemetryBus.Subscribe.
type TelemetryBus = obs.Bus

// TelemetryEvent is one event on a TelemetryBus.
type TelemetryEvent = obs.StreamEvent

// TelemetrySubscription is one consumer's view of a TelemetryBus.
type TelemetrySubscription = obs.Subscription

// NewTelemetryBus returns a bus retaining historyCap events for replay.
func NewTelemetryBus(historyCap int) *TelemetryBus { return obs.NewBus(historyCap) }

// WithTelemetry returns a context that makes RunContext publish live
// progress events onto bus (the rfidd service streams these over SSE).
func WithTelemetry(ctx context.Context, bus *TelemetryBus) context.Context {
	return obs.WithBus(ctx, bus)
}

// ---- Detection API (the paper's core) ----

// Detector is a pluggable collision-detection scheme.
type Detector = detect.Detector

// SlotType classifies a slot: idle, single or collided.
type SlotType = signal.SlotType

// Slot types.
const (
	Idle     = signal.Idle
	Single   = signal.Single
	Collided = signal.Collided
)

// NewQCD returns the paper's Quick Collision Detection scheme with the
// given strength (random-integer bits; the paper recommends 8) over
// idBits-bit tag IDs.
func NewQCD(strength, idBits int) Detector { return detect.NewQCD(strength, idBits) }

// NewCRCCD returns the CRC-CD baseline using the named CRC preset
// ("CRC-32/IEEE", "CRC-16/EPC", "CRC-5/EPC", ...). ok is false for an
// unknown preset.
func NewCRCCD(presetName string, idBits int) (Detector, bool) {
	p, ok := crc.ByName(presetName)
	if !ok {
		return nil, false
	}
	return detect.NewCRCCD(p, idBits), true
}

// NewOracle returns the idealised detector used in ablations.
func NewOracle(idBits int) Detector { return detect.NewOracle(1, idBits) }

// ---- Bit-level API ----

// BitString is a fixed-length bit string; signals, IDs and preambles are
// BitStrings.
type BitString = bitstr.BitString

// ParseBits builds a BitString from a "0101..." literal.
func ParseBits(s string) (BitString, error) { return bitstr.Parse(s) }

// Overlap returns the bitwise Boolean sum of concurrent transmissions —
// the signal a reader receives when several tags answer in one slot.
func Overlap(tx ...BitString) BitString { return bitstr.OrAll(tx...) }

// Complement is the QCD collision function f(r) = r̄.
func Complement(r BitString) BitString { return bitstr.Not(r) }

// ---- Population and deployment API ----

// Tag is one RFID tag.
type Tag = tagmodel.Tag

// Population is a set of tags with unique IDs.
type Population = tagmodel.Population

// NewPopulation draws n tags with unique random idBits-bit IDs from seed.
func NewPopulation(n, idBits int, seed uint64) Population {
	return tagmodel.NewPopulation(n, idBits, prng.New(seed))
}

// Floor is the multi-reader deployment area of the paper's Table V.
type Floor = deploy.Floor

// Reader is a fixed interrogator on a Floor.
type Reader = deploy.Reader

// NewFloor returns an empty square floor with the given side in metres.
func NewFloor(sideMeters float64) *Floor { return deploy.NewFloor(sideMeters) }

// PaperFloor builds the Table V environment (100 readers on a grid over
// 100 m × 100 m with 3 m range) populated with n random tags.
func PaperFloor(n int, seed uint64) (*Floor, Population) {
	rng := prng.New(seed)
	f := deploy.NewFloor(epc.PaperSetup().AreaMeters)
	f.PlaceReadersGrid(epc.PaperSetup().Readers, epc.PaperSetup().RangeMeters)
	pop := tagmodel.NewPopulation(n, epc.IDBits, rng)
	f.PlaceTags(pop, rng)
	return f, pop
}

// ---- Direct sessions over an existing population ----
//
// Run/RunRound build fresh random populations; the Identify functions run
// one session over tags the caller already holds (e.g. a Floor
// sub-population), using the paper's τ = 1 μs timing.

// IdentifyFSA identifies pop with framed slotted ALOHA at the given frame
// size (clamped to ≥1) under det.
func IdentifyFSA(pop Population, det Detector, frameSize int) *Session {
	if frameSize < 1 {
		frameSize = 1
	}
	return aloha.Run(pop, det, aloha.NewFixed(frameSize), timing.Default)
}

// IdentifyBT identifies pop with binary tree splitting under det.
func IdentifyBT(pop Population, det Detector) *Session {
	return btree.Run(pop, det, timing.Default)
}

// IdentifyQAdaptive identifies pop with the EPC Gen-2 Q algorithm under
// det (customary parameters Q0=4, C=0.3).
func IdentifyQAdaptive(pop Population, det Detector) *Session {
	return aloha.RunQAdaptive(pop, det, aloha.DefaultQConfig(), timing.Default)
}

// IdentifyQT identifies pop with the query-tree protocol under det.
func IdentifyQT(pop Population, det Detector) *Session {
	return qtree.Run(pop, det, timing.Default, qtree.Options{}).Session
}

// QTResult is the query-tree session outcome, including whether the slot
// budget truncated the run (expected under a blocker tag).
type QTResult = qtree.Result

// IdentifyQTWithBlocker runs the query-tree protocol with an optional
// blocker tag defending the subtree rooted at protected (nil = no
// blocker; a pointer to an empty BitString blocks the whole ID space).
// maxSlots bounds the reader's effort; 0 means the default guard.
func IdentifyQTWithBlocker(pop Population, det Detector, protected *BitString, maxSlots int64) *QTResult {
	opt := qtree.Options{MaxSlots: maxSlots}
	if protected != nil {
		opt.Blocker = &qtree.Blocker{Protected: *protected, Rng: prng.New(0xb10c)}
	}
	return qtree.Run(pop, det, timing.Default, opt)
}

// ---- Mobility (Section VI-D: mobile tag environments) ----

// MobilityArrivals configures a flowing tag population: Poisson arrivals
// with a finite dwell in the reader's field.
type MobilityArrivals = mobility.Arrivals

// MobilityResult reports reads, misses and airtime of a mobile run.
type MobilityResult = mobility.Result

// Mobility protocols.
const (
	MobilityBT  = mobility.ProtoBT
	MobilityABS = mobility.ProtoABS
)

// RunMobility simulates a flowing population for durationMicros under the
// given protocol and detector; see MobilityResult.MissRate.
func RunMobility(proto mobility.Protocol, det Detector, arr MobilityArrivals, durationMicros float64, seed uint64) MobilityResult {
	return mobility.Run(proto, det, arr, durationMicros, seed)
}

// ---- Cardinality estimation (Section VI-C) ----

// Estimator predicts the tag backlog from a frame census.
type Estimator = estimate.Estimator

// Estimators returns the built-in estimators (Schoute, lower-bound,
// zero-based, MLE).
func Estimators() []Estimator { return estimate.All() }

// EstimatingPolicy adapts an estimator into an FSA frame policy that
// re-sizes each frame to the estimated backlog (Lemma 1's optimum under
// uncertainty). Use it with IdentifyFSAWithPolicy.
func EstimatingPolicy(est Estimator, initialFrame int) FramePolicy {
	return estimate.NewPolicy(est, initialFrame)
}

// FramePolicy sizes FSA frames; see the aloha package for built-ins.
type FramePolicy = aloha.FramePolicy

// IdentifyFSAWithPolicy runs one FSA session over pop with an explicit
// frame policy.
func IdentifyFSAWithPolicy(pop Population, det Detector, policy FramePolicy) *Session {
	return aloha.Run(pop, det, policy, timing.Default)
}

// ---- EPC Gen-2 command-level inventory ----

// Gen2Config parameterises a command-level Gen-2 inventory run.
type Gen2Config = gen2.Config

// Gen2Result is the inventory outcome, including wasted-ACK counters.
type Gen2Result = gen2.Result

// Gen-2 slot-opening reply schemes.
const (
	Gen2RN16  = gen2.ReplyRN16
	Gen2CRCCD = gen2.ReplyCRCCD
	Gen2QCD   = gen2.ReplyQCD
)

// NewGen2Config returns the customary Gen-2 parameters for the scheme
// (detector may be nil for Gen2RN16).
func NewGen2Config(scheme gen2.ReplyScheme, det Detector) Gen2Config {
	return gen2.DefaultConfig(scheme, det)
}

// RunGen2 inventories pop through the full Gen-2 command exchange
// (Query/QueryRep/ACK airtime charged).
func RunGen2(pop Population, cfg Gen2Config, seed uint64) *Gen2Result {
	return gen2.Run(pop, cfg, timing.Default, seed)
}

// ---- Structured workloads ----

// WorkloadKind names a population shape (uniform, single-vendor, ...).
type WorkloadKind = trace.Kind

// Workload shapes.
const (
	WorkloadUniform         = trace.Uniform
	WorkloadSingleVendor    = trace.SingleVendor
	WorkloadMultiVendor     = trace.MultiVendor
	WorkloadClusteredSerial = trace.ClusteredSerial
)

// BuildWorkload constructs a structured population of n tags. All shapes
// yield 96-bit EPC-length IDs (including the uniform one), so any
// detector built for idBits = 96 composes with any workload.
func BuildWorkload(kind WorkloadKind, n int, seed uint64) (Population, error) {
	return trace.Build(trace.Spec{Kind: kind, N: n, IDBits: 96}, prng.New(seed))
}

// SharedPrefixLen reports the population's common ID prefix length — the
// depth a query tree must burn through before any split helps.
func SharedPrefixLen(pop Population) int { return trace.SharedPrefixLen(pop) }

// ---- Channel impairments ----

// ChannelImpairment models a noisy (BER) and/or capturing channel; pass
// it to IdentifyFSAImpaired. See internal/air.Impairment.
type ChannelImpairment = air.Impairment

// NewChannelImpairment builds an impairment with its own random stream.
func NewChannelImpairment(ber, captureProb float64, seed uint64) *ChannelImpairment {
	return &air.Impairment{BER: ber, CaptureProb: captureProb, Rng: prng.New(seed)}
}

// IdentifyFSAImpaired is IdentifyFSA over a non-ideal channel.
func IdentifyFSAImpaired(pop Population, det Detector, frameSize int, im *ChannelImpairment) *Session {
	if frameSize < 1 {
		frameSize = 1
	}
	return aloha.RunWithOptions(pop, det, aloha.NewFixed(frameSize), timing.Default,
		aloha.Options{Impairment: im})
}

// ---- Backward-channel privacy (Section II related work) ----

// PrivacySession is a pseudo-ID protected identification dialogue: each
// round the tag replies ID ∨ p for a fresh reader-chosen pseudo-ID p.
type PrivacySession = privacy.Session

// NewPrivacySession starts a dialogue for the given tag ID.
func NewPrivacySession(id BitString, seed uint64) *PrivacySession {
	return privacy.NewSession(id, prng.New(seed))
}

// PrivacyExpectedRounds is the expected number of mixing rounds until the
// reader recovers a full l-bit ID.
func PrivacyExpectedRounds(idBits int) float64 { return privacy.ExpectedRounds(idBits) }

// ---- Timing and statistics ----

// TimingModel converts airtime bits to microseconds; the paper's setting
// is τ = 1 μs per bit.
type TimingModel = timing.Model

// Summary is a statistical snapshot (mean, stddev, percentiles, CI95).
type Summary = stats.Summary

// Summarize computes a Summary of the samples.
func Summarize(xs []float64) Summary { return stats.Summarize(xs) }

// KolmogorovSmirnov returns the two-sample KS statistic between delay (or
// any) distributions; KSPValue gives its asymptotic significance.
func KolmogorovSmirnov(a, b []float64) float64 { return stats.KolmogorovSmirnov(a, b) }

// KSPValue is the asymptotic p-value for a two-sample KS statistic.
func KSPValue(d float64, na, nb int) float64 { return stats.KSPValue(d, na, nb) }

// ---- Closed forms (Sections III & V) ----

// FSAMaxThroughput is Lemma 1's 1/e ≈ 0.37.
func FSAMaxThroughput() float64 { return analytic.FSAMaxThroughput() }

// BTAvgThroughput is Lemma 2's ≈ 0.35.
func BTAvgThroughput() float64 { return analytic.BTAvgThroughput() }

// TheoreticalFSAEI is Table II's minimum efficiency improvement of a
// strength-l QCD over CRC-CD on FSA (l_id = 64, l_crc = 32).
func TheoreticalFSAEI(strength int) float64 {
	return analytic.FSAEI(analytic.PaperLengths(strength))
}

// TheoreticalBTEI is Table III's average EI on BT.
func TheoreticalBTEI(strength int) float64 {
	return analytic.BTEI(analytic.PaperLengths(strength))
}

// ---- Experiment API ----

// ExperimentOptions scales an experiment run (rounds, cases, seed).
type ExperimentOptions = experiment.Options

// Experiment is a registered paper artifact (table, figure, or ablation).
type Experiment = experiment.Runner

// Experiments lists every registered experiment in paper order.
func Experiments() []Experiment { return experiment.Registry() }

// RunExperiment regenerates one paper artifact by id ("table7", "fig5",
// ...) and returns its rendered text.
func RunExperiment(id string, o ExperimentOptions) (string, error) {
	text, _, err := RunExperimentCSV(id, o)
	return text, err
}

// RunExperimentCSV is RunExperiment returning the tabular data as CSV as
// well (empty when the artifact has none).
func RunExperimentCSV(id string, o ExperimentOptions) (text, csv string, err error) {
	r, ok := experiment.ByID(id)
	if !ok {
		return "", "", errUnknownExperiment(id)
	}
	out, err := r.Run(o)
	if err != nil {
		return "", "", err
	}
	return out.Render(), experiment.CSVOf(out), nil
}

// RenderSeriesChart parses a series block (as produced inside experiment
// output) and renders it as a log-scale ASCII bar chart; it returns ""
// when the text is not a parseable series.
func RenderSeriesChart(seriesBlock string, width int) string {
	s, err := report.ParseSeries(seriesBlock)
	if err != nil {
		return ""
	}
	return s.LogChart(width)
}

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string {
	return "rfid: unknown experiment \"" + string(e) + "\""
}
