#!/bin/sh
# bench_gate.sh — regression gate over the slot-path benchmark suite.
#
# Runs scripts/bench.sh into a temp snapshot and compares every
# benchmark against the committed baseline (BENCH_slotpath.json by
# default):
#
#   - ns/op may drift up to NSOP_TOLERANCE_PCT (default 25%) before the
#     gate fails — machine noise is real, order-of-magnitude slips are
#     not;
#   - allocs/op is exact: ANY increase fails. The zero-allocation slot
#     path was bought deliberately and is not allowed to erode silently.
#
# Benchmarks present on only one side are reported but do not fail the
# gate (renames land together with their baseline refresh).
#
# Usage: scripts/bench_gate.sh [baseline.json]
#   NSOP_TOLERANCE_PCT=N   allowed ns/op regression in percent (default 25)
#   GATE_ALLOCS_ONLY=1     report ns/op drift but fail only on allocs/op
#                          growth — the mode for shared CI runners, where
#                          wall-clock is noise but allocation counts are
#                          exact and machine-independent
#   BENCH_COUNT/BENCH_TIME/BENCH_FILTER pass through to bench.sh.
#
# To refresh the baseline after an intentional change:
#   scripts/bench.sh      # rewrites BENCH_slotpath.json in place
set -eu

cd "$(dirname "$0")/.."

BASELINE=${1:-BENCH_slotpath.json}
TOL=${NSOP_TOLERANCE_PCT:-25}
ALLOCS_ONLY=${GATE_ALLOCS_ONLY:-0}

if [ ! -f "$BASELINE" ]; then
    echo "bench_gate: baseline $BASELINE not found" >&2
    exit 2
fi

FRESH=$(mktemp /tmp/bench_gate.XXXXXX.json)
trap 'rm -f "$FRESH" "$FRESH.base" "$FRESH.new"' EXIT

echo "==> bench_gate: running fresh benchmarks (tolerance ${TOL}% ns/op, 0 allocs/op)" >&2
./scripts/bench.sh "$FRESH" >&2

# Each parsed benchmark entry of bench.sh's JSON sits on its own line:
#   {"package": "p", "name": "n", ..., "ns_per_op": X, ..., "allocs_per_op": Y}
# which keeps the comparison in portable awk, no JSON tooling needed.
extract() {
    awk '
    /"package":/ && /"ns_per_op":/ {
        pkg = ""; name = ""; ns = ""; allocs = ""
        if (match($0, /"package": "[^"]*"/))       pkg = substr($0, RSTART + 12, RLENGTH - 13)
        if (match($0, /"name": "[^"]*"/))          name = substr($0, RSTART + 9, RLENGTH - 10)
        if (match($0, /"ns_per_op": [0-9.eE+-]+/)) ns = substr($0, RSTART + 13, RLENGTH - 13)
        if (match($0, /"allocs_per_op": [0-9]+/))  allocs = substr($0, RSTART + 17, RLENGTH - 17)
        if (allocs == "") allocs = "0"
        if (pkg != "" && name != "" && ns != "") print pkg "/" name, ns, allocs
    }' "$1"
}

extract "$BASELINE" > "$FRESH.base"
extract "$FRESH" > "$FRESH.new"

status=0
awk -v tol="$TOL" -v allocs_only="$ALLOCS_ONLY" '
NR == FNR { base_ns[$1] = $2; base_allocs[$1] = $3; next }
{
    seen[$1] = 1
    if (!($1 in base_ns)) { printf "  new (no baseline): %s\n", $1; next }
    ns = $2 + 0; allocs = $3 + 0
    bns = base_ns[$1] + 0; ballocs = base_allocs[$1] + 0
    if (allocs > ballocs) {
        printf "FAIL %s: allocs/op %d > baseline %d (any increase fails)\n", $1, allocs, ballocs
        failed = 1
    }
    if (bns > 0 && ns > bns * (1 + tol / 100)) {
        if (allocs_only + 0) {
            printf "  warn %s: ns/op %.4g > baseline %.4g +%d%% (not gating)\n", $1, ns, bns, tol
        } else {
            printf "FAIL %s: ns/op %.4g > baseline %.4g +%d%%\n", $1, ns, bns, tol
            failed = 1
        }
    }
}
END {
    for (k in base_ns) if (!(k in seen)) printf "  gone (in baseline only): %s\n", k
    exit failed ? 1 : 0
}' "$FRESH.base" "$FRESH.new" || status=1

if [ "$status" -ne 0 ]; then
    echo "==> bench_gate: FAILED against $BASELINE" >&2
    echo "    (intentional change? refresh with: scripts/bench.sh)" >&2
    exit 1
fi

# Headline throughput ratio: the stat-mode Q-adaptive round against its
# exact-mode twin, from the fresh run. Informational — the ≥5x contract
# itself is enforced by TestStatModeFasterThanExact — but surfacing it
# here makes speedup erosion visible in every gate log.
RATIO=$(awk '
$1 ~ /^repro\/internal\/aloha\/BenchmarkQAdaptive500(-[0-9]+)?$/         { exact = $2 + 0 }
$1 ~ /^repro\/internal\/aloha\/BenchmarkStatModeQAdaptive500(-[0-9]+)?$/ { stat = $2 + 0 }
END { if (exact > 0 && stat > 0) printf "%.1f", exact / stat }' "$FRESH.new")
SPEEDUP=''
if [ -n "$RATIO" ]; then
    SPEEDUP="; stat/exact QAdaptive500 speedup ${RATIO}x"
fi
if [ "$ALLOCS_ONLY" -ne 0 ]; then
    echo "==> bench_gate: ok (no allocs/op growth; ns/op informational${SPEEDUP})" >&2
else
    echo "==> bench_gate: ok (within ${TOL}% ns/op, no allocs/op growth${SPEEDUP})" >&2
fi
