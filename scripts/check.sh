#!/bin/sh
# check.sh — the repo's pre-merge gate: vet, build, then the full test
# suite with the race detector. Run from anywhere; it cds to the repo
# root. Usage: scripts/check.sh [extra go test args]
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./... $*"
go test -race "$@" ./...

echo "==> sweep smoke (2x2 grid through the service)"
go run ./cmd/sweepsmoke

echo "==> scenario smoke (streaming warehouse through the service, worker determinism)"
go run ./cmd/scenariosmoke

echo "==> observability smoke (traced sweep, span tree, statusz, history, SLO alert cycle)"
go run ./cmd/obssmoke

echo "==> ok"
