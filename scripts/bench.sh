#!/bin/sh
# bench.sh — run the slot-path benchmark suite and emit a machine-readable
# snapshot (BENCH_slotpath.json) next to the repo root.
#
# The JSON carries both the raw `go test -bench` lines (benchstat-ready:
# extract .raw and feed it to benchstat old.txt new.txt) and a parsed
# entry per benchmark with ns/op, B/op, and allocs/op, so regressions in
# time OR allocation are diffable without extra tooling.
#
# If scripts/bench_baseline.txt exists (the committed pre-optimisation
# snapshot), its raw lines are embedded as .baseline_raw so before/after
# travel together in one artifact.
#
# Usage: scripts/bench.sh [out.json]
#   BENCH_COUNT=N     repetitions per benchmark (default 1; use >=10 for
#                     benchstat-grade comparisons)
#   BENCH_TIME=spec   -benchtime value (default 1s; e.g. 100x for a smoke
#                     run in CI)
#   BENCH_FILTER=re   -bench regexp (default: the slot-path suite)
set -eu

cd "$(dirname "$0")/.."

OUT=${1:-BENCH_slotpath.json}
COUNT=${BENCH_COUNT:-1}
TIME=${BENCH_TIME:-1s}
FILTER=${BENCH_FILTER:-.}

# The packages that make up the slot hot path, innermost first — the
# prng bulk-fill kernels feeding stat mode included — plus the sweep
# grid expander (its allocs/op guards spec-expansion cost), the span
# layer, the metrics history store and the SLO engine (their disabled
# paths must stay at 0 allocs/op, and the enabled sampling/evaluation
# ticks must stay allocation-free in steady state), the reader
# colouring, and the streaming warehouse engine (its full-run
# benchmark is the acceptance workload: 100k tags × 100 readers per
# op).
PKGS="./internal/prng ./internal/bitstr ./internal/detect ./internal/air ./internal/sched ./internal/aloha ./internal/qtree ./internal/sim ./internal/sweep ./internal/deploy ./internal/scenario ./internal/obs ./internal/obs/tsdb ./internal/obs/slo"

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "==> go test -bench=$FILTER -benchmem -benchtime=$TIME -count=$COUNT" >&2
go test -run '^$' -bench "$FILTER" -benchmem -benchtime "$TIME" -count "$COUNT" $PKGS | tee "$RAW" >&2

# Fold the raw output into JSON. Benchmark lines look like:
#   BenchmarkRunSlot/single/qcd-8   4322618   277.5 ns/op   0 B/op   0 allocs/op
# and each package block is preceded by "pkg: <import path>" in -bench
# output via the "ok  <pkg>" trailer; we track the current package from
# the goos/goarch/pkg preamble lines instead.
awk -v go_version="$(go env GOVERSION)" -v count="$COUNT" -v benchtime="$TIME" \
    -v baseline="scripts/bench_baseline.txt" '
BEGIN {
    printf "{\n  \"go\": \"%s\",\n  \"count\": %d,\n  \"benchtime\": \"%s\",\n", go_version, count, benchtime
    printf "  \"benchmarks\": [\n"
    first = 1
}
$1 == "pkg:" { pkg = $2; next }
/^Benchmark/ && / ns\/op/ {
    name = $1; iters = $2; ns = $3
    b = "null"; allocs = "null"
    for (i = 4; i <= NF; i++) {
        if ($i == "B/op")      b = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (!first) printf ",\n"
    first = 0
    printf "    {\"package\": \"%s\", \"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}", pkg, name, iters, ns, b, allocs
    raw[++n] = $0
    next
}
END {
    printf "\n  ],\n  \"raw\": [\n"
    for (i = 1; i <= n; i++) {
        gsub(/\\/, "\\\\", raw[i]); gsub(/"/, "\\\"", raw[i]); gsub(/\t/, "  ", raw[i])
        printf "    \"%s\"%s\n", raw[i], (i < n ? "," : "")
    }
    printf "  ]"
    m = 0
    while ((getline line < baseline) > 0)
        if (line ~ /^Benchmark/) bl[++m] = line
    if (m > 0) {
        printf ",\n  \"baseline_raw\": [\n"
        for (i = 1; i <= m; i++) {
            gsub(/\\/, "\\\\", bl[i]); gsub(/"/, "\\\"", bl[i]); gsub(/\t/, "  ", bl[i])
            printf "    \"%s\"%s\n", bl[i], (i < m ? "," : "")
        }
        printf "  ]"
    }
    printf "\n}\n"
}' "$RAW" > "$OUT"

echo "==> wrote $OUT" >&2
