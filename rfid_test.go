package rfid_test

import (
	"math"
	"strings"
	"testing"

	rfid "repro"
)

func TestPublicQuickstartFlow(t *testing.T) {
	cfg := rfid.Config{
		Tags: 200, Rounds: 3, Seed: 1,
		Algorithm: rfid.AlgFSA, FrameSize: 120,
		Detector: rfid.DetQCD, Strength: 8,
	}
	qcd, err := rfid.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Detector = rfid.DetCRCCD
	crc, err := rfid.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ei := (crc.TimeMicros.Mean() - qcd.TimeMicros.Mean()) / crc.TimeMicros.Mean()
	if ei < 0.40 {
		t.Errorf("public-API EI = %v, want the paper's >40%%", ei)
	}
}

func TestPublicDetectors(t *testing.T) {
	d := rfid.NewQCD(8, 64)
	if d.Name() != "QCD-8" {
		t.Errorf("QCD name = %s", d.Name())
	}
	if _, ok := rfid.NewCRCCD("CRC-32/IEEE", 64); !ok {
		t.Error("CRC-32/IEEE preset missing")
	}
	if _, ok := rfid.NewCRCCD("nope", 64); ok {
		t.Error("unknown preset accepted")
	}
	if rfid.NewOracle(64).Name() != "Oracle" {
		t.Error("oracle name")
	}
}

func TestPublicBitOps(t *testing.T) {
	a, err := rfid.ParseBits("011001")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := rfid.ParseBits("010010")
	if rfid.Overlap(a, b).String() != "011011" {
		t.Error("Overlap mismatch with the paper's Section I example")
	}
	if rfid.Complement(a).String() != "100110" {
		t.Error("Complement wrong")
	}
}

func TestPublicClosedForms(t *testing.T) {
	if math.Abs(rfid.FSAMaxThroughput()-1/math.E) > 1e-9 {
		t.Error("Lemma 1 constant wrong")
	}
	if math.Abs(rfid.BTAvgThroughput()-0.3466) > 0.001 {
		t.Error("Lemma 2 constant wrong")
	}
	if math.Abs(rfid.TheoreticalFSAEI(8)-0.5864) > 0.0005 {
		t.Error("Table II value wrong")
	}
	if math.Abs(rfid.TheoreticalBTEI(8)-0.6023) > 0.0005 {
		t.Error("Table III value wrong")
	}
}

func TestPublicPopulationAndFloor(t *testing.T) {
	pop := rfid.NewPopulation(50, 64, 1)
	if len(pop) != 50 || !pop.IDsUnique() {
		t.Fatal("population broken")
	}
	floor, fpop := rfid.PaperFloor(500, 2)
	if len(floor.Readers) != 100 || len(fpop) != 500 {
		t.Fatal("paper floor misconfigured")
	}
	cov := floor.Coverage()
	if cov < 0.15 || cov > 0.45 {
		t.Errorf("coverage = %v, want ≈0.28", cov)
	}
}

func TestPublicExperiments(t *testing.T) {
	if len(rfid.Experiments()) < 13 {
		t.Errorf("only %d experiments registered", len(rfid.Experiments()))
	}
	out, err := rfid.RunExperiment("table2", rfid.ExperimentOptions{Rounds: 1, MaxCase: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "0.5864") {
		t.Errorf("table2 output:\n%s", out)
	}
	if _, err := rfid.RunExperiment("ghost", rfid.ExperimentOptions{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestPublicRunRoundDelays(t *testing.T) {
	s, err := rfid.RunRound(rfid.Config{
		Tags: 100, Algorithm: rfid.AlgBT, Detector: rfid.DetQCD,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.DelaysMicros) != 100 {
		t.Errorf("delays = %d", len(s.DelaysMicros))
	}
	sum := rfid.Summarize(s.DelaysMicros)
	if sum.N != 100 || sum.Mean <= 0 || sum.P99 < sum.P50 {
		t.Errorf("summary = %+v", sum)
	}
}
