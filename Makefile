# Convenience targets; `make check` is the pre-merge gate.

GO ?= go

.PHONY: check build test race vet bench bench-json bench-gate trace-demo obssmoke

check:
	./scripts/check.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem .

# bench-json runs the slot-path benchmark suite and writes
# BENCH_slotpath.json (raw benchstat lines + parsed ns/B/allocs per op).
# Tune with BENCH_COUNT / BENCH_TIME / BENCH_FILTER.
bench-json:
	./scripts/bench.sh

# bench-gate re-runs the slot-path suite and fails on a >25% ns/op or
# ANY allocs/op regression against the committed BENCH_slotpath.json.
# After an intentional perf change, refresh the baseline with
# `make bench-json` and commit the result.
bench-gate:
	./scripts/bench_gate.sh

# obssmoke boots the service in-process, runs a traced sweep, and
# asserts the joined span tree plus the statusz snapshot.
obssmoke:
	$(GO) run ./cmd/obssmoke

# trace-demo runs a small traced experiment and validates that the
# emitted Chrome trace-event JSON has the shape chrome://tracing loads.
trace-demo:
	$(GO) run ./cmd/rfidsim -tags 200 -rounds 10 -frame 128 -trace /tmp/rfidsim-trace.json
	$(GO) run ./cmd/tracecheck -min-events 10 /tmp/rfidsim-trace.json
