# Convenience targets; `make check` is the pre-merge gate.

GO ?= go

.PHONY: check build test race vet bench trace-demo

check:
	./scripts/check.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem .

# trace-demo runs a small traced experiment and validates that the
# emitted Chrome trace-event JSON has the shape chrome://tracing loads.
trace-demo:
	$(GO) run ./cmd/rfidsim -tags 200 -rounds 10 -frame 128 -trace /tmp/rfidsim-trace.json
	$(GO) run ./cmd/tracecheck -min-events 10 /tmp/rfidsim-trace.json
