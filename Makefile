# Convenience targets; `make check` is the pre-merge gate.

GO ?= go

.PHONY: check build test race vet bench

check:
	./scripts/check.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem .
