// Command rfidtop is a live terminal dashboard for a running rfidd: a
// top-style view of the worker pool, the latency decomposition, the
// result cache and the sweeps in flight, refreshed in place from
// /metrics, with a tail of the newest sweep's per-cell SSE stream at
// the bottom.
//
// Usage:
//
//	rfidtop -addr http://localhost:8080 -interval 1s
//
// -sweep pins the event tail to one sweep ID (default: the newest
// running sweep, falling back to the newest overall). -frames N
// renders N frames and exits, for scripted or CI use; by default
// rfidtop runs until interrupted. Rates ("recent" columns) are deltas
// between consecutive polls.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "rfidd base URL")
		interval = flag.Duration("interval", time.Second, "poll/refresh interval")
		sweepID  = flag.String("sweep", "", "sweep ID to tail (default: newest)")
		tailLen  = flag.Int("events", 10, "event-tail length")
		frames   = flag.Int("frames", 0, "render this many frames then exit (0 = run until interrupted)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	d := &dash{
		client:   server.NewClient(*addr),
		addr:     *addr,
		interval: *interval,
		pinned:   *sweepID,
		tail:     newTail(*tailLen),
	}
	if err := d.run(ctx, *frames); err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "rfidtop:", err)
		os.Exit(1)
	}
	fmt.Print("\x1b[0m\n")
}

// dash is the dashboard state carried between frames.
type dash struct {
	client   *server.Client
	addr     string
	interval time.Duration
	pinned   string // -sweep flag; "" = auto

	prev   map[string]float64 // last /metrics sample, for rates
	prevAt time.Time

	tail       *tail
	tailTarget string             // sweep currently tailed
	tailStop   context.CancelFunc // stops the tailer goroutine
}

func (d *dash) run(ctx context.Context, frames int) error {
	defer func() {
		if d.tailStop != nil {
			d.tailStop()
		}
	}()
	tick := time.NewTicker(d.interval)
	defer tick.Stop()
	for n := 0; ; {
		if err := d.frame(ctx); err != nil {
			// A dead daemon mid-session is worth showing, not exiting over
			// (unless we never reached it at all).
			if d.prev == nil {
				return err
			}
			fmt.Printf("\x1b[31mpoll failed: %v\x1b[0m\n", err)
		}
		n++
		if frames > 0 && n >= frames {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// frame polls the daemon and redraws the screen in place.
func (d *dash) frame(ctx context.Context) error {
	pctx, cancel := context.WithTimeout(ctx, d.interval+5*time.Second)
	defer cancel()
	text, err := d.client.Metrics(pctx)
	if err != nil {
		return err
	}
	m := parseProm(text)
	sweeps, err := d.client.ListSweeps(pctx)
	if err != nil {
		return err
	}
	d.retarget(ctx, sweeps)

	var b strings.Builder
	b.WriteString("\x1b[H\x1b[2J") // home + clear
	now := time.Now()
	dt := now.Sub(d.prevAt).Seconds()
	fmt.Fprintf(&b, "\x1b[1mrfidtop\x1b[0m  %s  %s  (ctrl-c to quit)\n\n",
		d.addr, now.Format("15:04:05"))

	d.poolSection(&b, m, dt)
	d.latencySection(&b, m)
	d.cacheSection(&b, m)
	d.sweepSection(&b, sweeps)
	d.eventSection(&b)

	d.prev, d.prevAt = m, now
	_, err = os.Stdout.WriteString(b.String())
	return err
}

// retarget points the SSE tail at the pinned sweep, or the newest
// running sweep, or the newest overall; restarts the tailer when the
// target changes.
func (d *dash) retarget(ctx context.Context, sweeps []server.SweepResponse) {
	target := d.pinned
	if target == "" {
		for _, sw := range sweeps { // newest last in the listing
			if sw.Status == "queued" || sw.Status == "running" || target == "" {
				target = sw.ID
			}
		}
	}
	if target == "" || target == d.tailTarget {
		return
	}
	if d.tailStop != nil {
		d.tailStop()
	}
	tctx, stop := context.WithCancel(ctx)
	d.tailTarget, d.tailStop = target, stop
	d.tail.reset(target)
	go func() {
		err := d.client.WatchSweep(tctx, target, func(ev server.WatchEvent) error {
			d.tail.add(formatEvent(ev))
			return nil
		})
		if err != nil && tctx.Err() == nil {
			d.tail.add("tail error: " + err.Error())
		}
	}()
}

func (d *dash) poolSection(b *strings.Builder, m map[string]float64, dt float64) {
	workers := m["rfidd_workers"]
	busyFrac := 0.0
	if d.prev != nil && dt > 0 && workers > 0 {
		busyFrac = (m["rfidd_worker_busy_seconds_total"] - d.prev["rfidd_worker_busy_seconds_total"]) /
			(dt * workers)
	}
	fmt.Fprintf(b, "\x1b[1mpool\x1b[0m     workers %.0f  busy %.0f  busy%%(recent) %s  queue %.0f (hiwater %.0f)\n",
		workers, m["rfidd_workers_busy"], pct(busyFrac),
		m["rfidd_queue_depth"], m["rfidd_queue_depth_high_water"])
	fmt.Fprintf(b, "         jobs done %.0f  failed %.0f  canceled %.0f  retries %.0f  done/s %s\n\n",
		m["rfidd_jobs_done_total"], m["rfidd_jobs_failed_total"],
		m["rfidd_jobs_canceled_total"], m["rfidd_jobs_retries_total"],
		rateStr(d.rate(m, "rfidd_jobs_done_total", dt)))
}

func (d *dash) latencySection(b *strings.Builder, m map[string]float64) {
	fmt.Fprintf(b, "\x1b[1mlatency\x1b[0m  %-7s %14s %14s %14s\n", "origin", "queue-wait", "run", "cache-lookup")
	for _, origin := range []string{"job", "sweep"} {
		l := `{origin="` + origin + `"}`
		fmt.Fprintf(b, "         %-7s %14s %14s %14s\n", origin,
			avgStr(m, "rfidd_queue_wait_seconds", l),
			avgStr(m, "rfidd_run_seconds", l),
			avgStr(m, "rfidd_cache_lookup_seconds", l))
	}
	fmt.Fprintf(b, "         window-wait %s (n=%.0f)\n\n",
		avgStr(m, "rfidd_sweep_window_wait_seconds", ""),
		m["rfidd_sweep_window_wait_seconds_count"])
}

func (d *dash) cacheSection(b *strings.Builder, m map[string]float64) {
	fmt.Fprintf(b, "\x1b[1mcache\x1b[0m    entries %.0f/%.0f  hit-ratio %s\n",
		m["rfidd_cache_entries"], m["rfidd_cache_capacity"], pct(m["rfidd_cache_hit_ratio"]))
	for _, origin := range []string{"job", "sweep"} {
		l := `{origin="` + origin + `"}`
		hits := m["rfidd_cache_origin_hits_total"+l]
		misses := m["rfidd_cache_origin_misses_total"+l]
		ratio := 0.0
		if hits+misses > 0 {
			ratio = hits / (hits + misses)
		}
		fmt.Fprintf(b, "         %-7s hits %.0f  misses %.0f  ratio %s\n", origin, hits, misses, pct(ratio))
	}
	b.WriteByte('\n')
}

func (d *dash) sweepSection(b *strings.Builder, sweeps []server.SweepResponse) {
	fmt.Fprintf(b, "\x1b[1msweeps\x1b[0m   %d indexed\n", len(sweeps))
	// Newest five, newest first.
	for i, shown := len(sweeps)-1, 0; i >= 0 && shown < 5; i, shown = i-1, shown+1 {
		sw := sweeps[i]
		c := sw.Counts
		fmt.Fprintf(b, "         %-8s %-9s cells %d done %d cached %d coalesced %d failed %d\n",
			sw.ID, sw.Status, c.Cells, c.Done, c.Cached, c.Coalesced, c.Failed)
	}
	b.WriteByte('\n')
}

func (d *dash) eventSection(b *strings.Builder) {
	target, lines := d.tail.snapshot()
	if target == "" {
		fmt.Fprintf(b, "\x1b[1mevents\x1b[0m   (no sweep to tail yet)\n")
		return
	}
	fmt.Fprintf(b, "\x1b[1mevents\x1b[0m   tailing %s\n", target)
	for _, l := range lines {
		fmt.Fprintf(b, "         %s\n", l)
	}
}

// rate is the per-second delta of a counter since the previous frame.
func (d *dash) rate(m map[string]float64, key string, dt float64) float64 {
	if d.prev == nil || dt <= 0 {
		return 0
	}
	return (m[key] - d.prev[key]) / dt
}

// avgStr renders a histogram's overall mean as "1.2ms (n=34)".
func avgStr(m map[string]float64, family, labels string) string {
	count := m[family+"_count"+labels]
	if count == 0 {
		return "-"
	}
	mean := m[family+"_sum"+labels] / count
	return fmtSeconds(mean)
}

func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}

func pct(f float64) string {
	return strconv.FormatFloat(f*100, 'f', 1, 64) + "%"
}

func rateStr(f float64) string {
	return strconv.FormatFloat(f, 'f', 1, 64)
}

// formatEvent compacts one SSE event into a single tail line.
func formatEvent(ev server.WatchEvent) string {
	keys := make([]string, 0, len(ev.Data))
	for k := range ev.Data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "#%-5d %-6s", ev.ID, ev.Type)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%v", k, ev.Data[k])
	}
	if b.Len() > 110 {
		return b.String()[:107] + "..."
	}
	return b.String()
}

// tail is the bounded, mutex-guarded event-line ring the SSE tailer
// writes and the render loop reads.
type tail struct {
	mu     sync.Mutex
	target string
	lines  []string
	max    int
}

func newTail(max int) *tail {
	if max < 1 {
		max = 1
	}
	return &tail{max: max}
}

func (t *tail) reset(target string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.target = target
	t.lines = nil
}

func (t *tail) add(line string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lines = append(t.lines, line)
	if len(t.lines) > t.max {
		t.lines = t.lines[len(t.lines)-t.max:]
	}
}

func (t *tail) snapshot() (string, []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.target, append([]string(nil), t.lines...)
}

// parseProm flattens a Prometheus text exposition into series → value,
// keyed by the series name with its label set verbatim.
func parseProm(text string) map[string]float64 {
	out := make(map[string]float64, 128)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		out[line[:sp]] = v
	}
	return out
}
