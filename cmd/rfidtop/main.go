// Command rfidtop is a live terminal dashboard for a running rfidd: a
// top-style view of the worker pool, the latency decomposition, the
// result cache and the sweeps in flight, refreshed in place from
// /metrics, with a tail of the newest sweep's per-cell SSE stream at
// the bottom.
//
// Usage:
//
//	rfidtop -addr http://localhost:8080 -interval 1s
//
// -sweep pins the event tail to one sweep ID (default: the newest
// running sweep, falling back to the newest overall). -frames N
// renders N frames and exits, for scripted or CI use; -once renders a
// single plain-text frame (no escape codes, no event tail) and exits,
// for cron jobs and pipes. By default rfidtop runs until interrupted.
//
// Rates ("recent" columns) come from the daemon's metrics history
// (/v1/metrics/history), so the first frame shows real rates instead
// of zeros and a reconnect never shows garbage deltas; when the daemon
// runs with history disabled, rfidtop falls back to client-side deltas
// between consecutive polls. Firing SLO alerts (/v1/alerts) get their
// own pane, omitted when alerting is off.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/obs/slo"
	"repro/internal/obs/tsdb"
	"repro/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "rfidd base URL")
		interval = flag.Duration("interval", time.Second, "poll/refresh interval")
		sweepID  = flag.String("sweep", "", "sweep ID to tail (default: newest)")
		tailLen  = flag.Int("events", 10, "event-tail length")
		frames   = flag.Int("frames", 0, "render this many frames then exit (0 = run until interrupted)")
		once     = flag.Bool("once", false, "render one plain-text frame and exit (implies -frames 1, no event tail)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	d := &dash{
		client:   server.NewClient(*addr),
		addr:     *addr,
		interval: *interval,
		pinned:   *sweepID,
		plain:    *once,
		tail:     newTail(*tailLen),
	}
	n := *frames
	if *once {
		n = 1
	}
	if err := d.run(ctx, n); err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "rfidtop:", err)
		os.Exit(1)
	}
	if !*once {
		fmt.Print("\x1b[0m\n")
	}
}

// dash is the dashboard state carried between frames.
type dash struct {
	client   *server.Client
	addr     string
	interval time.Duration
	pinned   string // -sweep flag; "" = auto
	plain    bool   // -once: no escape codes, no event tail

	prev   map[string]float64 // last /metrics sample, for fallback rates
	prevAt time.Time

	tail       *tail
	tailTarget string             // sweep currently tailed
	tailStop   context.CancelFunc // stops the tailer goroutine
}

func (d *dash) run(ctx context.Context, frames int) error {
	defer func() {
		if d.tailStop != nil {
			d.tailStop()
		}
	}()
	tick := time.NewTicker(d.interval)
	defer tick.Stop()
	for n := 0; ; {
		if err := d.frame(ctx); err != nil {
			// A dead daemon mid-session is worth showing, not exiting over
			// (unless we never reached it at all).
			if d.prev == nil {
				return err
			}
			fmt.Printf("\x1b[31mpoll failed: %v\x1b[0m\n", err)
		}
		n++
		if frames > 0 && n >= frames {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// frame polls the daemon and redraws the screen in place.
func (d *dash) frame(ctx context.Context) error {
	pctx, cancel := context.WithTimeout(ctx, d.interval+5*time.Second)
	defer cancel()
	text, err := d.client.Metrics(pctx)
	if err != nil {
		return err
	}
	m := parseProm(text)
	sweeps, err := d.client.ListSweeps(pctx)
	if err != nil {
		return err
	}
	rates := d.histRates(pctx, m)
	alerts, alertsOn := d.alerts(pctx)
	if !d.plain {
		d.retarget(ctx, sweeps)
	}

	var b strings.Builder
	b.WriteString("\x1b[H\x1b[2J") // home + clear
	now := time.Now()
	dt := now.Sub(d.prevAt).Seconds()
	fmt.Fprintf(&b, "\x1b[1mrfidtop\x1b[0m  %s  %s  (ctrl-c to quit)\n\n",
		d.addr, now.Format("15:04:05"))

	d.poolSection(&b, m, dt, rates)
	d.latencySection(&b, m)
	d.cacheSection(&b, m)
	if alertsOn {
		alertSection(&b, alerts)
	}
	d.sweepSection(&b, sweeps)
	if !d.plain {
		d.eventSection(&b)
	}

	d.prev, d.prevAt = m, now
	out := b.String()
	if d.plain {
		out = stripANSI(out)
	}
	_, err = os.Stdout.WriteString(out)
	return err
}

// histRates pulls the "recent" rate columns from the daemon's metrics
// history, which is correct on the very first frame and across
// reconnects. A daemon without history (404) yields ok=false and the
// caller falls back to client-side deltas.
type histRates struct {
	ok         bool
	jobsPerSec float64
	busyFrac   float64
}

// histWindow is how far back the "recent" columns look when served
// from history.
const histWindow = 30 * time.Second

func (d *dash) histRates(ctx context.Context, m map[string]float64) histRates {
	resp, err := d.client.MetricsHistory(ctx, []string{
		"rfidd_jobs_done_total",
		"rfidd_worker_busy_seconds_total",
	}, histWindow, "rate")
	if err != nil || len(resp.Results) != 2 {
		return histRates{}
	}
	r := histRates{ok: true, jobsPerSec: meanPoints(resp.Results[0].Points)}
	if workers := m["rfidd_workers"]; workers > 0 {
		// Rate of busy-seconds per wall second, split across the pool.
		r.busyFrac = meanPoints(resp.Results[1].Points) / workers
	}
	return r
}

// meanPoints averages the finite points of one history result.
func meanPoints(pts []tsdb.Point) float64 {
	var sum float64
	var n int
	for _, p := range pts {
		if p.V == p.V { // skip NaN gaps
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// alerts fetches the SLO alert table; on=false when the daemon runs
// with alerting disabled (404) or the poll fails.
func (d *dash) alerts(ctx context.Context) (server.AlertsResponse, bool) {
	resp, err := d.client.Alerts(ctx)
	if err != nil {
		return server.AlertsResponse{}, false
	}
	return resp, true
}

// retarget points the SSE tail at the pinned sweep, or the newest
// running sweep, or the newest overall; restarts the tailer when the
// target changes.
func (d *dash) retarget(ctx context.Context, sweeps []server.SweepResponse) {
	target := d.pinned
	if target == "" {
		for _, sw := range sweeps { // newest last in the listing
			if sw.Status == "queued" || sw.Status == "running" || target == "" {
				target = sw.ID
			}
		}
	}
	if target == "" || target == d.tailTarget {
		return
	}
	if d.tailStop != nil {
		d.tailStop()
	}
	tctx, stop := context.WithCancel(ctx)
	d.tailTarget, d.tailStop = target, stop
	d.tail.reset(target)
	go func() {
		err := d.client.WatchSweep(tctx, target, func(ev server.WatchEvent) error {
			d.tail.add(formatEvent(ev))
			return nil
		})
		if err != nil && tctx.Err() == nil {
			d.tail.add("tail error: " + err.Error())
		}
	}()
}

func (d *dash) poolSection(b *strings.Builder, m map[string]float64, dt float64, h histRates) {
	workers := m["rfidd_workers"]
	busyFrac, jobsPerSec := h.busyFrac, h.jobsPerSec
	if !h.ok {
		// No server-side history: fall back to deltas between polls
		// (zero on the first frame by construction).
		if d.prev != nil && dt > 0 && workers > 0 {
			busyFrac = (m["rfidd_worker_busy_seconds_total"] - d.prev["rfidd_worker_busy_seconds_total"]) /
				(dt * workers)
		}
		jobsPerSec = d.rate(m, "rfidd_jobs_done_total", dt)
	}
	fmt.Fprintf(b, "\x1b[1mpool\x1b[0m     workers %.0f  busy %.0f  busy%%(recent) %s  queue %.0f (hiwater %.0f)\n",
		workers, m["rfidd_workers_busy"], pct(busyFrac),
		m["rfidd_queue_depth"], m["rfidd_queue_depth_high_water"])
	fmt.Fprintf(b, "         jobs done %.0f  failed %.0f  canceled %.0f  retries %.0f  done/s %s\n\n",
		m["rfidd_jobs_done_total"], m["rfidd_jobs_failed_total"],
		m["rfidd_jobs_canceled_total"], m["rfidd_jobs_retries_total"],
		rateStr(jobsPerSec))
}

// alertSection renders the SLO alert pane: a one-line summary plus a
// row per objective that is anywhere but inactive.
func alertSection(b *strings.Builder, resp server.AlertsResponse) {
	head := "\x1b[1malerts\x1b[0m  "
	if resp.Firing > 0 {
		head = "\x1b[1;31malerts\x1b[0m  "
	}
	fmt.Fprintf(b, "%s %d firing / %d objectives\n", head, resp.Firing, len(resp.Alerts))
	shown := 0
	for _, a := range resp.Alerts {
		if a.State == slo.StateInactive || shown >= 6 {
			continue
		}
		shown++
		fmt.Fprintf(b, "         %-24s %-9s target %.3f  burn fast %.2f  slow %.2f\n",
			a.Objective, a.State, a.Target, a.Burn["fast"], a.Burn["slow"])
	}
	b.WriteByte('\n')
}

func (d *dash) latencySection(b *strings.Builder, m map[string]float64) {
	fmt.Fprintf(b, "\x1b[1mlatency\x1b[0m  %-7s %14s %14s %14s\n", "origin", "queue-wait", "run", "cache-lookup")
	for _, origin := range []string{"job", "sweep"} {
		l := `{origin="` + origin + `"}`
		fmt.Fprintf(b, "         %-7s %14s %14s %14s\n", origin,
			avgStr(m, "rfidd_queue_wait_seconds", l),
			avgStr(m, "rfidd_run_seconds", l),
			avgStr(m, "rfidd_cache_lookup_seconds", l))
	}
	fmt.Fprintf(b, "         window-wait %s (n=%.0f)\n\n",
		avgStr(m, "rfidd_sweep_window_wait_seconds", ""),
		m["rfidd_sweep_window_wait_seconds_count"])
}

func (d *dash) cacheSection(b *strings.Builder, m map[string]float64) {
	fmt.Fprintf(b, "\x1b[1mcache\x1b[0m    entries %.0f/%.0f  hit-ratio %s\n",
		m["rfidd_cache_entries"], m["rfidd_cache_capacity"], pct(m["rfidd_cache_hit_ratio"]))
	for _, origin := range []string{"job", "sweep"} {
		l := `{origin="` + origin + `"}`
		hits := m["rfidd_cache_origin_hits_total"+l]
		misses := m["rfidd_cache_origin_misses_total"+l]
		ratio := 0.0
		if hits+misses > 0 {
			ratio = hits / (hits + misses)
		}
		fmt.Fprintf(b, "         %-7s hits %.0f  misses %.0f  ratio %s\n", origin, hits, misses, pct(ratio))
	}
	b.WriteByte('\n')
}

func (d *dash) sweepSection(b *strings.Builder, sweeps []server.SweepResponse) {
	fmt.Fprintf(b, "\x1b[1msweeps\x1b[0m   %d indexed\n", len(sweeps))
	// Newest five, newest first.
	for i, shown := len(sweeps)-1, 0; i >= 0 && shown < 5; i, shown = i-1, shown+1 {
		sw := sweeps[i]
		c := sw.Counts
		fmt.Fprintf(b, "         %-8s %-9s cells %d done %d cached %d coalesced %d failed %d\n",
			sw.ID, sw.Status, c.Cells, c.Done, c.Cached, c.Coalesced, c.Failed)
	}
	b.WriteByte('\n')
}

func (d *dash) eventSection(b *strings.Builder) {
	target, lines := d.tail.snapshot()
	if target == "" {
		fmt.Fprintf(b, "\x1b[1mevents\x1b[0m   (no sweep to tail yet)\n")
		return
	}
	fmt.Fprintf(b, "\x1b[1mevents\x1b[0m   tailing %s\n", target)
	for _, l := range lines {
		fmt.Fprintf(b, "         %s\n", l)
	}
}

// rate is the per-second delta of a counter since the previous frame.
func (d *dash) rate(m map[string]float64, key string, dt float64) float64 {
	if d.prev == nil || dt <= 0 {
		return 0
	}
	return (m[key] - d.prev[key]) / dt
}

// avgStr renders a histogram's overall mean as "1.2ms (n=34)".
func avgStr(m map[string]float64, family, labels string) string {
	count := m[family+"_count"+labels]
	if count == 0 {
		return "-"
	}
	mean := m[family+"_sum"+labels] / count
	return fmtSeconds(mean)
}

func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}

func pct(f float64) string {
	return strconv.FormatFloat(f*100, 'f', 1, 64) + "%"
}

func rateStr(f float64) string {
	return strconv.FormatFloat(f, 'f', 1, 64)
}

// formatEvent compacts one SSE event into a single tail line.
func formatEvent(ev server.WatchEvent) string {
	keys := make([]string, 0, len(ev.Data))
	for k := range ev.Data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "#%-5d %-6s", ev.ID, ev.Type)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%v", k, ev.Data[k])
	}
	if b.Len() > 110 {
		return b.String()[:107] + "..."
	}
	return b.String()
}

// tail is the bounded, mutex-guarded event-line ring the SSE tailer
// writes and the render loop reads.
type tail struct {
	mu     sync.Mutex
	target string
	lines  []string
	max    int
}

func newTail(max int) *tail {
	if max < 1 {
		max = 1
	}
	return &tail{max: max}
}

func (t *tail) reset(target string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.target = target
	t.lines = nil
}

func (t *tail) add(line string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lines = append(t.lines, line)
	if len(t.lines) > t.max {
		t.lines = t.lines[len(t.lines)-t.max:]
	}
}

func (t *tail) snapshot() (string, []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.target, append([]string(nil), t.lines...)
}

// stripANSI drops CSI escape sequences, turning a rendered frame into
// the -once plain-text form safe for pipes and logs.
func stripANSI(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == 0x1b && i+1 < len(s) && s[i+1] == '[' {
			j := i + 2
			for j < len(s) && (s[j] < 0x40 || s[j] > 0x7e) {
				j++
			}
			i = j
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// parseProm flattens a Prometheus text exposition into series → value,
// keyed by the series name with its label set verbatim.
func parseProm(text string) map[string]float64 {
	out := make(map[string]float64, 128)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		out[line[:sp]] = v
	}
	return out
}
