// Command ksequiv validates the statistical correctness of the
// simulator's stat mode: for each of the paper's Table-VI workloads
// (Cases I–IV) it runs the same configuration through the exact and
// stat engines and Kolmogorov–Smirnov-tests the per-round distributions
// of total slots, identification time and misidentification rate, plus
// a 3σ shadow-oracle audit of stat mode's false-single coins against
// the analytic 2^-(l·(m-1)) model. Seeds are fixed, so the verdict is
// deterministic; CI runs it as a blocking step.
//
// Usage:
//
//	ksequiv            # Cases I–II (seconds)
//	ksequiv -full      # Cases I–IV (tens of seconds; exact Case IV dominates)
//	ksequiv -alpha 0.001 -rounds 200
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/obs"
	"repro/internal/obs/audit"
	"repro/internal/sim"
)

type workload struct {
	name string
	cfg  sim.Config
}

func main() {
	full := flag.Bool("full", false, "include Cases III and IV (5000 and 50000 tags)")
	alpha := flag.Float64("alpha", 0.01, "KS significance level")
	rounds := flag.Int("rounds", 120, "rounds per mode for Cases I-II (III-IV run fewer)")
	flag.Parse()

	workloads := []workload{
		{"caseI/fsa-qcd", sim.Config{Tags: 50, Seed: 42, Algorithm: sim.AlgFSA,
			FrameSize: 30, Detector: sim.DetQCD, Strength: 8}},
		{"caseII/fsa-qcd", sim.Config{Tags: 500, Seed: 42, Algorithm: sim.AlgFSA,
			FrameSize: 300, Detector: sim.DetQCD, Strength: 8}},
		{"caseI/fsa-crccd", sim.Config{Tags: 50, Seed: 42, Algorithm: sim.AlgFSA,
			FrameSize: 30, Detector: sim.DetCRCCD}},
		{"caseII/edfsa-qcd", sim.Config{Tags: 500, Seed: 42, Algorithm: sim.AlgEDFSA,
			FrameSize: 256, Detector: sim.DetQCD, Strength: 8}},
		{"caseII/qadaptive-qcd", sim.Config{Tags: 500, Seed: 42, Algorithm: sim.AlgQAdaptive,
			Detector: sim.DetQCD, Strength: 8}},
	}
	if *full {
		workloads = append(workloads,
			workload{"caseIII/fsa-qcd", sim.Config{Tags: 5000, Seed: 42, Algorithm: sim.AlgFSA,
				FrameSize: 3000, Detector: sim.DetQCD, Strength: 8}},
			workload{"caseIV/fsa-qcd", sim.Config{Tags: 50000, Seed: 42, Algorithm: sim.AlgFSA,
				FrameSize: 30000, Detector: sim.DetQCD, Strength: 8}},
		)
	}

	failed := false
	for _, w := range workloads {
		r := *rounds
		if w.cfg.Tags >= 5000 {
			r = 40 // exact mode dominates the runtime; KS power stays adequate
		}
		rep, err := sim.StatEquivalence(w.cfg, r, *alpha)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ksequiv: %s: %v\n", w.name, err)
			os.Exit(1)
		}
		status := "PASS"
		if !rep.Pass() {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%-24s rounds=%d alpha=%g %s\n", w.name, r, *alpha, status)
		for _, m := range rep.Metrics {
			fmt.Printf("    %-10s D=%.4f crit=%.4f exact=%.1f stat=%.1f\n",
				m.Name, m.D, m.Critical, m.ExactMean, m.StatMean)
		}
	}

	if !auditThreeSigma() {
		failed = true
	}
	if failed {
		fmt.Println("ksequiv: FAIL")
		os.Exit(1)
	}
	fmt.Println("ksequiv: PASS")
}

// auditThreeSigma shadow-audits a stat-mode QCD run: the realised
// false-single count must sit within 3σ of the analytic expectation
// Σ 2^-(l·(m-1)) the audit layer accumulates from the Observe feed.
func auditThreeSigma() bool {
	a := audit.New(obs.NewRegistry(), audit.Options{ExemplarCap: 16})
	sim.InstrumentAudit(a)
	defer sim.UninstrumentAudit()
	c := sim.Config{
		Tags: 200, Seed: 42, Rounds: 80,
		Algorithm: sim.AlgFSA, FrameSize: 64,
		Detector: sim.DetQCD, Strength: 4,
		Mode: sim.ModeStat,
	}
	if _, err := sim.Run(c); err != nil {
		fmt.Fprintf(os.Stderr, "ksequiv: audit run: %v\n", err)
		return false
	}
	rep := a.Report()
	if len(rep.Detectors) != 1 {
		fmt.Fprintf(os.Stderr, "ksequiv: audit saw %d detectors, want 1\n", len(rep.Detectors))
		return false
	}
	d := rep.Detectors[0]
	diff := math.Abs(float64(d.FalseSingle) - d.ExpectedFalseSingles)
	ok := d.TrueCollided > 0 && d.FalseSingle > 0 && diff <= 3*d.ExpectedStdDev
	status := "PASS"
	if !ok {
		status = "FAIL"
	}
	fmt.Printf("%-24s false_singles=%d expected=%.1f±%.1f %s\n",
		"audit/qcd-4-3sigma", d.FalseSingle, d.ExpectedFalseSingles, d.ExpectedStdDev, status)
	return ok
}
