// Command qcdbench reproduces Table IV: the tag-side cost gap between
// CRC-CD and QCD, both from the instrumented cost model (instruction
// counts, memory, transmission) and as measured wall-clock nanoseconds on
// this machine.
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/analytic"
	"repro/internal/bitstr"
	"repro/internal/crc"
	"repro/internal/epc"
	"repro/internal/experiment"
	"repro/internal/prng"
)

func main() {
	iters := flag.Int("iters", 1_000_000, "iterations for the wall-clock measurement")
	flag.Parse()

	out, err := experiment.Table4(experiment.Options{})
	if err != nil {
		fmt.Println("qcdbench:", err)
		return
	}
	fmt.Print(out.Render())

	fmt.Printf("\nWall-clock on this machine (%d iterations each):\n", *iters)
	rng := prng.New(1)
	id := bitstr.FromUint64(rng.Bits(64), epc.IDBits)
	r8 := bitstr.FromUint64(rng.Bits(8), 8)

	start := time.Now()
	var sink uint64
	for i := 0; i < *iters; i++ {
		sink += crc.ChecksumBits(crc.CRC32IEEE, id)
	}
	crcNs := float64(time.Since(start).Nanoseconds()) / float64(*iters)

	start = time.Now()
	var sink2 int
	for i := 0; i < *iters; i++ {
		sink2 += bitstr.Not(r8).OnesCount()
	}
	notNs := float64(time.Since(start).Nanoseconds()) / float64(*iters)

	fmt.Printf("  bit-serial CRC-32 of a 64-bit ID: %8.1f ns/op\n", crcNs)
	fmt.Printf("  bitwise complement of 8-bit r:    %8.1f ns/op\n", notNs)
	fmt.Printf("  ratio: %.0fx  (sinks: %d %d)\n", crcNs/notNs, sink%10, sink2%10)

	fmt.Println("\nTime-optimal strength (expected-cost model, retries included):")
	for _, n := range []float64{50, 500, 5000, 50000} {
		lF, _ := analytic.FSAStrengthModel(n).OptimalStrength()
		lB, _ := analytic.BTStrengthModel(n).OptimalStrength()
		fmt.Printf("  n=%6.0f: FSA l*=%d, BT l*=%d  (paper recommends 8 for accuracy)\n", n, lF, lB)
	}
}
