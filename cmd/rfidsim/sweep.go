package main

// The -sweep path: rfidsim -sweep spec.json expands a parameter-grid
// spec (internal/sweep) and runs its cells on a local worker pool —
// the same scheduler, cache dedup and merged reporting the rfidd
// service uses, without a daemon. Output is the merged paper-style
// table (default), CSV (-csv), or per-cell JSON records (-json).

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/rescache"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// sweepCellOut is one cell in the -sweep -json output.
type sweepCellOut struct {
	Index  int             `json:"index"`
	Label  string          `json:"label"`
	Coords []string        `json:"coords,omitempty"`
	Status string          `json:"status"`
	Source string          `json:"source"` // run | cache | coalesced
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// loadSweepSpec reads the spec from path ("-" reads stdin).
func loadSweepSpec(path string) (sweep.Spec, error) {
	var spec sweep.Spec
	var raw []byte
	var err error
	if path == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		return spec, err
	}
	if err := json.Unmarshal(raw, &spec); err != nil {
		return spec, fmt.Errorf("parsing %s: %w", path, err)
	}
	return spec, nil
}

// runSweep executes the -sweep code path and returns the exit code.
func runSweep(ctx context.Context, path string, workers int, jsonOut, csvOut, progress bool, stdout, stderr io.Writer) int {
	spec, err := loadSweepSpec(path)
	if err != nil {
		fmt.Fprintln(stderr, "rfidsim: sweep:", err)
		return 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cellCount, err := spec.CellCount()
	if err != nil {
		fmt.Fprintln(stderr, "rfidsim: sweep:", err)
		return 1
	}

	pool := jobs.NewPool(jobs.Options{Workers: workers, QueueDepth: workers * 4})
	defer pool.Shutdown(context.Background())
	runner := &sweep.Runner{
		Pool:    pool,
		Cache:   rescache.New(cellCount + 1),
		Scratch: &sim.ScratchPool{},
	}
	var bus *obs.Bus
	progressDone := make(chan struct{})
	if progress {
		bus = obs.NewBus(2*cellCount + 16)
		sub := bus.Subscribe(2*cellCount+16, 0)
		go func() {
			defer close(progressDone)
			printed := false
			for ev := range sub.Events() {
				if ev.Type != "cell" {
					continue
				}
				fmt.Fprintf(stderr, "\rcell %v/%v  %v %v    ",
					ev.Data["done"], ev.Data["cells"], ev.Data["label"], ev.Data["status"])
				printed = true
			}
			if printed {
				fmt.Fprintln(stderr)
			}
		}()
	} else {
		close(progressDone)
	}

	s, err := runner.Start(ctx, "sweep", spec, bus)
	if err != nil {
		fmt.Fprintln(stderr, "rfidsim: sweep:", err)
		return 1
	}
	if err := s.Wait(ctx); err != nil {
		s.Cancel()
		_ = s.Wait(context.Background())
	}
	<-progressDone

	snap := s.Snapshot()
	switch {
	case jsonOut:
		cells := s.Cells("")
		out := make([]sweepCellOut, 0, len(cells))
		for _, c := range cells {
			src := "run"
			switch {
			case c.Cached:
				src = "cache"
			case c.DupOf >= 0:
				src = "coalesced"
			}
			out = append(out, sweepCellOut{
				Index: c.Index, Label: c.Label, Coords: c.Coords,
				Status: string(c.Status), Source: src, Result: c.Result, Error: c.Err,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "rfidsim: sweep:", err)
			return 1
		}
	default:
		tbl, err := s.MergedTable()
		if err != nil {
			fmt.Fprintln(stderr, "rfidsim: sweep:", err)
			return 1
		}
		if csvOut {
			fmt.Fprint(stdout, tbl.CSV())
		} else {
			fmt.Fprint(stdout, tbl.Render())
		}
	}
	if snap.Status != jobs.StatusDone {
		fmt.Fprintf(stderr, "rfidsim: sweep %s: %d/%d cells done (%d failed, %d canceled)\n",
			snap.Status, snap.Counts.Done, snap.Counts.Cells, snap.Counts.Failed, snap.Counts.Canceled)
		if snap.Status == jobs.StatusCanceled {
			return 2
		}
		return 1
	}
	return 0
}
