package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestRunSuccessTable(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-tags", "50", "-rounds", "3", "-frame", "32"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "throughput") {
		t.Fatalf("table output missing metrics:\n%s", out.String())
	}
	if strings.Contains(out.String(), "partial") {
		t.Fatalf("complete run must not be marked partial:\n%s", out.String())
	}
}

func TestRunJSONReportsCompletion(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-tags", "50", "-rounds", "3", "-frame", "32", "-json"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errb.String())
	}
	var got map[string]any
	if err := json.Unmarshal(out.Bytes(), &got); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if got["rounds_completed"] != float64(3) {
		t.Fatalf("rounds_completed = %v, want 3", got["rounds_completed"])
	}
	if _, partial := got["partial"]; partial {
		t.Fatalf("complete run must omit the partial marker: %v", got)
	}
}

// TestRunAuditTable checks the -audit flag end to end in table mode:
// a low-strength QCD run must print the confusion summary with real
// false-single counts.
func TestRunAuditTable(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-tags", "200", "-rounds", "10", "-frame", "64",
		"-detector", "qcd", "-strength", "4", "-audit",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "verdict audit (oracle shadow)") {
		t.Fatalf("audit table missing:\n%s", got)
	}
	for _, col := range []string{"false single", "fs rate expected", "QCD-4"} {
		if !strings.Contains(got, col) {
			t.Errorf("audit table missing %q:\n%s", col, got)
		}
	}
}

// TestRunAuditJSON checks the machine-readable audit report: the JSON
// summary grows an "audit" object whose confusion counts are populated
// and whose expected false-single mass is positive.
func TestRunAuditJSON(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-tags", "200", "-rounds", "10", "-frame", "64",
		"-detector", "qcd", "-strength", "4", "-audit", "-json",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errb.String())
	}
	var got struct {
		Audit *struct {
			Detectors []map[string]any `json:"detectors"`
			Exemplars []map[string]any `json:"exemplars"`
		} `json:"audit"`
	}
	if err := json.Unmarshal(out.Bytes(), &got); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if got.Audit == nil || len(got.Audit.Detectors) != 1 {
		t.Fatalf("audit block = %+v", got.Audit)
	}
	d := got.Audit.Detectors[0]
	if d["detector"] != "QCD-4" {
		t.Errorf("detector = %v", d["detector"])
	}
	if c, _ := d["correct"].(float64); c == 0 {
		t.Errorf("correct = %v, want > 0", d["correct"])
	}
	if e, _ := d["expected_false_singles"].(float64); e <= 0 {
		t.Errorf("expected_false_singles = %v, want > 0", d["expected_false_singles"])
	}
	// Without -audit the key must be absent entirely.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-tags", "50", "-rounds", "2", "-frame", "32", "-json"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errb.String())
	}
	var plain map[string]any
	if err := json.Unmarshal(out.Bytes(), &plain); err != nil {
		t.Fatal(err)
	}
	if _, ok := plain["audit"]; ok {
		t.Error("audit key present without -audit")
	}
}

// TestRunProgress checks the -progress live status line: it renders on
// stderr with carriage-return rewrites and reaches the final round.
func TestRunProgress(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-tags", "50", "-rounds", "3", "-frame", "32", "-progress"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errb.String())
	}
	got := errb.String()
	if !strings.Contains(got, "\rround ") {
		t.Fatalf("no status-line rewrites on stderr:\n%q", got)
	}
	if !strings.Contains(got, "round 3/3") {
		t.Fatalf("status line never reached the final round:\n%q", got)
	}
	// The result table still lands intact on stdout.
	if !strings.Contains(out.String(), "throughput") {
		t.Fatalf("table output missing after -progress:\n%s", out.String())
	}
}

func TestRunBadFlagExits2(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestTimeoutFlushesPartialResultsAndTrace exercises the -timeout abort
// path: the run must exit 2, report how many rounds completed, and still
// write a well-formed Chrome trace file.
func TestTimeoutFlushesPartialResultsAndTrace(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "out.json")
	var out, errb bytes.Buffer
	code := run([]string{
		"-tags", "500", "-rounds", "100000", "-frame", "300",
		"-timeout", "50ms", "-workers", "1", "-trace", tracePath,
	}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "flushing partial results") {
		t.Fatalf("stderr missing partial-flush notice:\n%s", errb.String())
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace file is not valid Chrome trace JSON: %v", err)
	}
	if trace.TraceEvents == nil {
		t.Fatal("traceEvents must be an array even on an aborted run")
	}
}

// TestTimeoutPartialJSON checks the machine-readable flavour of the
// abort path: partial results are emitted as JSON with the marker set.
func TestTimeoutPartialJSON(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-tags", "500", "-rounds", "100000", "-frame", "300",
		"-timeout", "50ms", "-workers", "1", "-json",
	}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr: %s", code, errb.String())
	}
	var got map[string]any
	if err := json.Unmarshal(out.Bytes(), &got); err != nil {
		t.Fatalf("partial output is not JSON: %v\n%s", err, out.String())
	}
	if got["partial"] != true {
		t.Fatalf("partial = %v, want true", got["partial"])
	}
	rc, ok := got["rounds_completed"].(float64)
	if !ok || rc >= 100000 {
		t.Fatalf("rounds_completed = %v, want < 100000", got["rounds_completed"])
	}
}

func TestTraceFileOnSuccess(t *testing.T) {
	dir := t.TempDir()
	chrome := filepath.Join(dir, "trace.json")
	jsonl := filepath.Join(dir, "trace.jsonl")
	var out, errb bytes.Buffer
	code := run([]string{
		"-tags", "50", "-rounds", "4", "-frame", "32",
		"-trace", chrome, "-trace-jsonl", jsonl,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errb.String())
	}

	raw, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatalf("chrome trace not written: %v", err)
	}
	var trace struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}
	var rounds, frames int
	for _, ev := range trace.TraceEvents {
		switch ev.Name {
		case "round":
			rounds++
		case "frame":
			frames++
		}
	}
	if rounds != 4 {
		t.Fatalf("trace has %d round spans, want 4", rounds)
	}
	if frames == 0 {
		t.Fatal("trace has no frame spans")
	}

	lines, err := os.ReadFile(jsonl)
	if err != nil {
		t.Fatalf("jsonl trace not written: %v", err)
	}
	for i, ln := range strings.Split(strings.TrimSpace(string(lines)), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("jsonl line %d invalid: %v", i+1, err)
		}
	}
}

// TestRunSweepCLI drives the -sweep path end to end: a 2×2 grid spec
// from a file, rendered as the merged table and as CSV.
func TestRunSweepCLI(t *testing.T) {
	spec := `{
		"name": "cli-smoke",
		"base": {"Tags": 40, "Seed": 3, "Rounds": 2, "Algorithm": "fsa", "FrameSize": 32, "Detector": "qcd", "Strength": 8},
		"axes": [
			{"field": "tags", "ints": [30, 60]},
			{"field": "strength", "ints": [4, 8]}
		]
	}`
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errb bytes.Buffer
	code := run([]string{"-sweep", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{"sweep cli-smoke", "tags", "strength", "throughput", "run"} {
		if !strings.Contains(got, want) {
			t.Errorf("merged table lacks %q:\n%s", want, got)
		}
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-sweep", path, "-csv"}, &out, &errb); code != 0 {
		t.Fatalf("-csv exit code = %d, stderr: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("merged CSV has %d lines, want 5:\n%s", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[0], "tags,strength,") {
		t.Errorf("CSV header %q", lines[0])
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-sweep", path, "-json"}, &out, &errb); code != 0 {
		t.Fatalf("-json exit code = %d, stderr: %s", code, errb.String())
	}
	var cells []map[string]any
	if err := json.Unmarshal(out.Bytes(), &cells); err != nil {
		t.Fatalf("-json output invalid: %v\n%s", err, out.String())
	}
	if len(cells) != 4 {
		t.Fatalf("-json emitted %d cells, want 4", len(cells))
	}
	for _, c := range cells {
		if c["status"] != "done" || c["result"] == nil {
			t.Errorf("cell %v not done with a result", c["label"])
		}
	}

	// A malformed spec file must fail cleanly.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-sweep", bad}, &out, &errb); code == 0 {
		t.Error("malformed spec accepted")
	}
}

// TestRunScenarioCLI drives the -scenario path: a small streaming
// warehouse spec from a file, rendered as the summary table and as
// JSON, with -workers pinned results identical to the default.
func TestRunScenarioCLI(t *testing.T) {
	spec := `{
		"name": "cli-smoke",
		"side_metres": 24, "readers": 16,
		"read_range_metres": 5, "interference_radius_metres": 9,
		"arrivals_per_second": 4000, "dwell_micros": 150000,
		"duration_micros": 200000, "session_micros": 2000, "seed": 7
	}`
	path := filepath.Join(t.TempDir(), "scn.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errb bytes.Buffer
	if code := run([]string{"-scenario", path}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"cli-smoke", "miss rate", "first-read latency mean"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("table output lacks %q:\n%s", want, out.String())
		}
	}

	decode := func(args ...string) map[string]any {
		out.Reset()
		errb.Reset()
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("%v exit code = %d, stderr: %s", args, code, errb.String())
		}
		var res map[string]any
		if err := json.Unmarshal(out.Bytes(), &res); err != nil {
			t.Fatalf("-json output invalid: %v\n%s", err, out.String())
		}
		return res
	}
	res := decode("-scenario", path, "-json")
	if n, _ := res["read"].(float64); n == 0 {
		t.Errorf("JSON result read nothing: %v", res)
	}
	// Worker count is scheduling only: pinning one worker must not move
	// a single tally.
	serial := decode("-scenario", path, "-json", "-workers", "1")
	delete(res["spec"].(map[string]any), "workers")
	delete(serial["spec"].(map[string]any), "workers")
	if !reflect.DeepEqual(res, serial) {
		t.Errorf("-workers 1 diverged:\n%v\nvs\n%v", serial, res)
	}

	// A malformed spec file must fail cleanly.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"readers": 7}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-scenario", bad}, &out, &errb); code == 0 {
		t.Error("invalid spec accepted")
	}
}
