package main

// The -scenario path: rfidsim -scenario spec.json runs a streaming
// warehouse scenario (internal/scenario) locally — the same engine the
// rfidd service exposes as POST /v1/scenarios, without a daemon.
// Output is a summary table (default) or the Result JSON (-json);
// -progress renders a live per-epoch status line on stderr.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// loadScenarioSpec reads the spec from path ("-" reads stdin).
func loadScenarioSpec(path string) (scenario.Spec, error) {
	var spec scenario.Spec
	var raw []byte
	var err error
	if path == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		return spec, err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return spec, fmt.Errorf("parsing %s: %w", path, err)
	}
	return spec, nil
}

// runScenario executes the -scenario code path and returns the exit
// code. A ctx timeout (-timeout) aborts the run; the partial result is
// still printed before exiting 2, mirroring the single-experiment path.
func runScenario(ctx context.Context, path string, workers int, jsonOut, progress bool, stdout, stderr io.Writer) int {
	spec, err := loadScenarioSpec(path)
	if err != nil {
		fmt.Fprintln(stderr, "rfidsim: scenario:", err)
		return 1
	}
	if workers > 0 {
		spec.Workers = workers
	}
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(stderr, "rfidsim: scenario:", err)
		return 1
	}

	opts := scenario.Options{Scratch: &sim.ScratchPool{}}
	printedProgress := false
	if progress {
		opts.OnEpoch = func(p scenario.Progress) {
			fmt.Fprintf(stderr, "\repoch %d  t=%.0fms  live %d  read %d  missed %d  miss %.3f    ",
				p.Epoch, p.SimMicros/1000, p.Live, p.Read, p.Missed, p.MissRate)
			printedProgress = true
		}
	}
	res, err := scenario.RunContext(ctx, spec, opts)
	if printedProgress {
		fmt.Fprintln(stderr)
	}
	aborted := errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
	if err != nil && !aborted {
		fmt.Fprintln(stderr, "rfidsim: scenario:", err)
		return 1
	}
	if aborted {
		fmt.Fprintf(stderr, "rfidsim: scenario aborted after %d epochs; flushing partial results\n", res.Epochs)
	}

	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(stderr, "rfidsim:", err)
			return 1
		}
	} else {
		printScenario(stdout, res)
	}
	if aborted {
		return 2
	}
	return 0
}

// printScenario renders the run summary as the paper-style table.
func printScenario(w io.Writer, res *scenario.Result) {
	name := res.Spec.Name
	if name == "" {
		name = "scenario"
	}
	title := fmt.Sprintf("%s: %d readers (%d colours), λ=%g tags/s, %.0f ms simulated",
		name, res.Spec.Readers, res.Colors, res.Spec.ArrivalsPerSecond, res.SimMicros/1000)
	t := report.NewTable(title, "metric", "value")
	row := func(k, v string) { t.AddRow(k, v) }
	row("epochs", fmt.Sprintf("%d", res.Epochs))
	row("arrived", fmt.Sprintf("%d", res.Arrived))
	row("covered", fmt.Sprintf("%d", res.Covered))
	row("read", fmt.Sprintf("%d", res.Read))
	row("missed", fmt.Sprintf("%d", res.Missed))
	row("miss rate", report.F(res.MissRate(), 4))
	row("first-read latency mean (μs)", report.F(res.LatencyMeanMicros, 1))
	row("first-read latency max (μs)", report.F(res.LatencyMaxMicros, 1))
	row("peak live tags", fmt.Sprintf("%d", res.PeakLive))
	row("slots idle/single/collided", fmt.Sprintf("%d/%d/%d",
		res.Census.Idle, res.Census.Single, res.Census.Collided))
	row("frames", fmt.Sprintf("%d", res.Census.Frames))
	row("airtime (μs)", report.F(res.AirtimeMicros, 0))
	fmt.Fprint(w, t.Render())
}
