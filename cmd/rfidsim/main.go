// Command rfidsim runs one RFID identification experiment and prints its
// aggregate metrics.
//
// Usage:
//
//	rfidsim -tags 500 -alg fsa -frame 300 -detector qcd -strength 8 -rounds 100
//	rfidsim -tags 5000 -alg bt -detector crccd
//	rfidsim -tags 500 -alg fsa -frame 300 -detector qcd -compare   # vs CRC-CD
//	rfidsim -tags 500 -alg fsa -frame 300 -trace out.json          # chrome://tracing export
//	rfidsim -tags 50000 -alg fsa -frame 30000 -stat-mode           # vectorised stat mode (fast sweeps)
//	rfidsim -sweep spec.json                                       # parameter-grid sweep, merged table
//	rfidsim -sweep spec.json -csv                                  # ... as CSV
//	rfidsim -scenario spec.json                                    # streaming warehouse scenario (internal/scenario)
//
// With -trace (Chrome trace-event JSON) or -trace-jsonl (one event per
// line) the run records per-round and per-frame spans. On a -timeout
// abort the partial aggregate and any recorded trace are still flushed
// before exiting 2, so a too-slow experiment is not a total loss.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	rfid "repro"
	"repro/internal/obs"
	"repro/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and an exit code, for tests.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rfidsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tags       = fs.Int("tags", 500, "number of tags")
		alg        = fs.String("alg", rfid.AlgFSA, "algorithm: fsa | bt | qadaptive | qt")
		frame      = fs.Int("frame", 300, "FSA frame size")
		policy     = fs.String("policy", rfid.PolicyFixed, "FSA frame policy: fixed | schoute | lowerbound | optimal")
		detector   = fs.String("detector", rfid.DetQCD, "detector: qcd | crccd | oracle")
		strength   = fs.Int("strength", 8, "QCD strength in bits")
		crcName    = fs.String("crc", "CRC-32/IEEE", "CRC preset for crccd")
		rounds     = fs.Int("rounds", 100, "Monte-Carlo rounds")
		seed       = fs.Uint64("seed", 1, "master seed")
		tau        = fs.Float64("tau", 1, "μs per bit")
		workers    = fs.Int("workers", 0, "parallel rounds (0 = GOMAXPROCS)")
		confirm    = fs.Bool("confirm-empty", true, "FSA reader terminates on an all-idle frame")
		statMode   = fs.Bool("stat-mode", false, "vectorised Monte-Carlo mode: same distributions, no per-tag simulation (framed ALOHA, ideal channel only)")
		ber        = fs.Float64("ber", 0, "channel bit-error rate (FSA only)")
		capture    = fs.Float64("capture", 0, "capture-effect probability (FSA only)")
		compare    = fs.Bool("compare", false, "also run CRC-CD on the same workload and report EI")
		sweepPath  = fs.String("sweep", "", "run a parameter-grid sweep from this JSON spec file (\"-\" = stdin) instead of a single experiment")
		scenPath   = fs.String("scenario", "", "run a streaming warehouse scenario from this JSON spec file (\"-\" = stdin) instead of a single experiment")
		sweepCSV   = fs.Bool("csv", false, "with -sweep, emit the merged output as CSV")
		jsonOut    = fs.Bool("json", false, "emit machine-readable JSON instead of a table")
		timeout    = fs.Duration("timeout", 0, "abort the experiment after this duration (0 = no limit)")
		traceOut   = fs.String("trace", "", "write a Chrome trace-event JSON run trace to this file")
		traceJSONL = fs.String("trace-jsonl", "", "write the run trace as JSONL to this file")
		traceCap   = fs.Int("trace-cap", 1<<16, "trace ring-buffer capacity in events")
		traceSamp  = fs.Int("trace-sample", 1, "record 1 in N round spans (1 = all)")
		progress   = fs.Bool("progress", false, "render a live per-round status line on stderr")
		auditFlag  = fs.Bool("audit", false, "shadow every verdict with the ground-truth oracle and report the confusion summary")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *sweepPath != "" {
		return runSweep(ctx, *sweepPath, *workers, *jsonOut, *sweepCSV, *progress, stdout, stderr)
	}
	if *scenPath != "" {
		return runScenario(ctx, *scenPath, *workers, *jsonOut, *progress, stdout, stderr)
	}

	var tracer *obs.Tracer
	if *traceOut != "" || *traceJSONL != "" {
		tracer = obs.NewTracer(*traceCap)
		tracer.SetSampling(*traceSamp)
		ctx = obs.WithTracer(ctx, tracer)
	}

	var auditor *rfid.Auditor
	if *auditFlag {
		auditor = rfid.EnableAudit(0)
		defer rfid.DisableAudit()
	}
	var bus *rfid.TelemetryBus
	var progressDone chan struct{}
	if *progress {
		bus = rfid.NewTelemetryBus(1024)
		ctx = rfid.WithTelemetry(ctx, bus)
		sub := bus.Subscribe(4096, 0)
		progressDone = make(chan struct{})
		go renderProgress(stderr, sub, progressDone)
	}
	// finishProgress retires the status line once the experiment (and,
	// with -compare, its baseline) is over, before the report prints.
	finishProgress := func() {
		if bus != nil {
			bus.Close()
			<-progressDone
			bus = nil
		}
	}
	defer finishProgress()
	flushTrace := func() bool {
		ok := true
		if *traceOut != "" {
			if err := writeTraceFile(*traceOut, tracer.WriteChromeTrace); err != nil {
				fmt.Fprintln(stderr, "rfidsim: trace:", err)
				ok = false
			}
		}
		if *traceJSONL != "" {
			if err := writeTraceFile(*traceJSONL, tracer.WriteJSONL); err != nil {
				fmt.Fprintln(stderr, "rfidsim: trace:", err)
				ok = false
			}
		}
		return ok
	}

	cfg := rfid.Config{
		Tags: *tags, Seed: *seed, Rounds: *rounds,
		Algorithm: *alg, FrameSize: *frame, FramePolicy: *policy,
		Detector: *detector, Strength: *strength, CRCName: *crcName,
		TauMicros: *tau, Workers: *workers, ConfirmEmpty: *confirm,
		BER: *ber, CaptureProb: *capture,
	}
	if *statMode {
		cfg.Mode = rfid.ModeStat
	}
	agg, err := rfid.RunContext(ctx, cfg)
	finishProgress()
	if errors.Is(err, context.DeadlineExceeded) {
		// Flush whatever completed before the -timeout abort.
		fmt.Fprintf(stderr, "rfidsim: experiment aborted: exceeded -timeout %s; flushing partial results (%d/%d rounds)\n",
			*timeout, agg.Completed, cfg.Rounds)
		if *jsonOut {
			printJSON(stdout, stderr, ctx, cfg, agg, false, *timeout, auditor)
		} else if agg.Completed > 0 {
			printAggregate(stdout, cfg, agg)
		}
		flushTrace()
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "rfidsim: %v\n", err)
		return 1
	}

	if *jsonOut {
		if code := printJSON(stdout, stderr, ctx, cfg, agg, *compare, *timeout, auditor); code != 0 {
			return code
		}
	} else {
		printAggregate(stdout, cfg, agg)
		if *compare {
			base := cfg
			base.Detector = rfid.DetCRCCD
			baseAgg, err := rfid.RunContext(ctx, base)
			if err != nil {
				if code := baselineErr(stderr, err, *timeout); code != 0 {
					flushTrace()
					return code
				}
			}
			ei := (baseAgg.TimeMicros.Mean() - agg.TimeMicros.Mean()) / baseAgg.TimeMicros.Mean()
			fmt.Fprintf(stdout, "\nbaseline CRC-CD time: %.4g μs\nefficiency improvement (EI): %.2f%%\n",
				baseAgg.TimeMicros.Mean(), 100*ei)
		}
		if auditor != nil {
			printAuditReport(stdout, auditor.Report())
		}
	}
	if !flushTrace() {
		return 1
	}
	return 0
}

// writeTraceFile writes one trace export to path.
func writeTraceFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// baselineErr reports a -compare baseline failure and returns the exit
// code (2 for a timeout abort, 1 otherwise).
func baselineErr(stderr io.Writer, err error, timeout time.Duration) int {
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(stderr, "rfidsim (baseline): experiment aborted: exceeded -timeout %s\n", timeout)
		return 2
	}
	fmt.Fprintf(stderr, "rfidsim (baseline): %v\n", err)
	return 1
}

// renderProgress consumes the telemetry stream and keeps one live
// status line on w, rewritten in place per completed round. The line
// carries process health (goroutines, heap, GC) alongside simulation
// progress so a long run's resource trajectory is visible at a glance.
func renderProgress(w io.Writer, sub *rfid.TelemetrySubscription, done chan<- struct{}) {
	defer close(done)
	rc := obs.NewRuntimeCollector()
	audits := 0
	printed := false
	for ev := range sub.Events() {
		switch ev.Type {
		case "audit":
			audits++
		case "round":
			rs := rc.Stats()
			fmt.Fprintf(w, "\rround %v/%v  slots %v  identified %v  audit hits %d  | gor %d  heap %s  gc %d    ",
				ev.Data["completed"], ev.Data["rounds"], ev.Data["slots"], ev.Data["identified"], audits,
				rs.Goroutines, fmtBytes(rs.HeapInuse), rs.GCCycles)
			printed = true
		}
	}
	if printed {
		fmt.Fprintln(w)
	}
}

// fmtBytes renders a byte count with a binary unit suffix.
func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// printAuditReport renders the verdict confusion summary per detector.
func printAuditReport(w io.Writer, rep rfid.AuditReport) {
	t := report.NewTable("verdict audit (oracle shadow)",
		"detector", "correct", "false single", "false collided", "false idle",
		"fs rate", "fs rate expected")
	for _, d := range rep.Detectors {
		t.AddRow(d.Detector,
			fmt.Sprintf("%d", d.Correct),
			fmt.Sprintf("%d", d.FalseSingle),
			fmt.Sprintf("%d", d.FalseCollision),
			fmt.Sprintf("%d", d.FalseIdle),
			report.F(d.FalseSingleRate, 6),
			report.F(d.ExpectedFalseSingleRate, 6))
	}
	fmt.Fprint(w, "\n"+t.Render())
	if n := len(rep.Exemplars); n > 0 {
		fmt.Fprintf(w, "%d misclassified slot(s) captured; first: %+v\n", n, rep.Exemplars[0])
	}
}

// jsonSummary wraps the shared aggregate encoding with the CLI-only
// baseline comparison, partial-run marker and optional audit report.
type jsonSummary struct {
	report.AggregateSummary
	BaselineEI      *float64          `json:"baseline_ei,omitempty"`
	Partial         bool              `json:"partial,omitempty"`
	RoundsCompleted int               `json:"rounds_completed"`
	Audit           *rfid.AuditReport `json:"audit,omitempty"`
}

func printJSON(stdout, stderr io.Writer, ctx context.Context, cfg rfid.Config, a *rfid.Aggregate, compare bool, timeout time.Duration, auditor *rfid.Auditor) int {
	out := jsonSummary{
		AggregateSummary: report.NewAggregateSummary(cfg, a),
		Partial:          a.Completed < a.Cfg.Rounds,
		RoundsCompleted:  a.Completed,
	}
	if auditor != nil {
		rep := auditor.Report()
		out.Audit = &rep
	}
	if compare {
		base := cfg
		base.Detector = rfid.DetCRCCD
		baseAgg, err := rfid.RunContext(ctx, base)
		if err != nil {
			return baselineErr(stderr, err, timeout)
		}
		ei := (baseAgg.TimeMicros.Mean() - a.TimeMicros.Mean()) / baseAgg.TimeMicros.Mean()
		out.BaselineEI = &ei
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(stderr, "rfidsim:", err)
		return 1
	}
	return 0
}

func printAggregate(w io.Writer, cfg rfid.Config, a *rfid.Aggregate) {
	title := fmt.Sprintf("%s + %s: %d tags, %d rounds", cfg.Algorithm, cfg.Detector, cfg.Tags, cfg.Rounds)
	if a.Completed < cfg.Rounds {
		title += fmt.Sprintf(" (partial: %d completed)", a.Completed)
	}
	t := report.NewTable(title, "metric", "mean", "stddev", "ci95")
	row := func(name string, mean, sd, ci float64, dec int) {
		t.AddRow(name, report.F(mean, dec), report.F(sd, dec), report.F(ci, dec))
	}
	row("slots", a.Slots.Mean(), a.Slots.StdDev(), a.Slots.CI95(), 1)
	row("frames", a.Frames.Mean(), a.Frames.StdDev(), a.Frames.CI95(), 1)
	row("idle slots", a.Idle.Mean(), a.Idle.StdDev(), a.Idle.CI95(), 1)
	row("single slots", a.Single.Mean(), a.Single.StdDev(), a.Single.CI95(), 1)
	row("collided slots", a.Collided.Mean(), a.Collided.StdDev(), a.Collided.CI95(), 1)
	row("throughput λ", a.Throughput.Mean(), a.Throughput.StdDev(), a.Throughput.CI95(), 4)
	row("time (μs)", a.TimeMicros.Mean(), a.TimeMicros.StdDev(), a.TimeMicros.CI95(), 0)
	row("accuracy", a.Accuracy.Mean(), a.Accuracy.StdDev(), a.Accuracy.CI95(), 4)
	row("utilisation rate", a.UR.Mean(), a.UR.StdDev(), a.UR.CI95(), 4)
	row("mean delay (μs)", a.Delay.Mean(), a.Delay.StdDev(), 0, 0)
	fmt.Fprint(w, t.Render())
}
