// Command rfidsim runs one RFID identification experiment and prints its
// aggregate metrics.
//
// Usage:
//
//	rfidsim -tags 500 -alg fsa -frame 300 -detector qcd -strength 8 -rounds 100
//	rfidsim -tags 5000 -alg bt -detector crccd
//	rfidsim -tags 500 -alg fsa -frame 300 -detector qcd -compare   # vs CRC-CD
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	rfid "repro"
	"repro/internal/report"
)

func main() {
	var (
		tags     = flag.Int("tags", 500, "number of tags")
		alg      = flag.String("alg", rfid.AlgFSA, "algorithm: fsa | bt | qadaptive | qt")
		frame    = flag.Int("frame", 300, "FSA frame size")
		policy   = flag.String("policy", rfid.PolicyFixed, "FSA frame policy: fixed | schoute | lowerbound | optimal")
		detector = flag.String("detector", rfid.DetQCD, "detector: qcd | crccd | oracle")
		strength = flag.Int("strength", 8, "QCD strength in bits")
		crcName  = flag.String("crc", "CRC-32/IEEE", "CRC preset for crccd")
		rounds   = flag.Int("rounds", 100, "Monte-Carlo rounds")
		seed     = flag.Uint64("seed", 1, "master seed")
		tau      = flag.Float64("tau", 1, "μs per bit")
		workers  = flag.Int("workers", 0, "parallel rounds (0 = GOMAXPROCS)")
		confirm  = flag.Bool("confirm-empty", true, "FSA reader terminates on an all-idle frame")
		ber      = flag.Float64("ber", 0, "channel bit-error rate (FSA only)")
		capture  = flag.Float64("capture", 0, "capture-effect probability (FSA only)")
		compare  = flag.Bool("compare", false, "also run CRC-CD on the same workload and report EI")
		jsonOut  = flag.Bool("json", false, "emit machine-readable JSON instead of a table")
		timeout  = flag.Duration("timeout", 0, "abort the experiment after this duration (0 = no limit)")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := rfid.Config{
		Tags: *tags, Seed: *seed, Rounds: *rounds,
		Algorithm: *alg, FrameSize: *frame, FramePolicy: *policy,
		Detector: *detector, Strength: *strength, CRCName: *crcName,
		TauMicros: *tau, Workers: *workers, ConfirmEmpty: *confirm,
		BER: *ber, CaptureProb: *capture,
	}
	agg, err := rfid.RunContext(ctx, cfg)
	if err != nil {
		exitOnError(err, *timeout, "")
	}
	if *jsonOut {
		printJSON(ctx, cfg, agg, *compare, *timeout)
		return
	}
	printAggregate(cfg, agg)

	if *compare {
		base := cfg
		base.Detector = rfid.DetCRCCD
		baseAgg, err := rfid.RunContext(ctx, base)
		if err != nil {
			exitOnError(err, *timeout, " (baseline)")
		}
		ei := (baseAgg.TimeMicros.Mean() - agg.TimeMicros.Mean()) / baseAgg.TimeMicros.Mean()
		fmt.Printf("\nbaseline CRC-CD time: %.4g μs\nefficiency improvement (EI): %.2f%%\n",
			baseAgg.TimeMicros.Mean(), 100*ei)
	}
}

// exitOnError reports a run failure, distinguishing a -timeout abort.
func exitOnError(err error, timeout time.Duration, suffix string) {
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "rfidsim%s: experiment aborted: exceeded -timeout %s\n", suffix, timeout)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "rfidsim%s: %v\n", suffix, err)
	os.Exit(1)
}

// jsonSummary wraps the shared aggregate encoding with the CLI-only
// baseline comparison.
type jsonSummary struct {
	report.AggregateSummary
	BaselineEI *float64 `json:"baseline_ei,omitempty"`
}

func printJSON(ctx context.Context, cfg rfid.Config, a *rfid.Aggregate, compare bool, timeout time.Duration) {
	out := jsonSummary{AggregateSummary: report.NewAggregateSummary(cfg, a)}
	if compare {
		base := cfg
		base.Detector = rfid.DetCRCCD
		baseAgg, err := rfid.RunContext(ctx, base)
		if err != nil {
			exitOnError(err, timeout, " (baseline)")
		}
		ei := (baseAgg.TimeMicros.Mean() - a.TimeMicros.Mean()) / baseAgg.TimeMicros.Mean()
		out.BaselineEI = &ei
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "rfidsim:", err)
		os.Exit(1)
	}
}

func printAggregate(cfg rfid.Config, a *rfid.Aggregate) {
	t := report.NewTable(
		fmt.Sprintf("%s + %s: %d tags, %d rounds", cfg.Algorithm, cfg.Detector, cfg.Tags, cfg.Rounds),
		"metric", "mean", "stddev", "ci95")
	row := func(name string, mean, sd, ci float64, dec int) {
		t.AddRow(name, report.F(mean, dec), report.F(sd, dec), report.F(ci, dec))
	}
	row("slots", a.Slots.Mean(), a.Slots.StdDev(), a.Slots.CI95(), 1)
	row("frames", a.Frames.Mean(), a.Frames.StdDev(), a.Frames.CI95(), 1)
	row("idle slots", a.Idle.Mean(), a.Idle.StdDev(), a.Idle.CI95(), 1)
	row("single slots", a.Single.Mean(), a.Single.StdDev(), a.Single.CI95(), 1)
	row("collided slots", a.Collided.Mean(), a.Collided.StdDev(), a.Collided.CI95(), 1)
	row("throughput λ", a.Throughput.Mean(), a.Throughput.StdDev(), a.Throughput.CI95(), 4)
	row("time (μs)", a.TimeMicros.Mean(), a.TimeMicros.StdDev(), a.TimeMicros.CI95(), 0)
	row("accuracy", a.Accuracy.Mean(), a.Accuracy.StdDev(), a.Accuracy.CI95(), 4)
	row("utilisation rate", a.UR.Mean(), a.UR.StdDev(), a.UR.CI95(), 4)
	row("mean delay (μs)", a.Delay.Mean(), a.Delay.StdDev(), 0, 0)
	fmt.Print(t.Render())
}
