// Command paper regenerates the tables and figures of "Revisiting Tag
// Collision Problem in RFID Systems" (ICPP 2010).
//
// Usage:
//
//	paper -exp all                      # everything, paper-scale (minutes)
//	paper -exp table7 -rounds 20        # one artifact, fewer rounds
//	paper -exp fig8 -maxcase 2          # cases I–II only
//	paper -exp fig7 -chart              # render figures as ASCII charts too
//	paper -exp all -out results/        # also write one file per artifact
//	paper -list                         # show available experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	rfid "repro"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id or 'all'")
		rounds  = flag.Int("rounds", 0, "Monte-Carlo rounds (0 = paper's 100)")
		maxCase = flag.Int("maxcase", 0, "limit Table VI cases to 1..4 (0 = all; case IV has 50000 tags)")
		seed    = flag.Uint64("seed", 1, "master seed")
		workers = flag.Int("workers", 0, "parallel rounds (0 = GOMAXPROCS)")
		chart   = flag.Bool("chart", false, "render data series as ASCII bar charts as well")
		outDir  = flag.String("out", "", "directory to write one <id>.txt per artifact (created if needed)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range rfid.Experiments() {
			fmt.Printf("%-20s %s\n", r.ID, r.Title)
		}
		return
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
	}

	opts := rfid.ExperimentOptions{
		Rounds: *rounds, MaxCase: *maxCase, Seed: *seed, Workers: *workers,
	}

	run := func(id, title string) {
		start := time.Now()
		out, csv, err := rfid.RunExperimentCSV(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paper: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *chart {
			out += chartify(out)
		}
		fmt.Printf("### %s — %s\n\n%s\n(%.1fs)\n\n", id, title, out, time.Since(start).Seconds())
		if *outDir != "" {
			body := fmt.Sprintf("%s — %s\nrounds=%d maxcase=%d seed=%d\n\n%s",
				id, title, *rounds, *maxCase, *seed, out)
			writeArtifact(filepath.Join(*outDir, id+".txt"), body)
			if csv != "" {
				writeArtifact(filepath.Join(*outDir, id+".csv"), csv)
			}
		}
	}

	if *exp == "all" {
		for _, r := range rfid.Experiments() {
			run(r.ID, r.Title)
		}
		return
	}
	for _, r := range rfid.Experiments() {
		if r.ID == *exp {
			run(r.ID, r.Title)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "paper: unknown experiment %q (use -list)\n", *exp)
	os.Exit(1)
}

func writeArtifact(path, body string) {
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "paper: write %s: %v\n", path, err)
		os.Exit(1)
	}
}

// chartify re-renders any "# title / # x=..." series blocks found in the
// text as log-scale ASCII charts.
func chartify(text string) string {
	var charts []string
	for _, block := range splitSeriesBlocks(text) {
		if c := rfid.RenderSeriesChart(block, 48); c != "" {
			charts = append(charts, c)
		}
	}
	if len(charts) == 0 {
		return ""
	}
	return "\n" + strings.Join(charts, "\n")
}

func splitSeriesBlocks(text string) []string {
	var blocks []string
	lines := strings.Split(text, "\n")
	var cur []string
	flush := func() {
		if len(cur) > 0 {
			blocks = append(blocks, strings.Join(cur, "\n"))
			cur = nil
		}
	}
	inBlock := false
	for _, l := range lines {
		switch {
		case strings.HasPrefix(l, "# "):
			if !inBlock {
				flush()
				inBlock = true
			}
			cur = append(cur, l)
		case inBlock && strings.TrimSpace(l) != "" && !strings.HasPrefix(l, "#"):
			cur = append(cur, l)
		default:
			inBlock = false
			flush()
		}
	}
	flush()
	return blocks
}
