// Command tracecheck validates the shape of a Chrome trace-event JSON
// file, as written by rfidsim -trace or the rfidd trace endpoint. It is
// the CI half of the trace-demo target: a schema drift in the exporter
// fails the build rather than silently producing files chrome://tracing
// cannot load.
//
// Usage:
//
//	tracecheck [-min-events 1] trace.json
//
// Checks: the document is a JSON object with a traceEvents array of at
// least -min-events entries; every event carries name, ph, pid, tid and
// a non-negative ts; complete ("X") events carry a non-negative dur.
// Exits 1 with a diagnostic on the first violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type event struct {
	Name  string   `json:"name"`
	Phase string   `json:"ph"`
	TS    *float64 `json:"ts"`
	Dur   *float64 `json:"dur"`
	PID   *int     `json:"pid"`
	TID   *int     `json:"tid"`
}

func main() {
	minEvents := flag.Int("min-events", 1, "minimum number of trace events required")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-min-events N] trace.json")
		os.Exit(2)
	}
	if err := check(flag.Arg(0), *minEvents); err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", flag.Arg(0), err)
		os.Exit(1)
	}
	fmt.Printf("tracecheck: %s ok\n", flag.Arg(0))
}

func check(path string, minEvents int) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []event `json:"traceEvents"`
	}
	// Extra top-level keys (displayTimeUnit etc.) are fine, but the
	// document must be an object, not a bare array.
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("not a Chrome trace object: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("missing traceEvents array")
	}
	if len(doc.TraceEvents) < minEvents {
		return fmt.Errorf("only %d trace events, want at least %d", len(doc.TraceEvents), minEvents)
	}
	for i, ev := range doc.TraceEvents {
		where := fmt.Sprintf("event %d (%q)", i, ev.Name)
		if ev.Name == "" {
			return fmt.Errorf("event %d: empty name", i)
		}
		if ev.Phase == "" {
			return fmt.Errorf("%s: empty ph", where)
		}
		if ev.TS == nil || *ev.TS < 0 {
			return fmt.Errorf("%s: missing or negative ts", where)
		}
		if ev.PID == nil || ev.TID == nil {
			return fmt.Errorf("%s: missing pid/tid", where)
		}
		if ev.Phase == "X" && (ev.Dur == nil || *ev.Dur < 0) {
			return fmt.Errorf("%s: complete event with missing or negative dur", where)
		}
	}
	return nil
}
