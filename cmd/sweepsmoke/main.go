// Command sweepsmoke is the CI smoke test for the sweep engine: it
// boots the rfidd service in-process on a loopback listener, runs a
// tiny 2×2 parameter grid end to end through POST /v1/sweeps, and
// asserts the merged CSV shape; a second identical sweep must then be
// served from the result cache, visible as sweep-origin hits on
// /metrics — and the full live exposition must pass the Prometheus
// text-format linter. Exits non-zero on any violation, so
// scripts/check.sh can gate on it.
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/sweep"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sweepsmoke:", err)
		os.Exit(1)
	}
	fmt.Println("sweepsmoke: ok")
}

func run() error {
	svc := server.New(server.Options{Workers: 2, QueueDepth: 16, CacheSize: 64})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		_ = svc.Shutdown(ctx)
	}()

	c := server.NewClient("http://" + ln.Addr().String())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	spec := sweep.Spec{
		Name: "smoke",
		Base: sim.Config{
			Tags: 60, Seed: 42, Rounds: 3,
			Algorithm: sim.AlgFSA, FrameSize: 40,
			Detector: sim.DetQCD, Strength: 8,
		},
		Axes: []sweep.Axis{
			{Field: sweep.FieldTags, Ints: []int{40, 80}},
			{Field: sweep.FieldStrength, Ints: []int{4, 8}},
		},
	}

	first, err := c.SubmitSweep(ctx, spec)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	final, err := c.WaitSweep(ctx, first.ID, 0)
	if err != nil {
		return fmt.Errorf("wait: %w", err)
	}
	if final.Status != "done" || final.Counts.Done != 4 {
		return fmt.Errorf("sweep finished %s with counts %+v", final.Status, final.Counts)
	}

	// Merged CSV: header (axes + metrics + source) plus one row per cell.
	csv, err := c.SweepReport(ctx, first.ID, "csv")
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 5 {
		return fmt.Errorf("merged CSV has %d lines, want 5:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "tags,strength,") || !strings.HasSuffix(lines[0], ",source") {
		return fmt.Errorf("merged CSV header %q", lines[0])
	}
	for _, l := range lines[1:] {
		if n := strings.Count(l, ","); n != strings.Count(lines[0], ",") {
			return fmt.Errorf("ragged CSV row %q", l)
		}
	}

	// Repeating the sweep must be served from the result cache.
	second, err := c.SubmitSweep(ctx, spec)
	if err != nil {
		return fmt.Errorf("second submit: %w", err)
	}
	final2, err := c.WaitSweep(ctx, second.ID, 0)
	if err != nil {
		return fmt.Errorf("second wait: %w", err)
	}
	if final2.Counts.Cached < 1 {
		return fmt.Errorf("second sweep hit the cache %d times, want >= 1 (counts %+v)",
			final2.Counts.Cached, final2.Counts)
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if !strings.Contains(text, `rfidd_cache_origin_hits_total{origin="sweep"} 4`) {
		return fmt.Errorf("metrics lack the sweep-origin cache hits:\n%s", grepLines(text, "origin"))
	}
	// The whole live exposition must pass the Prometheus text-format
	// linter — after real traffic, with every family populated.
	if errs := obs.LintPrometheus(text); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "sweepsmoke: lint:", e)
		}
		return fmt.Errorf("/metrics failed exposition lint with %d errors", len(errs))
	}
	return nil
}

// grepLines keeps error output readable: only the exposition lines
// containing the substring.
func grepLines(text, substr string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
