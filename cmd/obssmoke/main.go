// Command obssmoke is the CI smoke test for the observability surface:
// it boots the rfidd service in-process on a loopback listener, submits
// a traced parameter sweep over HTTP, and asserts that the pieces this
// service promises actually joined up —
//
//   - the X-Trace-Id response header carries a valid trace ID,
//   - GET /v1/traces/{id} returns a non-empty Chrome trace-event span
//     tree in which the request span parents the sweep span and the
//     sweep span parents every cell span,
//   - pool (jobs) and simulator (sim) spans landed in the same trace,
//   - GET /debug/statusz renders the self-contained HTML snapshot with
//     its pool / cache / sweeps / wide-event sections,
//   - GET /v1/metrics/history serves non-empty rate series for the
//     queue-wait, run-latency and cache-hit-ratio of the sweep it just
//     drove,
//   - a synthetic SLO breach (a goroutine-ceiling gauge objective the
//     smoke violates on purpose, with tiny burn windows) walks
//     pending → firing → resolved on the alert bus, in /v1/alerts and
//     on statusz, then clears,
//   - the full /metrics exposition — including the new runtime_*,
//     obs_tsdb_* and slo_* series — passes obs.LintPrometheus.
//
// Exits non-zero on any violation — in particular on an empty span
// tree — so scripts/check.sh and CI can gate on it.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/slo"
	"repro/internal/obs/tsdb"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/sweep"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "obssmoke:", err)
		os.Exit(1)
	}
	fmt.Println("obssmoke: ok")
}

// Synthetic SLO policy: a gauge objective on the process goroutine
// count, which the smoke can push over threshold deterministically by
// parking goroutines — no dependence on simulator or scheduler speed.
// The fast pair is disabled (unreachable burn) so the objective walks
// the slow pair: pending once the short window is hot, firing once the
// long window confirms.
const (
	goroutineCeiling = 1500
	parkedGoroutines = 3000
)

func smokeSLOConfig() slo.Config {
	return slo.Config{
		Windows: slo.Windows{
			Fast: slo.Duration(60 * time.Millisecond), FastLong: slo.Duration(180 * time.Millisecond), FastBurn: 1e9,
			Slow: slo.Duration(150 * time.Millisecond), SlowLong: slo.Duration(450 * time.Millisecond), SlowBurn: 5,
		},
		Objectives: []slo.Objective{{
			Name: "smoke-goroutine-ceiling", Kind: slo.KindGauge,
			Series: "runtime_goroutines", Threshold: goroutineCeiling, Target: 0.9,
			Description: "synthetic objective the smoke breaches on purpose",
		}},
	}
}

func run() error {
	cfg := smokeSLOConfig()
	svc := server.New(server.Options{
		Workers: 2, QueueDepth: 16, CacheSize: 64,
		HistoryInterval:  25 * time.Millisecond,
		HistoryRetention: 2 * time.Minute,
		SLOConfig:        &cfg,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		_ = svc.Shutdown(ctx)
	}()

	c := server.NewClient("http://" + ln.Addr().String())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// A counter step only registers in the history if the ring holds the
	// pre-step value, so wait for at least one real sample before driving
	// traffic. (Series exist from construction; require Samples > 0.)
	if err := waitFor(ctx, "first history tick", func() (bool, error) {
		idx, err := c.HistoryIndex(ctx)
		if err != nil {
			return false, err
		}
		for _, info := range idx.Series {
			if info.Samples > 0 {
				return true, nil
			}
		}
		return false, nil
	}); err != nil {
		return err
	}

	spec := sweep.Spec{
		Name: "obssmoke",
		Base: sim.Config{
			Tags: 60, Seed: 42, Rounds: 3,
			Algorithm: sim.AlgFSA, FrameSize: 40,
			Detector: sim.DetQCD, Strength: 8,
		},
		Axes: []sweep.Axis{
			{Field: sweep.FieldTags, Ints: []int{40, 80}},
			{Field: sweep.FieldStrength, Ints: []int{4, 8}},
		},
	}

	sub, traceID, err := c.SubmitSweepTraced(ctx, spec, "")
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	if !obs.ValidTraceID(traceID) {
		return fmt.Errorf("X-Trace-Id response header %q is not a valid trace ID", traceID)
	}
	final, err := c.WaitSweep(ctx, sub.ID, 0)
	if err != nil {
		return fmt.Errorf("wait: %w", err)
	}
	if final.Status != "done" || final.Counts.Done != 4 {
		return fmt.Errorf("sweep finished %s with counts %+v", final.Status, final.Counts)
	}

	if err := checkTrace(ctx, c, traceID); err != nil {
		return err
	}
	if err := checkStatusz(ctx, c, sub.ID); err != nil {
		return err
	}
	if err := checkHistory(ctx, c); err != nil {
		return err
	}
	if err := checkSyntheticAlert(ctx, c); err != nil {
		return err
	}
	return checkLint(ctx, c)
}

// waitFor polls cond until it holds, cond fails hard, or ctx ends.
func waitFor(ctx context.Context, what string, cond func() (bool, error)) error {
	for {
		ok, err := cond()
		if err != nil {
			return fmt.Errorf("waiting for %s: %w", what, err)
		}
		if ok {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("timed out waiting for %s", what)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// checkHistory asserts the history store served real derived series for
// the sweep that just ran: per-second rates for the queue-wait and
// run-latency counts, and raw points for the cache hit ratio.
func checkHistory(ctx context.Context, c *server.Client) error {
	rateSeries := []string{
		`rfidd_queue_wait_seconds_count{origin="sweep"}`,
		`rfidd_run_seconds_count{origin="sweep"}`,
	}
	// The sweep's count steps land on the next tick; poll briefly.
	if err := waitFor(ctx, "sweep rate series", func() (bool, error) {
		resp, err := c.MetricsHistory(ctx, rateSeries, 0, tsdb.ReduceRate)
		if err != nil {
			return false, err
		}
		for _, res := range resp.Results {
			if maxPoint(res.Points) <= 0 {
				return false, nil
			}
		}
		return true, nil
	}); err != nil {
		return err
	}
	resp, err := c.MetricsHistory(ctx, []string{"rfidd_cache_hit_ratio"}, 0, tsdb.ReduceRaw)
	if err != nil {
		return fmt.Errorf("cache hit ratio history: %w", err)
	}
	if len(resp.Results) != 1 || len(resp.Results[0].Points) == 0 {
		return fmt.Errorf("cache hit ratio history is empty")
	}
	return nil
}

// maxPoint returns the largest finite point value (0 for none).
func maxPoint(pts []tsdb.Point) float64 {
	var max float64
	for _, p := range pts {
		if p.V == p.V && p.V > max {
			max = p.V
		}
	}
	return max
}

// checkSyntheticAlert breaches the smoke's goroutine-ceiling objective
// by parking goroutines, follows the alert through pending → firing on
// /v1/alerts and statusz, releases the goroutines, waits for the clear,
// and finally replays the bus to assert the exact transition order.
func checkSyntheticAlert(ctx context.Context, c *server.Client) error {
	state := func() (string, int, error) {
		resp, err := c.Alerts(ctx)
		if err != nil {
			return "", 0, err
		}
		for _, a := range resp.Alerts {
			if a.Objective == "smoke-goroutine-ceiling" {
				return a.State, resp.Firing, nil
			}
		}
		return "", 0, fmt.Errorf("objective smoke-goroutine-ceiling missing from /v1/alerts")
	}
	if st, firing, err := state(); err != nil {
		return err
	} else if st != slo.StateInactive || firing != 0 {
		return fmt.Errorf("before breach: state=%s firing=%d, want inactive/0 "+
			"(is the baseline goroutine count already above %d?)", st, firing, goroutineCeiling)
	}

	// Breach: hold the process goroutine count far above the ceiling.
	release := make(chan struct{})
	released := false
	defer func() {
		if !released {
			close(release)
		}
	}()
	for i := 0; i < parkedGoroutines; i++ {
		go func() { <-release }()
	}

	sawPending := false
	if err := waitFor(ctx, "synthetic alert to fire", func() (bool, error) {
		st, firing, err := state()
		if err != nil {
			return false, err
		}
		if st == slo.StatePending {
			sawPending = true
		}
		return st == slo.StateFiring && firing == 1, nil
	}); err != nil {
		return err
	}
	body, err := c.Statusz(ctx)
	if err != nil {
		return fmt.Errorf("statusz during breach: %w", err)
	}
	if !strings.Contains(body, "smoke-goroutine-ceiling") || !strings.Contains(body, "firing") {
		return fmt.Errorf("statusz does not show the firing synthetic alert")
	}

	// Clear: release the goroutines and wait for the breach to age out.
	released = true
	close(release)
	if err := waitFor(ctx, "synthetic alert to clear", func() (bool, error) {
		st, firing, err := state()
		if err != nil {
			return false, err
		}
		return firing == 0 && (st == slo.StateResolved || st == slo.StateInactive), nil
	}); err != nil {
		return err
	}

	// The bus replay ring holds the whole transition log; polling above
	// may have skipped states, the bus cannot.
	var states []string
	wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
	defer wcancel()
	err = c.WatchAlerts(wctx, func(ev server.WatchEvent) error {
		if ev.Type == "alert" {
			if to, _ := ev.Data["to"].(string); to != "" {
				states = append(states, to)
			}
		}
		if hasSubsequence(states, []string{slo.StatePending, slo.StateFiring, slo.StateResolved}) {
			return server.ErrStopWatch
		}
		return nil
	})
	if err != nil && wctx.Err() == nil {
		return fmt.Errorf("alert event stream: %w", err)
	}
	if !hasSubsequence(states, []string{slo.StatePending, slo.StateFiring, slo.StateResolved}) {
		return fmt.Errorf("alert bus transitions %v missing pending→firing→resolved", states)
	}
	if !sawPending {
		// Not fatal — polling raced past it — but the bus check above
		// proves the state machine went through pending regardless.
		fmt.Println("obssmoke: note: pending observed on the bus only (poll raced past it)")
	}
	return nil
}

// hasSubsequence reports whether want appears in got, in order.
func hasSubsequence(got, want []string) bool {
	i := 0
	for _, s := range got {
		if i < len(want) && s == want[i] {
			i++
		}
	}
	return i == len(want)
}

// checkLint runs the structural Prometheus linter over the full live
// exposition, covering the runtime_*, obs_tsdb_* and slo_* families
// this surface added.
func checkLint(ctx context.Context, c *server.Client) error {
	text, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics fetch: %w", err)
	}
	for _, fam := range []string{"runtime_goroutines", "obs_tsdb_ticks_total", "slo_burn_rate"} {
		if !strings.Contains(text, fam) {
			return fmt.Errorf("exposition missing %s", fam)
		}
	}
	if errs := obs.LintPrometheus(text); len(errs) > 0 {
		return fmt.Errorf("exposition fails lint: %v", errs)
	}
	return nil
}

// checkTrace fetches the sweep's trace and walks the span tree.
func checkTrace(ctx context.Context, c *server.Client, traceID string) error {
	body, err := c.Trace(ctx, traceID, "")
	if err != nil {
		return fmt.Errorf("trace fetch: %w", err)
	}
	var doc struct {
		TraceEvents []obs.Event `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		return fmt.Errorf("trace %s is not Chrome trace-event JSON: %w", traceID, err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("trace %s has an empty span tree", traceID)
	}

	spanArg := func(ev obs.Event, key string) uint64 {
		if v, ok := ev.Args[key].(float64); ok {
			return uint64(v)
		}
		return 0
	}
	// Events arrive in completion order (cells before the sweep span
	// that parents them), so identify the tree nodes first, then check
	// every parent edge.
	var reqID, sweepID uint64
	cells := 0
	cats := map[string]int{}
	for _, ev := range doc.TraceEvents {
		cats[ev.Cat]++
		switch ev.Cat {
		case "http":
			reqID = spanArg(ev, "span")
		case "sweep":
			sweepID = spanArg(ev, "span")
		case "cell":
			cells++
		}
	}
	for _, ev := range doc.TraceEvents {
		switch ev.Cat {
		case "sweep":
			if parent := spanArg(ev, "parent"); reqID == 0 || parent != reqID {
				return fmt.Errorf("sweep span parent = %d, want request span %d", parent, reqID)
			}
		case "cell":
			if parent := spanArg(ev, "parent"); sweepID == 0 || parent != sweepID {
				return fmt.Errorf("cell span %q parent = %d, want sweep span %d", ev.Name, parent, sweepID)
			}
		}
	}
	if reqID == 0 || sweepID == 0 || cells != 4 {
		return fmt.Errorf("span tree incomplete: request=%d sweep=%d cells=%d (cats %v)",
			reqID, sweepID, cells, cats)
	}
	for _, cat := range []string{"jobs", "sim"} {
		if cats[cat] == 0 {
			return fmt.Errorf("no %q spans joined into trace %s: %v", cat, traceID, cats)
		}
	}
	return nil
}

// checkStatusz fetches /debug/statusz and spot-checks the sections.
func checkStatusz(ctx context.Context, c *server.Client, sweepID string) error {
	body, err := c.Statusz(ctx)
	if err != nil {
		return fmt.Errorf("statusz fetch: %w", err)
	}
	for _, want := range []string{
		"rfidd statusz", "worker pool", "result cache", "sweeps",
		"recent wide events", sweepID,
	} {
		if !strings.Contains(body, want) {
			return fmt.Errorf("statusz missing %q", want)
		}
	}
	if n := strings.Count(body, "<td>sweep</td><td>"+sweepID+"/c"); n != 4 {
		return fmt.Errorf("statusz shows %d wide-event rows for %s, want 4", n, sweepID)
	}
	return nil
}
