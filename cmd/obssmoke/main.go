// Command obssmoke is the CI smoke test for the observability surface:
// it boots the rfidd service in-process on a loopback listener, submits
// a traced parameter sweep over HTTP, and asserts that the pieces this
// service promises actually joined up —
//
//   - the X-Trace-Id response header carries a valid trace ID,
//   - GET /v1/traces/{id} returns a non-empty Chrome trace-event span
//     tree in which the request span parents the sweep span and the
//     sweep span parents every cell span,
//   - pool (jobs) and simulator (sim) spans landed in the same trace,
//   - GET /debug/statusz renders the self-contained HTML snapshot with
//     its pool / cache / sweeps / wide-event sections.
//
// Exits non-zero on any violation — in particular on an empty span
// tree — so scripts/check.sh and CI can gate on it.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/sweep"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "obssmoke:", err)
		os.Exit(1)
	}
	fmt.Println("obssmoke: ok")
}

func run() error {
	svc := server.New(server.Options{Workers: 2, QueueDepth: 16, CacheSize: 64})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		_ = svc.Shutdown(ctx)
	}()

	c := server.NewClient("http://" + ln.Addr().String())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	spec := sweep.Spec{
		Name: "obssmoke",
		Base: sim.Config{
			Tags: 60, Seed: 42, Rounds: 3,
			Algorithm: sim.AlgFSA, FrameSize: 40,
			Detector: sim.DetQCD, Strength: 8,
		},
		Axes: []sweep.Axis{
			{Field: sweep.FieldTags, Ints: []int{40, 80}},
			{Field: sweep.FieldStrength, Ints: []int{4, 8}},
		},
	}

	sub, traceID, err := c.SubmitSweepTraced(ctx, spec, "")
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	if !obs.ValidTraceID(traceID) {
		return fmt.Errorf("X-Trace-Id response header %q is not a valid trace ID", traceID)
	}
	final, err := c.WaitSweep(ctx, sub.ID, 0)
	if err != nil {
		return fmt.Errorf("wait: %w", err)
	}
	if final.Status != "done" || final.Counts.Done != 4 {
		return fmt.Errorf("sweep finished %s with counts %+v", final.Status, final.Counts)
	}

	if err := checkTrace(ctx, c, traceID); err != nil {
		return err
	}
	return checkStatusz(ctx, c, sub.ID)
}

// checkTrace fetches the sweep's trace and walks the span tree.
func checkTrace(ctx context.Context, c *server.Client, traceID string) error {
	body, err := c.Trace(ctx, traceID, "")
	if err != nil {
		return fmt.Errorf("trace fetch: %w", err)
	}
	var doc struct {
		TraceEvents []obs.Event `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		return fmt.Errorf("trace %s is not Chrome trace-event JSON: %w", traceID, err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("trace %s has an empty span tree", traceID)
	}

	spanArg := func(ev obs.Event, key string) uint64 {
		if v, ok := ev.Args[key].(float64); ok {
			return uint64(v)
		}
		return 0
	}
	// Events arrive in completion order (cells before the sweep span
	// that parents them), so identify the tree nodes first, then check
	// every parent edge.
	var reqID, sweepID uint64
	cells := 0
	cats := map[string]int{}
	for _, ev := range doc.TraceEvents {
		cats[ev.Cat]++
		switch ev.Cat {
		case "http":
			reqID = spanArg(ev, "span")
		case "sweep":
			sweepID = spanArg(ev, "span")
		case "cell":
			cells++
		}
	}
	for _, ev := range doc.TraceEvents {
		switch ev.Cat {
		case "sweep":
			if parent := spanArg(ev, "parent"); reqID == 0 || parent != reqID {
				return fmt.Errorf("sweep span parent = %d, want request span %d", parent, reqID)
			}
		case "cell":
			if parent := spanArg(ev, "parent"); sweepID == 0 || parent != sweepID {
				return fmt.Errorf("cell span %q parent = %d, want sweep span %d", ev.Name, parent, sweepID)
			}
		}
	}
	if reqID == 0 || sweepID == 0 || cells != 4 {
		return fmt.Errorf("span tree incomplete: request=%d sweep=%d cells=%d (cats %v)",
			reqID, sweepID, cells, cats)
	}
	for _, cat := range []string{"jobs", "sim"} {
		if cats[cat] == 0 {
			return fmt.Errorf("no %q spans joined into trace %s: %v", cat, traceID, cats)
		}
	}
	return nil
}

// checkStatusz fetches /debug/statusz and spot-checks the sections.
func checkStatusz(ctx context.Context, c *server.Client, sweepID string) error {
	body, err := c.Statusz(ctx)
	if err != nil {
		return fmt.Errorf("statusz fetch: %w", err)
	}
	for _, want := range []string{
		"rfidd statusz", "worker pool", "result cache", "sweeps",
		"recent wide events", sweepID,
	} {
		if !strings.Contains(body, want) {
			return fmt.Errorf("statusz missing %q", want)
		}
	}
	if n := strings.Count(body, "<td>sweep</td><td>"+sweepID+"/c"); n != 4 {
		return fmt.Errorf("statusz shows %d wide-event rows for %s, want 4", n, sweepID)
	}
	return nil
}
