// Command scenariosmoke is the CI smoke test for the streaming
// warehouse engine behind the service: it boots rfidd in-process on a
// loopback listener, runs a small arena end to end through POST
// /v1/scenarios, and asserts the engine's determinism contract over the
// wire — the same spec pinned to 1 and 4 workers must produce
// byte-identical results (the workers field aside), the SSE stream must
// deliver epoch progress plus the terminal event, and the full live
// /metrics exposition must pass the Prometheus text-format linter.
// Exits non-zero on any violation, so scripts/check.sh can gate on it.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scenariosmoke:", err)
		os.Exit(1)
	}
	fmt.Println("scenariosmoke: ok")
}

func run() error {
	svc := server.New(server.Options{Workers: 2, QueueDepth: 16})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		_ = svc.Shutdown(ctx)
	}()

	c := server.NewClient("http://" + ln.Addr().String())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	spec := scenario.Spec{
		Name:                     "smoke",
		SideMetres:               24,
		Readers:                  16,
		ReadRangeMetres:          5,
		InterferenceRadiusMetres: 9,
		ArrivalsPerSecond:        4000,
		DwellMicros:              150_000,
		DurationMicros:           400_000,
		SessionMicros:            2000,
		Seed:                     7,
	}

	// One run per worker count, watched over SSE. Results must match
	// bit for bit: worker count is scheduling, never arithmetic.
	results := map[int]json.RawMessage{}
	for _, workers := range []int{1, 4} {
		s := spec
		s.Workers = workers
		sub, err := c.SubmitScenario(ctx, s)
		if err != nil {
			return fmt.Errorf("submit (workers=%d): %w", workers, err)
		}
		epochs := 0
		var terminal map[string]any
		err = c.WatchScenario(ctx, sub.ID, func(ev server.WatchEvent) error {
			switch ev.Type {
			case "epoch":
				epochs++
			case "scenario":
				terminal = ev.Data
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("watch %s: %w", sub.ID, err)
		}
		if epochs == 0 {
			return fmt.Errorf("%s streamed no epoch events", sub.ID)
		}
		if terminal["status"] != "done" {
			return fmt.Errorf("%s terminal event %v", sub.ID, terminal)
		}
		fin, err := c.GetScenario(ctx, sub.ID)
		if err != nil {
			return fmt.Errorf("get %s: %w", sub.ID, err)
		}
		if fin.Status != "done" || len(fin.Result) == 0 {
			return fmt.Errorf("%s finished %s with %d result bytes", sub.ID, fin.Status, len(fin.Result))
		}
		var res scenario.Result
		if err := json.Unmarshal(fin.Result, &res); err != nil {
			return fmt.Errorf("%s result: %w", sub.ID, err)
		}
		if res.Read == 0 || res.Colors < 2 {
			return fmt.Errorf("%s degenerate result: read %d, colours %d", sub.ID, res.Read, res.Colors)
		}
		// Neutralise the one intentionally differing field before the
		// byte comparison.
		res.Spec.Workers = 0
		canon, err := json.Marshal(&res)
		if err != nil {
			return err
		}
		results[workers] = canon
	}
	if !bytes.Equal(results[1], results[4]) {
		return fmt.Errorf("worker count changed the result:\n1: %s\n4: %s", results[1], results[4])
	}

	// The whole live exposition must pass the Prometheus text-format
	// linter — after real scenario traffic, with the scenario gauge
	// populated.
	text, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if !strings.Contains(text, "rfidd_scenarios 2") {
		return fmt.Errorf("metrics lack the scenario record gauge:\n%s", grepLines(text, "scenario"))
	}
	if errs := obs.LintPrometheus(text); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "scenariosmoke: lint:", e)
		}
		return fmt.Errorf("/metrics failed exposition lint with %d errors", len(errs))
	}
	return nil
}

// grepLines keeps error output readable: only the exposition lines
// containing the substring.
func grepLines(text, substr string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
