// Command rfidd serves the RFID simulator as a long-lived experiment
// service: clients POST configurations, a bounded worker pool runs them,
// and identical configurations are answered from a content-addressed
// result cache.
//
// Usage:
//
//	rfidd -addr :8080 -workers 8 -queue 128 -cache 1024
//
//	curl -d '{"config":{"Tags":500,"Rounds":100,"Algorithm":"fsa","FrameSize":300,"Detector":"qcd"}}' \
//	     http://localhost:8080/v1/experiments
//	curl http://localhost:8080/v1/experiments/exp-1
//	curl http://localhost:8080/v1/experiments/exp-1/trace
//	curl -N http://localhost:8080/v1/experiments/exp-1/events   # live SSE telemetry
//	curl http://localhost:8080/v1/audit                         # with -audit
//	curl -d '{"spec":{"base":{...},"axes":[...]}}' http://localhost:8080/v1/sweeps
//	curl http://localhost:8080/v1/sweeps/swp-1/report?format=csv
//	curl -N http://localhost:8080/v1/sweeps/swp-1/events        # per-cell progress SSE
//	curl http://localhost:8080/metrics
//	curl http://localhost:8080/debug/statusz                    # human status snapshot
//	curl http://localhost:8080/v1/traces                        # service trace index
//	curl http://localhost:8080/v1/traces/<id>                   # Chrome trace-event JSON
//
// Observability: requests and worker lifecycle are logged through
// log/slog (-log-format json for machine parsing, -log-level to
// filter), per-experiment run traces are recorded into a bounded ring
// (-trace-cap events, 0 disables), service spans for every mutating
// request are kept in a bounded trace store (-span-traces /
// -span-capacity, exported per trace ID on /v1/traces/{id}), and
// -pprof mounts the standard net/http/pprof handlers under
// /debug/pprof/.
//
// On SIGINT/SIGTERM the daemon stops accepting work, drains queued and
// in-flight experiments (up to -drain-timeout), then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs/slo"
	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "worker pool size (0 = NumCPU)")
		queue        = flag.Int("queue", 128, "bounded queue depth")
		cacheSize    = flag.Int("cache", 1024, "result cache capacity in entries")
		jobTimeout   = flag.Duration("job-timeout", 0, "per-experiment run limit (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown drain limit")
		traceCap     = flag.Int("trace-cap", 4096, "per-experiment trace ring capacity in events (0 disables tracing)")
		spanTraces   = flag.Int("span-traces", 256, "service trace store capacity in traces (0 disables span recording)")
		spanCap      = flag.Int("span-capacity", 4096, "service trace store capacity in spans across all traces")
		eventHistory = flag.Int("event-history", 256, "per-experiment SSE replay ring in events (0 disables streaming)")
		eventBuffer  = flag.Int("event-buffer", 256, "events an SSE subscriber may lag before being dropped")
		heartbeat    = flag.Duration("heartbeat", 15*time.Second, "SSE comment-heartbeat interval")
		sweepCells   = flag.Int("sweep-max-cells", 0, "max cells one POST /v1/sweeps may expand to (0 = default)")
		auditFlag    = flag.Bool("audit", false, "shadow every verdict with the ground-truth oracle (GET /v1/audit)")
		auditCap     = flag.Int("audit-exemplars", 64, "audit misclassification exemplar ring capacity")
		histInterval = flag.Duration("history-interval", time.Second, "metrics history sample interval (0 disables history and SLO alerting)")
		histRetain   = flag.Duration("history-retention", 16*time.Minute, "metrics history retention window")
		sloConfig    = flag.String("slo-config", "", "JSON SLO policy file (empty = built-in defaults)")
		pprof        = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		logFormat    = flag.String("log-format", "text", "log output format: text | json")
		logLevel     = flag.String("log-level", "info", "minimum log level: debug | info | warn | error")
	)
	flag.Parse()

	logger, err := newLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfidd:", err)
		os.Exit(2)
	}

	// Options.TraceCapacity / EventHistory: 0 means default, negative
	// disables, so a 0 flag value maps to -1.
	tc := *traceCap
	if tc == 0 {
		tc = -1
	}
	eh := *eventHistory
	if eh == 0 {
		eh = -1
	}
	st := *spanTraces
	if st == 0 {
		st = -1
	}
	hi := *histInterval
	if hi == 0 {
		hi = -1
	}
	var sloCfg *slo.Config
	if *sloConfig != "" {
		cfg, err := slo.Load(*sloConfig)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rfidd:", err)
			os.Exit(2)
		}
		sloCfg = &cfg
	}
	svc := server.New(server.Options{
		Workers:           *workers,
		QueueDepth:        *queue,
		CacheSize:         *cacheSize,
		JobTimeout:        *jobTimeout,
		TraceCapacity:     tc,
		TraceStoreTraces:  st,
		TraceStoreSpans:   *spanCap,
		EventHistory:      eh,
		EventBuffer:       *eventBuffer,
		HeartbeatInterval: *heartbeat,
		SweepMaxCells:     *sweepCells,
		EnableAudit:       *auditFlag,
		AuditExemplars:    *auditCap,
		HistoryInterval:   hi,
		HistoryRetention:  *histRetain,
		SLOConfig:         sloCfg,
		Logger:            logger,
		EnablePprof:       *pprof,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "queue", *queue, "cache", *cacheSize, "pprof", *pprof)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("shutting down", "drain_timeout", *drainTimeout)
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
	if err := svc.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("drain", "err", err)
	} else if err != nil {
		logger.Warn("drain deadline hit; running experiments were canceled")
	}
	logger.Info("bye")
}

// newLogger builds the process logger from the -log-format and
// -log-level flags.
func newLogger(w *os.File, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q", format)
	}
}
