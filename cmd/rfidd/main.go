// Command rfidd serves the RFID simulator as a long-lived experiment
// service: clients POST configurations, a bounded worker pool runs them,
// and identical configurations are answered from a content-addressed
// result cache.
//
// Usage:
//
//	rfidd -addr :8080 -workers 8 -queue 128 -cache 1024
//
//	curl -d '{"config":{"Tags":500,"Rounds":100,"Algorithm":"fsa","FrameSize":300,"Detector":"qcd"}}' \
//	     http://localhost:8080/v1/experiments
//	curl http://localhost:8080/v1/experiments/exp-1
//	curl http://localhost:8080/metrics
//
// On SIGINT/SIGTERM the daemon stops accepting work, drains queued and
// in-flight experiments (up to -drain-timeout), then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "worker pool size (0 = NumCPU)")
		queue        = flag.Int("queue", 128, "bounded queue depth")
		cacheSize    = flag.Int("cache", 1024, "result cache capacity in entries")
		jobTimeout   = flag.Duration("job-timeout", 0, "per-experiment run limit (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown drain limit")
	)
	flag.Parse()

	svc := server.New(server.Options{
		Workers:    *workers,
		QueueDepth: *queue,
		CacheSize:  *cacheSize,
		JobTimeout: *jobTimeout,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("rfidd: listening on %s (queue %d, cache %d)", *addr, *queue, *cacheSize)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "rfidd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	log.Printf("rfidd: shutting down, draining for up to %s", *drainTimeout)
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		log.Printf("rfidd: http shutdown: %v", err)
	}
	if err := svc.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("rfidd: drain: %v", err)
	} else if err != nil {
		log.Printf("rfidd: drain deadline hit; running experiments were canceled")
	}
	log.Printf("rfidd: bye")
}
