package rfid_test

// Cross-cutting integration tests: invariants that must hold for every
// (algorithm × detector) combination, end to end through the public API.

import (
	"math"
	"testing"

	rfid "repro"
)

var allAlgs = []string{rfid.AlgFSA, rfid.AlgBT, rfid.AlgQAdaptive, rfid.AlgQT}
var allDets = []string{rfid.DetQCD, rfid.DetCRCCD, rfid.DetOracle}

func TestInvariantEveryTagIdentifiedExactlyOnce(t *testing.T) {
	for _, alg := range allAlgs {
		for _, det := range allDets {
			s, err := rfid.RunRound(rfid.Config{
				Tags: 80, FrameSize: 50, Algorithm: alg, Detector: det, Strength: 8,
			}, 1234)
			if err != nil {
				t.Fatalf("%s/%s: %v", alg, det, err)
			}
			if s.TagsIdentified != 80 {
				t.Errorf("%s/%s: identified %d of 80", alg, det, s.TagsIdentified)
			}
			if len(s.DelaysMicros) != 80 {
				t.Errorf("%s/%s: %d delay records", alg, det, len(s.DelaysMicros))
			}
			// Singles in the ground-truth census equal the population when
			// no phantoms stole extra slots; they can exceed it only via
			// re-arbitration after misses.
			if s.Census.Single < 80 {
				t.Errorf("%s/%s: single slots %d < tags", alg, det, s.Census.Single)
			}
		}
	}
}

func TestInvariantCensusSumsAndBits(t *testing.T) {
	for _, alg := range allAlgs {
		for _, det := range allDets {
			s, err := rfid.RunRound(rfid.Config{
				Tags: 60, FrameSize: 40, Algorithm: alg, Detector: det, Strength: 8,
			}, 99)
			if err != nil {
				t.Fatalf("%s/%s: %v", alg, det, err)
			}
			if s.Census.Slots() != s.Census.Idle+s.Census.Single+s.Census.Collided {
				t.Errorf("%s/%s: census does not sum", alg, det)
			}
			if s.Bits <= 0 {
				t.Errorf("%s/%s: no bits recorded", alg, det)
			}
			// TimeMicros equals Bits at τ = 1 μs.
			if math.Abs(s.TimeMicros-float64(s.Bits)) > 1e-6 {
				t.Errorf("%s/%s: time %v != bits %d at τ=1", alg, det, s.TimeMicros, s.Bits)
			}
		}
	}
}

func TestInvariantDelaysBoundedByMakespan(t *testing.T) {
	for _, alg := range allAlgs {
		s, err := rfid.RunRound(rfid.Config{
			Tags: 64, FrameSize: 64, Algorithm: alg, Detector: rfid.DetQCD, Strength: 8,
		}, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range s.DelaysMicros {
			if d <= 0 || d > s.TimeMicros+1e-9 {
				t.Errorf("%s: delay %v outside (0, %v]", alg, d, s.TimeMicros)
			}
		}
	}
}

func TestInvariantNoFalseCollisionsOnSingles(t *testing.T) {
	// Theorem 1's converse: a slot with exactly one responder is never
	// declared collided by any detector, so BT/QT recursion depth stays
	// bounded. Indirect check: oracle and QCD produce identical single
	// counts on the same seeds.
	for _, alg := range allAlgs {
		a, err := rfid.RunRound(rfid.Config{
			Tags: 64, FrameSize: 64, Algorithm: alg, Detector: rfid.DetQCD, Strength: 16,
		}, 777)
		if err != nil {
			t.Fatal(err)
		}
		if a.Detection.Phantom != 0 && alg != rfid.AlgQT {
			// At strength 16 a phantom needs a 2^-16 coincidence; a seeded
			// run exhibiting one deserves investigation.
			t.Errorf("%s: unexpected phantom at strength 16", alg)
		}
	}
}

func TestQCDAlwaysBeatsCRCOnTime(t *testing.T) {
	for _, alg := range allAlgs {
		cfg := rfid.Config{Tags: 100, FrameSize: 60, Algorithm: alg, Strength: 8, Rounds: 3, Seed: 3}
		cfg.Detector = rfid.DetQCD
		q, err := rfid.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Detector = rfid.DetCRCCD
		c, err := rfid.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if q.TimeMicros.Mean() >= c.TimeMicros.Mean() {
			t.Errorf("%s: QCD (%.0fμs) not faster than CRC-CD (%.0fμs)",
				alg, q.TimeMicros.Mean(), c.TimeMicros.Mean())
		}
	}
}

func TestPublicMobility(t *testing.T) {
	arr := rfid.MobilityArrivals{RatePerSecond: 100, DwellMicros: 200_000}
	res := rfid.RunMobility(rfid.MobilityBT, rfid.NewQCD(8, 64), arr, 1e6, 1)
	if res.Arrived == 0 || res.Read+res.Missed != res.Arrived {
		t.Errorf("mobility bookkeeping: %+v", res)
	}
}

func TestPublicEstimatingPolicy(t *testing.T) {
	if len(rfid.Estimators()) != 4 {
		t.Fatalf("estimators = %d", len(rfid.Estimators()))
	}
	pop := rfid.NewPopulation(300, 64, 9)
	s := rfid.IdentifyFSAWithPolicy(pop, rfid.NewQCD(8, 64),
		rfid.EstimatingPolicy(rfid.Estimators()[0], 100))
	if !pop.AllIdentified() {
		t.Fatal("estimating policy via facade failed")
	}
	if s.Census.Throughput() < 0.25 {
		t.Errorf("estimating policy throughput %.3f", s.Census.Throughput())
	}
}

func TestPublicGen2(t *testing.T) {
	pop := rfid.NewPopulation(60, 64, 21)
	res := rfid.RunGen2(pop, rfid.NewGen2Config(rfid.Gen2QCD, rfid.NewQCD(8, 64)), 3)
	if !pop.AllIdentified() {
		t.Fatal("gen2 facade failed")
	}
	if res.CommandBits == 0 || res.Queries == 0 {
		t.Errorf("gen2 counters: %+v", res)
	}
	// Stock RN16 also completes.
	pop2 := rfid.NewPopulation(60, 64, 21)
	rn := rfid.RunGen2(pop2, rfid.NewGen2Config(rfid.Gen2RN16, nil), 3)
	if !pop2.AllIdentified() || rn.WastedACKs == 0 {
		t.Errorf("rn16 facade: wasted=%d", rn.WastedACKs)
	}
}

func TestPublicWorkloads(t *testing.T) {
	pop, err := rfid.BuildWorkload(rfid.WorkloadSingleVendor, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rfid.SharedPrefixLen(pop) < 60 {
		t.Error("single-vendor workload lost its shared prefix")
	}
	if _, err := rfid.BuildWorkload("ghost", 4, 5); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestPublicImpairedChannel(t *testing.T) {
	pop := rfid.NewPopulation(80, 64, 23)
	im := rfid.NewChannelImpairment(1e-3, 0, 9)
	s := rfid.IdentifyFSAImpaired(pop, rfid.NewQCD(8, 64), 80, im)
	if !pop.AllIdentified() {
		t.Fatal("impaired identification failed")
	}
	clean := rfid.NewPopulation(80, 64, 23)
	s2 := rfid.IdentifyFSA(clean, rfid.NewQCD(8, 64), 80)
	if s.TimeMicros < s2.TimeMicros {
		t.Error("noise made identification faster (suspicious)")
	}
}

func TestPublicKS(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{100, 200, 300, 400}
	d := rfid.KolmogorovSmirnov(a, b)
	if d != 1 {
		t.Errorf("KS = %v", d)
	}
	if p := rfid.KSPValue(d, 4, 4); p > 0.2 {
		t.Errorf("p = %v", p)
	}
}

func TestPublicEDFSA(t *testing.T) {
	agg, err := rfid.Run(rfid.Config{
		Tags: 500, FrameSize: 64, Algorithm: rfid.AlgEDFSA,
		Detector: rfid.DetQCD, Rounds: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Throughput.Mean() < 0.25 {
		t.Errorf("EDFSA throughput %v under a tight frame cap", agg.Throughput.Mean())
	}
}

func TestPublicPrivacy(t *testing.T) {
	id, _ := rfid.ParseBits("1100101011110000110010101111000011001010111100001100101011110000")
	s := rfid.NewPrivacySession(id, 77)
	for !s.Complete() {
		s.Round()
		if s.Rounds() > 100 {
			t.Fatal("privacy session did not complete")
		}
	}
	if got := rfid.PrivacyExpectedRounds(64); got < 6.5 || got > 8.5 {
		t.Errorf("expected rounds = %v", got)
	}
}

func TestPublicIdentifyVariants(t *testing.T) {
	det := rfid.NewQCD(8, 64)
	pop := rfid.NewPopulation(40, 64, 11)
	if s := rfid.IdentifyFSA(pop, det, 40); s.TagsIdentified != 40 {
		t.Error("IdentifyFSA failed")
	}
	pop2 := rfid.NewPopulation(40, 64, 12)
	if s := rfid.IdentifyBT(pop2, det); s.TagsIdentified != 40 {
		t.Error("IdentifyBT failed")
	}
	pop3 := rfid.NewPopulation(40, 64, 13)
	if s := rfid.IdentifyQT(pop3, det); s.TagsIdentified != 40 {
		t.Error("IdentifyQT failed")
	}
}
