// Gen2compat: the paper claims QCD "does not require any modification on
// upper-level air protocols". This example tests that claim at the
// command level: a full EPC Gen-2 inventory round — Query, QueryRep, ACK,
// RN16 handshake, Q-algorithm, with reader command airtime charged —
// where the slot-opening tag reply is (a) the stock bare RN16, (b) the
// CRC-CD unit, or (c) the QCD preamble. Only the reply format changes;
// the command machinery is shared.
package main

import (
	"fmt"
	"log"

	rfid "repro"
)

func main() {
	const tags = 500

	fmt.Printf("EPC Gen-2 inventory of %d tags, command airtime charged\n\n", tags)
	fmt.Printf("%-22s %12s %12s %10s %12s\n",
		"slot-opening reply", "total time", "wasted ACKs", "queries", "cmd bits")

	type scheme struct {
		name string
		cfg  rfid.Gen2Config
	}
	schemes := []scheme{
		{"RN16 (stock Gen-2)", rfid.NewGen2Config(rfid.Gen2RN16, nil)},
		{"CRC-CD (EPC+CRC32)", mustCRCCD()},
		{"QCD-8 preamble", rfid.NewGen2Config(rfid.Gen2QCD, rfid.NewQCD(8, 64))},
	}

	var rn16Time float64
	for i, s := range schemes {
		pop := rfid.NewPopulation(tags, 64, 2026)
		res := rfid.RunGen2(pop, s.cfg, 7)
		if !pop.AllIdentified() {
			log.Fatalf("%s: inventory incomplete", s.name)
		}
		fmt.Printf("%-22s %10.0fμs %12d %10d %12d\n",
			s.name, res.Session.TimeMicros, res.WastedACKs, res.Queries, res.CommandBits)
		if i == 0 {
			rn16Time = res.Session.TimeMicros
		} else {
			gain := (rn16Time - res.Session.TimeMicros) / rn16Time
			fmt.Printf("%-22s %11.1f%% vs stock Gen-2\n", "", 100*gain)
		}
	}

	fmt.Println("\nthe stock RN16 reply has no self-check, so every collided slot the")
	fmt.Println("reader opens costs a full wasted ACK exchange; QCD screens those out")
	fmt.Println("with a 16-bit preamble, while CRC-CD drags the 96-bit unit into every slot.")
}

func mustCRCCD() rfid.Gen2Config {
	det, ok := rfid.NewCRCCD("CRC-32/IEEE", 64)
	if !ok {
		log.Fatal("missing CRC preset")
	}
	return rfid.NewGen2Config(rfid.Gen2CRCCD, det)
}
