// Warehouse: the paper's Table V environment end to end. A 100 m × 100 m
// floor with a 10×10 grid of readers (3 m range) inventories thousands of
// scattered tags. Each reader runs an EPC Gen-2 style session over the
// tags in its range; a tag identified by one reader keeps silent for the
// rest. The run compares total inventory airtime under CRC-CD and QCD.
package main

import (
	"fmt"
	"log"

	rfid "repro"
)

const tags = 5000

func main() {
	fmt.Printf("warehouse floor: 100m × 100m, 100 readers (3m range), %d tags\n\n", tags)

	type result struct {
		name       string
		micros     float64
		identified int
	}
	var results []result

	for _, detName := range []string{rfid.DetCRCCD, rfid.DetQCD} {
		floor, pop := rfid.PaperFloor(tags, 42)
		det := buildDetector(detName)

		totalMicros, identified := floor.RunSequential(func(sub rfid.Population) float64 {
			// Per-reader session: one run of FSA sized to the local
			// sub-population (a handful of tags per 3 m cell).
			return rfid.IdentifyFSA(sub, det, len(sub)).TimeMicros
		})
		_ = pop
		results = append(results, result{detName, totalMicros, identified})
	}

	fmt.Printf("%-10s %14s %12s\n", "detector", "airtime", "identified")
	for _, r := range results {
		fmt.Printf("%-10s %12.0fμs %12d\n", r.name, r.micros, r.identified)
	}
	ei := (results[0].micros - results[1].micros) / results[0].micros
	fmt.Printf("\nfloor-wide efficiency improvement: %.1f%%\n", 100*ei)
	fmt.Println("(uncovered tags sit outside every reader's 3 m disc: a 10 m grid covers ~28% of the floor)")
}

func buildDetector(name string) rfid.Detector {
	if name == rfid.DetQCD {
		return rfid.NewQCD(8, 64)
	}
	d, ok := rfid.NewCRCCD("CRC-32/IEEE", 64)
	if !ok {
		log.Fatal("missing CRC preset")
	}
	return d
}
