// Quickstart: identify a 500-tag population with framed slotted ALOHA,
// comparing the paper's QCD collision detection against the CRC-CD
// baseline — the headline experiment of the paper in ~30 lines.
package main

import (
	"fmt"
	"log"

	rfid "repro"
)

func main() {
	cfg := rfid.Config{
		Tags:      500, // case II of the paper's Table VI
		FrameSize: 300,
		Rounds:    20,
		Seed:      1,
		Algorithm: rfid.AlgFSA,
		Detector:  rfid.DetQCD,
		Strength:  8, // the paper's recommended strength
	}

	qcd, err := rfid.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	cfg.Detector = rfid.DetCRCCD
	crc, err := rfid.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("identifying %d tags with FSA (frame %d), %d rounds\n\n",
		cfg.Tags, cfg.FrameSize, cfg.Rounds)
	fmt.Printf("%-22s %12s %12s\n", "", "CRC-CD", "QCD-8")
	fmt.Printf("%-22s %11.0fμs %11.0fμs\n", "identification time",
		crc.TimeMicros.Mean(), qcd.TimeMicros.Mean())
	fmt.Printf("%-22s %12.3f %12.3f\n", "throughput λ",
		crc.Throughput.Mean(), qcd.Throughput.Mean())
	fmt.Printf("%-22s %12.3f %12.3f\n", "detection accuracy",
		crc.Accuracy.Mean(), qcd.Accuracy.Mean())
	fmt.Printf("%-22s %11.0fμs %11.0fμs\n", "mean tag delay",
		crc.Delay.Mean(), qcd.Delay.Mean())

	ei := (crc.TimeMicros.Mean() - qcd.TimeMicros.Mean()) / crc.TimeMicros.Mean()
	fmt.Printf("\nefficiency improvement: %.1f%% (paper's Table II floor: %.1f%%)\n",
		100*ei, 100*rfid.TheoreticalFSAEI(8))
}
