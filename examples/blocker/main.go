// Blocker: the query-tree privacy/starvation scenario from Section II of
// the paper. A "blocker tag" (Juels et al.) answers every reader query
// inside the subtree it protects, so the reader perceives endless
// collisions and can never single out a protected tag — turning the QT
// protocol's determinism into a consumer-privacy shield (or, adversarially,
// a denial of service). Tags outside the protected subtree are unaffected.
package main

import (
	"fmt"
	"log"

	rfid "repro"
)

func main() {
	const perHalf = 24

	// Build a population split between the '0…' (store inventory) and
	// '1…' (sold items, privacy-protected) halves of the ID space.
	pop := rfid.NewPopulation(2*perHalf, 64, 5)
	one, _ := rfid.ParseBits("1")
	inventory, sold := 0, 0
	for _, t := range pop {
		if t.ID.Bit(0) == 0 {
			inventory++
		} else {
			sold++
		}
	}
	fmt.Printf("population: %d inventory tags (prefix 0), %d sold tags (prefix 1)\n\n", inventory, sold)

	det := rfid.NewQCD(8, 64)

	// Baseline: no blocker — QT identifies everyone.
	res := rfid.IdentifyQTWithBlocker(pop, det, nil, 0)
	fmt.Printf("without blocker: identified %d/%d in %d slots\n",
		res.Session.TagsIdentified, len(pop), res.Session.Census.Slots())

	// With a blocker protecting the '1…' subtree.
	for _, t := range pop {
		t.Reset()
	}
	res = rfid.IdentifyQTWithBlocker(pop, det, &one, 20000)
	idInv, idSold := countIdentified(pop)
	fmt.Printf("with blocker on '1…': identified %d inventory, %d sold (%s)\n",
		idInv, idSold, truncated(res.Truncated))
	if idSold != 0 {
		log.Fatal("blocker leaked protected tags")
	}

	// A full-space blocker starves the whole protocol.
	for _, t := range pop {
		t.Reset()
	}
	root := rfid.BitString{} // zero-length prefix: the whole ID space
	res = rfid.IdentifyQTWithBlocker(pop, det, &root, 5000)
	fmt.Printf("with full-space blocker: identified %d/%d before the reader gave up (%s)\n",
		res.Session.TagsIdentified, len(pop), truncated(res.Truncated))
}

func countIdentified(pop rfid.Population) (zero, one int) {
	for _, t := range pop {
		if t.Identified {
			if t.ID.Bit(0) == 0 {
				zero++
			} else {
				one++
			}
		}
	}
	return
}

func truncated(b bool) string {
	if b {
		return "slot budget exhausted"
	}
	return "tree exhausted"
}
