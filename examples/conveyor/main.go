// Conveyor: the mobile-tag scenario that motivates Figure 6. Tagged
// parcels ride a conveyor past a portal reader and spend only a limited
// contact window inside its field; a tag that is not identified before it
// leaves the window is lost. The example computes, for a range of belt
// speeds (contact windows), the fraction of tags each detection scheme
// identifies in time — QCD's >80% delay reduction translates directly
// into higher read rates at speed.
package main

import (
	"fmt"
	"log"
	"sort"

	rfid "repro"
)

func main() {
	const tags = 200 // parcels inside the portal at once
	cfg := rfid.Config{
		Tags: tags, FrameSize: tags, Algorithm: rfid.AlgFSA,
		Strength: 8, Seed: 7,
	}

	// One representative session per scheme; RunRound exposes the raw
	// per-tag identification delays.
	delays := map[string][]float64{}
	for _, det := range []string{rfid.DetCRCCD, rfid.DetQCD} {
		c := cfg
		c.Detector = det
		s, err := rfid.RunRound(c, 99)
		if err != nil {
			log.Fatal(err)
		}
		d := append([]float64(nil), s.DelaysMicros...)
		sort.Float64s(d)
		delays[det] = d
	}

	fmt.Printf("portal reader, %d parcels in the field, FSA frame %d, τ=1μs/bit\n\n", tags, tags)
	fmt.Printf("%-18s %14s %14s\n", "contact window", "CRC-CD read%", "QCD-8 read%")
	for _, windowMs := range []float64{5, 10, 20, 40, 80, 160} {
		windowMicros := windowMs * 1000
		fmt.Printf("%15.0fms %13.1f%% %13.1f%%\n",
			windowMs,
			100*readRate(delays[rfid.DetCRCCD], windowMicros),
			100*readRate(delays[rfid.DetQCD], windowMicros))
	}

	crcSum := rfid.Summarize(delays[rfid.DetCRCCD])
	qcdSum := rfid.Summarize(delays[rfid.DetQCD])
	fmt.Printf("\ndelay p50/p99: CRC-CD %.1f/%.1f ms, QCD %.1f/%.1f ms (reduction %.0f%%)\n",
		crcSum.P50/1000, crcSum.P99/1000, qcdSum.P50/1000, qcdSum.P99/1000,
		100*(1-qcdSum.Mean/crcSum.Mean))
}

// readRate is the fraction of tags identified within the window.
func readRate(sortedDelays []float64, windowMicros float64) float64 {
	i := sort.SearchFloat64s(sortedDelays, windowMicros)
	return float64(i) / float64(len(sortedDelays))
}
