// Neighbors: the paper's conclusion notes QCD "can be easily extended to
// other wireless fields, for example the neighbor discovery of sensor
// networks". This example does exactly that: N sensor nodes wake in the
// same radio cell and must discover each other by announcing their IDs in
// a slotted contention window — structurally the tag-identification
// problem with the "reader" replaced by a listening node. Plugging QCD in
// place of CRC-validated hello frames shortens the discovery phase, which
// is radio-on time, the dominant energy cost of duty-cycled sensors.
package main

import (
	"fmt"
	"log"

	rfid "repro"
)

func main() {
	const nodes = 64

	fmt.Printf("neighbor discovery: %d sensor nodes, slotted hellos, τ=1μs/bit\n\n", nodes)
	fmt.Printf("%-34s %14s %14s %10s\n", "hello validation", "radio-on time", "discovered", "slots")

	for _, detName := range []string{"CRC-validated hello (CRC-CD)", "complement preamble (QCD-8)"} {
		var det rfid.Detector
		if detName[0] == 'C' {
			d, ok := rfid.NewCRCCD("CRC-32/IEEE", 64)
			if !ok {
				log.Fatal("missing preset")
			}
			det = d
		} else {
			det = rfid.NewQCD(8, 64)
		}

		// One contention window per discovery round; nodes re-announce
		// until everyone has been heard — identical dynamics to FSA tag
		// identification with the window sized to the population.
		nodesPop := rfid.NewPopulation(nodes, 64, 77)
		s := rfid.IdentifyFSA(nodesPop, det, nodes)
		fmt.Printf("%-34s %12.0fμs %14d %10d\n",
			detName, s.TimeMicros, s.TagsIdentified, s.Census.Slots())
	}

	fmt.Println("\nradio-on time is the sensor's energy budget: the preamble scheme")
	fmt.Println("discovers the same neighborhood in under half the airtime.")
}
