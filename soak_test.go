package rfid_test

// Combinatorial soak: every algorithm × detector × workload shape must
// identify every tag and keep the session invariants. This is the "does
// the whole lattice compose" test — any pairwise assumption violation
// (e.g. a detector that can't handle 96-bit EPC IDs, an engine that
// mishandles clustered prefixes) surfaces here.

import (
	"testing"

	rfid "repro"
)

func TestSoakAlgorithmDetectorWorkloadLattice(t *testing.T) {
	if testing.Short() {
		t.Skip("soak runs ~48 sessions")
	}
	algs := []string{rfid.AlgFSA, rfid.AlgBT, rfid.AlgQAdaptive, rfid.AlgQT}
	workloads := []rfid.WorkloadKind{
		rfid.WorkloadUniform, rfid.WorkloadSingleVendor,
		rfid.WorkloadMultiVendor, rfid.WorkloadClusteredSerial,
	}
	type detMk struct {
		name string
		mk   func() rfid.Detector
	}
	dets := []detMk{
		{"qcd8", func() rfid.Detector { return rfid.NewQCD(8, 96) }},
		{"crccd16", func() rfid.Detector {
			d, ok := rfid.NewCRCCD("CRC-16/EPC", 96)
			if !ok {
				t.Fatal("missing preset")
			}
			return d
		}},
		{"oracle", func() rfid.Detector { return rfid.NewOracle(96) }},
	}

	const n = 80
	var seed uint64 = 100
	for _, alg := range algs {
		for _, wk := range workloads {
			for _, d := range dets {
				seed++
				pop, err := rfid.BuildWorkload(wk, n, seed)
				if err != nil {
					t.Fatalf("%s/%s/%s: workload: %v", alg, wk, d.name, err)
				}
				det := d.mk()
				var s *rfid.Session
				switch alg {
				case rfid.AlgFSA:
					s = rfid.IdentifyFSA(pop, det, n)
				case rfid.AlgBT:
					s = rfid.IdentifyBT(pop, det)
				case rfid.AlgQT:
					s = rfid.IdentifyQT(pop, det)
				default:
					s = rfid.IdentifyQAdaptive(pop, det)
				}
				if !pop.AllIdentified() {
					t.Fatalf("%s/%s/%s: tags left unidentified", alg, wk, d.name)
				}
				if s.TagsIdentified != n {
					t.Fatalf("%s/%s/%s: identified %d of %d", alg, wk, d.name, s.TagsIdentified, n)
				}
				// A tag is identified in a *declared*-single slot: usually
				// a truth single, but clustered IDs admit rare subset
				// identifications inside missed collisions (the OR of two
				// near-identical EPCs can equal the superset EPC, and with
				// CRC-16 the OR of their checksums passes ~(3/4)^16 of the
				// time). Truth singles plus misdetections bound it.
				if s.Census.Single+s.Detection.FalseSingle < int64(n) {
					t.Fatalf("%s/%s/%s: singles %d + false-singles %d < n",
						alg, wk, d.name, s.Census.Single, s.Detection.FalseSingle)
				}
				if s.Bits <= 0 || s.TimeMicros <= 0 {
					t.Fatalf("%s/%s/%s: empty airtime accounting", alg, wk, d.name)
				}
			}
		}
	}
}
