package rfid_test

// Guards the observability layer's disabled-path cost: with no registry
// installed and no tracer in context, sim.RunRound must run exactly as
// the uninstrumented seed did — one atomic pointer load, zero extra
// allocations. BenchmarkRunRoundInstrumented measures the opt-in cost
// for comparison (run with -bench 'RunRound' -benchmem).

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/audit"
	"repro/internal/sim"
)

func benchRoundCfg() sim.Config {
	return sim.Config{
		Tags: 100, Seed: 1, Rounds: 1,
		Algorithm: sim.AlgFSA, FrameSize: 60,
		Detector: sim.DetQCD, Strength: 8,
	}
}

func BenchmarkRunRoundUninstrumented(b *testing.B) {
	sim.Uninstrument()
	c := benchRoundCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunRound(c, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunRoundInstrumented(b *testing.B) {
	sim.Instrument(obs.NewRegistry())
	defer sim.Uninstrument()
	c := benchRoundCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunRound(c, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDisabledInstrumentationAddsNoAllocations is the hard guard: the
// per-round allocation count with observability disabled must match a
// baseline measured the same way, so the dormant path cannot regress
// silently. Session construction itself allocates (census, delays), so
// the assertion is equality between two disabled runs spanning the
// Instrument/Uninstrument toggle, not zero.
func TestDisabledInstrumentationAddsNoAllocations(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement in -short mode")
	}
	c := benchRoundCfg()
	measure := func() float64 {
		return testing.AllocsPerRun(20, func() {
			if _, err := sim.RunRound(c, 1); err != nil {
				t.Fatal(err)
			}
		})
	}
	sim.Uninstrument()
	before := measure()
	// Toggle instrumentation on and off; the disabled path afterwards
	// must cost exactly what it did before.
	sim.Instrument(obs.NewRegistry())
	sim.Uninstrument()
	after := measure()
	if before != after {
		t.Errorf("disabled-path allocations changed: %v before, %v after toggling instrumentation", before, after)
	}
	// The same equality must hold across the audit toggle: a disabled
	// auditor is one atomic pointer load per round, nothing per slot.
	sim.InstrumentAudit(audit.New(obs.NewRegistry(), audit.Options{}))
	sim.UninstrumentAudit()
	afterAudit := measure()
	if before != afterAudit {
		t.Errorf("disabled-path allocations changed: %v before, %v after toggling auditing", before, afterAudit)
	}
}

// BenchmarkRunRoundAudited measures the opt-in cost of shadow-oracle
// auditing (run with -bench 'RunRound' -benchmem to compare all three).
func BenchmarkRunRoundAudited(b *testing.B) {
	sim.InstrumentAudit(audit.New(obs.NewRegistry(), audit.Options{}))
	defer sim.UninstrumentAudit()
	c := benchRoundCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunRound(c, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}
