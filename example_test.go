package rfid_test

import (
	"fmt"

	rfid "repro"
)

// The paper's Section I overlap example: concurrent transmissions combine
// as a bitwise Boolean sum.
func ExampleOverlap() {
	a, _ := rfid.ParseBits("011001")
	b, _ := rfid.ParseBits("010010")
	fmt.Println(rfid.Overlap(a, b))
	// Output: 011011
}

// QCD's collision function f(r) = r̄ flags overlapped preambles: the
// complement of an OR is an AND of complements, never their OR.
func ExampleComplement() {
	r1, _ := rfid.ParseBits("1010")
	r2, _ := rfid.ParseBits("0110")
	or := rfid.Overlap(r1, r2)
	sumOfComplements := rfid.Overlap(rfid.Complement(r1), rfid.Complement(r2))
	fmt.Println(rfid.Complement(or).Equal(sumOfComplements))
	// Output: false
}

// Classifying a slot with a QCD detector: one responder passes, two
// responders with distinct integers are flagged.
func ExampleNewQCD() {
	det := rfid.NewQCD(8, 64)
	fmt.Println(det.Name(), det.ContentionBits(), "contention bits")
	// Output: QCD-8 16 contention bits
}

// Table II's closed form: the minimum efficiency improvement of QCD over
// CRC-CD on framed slotted ALOHA.
func ExampleTheoreticalFSAEI() {
	for _, strength := range []int{4, 8, 16} {
		fmt.Printf("strength %2d: EI >= %.4f\n", strength, rfid.TheoreticalFSAEI(strength))
	}
	// Output:
	// strength  4: EI >= 0.6698
	// strength  8: EI >= 0.5864
	// strength 16: EI >= 0.4198
}
