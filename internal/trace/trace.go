// Package trace builds structured tag populations. The paper evaluates
// uniformly random IDs (Table V), but real EPC populations are anything
// but uniform: one vendor's pallet shares a 60-bit manager/class prefix
// and differs only in serial numbers. Prefix structure is irrelevant to
// FSA/BT (they randomise in time) but decisive for query trees, which
// walk the ID space — so workload generation is part of the evaluation
// surface, not a detail.
package trace

import (
	"fmt"

	"repro/internal/epc"
	"repro/internal/prng"
	"repro/internal/tagmodel"
)

// Kind names a population shape.
type Kind string

// Population shapes.
const (
	// Uniform draws IDs uniformly at random (the paper's Table V setting).
	Uniform Kind = "uniform"
	// SingleVendor uses one manager/class with sequential serials: all
	// tags share a 60-bit prefix (one product pallet).
	SingleVendor Kind = "single-vendor"
	// MultiVendor splits the population across several manager/class
	// pairs, each with sequential serials (a mixed shipment).
	MultiVendor Kind = "multi-vendor"
	// ClusteredSerial uses one vendor with serials drawn from a few dense
	// blocks (cases of 64 items).
	ClusteredSerial Kind = "clustered-serial"
)

// Kinds lists every population shape.
func Kinds() []Kind {
	return []Kind{Uniform, SingleVendor, MultiVendor, ClusteredSerial}
}

// Spec configures a population build.
type Spec struct {
	Kind    Kind
	N       int
	IDBits  int // Uniform only; EPC shapes are 96-bit
	Vendors int // MultiVendor: number of manager/class pairs (default 4)
	Block   int // ClusteredSerial: serials per dense block (default 64)
}

// Build constructs the population. All IDs are unique.
func Build(spec Spec, rng *prng.Source) (tagmodel.Population, error) {
	if spec.N < 1 {
		return nil, fmt.Errorf("trace: N = %d", spec.N)
	}
	switch spec.Kind {
	case Uniform:
		idBits := spec.IDBits
		if idBits == 0 {
			idBits = 64
		}
		return tagmodel.NewPopulation(spec.N, idBits, rng), nil
	case SingleVendor:
		return vendorRun(spec.N, 0, rng), nil
	case MultiVendor:
		vendors := spec.Vendors
		if vendors <= 0 {
			vendors = 4
		}
		var pop tagmodel.Population
		for v := 0; v < vendors; v++ {
			share := spec.N / vendors
			if v < spec.N%vendors {
				share++
			}
			pop = append(pop, vendorRun(share, uint32(v+1), rng)...)
		}
		for i, t := range pop {
			t.Index = i
		}
		return pop, nil
	case ClusteredSerial:
		block := spec.Block
		if block <= 0 {
			block = 64
		}
		gen := epc.NewSequentialGenerator(7, 13)
		var pop tagmodel.Population
		serial := uint64(0)
		for len(pop) < spec.N {
			// Jump to a fresh block start, then fill it densely.
			serial += uint64(rng.Intn(1<<20))*uint64(block) + uint64(block)
			for k := 0; k < block && len(pop) < spec.N; k++ {
				e := gen.Next()
				e.Serial = serial + uint64(k)
				pop = append(pop, tagmodel.New(len(pop), e.Bits(), rng.Split()))
			}
		}
		return pop, nil
	default:
		return nil, fmt.Errorf("trace: unknown kind %q", spec.Kind)
	}
}

func vendorRun(n int, vendor uint32, rng *prng.Source) tagmodel.Population {
	gen := epc.NewSequentialGenerator(0x100+vendor, 0x20+vendor)
	pop := make(tagmodel.Population, 0, n)
	for i := 0; i < n; i++ {
		pop = append(pop, tagmodel.New(i, gen.Next().Bits(), rng.Split()))
	}
	return pop
}

// SharedPrefixLen returns the length of the longest prefix common to the
// whole population (the tree depth a query tree must burn through before
// any split helps).
func SharedPrefixLen(pop tagmodel.Population) int {
	if len(pop) == 0 {
		return 0
	}
	limit := pop[0].ID.Len()
	for d := 0; d < limit; d++ {
		b := pop[0].ID.Bit(d)
		for _, t := range pop[1:] {
			if t.ID.Len() <= d || t.ID.Bit(d) != b {
				return d
			}
		}
	}
	return limit
}

// PrefixEntropy estimates, for each bit position up to depth, the
// fraction of tags whose bit is one — a profile of where the ID space
// actually branches. Useful for choosing query-tree fanout.
func PrefixEntropy(pop tagmodel.Population, depth int) []float64 {
	if depth > idLen(pop) {
		depth = idLen(pop)
	}
	out := make([]float64, depth)
	if len(pop) == 0 {
		return out
	}
	for d := 0; d < depth; d++ {
		ones := 0
		for _, t := range pop {
			if t.ID.Bit(d) == 1 {
				ones++
			}
		}
		out[d] = float64(ones) / float64(len(pop))
	}
	return out
}

func idLen(pop tagmodel.Population) int {
	if len(pop) == 0 {
		return 0
	}
	return pop[0].ID.Len()
}
