package trace

import (
	"testing"

	"repro/internal/prng"
)

func TestBuildAllKinds(t *testing.T) {
	for _, k := range Kinds() {
		pop, err := Build(Spec{Kind: k, N: 200}, prng.New(1))
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if len(pop) != 200 {
			t.Fatalf("%s: %d tags", k, len(pop))
		}
		if !pop.IDsUnique() {
			t.Fatalf("%s: duplicate IDs", k)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Spec{Kind: Uniform, N: 0}, prng.New(1)); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := Build(Spec{Kind: "ghost", N: 1}, prng.New(1)); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestSingleVendorSharesLongPrefix(t *testing.T) {
	pop, err := Build(Spec{Kind: SingleVendor, N: 128}, prng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// Header (8) + manager (28) + class (24) = 60 shared bits, and the
	// serials 0..127 share a further 29 zero bits of the 36-bit serial.
	if got := SharedPrefixLen(pop); got < 60 {
		t.Errorf("shared prefix = %d bits, want ≥60", got)
	}
	if pop[0].ID.Len() != 96 {
		t.Errorf("EPC length = %d", pop[0].ID.Len())
	}
}

func TestMultiVendorSplitsPrefixes(t *testing.T) {
	pop, err := Build(Spec{Kind: MultiVendor, N: 100, Vendors: 4}, prng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// Vendors differ in manager/class, so the global shared prefix is the
	// common header byte at most plus the manager's shared high bits.
	if got := SharedPrefixLen(pop); got >= 60 {
		t.Errorf("multi-vendor shared prefix = %d, expected branching before 60", got)
	}
	// Indices must be consistent after concatenation.
	for i, tag := range pop {
		if tag.Index != i {
			t.Fatalf("tag %d has index %d", i, tag.Index)
		}
	}
}

func TestMultiVendorUnevenSplit(t *testing.T) {
	pop, err := Build(Spec{Kind: MultiVendor, N: 10, Vendors: 3}, prng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(pop) != 10 || !pop.IDsUnique() {
		t.Fatal("uneven split broken")
	}
}

func TestClusteredSerialBlocks(t *testing.T) {
	pop, err := Build(Spec{Kind: ClusteredSerial, N: 256, Block: 64}, prng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if !pop.IDsUnique() {
		t.Fatal("clustered serials collided")
	}
	if got := SharedPrefixLen(pop); got < 60 {
		t.Errorf("clustered population shared prefix = %d, want ≥60 (one vendor)", got)
	}
}

func TestSharedPrefixLenEdgeCases(t *testing.T) {
	if SharedPrefixLen(nil) != 0 {
		t.Error("empty population")
	}
	pop, _ := Build(Spec{Kind: SingleVendor, N: 1}, prng.New(6))
	if got := SharedPrefixLen(pop); got != 96 {
		t.Errorf("singleton shared prefix = %d, want full ID", got)
	}
}

func TestPrefixEntropy(t *testing.T) {
	pop, _ := Build(Spec{Kind: SingleVendor, N: 64, IDBits: 0}, prng.New(7))
	prof := PrefixEntropy(pop, 70)
	// Shared prefix bits have fraction 0 or 1; the serial tail mixes.
	for d := 0; d < 60; d++ {
		if prof[d] != 0 && prof[d] != 1 {
			t.Fatalf("bit %d of a shared prefix has fraction %v", d, prof[d])
		}
	}
	uni, _ := Build(Spec{Kind: Uniform, N: 1000}, prng.New(8))
	uprof := PrefixEntropy(uni, 8)
	for d, f := range uprof {
		if f < 0.4 || f > 0.6 {
			t.Errorf("uniform bit %d fraction %v", d, f)
		}
	}
	// Depth clamping.
	if got := len(PrefixEntropy(uni, 1000)); got != 64 {
		t.Errorf("entropy depth = %d", got)
	}
}
