package bitstr_test

import (
	"fmt"

	"repro/internal/bitstr"
)

// The paper's Section I example: two tags' ID signals overlap on the air
// as a bitwise Boolean sum.
func ExampleOr() {
	a := bitstr.MustParse("011001")
	b := bitstr.MustParse("010010")
	fmt.Println(bitstr.Or(a, b))
	// Output: 011011
}

// Theorem 1 in one picture: complement does not distribute over the
// Boolean sum, which is exactly what makes f(r) = r̄ detect collisions.
func ExampleNot() {
	r1 := bitstr.MustParse("1010")
	r2 := bitstr.MustParse("0110")
	fOfSum := bitstr.Not(bitstr.Or(r1, r2))
	sumOfF := bitstr.Or(bitstr.Not(r1), bitstr.Not(r2))
	fmt.Println(fOfSum, sumOfF, fOfSum.Equal(sumOfF))
	// Output: 0001 1101 false
}

// A QCD collision preamble is the random integer concatenated with its
// complement.
func ExampleConcat() {
	r := bitstr.MustParse("10110100")
	preamble := bitstr.Concat(r, bitstr.Not(r))
	fmt.Println(preamble)
	// Output: 1011010001001011
}

func ExampleBitString_Slice() {
	s := bitstr.MustParse("1011010001001011")
	fmt.Println(s.Slice(0, 8), s.Slice(8, 16))
	// Output: 10110100 01001011
}
