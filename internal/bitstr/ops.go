package bitstr

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Or returns the bitwise Boolean sum of s and t. This is the paper's ∨
// operator: the signal a reader receives when two tags transmit
// concurrently is the bitwise OR of the transmitted bit strings.
// Both operands must have the same length.
func Or(s, t BitString) BitString {
	if s.n != t.n {
		panic(fmt.Sprintf("bitstr: Or length mismatch %d vs %d", s.n, t.n))
	}
	if s.n <= 64 {
		return BitString{w: s.word() | t.word(), n: s.n}
	}
	out := s.Clone()
	orBytes(out.b, t.b)
	return out
}

// OrAll folds Or over all operands. It panics if the slice is empty or the
// lengths differ.
func OrAll(ss ...BitString) BitString {
	if len(ss) == 0 {
		panic("bitstr: OrAll of no operands")
	}
	if ss[0].n <= 64 {
		out := BitString{n: ss[0].n}
		for _, t := range ss {
			if t.n != out.n {
				panic(fmt.Sprintf("bitstr: OrAll length mismatch %d vs %d", out.n, t.n))
			}
			out.w |= t.word()
		}
		return out
	}
	out := ss[0].Clone()
	for _, t := range ss[1:] {
		if t.n != out.n {
			panic(fmt.Sprintf("bitstr: OrAll length mismatch %d vs %d", out.n, t.n))
		}
		orBytes(out.b, t.b)
	}
	return out
}

// OrInPlace accumulates t into s (s |= t). It is the hot-path form used by
// the channel model and never allocates.
func (s *BitString) OrInPlace(t BitString) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitstr: OrInPlace length mismatch %d vs %d", s.n, t.n))
	}
	if s.b == nil {
		s.w |= t.word()
		return
	}
	if t.b != nil {
		orBytes(s.b, t.b)
		return
	}
	for i := range s.b {
		s.b[i] |= t.byteAt(i)
	}
}

// And returns the bitwise AND of s and t.
func And(s, t BitString) BitString {
	if s.n != t.n {
		panic(fmt.Sprintf("bitstr: And length mismatch %d vs %d", s.n, t.n))
	}
	if s.n <= 64 {
		return BitString{w: s.word() & t.word(), n: s.n}
	}
	out := s.Clone()
	andBytes(out.b, t.b)
	return out
}

// Xor returns the bitwise exclusive OR of s and t.
func Xor(s, t BitString) BitString {
	if s.n != t.n {
		panic(fmt.Sprintf("bitstr: Xor length mismatch %d vs %d", s.n, t.n))
	}
	if s.n <= 64 {
		return BitString{w: s.word() ^ t.word(), n: s.n}
	}
	out := s.Clone()
	xorBytes(out.b, t.b)
	out.clearPad()
	return out
}

// Not returns the bitwise complement of s. This is the QCD collision
// function f(r) = ~r (Theorem 1 of the paper). It is NotInto with a
// fresh destination: results of 64 bits or fewer stay inline and free,
// longer results pay exactly one allocation. Hot paths that complement
// repeatedly should hold a destination and call NotInto directly.
func Not(s BitString) BitString {
	var dst BitString
	return NotInto(&dst, s)
}

// NotInto stores the complement of s into dst, reusing dst's backing
// storage when possible, and returns the result (which *dst now holds).
// Results of 64 bits or fewer are inline and never allocate; longer
// results allocate only if dst's buffer is too small. dst must not alias s.
func NotInto(dst *BitString, s BitString) BitString {
	if s.n <= 64 {
		*dst = BitString{w: ^s.word() & maskTop(s.n), n: s.n}
		return *dst
	}
	b := dst.grow(len(s.b))
	for i := range s.b {
		b[i] = ^s.b[i]
	}
	out := BitString{b: b, n: s.n}
	out.clearPad()
	*dst = out
	return out
}

// Concat returns the concatenation s ⊕ t (s's bits first). It is
// ConcatInto with a fresh destination: inline results are free, longer
// results pay exactly one allocation. Hot paths that concatenate
// repeatedly should hold a destination and call ConcatInto directly.
func Concat(s, t BitString) BitString {
	var dst BitString
	return ConcatInto(&dst, s, t)
}

// ConcatInto stores s ⊕ t into dst, reusing dst's backing storage when
// possible, and returns the result. Results of 64 bits or fewer are inline
// and never allocate. dst must not alias s or t.
func ConcatInto(dst *BitString, s, t BitString) BitString {
	total := s.n + t.n
	if total <= 64 {
		*dst = BitString{w: s.word() | t.word()>>uint(s.n), n: total}
		return *dst
	}
	b := dst.grow((total + 7) / 8)
	if s.n <= 64 && t.n <= 64 {
		concatWords(b, s, t, total)
	} else {
		clear(b)
		writeBits(b, 0, s)
		writeBits(b, s.n, t)
	}
	*dst = BitString{b: b, n: total}
	return *dst
}

// concatWords stores s ⊕ t into b for the two-word case (both operands
// at most 64 bits, 64 < total ≤ 128): a shift-merge of the operands'
// words replaces the general bit-offset OR loop, and every result byte
// is stored outright so the buffer needs no prior clearing. total > 64
// with both operands word-sized implies s.n ≥ 1, so the shift counts
// below stay in range (t.word()>>64 is defined as 0 when s.n == 64).
func concatWords(b []byte, s, t BitString, total int) {
	hi := s.word() | t.word()>>uint(s.n)
	lo := t.word() << uint(64-s.n)
	binary.BigEndian.PutUint64(b, hi)
	// The masked words have zero pad bits, so the bytes of lo beyond the
	// result's length come out zero, preserving the pad invariant.
	for k := 0; k*8 < total-64; k++ {
		b[8+k] = byte(lo >> (56 - 8*uint(k)))
	}
}

// Slice returns the sub-string of bits [lo, hi). It panics if the range
// is invalid. It is SliceInto with a fresh destination: sub-strings of
// 64 bits or fewer are extracted with shifted word reads and returned
// inline without allocating; longer ones pay exactly one allocation.
func (s BitString) Slice(lo, hi int) BitString {
	var dst BitString
	return s.SliceInto(&dst, lo, hi)
}

// SliceInto stores the sub-string [lo, hi) of s into dst, reusing dst's
// backing storage when possible, and returns the result. dst must not
// alias s.
func (s BitString) SliceInto(dst *BitString, lo, hi int) BitString {
	if lo < 0 || hi > s.n || lo > hi {
		panic(fmt.Sprintf("bitstr: slice [%d,%d) of %d-bit string", lo, hi, s.n))
	}
	m := hi - lo
	if m <= 64 {
		if m == 0 {
			*dst = BitString{}
			return *dst
		}
		*dst = BitString{w: s.extractWord(lo, m), n: m}
		return *dst
	}
	b := dst.grow((m + 7) / 8)
	s.sliceBytes(b, lo, m)
	*dst = BitString{b: b, n: m}
	return *dst
}

// sliceBytes writes the m bits of s starting at lo into dst (which must be
// exactly ceil(m/8) bytes) as whole shifted words. Pad bits come out zero
// because extractWord masks.
func (s BitString) sliceBytes(dst []byte, lo, m int) {
	j := 0
	for ; (j+1)*64 <= m; j++ {
		binary.BigEndian.PutUint64(dst[j*8:], s.extractWord(lo+64*j, 64))
	}
	if rem := m - 64*j; rem > 0 {
		w := s.extractWord(lo+64*j, rem)
		for k := 0; k*8 < rem; k++ {
			dst[j*8+k] = byte(w >> (56 - 8*uint(k)))
		}
	}
}

// CloneInto deep-copies src using buf as backing storage when src is
// slice-backed, growing buf only if its capacity is insufficient. It
// returns the copy and the (possibly grown) buffer for the caller to
// retain. Inline sources are returned as value copies and buf is passed
// through untouched, so steady-state reuse performs no allocation.
func CloneInto(buf []byte, src BitString) (BitString, []byte) {
	if src.b == nil {
		return src, buf
	}
	nb := len(src.b)
	if cap(buf) < nb {
		buf = make([]byte, nb)
	}
	buf = buf[:nb]
	copy(buf, src.b)
	return BitString{b: buf, n: src.n}, buf
}

// grow returns a slice of nb bytes for dst's result, reusing dst's backing
// array when its capacity allows. Contents are unspecified.
func (dst *BitString) grow(nb int) []byte {
	if cap(dst.b) >= nb {
		return dst.b[:nb]
	}
	return make([]byte, nb)
}

// writeBits ORs the bits of src into dst starting at bit offset off.
// The target bit positions must currently be zero.
func writeBits(dst []byte, off int, src BitString) {
	if src.n == 0 {
		return
	}
	if src.b == nil {
		writeWordBits(dst, off, src.w, src.n)
		return
	}
	if off&7 == 0 {
		base := off >> 3
		for i, x := range src.b {
			dst[base+i] |= x
		}
		return
	}
	i := 0
	for ; (i+1)*64 <= src.n; i++ {
		writeWordBits(dst, off+64*i, binary.BigEndian.Uint64(src.b[i*8:]), 64)
	}
	if rem := src.n - 64*i; rem > 0 {
		var w uint64
		for j := i * 8; j < len(src.b); j++ {
			w |= uint64(src.b[j]) << (56 - 8*uint(j-i*8))
		}
		writeWordBits(dst, off+64*i, w, rem)
	}
}

// writeWordBits ORs the top m bits of w into dst at bit offset off using
// shifted whole-byte stores; a 64-bit unaligned write touches at most nine
// bytes. The target bit positions must currently be zero.
func writeWordBits(dst []byte, off int, w uint64, m int) {
	w &= maskTop(m)
	base := off >> 3
	shift := uint(off & 7)
	nb := (int(shift) + m + 7) / 8
	p := w >> shift
	for j := 0; j < nb && j < 8; j++ {
		dst[base+j] |= byte(p >> (56 - 8*uint(j)))
	}
	if nb == 9 {
		dst[base+8] |= byte(w << (64 - shift) >> 56)
	}
}

// HasPrefix reports whether s begins with prefix p, comparing whole words
// rather than individual bits.
func (s BitString) HasPrefix(p BitString) bool {
	if p.n > s.n {
		return false
	}
	i := 0
	for ; i+64 <= p.n; i += 64 {
		if s.extractWord(i, 64) != p.extractWord(i, 64) {
			return false
		}
	}
	if rem := p.n - i; rem > 0 {
		return s.extractWord(i, rem) == p.extractWord(i, rem)
	}
	return true
}

// Append returns s with a single bit appended.
func (s BitString) Append(bit byte) BitString {
	total := s.n + 1
	if total <= 64 {
		w := s.word()
		if bit != 0 {
			w |= 1 << (63 - uint(s.n))
		}
		return BitString{w: w, n: total}
	}
	out := BitString{b: make([]byte, (total+7)/8), n: total}
	s.PutBytes(out.b)
	if bit != 0 {
		out.setBit(s.n)
	}
	return out
}

// HammingDistance returns the number of differing bit positions.
// It panics if the lengths differ.
func HammingDistance(s, t BitString) int {
	return Xor(s, t).OnesCount()
}

// Compare orders bit strings first by length, then lexicographically by
// bits; it returns -1, 0 or +1 in the manner of bytes.Compare. Because the
// inline word is MSB-aligned with zero pad bits, numeric word comparison
// coincides with lexicographic bit order.
func Compare(s, t BitString) int {
	switch {
	case s.n < t.n:
		return -1
	case s.n > t.n:
		return 1
	}
	if s.n <= 64 {
		sw, tw := s.word(), t.word()
		switch {
		case sw < tw:
			return -1
		case sw > tw:
			return 1
		}
		return 0
	}
	return bytes.Compare(s.b, t.b)
}
