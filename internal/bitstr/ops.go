package bitstr

import "fmt"

// Or returns the bitwise Boolean sum of s and t. This is the paper's ∨
// operator: the signal a reader receives when two tags transmit
// concurrently is the bitwise OR of the transmitted bit strings.
// Both operands must have the same length.
func Or(s, t BitString) BitString {
	if s.n != t.n {
		panic(fmt.Sprintf("bitstr: Or length mismatch %d vs %d", s.n, t.n))
	}
	out := s.Clone()
	orBytes(out.b, t.b)
	return out
}

// OrAll folds Or over all operands. It panics if the slice is empty or the
// lengths differ.
func OrAll(ss ...BitString) BitString {
	if len(ss) == 0 {
		panic("bitstr: OrAll of no operands")
	}
	out := ss[0].Clone()
	for _, t := range ss[1:] {
		if t.n != out.n {
			panic(fmt.Sprintf("bitstr: OrAll length mismatch %d vs %d", out.n, t.n))
		}
		orBytes(out.b, t.b)
	}
	return out
}

// OrInPlace accumulates t into s (s |= t) and returns s. It is the hot-path
// form used by the channel model; s must have been created by this package.
func (s *BitString) OrInPlace(t BitString) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitstr: OrInPlace length mismatch %d vs %d", s.n, t.n))
	}
	orBytes(s.b, t.b)
}

// And returns the bitwise AND of s and t.
func And(s, t BitString) BitString {
	if s.n != t.n {
		panic(fmt.Sprintf("bitstr: And length mismatch %d vs %d", s.n, t.n))
	}
	out := s.Clone()
	andBytes(out.b, t.b)
	return out
}

// Xor returns the bitwise exclusive OR of s and t.
func Xor(s, t BitString) BitString {
	if s.n != t.n {
		panic(fmt.Sprintf("bitstr: Xor length mismatch %d vs %d", s.n, t.n))
	}
	out := s.Clone()
	xorBytes(out.b, t.b)
	out.clearPad()
	return out
}

// Not returns the bitwise complement of s. This is the QCD collision
// function f(r) = ~r (Theorem 1 of the paper).
func Not(s BitString) BitString {
	out := s.Clone()
	notBytes(out.b)
	out.clearPad()
	return out
}

// Concat returns the concatenation s ⊕ t (s's bits first).
func Concat(s, t BitString) BitString {
	out := New(s.n + t.n)
	copy(out.b, s.b)
	if s.n%8 == 0 {
		copy(out.b[s.n/8:], t.b)
	} else {
		for i := 0; i < t.n; i++ {
			if t.Bit(i) == 1 {
				out.setBit(s.n + i)
			}
		}
	}
	return out
}

// Slice returns the sub-string of bits [lo, hi). It panics if the range is
// invalid.
func (s BitString) Slice(lo, hi int) BitString {
	if lo < 0 || hi > s.n || lo > hi {
		panic(fmt.Sprintf("bitstr: slice [%d,%d) of %d-bit string", lo, hi, s.n))
	}
	out := New(hi - lo)
	if lo%8 == 0 {
		copy(out.b, s.b[lo/8:])
		out.clearPad()
		return out
	}
	for i := lo; i < hi; i++ {
		if s.Bit(i) == 1 {
			out.setBit(i - lo)
		}
	}
	return out
}

// HasPrefix reports whether s begins with prefix p.
func (s BitString) HasPrefix(p BitString) bool {
	if p.n > s.n {
		return false
	}
	for i := 0; i < p.n; i++ {
		if s.Bit(i) != p.Bit(i) {
			return false
		}
	}
	return true
}

// Append returns s with a single bit appended.
func (s BitString) Append(bit byte) BitString {
	out := New(s.n + 1)
	copy(out.b, s.b)
	if bit != 0 {
		out.setBit(s.n)
	}
	return out
}

// HammingDistance returns the number of differing bit positions.
// It panics if the lengths differ.
func HammingDistance(s, t BitString) int {
	return Xor(s, t).OnesCount()
}

// Compare orders bit strings first by length, then lexicographically by
// bits; it returns -1, 0 or +1 in the manner of bytes.Compare.
func Compare(s, t BitString) int {
	switch {
	case s.n < t.n:
		return -1
	case s.n > t.n:
		return 1
	}
	for i := range s.b {
		switch {
		case s.b[i] < t.b[i]:
			return -1
		case s.b[i] > t.b[i]:
			return 1
		}
	}
	return 0
}
