package bitstr

import "strings"

// String renders the bits as a run of '0' and '1' characters, MSB first.
func (s BitString) String() string {
	var sb strings.Builder
	sb.Grow(s.n)
	for i := 0; i < s.n; i++ {
		sb.WriteByte('0' + s.Bit(i))
	}
	return sb.String()
}

// Hex renders the packed bytes in lowercase hexadecimal. Lengths that are
// not byte multiples are zero-padded on the right, matching Bytes().
func (s BitString) Hex() string {
	const digits = "0123456789abcdef"
	nb := s.byteLen()
	var sb strings.Builder
	sb.Grow(2 * nb)
	for i := 0; i < nb; i++ {
		x := s.byteAt(i)
		sb.WriteByte(digits[x>>4])
		sb.WriteByte(digits[x&0xf])
	}
	return sb.String()
}

// GoString implements fmt.GoStringer for diagnostic %#v output.
func (s BitString) GoString() string {
	return "bitstr.MustParse(\"" + s.String() + "\")"
}

// Key returns a compact string usable as a map key; distinct bit strings
// (including by length) map to distinct keys.
func (s BitString) Key() string {
	// Prefix the hex with the bit length to disambiguate pad bits.
	return itoa(s.n) + ":" + s.Hex()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
