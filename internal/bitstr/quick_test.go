package bitstr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomBits draws a bit string of length 0..96 from the generator rand
// supplies to testing/quick.
func randomBits(r *rand.Rand) BitString {
	n := r.Intn(97)
	s := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 1 {
			s.setBit(i)
		}
	}
	return s
}

// pair draws two equal-length random bit strings.
func randomPair(r *rand.Rand) (BitString, BitString) {
	a := randomBits(r)
	b := New(a.Len())
	for i := 0; i < b.Len(); i++ {
		if r.Intn(2) == 1 {
			b.setBit(i)
		}
	}
	return a, b
}

func TestQuickOrCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomPair(r)
		return Or(a, b).Equal(Or(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickOrAssociativeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomPair(r)
		c := New(a.Len())
		for i := 0; i < c.Len(); i++ {
			if r.Intn(2) == 1 {
				c.setBit(i)
			}
		}
		assoc := Or(Or(a, b), c).Equal(Or(a, Or(b, c)))
		idem := Or(a, a).Equal(a)
		return assoc && idem
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickDeMorgan checks ~(a|b) == ~a & ~b — the algebraic fact behind
// Theorem 1: complement does NOT distribute over Boolean sum, it lands on
// AND instead, which is why f(r)=~r detects collisions.
func TestQuickDeMorgan(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomPair(r)
		return Not(Or(a, b)).Equal(And(Not(a), Not(b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickTheorem1 is the paper's Theorem 1 as a property: for a set of
// random integers with at least two distinct values,
// f(∨ r_i) != ∨ f(r_i); and with all values equal (m=1 logically),
// equality holds.
func TestQuickTheorem1(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(32) // strength 1..32 bits
		m := 2 + r.Intn(8)
		rs := make([]BitString, m)
		distinct := false
		for i := range rs {
			rs[i] = FromUint64(uint64(r.Int63()), n)
			if i > 0 && !rs[i].Equal(rs[0]) {
				distinct = true
			}
		}
		or := OrAll(rs...)
		comps := make([]BitString, m)
		for i := range rs {
			comps[i] = Not(rs[i])
		}
		orComp := OrAll(comps...)
		if distinct {
			// Theorem 1 claim 1: a real collision is always flagged.
			return !Not(or).Equal(orComp)
		}
		// All equal: indistinguishable from a single responder (claim 2
		// converse); the scheme must NOT flag it.
		return Not(or).Equal(orComp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickConcatSliceInverse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomBits(r)
		b := randomBits(r)
		cat := Concat(a, b)
		return cat.Len() == a.Len()+b.Len() &&
			cat.Slice(0, a.Len()).Equal(a) &&
			cat.Slice(a.Len(), cat.Len()).Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickXorSelfIsZero(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomBits(r)
		return Xor(a, a).IsZero()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickOnesCountUnderOr(t *testing.T) {
	// |a|b| >= max(|a|,|b|) and <= |a|+|b| in popcount.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomPair(r)
		o := Or(a, b).OnesCount()
		ca, cb := a.OnesCount(), b.OnesCount()
		hi := ca + cb
		lo := ca
		if cb > lo {
			lo = cb
		}
		return o >= lo && o <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareIsOrdering(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomPair(r)
		ab, ba := Compare(a, b), Compare(b, a)
		if ab != -ba {
			return false
		}
		return (ab == 0) == a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSetBitReadback(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomBits(r)
		if s.Len() == 0 {
			return true
		}
		i := r.Intn(s.Len())
		v := byte(r.Intn(2))
		u := s.SetBit(i, v)
		if u.Bit(i) != v {
			return false
		}
		// All other bits unchanged.
		for j := 0; j < s.Len(); j++ {
			if j != i && u.Bit(j) != s.Bit(j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
