package bitstr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Differential tests: the inline word representation and the byte-slice
// representation must be observationally identical. Every public operation
// is run on both forms (and mixed pairs) and must agree bit-for-bit; every
// result must satisfy the representation invariant (pad bits zero), so
// padded-bit garbage can never leak into Equal or Compare.

// asSliceRepr returns s re-encoded in the byte-slice representation, even
// when s.n <= 64. Only tests may construct such values; the public
// constructors always return the inline form for short strings.
func asSliceRepr(s BitString) BitString {
	out := BitString{b: make([]byte, s.byteLen()), n: s.n}
	s.PutBytes(out.b)
	return out
}

// invariantOK checks the representation invariant documented on BitString.
func invariantOK(s BitString) bool {
	if s.b == nil {
		return s.n >= 0 && s.n <= 64 && s.w&^maskTop(s.n) == 0
	}
	if len(s.b) != s.byteLen() {
		return false
	}
	if s.n%8 != 0 && len(s.b) > 0 {
		if s.b[len(s.b)-1]&^(^byte(0)<<(8-uint(s.n%8))) != 0 {
			return false
		}
	}
	return true
}

// reprs returns both representations of s when s fits inline, else just s.
func reprs(s BitString) []BitString {
	if s.n > 64 {
		return []BitString{s}
	}
	inline := BitString{w: s.word(), n: s.n}
	return []BitString{inline, asSliceRepr(s)}
}

func TestReprAgreementUnary(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomBits(r)
		forms := reprs(s)
		ref := forms[0]
		for _, x := range forms {
			if !invariantOK(x) {
				return false
			}
			if x.String() != ref.String() || x.Hex() != ref.Hex() || x.Key() != ref.Key() {
				return false
			}
			if x.OnesCount() != ref.OnesCount() || x.IsZero() != ref.IsZero() {
				return false
			}
			if s.n <= 64 && x.Uint64() != ref.Uint64() {
				return false
			}
			for i := 0; i < s.n; i++ {
				if x.Bit(i) != ref.Bit(i) {
					return false
				}
			}
			if !invariantOK(Not(x)) || !Not(x).Equal(Not(ref)) {
				return false
			}
			// Bytes/FromBytes round-trip preserves value in either form.
			rt := FromBytes(x.Bytes(), x.Len())
			if !invariantOK(rt) || !rt.Equal(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestReprAgreementBinary(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomPair(r)
		refOr := Or(a, b)
		refAnd := And(a, b)
		refXor := Xor(a, b)
		refCmp := Compare(a, b)
		for _, x := range reprs(a) {
			for _, y := range reprs(b) {
				if !x.Equal(y) == a.Equal(b) {
					return false
				}
				if Compare(x, y) != refCmp {
					return false
				}
				for _, got := range []struct{ g, want BitString }{
					{Or(x, y), refOr}, {And(x, y), refAnd}, {Xor(x, y), refXor},
				} {
					if !invariantOK(got.g) || !got.g.Equal(got.want) {
						return false
					}
				}
				acc := x.Clone()
				acc.OrInPlace(y)
				if !invariantOK(acc) || !acc.Equal(refOr) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestReprAgreementConcatSlice(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomBits(r)
		b := randomBits(r)
		refCat := Concat(a, b)
		if !invariantOK(refCat) {
			return false
		}
		for _, x := range reprs(a) {
			for _, y := range reprs(b) {
				cat := Concat(x, y)
				if !invariantOK(cat) || !cat.Equal(refCat) {
					return false
				}
				if !cat.HasPrefix(x) {
					return false
				}
			}
		}
		// Random sub-slices agree across representations and with
		// Uint64Range on widths <= 64.
		for trial := 0; trial < 4; trial++ {
			lo := r.Intn(refCat.Len() + 1)
			hi := lo + r.Intn(refCat.Len()-lo+1)
			ref := refCat.Slice(lo, hi)
			if !invariantOK(ref) {
				return false
			}
			for _, x := range reprs(refCat) {
				got := x.Slice(lo, hi)
				if !invariantOK(got) || !got.Equal(ref) {
					return false
				}
				if hi-lo > 0 && hi-lo <= 64 && x.Uint64Range(lo, hi) != ref.Uint64() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestConcatTwoWordKernel pins the 64 < total ≤ 128 shift-merge kernel
// against a bit-by-bit reference for every operand length pair reaching
// it (the repr-agreement tests compare Concat with itself, so they
// cannot catch a kernel bug on their own).
func TestConcatTwoWordKernel(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var scratch BitString
	for sn := 1; sn <= 64; sn++ {
		for tn := 1; tn <= 64; tn++ {
			if sn+tn <= 64 {
				continue
			}
			a := FromUint64(r.Uint64(), sn)
			b := FromUint64(r.Uint64(), tn)
			got := Concat(a, b)
			into := ConcatInto(&scratch, a, b)
			if !invariantOK(got) || !invariantOK(into) || !got.Equal(into) {
				t.Fatalf("Concat/ConcatInto disagree for %d+%d: %v vs %v", sn, tn, got, into)
			}
			if got.Len() != sn+tn {
				t.Fatalf("Concat(%d,%d) has %d bits", sn, tn, got.Len())
			}
			for i := 0; i < sn; i++ {
				if got.Bit(i) != a.Bit(i) {
					t.Fatalf("Concat(%d,%d) bit %d differs from s", sn, tn, i)
				}
			}
			for i := 0; i < tn; i++ {
				if got.Bit(sn+i) != b.Bit(i) {
					t.Fatalf("Concat(%d,%d) bit %d differs from t", sn, tn, sn+i)
				}
			}
		}
	}
}

// TestIntoVariantsMatchAllocating checks NotInto/ConcatInto/SliceInto
// against their allocating counterparts while reusing one scratch value
// across iterations, as the slot engine does.
func TestIntoVariantsMatchAllocating(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var scratch BitString
	for trial := 0; trial < 500; trial++ {
		a := randomBits(r)
		b := randomBits(r)

		if got := NotInto(&scratch, a); !invariantOK(got) || !got.Equal(Not(a)) {
			t.Fatalf("NotInto(%v) = %v, want %v", a, got, Not(a))
		}
		if got := ConcatInto(&scratch, a, b); !invariantOK(got) || !got.Equal(Concat(a, b)) {
			t.Fatalf("ConcatInto(%v, %v) = %v", a, b, got)
		}
		lo := r.Intn(a.Len() + 1)
		hi := lo + r.Intn(a.Len()-lo+1)
		if got := a.SliceInto(&scratch, lo, hi); !invariantOK(got) || !got.Equal(a.Slice(lo, hi)) {
			t.Fatalf("SliceInto(%v, %d, %d) = %v", a, lo, hi, got)
		}

		var buf []byte
		for _, src := range reprs(a) {
			var c BitString
			c, buf = CloneInto(buf, src)
			if !invariantOK(c) || !c.Equal(a) {
				t.Fatalf("CloneInto(%v) = %v", src, c)
			}
		}
	}
}

// FuzzReprAgreement drives the word and slice forms of the same value
// through Concat/Slice/Not/Uint64 and requires bit-identical results.
func FuzzReprAgreement(f *testing.F) {
	f.Add(uint64(0), 1, 0, 1)
	f.Add(^uint64(0), 64, 3, 61)
	f.Add(uint64(0xA5A5A5A5A5A5A5A5), 33, 5, 20)
	f.Fuzz(func(t *testing.T, v uint64, n, lo, hi int) {
		if n < 0 || n > 64 {
			return
		}
		inline := FromUint64(v, n)
		slice := asSliceRepr(inline)
		if !inline.Equal(slice) || !slice.Equal(inline) {
			t.Fatalf("representations unequal for v=%#x n=%d", v, n)
		}
		if inline.Uint64() != slice.Uint64() {
			t.Fatal("Uint64 disagrees across representations")
		}
		if !Not(inline).Equal(Not(slice)) {
			t.Fatal("Not disagrees across representations")
		}
		cat := Concat(slice, inline) // 2n bits, exercises >64 when n > 32
		if !cat.Slice(0, n).Equal(inline) || !cat.Slice(n, 2*n).Equal(inline) {
			t.Fatal("Concat halves do not round-trip")
		}
		if !invariantOK(cat) {
			t.Fatal("Concat result violates representation invariant")
		}
		if lo < 0 || hi > 2*n || lo > hi {
			return
		}
		want := cat.Slice(lo, hi)
		if got := asSliceRepr(cat).Slice(lo, hi); !got.Equal(want) {
			t.Fatalf("Slice(%d,%d) disagrees across representations", lo, hi)
		}
		if hi-lo > 0 && hi-lo <= 64 && cat.Uint64Range(lo, hi) != want.Uint64() {
			t.Fatalf("Uint64Range(%d,%d) != Slice().Uint64()", lo, hi)
		}
	})
}
