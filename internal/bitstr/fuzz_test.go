package bitstr

import "testing"

// FuzzParse checks Parse/String round-tripping and that invalid input is
// rejected rather than mis-parsed.
func FuzzParse(f *testing.F) {
	f.Add("")
	f.Add("0")
	f.Add("1")
	f.Add("011001")
	f.Add("xyz")
	f.Add("01a10")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := Parse(in)
		if err != nil {
			// Must contain a non-binary rune.
			for _, r := range in {
				if r != '0' && r != '1' {
					return
				}
			}
			t.Fatalf("Parse(%q) rejected a binary string: %v", in, err)
		}
		if s.String() != in {
			t.Fatalf("roundtrip %q -> %q", in, s.String())
		}
		if s.Len() != len(in) {
			t.Fatalf("length %d for %q", s.Len(), in)
		}
	})
}

// FuzzSliceConcat checks that cutting a string anywhere and re-joining it
// reproduces the original.
func FuzzSliceConcat(f *testing.F) {
	f.Add("1011001", 3)
	f.Add("", 0)
	f.Add("1", 1)
	f.Fuzz(func(t *testing.T, in string, cut int) {
		s, err := Parse(in)
		if err != nil {
			return
		}
		if cut < 0 || cut > s.Len() {
			return
		}
		re := Concat(s.Slice(0, cut), s.Slice(cut, s.Len()))
		if !re.Equal(s) {
			t.Fatalf("slice/concat at %d broke %q -> %q", cut, in, re.String())
		}
	})
}
