package bitstr

import "testing"

func TestOrPaperExample(t *testing.T) {
	// The overlap example from Section I of the paper:
	// (011001) ∨ (010010) = (011011).
	a := MustParse("011001")
	b := MustParse("010010")
	if got := Or(a, b); got.String() != "011011" {
		t.Errorf("Or = %s, want 011011", got)
	}
}

func TestOrAll(t *testing.T) {
	got := OrAll(MustParse("0001"), MustParse("0010"), MustParse("0100"))
	if got.String() != "0111" {
		t.Errorf("OrAll = %s", got)
	}
	// Single operand is identity.
	if got := OrAll(MustParse("1010")); got.String() != "1010" {
		t.Errorf("OrAll single = %s", got)
	}
}

func TestOrAllEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("OrAll() did not panic")
		}
	}()
	OrAll()
}

func TestOrLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Or on mismatched lengths did not panic")
		}
	}()
	Or(New(4), New(5))
}

func TestOrInPlace(t *testing.T) {
	s := MustParse("0101")
	s.OrInPlace(MustParse("0011"))
	if s.String() != "0111" {
		t.Errorf("OrInPlace = %s", s)
	}
}

func TestNot(t *testing.T) {
	s := MustParse("10110")
	if got := Not(s); got.String() != "01001" {
		t.Errorf("Not = %s", got)
	}
	// Pad bits must stay clear after complement.
	if got := Not(New(3)); got.Bytes()[0] != 0xE0 {
		t.Errorf("Not pad bits leaked: %#x", got.Bytes()[0])
	}
}

func TestNotInvolution(t *testing.T) {
	s := MustParse("110010111")
	if !Not(Not(s)).Equal(s) {
		t.Error("Not is not an involution")
	}
}

func TestXorAnd(t *testing.T) {
	a := MustParse("1100")
	b := MustParse("1010")
	if got := Xor(a, b); got.String() != "0110" {
		t.Errorf("Xor = %s", got)
	}
	if got := And(a, b); got.String() != "1000" {
		t.Errorf("And = %s", got)
	}
}

func TestConcat(t *testing.T) {
	cases := []struct{ a, b, want string }{
		{"", "", ""},
		{"1", "", "1"},
		{"", "0110", "0110"},
		{"101", "11", "10111"},
		{"10100101", "1111", "101001011111"}, // byte-aligned fast path
		{"1010010", "1111", "10100101111"},   // unaligned slow path
	}
	for _, c := range cases {
		got := Concat(MustParse(c.a), MustParse(c.b))
		if got.String() != c.want {
			t.Errorf("Concat(%q,%q) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestSlice(t *testing.T) {
	s := MustParse("101001011111")
	cases := []struct {
		lo, hi int
		want   string
	}{
		{0, 0, ""},
		{0, 12, "101001011111"},
		{0, 5, "10100"},
		{8, 12, "1111"}, // byte-aligned fast path
		{3, 9, "001011"},
	}
	for _, c := range cases {
		if got := s.Slice(c.lo, c.hi); got.String() != c.want {
			t.Errorf("Slice(%d,%d) = %s, want %s", c.lo, c.hi, got, c.want)
		}
	}
}

func TestSliceRangePanics(t *testing.T) {
	s := New(8)
	for _, c := range [][2]int{{-1, 4}, {0, 9}, {5, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Slice(%d,%d) did not panic", c[0], c[1])
				}
			}()
			s.Slice(c[0], c[1])
		}()
	}
}

func TestConcatSliceRoundtrip(t *testing.T) {
	a := MustParse("11010")
	b := MustParse("0011101")
	cat := Concat(a, b)
	if !cat.Slice(0, a.Len()).Equal(a) {
		t.Error("prefix slice != a")
	}
	if !cat.Slice(a.Len(), cat.Len()).Equal(b) {
		t.Error("suffix slice != b")
	}
}

func TestHasPrefix(t *testing.T) {
	s := MustParse("110100")
	for p, want := range map[string]bool{
		"":        true,
		"1":       true,
		"11":      true,
		"1101":    true,
		"110100":  true,
		"0":       false,
		"111":     false,
		"1101000": false, // longer than s
	} {
		if got := s.HasPrefix(MustParse(p)); got != want {
			t.Errorf("HasPrefix(%q) = %v, want %v", p, got, want)
		}
	}
}

func TestAppend(t *testing.T) {
	s := MustParse("101")
	if got := s.Append(1); got.String() != "1011" {
		t.Errorf("Append(1) = %s", got)
	}
	if got := s.Append(0); got.String() != "1010" {
		t.Errorf("Append(0) = %s", got)
	}
	if s.String() != "101" {
		t.Error("Append mutated receiver")
	}
}

func TestHammingDistance(t *testing.T) {
	if got := HammingDistance(MustParse("1010"), MustParse("0110")); got != 2 {
		t.Errorf("HammingDistance = %d, want 2", got)
	}
	if got := HammingDistance(MustParse("1111"), MustParse("1111")); got != 0 {
		t.Errorf("HammingDistance identical = %d", got)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"0", "1", -1},
		{"1", "0", 1},
		{"01", "01", 0},
		{"0", "00", -1}, // shorter sorts first
		{"111", "1", 1},
	}
	for _, c := range cases {
		if got := Compare(MustParse(c.a), MustParse(c.b)); got != c.want {
			t.Errorf("Compare(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestKeyDistinguishesLengths(t *testing.T) {
	a := MustParse("1") // packs to 0x80
	b := MustParse("10")
	if a.Key() == b.Key() {
		t.Error("Key collides across lengths")
	}
	if a.Hex() != b.Hex() {
		t.Error("expected identical hex packing for this pair (test premise)")
	}
}

func TestStringAndHex(t *testing.T) {
	s := MustParse("10100101")
	if s.Hex() != "a5" {
		t.Errorf("Hex = %s", s.Hex())
	}
	if s.GoString() != `bitstr.MustParse("10100101")` {
		t.Errorf("GoString = %s", s.GoString())
	}
}
