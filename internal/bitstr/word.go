package bitstr

import "encoding/binary"

// Word-chunked kernels for the byte-parallel operations. The simulator's
// hot loop ORs thousands of 96-bit payloads per frame; processing eight
// bytes per iteration instead of one keeps that loop in registers.
// Lengths below a word fall through to the byte loop.

func orBytes(dst, src []byte) {
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])|binary.LittleEndian.Uint64(src[i:]))
	}
	for ; i < len(dst); i++ {
		dst[i] |= src[i]
	}
}

func andBytes(dst, src []byte) {
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])&binary.LittleEndian.Uint64(src[i:]))
	}
	for ; i < len(dst); i++ {
		dst[i] &= src[i]
	}
}

func xorBytes(dst, src []byte) {
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for ; i < len(dst); i++ {
		dst[i] ^= src[i]
	}
}

func notBytes(dst []byte) {
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		binary.LittleEndian.PutUint64(dst[i:], ^binary.LittleEndian.Uint64(dst[i:]))
	}
	for ; i < len(dst); i++ {
		dst[i] = ^dst[i]
	}
}

func equalBytes(a, b []byte) bool {
	i := 0
	for ; i+8 <= len(a); i += 8 {
		if binary.LittleEndian.Uint64(a[i:]) != binary.LittleEndian.Uint64(b[i:]) {
			return false
		}
	}
	for ; i < len(a); i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func zeroBytes(a []byte) bool {
	i := 0
	for ; i+8 <= len(a); i += 8 {
		if binary.LittleEndian.Uint64(a[i:]) != 0 {
			return false
		}
	}
	for ; i < len(a); i++ {
		if a[i] != 0 {
			return false
		}
	}
	return true
}
