package bitstr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickWordKernelsMatchNaive cross-checks the word-chunked kernels
// against reference byte loops on random lengths straddling the 8-byte
// boundary.
func TestQuickWordKernelsMatchNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(40) // 0..39 bytes: covers <1 word, exact words, tails
		a := make([]byte, n)
		b := make([]byte, n)
		r.Read(a)
		r.Read(b)

		ref := func(op func(x, y byte) byte) []byte {
			out := make([]byte, n)
			for i := range out {
				out[i] = op(a[i], b[i])
			}
			return out
		}
		check := func(kernel func(dst, src []byte), op func(x, y byte) byte) bool {
			dst := append([]byte(nil), a...)
			kernel(dst, b)
			want := ref(op)
			for i := range dst {
				if dst[i] != want[i] {
					return false
				}
			}
			return true
		}
		if !check(orBytes, func(x, y byte) byte { return x | y }) {
			return false
		}
		if !check(andBytes, func(x, y byte) byte { return x & y }) {
			return false
		}
		if !check(xorBytes, func(x, y byte) byte { return x ^ y }) {
			return false
		}
		dst := append([]byte(nil), a...)
		notBytes(dst)
		for i := range dst {
			if dst[i] != ^a[i] {
				return false
			}
		}
		// equal/zero agree with naive.
		if equalBytes(a, a) != true {
			return false
		}
		if n > 0 {
			mut := append([]byte(nil), a...)
			mut[n-1] ^= 0x01
			if equalBytes(a, mut) {
				return false
			}
		}
		allZero := true
		for _, x := range a {
			if x != 0 {
				allZero = false
			}
		}
		return zeroBytes(a) == allZero
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func benchPayload(bits int) (BitString, BitString) {
	r := rand.New(rand.NewSource(1))
	mk := func() BitString {
		s := New(bits)
		for i := 0; i < bits; i++ {
			if r.Intn(2) == 1 {
				s.setBit(i)
			}
		}
		return s
	}
	return mk(), mk()
}

func BenchmarkOr96(b *testing.B) {
	x, y := benchPayload(96)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.OrInPlace(y)
	}
}

func BenchmarkOr960(b *testing.B) {
	x, y := benchPayload(960)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.OrInPlace(y)
	}
}

func BenchmarkNot96(b *testing.B) {
	x, _ := benchPayload(96)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Not(x)
	}
}

func BenchmarkEqual96(b *testing.B) {
	x, _ := benchPayload(96)
	y := x.Clone()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Equal(y)
	}
}
