package bitstr

import "testing"

// Micro-benchmarks for the bit-string kernels the slot engine leans on.
// The "short" cases cover the inline word representation (QCD preambles,
// r‖r̄, 64-bit IDs); the "long" cases cover the slice representation
// (CRC-CD's 96-bit ID‖crc unit), including the unaligned paths.

var (
	sinkBits  BitString
	sinkWord  uint64
	sinkBool  bool
	sinkCount int
)

func BenchmarkBitstrFromUint64(b *testing.B) {
	b.Run("8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sinkBits = FromUint64(uint64(i), 8)
		}
	})
	b.Run("64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sinkBits = FromUint64(uint64(i), 64)
		}
	})
}

func BenchmarkBitstrUint64(b *testing.B) {
	s := FromUint64(0xDEADBEEFCAFE, 48)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkWord = s.Uint64()
	}
}

func BenchmarkBitstrConcat(b *testing.B) {
	b.Run("8+8", func(b *testing.B) {
		r := FromUint64(0xA5, 8)
		c := Not(r)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sinkBits = Concat(r, c)
		}
	})
	b.Run("64+32-unaligned", func(b *testing.B) {
		// 64-bit ID ⊕ 32-bit CRC after a 3-bit header: forces the
		// unaligned (lo%8 != 0) write path in the 96-bit regime. The
		// chain reuses two destinations, so steady state is alloc-free.
		hdr := FromUint64(0b101, 3)
		id := FromUint64(0x0123456789ABCDEF, 64)
		var framed, dst BitString
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sinkBits = ConcatInto(&dst, ConcatInto(&framed, hdr, id), FromUint64(uint64(i), 32))
		}
	})
	b.Run("64+32-into", func(b *testing.B) {
		// The steady-state CRC-CD payload: ID ⊕ crc into a reused buffer
		// takes the two-word shift-merge kernel and must not allocate.
		id := FromUint64(0x0123456789ABCDEF, 64)
		var dst BitString
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sinkBits = ConcatInto(&dst, id, FromUint64(uint64(i), 32))
		}
	})
}

func BenchmarkBitstrSlice(b *testing.B) {
	long, _ := benchPayload(96)
	b.Run("aligned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sinkBits = long.Slice(0, 64)
		}
	})
	b.Run("unaligned", func(b *testing.B) {
		// An 86-bit window at a non-byte offset: the shifted whole-word
		// extraction into a reused destination must not allocate.
		var dst BitString
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sinkBits = long.SliceInto(&dst, 5, 91)
		}
	})
}

func BenchmarkBitstrNot(b *testing.B) {
	b.Run("8", func(b *testing.B) {
		s := FromUint64(0xA5, 8)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sinkBits = Not(s)
		}
	})
	b.Run("96", func(b *testing.B) {
		// Complementing the CRC-CD 96-bit unit into a reused destination
		// stays on the byte kernel without touching the heap.
		s, _ := benchPayload(96)
		var dst BitString
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sinkBits = NotInto(&dst, s)
		}
	})
}

func BenchmarkBitstrHasPrefix(b *testing.B) {
	s, _ := benchPayload(64)
	p := s.Slice(0, 13)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkBool = s.HasPrefix(p)
	}
}
