// Package bitstr implements fixed-length bit strings and the bit-level
// operations the RFID signal model is built on: bitwise Boolean sum
// (overlap of concurrent transmissions), bitwise complement (the QCD
// collision function), concatenation (preamble framing) and slicing.
//
// Bits are addressed MSB-first: bit index 0 is the first bit on the air,
// stored in the most significant position of the first byte. A BitString
// of length 0 is valid and represents the empty signal.
package bitstr

import (
	"fmt"
	"math/bits"
)

// BitString is an immutable-by-convention sequence of bits. The zero value
// is the empty bit string. Functions in this package never mutate their
// receivers or arguments unless the name says so (e.g. OrInPlace, SetBit).
type BitString struct {
	b []byte // ceil(n/8) bytes; trailing pad bits in the last byte are zero
	n int    // length in bits
}

// New returns an all-zero bit string of length n bits.
// It panics if n is negative.
func New(n int) BitString {
	if n < 0 {
		panic(fmt.Sprintf("bitstr: negative length %d", n))
	}
	return BitString{b: make([]byte, (n+7)/8), n: n}
}

// FromBytes returns a bit string of length n whose content is the first n
// bits of data (MSB-first). It panics if data holds fewer than n bits.
func FromBytes(data []byte, n int) BitString {
	if n < 0 || len(data)*8 < n {
		panic(fmt.Sprintf("bitstr: %d bytes cannot hold %d bits", len(data), n))
	}
	s := New(n)
	copy(s.b, data[:(n+7)/8])
	s.clearPad()
	return s
}

// FromUint64 returns an n-bit string holding the low n bits of v,
// most significant of those n bits first. It panics unless 0 <= n <= 64.
func FromUint64(v uint64, n int) BitString {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("bitstr: FromUint64 length %d out of range", n))
	}
	s := New(n)
	for i := 0; i < n; i++ {
		if v>>(uint(n-1-i))&1 == 1 {
			s.setBit(i)
		}
	}
	return s
}

// Parse builds a bit string from a textual form of '0' and '1' runes.
// Any other rune is an error.
func Parse(text string) (BitString, error) {
	s := New(len(text))
	for i, r := range text {
		switch r {
		case '1':
			s.setBit(i)
		case '0':
		default:
			return BitString{}, fmt.Errorf("bitstr: invalid rune %q at %d", r, i)
		}
	}
	return s, nil
}

// MustParse is Parse that panics on error; intended for tests and constants.
func MustParse(text string) BitString {
	s, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the length in bits.
func (s BitString) Len() int { return s.n }

// IsEmpty reports whether the string has zero length.
func (s BitString) IsEmpty() bool { return s.n == 0 }

// Bit returns bit i (0 or 1), MSB-first. It panics if i is out of range.
func (s BitString) Bit(i int) byte {
	s.check(i)
	return (s.b[i>>3] >> (7 - uint(i&7))) & 1
}

// SetBit returns a copy of s with bit i set to v (0 or 1).
func (s BitString) SetBit(i int, v byte) BitString {
	s.check(i)
	out := s.Clone()
	if v == 0 {
		out.b[i>>3] &^= 1 << (7 - uint(i&7))
	} else {
		out.setBit(i)
	}
	return out
}

// Clone returns a deep copy of s.
func (s BitString) Clone() BitString {
	out := BitString{b: make([]byte, len(s.b)), n: s.n}
	copy(out.b, s.b)
	return out
}

// Bytes returns a copy of the underlying bytes (MSB-first packing); the
// final byte's unused low bits are zero.
func (s BitString) Bytes() []byte {
	out := make([]byte, len(s.b))
	copy(out, s.b)
	return out
}

// Uint64 returns the value of the bits interpreted as a big-endian unsigned
// integer. It panics if the string is longer than 64 bits.
func (s BitString) Uint64() uint64 {
	if s.n > 64 {
		panic(fmt.Sprintf("bitstr: Uint64 on %d-bit string", s.n))
	}
	var v uint64
	for i := 0; i < s.n; i++ {
		v = v<<1 | uint64(s.Bit(i))
	}
	return v
}

// IsZero reports whether every bit is zero. The empty string is zero.
func (s BitString) IsZero() bool {
	return zeroBytes(s.b)
}

// OnesCount returns the number of one bits.
func (s BitString) OnesCount() int {
	c := 0
	for _, x := range s.b {
		c += bits.OnesCount8(x)
	}
	return c
}

// Equal reports whether s and t have the same length and the same bits.
func (s BitString) Equal(t BitString) bool {
	if s.n != t.n {
		return false
	}
	return equalBytes(s.b, t.b)
}

func (s BitString) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitstr: index %d out of range [0,%d)", i, s.n))
	}
}

func (s *BitString) setBit(i int) { s.b[i>>3] |= 1 << (7 - uint(i&7)) }

// clearPad zeroes the unused low bits of the final byte so that Equal and
// IsZero can compare bytes directly.
func (s *BitString) clearPad() {
	if s.n%8 != 0 && len(s.b) > 0 {
		s.b[len(s.b)-1] &= ^byte(0) << (8 - uint(s.n%8))
	}
}
