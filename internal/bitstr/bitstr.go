// Package bitstr implements fixed-length bit strings and the bit-level
// operations the RFID signal model is built on: bitwise Boolean sum
// (overlap of concurrent transmissions), bitwise complement (the QCD
// collision function), concatenation (preamble framing) and slicing.
//
// Bits are addressed MSB-first: bit index 0 is the first bit on the air,
// stored in the most significant position of the first byte. A BitString
// of length 0 is valid and represents the empty signal.
//
// # Representation
//
// Strings of at most 64 bits — every QCD preamble half, r‖r̄ up to
// strength 32, and the default 64-bit IDs — are stored inline in a single
// machine word with no heap pointer, so constructing, complementing,
// concatenating and comparing them never allocates. Longer strings are
// backed by a byte slice. The two representations are interchangeable:
// every operation accepts either, and Equal/Compare/Key are
// representation-agnostic. The simulator's ideal-channel slot path relies
// on this invariant to run allocation-free; see internal/air.
package bitstr

import (
	"fmt"
	"math/bits"
)

// BitString is an immutable-by-convention sequence of bits. The zero value
// is the empty bit string. Functions in this package never mutate their
// receivers or arguments unless the name says so (e.g. OrInPlace, SetBit).
//
// Invariants: when b is nil the string is inline — n <= 64 and the bits
// occupy the top n bits of w, with the remaining low bits zero. When b is
// non-nil it holds ceil(n/8) packed bytes, MSB-first, with the trailing
// pad bits of the last byte zero (and w is meaningless). Operations may
// return either representation for n <= 64; constructors always return
// the inline one.
type BitString struct {
	b []byte // slice backing; nil for the inline representation
	w uint64 // inline bits, MSB-aligned; valid only when b == nil
	n int    // length in bits
}

// inline reports whether s uses the word representation.
func (s BitString) inline() bool { return s.b == nil }

// maskTop returns a mask covering the top n bits of a word, 0 <= n <= 64.
func maskTop(n int) uint64 { return ^uint64(0) << (64 - uint(n)) }

// maskLow returns a mask covering the low n bits of a word, 0 <= n <= 64.
func maskLow(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}

// word returns the bits of s MSB-aligned in a single machine word.
// It must only be called when s.n <= 64.
func (s BitString) word() uint64 {
	if s.b == nil {
		return s.w
	}
	var v uint64
	for i, x := range s.b {
		v |= uint64(x) << (56 - 8*uint(i))
	}
	return v
}

// byteLen returns the number of packed bytes, ceil(n/8).
func (s BitString) byteLen() int { return (s.n + 7) / 8 }

// byteAt returns packed byte i regardless of representation.
func (s BitString) byteAt(i int) byte {
	if s.b != nil {
		return s.b[i]
	}
	return byte(s.w >> (56 - 8*uint(i)))
}

// New returns an all-zero bit string of length n bits.
// It panics if n is negative.
func New(n int) BitString {
	if n < 0 {
		panic(fmt.Sprintf("bitstr: negative length %d", n))
	}
	if n <= 64 {
		return BitString{n: n}
	}
	return BitString{b: make([]byte, (n+7)/8), n: n}
}

// FromBytes returns a bit string of length n whose content is the first n
// bits of data (MSB-first). It panics if data holds fewer than n bits.
func FromBytes(data []byte, n int) BitString {
	if n < 0 || len(data)*8 < n {
		panic(fmt.Sprintf("bitstr: %d bytes cannot hold %d bits", len(data), n))
	}
	if n <= 64 {
		var v uint64
		for i := 0; i < (n+7)/8; i++ {
			v |= uint64(data[i]) << (56 - 8*uint(i))
		}
		return BitString{w: v & maskTop(n), n: n}
	}
	s := BitString{b: make([]byte, (n+7)/8), n: n}
	copy(s.b, data[:(n+7)/8])
	s.clearPad()
	return s
}

// FromUint64 returns an n-bit string holding the low n bits of v,
// most significant of those n bits first. It panics unless 0 <= n <= 64.
func FromUint64(v uint64, n int) BitString {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("bitstr: FromUint64 length %d out of range", n))
	}
	// Shifting the value to the top of the word discards the bits above n
	// and leaves the pad bits zero in one operation.
	return BitString{w: v << (64 - uint(n)), n: n}
}

// Parse builds a bit string from a textual form of '0' and '1' runes.
// Any other rune is an error.
func Parse(text string) (BitString, error) {
	s := New(len(text))
	for i, r := range text {
		switch r {
		case '1':
			s.setBit(i)
		case '0':
		default:
			return BitString{}, fmt.Errorf("bitstr: invalid rune %q at %d", r, i)
		}
	}
	return s, nil
}

// MustParse is Parse that panics on error; intended for tests and constants.
func MustParse(text string) BitString {
	s, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the length in bits.
func (s BitString) Len() int { return s.n }

// IsEmpty reports whether the string has zero length.
func (s BitString) IsEmpty() bool { return s.n == 0 }

// Bit returns bit i (0 or 1), MSB-first. It panics if i is out of range.
func (s BitString) Bit(i int) byte {
	s.check(i)
	if s.b == nil {
		return byte(s.w >> (63 - uint(i)) & 1)
	}
	return (s.b[i>>3] >> (7 - uint(i&7))) & 1
}

// SetBit returns a copy of s with bit i set to v (0 or 1).
func (s BitString) SetBit(i int, v byte) BitString {
	s.check(i)
	out := s.Clone()
	if out.b == nil {
		if v == 0 {
			out.w &^= 1 << (63 - uint(i))
		} else {
			out.w |= 1 << (63 - uint(i))
		}
		return out
	}
	if v == 0 {
		out.b[i>>3] &^= 1 << (7 - uint(i&7))
	} else {
		out.setBit(i)
	}
	return out
}

// Clone returns a deep copy of s. Cloning an inline string is a plain
// value copy and does not allocate.
func (s BitString) Clone() BitString {
	if s.b == nil {
		return s
	}
	out := BitString{b: make([]byte, len(s.b)), n: s.n}
	copy(out.b, s.b)
	return out
}

// Bytes returns a copy of the underlying bytes (MSB-first packing); the
// final byte's unused low bits are zero.
func (s BitString) Bytes() []byte {
	out := make([]byte, s.byteLen())
	s.PutBytes(out)
	return out
}

// PutBytes writes the packed bytes (MSB-first, zero pad bits) into dst
// and returns the number of bytes written, ceil(Len()/8). It panics if
// dst is shorter than that. Unlike Bytes it performs no allocation, so
// hot paths can pack into stack buffers.
func (s BitString) PutBytes(dst []byte) int {
	nb := s.byteLen()
	if len(dst) < nb {
		panic(fmt.Sprintf("bitstr: PutBytes into %d bytes, need %d", len(dst), nb))
	}
	if s.b != nil {
		copy(dst, s.b)
		return nb
	}
	for i := 0; i < nb; i++ {
		dst[i] = byte(s.w >> (56 - 8*uint(i)))
	}
	return nb
}

// Uint64 returns the value of the bits interpreted as a big-endian unsigned
// integer. It panics if the string is longer than 64 bits.
func (s BitString) Uint64() uint64 {
	if s.n > 64 {
		panic(fmt.Sprintf("bitstr: Uint64 on %d-bit string", s.n))
	}
	if s.n == 0 {
		return 0
	}
	return s.word() >> (64 - uint(s.n))
}

// Uint64Range returns the bits [lo, hi) interpreted as a big-endian
// unsigned integer, without materialising the sub-string. It panics if
// the range is invalid or wider than 64 bits. This is the allocation-free
// form of Slice(lo, hi).Uint64() the per-slot classifiers use.
func (s BitString) Uint64Range(lo, hi int) uint64 {
	if lo < 0 || hi > s.n || lo > hi || hi-lo > 64 {
		panic(fmt.Sprintf("bitstr: Uint64Range [%d,%d) of %d-bit string", lo, hi, s.n))
	}
	if lo == hi {
		return 0
	}
	return s.extractWord(lo, hi-lo) >> (64 - uint(hi-lo))
}

// extractWord returns the m bits starting at lo, MSB-aligned in a word.
// The caller guarantees 0 <= lo, 0 < m <= 64, lo+m <= s.n.
func (s BitString) extractWord(lo, m int) uint64 {
	if s.b == nil {
		return (s.w << uint(lo)) & maskTop(m)
	}
	base := lo >> 3
	shift := uint(lo & 7)
	nb := len(s.b) - base
	if nb > 8 {
		nb = 8
	}
	var v uint64
	for j := 0; j < nb; j++ {
		v |= uint64(s.b[base+j]) << (56 - 8*uint(j))
	}
	v <<= shift
	if shift > 0 && base+8 < len(s.b) {
		v |= uint64(s.b[base+8]) >> (8 - shift)
	}
	return v & maskTop(m)
}

// IsZero reports whether every bit is zero. The empty string is zero.
func (s BitString) IsZero() bool {
	if s.b == nil {
		return s.w == 0
	}
	return zeroBytes(s.b)
}

// OnesCount returns the number of one bits.
func (s BitString) OnesCount() int {
	if s.b == nil {
		return bits.OnesCount64(s.w)
	}
	c := 0
	for _, x := range s.b {
		c += bits.OnesCount8(x)
	}
	return c
}

// Equal reports whether s and t have the same length and the same bits.
// It is representation-agnostic: an inline and a slice-backed string with
// the same bits compare equal.
func (s BitString) Equal(t BitString) bool {
	if s.n != t.n {
		return false
	}
	if s.n <= 64 {
		return s.word() == t.word()
	}
	return equalBytes(s.b, t.b)
}

func (s BitString) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitstr: index %d out of range [0,%d)", i, s.n))
	}
}

func (s *BitString) setBit(i int) {
	if s.b == nil {
		s.w |= 1 << (63 - uint(i))
		return
	}
	s.b[i>>3] |= 1 << (7 - uint(i&7))
}

// clearPad zeroes the unused low bits of the final byte (slice form) or
// of the word (inline form) so that Equal and IsZero can compare words or
// bytes directly. Every operation that can write past the logical length
// must call it; the differential tests in word agreement assert that
// padded-bit garbage can never leak into Equal/Compare.
func (s *BitString) clearPad() {
	if s.b == nil {
		s.w &= maskTop(s.n)
		return
	}
	if s.n%8 != 0 && len(s.b) > 0 {
		s.b[len(s.b)-1] &= ^byte(0) << (8 - uint(s.n%8))
	}
}
