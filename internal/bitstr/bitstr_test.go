package bitstr

import (
	"strings"
	"testing"
)

func TestNewZero(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 96} {
		s := New(n)
		if s.Len() != n {
			t.Errorf("New(%d).Len() = %d", n, s.Len())
		}
		if !s.IsZero() {
			t.Errorf("New(%d) not zero", n)
		}
		if s.OnesCount() != 0 {
			t.Errorf("New(%d).OnesCount() = %d", n, s.OnesCount())
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestFromUint64(t *testing.T) {
	cases := []struct {
		v    uint64
		n    int
		want string
	}{
		{0, 0, ""},
		{1, 1, "1"},
		{0, 1, "0"},
		{0b1011, 4, "1011"},
		{0b1011, 6, "001011"},
		{0xff, 8, "11111111"},
		{0x8000000000000000, 64, "1" + strings.Repeat("0", 63)},
	}
	for _, c := range cases {
		s := FromUint64(c.v, c.n)
		if s.String() != c.want {
			t.Errorf("FromUint64(%#x,%d) = %q, want %q", c.v, c.n, s, c.want)
		}
		if got := s.Uint64(); got != c.v&mask(c.n) {
			t.Errorf("roundtrip FromUint64(%#x,%d).Uint64() = %#x", c.v, c.n, got)
		}
	}
}

func mask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(n)) - 1
}

func TestFromUint64RangePanics(t *testing.T) {
	for _, n := range []int{-1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FromUint64(0,%d) did not panic", n)
				}
			}()
			FromUint64(0, n)
		}()
	}
}

func TestParse(t *testing.T) {
	s, err := Parse("011001")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 6 || s.Uint64() != 0b011001 {
		t.Fatalf("Parse = %v", s)
	}
	if _, err := Parse("01x"); err == nil {
		t.Fatal("Parse accepted invalid rune")
	}
}

func TestBitAndSetBit(t *testing.T) {
	s := MustParse("10010110")
	want := []byte{1, 0, 0, 1, 0, 1, 1, 0}
	for i, w := range want {
		if s.Bit(i) != w {
			t.Errorf("Bit(%d) = %d, want %d", i, s.Bit(i), w)
		}
	}
	u := s.SetBit(1, 1)
	if u.String() != "11010110" {
		t.Errorf("SetBit(1,1) = %s", u)
	}
	if s.String() != "10010110" {
		t.Error("SetBit mutated the receiver")
	}
	u = u.SetBit(0, 0)
	if u.String() != "01010110" {
		t.Errorf("SetBit(0,0) = %s", u)
	}
}

func TestBitOutOfRangePanics(t *testing.T) {
	s := New(8)
	for _, i := range []int{-1, 8} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bit(%d) did not panic", i)
				}
			}()
			s.Bit(i)
		}()
	}
}

func TestFromBytes(t *testing.T) {
	s := FromBytes([]byte{0xA5, 0xF0}, 12)
	if s.String() != "101001011111" {
		t.Errorf("FromBytes = %s", s)
	}
	// Pad bits must be cleared so Equal/IsZero can compare bytes.
	if got := s.Bytes()[1]; got != 0xF0 {
		t.Errorf("pad bits not cleared: %#x", got)
	}
}

func TestUint64PanicsOver64(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64 on 65-bit string did not panic")
		}
	}()
	New(65).Uint64()
}

func TestEqual(t *testing.T) {
	a := MustParse("0110")
	b := MustParse("0110")
	c := MustParse("0111")
	d := MustParse("01100")
	if !a.Equal(b) {
		t.Error("equal strings reported unequal")
	}
	if a.Equal(c) {
		t.Error("unequal strings reported equal")
	}
	if a.Equal(d) {
		t.Error("different lengths reported equal")
	}
}

func TestCloneIndependence(t *testing.T) {
	// Short strings are inline, so cloning is value semantics by
	// construction; use a >64-bit string to exercise the slice copy.
	text := "1111" + strings.Repeat("10", 50)
	a := MustParse(text)
	b := a.Clone()
	b.b[0] = 0
	if a.String() != text {
		t.Error("Clone shares storage with original")
	}
	if b.String() == text {
		t.Error("mutating the clone had no effect; test is vacuous")
	}
}

func TestOnesCount(t *testing.T) {
	if got := MustParse("1011001110001111").OnesCount(); got != 10 {
		t.Errorf("OnesCount = %d, want 10", got)
	}
}
