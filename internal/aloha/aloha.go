// Package aloha implements Framed Slotted ALOHA (FSA) anti-collision
// algorithms (Section III-A of the paper): the reader announces a frame of
// F slots, every unidentified tag picks one uniformly at random and
// responds there, and the procedure repeats until all tags are identified.
//
// Frame sizing is pluggable: the paper's evaluation uses a constant frame
// length (Table VI), Lemma 1 shows the λ = 1/e optimum at F = n, and the
// dynamic policies (Schoute backlog estimation, EPC Gen-2 Q) are provided
// for the frame-policy ablation.
package aloha

import (
	"fmt"
	"math"

	"repro/internal/air"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/signal"
	"repro/internal/tagmodel"
	"repro/internal/timing"
)

// FrameCensus summarises one completed frame for the frame policy.
type FrameCensus struct {
	Size     int
	Idle     int
	Single   int
	Collided int
	// Remaining is the number of still-unidentified tags; policies must
	// not use it for sizing (the reader cannot know it) — it exists so
	// tests can assert policies ignore it — except the clairvoyant Optimal
	// policy used to validate Lemma 1.
	Remaining int
}

// FramePolicy chooses FSA frame sizes.
type FramePolicy interface {
	Name() string
	// FirstFrame returns the size of the initial frame.
	FirstFrame() int
	// NextFrame returns the size of the next frame given the previous
	// frame's census. It is called only when unidentified tags remain, so
	// prev.Collided >= 1 unless detection failed; implementations must
	// still return a positive size in that case.
	NextFrame(prev FrameCensus) int
}

// Fixed is the paper's evaluation policy: a constant frame length.
type Fixed struct{ F int }

// NewFixed returns a constant-size policy. It panics if f < 1.
func NewFixed(f int) Fixed {
	if f < 1 {
		panic(fmt.Sprintf("aloha: frame size %d must be positive", f))
	}
	return Fixed{F: f}
}

// Name implements FramePolicy.
func (p Fixed) Name() string { return fmt.Sprintf("fixed-%d", p.F) }

// FirstFrame implements FramePolicy.
func (p Fixed) FirstFrame() int { return p.F }

// NextFrame implements FramePolicy.
func (p Fixed) NextFrame(FrameCensus) int { return p.F }

// Schoute sizes the next frame from Schoute's backlog estimator
// n̂ = 2.39 · c (each collided slot hides 2.39 tags on average at the
// ALOHA operating point), the basis of dynamic FSA per Lee et al.
type Schoute struct{ Initial int }

// NewSchoute returns a dynamic policy starting from the given first frame.
func NewSchoute(initial int) Schoute {
	if initial < 1 {
		panic("aloha: initial frame must be positive")
	}
	return Schoute{Initial: initial}
}

// Name implements FramePolicy.
func (p Schoute) Name() string { return "schoute" }

// FirstFrame implements FramePolicy.
func (p Schoute) FirstFrame() int { return p.Initial }

// NextFrame implements FramePolicy.
func (p Schoute) NextFrame(prev FrameCensus) int {
	est := int(math.Ceil(2.39 * float64(prev.Collided)))
	if est < 1 {
		est = 1
	}
	return est
}

// LowerBound is Vogt's simpler estimator n̂ = 2·c: a collision hides at
// least two tags.
type LowerBound struct{ Initial int }

// NewLowerBound returns the 2c-estimate policy.
func NewLowerBound(initial int) LowerBound {
	if initial < 1 {
		panic("aloha: initial frame must be positive")
	}
	return LowerBound{Initial: initial}
}

// Name implements FramePolicy.
func (p LowerBound) Name() string { return "lowerbound" }

// FirstFrame implements FramePolicy.
func (p LowerBound) FirstFrame() int { return p.Initial }

// NextFrame implements FramePolicy.
func (p LowerBound) NextFrame(prev FrameCensus) int {
	est := 2 * prev.Collided
	if est < 1 {
		est = 1
	}
	return est
}

// Optimal is the clairvoyant policy that always sets F to the number of
// remaining tags, the Lemma-1 optimum; it exists to validate λ_max ≈ 1/e
// and as the upper baseline in ablations.
type Optimal struct{ N int }

// Name implements FramePolicy.
func (p Optimal) Name() string { return "optimal" }

// FirstFrame implements FramePolicy.
func (p Optimal) FirstFrame() int { return max(1, p.N) }

// NextFrame implements FramePolicy.
func (p Optimal) NextFrame(prev FrameCensus) int { return max(1, prev.Remaining) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// slotCap bounds total slots as a defence against livelock; identification
// of n tags needs O(n) slots in expectation, so this cap is never reached
// by a healthy run.
func slotCap(n int) int64 { return int64(n)*1000 + 1_000_000 }

// Options tunes reader behaviour beyond the frame policy.
type Options struct {
	// ConfirmEmpty makes the reader run one final frame after the last
	// identification and stop only when it observes a frame of pure idle
	// slots. A real reader cannot know the tag count, so this is how
	// FSA inventory actually terminates; the paper's Table VII idle
	// counts include this trailing frame.
	ConfirmEmpty bool

	// Impairment applies a noisy/capturing channel to every slot
	// (nil = ideal channel).
	Impairment *air.Impairment

	// KeepSlotLog records a per-slot event log on the session (see
	// metrics.Session.SlotLog), enabling clock-retiming analyses.
	KeepSlotLog bool

	// FrameHook, if set, receives each completed frame's census delta
	// (see metrics.Session.SetFrameHook); used for per-frame tracing.
	FrameHook func(metrics.FrameInfo)

	// Scratch, if non-nil, supplies the reusable slot state so that one
	// buffer set serves many sessions (the simulator allocates one per
	// round). When nil the engine allocates its own per session.
	Scratch *air.SlotScratch

	// Frame, if non-nil, supplies the reusable frame scheduler that
	// buckets tags into slots (see internal/sched); one instance can
	// serve many sessions. When nil the engine allocates its own.
	Frame *sched.Frame

	// Groups, if non-nil, supplies a second reusable scheduler for
	// EDFSA's group partition (unused by plain FSA). When nil the engine
	// allocates its own.
	Groups *sched.Frame

	// Session, if non-nil, is Reset and used to accumulate this run's
	// metrics instead of allocating a fresh one, so a pooled session's
	// delay/log slices are reused across rounds. The returned session
	// aliases it and is valid until the next run that reuses it.
	Session *metrics.Session
}

// session returns the metrics session to accumulate into, pooled or fresh.
func (o Options) session() *metrics.Session {
	if o.Session == nil {
		return &metrics.Session{}
	}
	o.Session.Reset()
	return o.Session
}

// frame returns the frame scheduler to bucket with, pooled or fresh.
func (o Options) frame() *sched.Frame {
	if o.Frame == nil {
		return new(sched.Frame)
	}
	return o.Frame
}

// groups returns the EDFSA group scheduler, pooled or fresh.
func (o Options) groups() *sched.Frame {
	if o.Groups == nil {
		return new(sched.Frame)
	}
	return o.Groups
}

// scratch returns the slot scratch to run slots with, pooled or fresh.
func (o Options) scratch() *air.SlotScratch {
	if o.Scratch == nil {
		return new(air.SlotScratch)
	}
	return o.Scratch
}

// Run identifies the whole population with framed slotted ALOHA under the
// given detector, frame policy and timing model, and returns the session
// metrics. Tags must be in their reset state.
func Run(pop tagmodel.Population, det detect.Detector, policy FramePolicy, tm timing.Model) *metrics.Session {
	return RunWithOptions(pop, det, policy, tm, Options{})
}

// RunWithOptions is Run with explicit reader options.
func RunWithOptions(pop tagmodel.Population, det detect.Detector, policy FramePolicy, tm timing.Model, opt Options) *metrics.Session {
	s := opt.session()
	if opt.KeepSlotLog {
		s.EnableSlotLog()
	}
	if opt.FrameHook != nil {
		s.SetFrameHook(opt.FrameHook)
	}
	now := 0.0
	var slots int64
	remaining := len(pop)
	frameSize := policy.FirstFrame()
	confirmed := false

	sc := opt.scratch()
	frame := opt.frame()
	frame.Reset(pop)
	for remaining > 0 || (opt.ConfirmEmpty && !confirmed) {
		if slots > slotCap(len(pop)) {
			panic(fmt.Sprintf("aloha: exceeded slot cap identifying %d tags (detector %s, policy %s)",
				len(pop), det.Name(), policy.Name()))
		}
		// Announce the frame: every still-unidentified tag picks a slot.
		// The scheduler draws in population index order and compacts
		// identified tags out, so the PRNG sequence matches the historical
		// per-frame scan exactly while later frames only pay for the tags
		// still in contention.
		frame.BuildActive(frameSize)

		var fc FrameCensus
		fc.Size = frameSize
		for i := 0; i < frameSize; i++ {
			o := sc.RunSlotImpaired(det, frame.Bucket(i), opt.Impairment, now, tm.TauMicros)
			now += float64(o.Bits) * tm.TauMicros
			s.Record(o, now)
			slots++
			switch o.Truth {
			case signal.Idle:
				fc.Idle++
			case signal.Single:
				fc.Single++
			default:
				fc.Collided++
			}
			if o.Identified != nil {
				remaining--
			}
		}
		s.EndFrame(frameSize)
		fc.Remaining = remaining
		// An all-idle frame is the reader's evidence that the field is
		// empty; it terminates the inventory when ConfirmEmpty is set.
		confirmed = fc.Single == 0 && fc.Collided == 0
		if remaining > 0 || (opt.ConfirmEmpty && !confirmed) {
			frameSize = policy.NextFrame(fc)
			if frameSize < 1 {
				panic(fmt.Sprintf("aloha: policy %s returned frame size %d", policy.Name(), frameSize))
			}
		}
	}
	return s
}
