package aloha

import (
	"testing"

	"repro/internal/crc"
	"repro/internal/detect"
	"repro/internal/prng"
	"repro/internal/tagmodel"
)

func benchRun(b *testing.B, n, f int, det detect.Detector) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pop := tagmodel.NewPopulation(n, 64, prng.New(uint64(i)+1))
		Run(pop, det, NewFixed(f), tm)
	}
}

func BenchmarkFSA500QCD(b *testing.B)   { benchRun(b, 500, 300, detect.NewQCD(8, 64)) }
func BenchmarkFSA500CRCCD(b *testing.B) { benchRun(b, 500, 300, detect.NewCRCCD(crc.CRC32IEEE, 64)) }
func BenchmarkFSA5000QCD(b *testing.B)  { benchRun(b, 5000, 3000, detect.NewQCD(8, 64)) }

func BenchmarkQAdaptive500(b *testing.B) {
	det := detect.NewQCD(8, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pop := tagmodel.NewPopulation(500, 64, prng.New(uint64(i)+1))
		RunQAdaptive(pop, det, DefaultQConfig(), tm)
	}
}
