package aloha

import (
	"testing"

	"repro/internal/air"
	"repro/internal/crc"
	"repro/internal/detect"
	"repro/internal/prng"
	"repro/internal/tagmodel"
)

func benchRun(b *testing.B, n, f int, det detect.Detector) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pop := tagmodel.NewPopulation(n, 64, prng.New(uint64(i)+1))
		Run(pop, det, NewFixed(f), tm)
	}
}

func BenchmarkFSA500QCD(b *testing.B)   { benchRun(b, 500, 300, detect.NewQCD(8, 64)) }
func BenchmarkFSA500CRCCD(b *testing.B) { benchRun(b, 500, 300, detect.NewCRCCD(crc.CRC32IEEE, 64)) }
func BenchmarkFSA5000QCD(b *testing.B)  { benchRun(b, 5000, 3000, detect.NewQCD(8, 64)) }

func BenchmarkQAdaptive500(b *testing.B) {
	det := detect.NewQCD(8, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pop := tagmodel.NewPopulation(500, 64, prng.New(uint64(i)+1))
		RunQAdaptive(pop, det, DefaultQConfig(), tm)
	}
}

// BenchmarkFrame isolates one FSA frame — slot draws, bucketing, and F
// slot executions — from the end-to-end identification loop, so frame
// mechanics regressions localise here rather than only in BenchmarkFSA*.
func BenchmarkFrame(b *testing.B) {
	for _, d := range []struct {
		name string
		det  detect.Detector
	}{
		{"qcd", detect.NewQCD(8, 64)},
		{"crccd", detect.NewCRCCD(crc.CRC32IEEE, 64)},
	} {
		b.Run(d.name, func(b *testing.B) {
			const n, f = 256, 256
			pop := tagmodel.NewPopulation(n, 64, prng.New(1))
			buckets := make([][]*tagmodel.Tag, f)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range buckets {
					buckets[j] = buckets[j][:0]
				}
				for _, t := range pop {
					t.Slot = t.Rng.Intn(f)
					buckets[t.Slot] = append(buckets[t.Slot], t)
				}
				now := 0.0
				for j := 0; j < f; j++ {
					o := air.RunSlot(d.det, buckets[j], now, tm.TauMicros)
					now += float64(o.Bits) * tm.TauMicros
					if o.Identified != nil {
						o.Identified.Identified = false
					}
				}
			}
		})
	}
}
