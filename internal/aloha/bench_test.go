package aloha

import (
	"testing"

	"repro/internal/air"
	"repro/internal/crc"
	"repro/internal/detect"
	"repro/internal/prng"
	"repro/internal/sched"
	"repro/internal/tagmodel"
)

func benchRun(b *testing.B, n, f int, det detect.Detector) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pop := tagmodel.NewPopulation(n, 64, prng.New(uint64(i)+1))
		Run(pop, det, NewFixed(f), tm)
	}
}

func BenchmarkFSA500QCD(b *testing.B)   { benchRun(b, 500, 300, detect.NewQCD(8, 64)) }
func BenchmarkFSA500CRCCD(b *testing.B) { benchRun(b, 500, 300, detect.NewCRCCD(crc.CRC32IEEE, 64)) }
func BenchmarkFSA5000QCD(b *testing.B)  { benchRun(b, 5000, 3000, detect.NewQCD(8, 64)) }

func BenchmarkQAdaptive500(b *testing.B) {
	det := detect.NewQCD(8, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pop := tagmodel.NewPopulation(500, 64, prng.New(uint64(i)+1))
		RunQAdaptive(pop, det, DefaultQConfig(), tm)
	}
}

// qcd8Stat is BenchmarkStatMode*'s detector model: QCD-8 over 64-bit
// IDs, matching the exact-mode benchmarks' detect.NewQCD(8, 64).
var qcd8Stat = StatModel{Name: "QCD-8", ContentionBits: 16, IDPhaseBits: 64, Strength: 8}

// BenchmarkStatModeQAdaptive500 is BenchmarkQAdaptive500's stat-mode
// counterpart: same workload (500 tags, QCD-8, Gen-2 defaults), one
// session per iteration, pooled scratch. The bench gate reports the
// exact/stat ratio of the two; the ISSUE-8 target is >= 5x.
func BenchmarkStatModeQAdaptive500(b *testing.B) {
	var sc StatScratch
	rng := prng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng.Seed(uint64(i) + 1)
		RunQAdaptiveStat(500, qcd8Stat, DefaultQConfig(), tm, rng, StatOptions{Scratch: &sc})
	}
}

// BenchmarkStatModeFSA500 mirrors BenchmarkFSA500QCD in stat mode.
func BenchmarkStatModeFSA500(b *testing.B) {
	var sc StatScratch
	rng := prng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng.Seed(uint64(i) + 1)
		RunFSAStat(500, qcd8Stat, NewFixed(300), tm, rng, StatOptions{Scratch: &sc})
	}
}

func BenchmarkEDFSA500(b *testing.B) {
	det := detect.NewQCD(8, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pop := tagmodel.NewPopulation(500, 64, prng.New(uint64(i)+1))
		RunEDFSA(pop, det, EDFSAConfig{MaxFrame: 256}, tm)
	}
}

// BenchmarkFrame isolates one FSA frame — slot draws, bucketing, and F
// slot executions — from the end-to-end identification loop, so frame
// mechanics regressions localise here rather than only in BenchmarkFSA*.
// It runs the engines' actual frame path: the sched.Frame counting sort
// plus a reused slot scratch, which together make the steady-state frame
// allocation-free.
func BenchmarkFrame(b *testing.B) {
	for _, d := range []struct {
		name string
		det  detect.Detector
	}{
		{"qcd", detect.NewQCD(8, 64)},
		{"crccd", detect.NewCRCCD(crc.CRC32IEEE, 64)},
	} {
		b.Run(d.name, func(b *testing.B) {
			const n, f = 256, 256
			pop := tagmodel.NewPopulation(n, 64, prng.New(1))
			var frame sched.Frame
			var sc air.SlotScratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				frame.BuildSlots(pop, f)
				now := 0.0
				for j := 0; j < f; j++ {
					o := sc.RunSlot(d.det, frame.Bucket(j), now, tm.TauMicros)
					now += float64(o.Bits) * tm.TauMicros
					if o.Identified != nil {
						o.Identified.Identified = false
					}
				}
			}
		})
	}
}
