package aloha

import (
	"fmt"
	"math"

	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/signal"
	"repro/internal/tagmodel"
	"repro/internal/timing"
)

// QConfig parameterises the EPC Class-1 Gen-2 "Q algorithm", the
// slot-by-slot adaptive FSA the paper cites as Q-Adaptive: the reader
// maintains a floating-point Q estimate, nudged up by C on collisions and
// down by C on idles, and restarts the inventory round whenever the
// rounded Q changes.
type QConfig struct {
	InitialQ float64 // Q_fp starting value (Gen-2 default 4.0)
	C        float64 // adjustment step, Gen-2 allows 0.1–0.5
	MaxQ     float64 // upper clamp (Gen-2: 15)
}

// DefaultQConfig returns the customary Gen-2 parameters.
func DefaultQConfig() QConfig { return QConfig{InitialQ: 4.0, C: 0.3, MaxQ: 15} }

// qPlacePrefix is how many leading slots of each Q frame get their
// buckets materialised eagerly. Rounds almost always restart within a
// few slots (C = 0.3 flips the rounded Q after two same-sign nudges),
// so eager buckets past a small prefix are wasted work; the scheduler
// answers the rare deeper slot by scanning the active list instead.
const qPlacePrefix = 16

func (c QConfig) validate() {
	if c.C <= 0 || c.C > 1 {
		panic(fmt.Sprintf("aloha: Q step C=%v out of (0,1]", c.C))
	}
	if c.InitialQ < 0 || c.MaxQ < c.InitialQ {
		panic(fmt.Sprintf("aloha: invalid Q range [%v,%v]", c.InitialQ, c.MaxQ))
	}
}

// RunQAdaptive identifies the population with the Gen-2 Q algorithm under
// the given detector. Per the paper's methodology, reader-to-tag command
// airtime is not charged (identical under both detection schemes); only
// tag transmissions count. Frames in the returned census count Query
// commands (round starts).
func RunQAdaptive(pop tagmodel.Population, det detect.Detector, cfg QConfig, tm timing.Model) *metrics.Session {
	return RunQAdaptiveWithOptions(pop, det, cfg, tm, Options{})
}

// RunQAdaptiveWithOptions is RunQAdaptive with explicit reader options
// (only the reuse fields — Scratch, Frame, Session — apply to Q).
//
// The slot loop runs over the frame scheduler's buckets: a tag whose
// counter reaches zero at slot k is exactly a tag that drew k at the
// Query, so bucketing once per Query replaces the historical
// per-slot population rescan (and the per-QueryRep counter decrement)
// without changing a single responder set — tags that lost an
// arbitration sit out the rest of the round in both formulations,
// because a tag only ever responds in the one slot it drew. Q issues
// one Query per few slots, so its profile is all draw passes; the
// active-list build keeps each pass proportional to the tags still in
// contention instead of the whole population.
func RunQAdaptiveWithOptions(pop tagmodel.Population, det detect.Detector, cfg QConfig, tm timing.Model, opt Options) *metrics.Session {
	cfg.validate()
	s := opt.session()
	now := 0.0
	var slots int64
	remaining := len(pop)
	qfp := cfg.InitialQ

	sc := opt.scratch()
	frame := opt.frame()
	frame.Reset(pop)
	for remaining > 0 {
		if slots > slotCap(len(pop)) {
			panic(fmt.Sprintf("aloha: Q-adaptive exceeded slot cap identifying %d tags", len(pop)))
		}
		q := int(math.Round(qfp))
		s.Census.Frames++
		// Query: every unidentified tag draws a slot counter in [0, 2^q).
		frameSlots := 1 << uint(q)
		frame.BuildActivePrefix(frameSlots, qPlacePrefix)
		// Slots proceed via QueryRep until Q changes or the round drains.
		for slot := 0; slot < frameSlots && remaining > 0; slot++ {
			responders := frame.Bucket(slot)
			o := sc.RunSlot(det, responders, now, tm.TauMicros)
			now += float64(o.Bits) * tm.TauMicros
			s.Record(o, now)
			slots++
			if o.Identified != nil {
				remaining--
			}
			// Unacknowledged responders enter the arbitrate state: they sit
			// out the rest of this round and re-draw at the next Query.
			for _, t := range responders {
				if !t.Identified {
					t.Slot = -1
				}
			}

			switch o.Truth {
			case signal.Collided:
				qfp = math.Min(cfg.MaxQ, qfp+cfg.C)
			case signal.Idle:
				qfp = math.Max(0, qfp-cfg.C)
			}
			if int(math.Round(qfp)) != q {
				break // QueryAdjust: restart the round with the new Q
			}
		}
	}
	return s
}
