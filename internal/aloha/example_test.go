package aloha_test

import (
	"fmt"

	"repro/internal/aloha"
	"repro/internal/detect"
	"repro/internal/prng"
	"repro/internal/tagmodel"
	"repro/internal/timing"
)

// One complete FSA identification session: 100 tags, the Lemma-1 optimal
// frame size, QCD detection. Single slots equal the population size and
// every tag comes back identified.
func ExampleRun() {
	pop := tagmodel.NewPopulation(100, 64, prng.New(42))
	det := detect.NewQCD(8, 64)
	s := aloha.Run(pop, det, aloha.NewFixed(100), timing.Default)
	fmt.Println(s.Census.Single, pop.AllIdentified())
	// Output: 100 true
}

// Frame policies are pluggable; Schoute re-sizes every frame from the
// collision count of the previous one.
func ExampleNewSchoute() {
	p := aloha.NewSchoute(128)
	next := p.NextFrame(aloha.FrameCensus{Size: 128, Single: 40, Collided: 30})
	fmt.Println(p.Name(), next) // ceil(2.39 × 30)
	// Output: schoute 72
}
