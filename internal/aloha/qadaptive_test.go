package aloha

import (
	"testing"

	"repro/internal/crc"
	"repro/internal/detect"
)

func TestQAdaptiveIdentifiesEveryone(t *testing.T) {
	for _, det := range []detect.Detector{
		detect.NewQCD(8, 64),
		detect.NewCRCCD(crc.CRC32IEEE, 64),
	} {
		p := pop(300, 21)
		s := RunQAdaptive(p, det, DefaultQConfig(), tm)
		if !p.AllIdentified() {
			t.Fatalf("%s: Q-adaptive left tags unidentified", det.Name())
		}
		if s.TagsIdentified != 300 {
			t.Errorf("%s: identified %d", det.Name(), s.TagsIdentified)
		}
	}
}

func TestQAdaptiveBeatsBadFixedFrame(t *testing.T) {
	// Against 100 tags, the Q algorithm grows from Q=4 toward the right
	// frame size and must finish in far fewer slots than a grossly
	// oversized fixed frame (2000 slots/frame, almost all idle). A grossly
	// undersized fixed frame is not a fair comparison target: with
	// n ≫ F every slot collides and fixed FSA essentially never finishes,
	// which is exactly the failure mode adaptation exists to avoid.
	p := pop(100, 22)
	adaptive := RunQAdaptive(p, detect.NewQCD(8, 64), DefaultQConfig(), tm)
	p2 := pop(100, 22)
	fixed := Run(p2, detect.NewQCD(8, 64), NewFixed(2000), tm)
	if adaptive.Census.Slots() >= fixed.Census.Slots() {
		t.Errorf("Q-adaptive %d slots, fixed-2000 %d slots", adaptive.Census.Slots(), fixed.Census.Slots())
	}
	if adaptive.Census.Slots() > 1000 {
		t.Errorf("Q-adaptive took %d slots for 100 tags", adaptive.Census.Slots())
	}
}

func TestQAdaptiveSmallPopulation(t *testing.T) {
	p := pop(3, 23)
	s := RunQAdaptive(p, detect.NewQCD(8, 64), DefaultQConfig(), tm)
	if !p.AllIdentified() || s.TagsIdentified != 3 {
		t.Fatal("small population failed")
	}
}

func TestQAdaptiveSingleTag(t *testing.T) {
	p := pop(1, 24)
	s := RunQAdaptive(p, detect.NewQCD(8, 64), DefaultQConfig(), tm)
	if !p.AllIdentified() {
		t.Fatal("single tag not identified")
	}
	if s.Census.Single != 1 {
		t.Errorf("census = %+v", s.Census)
	}
}

func TestQConfigValidation(t *testing.T) {
	bad := []QConfig{
		{InitialQ: 4, C: 0, MaxQ: 15},
		{InitialQ: 4, C: 1.5, MaxQ: 15},
		{InitialQ: -1, C: 0.3, MaxQ: 15},
		{InitialQ: 8, C: 0.3, MaxQ: 4},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d accepted: %+v", i, cfg)
				}
			}()
			RunQAdaptive(pop(2, 25), detect.NewQCD(8, 64), cfg, tm)
		}()
	}
}

func TestQAdaptiveFrameCountsQueries(t *testing.T) {
	p := pop(100, 26)
	s := RunQAdaptive(p, detect.NewQCD(8, 64), DefaultQConfig(), tm)
	if s.Census.Frames < 1 {
		t.Error("no Query commands counted")
	}
}
