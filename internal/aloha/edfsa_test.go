package aloha

import (
	"testing"

	"repro/internal/detect"
)

func TestEDFSAIdentifiesEveryone(t *testing.T) {
	p := pop(2000, 31)
	s := RunEDFSA(p, detect.NewQCD(8, 64), EDFSAConfig{MaxFrame: 256}, tm)
	if !p.AllIdentified() {
		t.Fatal("EDFSA left tags unidentified")
	}
	if s.TagsIdentified != 2000 {
		t.Errorf("identified %d", s.TagsIdentified)
	}
}

func TestEDFSAThroughputNearOptimalDespiteFrameCap(t *testing.T) {
	// The whole point of grouping: with a 256-slot frame cap and 2000
	// tags, plain fixed-256 FSA drowns in collisions while EDFSA keeps
	// per-group occupancy near 1 and its throughput near the 1/e regime.
	p := pop(2000, 32)
	ed := RunEDFSA(p, detect.NewOracle(1, 64), EDFSAConfig{MaxFrame: 256}, tm)
	if thr := ed.Census.Throughput(); thr < 0.30 {
		t.Errorf("EDFSA throughput %.3f, want ≥0.30 with grouping", thr)
	}
}

func TestEDFSABeatsCappedFixedFrame(t *testing.T) {
	p := pop(1500, 33)
	ed := RunEDFSA(p, detect.NewQCD(8, 64), EDFSAConfig{MaxFrame: 256}, tm)
	p2 := pop(1500, 33)
	fixed := Run(p2, detect.NewQCD(8, 64), NewFixed(256), tm)
	if ed.Census.Slots() >= fixed.Census.Slots() {
		t.Errorf("EDFSA %d slots not better than capped fixed %d",
			ed.Census.Slots(), fixed.Census.Slots())
	}
}

func TestEDFSASmallPopulationSingleGroup(t *testing.T) {
	p := pop(50, 34)
	s := RunEDFSA(p, detect.NewQCD(8, 64), EDFSAConfig{MaxFrame: 256, InitialFrame: 64}, tm)
	if !p.AllIdentified() {
		t.Fatal("small population failed")
	}
	if s.Census.Slots() > 500 {
		t.Errorf("%d slots for 50 tags", s.Census.Slots())
	}
}

func TestEDFSAValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MaxFrame 0 accepted")
		}
	}()
	RunEDFSA(pop(2, 35), detect.NewQCD(8, 64), EDFSAConfig{}, tm)
}
