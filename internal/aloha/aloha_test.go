package aloha

import (
	"math"
	"sort"
	"testing"

	"repro/internal/crc"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/prng"
	"repro/internal/signal"
	"repro/internal/tagmodel"
	"repro/internal/timing"
)

var tm = timing.Model{TauMicros: 1}

func pop(n int, seed uint64) tagmodel.Population {
	return tagmodel.NewPopulation(n, 64, prng.New(seed))
}

func TestRunIdentifiesEveryone(t *testing.T) {
	for _, det := range []detect.Detector{
		detect.NewQCD(8, 64),
		detect.NewCRCCD(crc.CRC32IEEE, 64),
		detect.NewOracle(1, 64),
	} {
		p := pop(200, 1)
		s := Run(p, det, NewFixed(100), tm)
		if !p.AllIdentified() {
			t.Fatalf("%s: tags left unidentified", det.Name())
		}
		if s.TagsIdentified != 200 {
			t.Errorf("%s: identified %d", det.Name(), s.TagsIdentified)
		}
		if s.Census.Single < 200 {
			t.Errorf("%s: single slots %d < tags", det.Name(), s.Census.Single)
		}
		if len(s.DelaysMicros) != 200 {
			t.Errorf("%s: %d delays", det.Name(), len(s.DelaysMicros))
		}
	}
}

func TestSingleTag(t *testing.T) {
	p := pop(1, 2)
	s := Run(p, detect.NewQCD(8, 64), NewFixed(1), tm)
	if s.Census.Slots() != 1 || s.Census.Single != 1 {
		t.Errorf("census = %+v", s.Census)
	}
	if s.TimeMicros != 80 { // 16-bit preamble + 64-bit ID at τ=1
		t.Errorf("time = %v", s.TimeMicros)
	}
}

func TestThroughputNearOptimum(t *testing.T) {
	// Lemma 1: with F = n the per-frame throughput approaches 1/e; the
	// whole-session throughput of the clairvoyant Optimal policy stays
	// close to it.
	p := pop(2000, 3)
	s := Run(p, detect.NewOracle(1, 64), Optimal{N: 2000}, tm)
	got := s.Census.Throughput()
	if math.Abs(got-1/math.E) > 0.03 {
		t.Errorf("optimal-policy throughput = %.4f, want ≈ %.4f", got, 1/math.E)
	}
}

func TestThroughputNeverExceedsLemma1Bound(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		p := pop(500, 10+seed)
		s := Run(p, detect.NewOracle(1, 64), Optimal{N: 500}, tm)
		if s.Census.Throughput() > 0.45 {
			t.Errorf("seed %d: throughput %.3f grossly exceeds 1/e", seed, s.Census.Throughput())
		}
	}
}

func TestConstantFrameMatchesTable7Shape(t *testing.T) {
	// Table VII case I: 50 tags, F=30 gives ~6 frames, 50 single slots and
	// λ ≈ 0.25. The paper prints idle=39/collided=110, but its own
	// cases II–IV all have collided/n ≈ 0.79 and growing idle/n, so the
	// case-I columns are swapped: the real shape is ~110 idle (including
	// the reader's trailing all-idle confirmation frame) and ~39 collided.
	var idle, collided, frames, slots float64
	const rounds = 20
	for r := 0; r < rounds; r++ {
		p := pop(50, 100+uint64(r))
		s := RunWithOptions(p, detect.NewCRCCD(crc.CRC32IEEE, 64), NewFixed(30), tm,
			Options{ConfirmEmpty: true})
		idle += float64(s.Census.Idle)
		collided += float64(s.Census.Collided)
		frames += float64(s.Census.Frames)
		slots += float64(s.Census.Slots())
	}
	idle /= rounds
	collided /= rounds
	frames /= rounds
	slots /= rounds
	throughput := 50 / slots
	if math.Abs(throughput-0.25) > 0.05 {
		t.Errorf("case-I throughput = %.3f, paper reports 0.25", throughput)
	}
	if frames < 4 || frames > 10 {
		t.Errorf("case-I frames = %.1f, paper reports ~6", frames)
	}
	if idle < 80 || idle > 145 {
		t.Errorf("case-I idle = %.1f, want ~110 (paper's swapped column)", idle)
	}
	if collided < 25 || collided > 60 {
		t.Errorf("case-I collided = %.1f, want ~39 (paper's swapped column)", collided)
	}
}

func TestConfirmEmptyAddsOneIdleFrame(t *testing.T) {
	p := pop(100, 300)
	s1 := Run(p, detect.NewQCD(8, 64), NewFixed(100), tm)
	p2 := pop(100, 300)
	s2 := RunWithOptions(p2, detect.NewQCD(8, 64), NewFixed(100), tm, Options{ConfirmEmpty: true})
	if s2.Census.Frames != s1.Census.Frames+1 {
		t.Errorf("frames %d vs %d, want exactly one extra", s2.Census.Frames, s1.Census.Frames)
	}
	if s2.Census.Idle != s1.Census.Idle+100 {
		t.Errorf("idle %d vs %d, want exactly F more", s2.Census.Idle, s1.Census.Idle)
	}
	if s2.Census.Single != s1.Census.Single || s2.Census.Collided != s1.Census.Collided {
		t.Error("confirmation frame changed non-idle counts")
	}
}

func TestSchoutePolicyConverges(t *testing.T) {
	p := pop(1000, 4)
	s := Run(p, detect.NewOracle(1, 64), NewSchoute(100), tm)
	if !p.AllIdentified() {
		t.Fatal("Schoute policy failed to identify everyone")
	}
	// Dynamic sizing should beat a badly fixed frame on slot count.
	p2 := pop(1000, 4)
	fixed := Run(p2, detect.NewOracle(1, 64), NewFixed(100), tm)
	if s.Census.Slots() >= fixed.Census.Slots() {
		t.Errorf("Schoute (%d slots) not better than fixed-100 (%d slots)",
			s.Census.Slots(), fixed.Census.Slots())
	}
}

func TestLowerBoundPolicy(t *testing.T) {
	p := pop(300, 5)
	s := Run(p, detect.NewQCD(8, 64), NewLowerBound(50), tm)
	if !p.AllIdentified() || s.TagsIdentified != 300 {
		t.Fatal("lower-bound policy failed")
	}
}

func TestQCDFasterThanCRCCD(t *testing.T) {
	// The headline claim on FSA: QCD saves > 40% identification time.
	var tQCD, tCRC float64
	const rounds = 10
	for r := uint64(0); r < rounds; r++ {
		p1 := pop(500, 200+r)
		tQCD += Run(p1, detect.NewQCD(8, 64), NewFixed(300), tm).TimeMicros
		p2 := pop(500, 200+r)
		tCRC += Run(p2, detect.NewCRCCD(crc.CRC32IEEE, 64), NewFixed(300), tm).TimeMicros
	}
	ei := (tCRC - tQCD) / tCRC
	if ei < 0.40 {
		t.Errorf("EI on FSA = %.3f, paper promises > 0.40", ei)
	}
	if ei > 0.90 {
		t.Errorf("EI on FSA = %.3f suspiciously high", ei)
	}
}

func TestDelaysAreMonotoneReasonable(t *testing.T) {
	p := pop(100, 6)
	s := Run(p, detect.NewQCD(8, 64), NewFixed(100), tm)
	for _, d := range s.DelaysMicros {
		if d <= 0 || d > s.TimeMicros {
			t.Fatalf("delay %v outside (0, %v]", d, s.TimeMicros)
		}
	}
}

func TestFixedPolicyValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("frame size 0 accepted")
		}
	}()
	NewFixed(0)
}

func TestPolicyNames(t *testing.T) {
	if NewFixed(30).Name() != "fixed-30" {
		t.Error("fixed name")
	}
	if NewSchoute(1).Name() != "schoute" || NewLowerBound(1).Name() != "lowerbound" {
		t.Error("dynamic names")
	}
	if (Optimal{N: 5}).Name() != "optimal" {
		t.Error("optimal name")
	}
}

func TestNextFramePositive(t *testing.T) {
	// Policies must stay positive even on a census with no collisions.
	empty := FrameCensus{Size: 10, Idle: 10}
	if NewSchoute(5).NextFrame(empty) < 1 {
		t.Error("Schoute returned non-positive frame")
	}
	if NewLowerBound(5).NextFrame(empty) < 1 {
		t.Error("LowerBound returned non-positive frame")
	}
	if (Optimal{}).NextFrame(empty) < 1 {
		t.Error("Optimal returned non-positive frame")
	}
}

func TestSlotLogRetimesToOriginal(t *testing.T) {
	p := pop(150, 400)
	det := detect.NewQCD(8, 64)
	s := RunWithOptions(p, det, NewFixed(100), tm, Options{KeepSlotLog: true})
	log := s.SlotLog()
	if len(log) == 0 {
		t.Fatal("no slot log recorded")
	}
	if err := metrics.ValidateLog(log, s.Census); err != nil {
		t.Fatal(err)
	}
	// Retiming under the original per-type bit costs must reproduce the
	// session's time and delays exactly.
	bitsOf := func(typ signal.SlotType) int { return detect.SlotBits(det, typ) }
	total, delays := metrics.Retime(log, metrics.ProportionalCost(bitsOf, tm.TauMicros))
	if math.Abs(total-s.TimeMicros) > 1e-9 {
		t.Errorf("retimed total %v != session %v", total, s.TimeMicros)
	}
	if len(delays) != len(s.DelaysMicros) {
		t.Fatalf("retimed %d delays, session has %d", len(delays), len(s.DelaysMicros))
	}
	// Identification order is slot order in both records.
	sorted := append([]float64(nil), s.DelaysMicros...)
	sort.Float64s(sorted)
	for i := range delays {
		if math.Abs(delays[i]-sorted[i]) > 1e-9 {
			t.Fatalf("retimed delay %d = %v, session %v", i, delays[i], sorted[i])
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() (int64, float64) {
		p := pop(200, 77)
		s := Run(p, detect.NewQCD(8, 64), NewFixed(100), tm)
		return s.Census.Slots(), s.TimeMicros
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 || t1 != t2 {
		t.Error("identical seeds produced different sessions")
	}
}
