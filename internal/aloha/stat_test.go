package aloha

import (
	"math"
	"testing"

	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/prng"
	"repro/internal/signal"
)

// statSessionInvariants checks the bookkeeping identities every
// stat-mode session must satisfy for n tags under a model with an ID
// phase of extra bits.
func statSessionInvariants(t *testing.T, s *metrics.Session, n int, model StatModel) {
	t.Helper()
	if s.TagsIdentified != int64(n) {
		t.Errorf("TagsIdentified = %d, want %d", s.TagsIdentified, n)
	}
	if len(s.DelaysMicros) != n {
		t.Errorf("len(DelaysMicros) = %d, want %d", len(s.DelaysMicros), n)
	}
	// Every tag is identified in exactly one true-single slot.
	if s.Census.Single != int64(n) {
		t.Errorf("Census.Single = %d, want %d", s.Census.Single, n)
	}
	d := s.Detection
	if d.DetectedCollided+d.FalseSingle != d.TrueCollided {
		t.Errorf("detection tallies inconsistent: %d + %d != %d", d.DetectedCollided, d.FalseSingle, d.TrueCollided)
	}
	if d.TrueCollided != s.Census.Collided {
		t.Errorf("TrueCollided = %d, want Census.Collided = %d", d.TrueCollided, s.Census.Collided)
	}
	if d.Phantom != d.FalseSingle {
		t.Errorf("Phantom = %d, want FalseSingle = %d (every stat false single is a phantom)", d.Phantom, d.FalseSingle)
	}
	// Airtime identity: every slot pays contention, every declared single
	// (true or false) pays the ID phase.
	declared := int64(n) + d.FalseSingle
	wantBits := s.Census.Slots()*int64(model.ContentionBits) + declared*int64(model.IDPhaseBits)
	if s.Bits != wantBits {
		t.Errorf("Bits = %d, want %d", s.Bits, wantBits)
	}
	if got, want := s.TimeMicros, float64(s.Bits)*tm.TauMicros; got != want {
		t.Errorf("TimeMicros = %v, want %v", got, want)
	}
	// Delays are recorded in slot order within a monotone clock.
	prev := 0.0
	for i, d := range s.DelaysMicros {
		if d < prev {
			t.Fatalf("delay %d = %v decreased below %v", i, d, prev)
		}
		prev = d
	}
	if prev > s.TimeMicros {
		t.Errorf("last delay %v exceeds session time %v", prev, s.TimeMicros)
	}
}

func TestRunFSAStatInvariants(t *testing.T) {
	model := StatModel{Name: "QCD-4", ContentionBits: 8, IDPhaseBits: 64, Strength: 4}
	s := RunFSAStat(400, model, NewFixed(256), tm, prng.New(5), StatOptions{})
	statSessionInvariants(t, s, 400, model)
	if s.Census.Frames < 2 {
		t.Errorf("Frames = %d, want several", s.Census.Frames)
	}
}

func TestRunFSAStatConfirmEmpty(t *testing.T) {
	model := StatModel{Name: "oracle", ContentionBits: 1, IDPhaseBits: 64, MissExp: -1}
	withOut := RunFSAStat(100, model, NewFixed(64), tm, prng.New(9), StatOptions{})
	with := RunFSAStat(100, model, NewFixed(64), tm, prng.New(9), StatOptions{ConfirmEmpty: true})
	if with.Census.Frames <= withOut.Census.Frames {
		t.Errorf("ConfirmEmpty did not add a trailing frame: %d vs %d", with.Census.Frames, withOut.Census.Frames)
	}
	// The confirm frame(s) contain only idle slots.
	if with.Census.Single != withOut.Census.Single || with.TagsIdentified != 100 {
		t.Error("ConfirmEmpty changed identification results")
	}
}

func TestRunEDFSAStatInvariants(t *testing.T) {
	model := StatModel{Name: "CRC-CD/CRC-32", ContentionBits: 96, IDPhaseBits: 0, MissExp: 32}
	s := RunEDFSAStat(700, model, EDFSAConfig{MaxFrame: 128}, tm, prng.New(21), StatOptions{})
	statSessionInvariants(t, s, 700, model)
}

func TestRunQAdaptiveStatInvariants(t *testing.T) {
	model := StatModel{Name: "QCD-8", ContentionBits: 16, IDPhaseBits: 64, Strength: 8}
	s := RunQAdaptiveStat(300, model, DefaultQConfig(), tm, prng.New(33), StatOptions{})
	statSessionInvariants(t, s, 300, model)
}

// TestStatMatchesExactMeans is a coarse distribution check at the engine
// level (the KS harness in internal/sim is the rigorous one): across
// enough rounds, stat-mode mean slots and throughput must land within a
// few percent of exact mode's on the same workload.
func TestStatMatchesExactMeans(t *testing.T) {
	const n, f, rounds = 200, 128, 60
	det := detect.NewQCD(8, 64)
	var exactSlots, statSlots float64
	rng := prng.New(77)
	model := StatModel{Name: "QCD-8", ContentionBits: 16, IDPhaseBits: 64, Strength: 8}
	for r := 0; r < rounds; r++ {
		p := pop(n, uint64(r)+1)
		es := Run(p, det, NewFixed(f), tm)
		exactSlots += float64(es.Census.Slots())
		ss := RunFSAStat(n, model, NewFixed(f), tm, rng, StatOptions{})
		statSlots += float64(ss.Census.Slots())
	}
	exactSlots /= rounds
	statSlots /= rounds
	if rel := math.Abs(exactSlots-statSlots) / exactSlots; rel > 0.05 {
		t.Errorf("mean slots diverge: exact %.1f vs stat %.1f (%.1f%%)", exactSlots, statSlots, 100*rel)
	}
}

// TestStatObserveFeed checks the audit hook sees exactly the non-idle
// slots with consistent verdicts.
func TestStatObserveFeed(t *testing.T) {
	model := StatModel{Name: "QCD-2", ContentionBits: 4, IDPhaseBits: 64, Strength: 2}
	var singles, falseSingles, detected int64
	obs := func(truth, declared signal.SlotType, m int) {
		switch {
		case truth == signal.Single && declared == signal.Single && m == 1:
			singles++
		case truth == signal.Collided && declared == signal.Single && m > 1:
			falseSingles++
		case truth == signal.Collided && declared == signal.Collided && m > 1:
			detected++
		default:
			t.Fatalf("impossible observation: truth=%v declared=%v m=%d", truth, declared, m)
		}
	}
	s := RunFSAStat(300, model, NewFixed(128), tm, prng.New(4), StatOptions{Observe: obs})
	if singles != s.Census.Single {
		t.Errorf("observed %d singles, session says %d", singles, s.Census.Single)
	}
	if falseSingles != s.Detection.FalseSingle || detected != s.Detection.DetectedCollided {
		t.Errorf("observed (%d,%d) false/detected, session says (%d,%d)",
			falseSingles, detected, s.Detection.FalseSingle, s.Detection.DetectedCollided)
	}
	if falseSingles == 0 {
		t.Error("QCD-2 over 300 tags should produce false singles")
	}
}

// TestStatScratchReuse pins that a pooled scratch and session produce
// the same results as fresh ones for the same seed (scratch contents
// must never leak into results).
func TestStatScratchReuse(t *testing.T) {
	model := StatModel{Name: "QCD-8", ContentionBits: 16, IDPhaseBits: 64, Strength: 8}
	var sc StatScratch
	var sess metrics.Session
	run := func(opt StatOptions, seed uint64) metrics.Census {
		rng := prng.New(seed)
		return RunQAdaptiveStat(250, model, DefaultQConfig(), tm, rng, opt).Census
	}
	for _, seed := range []uint64{1, 2, 3} {
		fresh := run(StatOptions{}, seed)
		pooled := run(StatOptions{Scratch: &sc, Session: &sess}, seed)
		if fresh != pooled {
			t.Fatalf("seed %d: pooled census %+v != fresh %+v", seed, pooled, fresh)
		}
	}
}
