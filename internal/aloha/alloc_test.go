//go:build !race

package aloha

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/prng"
)

// TestStatEnginesZeroAllocSteadyState pins the stat engines' whole point:
// with a warmed scratch and pooled session, an identification round
// performs no heap allocation at all — the draw buffers, occupancy
// words, coin buffers and delay slices are all reused. Excluded under
// -race, whose instrumentation changes allocation behaviour.
func TestStatEnginesZeroAllocSteadyState(t *testing.T) {
	model := StatModel{Name: "QCD-8", ContentionBits: 16, IDPhaseBits: 64, Strength: 8}
	var sc StatScratch
	var sess metrics.Session
	rng := prng.New(1)
	opt := StatOptions{Scratch: &sc, Session: &sess}
	// Convert the policy to its interface once, outside the measured
	// loop, as sim's round scratch path effectively does via buildPolicy.
	var policy FramePolicy = NewFixed(300)
	cases := map[string]func(seed uint64){
		"fsa": func(seed uint64) {
			rng.Seed(seed)
			RunFSAStat(500, model, policy, tm, rng, opt)
		},
		"edfsa": func(seed uint64) {
			rng.Seed(seed)
			RunEDFSAStat(500, model, EDFSAConfig{MaxFrame: 256}, tm, rng, opt)
		},
		"qadaptive": func(seed uint64) {
			rng.Seed(seed)
			RunQAdaptiveStat(500, model, DefaultQConfig(), tm, rng, opt)
		},
	}
	for name, run := range cases {
		t.Run(name, func(t *testing.T) {
			seed := uint64(0)
			next := func() { seed++; run(seed) }
			// Warm across several seeds so every growable buffer has seen
			// its high-water mark before measuring.
			for i := 0; i < 5; i++ {
				next()
			}
			if allocs := testing.AllocsPerRun(10, next); allocs != 0 {
				t.Errorf("steady-state allocations = %v, want 0", allocs)
			}
		})
	}
}
