package aloha

import (
	"fmt"
	"math"

	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/signal"
	"repro/internal/tagmodel"
	"repro/internal/timing"
)

// EDFSAConfig parameterises Enhanced Dynamic FSA (Lee, Joo & Lee,
// MobiQuitous 2005 — reference [8] of the paper). Real readers cap the
// frame length (EPC Gen-2 tops out at 2^15, practical readers far lower);
// when the estimated backlog exceeds what the maximum frame can absorb at
// the λ = 1/e operating point, EDFSA splits the tags into M groups by a
// random draw the reader announces, and interrogates one group per frame
// with only that group responding.
type EDFSAConfig struct {
	// MaxFrame is the largest frame the reader can issue (e.g. 256).
	MaxFrame int
	// InitialFrame seeds the first round (default MaxFrame).
	InitialFrame int
}

func (c EDFSAConfig) validate() {
	if c.MaxFrame < 1 {
		panic(fmt.Sprintf("aloha: EDFSA MaxFrame %d must be positive", c.MaxFrame))
	}
}

// RunEDFSA identifies the population with enhanced dynamic FSA under the
// given detector. Frames in the census count issued frames (one per
// group per round).
func RunEDFSA(pop tagmodel.Population, det detect.Detector, cfg EDFSAConfig, tm timing.Model) *metrics.Session {
	return RunEDFSAWithOptions(pop, det, cfg, tm, Options{})
}

// RunEDFSAWithOptions is RunEDFSA with explicit reader options (only the
// reuse fields — Scratch, Frame, Groups, Session — apply to EDFSA).
//
// The round's group partition is itself a frame schedule: one Build
// buckets the unidentified tags by their group draw, and each group's
// frame then buckets that group's members (already in population index
// order) by their slot draw, so the per-group population rescans of the
// historical engine collapse into O(n + groups + Σ frames) per round.
func RunEDFSAWithOptions(pop tagmodel.Population, det detect.Detector, cfg EDFSAConfig, tm timing.Model, opt Options) *metrics.Session {
	cfg.validate()
	first := cfg.InitialFrame
	if first < 1 {
		first = cfg.MaxFrame
	}

	s := opt.session()
	now := 0.0
	var slots int64
	remaining := len(pop)
	estimate := float64(first) // backlog estimate going into each round

	sc := opt.scratch()
	frame := opt.frame()
	grouping := opt.groups()
	for remaining > 0 {
		if slots > slotCap(len(pop)) {
			panic(fmt.Sprintf("aloha: EDFSA exceeded slot cap identifying %d tags", len(pop)))
		}
		// Choose groups so each group's backlog fits the max frame at the
		// optimal occupancy n ≈ F.
		groups := int(math.Ceil(estimate / float64(cfg.MaxFrame)))
		if groups < 1 {
			groups = 1
		}
		frameSize := int(math.Ceil(estimate / float64(groups)))
		if frameSize < 1 {
			frameSize = 1
		}
		if frameSize > cfg.MaxFrame {
			frameSize = cfg.MaxFrame
		}

		// Tags self-select a group uniformly; the reader interrogates the
		// groups in turn within this round. The draw lands in t.Counter
		// (the splitting counter doubles as the group id, as before).
		grouping.Build(pop, groups, func(t *tagmodel.Tag) int {
			if t.Identified {
				return -1
			}
			t.Counter = t.Rng.Intn(groups)
			return t.Counter
		})

		var roundSingles, roundCollided int
		for g := 0; g < groups && remaining > 0; g++ {
			// Group members are in population index order, so their slot
			// draws happen in the same order the historical per-group
			// population scan performed them. A member cannot be identified
			// before its own group's frame runs (it responds nowhere else),
			// so BuildSlots's Identified skip never changes the draws here.
			frame.BuildSlots(grouping.Bucket(g), frameSize)
			s.Census.Frames++
			for i := 0; i < frameSize; i++ {
				o := sc.RunSlot(det, frame.Bucket(i), now, tm.TauMicros)
				now += float64(o.Bits) * tm.TauMicros
				s.Record(o, now)
				slots++
				switch o.Truth {
				case signal.Single:
					roundSingles++
				case signal.Collided:
					roundCollided++
				}
				if o.Identified != nil {
					remaining--
				}
			}
		}
		// Schoute backlog estimate for the next round.
		estimate = 2.39 * float64(roundCollided)
		if estimate < 1 {
			estimate = 1
		}
	}
	return s
}
