package aloha

import (
	"fmt"
	"math"

	"repro/internal/air"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/signal"
	"repro/internal/tagmodel"
	"repro/internal/timing"
)

// EDFSAConfig parameterises Enhanced Dynamic FSA (Lee, Joo & Lee,
// MobiQuitous 2005 — reference [8] of the paper). Real readers cap the
// frame length (EPC Gen-2 tops out at 2^15, practical readers far lower);
// when the estimated backlog exceeds what the maximum frame can absorb at
// the λ = 1/e operating point, EDFSA splits the tags into M groups by a
// random draw the reader announces, and interrogates one group per frame
// with only that group responding.
type EDFSAConfig struct {
	// MaxFrame is the largest frame the reader can issue (e.g. 256).
	MaxFrame int
	// InitialFrame seeds the first round (default MaxFrame).
	InitialFrame int
}

func (c EDFSAConfig) validate() {
	if c.MaxFrame < 1 {
		panic(fmt.Sprintf("aloha: EDFSA MaxFrame %d must be positive", c.MaxFrame))
	}
}

// RunEDFSA identifies the population with enhanced dynamic FSA under the
// given detector. Frames in the census count issued frames (one per
// group per round).
func RunEDFSA(pop tagmodel.Population, det detect.Detector, cfg EDFSAConfig, tm timing.Model) *metrics.Session {
	cfg.validate()
	first := cfg.InitialFrame
	if first < 1 {
		first = cfg.MaxFrame
	}

	s := &metrics.Session{}
	now := 0.0
	var slots int64
	remaining := len(pop)
	estimate := float64(first) // backlog estimate going into each round

	var sc air.SlotScratch
	buckets := make([][]*tagmodel.Tag, 0)
	for remaining > 0 {
		if slots > slotCap(len(pop)) {
			panic(fmt.Sprintf("aloha: EDFSA exceeded slot cap identifying %d tags", len(pop)))
		}
		// Choose groups so each group's backlog fits the max frame at the
		// optimal occupancy n ≈ F.
		groups := int(math.Ceil(estimate / float64(cfg.MaxFrame)))
		if groups < 1 {
			groups = 1
		}
		frameSize := int(math.Ceil(estimate / float64(groups)))
		if frameSize < 1 {
			frameSize = 1
		}
		if frameSize > cfg.MaxFrame {
			frameSize = cfg.MaxFrame
		}

		// Tags self-select a group uniformly; the reader interrogates the
		// groups in turn within this round.
		for _, t := range pop {
			if !t.Identified {
				t.Counter = t.Rng.Intn(groups)
			}
		}

		var roundSingles, roundCollided int
		for g := 0; g < groups && remaining > 0; g++ {
			if cap(buckets) < frameSize {
				buckets = make([][]*tagmodel.Tag, frameSize)
			} else {
				buckets = buckets[:frameSize]
				for i := range buckets {
					buckets[i] = buckets[i][:0]
				}
			}
			for _, t := range pop {
				if t.Identified || t.Counter != g {
					continue
				}
				t.Slot = t.Rng.Intn(frameSize)
				buckets[t.Slot] = append(buckets[t.Slot], t)
			}
			s.Census.Frames++
			for i := 0; i < frameSize; i++ {
				o := sc.RunSlot(det, buckets[i], now, tm.TauMicros)
				now += float64(o.Bits) * tm.TauMicros
				s.Record(o, now)
				slots++
				switch o.Truth {
				case signal.Single:
					roundSingles++
				case signal.Collided:
					roundCollided++
				}
				if o.Identified != nil {
					remaining--
				}
			}
		}
		// Schoute backlog estimate for the next round.
		estimate = 2.39 * float64(roundCollided)
		if estimate < 1 {
			estimate = 1
		}
	}
	return s
}
