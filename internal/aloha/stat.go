package aloha

import (
	"fmt"
	"math"
	mathbits "math/bits"

	"repro/internal/metrics"
	"repro/internal/prng"
	"repro/internal/sched"
	"repro/internal/signal"
	"repro/internal/timing"
)

// This file is the vectorised "stat mode" of the framed-ALOHA engines:
// Monte-Carlo round variants that produce the same *distributions* as the
// exact engines — slot censuses, airtime, identification delays,
// false-single counts — without materialising tags, payloads or signals.
//
// Exact mode's per-round cost is contract-mandated: one PRNG split per
// tag, one draw per tag per frame in population index order, one payload
// OR + verdict per slot. Stat mode keeps the probability model and drops
// the sequencing contract: all of a frame's slot choices come from one
// bulk FillIntn into a flat array, the frame is summarised as word-packed
// occupancy masks (internal/sched.Occupancy), ground-truth verdicts fall
// out of popcounts, and the only per-slot randomness left — the
// detector's 2^-e false-single misses on collided slots — is a batched
// Bernoulli coin per collided slot. Everything else (frame policies,
// EDFSA grouping and Schoute estimation, the Gen-2 Q update rule, bit
// and delay accounting) follows the exact engines line for line.
//
// Stat mode is validated distributionally, not bit-for-bit: the KS
// equivalence harness in internal/sim compares stat vs exact round
// distributions, and the shadow-oracle audit checks false singles
// against the analytic 2^-(l·(m-1)) model.

// StatModel is the closed-form behaviour of a collision detector under
// the ideal channel — all stat mode needs from internal/detect.
type StatModel struct {
	Name           string // detector name, for reports
	ContentionBits int    // airtime of every slot's contention phase
	IDPhaseBits    int    // extra airtime of a declared-single slot (0 when the ID rides in contention)

	// Strength, when positive, is the QCD random-integer length l: a
	// collision among m responders is declared single with probability
	// 2^-(l·(m-1)) (Theorem 1). When zero, MissExp is the fixed exponent
	// e of a data-independent 2^-e miss model (CRC-CD aliasing uses the
	// CRC width); a negative MissExp never misses (the oracle).
	Strength int
	MissExp  int
}

// missExponent returns the false-single exponent for m >= 2 responders,
// or a negative value when the detector cannot miss.
func (m StatModel) missExponent(responders int) int {
	if m.Strength > 0 {
		return m.Strength * (responders - 1)
	}
	return m.MissExp
}

// canMiss reports whether any collision multiplicity has a miss
// probability of at least 2^-63 — the threshold below which stat mode
// rounds the Bernoulli coin to "never" (exact mode's residual odds are
// unobservable in any feasible round count).
func (m StatModel) canMiss() bool {
	e := m.MissExp
	if m.Strength > 0 {
		e = m.Strength // the m=2 exponent is the smallest
	}
	return e >= 0 && e < 64
}

// StatOptions tunes a stat-mode run; the zero value is a fresh
// allocation per run with no hooks.
type StatOptions struct {
	// ConfirmEmpty mirrors Options.ConfirmEmpty for the FSA reader.
	ConfirmEmpty bool

	// Observe, if set, receives every non-idle slot's ground truth,
	// declared verdict and responder count — the shadow-oracle audit
	// feed. Idle slots are never misclassified under the ideal channel,
	// so they are not reported.
	Observe func(truth, declared signal.SlotType, responders int)

	// FrameHook mirrors Options.FrameHook (FSA only).
	FrameHook func(metrics.FrameInfo)

	// Scratch, if non-nil, supplies the reusable draw/coin/occupancy
	// buffers; one instance can serve many sessions.
	Scratch *StatScratch

	// Session, if non-nil, is Reset and reused as in Options.Session.
	Session *metrics.Session
}

func (o StatOptions) session() *metrics.Session {
	if o.Session == nil {
		return &metrics.Session{}
	}
	o.Session.Reset()
	return o.Session
}

func (o StatOptions) scratch() *StatScratch {
	if o.Scratch == nil {
		return new(StatScratch)
	}
	return o.Scratch
}

// StatScratch pools the working set of stat-mode rounds: the bulk draw
// buffers, the Bernoulli coin batch and the occupancy masks. The zero
// value is ready; not safe for concurrent use.
type StatScratch struct {
	draws  []int32 // per-tag slot draws of the current frame
	groups []int32 // EDFSA per-tag group draws
	gsize  []int32 // EDFSA per-group member counts
	coins  []uint64
	occ    sched.Occupancy
}

func growInt32Buf(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func (sc *StatScratch) coinBuf(n int) []uint64 {
	if cap(sc.coins) < n {
		sc.coins = make([]uint64, n)
	}
	sc.coins = sc.coins[:n]
	return sc.coins
}

// statRun carries the per-session accumulation state shared by the three
// engines.
type statRun struct {
	model   StatModel
	sess    *metrics.Session
	rng     *prng.Source
	sc      *StatScratch
	tau     float64
	bits    int64 // total airtime so far
	canMiss bool
}

// missed decides one collided slot's verdict from a raw 64-bit coin:
// declared single iff the top e bits are zero, probability 2^-e.
func (r *statRun) missed(coin uint64, responders int) bool {
	e := r.model.missExponent(responders)
	return e >= 0 && e < 64 && coin < 1<<uint(64-e)
}

// runFrame evaluates one whole frame over the built occupancy: verdicts,
// censuses, bit/delay accounting and the optional audit feed. It returns
// the number of tags identified and the frame's ground-truth census.
func (r *statRun) runFrame(frameSize int, observe func(truth, declared signal.SlotType, responders int)) (identified, fcIdle, fcSingle, fcCollided int) {
	occ := &r.sc.occ
	cb := int64(r.model.ContentionBits)
	extra := int64(r.model.IDPhaseBits)

	// One Bernoulli coin per collided slot, batch-filled and consumed in
	// slot order so the stream is independent of how verdicts interleave.
	var coins []uint64
	if r.canMiss {
		nc := 0
		for w := 0; w < occ.Words(); w++ {
			nc += mathbits.OnesCount64(occ.MultiWord(w))
		}
		coins = r.sc.coinBuf(nc)
		r.rng.FillUint64(coins)
	}

	s := r.sess
	base := r.bits
	var declared int64 // declared-single slots so far, true or false
	ci := 0
	for w := 0; w < occ.Words(); w++ {
		busy := occ.SeenWord(w)
		multi := occ.MultiWord(w)
		for busy != 0 {
			b := mathbits.TrailingZeros64(busy)
			bit := uint64(1) << uint(b)
			busy &^= bit
			slot := w<<6 + b
			if multi&bit == 0 {
				// True single: every detector passes its own self-check
				// under the ideal channel, so the tag is identified at the
				// end of this slot's ID phase.
				declared++
				fcSingle++
				identified++
				s.TagsIdentified++
				end := base + int64(slot+1)*cb + declared*extra
				s.DelaysMicros = append(s.DelaysMicros, float64(end)*r.tau)
				if observe != nil {
					observe(signal.Single, signal.Single, 1)
				}
				continue
			}
			m := occ.Count(slot)
			fcCollided++
			s.Detection.TrueCollided++
			miss := false
			if r.canMiss {
				miss = r.missed(coins[ci], m)
				ci++
			}
			if miss {
				// False single: the reader runs the ID phase (or trusts the
				// embedded ID), the overlapped ID matches no tag, and the
				// slot ends as a phantom acknowledgement.
				declared++
				s.Detection.FalseSingle++
				s.Detection.Phantom++
				if observe != nil {
					observe(signal.Collided, signal.Single, m)
				}
			} else {
				s.Detection.DetectedCollided++
				if observe != nil {
					observe(signal.Collided, signal.Collided, m)
				}
			}
		}
	}
	fcIdle = frameSize - fcSingle - fcCollided
	r.bits = base + int64(frameSize)*cb + declared*extra
	s.Census.Idle += int64(fcIdle)
	s.Census.Single += int64(fcSingle)
	s.Census.Collided += int64(fcCollided)
	s.Bits = r.bits
	s.TimeMicros = float64(r.bits) * r.tau
	return identified, fcIdle, fcSingle, fcCollided
}

// RunFSAStat is the stat-mode counterpart of RunWithOptions: it
// identifies n tags under the frame policy with the same frame-by-frame
// semantics (including ConfirmEmpty termination), drawing each frame's
// occupancy in bulk from rng.
func RunFSAStat(n int, model StatModel, policy FramePolicy, tm timing.Model, rng *prng.Source, opt StatOptions) *metrics.Session {
	s := opt.session()
	if opt.FrameHook != nil {
		s.SetFrameHook(opt.FrameHook)
	}
	sc := opt.scratch()
	r := statRun{model: model, sess: s, rng: rng, sc: sc, tau: tm.TauMicros, canMiss: model.canMiss()}

	remaining := n
	frameSize := policy.FirstFrame()
	confirmed := false
	var slots int64
	for remaining > 0 || (opt.ConfirmEmpty && !confirmed) {
		if slots > slotCap(n) {
			panic(fmt.Sprintf("aloha: stat FSA exceeded slot cap identifying %d tags (policy %s)", n, policy.Name()))
		}
		sc.draws = growInt32Buf(sc.draws, remaining)
		rng.FillIntn(sc.draws, frameSize)
		sc.occ.Ensure(frameSize)
		sc.occ.Add(sc.draws)
		identified, fi, fs, fc := r.runFrame(frameSize, opt.Observe)
		sc.occ.Reset(sc.draws)
		remaining -= identified
		slots += int64(frameSize)
		s.EndFrame(frameSize)
		confirmed = fs == 0 && fc == 0
		if remaining > 0 || (opt.ConfirmEmpty && !confirmed) {
			frameSize = policy.NextFrame(FrameCensus{Size: frameSize, Idle: fi, Single: fs, Collided: fc, Remaining: remaining})
			if frameSize < 1 {
				panic(fmt.Sprintf("aloha: policy %s returned frame size %d", policy.Name(), frameSize))
			}
		}
	}
	return s
}

// RunEDFSAStat is the stat-mode counterpart of RunEDFSAWithOptions: one
// bulk draw partitions the backlog into groups, one bulk draw per group
// fills its frame, and the Schoute estimate update is unchanged.
func RunEDFSAStat(n int, model StatModel, cfg EDFSAConfig, tm timing.Model, rng *prng.Source, opt StatOptions) *metrics.Session {
	cfg.validate()
	first := cfg.InitialFrame
	if first < 1 {
		first = cfg.MaxFrame
	}
	s := opt.session()
	sc := opt.scratch()
	r := statRun{model: model, sess: s, rng: rng, sc: sc, tau: tm.TauMicros, canMiss: model.canMiss()}

	remaining := n
	estimate := float64(first)
	var slots int64
	for remaining > 0 {
		if slots > slotCap(n) {
			panic(fmt.Sprintf("aloha: stat EDFSA exceeded slot cap identifying %d tags", n))
		}
		groups := int(math.Ceil(estimate / float64(cfg.MaxFrame)))
		if groups < 1 {
			groups = 1
		}
		frameSize := int(math.Ceil(estimate / float64(groups)))
		if frameSize < 1 {
			frameSize = 1
		}
		if frameSize > cfg.MaxFrame {
			frameSize = cfg.MaxFrame
		}

		// Group self-selection: one uniform draw per unidentified tag.
		sc.groups = growInt32Buf(sc.groups, remaining)
		rng.FillIntn(sc.groups, groups)
		sc.gsize = growInt32Buf(sc.gsize, groups)
		for g := range sc.gsize {
			sc.gsize[g] = 0
		}
		for _, g := range sc.groups {
			sc.gsize[g]++
		}

		var roundCollided int
		for g := 0; g < groups && remaining > 0; g++ {
			members := int(sc.gsize[g])
			sc.draws = growInt32Buf(sc.draws, members)
			rng.FillIntn(sc.draws, frameSize)
			sc.occ.Ensure(frameSize)
			sc.occ.Add(sc.draws)
			s.Census.Frames++
			identified, _, _, fc := r.runFrame(frameSize, opt.Observe)
			sc.occ.Reset(sc.draws)
			remaining -= identified
			roundCollided += fc
			slots += int64(frameSize)
		}
		estimate = 2.39 * float64(roundCollided)
		if estimate < 1 {
			estimate = 1
		}
	}
	return s
}

// RunQAdaptiveStat is the stat-mode counterpart of
// RunQAdaptiveWithOptions. Gen-2 rounds restart (QueryAdjust) within a
// handful of slots, so materialising a 2^q-slot occupancy for the whole
// backlog at every Query — as the whole-frame engines above do — would
// spend O(remaining) draws per few visited slots, which is exactly the
// cost profile exact mode is stuck with. Instead each visited slot's
// responder count is drawn directly from its conditional law: when the
// R tags still active in the round each chose uniformly among the 2^q
// slots and slots are revealed in order, the next slot's count given
// the past is Binomial(R, 1/(slots left)) — the sequential
// decomposition of the multinomial, so the visited-slot process is
// distribution-identical to bulk drawing. Q-update and restart rules
// match the exact engine line for line; miss coins are drawn lazily per
// visited collided slot (a restart makes the visited count
// data-dependent, so there is no batch to size).
func RunQAdaptiveStat(n int, model StatModel, cfg QConfig, tm timing.Model, rng *prng.Source, opt StatOptions) *metrics.Session {
	cfg.validate()
	s := opt.session()
	canMiss := model.canMiss()
	cb := int64(model.ContentionBits)
	extra := int64(model.IDPhaseBits)
	tau := tm.TauMicros

	remaining := n
	qfp := cfg.InitialQ
	var slots, bits int64
	for remaining > 0 {
		if slots > slotCap(n) {
			panic(fmt.Sprintf("aloha: stat Q-adaptive exceeded slot cap identifying %d tags", n))
		}
		q := int(math.Round(qfp))
		s.Census.Frames++
		frameSlots := 1 << uint(q)
		// Tags that respond in a visited slot leave the round (identified
		// tags for good, collision losers until the next Query), so the
		// conditional binomial thins as slots are revealed.
		roundActive := remaining

		for slot := 0; slot < frameSlots && remaining > 0; slot++ {
			m := rng.Binomial(roundActive, 1/float64(frameSlots-slot))
			roundActive -= m
			bits += cb
			slots++
			switch {
			case m == 0:
				s.Census.Idle++
				qfp = math.Max(0, qfp-cfg.C)
			case m == 1:
				bits += extra
				s.Census.Single++
				s.TagsIdentified++
				s.DelaysMicros = append(s.DelaysMicros, float64(bits)*tau)
				remaining--
				if opt.Observe != nil {
					opt.Observe(signal.Single, signal.Single, 1)
				}
			default:
				s.Census.Collided++
				s.Detection.TrueCollided++
				miss := false
				if canMiss {
					e := model.missExponent(m)
					miss = e >= 0 && e < 64 && rng.Uint64() < 1<<uint(64-e)
				}
				if miss {
					bits += extra
					s.Detection.FalseSingle++
					s.Detection.Phantom++
					if opt.Observe != nil {
						opt.Observe(signal.Collided, signal.Single, m)
					}
				} else {
					s.Detection.DetectedCollided++
					if opt.Observe != nil {
						opt.Observe(signal.Collided, signal.Collided, m)
					}
				}
				qfp = math.Min(cfg.MaxQ, qfp+cfg.C)
			}
			if int(math.Round(qfp)) != q {
				break // QueryAdjust: restart the round with the new Q
			}
		}
	}
	s.Bits = bits
	s.TimeMicros = float64(bits) * tau
	return s
}
