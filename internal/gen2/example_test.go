package gen2_test

import (
	"fmt"

	"repro/internal/detect"
	"repro/internal/gen2"
	"repro/internal/prng"
	"repro/internal/tagmodel"
	"repro/internal/timing"
)

// A command-level Gen-2 inventory with the QCD preamble in the
// slot-opening reply: Query/QueryRep/ACK airtime is charged, and wasted
// ACK exchanges (the stock-RN16 failure mode) essentially vanish.
func ExampleRun() {
	pop := tagmodel.NewPopulation(100, 64, prng.New(5))
	cfg := gen2.DefaultConfig(gen2.ReplyQCD, detect.NewQCD(8, 64))
	res := gen2.Run(pop, cfg, timing.Default, 7)
	fmt.Println(pop.AllIdentified(), res.ACKs >= 100, res.WastedACKs <= 2)
	// Output: true true true
}
