package gen2

import (
	"math"

	"repro/internal/air"
	"repro/internal/bitstr"
	"repro/internal/crc"
	"repro/internal/epc"
	"repro/internal/prng"
	"repro/internal/signal"
	"repro/internal/timing"
)

// epcReplyBits is the acknowledged-tag reply in stock Gen-2: EPC plus its
// CRC-16.
var epcReplyBits = epc.IDBits + crc.CRC16EPC.Width

// runGen2Slot executes one inventoried slot under the configured reply
// scheme, charging tag airtime into the outcome and reader command
// airtime into res/now.
func runGen2Slot(cfg Config, res *Result, responders []*tagCtx, rng *prng.Source, now *float64, tm timing.Model) air.Outcome {
	switch cfg.Scheme {
	case ReplyRN16:
		return runRN16Slot(cfg, res, responders, now, tm)
	default:
		return runDetectorSlot(cfg, res, responders, now, tm)
	}
}

// runRN16Slot models stock Gen-2: the slot opens with a bare RN16, which
// carries no integrity check, so the reader must spend an ACK exchange to
// discover whether the slot was clean.
func runRN16Slot(cfg Config, res *Result, responders []*tagCtx, now *float64, tm timing.Model) air.Outcome {
	out := air.Outcome{Truth: signal.Classify(len(responders))}
	if len(responders) == 0 {
		out.Declared = signal.Idle
		return out
	}

	// Slot-opening replies: every responder backscatters a fresh RN16.
	var ch signal.Channel
	for _, c := range responders {
		c.rn16 = uint16(c.tag.Rng.Bits(16))
		payload := bitstr.FromUint64(uint64(c.rn16), 16)
		c.tag.BitsSent += 16
		ch.Transmit(payload)
	}
	rx := ch.Receive()
	out.Bits = 16
	*now += 16 * tm.TauMicros

	// The reader has no way to classify the reply; it optimistically ACKs
	// whatever it received.
	out.Declared = signal.Single
	res.ACKs++
	if cfg.ChargeCommands {
		res.CommandBits += epc.AckBits
		*now += float64(epc.AckBits) * tm.TauMicros
	}
	acked := uint16(rx.Signal.Uint64())

	// Tags whose RN16 matches the echo reply with EPC ‖ CRC-16.
	var epcCh signal.Channel
	matched := 0
	for _, c := range responders {
		if c.rn16 == acked {
			frame := crc.AppendBits(crc.CRC16EPC, c.tag.ID)
			c.tag.BitsSent += int64(frame.Len())
			epcCh.Transmit(frame)
			matched++
		}
	}
	if matched > 0 {
		out.Bits += epcReplyBits
		*now += float64(epcReplyBits) * tm.TauMicros
		reply := epcCh.Receive()
		if crc.VerifyBits(crc.CRC16EPC, reply.Signal) {
			id := reply.Signal.Slice(0, epc.IDBits)
			for _, c := range responders {
				if c.tag.ID.Equal(id) {
					c.tag.Identified = true
					c.tag.IdentifiedAtMicros = *now
					out.Identified = c.tag
					break
				}
			}
		}
	}
	if out.Identified == nil {
		// Garbled RN16 (nobody matched) or overlapped EPCs (CRC failed):
		// the ACK was wasted and the reader NAKs. A lone responder always
		// matches its own echo, so this branch implies a true collision.
		out.Declared = signal.Collided
		res.WastedACKs++
	}
	return out
}

// runDetectorSlot runs the CRC-CD or QCD reply format inside the Gen-2
// exchange: the detector classifies the slot-opening reply, and only a
// declared single earns the ACK (and, for QCD, the deferred ID).
func runDetectorSlot(cfg Config, res *Result, responders []*tagCtx, now *float64, tm timing.Model) air.Outcome {
	det := cfg.Detector
	out := air.Outcome{Truth: signal.Classify(len(responders))}

	var ch signal.Channel
	for _, c := range responders {
		payload := det.ContentionPayload(c.tag)
		c.tag.BitsSent += int64(payload.Len())
		ch.Transmit(payload)
	}
	rx := ch.Receive()
	out.Declared = det.Classify(rx)
	out.Bits = det.ContentionBits()
	*now += float64(det.ContentionBits()) * tm.TauMicros
	if out.Declared != signal.Single {
		return out
	}

	res.ACKs++
	if cfg.ChargeCommands {
		res.CommandBits += epc.AckBits
		*now += float64(epc.AckBits) * tm.TauMicros
	}
	var idPhase signal.Reception
	if det.NeedsIDPhase() {
		out.Bits += det.IDPhaseBits()
		*now += float64(det.IDPhaseBits()) * tm.TauMicros
		var idCh signal.Channel
		for _, c := range responders {
			c.tag.BitsSent += int64(c.tag.ID.Len())
			idCh.Transmit(c.tag.ID)
		}
		idPhase = idCh.Receive()
	}
	if acked, ok := det.ExtractID(rx, idPhase); ok {
		for _, c := range responders {
			if c.tag.ID.Equal(acked) {
				c.tag.Identified = true
				c.tag.IdentifiedAtMicros = *now
				out.Identified = c.tag
				break
			}
		}
	}
	if out.Identified == nil {
		out.Phantom = true
		res.WastedACKs++
	}
	return out
}

func qRound(q float64) float64 { return math.Round(q) }
func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
