package gen2

import (
	"testing"

	"repro/internal/crc"
	"repro/internal/detect"
	"repro/internal/prng"
	"repro/internal/tagmodel"
	"repro/internal/timing"
)

var tm = timing.Default

func pop(n int, seed uint64) tagmodel.Population {
	return tagmodel.NewPopulation(n, 64, prng.New(seed))
}

func schemes() []Config {
	return []Config{
		DefaultConfig(ReplyRN16, nil),
		DefaultConfig(ReplyCRCCD, detect.NewCRCCD(crc.CRC32IEEE, 64)),
		DefaultConfig(ReplyQCD, detect.NewQCD(8, 64)),
	}
}

func TestInventoryCompletes(t *testing.T) {
	for _, cfg := range schemes() {
		p := pop(200, 1)
		res := Run(p, cfg, tm, 7)
		if !p.AllIdentified() {
			t.Fatalf("%s: tags left unidentified", cfg.Scheme)
		}
		if res.Session.TagsIdentified != 200 {
			t.Errorf("%s: identified %d", cfg.Scheme, res.Session.TagsIdentified)
		}
		if res.Queries < 1 || res.ACKs < 200 {
			t.Errorf("%s: queries=%d acks=%d", cfg.Scheme, res.Queries, res.ACKs)
		}
		if cfg.ChargeCommands && res.CommandBits == 0 {
			t.Errorf("%s: no command airtime charged", cfg.Scheme)
		}
	}
}

func TestSingleTag(t *testing.T) {
	for _, cfg := range schemes() {
		p := pop(1, 2)
		res := Run(p, cfg, tm, 3)
		if !p.AllIdentified() {
			t.Fatalf("%s: lone tag not identified", cfg.Scheme)
		}
		if res.WastedACKs != 0 {
			t.Errorf("%s: lone tag wasted %d ACKs", cfg.Scheme, res.WastedACKs)
		}
	}
}

func TestRN16WastesACKsOnCollisions(t *testing.T) {
	// Stock Gen-2 has no slot-level collision detection: every collided
	// slot that the reader opens costs a full ACK exchange. With 500 tags
	// there are hundreds of collisions, so wasted ACKs must be plentiful.
	p := pop(500, 3)
	res := Run(p, DefaultConfig(ReplyRN16, nil), tm, 9)
	if res.WastedACKs < 100 {
		t.Errorf("RN16 wasted only %d ACKs over a 500-tag inventory", res.WastedACKs)
	}
	// QCD screens collisions before the ACK: essentially none wasted.
	p2 := pop(500, 3)
	res2 := Run(p2, DefaultConfig(ReplyQCD, detect.NewQCD(8, 64)), tm, 9)
	if res2.WastedACKs > res.WastedACKs/10 {
		t.Errorf("QCD wasted %d ACKs vs RN16's %d", res2.WastedACKs, res.WastedACKs)
	}
}

func TestQCDBeatsBothOnTotalTime(t *testing.T) {
	// With command airtime charged, QCD must still beat CRC-CD, and both
	// detector-assisted schemes must beat blind RN16 + ACK probing.
	times := map[ReplyScheme]float64{}
	for _, cfg := range schemes() {
		p := pop(300, 4)
		res := Run(p, cfg, tm, 11)
		times[cfg.Scheme] = res.Session.TimeMicros
	}
	if !(times[ReplyQCD] < times[ReplyCRCCD]) {
		t.Errorf("QCD (%.0f) not faster than CRC-CD (%.0f)", times[ReplyQCD], times[ReplyCRCCD])
	}
	if !(times[ReplyQCD] < times[ReplyRN16]) {
		t.Errorf("QCD (%.0f) not faster than RN16 (%.0f)", times[ReplyQCD], times[ReplyRN16])
	}
}

func TestCommandChargingToggle(t *testing.T) {
	cfg := DefaultConfig(ReplyQCD, detect.NewQCD(8, 64))
	p := pop(100, 5)
	with := Run(p, cfg, tm, 13)

	cfg.ChargeCommands = false
	p2 := pop(100, 5)
	without := Run(p2, cfg, tm, 13)
	if with.Session.TimeMicros <= without.Session.TimeMicros {
		t.Error("command charging did not increase session time")
	}
	if without.CommandBits != 0 {
		t.Error("uncharged run recorded command bits")
	}
}

func TestFramesCountQueries(t *testing.T) {
	p := pop(64, 6)
	res := Run(p, DefaultConfig(ReplyQCD, detect.NewQCD(8, 64)), tm, 17)
	if res.Session.Census.Frames != res.Queries {
		t.Errorf("frames %d != queries %d", res.Session.Census.Frames, res.Queries)
	}
}

func TestValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("QCD scheme without detector accepted")
		}
	}()
	Run(pop(2, 7), Config{Scheme: ReplyQCD, C: 0.3, MaxQ: 15}, tm, 1)
}

func TestStateAndSchemeStrings(t *testing.T) {
	if StateReady.String() != "ready" || StateAcknowledged.String() != "acknowledged" {
		t.Error("state strings")
	}
	if TagState(9).String() != "TagState(9)" {
		t.Error("unknown state string")
	}
	if ReplyRN16.String() != "rn16" || ReplyQCD.String() != "qcd" || ReplyCRCCD.String() != "crccd" {
		t.Error("scheme strings")
	}
	if ReplyScheme(9).String() != "ReplyScheme(9)" {
		t.Error("unknown scheme string")
	}
}

func TestDeterministic(t *testing.T) {
	run := func() float64 {
		p := pop(100, 8)
		return Run(p, DefaultConfig(ReplyRN16, nil), tm, 21).Session.TimeMicros
	}
	if run() != run() {
		t.Error("gen2 inventory not deterministic")
	}
}
