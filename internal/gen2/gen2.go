// Package gen2 implements a command-level EPCglobal Class-1 Generation-2
// inventory round: the reader issues Query / QueryRep / QueryAdjust / ACK
// commands; tags run the Ready → Arbitrate → Reply → Acknowledged state
// machine with a 15-bit slot counter and an RN16 handshake. Reader
// command airtime and tag reply airtime are both charged.
//
// The paper's QCD is specified as a drop-in for the slot-opening tag
// reply ("the QCD scheme does not require any modification on
// upper-level air protocols"). In stock Gen-2 that reply is a bare RN16,
// which carries no self-check at all: the reader cannot reliably tell one
// RN16 from two overlapped ones. This package makes the claim concrete by
// letting the slot-opening reply be:
//
//   - RN16 (stock Gen-2): collisions detected only when the garbled RN16
//     fails the later ACK echo, wasting a full ACK exchange;
//   - CRC-CD: the tag fronts its EPC+CRC in the reply;
//   - QCD: the tag fronts the r ‖ r̄ preamble and sends the EPC only
//     after a clean singulation.
package gen2

import (
	"fmt"

	"repro/internal/detect"
	"repro/internal/epc"
	"repro/internal/metrics"
	"repro/internal/prng"
	"repro/internal/signal"
	"repro/internal/tagmodel"
	"repro/internal/timing"
)

// TagState is the Gen-2 inventory state of one tag.
type TagState int

// Gen-2 tag states (the subset inventory uses).
const (
	StateReady TagState = iota
	StateArbitrate
	StateReply
	StateAcknowledged
)

func (s TagState) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateArbitrate:
		return "arbitrate"
	case StateReply:
		return "reply"
	case StateAcknowledged:
		return "acknowledged"
	default:
		return fmt.Sprintf("TagState(%d)", int(s))
	}
}

// ReplyScheme selects what a tag backscatters when its slot counter hits
// zero.
type ReplyScheme int

// Reply schemes.
const (
	// ReplyRN16 is stock Gen-2: a bare 16-bit random number with no
	// integrity check; collisions surface only at the ACK echo.
	ReplyRN16 ReplyScheme = iota
	// ReplyCRCCD fronts the EPC + CRC in the slot-opening reply.
	ReplyCRCCD
	// ReplyQCD fronts the QCD preamble; the EPC follows a clean single.
	ReplyQCD
)

func (r ReplyScheme) String() string {
	switch r {
	case ReplyRN16:
		return "rn16"
	case ReplyCRCCD:
		return "crccd"
	case ReplyQCD:
		return "qcd"
	default:
		return fmt.Sprintf("ReplyScheme(%d)", int(r))
	}
}

// Config parameterises an inventory run.
type Config struct {
	// Scheme is the slot-opening reply format.
	Scheme ReplyScheme
	// Detector backs the CRC-CD/QCD schemes (ignored for RN16).
	Detector detect.Detector
	// InitialQ, C, MaxQ drive the Q algorithm (defaults 4.0 / 0.3 / 15).
	InitialQ float64
	C        float64
	MaxQ     float64
	// ChargeCommands includes reader-to-tag command airtime in the session
	// time (the paper's methodology excludes it; Gen-2 reality includes it).
	ChargeCommands bool
}

// DefaultConfig returns a Gen-2 inventory configuration for the scheme.
func DefaultConfig(scheme ReplyScheme, det detect.Detector) Config {
	return Config{
		Scheme: scheme, Detector: det,
		InitialQ: 4.0, C: 0.3, MaxQ: 15,
		ChargeCommands: true,
	}
}

func (c Config) validate() {
	if c.Scheme != ReplyRN16 && c.Detector == nil {
		panic("gen2: scheme needs a detector")
	}
	if c.C <= 0 || c.C > 1 {
		panic(fmt.Sprintf("gen2: C = %v out of (0,1]", c.C))
	}
}

// tagCtx is the per-tag inventory context.
type tagCtx struct {
	tag   *tagmodel.Tag
	state TagState
	slot  int
	rn16  uint16
}

// Result extends the session metrics with Gen-2 specific counters.
type Result struct {
	Session *metrics.Session
	// Commands counts reader commands by kind.
	Queries, QueryReps, QueryAdjusts, ACKs int64
	// CommandBits is the reader-to-tag airtime.
	CommandBits int64
	// WastedACKs counts ACK exchanges spent on garbled RN16s (the stock
	// Gen-2 cost of having no slot-level collision detection).
	WastedACKs int64
}

func slotCap(n int) int64 { return int64(n)*1000 + 1_000_000 }

// Run inventories the population and returns the metrics. Tags must be
// reset. The session's Frames field counts Query/QueryAdjust rounds.
func Run(pop tagmodel.Population, cfg Config, tm timing.Model, seed uint64) *Result {
	cfg.validate()
	res := &Result{Session: &metrics.Session{}}
	s := res.Session
	rng := prng.New(seed)

	ctxs := make([]*tagCtx, len(pop))
	for i, t := range pop {
		ctxs[i] = &tagCtx{tag: t, state: StateReady}
	}

	now := 0.0
	var slots int64
	remaining := len(pop)
	qfp := cfg.InitialQ

	charge := func(bits int) {
		if cfg.ChargeCommands {
			res.CommandBits += int64(bits)
			now += float64(bits) * tm.TauMicros
		}
	}

	for remaining > 0 {
		if slots > slotCap(len(pop)) {
			panic(fmt.Sprintf("gen2: exceeded slot cap identifying %d tags (%s)", len(pop), cfg.Scheme))
		}
		q := int(qRound(qfp))
		res.Queries++
		s.Census.Frames++
		charge(epc.QueryBits)
		frameSlots := 1 << uint(q)
		for _, c := range ctxs {
			if c.state == StateAcknowledged {
				continue
			}
			c.slot = c.tag.Rng.Intn(frameSlots)
			c.state = StateArbitrate
		}

		for slotIdx := 0; slotIdx < frameSlots && remaining > 0; slotIdx++ {
			if slotIdx > 0 {
				res.QueryReps++
				charge(epc.QueryRepBits)
			}
			var responders []*tagCtx
			for _, c := range ctxs {
				if c.state == StateArbitrate && c.slot == 0 {
					responders = append(responders, c)
					c.state = StateReply
				}
			}
			outcome := runGen2Slot(cfg, res, responders, rng, &now, tm)
			s.Record(outcome, now)
			slots++
			if outcome.Identified != nil {
				remaining--
			}
			// Unacknowledged responders return to arbitrate and sit out
			// the rest of the round.
			for _, c := range responders {
				if !c.tag.Identified {
					c.state = StateArbitrate
					c.slot = -1
				} else {
					c.state = StateAcknowledged
				}
			}
			// Q adjustment.
			switch outcome.Truth {
			case signal.Collided:
				qfp = minF(cfg.MaxQ, qfp+cfg.C)
			case signal.Idle:
				qfp = maxF(0, qfp-cfg.C)
			}
			if int(qRound(qfp)) != q {
				res.QueryAdjusts++
				charge(epc.QueryAdjustBits)
				break
			}
			// QueryRep decrements surviving counters.
			for _, c := range ctxs {
				if c.state == StateArbitrate && c.slot > 0 {
					c.slot--
				}
			}
		}
	}
	return res
}
