// Package report renders experiment results as aligned text tables and
// gnuplot-style data series, in the shape the paper reports them.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of string cells with named columns.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable returns an empty table with the given title and columns.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; it panics if the cell count mismatches the columns.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("report: row of %d cells in a %d-column table", len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
		sb.WriteString(strings.Repeat("=", len(t.Title)))
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(cell, widths[i]))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: ")
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// CSV renders the table as RFC-4180-ish comma-separated values (cells
// containing commas or quotes are quoted).
func (t *Table) CSV() string {
	var sb strings.Builder
	writeCSVRow(&sb, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(&sb, row)
	}
	return sb.String()
}

func writeCSVRow(sb *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			sb.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			sb.WriteByte('"')
			sb.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
			sb.WriteByte('"')
		} else {
			sb.WriteString(c)
		}
	}
	sb.WriteByte('\n')
}

// Series is an x → multiple-y dataset for figure regeneration.
type Series struct {
	Title  string
	XLabel string
	YLabel string
	Names  []string // one per y column
	X      []float64
	Y      [][]float64 // Y[i] has one value per name, for X[i]
}

// NewSeries returns an empty series with named y columns.
func NewSeries(title, xlabel, ylabel string, names ...string) *Series {
	return &Series{Title: title, XLabel: xlabel, YLabel: ylabel, Names: names}
}

// Add appends one x position with its y values.
func (s *Series) Add(x float64, ys ...float64) {
	if len(ys) != len(s.Names) {
		panic(fmt.Sprintf("report: %d y-values for %d series", len(ys), len(s.Names)))
	}
	s.X = append(s.X, x)
	s.Y = append(s.Y, ys)
}

// CSV renders the series as comma-separated values with an x column
// followed by one column per named series.
func (s *Series) CSV() string {
	var sb strings.Builder
	writeCSVRow(&sb, append([]string{"x"}, s.Names...))
	for i, x := range s.X {
		row := []string{fmt.Sprintf("%g", x)}
		for _, y := range s.Y[i] {
			row = append(row, fmt.Sprintf("%g", y))
		}
		writeCSVRow(&sb, row)
	}
	return sb.String()
}

// Render emits a plot-ready whitespace-separated block with a comment
// header, one row per x.
func (s *Series) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s\n# x=%s y=%s\n# %-12s", s.Title, s.XLabel, s.YLabel, "x")
	for _, n := range s.Names {
		fmt.Fprintf(&sb, " %-14s", n)
	}
	sb.WriteByte('\n')
	for i, x := range s.X {
		fmt.Fprintf(&sb, "%-14.6g", x)
		for _, y := range s.Y[i] {
			fmt.Fprintf(&sb, " %-14.6g", y)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ParseSeries parses a block previously produced by Series.Render back
// into a Series (round-tripping the figure data for re-rendering, e.g. as
// an ASCII chart).
func ParseSeries(text string) (*Series, error) {
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) < 4 {
		return nil, fmt.Errorf("report: series block too short (%d lines)", len(lines))
	}
	if !strings.HasPrefix(lines[0], "# ") || !strings.HasPrefix(lines[1], "# x=") {
		return nil, fmt.Errorf("report: missing series header")
	}
	title := strings.TrimPrefix(lines[0], "# ")
	meta := strings.TrimPrefix(lines[1], "# x=")
	xy := strings.SplitN(meta, " y=", 2)
	if len(xy) != 2 {
		return nil, fmt.Errorf("report: malformed x/y labels %q", lines[1])
	}
	header := strings.Fields(strings.TrimPrefix(lines[2], "#"))
	if len(header) < 2 || header[0] != "x" {
		return nil, fmt.Errorf("report: malformed column header %q", lines[2])
	}
	s := NewSeries(title, xy[0], xy[1], header[1:]...)
	for _, l := range lines[3:] {
		fields := strings.Fields(l)
		if len(fields) != len(header) {
			return nil, fmt.Errorf("report: row %q has %d fields, want %d", l, len(fields), len(header))
		}
		vals := make([]float64, len(fields))
		for i, f := range fields {
			if _, err := fmt.Sscanf(f, "%g", &vals[i]); err != nil {
				return nil, fmt.Errorf("report: bad number %q: %v", f, err)
			}
		}
		s.Add(vals[0], vals[1:]...)
	}
	return s, nil
}

// Fmt helpers for consistent cell formatting.

// F formats a float with the given decimals.
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// Pct formats a ratio as a percentage with two decimals.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

// I formats an integer-valued float.
func I(v float64) string { return fmt.Sprintf("%.0f", v) }
