package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "case", "value")
	tb.AddRow("I", "0.25")
	tb.AddRow("II", "0.22")
	tb.AddNote("a footnote %d", 42)
	out := tb.Render()
	for _, want := range []string{"Demo", "case", "value", "I", "0.25", "note: a footnote 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Columns align: every data line has the header's prefix width.
	// title + rule + header + separator + 2 rows + note = 7 lines.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 7 {
		t.Errorf("render has %d lines:\n%s", len(lines), out)
	}
}

func TestTableRowMismatchPanics(t *testing.T) {
	tb := NewTable("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("row of wrong arity accepted")
		}
	}()
	tb.AddRow("only-one")
}

func TestSeriesRender(t *testing.T) {
	s := NewSeries("T", "n", "μs", "crc", "qcd")
	s.Add(50, 19104, 6384)
	s.Add(500, 217920, 68320)
	out := s.Render()
	for _, want := range []string{"# T", "crc", "qcd", "19104", "68320"} {
		if !strings.Contains(out, want) {
			t.Errorf("series missing %q:\n%s", want, out)
		}
	}
}

func TestSeriesArityPanics(t *testing.T) {
	s := NewSeries("T", "x", "y", "one")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong y arity accepted")
		}
	}()
	s.Add(1, 2, 3)
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow("1", "plain")
	tb.AddRow("2", `has "quotes", and comma`)
	got := tb.CSV()
	want := "a,b\n1,plain\n2,\"has \"\"quotes\"\", and comma\"\n"
	if got != want {
		t.Errorf("CSV:\n%q\nwant\n%q", got, want)
	}
}

func TestSeriesCSV(t *testing.T) {
	s := NewSeries("t", "x", "y", "a", "b")
	s.Add(1, 10, 20)
	s.Add(2, 30, 40)
	want := "x,a,b\n1,10,20\n2,30,40\n"
	if got := s.CSV(); got != want {
		t.Errorf("Series.CSV = %q, want %q", got, want)
	}
}

func TestParseSeriesRoundTrip(t *testing.T) {
	s := NewSeries("Fig 7", "tags", "μs", "CRC-CD", "QCD")
	s.Add(50, 19670, 6384)
	s.Add(500, 216576, 68352)
	got, err := ParseSeries(s.Render())
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != "Fig 7" || got.XLabel != "tags" || got.YLabel != "μs" {
		t.Errorf("labels = %q/%q/%q", got.Title, got.XLabel, got.YLabel)
	}
	if len(got.X) != 2 || got.X[1] != 500 || got.Y[1][0] != 216576 {
		t.Errorf("data = %v %v", got.X, got.Y)
	}
	if len(got.Names) != 2 || got.Names[1] != "QCD" {
		t.Errorf("names = %v", got.Names)
	}
}

func TestParseSeriesRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"",
		"not a series\nat all\nreally\nnope",
		"# title only\n# x=a y=b\n# x col\nbad row here",
	} {
		if _, err := ParseSeries(in); err == nil {
			t.Errorf("ParseSeries accepted %q", in)
		}
	}
}

func TestFormatters(t *testing.T) {
	if F(0.58637, 4) != "0.5864" {
		t.Errorf("F = %s", F(0.58637, 4))
	}
	if Pct(0.5013) != "50.13%" {
		t.Errorf("Pct = %s", Pct(0.5013))
	}
	if I(199.7) != "200" {
		t.Errorf("I = %s", I(199.7))
	}
}
