package report

import (
	"strings"
	"testing"
)

func fig7Series() *Series {
	s := NewSeries("Figure 7 (FSA)", "tags", "μs", "CRC-CD", "QCD")
	s.Add(50, 19670, 6384)
	s.Add(50000, 2.43e7, 7.22e6)
	return s
}

func TestChart(t *testing.T) {
	out := fig7Series().Chart(40)
	if !strings.Contains(out, "CRC-CD") || !strings.Contains(out, "█") {
		t.Errorf("chart:\n%s", out)
	}
	// The largest value must render the longest bar.
	lines := strings.Split(out, "\n")
	longest, longestLine := 0, ""
	for _, l := range lines {
		if n := strings.Count(l, "█"); n > longest {
			longest = n
			longestLine = l
		}
	}
	if !strings.Contains(longestLine, "2.43e+07") {
		t.Errorf("longest bar is not the maximum:\n%s", out)
	}
	if longest != 40 {
		t.Errorf("max bar = %d, want full width 40", longest)
	}
}

func TestChartTinyValuesStillVisible(t *testing.T) {
	s := NewSeries("t", "x", "y", "a")
	s.Add(1, 1)
	s.Add(2, 1e6)
	out := s.Chart(30)
	// The tiny positive value renders at least one block.
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, " 1\n") && !strings.Contains(l, "█") {
			t.Errorf("tiny value invisible:\n%s", out)
		}
	}
}

func TestChartAllZero(t *testing.T) {
	s := NewSeries("t", "x", "y", "a")
	s.Add(1, 0)
	if !strings.Contains(s.Chart(20), "all values zero") {
		t.Error("zero chart not handled")
	}
}

func TestLogChartCompressesMagnitudes(t *testing.T) {
	out := fig7Series().LogChart(40)
	if !strings.Contains(out, "log scale") {
		t.Error("missing log-scale banner")
	}
	// On a log scale the smallest positive value has a short but nonzero
	// bar, and bars differ between 6.4e3 and 2.4e7.
	counts := map[string]int{}
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "|") {
			counts[l] = strings.Count(l, "█")
		}
	}
	min, max := 1<<30, 0
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min < 1 || max <= min {
		t.Errorf("log chart bars degenerate (min=%d max=%d):\n%s", min, max, out)
	}
}

func TestHistogramChart(t *testing.T) {
	out := HistogramChart("delays", 0, 100, []int64{5, 20, 10, 0, 1}, 20)
	if !strings.Contains(out, "delays") || !strings.Contains(out, "█") {
		t.Errorf("histogram chart:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title + 5 buckets
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	// The max bucket gets the full width; nonzero buckets get ≥1 block.
	maxBars := 0
	for _, l := range lines {
		if n := strings.Count(l, "█"); n > maxBars {
			maxBars = n
		}
	}
	if maxBars != 20 {
		t.Errorf("max bar = %d", maxBars)
	}
	if !strings.Contains(HistogramChart("e", 0, 1, []int64{0, 0}, 10), "empty") {
		t.Error("empty histogram not handled")
	}
}

func TestLogChartNoPositive(t *testing.T) {
	s := NewSeries("t", "x", "y", "a")
	s.Add(1, 0)
	if !strings.Contains(s.LogChart(20), "no positive values") {
		t.Error("all-zero log chart not handled")
	}
}
