package report

// SweepRow is one completed sweep cell ready for merged rendering: its
// axis coordinates (in the sweep's axis order), where the result came
// from ("run", "cache", or "coalesced"), and the decoded summary.
type SweepRow struct {
	Coords  []string
	Source  string
	Summary AggregateSummary
}

// sweepMetrics are the headline columns of a merged sweep table, in
// paper order: the slot budget, its throughput, identification accuracy
// and unread ratio from the detector, and wall time.
var sweepMetrics = []struct {
	column string
	key    string
	format func(MetricStat) string
}{
	{"slots", "slots", func(m MetricStat) string { return F(m.Mean, 1) }},
	{"throughput", "throughput", func(m MetricStat) string { return F(m.Mean, 4) }},
	{"accuracy", "accuracy", func(m MetricStat) string { return Pct(m.Mean) }},
	{"ur", "ur", func(m MetricStat) string { return Pct(m.Mean) }},
	{"time_ms", "time_micros", func(m MetricStat) string { return F(m.Mean/1000, 3) }},
}

// NewSweepTable merges completed sweep cells into one paper-style table:
// one column per axis, the headline metric columns, and a provenance
// column. Rows keep their given (sweep) order. Cells whose coordinate
// count mismatches the axes are padded or truncated rather than
// rejected, so a partially failed sweep still renders.
func NewSweepTable(title string, axes []string, rows []SweepRow) *Table {
	cols := make([]string, 0, len(axes)+len(sweepMetrics)+1)
	cols = append(cols, axes...)
	for _, m := range sweepMetrics {
		cols = append(cols, m.column)
	}
	cols = append(cols, "source")
	t := NewTable(title, cols...)
	for _, r := range rows {
		cells := make([]string, 0, len(cols))
		for i := range axes {
			if i < len(r.Coords) {
				cells = append(cells, r.Coords[i])
			} else {
				cells = append(cells, "")
			}
		}
		for _, m := range sweepMetrics {
			cells = append(cells, m.format(r.Summary.Metrics[m.key]))
		}
		cells = append(cells, r.Source)
		t.AddRow(cells...)
	}
	return t
}
