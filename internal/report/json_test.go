package report

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

func TestAggregateSummaryDeterministicBytes(t *testing.T) {
	cfg := sim.Config{
		Tags: 80, Seed: 7, Rounds: 3,
		Algorithm: sim.AlgFSA, FrameSize: 50,
		Detector: sim.DetQCD, Strength: 8,
	}
	encode := func() []byte {
		agg, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(NewAggregateSummary(cfg.Canonical(), agg))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Errorf("two encodings of the same config differ:\n%s\n%s", a, b)
	}
}

func TestAggregateSummaryShape(t *testing.T) {
	cfg := sim.Config{
		Tags: 40, Seed: 1, Rounds: 2,
		Algorithm: sim.AlgBT, Detector: sim.DetCRCCD,
	}
	agg, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewAggregateSummary(cfg, agg)
	for _, key := range []string{"slots", "frames", "throughput", "time_micros", "accuracy", "ur", "delay"} {
		if _, ok := s.Metrics[key]; !ok {
			t.Errorf("metric %q missing", key)
		}
	}
	if s.Metrics["single"].Mean != 40 {
		t.Errorf("single mean = %v, want 40 (every tag identified once)", s.Metrics["single"].Mean)
	}
	var decoded AggregateSummary
	b, _ := json.Marshal(s)
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if decoded.Config.Tags != 40 || decoded.Metrics["single"].Mean != 40 {
		t.Error("round-trip lost data")
	}
}
