package report

import (
	"repro/internal/sim"
)

// MetricStat is the machine-readable shape of one aggregate metric: its
// cross-round mean, standard deviation, and 95% confidence half-width.
type MetricStat struct {
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	CI95   float64 `json:"ci95"`
}

// AggregateSummary is the machine-readable shape of one experiment
// aggregate, shared by the rfidsim -json output and the rfidd service.
// Encoding it with encoding/json is deterministic: struct fields keep
// declaration order and map keys are sorted, so identical aggregates
// yield byte-identical bodies.
type AggregateSummary struct {
	Config  sim.Config            `json:"config"`
	Metrics map[string]MetricStat `json:"metrics"`
}

// NewAggregateSummary flattens an aggregate into its JSON shape. cfg is
// reported verbatim, letting callers choose between the configuration as
// submitted and its canonical form (sim.Config.Canonical).
func NewAggregateSummary(cfg sim.Config, a *sim.Aggregate) AggregateSummary {
	stat := func(acc interface {
		Mean() float64
		StdDev() float64
		CI95() float64
	}) MetricStat {
		return MetricStat{Mean: acc.Mean(), StdDev: acc.StdDev(), CI95: acc.CI95()}
	}
	return AggregateSummary{
		Config: cfg,
		Metrics: map[string]MetricStat{
			"slots":       stat(&a.Slots),
			"frames":      stat(&a.Frames),
			"idle":        stat(&a.Idle),
			"single":      stat(&a.Single),
			"collided":    stat(&a.Collided),
			"throughput":  stat(&a.Throughput),
			"time_micros": stat(&a.TimeMicros),
			"bits":        stat(&a.Bits),
			"accuracy":    stat(&a.Accuracy),
			"ur":          stat(&a.UR),
			"delay":       {Mean: a.Delay.Mean(), StdDev: a.Delay.StdDev()},
		},
	}
}
