package report

import (
	"fmt"
	"math"
	"strings"
)

// Chart renders the series as horizontal ASCII bar groups — a terminal
// stand-in for the paper's figures. Each x position becomes a group with
// one bar per named series, scaled to the global maximum.
func (s *Series) Chart(width int) string {
	if width < 10 {
		width = 10
	}
	maxY := 0.0
	for _, row := range s.Y {
		for _, y := range row {
			if y > maxY {
				maxY = y
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", s.Title)
	if maxY == 0 {
		sb.WriteString("(all values zero)\n")
		return sb.String()
	}
	nameW := 0
	for _, n := range s.Names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	for i, x := range s.X {
		fmt.Fprintf(&sb, "%s = %g\n", s.XLabel, x)
		for j, name := range s.Names {
			y := s.Y[i][j]
			bars := int(math.Round(y / maxY * float64(width)))
			if y > 0 && bars == 0 {
				bars = 1
			}
			fmt.Fprintf(&sb, "  %-*s |%s %.4g\n", nameW, name, strings.Repeat("█", bars), y)
		}
	}
	return sb.String()
}

// HistogramChart renders bucket counts as a vertical profile of
// horizontal bars — the terminal rendition of a distribution figure
// (e.g. the Figure 6 delay histograms).
func HistogramChart(title string, lo, hi float64, buckets []int64, width int) string {
	if width < 10 {
		width = 10
	}
	var max int64
	for _, b := range buckets {
		if b > max {
			max = b
		}
	}
	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteByte('\n')
	if max == 0 {
		sb.WriteString("(empty histogram)\n")
		return sb.String()
	}
	step := (hi - lo) / float64(len(buckets))
	for i, b := range buckets {
		bars := int(math.Round(float64(b) / float64(max) * float64(width)))
		if b > 0 && bars == 0 {
			bars = 1
		}
		fmt.Fprintf(&sb, "%10.3g–%-10.3g |%s %d\n",
			lo+float64(i)*step, lo+float64(i+1)*step, strings.Repeat("█", bars), b)
	}
	return sb.String()
}

// LogChart is Chart with bars scaled to log10(y), for series spanning
// orders of magnitude (Figure 7's 1e4…1e7 μs range).
func (s *Series) LogChart(width int) string {
	if width < 10 {
		width = 10
	}
	maxL, minL := math.Inf(-1), math.Inf(1)
	for _, row := range s.Y {
		for _, y := range row {
			if y > 0 {
				l := math.Log10(y)
				if l > maxL {
					maxL = l
				}
				if l < minL {
					minL = l
				}
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (log scale)\n", s.Title)
	if math.IsInf(maxL, -1) {
		sb.WriteString("(no positive values)\n")
		return sb.String()
	}
	span := maxL - minL
	if span == 0 {
		span = 1
	}
	nameW := 0
	for _, n := range s.Names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	for i, x := range s.X {
		fmt.Fprintf(&sb, "%s = %g\n", s.XLabel, x)
		for j, name := range s.Names {
			y := s.Y[i][j]
			bars := 0
			if y > 0 {
				bars = 1 + int(math.Round((math.Log10(y)-minL)/span*float64(width-1)))
			}
			fmt.Fprintf(&sb, "  %-*s |%s %.4g\n", nameW, name, strings.Repeat("█", bars), y)
		}
	}
	return sb.String()
}
