package epc

import (
	"testing"

	"repro/internal/crc"
)

func TestQueryEncodingLengthMatchesConstant(t *testing.T) {
	q := QueryCommand{DR: DR8, M: 2, TRext: false, Sel: 0, Session: 1, Target: 0, Q: 4}
	b, err := q.Bits()
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != QueryBits {
		t.Fatalf("encoded Query = %d bits, constant says %d", b.Len(), QueryBits)
	}
	// It must verify and carry the Q field intact.
	got, err := VerifyQuery(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("Q = %d", got)
	}
}

func TestQueryCRCDetectsCorruption(t *testing.T) {
	q := QueryCommand{Q: 9, M: 1}
	b, err := q.Bits()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.Len(); i++ {
		bad := b.SetBit(i, 1-b.Bit(i))
		if _, err := VerifyQuery(bad); err == nil {
			t.Fatalf("single-bit corruption at %d not caught by CRC-5", i)
		}
	}
}

func TestQueryFieldValidation(t *testing.T) {
	for _, q := range []QueryCommand{
		{Q: 16}, {M: 4}, {Sel: 4}, {Session: 4}, {Target: 2},
	} {
		if _, err := q.Bits(); err == nil {
			t.Errorf("out-of-range Query accepted: %+v", q)
		}
	}
}

func TestQueryRepAndAdjustLengths(t *testing.T) {
	if got := QueryRepCommand(2).Len(); got != QueryRepBits {
		t.Errorf("QueryRep = %d bits, constant %d", got, QueryRepBits)
	}
	for _, d := range []int{-1, 0, 1} {
		b, err := QueryAdjustCommand(1, d)
		if err != nil {
			t.Fatal(err)
		}
		if b.Len() != QueryAdjustBits {
			t.Errorf("QueryAdjust = %d bits, constant %d", b.Len(), QueryAdjustBits)
		}
	}
	if _, err := QueryAdjustCommand(1, 2); err == nil {
		t.Error("delta 2 accepted")
	}
}

func TestAckRoundTrip(t *testing.T) {
	for _, rn := range []uint16{0, 1, 0xABCD, 0xFFFF} {
		b := AckCommand(rn)
		if b.Len() != AckBits {
			t.Fatalf("ACK = %d bits", b.Len())
		}
		got, err := ParseAck(b)
		if err != nil {
			t.Fatal(err)
		}
		if got != rn {
			t.Errorf("RN16 = %#x, want %#x", got, rn)
		}
	}
	if _, err := ParseAck(QueryRepCommand(0)); err == nil {
		t.Error("short frame accepted as ACK")
	}
	// Wrong command code.
	bad := AckCommand(1).SetBit(0, 1)
	if _, err := ParseAck(bad); err == nil {
		t.Error("non-ACK code accepted")
	}
}

func TestCRC5PresetIsUsed(t *testing.T) {
	// Guard: the Query encoder must really use CRC-5/EPC (width 5).
	if crc.CRC5EPC.Width != 5 {
		t.Fatal("CRC-5 preset width changed")
	}
}
