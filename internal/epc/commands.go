package epc

import (
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/crc"
)

// Gen-2 command encodings at the bit level. The inventory engines only
// need the lengths (QueryBits etc.), but encoding the real layouts keeps
// those constants honest and exercises the CRC-5 engine on its actual
// payload.

// DivideRatio selects the TRcal divide ratio.
type DivideRatio byte

// Divide ratios.
const (
	DR8    DivideRatio = 0 // DR = 8
	DR64_3 DivideRatio = 1 // DR = 64/3
)

// SessionID is the Gen-2 inventory session S0..S3.
type SessionID byte

// QueryCommand is the Gen-2 Query layout: 4-bit code (1000), DR, M(2),
// TRext, Sel(2), Session(2), Target, Q(4), CRC-5 — 22 bits total.
type QueryCommand struct {
	DR      DivideRatio
	M       byte // cycles/bit selector: 0=FM0, 1=M2, 2=M4, 3=M8
	TRext   bool
	Sel     byte // 2 bits
	Session SessionID
	Target  byte // 0=A, 1=B
	Q       byte // 0..15
}

// Bits encodes the command with its CRC-5.
func (q QueryCommand) Bits() (bitstr.BitString, error) {
	if q.M > 3 || q.Sel > 3 || q.Session > 3 || q.Target > 1 || q.Q > 15 {
		return bitstr.BitString{}, fmt.Errorf("epc: Query field out of range: %+v", q)
	}
	b := bitstr.MustParse("1000") // command code
	b = bitstr.Concat(b, bitstr.FromUint64(uint64(q.DR)&1, 1))
	b = bitstr.Concat(b, bitstr.FromUint64(uint64(q.M), 2))
	tr := uint64(0)
	if q.TRext {
		tr = 1
	}
	b = bitstr.Concat(b, bitstr.FromUint64(tr, 1))
	b = bitstr.Concat(b, bitstr.FromUint64(uint64(q.Sel), 2))
	b = bitstr.Concat(b, bitstr.FromUint64(uint64(q.Session), 2))
	b = bitstr.Concat(b, bitstr.FromUint64(uint64(q.Target), 1))
	b = bitstr.Concat(b, bitstr.FromUint64(uint64(q.Q), 4))
	// CRC-5 over the 17 payload bits.
	sum := crc.ChecksumBits(crc.CRC5EPC, b)
	return bitstr.Concat(b, bitstr.FromUint64(sum, 5)), nil
}

// VerifyQuery checks a received Query's CRC-5 and returns the Q field.
func VerifyQuery(b bitstr.BitString) (qval byte, err error) {
	if b.Len() != QueryBits {
		return 0, fmt.Errorf("epc: Query is %d bits, want %d", b.Len(), QueryBits)
	}
	if !crc.VerifyBits(crc.CRC5EPC, b) {
		return 0, fmt.Errorf("epc: Query CRC-5 failed")
	}
	return byte(b.Slice(13, 17).Uint64()), nil
}

// QueryRepCommand is the 4-bit QueryRep: code (00) + session (2).
func QueryRepCommand(session SessionID) bitstr.BitString {
	b := bitstr.MustParse("00")
	return bitstr.Concat(b, bitstr.FromUint64(uint64(session)&3, 2))
}

// QueryAdjustCommand is the 9-bit QueryAdjust: code (1001) + session (2)
// + UpDn (3): 110=Q+1, 000=Q, 011=Q−1.
func QueryAdjustCommand(session SessionID, delta int) (bitstr.BitString, error) {
	b := bitstr.MustParse("1001")
	b = bitstr.Concat(b, bitstr.FromUint64(uint64(session)&3, 2))
	var updn uint64
	switch delta {
	case +1:
		updn = 0b110
	case 0:
		updn = 0b000
	case -1:
		updn = 0b011
	default:
		return bitstr.BitString{}, fmt.Errorf("epc: QueryAdjust delta %d not in {-1,0,1}", delta)
	}
	return bitstr.Concat(b, bitstr.FromUint64(updn, 3)), nil
}

// AckCommand is the 18-bit ACK: code (01) + the 16-bit RN16 echo.
func AckCommand(rn16 uint16) bitstr.BitString {
	return bitstr.Concat(bitstr.MustParse("01"), bitstr.FromUint64(uint64(rn16), 16))
}

// ParseAck inverts AckCommand.
func ParseAck(b bitstr.BitString) (uint16, error) {
	if b.Len() != AckBits {
		return 0, fmt.Errorf("epc: ACK is %d bits, want %d", b.Len(), AckBits)
	}
	if b.Bit(0) != 0 || b.Bit(1) != 1 {
		return 0, fmt.Errorf("epc: not an ACK code")
	}
	return uint16(b.Slice(2, 18).Uint64()), nil
}
