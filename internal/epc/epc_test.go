package epc

import (
	"testing"

	"repro/internal/prng"
)

func TestConstants(t *testing.T) {
	if TransmittedUnitBits != 96 {
		t.Errorf("transmitted unit = %d bits, want 96 (Table V)", TransmittedUnitBits)
	}
	if IDBits != 64 || CRCBits != 32 {
		t.Error("paper's l_id/l_crc constants wrong")
	}
}

func TestPaperSetup(t *testing.T) {
	s := PaperSetup()
	if s.AreaMeters != 100 || s.Readers != 100 || s.RangeMeters != 3 {
		t.Errorf("setup = %+v, want Table V values", s)
	}
	if s.Rounds != 100 {
		t.Errorf("rounds = %d, want 100", s.Rounds)
	}
	if len(s.StrengthValues) != 3 {
		t.Error("strengths should be 4/8/16")
	}
}

func TestPaperCases(t *testing.T) {
	cases := PaperCases()
	if len(cases) != 4 {
		t.Fatalf("cases = %d", len(cases))
	}
	wantTags := []int{50, 500, 5000, 50000}
	wantSlots := []int{30, 300, 3000, 30000}
	for i, c := range cases {
		if c.Tags != wantTags[i] || c.Slots != wantSlots[i] {
			t.Errorf("case %s = %d/%d, want %d/%d", c.Name, c.Tags, c.Slots, wantTags[i], wantSlots[i])
		}
	}
	if c, ok := CaseByName("II"); !ok || c.Tags != 500 {
		t.Error("CaseByName II failed")
	}
	if _, ok := CaseByName("V"); ok {
		t.Error("CaseByName found nonexistent case")
	}
}

func TestEPC96RoundTrip(t *testing.T) {
	e := EPC96{Header: 0x30, Manager: 0x0ABCDEF, Class: 0x123456, Serial: 0x9_8765_4321}
	b := e.Bits()
	if b.Len() != 96 {
		t.Fatalf("EPC bits = %d", b.Len())
	}
	got, err := ParseEPC96(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Errorf("roundtrip = %+v, want %+v", got, e)
	}
}

func TestParseEPC96WrongLength(t *testing.T) {
	if _, err := ParseEPC96(EPC96{}.Bits().Slice(0, 64)); err == nil {
		t.Error("64-bit input accepted")
	}
}

func TestSequentialGenerator(t *testing.T) {
	g := NewSequentialGenerator(7, 9)
	a, b := g.Next(), g.Next()
	if a.Serial != 0 || b.Serial != 1 {
		t.Errorf("serials = %d,%d", a.Serial, b.Serial)
	}
	if a.Manager != 7 || a.Class != 9 || a.Header != 0x30 {
		t.Errorf("fields = %+v", a)
	}
	// Sequential EPCs share a 60-bit prefix — the adversarial case for QT.
	if !b.Bits().Slice(0, 60).Equal(a.Bits().Slice(0, 60)) {
		t.Error("sequential EPCs do not share the manager/class prefix")
	}
}

func TestRandomGenerator(t *testing.T) {
	g := NewRandomGenerator(7, 9, prng.New(1))
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		e := g.Next()
		if e.Serial>>36 != 0 {
			t.Fatalf("serial %d exceeds 36 bits", e.Serial)
		}
		seen[e.Serial] = true
	}
	if len(seen) < 95 {
		t.Errorf("only %d distinct serials in 100 draws", len(seen))
	}
}
