// Package epc grounds the simulator in the air standards the paper cites:
// EPCglobal Class-1 Generation-2 (the "EPC Gen 2" of Section I) and
// ISO 18000-6. It provides the protocol constants (command and reply
// lengths, CRC assignments), structured EPC identifier generation, and
// the paper's Table V/VI simulation setup values.
package epc

import (
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/prng"
)

// Air-interface constants (EPC C1G2 v1.0.9 / ISO 18000-6C).
const (
	// QueryBits is the length of the Gen-2 Query command (4-bit command
	// code + DR/M/TRext/Sel/Session/Target + Q + CRC-5).
	QueryBits = 22
	// QueryRepBits advances the slot counter.
	QueryRepBits = 4
	// QueryAdjustBits retunes Q mid-round.
	QueryAdjustBits = 9
	// AckBits acknowledges an RN16.
	AckBits = 18
	// RN16Bits is the 16-bit random number a Gen-2 tag backscatters first.
	RN16Bits = 16
	// IDBits is the ID length the paper analyses (Section IV-A: "a tag
	// transmits its EPC ID (64 bits)").
	IDBits = 64
	// CRCBits is the checksum length the paper pairs with it ("as well as
	// a CRC code (32 bits)"), giving the 96-bit transmitted unit of
	// Table V.
	CRCBits = 32
	// TransmittedUnitBits = IDBits + CRCBits, Table V's "96-bit ID".
	TransmittedUnitBits = IDBits + CRCBits
)

// Setup is the paper's Table V simulation environment.
type Setup struct {
	AreaMeters     float64 // square side: 100 m
	Readers        int     // 100
	RangeMeters    float64 // identification range: 3 m
	IDBits         int     // randomly selected IDs, 96-bit transmitted unit
	Rounds         int     // each test repeated 100 rounds
	TauMicros      float64 // per-bit airtime
	StrengthValues []int   // QCD strengths evaluated: 4, 8, 16
}

// PaperSetup returns Table V's values.
func PaperSetup() Setup {
	return Setup{
		AreaMeters:     100,
		Readers:        100,
		RangeMeters:    3,
		IDBits:         IDBits,
		Rounds:         100,
		TauMicros:      1,
		StrengthValues: []int{4, 8, 16},
	}
}

// Case is one row of Table VI: a tag count and an FSA frame size.
type Case struct {
	Name  string
	Tags  int
	Slots int // FSA frame length
}

// PaperCases returns Table VI. (The printed table's Case IV "5000" tag
// count is a typo: Tables VII–IX all evaluate 50000 tags for case IV.)
func PaperCases() []Case {
	return []Case{
		{Name: "I", Tags: 50, Slots: 30},
		{Name: "II", Tags: 500, Slots: 300},
		{Name: "III", Tags: 5000, Slots: 3000},
		{Name: "IV", Tags: 50000, Slots: 30000},
	}
}

// CaseByName returns the named case.
func CaseByName(name string) (Case, bool) {
	for _, c := range PaperCases() {
		if c.Name == name {
			return c, true
		}
	}
	return Case{}, false
}

// EPC96 is a structured 96-bit EPC (SGTIN-96-like layout) for generating
// realistic identifier populations: a fixed header, a manager number, an
// object class, and a serial number.
type EPC96 struct {
	Header  uint8  // 8 bits
	Manager uint32 // 28 bits
	Class   uint32 // 24 bits
	Serial  uint64 // 36 bits
}

// Bits packs the EPC into a 96-bit string.
func (e EPC96) Bits() bitstr.BitString {
	out := bitstr.FromUint64(uint64(e.Header), 8)
	out = bitstr.Concat(out, bitstr.FromUint64(uint64(e.Manager)&(1<<28-1), 28))
	out = bitstr.Concat(out, bitstr.FromUint64(uint64(e.Class)&(1<<24-1), 24))
	return bitstr.Concat(out, bitstr.FromUint64(e.Serial&(1<<36-1), 36))
}

// ParseEPC96 unpacks a 96-bit string into its fields.
func ParseEPC96(b bitstr.BitString) (EPC96, error) {
	if b.Len() != 96 {
		return EPC96{}, fmt.Errorf("epc: EPC96 needs 96 bits, got %d", b.Len())
	}
	return EPC96{
		Header:  uint8(b.Slice(0, 8).Uint64()),
		Manager: uint32(b.Slice(8, 36).Uint64()),
		Class:   uint32(b.Slice(36, 60).Uint64()),
		Serial:  b.Slice(60, 96).Uint64(),
	}, nil
}

// Generator draws EPC96 identifiers from a single manager/class (one
// company's one product line), with unique sequential or random serials —
// the realistic ID structure for the warehouse example, and an
// adversarially clustered one for query trees (shared long prefixes).
type Generator struct {
	Header  uint8
	Manager uint32
	Class   uint32
	rng     *prng.Source
	next    uint64
	random  bool
}

// NewSequentialGenerator yields serials 0,1,2,… under one manager/class.
func NewSequentialGenerator(manager, class uint32) *Generator {
	return &Generator{Header: 0x30, Manager: manager, Class: class}
}

// NewRandomGenerator yields uniformly random serials (collision-checked by
// the caller) under one manager/class.
func NewRandomGenerator(manager, class uint32, rng *prng.Source) *Generator {
	return &Generator{Header: 0x30, Manager: manager, Class: class, rng: rng, random: true}
}

// Next returns the next identifier.
func (g *Generator) Next() EPC96 {
	e := EPC96{Header: g.Header, Manager: g.Manager, Class: g.Class}
	if g.random {
		e.Serial = g.rng.Bits(36)
	} else {
		e.Serial = g.next & (1<<36 - 1)
		g.next++
	}
	return e
}
