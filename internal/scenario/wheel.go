package scenario

import "fmt"

// wheelEvent is one scheduled firing: an opaque payload due at a tick.
type wheelEvent struct {
	tick    uint64
	payload uint64
}

// Wheel is a hashed time wheel: events hash into buckets by tick, the
// cursor visits one bucket per tick, and an event whose tick has not
// come around yet simply stays in its bucket for a later lap. Advancing
// the clock therefore costs O(events due + buckets crossed), never
// O(live events) — and when the wheel is empty the cursor jumps in O(1),
// so sparse stretches cost nothing at all.
//
// Buckets and the firing scratch are pooled: they are appended to and
// re-sliced but never released, so a wheel in steady state schedules and
// fires without allocating. Not safe for concurrent use, and the fire
// callback must not touch the wheel (the engine never needs to: tag
// departures schedule nothing).
type Wheel struct {
	tickMicros float64
	mask       uint64
	buckets    [][]wheelEvent
	firing     []wheelEvent
	cur        uint64 // next tick to visit; every earlier tick has fired
	n          int
}

// NewWheel returns a wheel of the given resolution with at least the
// requested bucket count (rounded up to a power of two). Times are
// quantised to ticks of tickMicros: an event scheduled anywhere inside
// a tick fires when AdvanceTo first reaches that tick's end.
func NewWheel(tickMicros float64, buckets int) *Wheel {
	if tickMicros <= 0 {
		panic(fmt.Sprintf("scenario: wheel tick %v must be positive", tickMicros))
	}
	if buckets < 1 {
		buckets = 1
	}
	n := 1
	for n < buckets {
		n <<= 1
	}
	return &Wheel{
		tickMicros: tickMicros,
		mask:       uint64(n - 1),
		buckets:    make([][]wheelEvent, n),
	}
}

// Len returns the number of scheduled, unfired events.
func (w *Wheel) Len() int { return w.n }

// tickOf quantises an absolute time to its tick index.
func (w *Wheel) tickOf(at float64) uint64 {
	if at <= 0 {
		return 0
	}
	return uint64(at / w.tickMicros)
}

// Schedule registers payload to fire once the clock passes at. A time
// already in the past (or inside the current tick) clamps to the next
// unvisited tick, so zero-dwell events still fire exactly once, on the
// next advance.
func (w *Wheel) Schedule(at float64, payload uint64) {
	tick := w.tickOf(at)
	if tick < w.cur {
		tick = w.cur
	}
	b := tick & w.mask
	w.buckets[b] = append(w.buckets[b], wheelEvent{tick: tick, payload: payload})
	w.n++
}

// Cancel removes the earliest-scheduled pending event carrying payload
// at the given time (same clamping as Schedule), reporting whether one
// was found. Removal is stable: the bucket's remaining events keep
// their insertion order, so cancellation never perturbs firing order.
func (w *Wheel) Cancel(at float64, payload uint64) bool {
	tick := w.tickOf(at)
	if tick < w.cur {
		tick = w.cur
	}
	b := tick & w.mask
	evs := w.buckets[b]
	for i, ev := range evs {
		if ev.tick == tick && ev.payload == payload {
			w.buckets[b] = append(evs[:i], evs[i+1:]...)
			w.n--
			return true
		}
	}
	return false
}

// AdvanceTo moves the clock to now, invoking fire for every event in
// ticks up to and including now's, in tick order and insertion order
// within a tick. Events landing in now's tick after the call would be
// clamped forward by Schedule, so no event can be silently skipped.
func (w *Wheel) AdvanceTo(now float64, fire func(payload uint64)) {
	w.advance(w.tickOf(now), fire)
}

// Drain fires every pending event in tick order, however far ahead it
// sits (including events Schedule clamped past the last AdvanceTo
// target), one wheel lap at a time until the wheel is empty.
func (w *Wheel) Drain(fire func(payload uint64)) {
	for w.n > 0 {
		w.advance(w.cur+w.mask, fire)
	}
}

// advance visits ticks cur..target, firing due events.
func (w *Wheel) advance(target uint64, fire func(payload uint64)) {
	if target < w.cur {
		return
	}
	if w.n == 0 {
		w.cur = target + 1
		return
	}
	for t := w.cur; t <= target; t++ {
		if w.n == 0 {
			w.cur = target + 1
			return
		}
		evs := w.buckets[t&w.mask]
		if len(evs) == 0 {
			w.cur = t + 1
			continue
		}
		// Split the bucket: due events (tick == t) move to the firing
		// scratch, later laps compact down in place, preserving order.
		w.firing = w.firing[:0]
		keep := evs[:0]
		for _, ev := range evs {
			if ev.tick == t {
				w.firing = append(w.firing, ev)
			} else {
				keep = append(keep, ev)
			}
		}
		w.buckets[t&w.mask] = keep
		w.n -= len(w.firing)
		w.cur = t + 1
		for _, ev := range w.firing {
			fire(ev.payload)
		}
	}
}
