//go:build !race

// Allocation guards for the scenario hot path. Excluded under the race
// detector, which instruments allocations and would trip the counts.

package scenario

import "testing"

// TestWheelSteadyStateAllocatesNothing pins the wheel's pooling
// contract: once buckets have seen their peak occupancy, a
// schedule/advance churn cycle runs at 0 allocs/op.
func TestWheelSteadyStateAllocatesNothing(t *testing.T) {
	w := NewWheel(10, 64)
	now := 0.0
	// Warm-up lap: let every bucket and the firing scratch reach
	// steady-state capacity.
	for i := 0; i < 1024; i++ {
		w.Schedule(now+float64(100+i%500), uint64(i))
	}
	w.AdvanceTo(now+1000, func(uint64) {})
	now += 1000
	if got := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			w.Schedule(now+float64(100+i*7), uint64(i))
		}
		w.AdvanceTo(now+1000, func(uint64) {})
		now += 1000
	}); got != 0 {
		t.Fatalf("wheel steady state allocates %v/op, want 0", got)
	}
}

// TestStoreSteadyStateAllocatesNothing pins the free-list contract:
// alloc/release churn within the high-water mark allocates nothing.
func TestStoreSteadyStateAllocatesNothing(t *testing.T) {
	st := NewStore(4, 16)
	// Push the high-water mark past what the churn loop needs.
	var hs []Handle
	for i := 0; i < 256; i++ {
		hs = append(hs, st.Alloc(1, 1, 0, 100))
	}
	for _, h := range hs {
		st.Release(h)
	}
	if got := testing.AllocsPerRun(100, func() {
		var batch [64]Handle
		for i := range batch {
			batch[i] = st.Alloc(2, 2, 0, 100)
		}
		for _, h := range batch {
			st.SetSeen(3, h)
			st.ClearSeen(3, h)
			st.Release(h)
		}
	}); got != 0 {
		t.Fatalf("store steady state allocates %v/op, want 0", got)
	}
}
