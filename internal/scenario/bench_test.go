package scenario

import (
	"context"
	"testing"

	"repro/internal/sim"
)

// warehouseSpec is the acceptance workload: ~100k tags through 100
// readers (Table V arena, read range widened to 6 m so the flow is
// mostly coverable).
func warehouseSpec() Spec {
	return Spec{
		Name:              "bench-warehouse",
		SideMetres:        100,
		Readers:           100,
		ReadRangeMetres:   6,
		ArrivalsPerSecond: 100_000,
		DwellMicros:       50_000,
		DurationMicros:    1_000_000,
		Seed:              42,
	}
}

// BenchmarkWarehouse runs the full 100k-tag × 100-reader streaming
// scenario end to end per iteration. The per-op time is the wall time
// of one complete run; tags/s is reported as a custom metric.
func BenchmarkWarehouse(b *testing.B) {
	var pool sim.ScratchPool
	spec := warehouseSpec()
	b.ReportAllocs()
	var arrived int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunContext(context.Background(), spec, Options{Scratch: &pool})
		if err != nil {
			b.Fatal(err)
		}
		arrived = res.Arrived
	}
	b.StopTimer()
	if arrived > 0 {
		b.ReportMetric(float64(arrived)*float64(b.N)/b.Elapsed().Seconds(), "tags/s")
	}
}

// BenchmarkWarehouseSerial is the same workload pinned to one worker,
// isolating the colour-class parallelism win.
func BenchmarkWarehouseSerial(b *testing.B) {
	var pool sim.ScratchPool
	spec := warehouseSpec()
	spec.Workers = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunContext(context.Background(), spec, Options{Scratch: &pool}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWheel pins the event machinery alone: schedule + fire one
// departure per op in steady state.
func BenchmarkWheel(b *testing.B) {
	w := NewWheel(256, 1024)
	now := 0.0
	// Prime every bucket's event slice to steady-state capacity:
	// the growth is one-time and amortises to 0 allocs/op at full
	// benchtime, but at CI's short -benchtime it would register.
	for i := 0; i < 512; i++ {
		w.Schedule(now+50_000, uint64(i))
		now += 1000
		w.AdvanceTo(now, func(uint64) {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Schedule(now+50_000, uint64(i))
		now += 1000
		w.AdvanceTo(now, func(uint64) {})
	}
}
