package scenario

// Handle packs a store slot index with the slot's generation at packing
// time. Handles travel through newcomer queues, collision contexts and
// read buffers long after the tag may have departed; the generation lets
// every consumer detect staleness in O(1) instead of the store having to
// chase down queued references at departure.
type Handle uint64

func makeHandle(idx int32, gen uint32) Handle {
	return Handle(uint64(gen)<<32 | uint64(uint32(idx)))
}

func (h Handle) index() int32 { return int32(uint32(h)) }
func (h Handle) gen() uint32  { return uint32(uint64(h) >> 32) }

// Store holds the live tag population as a struct of arrays: parallel
// packed columns indexed by slot, plus one word-packed seen-bitmap per
// reader. There are no per-tag heap objects — a million-tag field is a
// handful of large slices — and departed slots recycle through a free
// list under fresh generations, so steady-state churn allocates nothing.
//
// firstRead doubles as the global read state: negative means unread, and
// the engine's serial merge is the only writer, so reader sessions can
// filter on it concurrently within a colour group (they observe the
// pre-group value, which is exactly the determinism contract).
type Store struct {
	posX, posY []float32
	arriveAt   []float64
	leaveAt    []float64
	firstRead  []float64
	gen        []uint32

	// seen[r] holds reader r's word-packed per-slot bitmap: has this
	// reader already read the tag in the slot (pending global merge).
	seen [][]uint64

	free []int32
	live int
}

// NewStore returns a store for the given reader count, pre-sized for
// capHint concurrent tags.
func NewStore(readers, capHint int) *Store {
	if capHint < 1 {
		capHint = 1
	}
	s := &Store{
		posX:      make([]float32, 0, capHint),
		posY:      make([]float32, 0, capHint),
		arriveAt:  make([]float64, 0, capHint),
		leaveAt:   make([]float64, 0, capHint),
		firstRead: make([]float64, 0, capHint),
		gen:       make([]uint32, 0, capHint),
		seen:      make([][]uint64, readers),
	}
	words := (capHint + 63) / 64
	for r := range s.seen {
		s.seen[r] = make([]uint64, 0, words)
	}
	return s
}

// Len returns the live tag count; Cap the allocated slot count.
func (s *Store) Len() int { return s.live }
func (s *Store) Cap() int { return len(s.gen) }

// Alloc admits a tag and returns its handle. The slot comes from the
// free list when one exists; otherwise every column grows by one.
func (s *Store) Alloc(x, y float32, arrive, leave float64) Handle {
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
		s.posX[idx] = x
		s.posY[idx] = y
		s.arriveAt[idx] = arrive
		s.leaveAt[idx] = leave
		s.firstRead[idx] = -1
	} else {
		idx = int32(len(s.gen))
		s.posX = append(s.posX, x)
		s.posY = append(s.posY, y)
		s.arriveAt = append(s.arriveAt, arrive)
		s.leaveAt = append(s.leaveAt, leave)
		s.firstRead = append(s.firstRead, -1)
		s.gen = append(s.gen, 0)
		if int(idx)&63 == 0 {
			// Crossed into a new bitmap word: grow every reader's map.
			for r := range s.seen {
				s.seen[r] = append(s.seen[r], 0)
			}
		}
	}
	s.live++
	return makeHandle(idx, s.gen[idx])
}

// Release retires the tag behind h: the generation bumps (invalidating
// every outstanding handle) and the slot joins the free list. The
// caller clears the relevant seen bits first via ClearSeen — the store
// does not know which readers cover the slot.
func (s *Store) Release(h Handle) {
	idx := h.index()
	s.gen[idx]++
	s.free = append(s.free, idx)
	s.live--
}

// Valid reports whether h still names a live tag (generation match).
func (s *Store) Valid(h Handle) bool {
	return s.gen[h.index()] == h.gen()
}

// Pos returns the tag's position. ArriveAt/LeaveAt/FirstRead return the
// corresponding columns; they are meaningful only while Valid(h).
func (s *Store) Pos(h Handle) (x, y float32) {
	idx := h.index()
	return s.posX[idx], s.posY[idx]
}

func (s *Store) ArriveAt(h Handle) float64  { return s.arriveAt[h.index()] }
func (s *Store) LeaveAt(h Handle) float64   { return s.leaveAt[h.index()] }
func (s *Store) FirstRead(h Handle) float64 { return s.firstRead[h.index()] }

// SetFirstRead records the global first read time for h. Only the
// engine's serial merge calls it.
func (s *Store) SetFirstRead(h Handle, at float64) {
	s.firstRead[h.index()] = at
}

// Seen reports whether reader r has read the tag behind h (pending or
// merged); SetSeen records it. Each reader writes only its own bitmap,
// which is what makes same-colour sessions data-race free.
func (s *Store) Seen(r int, h Handle) bool {
	idx := h.index()
	return s.seen[r][idx>>6]&(1<<(uint(idx)&63)) != 0
}

func (s *Store) SetSeen(r int, h Handle) {
	idx := h.index()
	s.seen[r][idx>>6] |= 1 << (uint(idx) & 63)
}

// ClearSeen drops reader r's bit for h so a recycled slot starts clean.
func (s *Store) ClearSeen(r int, h Handle) {
	idx := h.index()
	s.seen[r][idx>>6] &^= 1 << (uint(idx) & 63)
}
