package scenario

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/sim"
)

// smallSpec is a dense little arena that still exercises every moving
// part: multiple colour classes, overlapping coverage, tag churn.
func smallSpec() Spec {
	return Spec{
		Name:                     "test",
		SideMetres:               24,
		Readers:                  16,
		ReadRangeMetres:          5,
		InterferenceRadiusMetres: 9,
		ArrivalsPerSecond:        4000,
		DwellMicros:              150_000,
		DurationMicros:           1_000_000,
		SessionMicros:            2000,
		Seed:                     7,
	}
}

func TestRunProducesReads(t *testing.T) {
	res, err := Run(smallSpec())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Arrived == 0 || res.Covered == 0 {
		t.Fatalf("no flow: %+v", res)
	}
	if res.Read == 0 {
		t.Fatalf("no tag was ever read: %+v", res)
	}
	if res.Read+res.Missed != res.Covered {
		t.Fatalf("covered tags unaccounted for: read %d + missed %d != covered %d",
			res.Read, res.Missed, res.Covered)
	}
	if res.Covered > res.Arrived {
		t.Fatalf("covered %d exceeds arrived %d", res.Covered, res.Arrived)
	}
	if res.Latency.N() != res.Read {
		t.Fatalf("latency folded %d times for %d reads", res.Latency.N(), res.Read)
	}
	if res.LatencyMeanMicros <= 0 {
		t.Fatalf("non-positive mean latency %v", res.LatencyMeanMicros)
	}
	if res.Census.Single < res.Read {
		t.Fatalf("census singles %d below read count %d", res.Census.Single, res.Read)
	}
	if res.Colors < 2 {
		t.Fatalf("expected a multi-colour schedule, got %d", res.Colors)
	}
}

// TestRunDeterministicAcrossWorkers is the PR's core contract: the
// worker count schedules goroutines and nothing else, so every tally —
// census, reads, latency moments — is bit-identical for any value.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	var pool sim.ScratchPool
	var base *Result
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		spec := smallSpec()
		spec.Workers = workers
		res, err := RunContext(context.Background(), spec, Options{Scratch: &pool})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		res.Spec.Workers = 0 // the only field allowed to differ
		if base == nil {
			base = res
			continue
		}
		if !reflect.DeepEqual(base, res) {
			t.Fatalf("workers=%d diverged:\n  base %+v\n  got  %+v", workers, base, res)
		}
	}
}

func TestRunProgressSeries(t *testing.T) {
	spec := smallSpec()
	spec.EpochsPerProgress = 2
	var seen []Progress
	_, err := RunContext(context.Background(), spec, Options{
		OnEpoch: func(p Progress) { seen = append(seen, p) },
	})
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if len(seen) == 0 {
		t.Fatal("no progress events")
	}
	var total int64
	for i, p := range seen {
		if i > 0 && p.Epoch <= seen[i-1].Epoch {
			t.Fatalf("epochs not increasing: %+v", seen)
		}
		total += p.EpochReads
	}
	last := seen[len(seen)-1]
	if total != last.Read {
		t.Fatalf("interval reads sum %d != cumulative %d", total, last.Read)
	}
	if last.MissRate < 0 || last.MissRate > 1 {
		t.Fatalf("miss rate %v out of range", last.MissRate)
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	spec := smallSpec()
	spec.DurationMicros = 1e12 // would run ~forever
	n := 0
	res, err := RunContext(ctx, spec, Options{
		OnEpoch: func(Progress) {
			n++
			if n == 3 {
				cancel()
			}
		},
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Epochs < 3 {
		t.Fatalf("expected a partial result with >= 3 epochs, got %+v", res)
	}
}

func TestValidate(t *testing.T) {
	if err := (Spec{ArrivalsPerSecond: 100, DwellMicros: 1000, DurationMicros: 1000}).Validate(); err != nil {
		t.Fatalf("minimal spec should validate: %v", err)
	}
	bad := []Spec{
		{},                       // no flow at all
		{ArrivalsPerSecond: 100}, // no dwell/duration
		{ArrivalsPerSecond: 100, DwellMicros: 1000, DurationMicros: 1000, Readers: 7},
		{ArrivalsPerSecond: 100, DwellMicros: 1000, DurationMicros: 1000, Strength: 99},
		{ArrivalsPerSecond: -1, DwellMicros: 1000, DurationMicros: 1000},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected a validation error", i)
		}
	}
}

// TestZeroDwellTags: tags that leave the instant they arrive must flow
// through admission, scheduling and departure without ever counting as
// read (their read window is empty).
func TestZeroDwellTags(t *testing.T) {
	spec := smallSpec()
	spec.ExponentialDwell = true
	spec.DwellMicros = 1 // μs-scale dwells, far below one slot
	res, err := Run(spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Read != 0 {
		t.Fatalf("read %d tags whose dwell is below a slot time", res.Read)
	}
	if res.Covered == 0 || res.Missed != res.Covered {
		t.Fatalf("every covered tag should be missed: %+v", res)
	}
}
