// Package scenario is the streaming warehouse simulation of the paper's
// Section VI-D motivation at production scale: tags flow through a 2-D
// arena past a grid of readers, every reader runs its inventory inside
// the interference-colouring schedule of internal/deploy, and the system
// tracks each tag's first-read latency and the miss rate — the fraction
// of readable tags that leave the arena unread.
//
// Three structural choices make a million tags through a hundred readers
// a minutes-of-wall-time workload instead of an overnight one:
//
//   - Event-driven time: arrivals come off a lazily-advanced Poisson
//     stream and departures off a bucket-pooled time wheel (Wheel), so
//     advancing the clock costs O(events), never O(live tags).
//   - Colour-class parallelism: readers of one interference colour are
//     mutually safe by construction, so they run concurrently — one
//     goroutine per reader over pooled scratch — while determinism is
//     pinned by per-reader PRNG streams (prng.SplitInto) and a serial
//     merge in reader order.
//   - Incremental inventory: each reader carries a CSCT-style priority
//     queue of unresolved collision contexts across its activations, so
//     an arriving tag costs the frames needed to resolve it, never a
//     re-inventory of the reader's whole field.
//
// The per-tag state itself is a struct-of-arrays store (Store): packed
// position/dwell/first-read columns plus word-packed per-reader seen
// bitmaps, with no per-tag heap objects at all.
package scenario

import (
	"fmt"
	"math"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// Spec configures one streaming warehouse run. The zero value of every
// omitted field takes the documented default, mirroring the paper's
// Table V arena where one exists.
type Spec struct {
	// Name labels the run in reports and the service index.
	Name string `json:"name,omitempty"`

	// SideMetres is the square arena side (default 100, Table V).
	SideMetres float64 `json:"side_metres,omitempty"`
	// Readers is the reader count, placed on a regular grid; it must be
	// a perfect square (default 100, Table V).
	Readers int `json:"readers,omitempty"`
	// ReadRangeMetres is the identification range (default 3, Table V).
	ReadRangeMetres float64 `json:"read_range_metres,omitempty"`
	// InterferenceRadiusMetres is the reader-reader interference radius
	// that the colouring must separate (default 10: carriers reach well
	// past the read range).
	InterferenceRadiusMetres float64 `json:"interference_radius_metres,omitempty"`

	// ArrivalsPerSecond is the Poisson arrival rate λ of the tag flow.
	ArrivalsPerSecond float64 `json:"arrivals_per_second"`
	// DwellMicros is the mean contact window before a tag leaves.
	DwellMicros float64 `json:"dwell_micros"`
	// ExponentialDwell draws dwell Exp(DwellMicros) instead of the
	// deterministic window (a free-moving crowd vs a fixed-speed belt).
	ExponentialDwell bool `json:"exponential_dwell,omitempty"`
	// DurationMicros is the simulated time span of the run.
	DurationMicros float64 `json:"duration_micros"`

	// Strength is the QCD detector strength l in bits; it sets the
	// contention-slot airtime 2l·τ (default 8).
	Strength int `json:"strength,omitempty"`
	// IDBits is the tag ID length (default 64).
	IDBits int `json:"id_bits,omitempty"`
	// TauMicros is the per-bit airtime (default 1).
	TauMicros float64 `json:"tau_micros,omitempty"`
	// SessionMicros is one colour class's activation window: every
	// reader of the class runs inventory frames until the window is
	// spent (default 5000). An epoch is Colors × SessionMicros.
	SessionMicros float64 `json:"session_micros,omitempty"`
	// NewcomerBatch bounds how many queued newcomers one discovery
	// frame admits (default 256).
	NewcomerBatch int `json:"newcomer_batch,omitempty"`
	// MaxFrame caps any single frame's slot count (default 1024).
	MaxFrame int `json:"max_frame,omitempty"`
	// PriorityWeightSize and PriorityWeightDepth weight a collision
	// context's priority, wSize·est − wDepth·depth (CSCT defaults 1 and
	// 0.001: big subsets first, shallow before deep on ties).
	PriorityWeightSize  float64 `json:"priority_weight_size,omitempty"`
	PriorityWeightDepth float64 `json:"priority_weight_depth,omitempty"`

	// Seed is the master seed; every stream (arrivals, per-reader
	// draws) derives from it deterministically.
	Seed uint64 `json:"seed,omitempty"`
	// Workers bounds the goroutines running one colour class's readers
	// (0 = GOMAXPROCS). Scheduling only: results are bit-identical for
	// any worker count.
	Workers int `json:"workers,omitempty"`
	// TickMicros is the time wheel resolution (default 256). Departures
	// are quantised to it; arrivals are exact.
	TickMicros float64 `json:"tick_micros,omitempty"`
	// EpochsPerProgress thins the progress callback/stream to one
	// report every N epochs (default 1: every epoch).
	EpochsPerProgress int `json:"epochs_per_progress,omitempty"`
}

// WithDefaults returns the spec with every zero field defaulted.
func (s Spec) WithDefaults() Spec {
	if s.SideMetres == 0 {
		s.SideMetres = 100
	}
	if s.Readers == 0 {
		s.Readers = 100
	}
	if s.ReadRangeMetres == 0 {
		s.ReadRangeMetres = 3
	}
	if s.InterferenceRadiusMetres == 0 {
		s.InterferenceRadiusMetres = 10
	}
	if s.Strength == 0 {
		s.Strength = 8
	}
	if s.IDBits == 0 {
		s.IDBits = 64
	}
	if s.TauMicros == 0 {
		s.TauMicros = 1
	}
	if s.SessionMicros == 0 {
		s.SessionMicros = 5000
	}
	if s.NewcomerBatch == 0 {
		s.NewcomerBatch = 256
	}
	if s.MaxFrame == 0 {
		s.MaxFrame = 1024
	}
	if s.PriorityWeightSize == 0 {
		s.PriorityWeightSize = 1
	}
	if s.PriorityWeightDepth == 0 {
		s.PriorityWeightDepth = 0.001
	}
	if s.TickMicros == 0 {
		s.TickMicros = 256
	}
	if s.EpochsPerProgress == 0 {
		s.EpochsPerProgress = 1
	}
	return s
}

// Validate reports spec errors. It validates the defaulted form, so a
// zero-flow spec fails but omitted geometry does not.
func (s Spec) Validate() error {
	s = s.WithDefaults()
	if s.SideMetres <= 0 {
		return fmt.Errorf("scenario: side %v must be positive", s.SideMetres)
	}
	k := int(math.Round(math.Sqrt(float64(s.Readers))))
	if s.Readers < 1 || k*k != s.Readers {
		return fmt.Errorf("scenario: %d readers do not form a square grid", s.Readers)
	}
	if s.ReadRangeMetres <= 0 {
		return fmt.Errorf("scenario: read range %v must be positive", s.ReadRangeMetres)
	}
	if s.InterferenceRadiusMetres < 0 {
		return fmt.Errorf("scenario: negative interference radius %v", s.InterferenceRadiusMetres)
	}
	if s.ArrivalsPerSecond <= 0 {
		return fmt.Errorf("scenario: arrivals_per_second %v must be positive", s.ArrivalsPerSecond)
	}
	if s.DwellMicros <= 0 {
		return fmt.Errorf("scenario: dwell_micros %v must be positive", s.DwellMicros)
	}
	if s.DurationMicros <= 0 {
		return fmt.Errorf("scenario: duration_micros %v must be positive", s.DurationMicros)
	}
	if s.Strength < 1 || s.Strength > 64 {
		return fmt.Errorf("scenario: QCD strength %d out of [1,64]", s.Strength)
	}
	if s.SessionMicros <= 0 {
		return fmt.Errorf("scenario: session_micros %v must be positive", s.SessionMicros)
	}
	if s.MaxFrame < 2 {
		return fmt.Errorf("scenario: max_frame %d must be at least 2", s.MaxFrame)
	}
	if s.NewcomerBatch < 1 {
		return fmt.Errorf("scenario: newcomer_batch %d must be at least 1", s.NewcomerBatch)
	}
	if s.TickMicros <= 0 {
		return fmt.Errorf("scenario: tick_micros %v must be positive", s.TickMicros)
	}
	return nil
}

// Result summarises one completed (or cancelled-partial) run. All
// tallies are deterministic in the spec: bit-identical for any Workers.
type Result struct {
	Spec Spec `json:"spec"`

	// Colors is the interference-colouring class count; an epoch is
	// Colors activation windows.
	Colors int `json:"colors"`
	// Epochs counts completed scheduling epochs.
	Epochs int `json:"epochs"`
	// SimMicros is the simulated time actually covered.
	SimMicros float64 `json:"sim_micros"`

	// Arrived counts tags that entered the arena; Covered those within
	// at least one reader's range (only they can ever be read).
	Arrived int64 `json:"arrived"`
	Covered int64 `json:"covered"`
	// Read counts covered tags first-read before leaving; Missed counts
	// covered tags that left (or remained at the end) unread.
	Read   int64 `json:"read"`
	Missed int64 `json:"missed"`

	// Latency accumulates first-read latency (read − arrival, μs) over
	// every read tag.
	Latency stats.Accumulator `json:"-"`
	// LatencyMeanMicros, LatencyMaxMicros mirror the accumulator for
	// the JSON encoding.
	LatencyMeanMicros float64 `json:"latency_mean_micros"`
	LatencyMaxMicros  float64 `json:"latency_max_micros"`

	// Census totals the slot outcomes over every reader session, and
	// AirtimeMicros their summed airtime.
	Census        metrics.Census `json:"census"`
	AirtimeMicros float64        `json:"airtime_micros"`

	// PeakLive is the largest concurrent field population observed at
	// an epoch boundary.
	PeakLive int `json:"peak_live"`
}

// MissRate returns Missed over covered arrivals (0 when none).
func (r *Result) MissRate() float64 {
	if r.Read+r.Missed == 0 {
		return 0
	}
	return float64(r.Missed) / float64(r.Read+r.Missed)
}

// Progress is one epoch's snapshot, delivered to Options.OnEpoch and
// streamed by the service as SSE "epoch" events.
type Progress struct {
	Epoch     int     `json:"epoch"`
	SimMicros float64 `json:"sim_micros"`
	Live      int     `json:"live"`

	// Cumulative tallies as of this epoch's end.
	Arrived int64 `json:"arrived"`
	Read    int64 `json:"read"`
	Missed  int64 `json:"missed"`

	// EpochReads counts first reads during this epoch, and
	// EpochMeanLatencyMicros their mean first-read latency.
	EpochReads             int64   `json:"epoch_reads"`
	EpochMeanLatencyMicros float64 `json:"epoch_mean_latency_micros"`
	// ReadsPerSecond is EpochReads over the epoch's simulated span.
	ReadsPerSecond float64 `json:"reads_per_second"`
	// MissRate is the cumulative miss rate over departed covered tags.
	MissRate float64 `json:"miss_rate"`
}
