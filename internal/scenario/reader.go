package scenario

import (
	"math"

	"repro/internal/metrics"
	"repro/internal/prng"
	"repro/internal/sched"
)

// schouteMultiplier is the expected tag count hidden behind one collided
// slot under Schoute's backlog model — the estimator that sizes child
// collision contexts (the CSCT estimator_multiplier).
const schouteMultiplier = 2.39

// collisionContext is one unresolved collision subset carried across a
// reader's scheduled sessions: the handles that answered together in a
// collided slot, the estimated population behind them, and how many
// splits deep the subset already is.
type collisionContext struct {
	tags  []Handle
	est   float64
	depth int32
	seq   uint64 // admission order, the deterministic tie-break
}

// ctxQueue is a binary max-heap of collision contexts ordered by the
// CSCT priority wSize·est − wDepth·depth (big subsets first, shallow
// before deep), with admission order breaking exact ties so the heap
// never depends on pointer identity. Popped contexts recycle through a
// free list, so steady-state churn reuses both the context headers and
// their tag slices.
type ctxQueue struct {
	wSize, wDepth float64
	items         []*collisionContext
	free          []*collisionContext
	nextSeq       uint64
}

func (q *ctxQueue) priority(c *collisionContext) float64 {
	return q.wSize*c.est - q.wDepth*float64(c.depth)
}

// before reports strict heap order: higher priority first, then earlier
// admission.
func (q *ctxQueue) before(a, b *collisionContext) bool {
	pa, pb := q.priority(a), q.priority(b)
	if pa != pb {
		return pa > pb
	}
	return a.seq < b.seq
}

func (q *ctxQueue) Len() int { return len(q.items) }

// get returns a recycled or fresh context header.
func (q *ctxQueue) get() *collisionContext {
	if n := len(q.free); n > 0 {
		c := q.free[n-1]
		q.free = q.free[:n-1]
		c.tags = c.tags[:0]
		return c
	}
	return &collisionContext{}
}

// push admits c, stamping its sequence number.
func (q *ctxQueue) push(c *collisionContext) {
	c.seq = q.nextSeq
	q.nextSeq++
	q.items = append(q.items, c)
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.before(q.items[i], q.items[parent]) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

// pop removes and returns the highest-priority context, or nil when
// empty. The caller must recycle it once drained.
func (q *ctxQueue) pop() *collisionContext {
	n := len(q.items)
	if n == 0 {
		return nil
	}
	top := q.items[0]
	q.items[0] = q.items[n-1]
	q.items[n-1] = nil
	q.items = q.items[:n-1]
	n--
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && q.before(q.items[l], q.items[best]) {
			best = l
		}
		if r < n && q.before(q.items[r], q.items[best]) {
			best = r
		}
		if best == i {
			break
		}
		q.items[i], q.items[best] = q.items[best], q.items[i]
		i = best
	}
	return top
}

// recycle returns a drained context to the free list.
func (q *ctxQueue) recycle(c *collisionContext) {
	q.free = append(q.free, c)
}

// readRec is one pending identification: the handle and the absolute
// time its singleton slot ended. Records stay reader-local until the
// engine's serial merge.
type readRec struct {
	h  Handle
	at float64
}

// slotCosts caches the three slot airtimes (μs) for the run's detector
// and timing model.
type slotCosts struct {
	idle, single, collided float64
}

// readerState is everything one reader carries across its scheduled
// sessions: a deterministic PRNG stream, the FIFO of newcomers pushed
// by the arrival process, the collision-context priority queue, and the
// session's pending reads and census. Only the owning goroutine touches
// any of it during a colour group; the engine folds census and reads
// serially between groups.
type readerState struct {
	id  int
	rng prng.Source

	newcomers []Handle
	newHead   int

	ccq ctxQueue

	cand  []uint64 // per-session candidate scratch, in IndexFrame's currency
	reads []readRec

	census metrics.Census
	air    float64
}

// pushNewcomer appends an arriving tag to the reader's discovery FIFO.
func (r *readerState) pushNewcomer(h Handle) {
	r.newcomers = append(r.newcomers, h)
}

// pendingNewcomers returns the undrained FIFO length.
func (r *readerState) pendingNewcomers() int {
	return len(r.newcomers) - r.newHead
}

// compactNewcomers resets the FIFO storage once fully drained so the
// backing array is reused instead of growing forever.
func (r *readerState) compactNewcomers() {
	if r.newHead == len(r.newcomers) {
		r.newcomers = r.newcomers[:0]
		r.newHead = 0
	}
}

// frameSize maps a population estimate to the frame's slot count: the
// next power of two at or above the estimate (FSA throughput peaks near
// F ≈ n), clamped to [2, maxFrame].
func frameSize(est float64, maxFrame int) int {
	n := int(math.Ceil(est))
	if n < 2 {
		n = 2
	}
	if n > maxFrame {
		n = maxFrame
	}
	f := 2
	for f < n {
		f <<= 1
	}
	if f > maxFrame {
		f >>= 1
	}
	return f
}

// session runs one activation window: pop collision contexts (or drain
// a newcomer batch when none are queued) and run one frame each, until
// the airtime budget is spent or the reader has nothing to do. Slot
// semantics mirror deploy.RunSequential: a tag already read by anyone
// keeps silent, a singleton slot identifies its tag at the slot's end,
// and a collided slot becomes a child context sized by the Schoute
// estimator at depth+1.
func (r *readerState) session(st *Store, fr *sched.IndexFrame, costs slotCosts,
	start, budget float64, batch, maxFrame int) {
	spent := 0.0
	for spent < budget {
		r.cand = r.cand[:0]
		var est float64
		var depth int32
		// Candidate filtering: a queued handle is readable only if it
		// still names a live tag (generation match), was not globally
		// read as of the last merge, and was not already read by this
		// reader in an unmerged session. Departed and resolved tags
		// silently drop out of queues and contexts here, which is what
		// keeps stale handles free to carry.
		if c := r.ccq.pop(); c != nil {
			for _, h := range c.tags {
				if st.Valid(h) && st.FirstRead(h) < 0 && !st.Seen(r.id, h) {
					r.cand = append(r.cand, uint64(h))
				}
			}
			est = c.est
			depth = c.depth
			r.ccq.recycle(c)
		} else if r.pendingNewcomers() > 0 {
			n := r.pendingNewcomers()
			if n > batch {
				n = batch
			}
			for _, h := range r.newcomers[r.newHead : r.newHead+n] {
				if st.Valid(h) && st.FirstRead(h) < 0 && !st.Seen(r.id, h) {
					r.cand = append(r.cand, uint64(h))
				}
			}
			r.newHead += n
			r.compactNewcomers()
			// The drained batch size is the discovery estimate: newcomers
			// are unresolved by definition, so the count is exact.
			est = float64(n)
			depth = 0
		} else {
			break
		}
		if len(r.cand) == 0 {
			continue // every queued handle departed or resolved: no airtime
		}
		F := frameSize(est, maxFrame)
		fr.Build(r.cand, F, &r.rng)
		for s := 0; s < F; s++ {
			bucket := fr.Bucket(s)
			switch len(bucket) {
			case 0:
				spent += costs.idle
				r.census.Idle++
			case 1:
				spent += costs.single
				r.census.Single++
				h := Handle(bucket[0])
				st.SetSeen(r.id, h)
				r.reads = append(r.reads, readRec{h: h, at: start + spent})
			default:
				spent += costs.collided
				r.census.Collided++
				child := r.ccq.get()
				for _, w := range bucket {
					child.tags = append(child.tags, Handle(w))
				}
				child.est = schouteMultiplier
				child.depth = depth + 1
				r.ccq.push(child)
			}
		}
		r.census.Frames++
	}
	r.air += spent
}
