package scenario

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/deploy"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/prng"
	"repro/internal/sched"
	"repro/internal/signal"
	"repro/internal/sim"
	"repro/internal/timing"
)

// Options carries the engine's environment: none of it affects results.
type Options struct {
	// Scratch lends per-worker sim.RoundScratch (its IndexFrame) to the
	// reader sessions; nil allocates fresh scratch.
	Scratch *sim.ScratchPool
	// OnEpoch receives a progress snapshot every EpochsPerProgress
	// epochs, called from the engine goroutine between epochs.
	OnEpoch func(Progress)
}

// Run executes the scenario to completion with default options.
func Run(spec Spec) (*Result, error) {
	return RunContext(context.Background(), spec, Options{})
}

// engine is the wired-up run state.
type engine struct {
	spec  Spec
	floor *deploy.Floor
	store *Store
	wheel *Wheel
	rds   []readerState
	// groups[c] lists colour class c's reader IDs in ascending order —
	// the serial merge order that pins determinism.
	groups [][]int
	costs  slotCosts

	// Coverage index: the arena divided into read-range-sized cells,
	// each listing the readers whose disc intersects it, so an arrival
	// touches O(covering readers) instead of O(readers).
	cellSize    float64
	cells       int
	cellReaders [][]int32

	// covered[slot] records whether the tag admitted into the slot is
	// inside any reader's range; only covered tags can ever be read,
	// so only they count toward the miss rate.
	covered []bool

	arrRng      prng.Source
	nextArrival float64

	newlyRead []Handle // per-group merge scratch

	res        *Result
	epochReads int64
	epochLat   float64
}

// RunContext executes the scenario, stopping early (with the partial
// result and ctx.Err) if ctx is cancelled at an epoch boundary.
func RunContext(ctx context.Context, spec Spec, opts Options) (*Result, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}

	e := &engine{spec: spec, res: &Result{Spec: spec}}

	e.floor = deploy.NewFloor(spec.SideMetres)
	e.floor.PlaceReadersGrid(spec.Readers, spec.ReadRangeMetres)
	adj := e.floor.InterferenceGraph(spec.InterferenceRadiusMetres)
	colors, ncolors := deploy.ColorReaders(adj)
	e.res.Colors = ncolors
	e.groups = make([][]int, ncolors)
	for id := 0; id < spec.Readers; id++ {
		c := colors[id]
		e.groups[c] = append(e.groups[c], id)
	}

	e.buildCoverageIndex()

	det := detect.NewQCD(spec.Strength, spec.IDBits)
	tm := timing.Model{TauMicros: spec.TauMicros}
	e.costs = slotCosts{
		idle:     tm.SlotMicros(det, signal.Idle),
		single:   tm.SlotMicros(det, signal.Single),
		collided: tm.SlotMicros(det, signal.Collided),
	}

	// Streams derive from the master seed in a fixed order — reader 0..R-1
	// first, the arrival stream last — so every draw is pinned by the
	// spec alone, never by scheduling.
	master := prng.New(spec.Seed)
	e.rds = make([]readerState, spec.Readers)
	for i := range e.rds {
		e.rds[i].id = i
		e.rds[i].ccq.wSize = spec.PriorityWeightSize
		e.rds[i].ccq.wDepth = spec.PriorityWeightDepth
		master.SplitInto(&e.rds[i].rng)
	}
	master.SplitInto(&e.arrRng)
	e.nextArrival = e.arrRng.Exp(1e6 / spec.ArrivalsPerSecond)

	expectedLive := int(spec.ArrivalsPerSecond*spec.DwellMicros/1e6) + 64
	e.store = NewStore(spec.Readers, expectedLive+expectedLive/2)
	dwellTicks := int(spec.DwellMicros/spec.TickMicros) + 1
	buckets := 2*dwellTicks + 64
	if buckets > 1<<15 {
		buckets = 1 << 15
	}
	e.wheel = NewWheel(spec.TickMicros, buckets)

	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	epochSpan := float64(ncolors) * spec.SessionMicros
	now := 0.0
	var err error
	for now < spec.DurationMicros {
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
			break
		}
		for c := 0; c < ncolors; c++ {
			groupStart := now + float64(c)*spec.SessionMicros
			e.advanceTo(groupStart)
			e.runGroup(e.groups[c], groupStart, workers, opts.Scratch)
			e.mergeGroup(e.groups[c])
		}
		now += epochSpan
		e.res.Epochs++
		if live := e.store.Len(); live > e.res.PeakLive {
			e.res.PeakLive = live
		}
		if e.res.Epochs%spec.EpochsPerProgress == 0 {
			e.emitProgress(now, opts.OnEpoch)
		}
	}
	e.res.SimMicros = now

	// Drain: fire every remaining departure so tags still in the field
	// classify by their read state, exactly as mobility.Run drains.
	e.wheel.Drain(e.onDepart)

	if e.res.Latency.N() > 0 {
		e.res.LatencyMeanMicros = e.res.Latency.Mean()
		e.res.LatencyMaxMicros = e.res.Latency.Max()
	}
	return e.res, err
}

// buildCoverageIndex precomputes, per read-range-sized cell, the readers
// whose disc intersects the cell's rectangle (distance from the reader
// to the rect at most the range).
func (e *engine) buildCoverageIndex() {
	e.cellSize = e.spec.ReadRangeMetres
	e.cells = int(math.Ceil(e.spec.SideMetres / e.cellSize))
	if e.cells < 1 {
		e.cells = 1
	}
	e.cellReaders = make([][]int32, e.cells*e.cells)
	for _, r := range e.floor.Readers {
		lo := func(v float64) int {
			c := int((v - r.Range) / e.cellSize)
			if c < 0 {
				c = 0
			}
			return c
		}
		hi := func(v float64) int {
			c := int((v + r.Range) / e.cellSize)
			if c > e.cells-1 {
				c = e.cells - 1
			}
			return c
		}
		for cx := lo(r.Pos.X); cx <= hi(r.Pos.X); cx++ {
			for cy := lo(r.Pos.Y); cy <= hi(r.Pos.Y); cy++ {
				x0, x1 := float64(cx)*e.cellSize, float64(cx+1)*e.cellSize
				y0, y1 := float64(cy)*e.cellSize, float64(cy+1)*e.cellSize
				dx := math.Max(0, math.Max(x0-r.Pos.X, r.Pos.X-x1))
				dy := math.Max(0, math.Max(y0-r.Pos.Y, r.Pos.Y-y1))
				if dx*dx+dy*dy <= r.Range*r.Range {
					i := cy*e.cells + cx
					e.cellReaders[i] = append(e.cellReaders[i], int32(r.ID))
				}
			}
		}
	}
}

// coveringReaders iterates the readers covering (x, y), via the cell
// index plus an exact range check.
func (e *engine) coveringReaders(x, y float64, visit func(id int32)) {
	cx, cy := int(x/e.cellSize), int(y/e.cellSize)
	if cx > e.cells-1 {
		cx = e.cells - 1
	}
	if cy > e.cells-1 {
		cy = e.cells - 1
	}
	for _, id := range e.cellReaders[cy*e.cells+cx] {
		r := e.floor.Readers[id]
		if r.Covers(deploy.Point{X: x, Y: y}) {
			visit(id)
		}
	}
}

// advanceTo moves the simulation clock to a group boundary: departures
// fire first (wheel order), then every arrival due by the boundary is
// admitted, in arrival order. Both sequences are single-threaded and
// fully determined by the spec.
func (e *engine) advanceTo(at float64) {
	e.wheel.AdvanceTo(at, e.onDepart)
	gap := 1e6 / e.spec.ArrivalsPerSecond
	for e.nextArrival <= at {
		e.admit(e.nextArrival)
		e.nextArrival += e.arrRng.Exp(gap)
	}
}

// admit brings one tag into the arena: position and dwell draws, store
// slot, newcomer push to every covering reader, departure scheduling.
func (e *engine) admit(arrive float64) {
	x := e.arrRng.Float64() * e.spec.SideMetres
	y := e.arrRng.Float64() * e.spec.SideMetres
	dwell := e.spec.DwellMicros
	if e.spec.ExponentialDwell {
		dwell = e.arrRng.Exp(dwell)
	}
	leave := arrive + dwell
	h := e.store.Alloc(float32(x), float32(y), arrive, leave)
	idx := int(h.index())
	for len(e.covered) <= idx {
		e.covered = append(e.covered, false)
	}
	ncov := 0
	e.coveringReaders(x, y, func(id int32) {
		e.rds[id].pushNewcomer(h)
		ncov++
	})
	e.covered[idx] = ncov > 0
	e.res.Arrived++
	if ncov > 0 {
		e.res.Covered++
	}
	e.wheel.Schedule(leave, uint64(h))
}

// onDepart retires a departing tag: a covered tag that was never read
// counts as missed (reads were already counted at merge time), its seen
// bits clear so the slot recycles clean, and the slot returns to the
// free list.
func (e *engine) onDepart(payload uint64) {
	h := Handle(payload)
	idx := int(h.index())
	if e.covered[idx] {
		if e.store.FirstRead(h) < 0 {
			e.res.Missed++
		}
		x, y := e.store.Pos(h)
		e.coveringReaders(float64(x), float64(y), func(id int32) {
			e.store.ClearSeen(int(id), h)
		})
	}
	e.store.Release(h)
}

// runGroup executes one colour class's sessions. Readers of one class
// are non-interfering by construction, and each session touches only
// its own reader's state plus read-only store columns, so they run
// concurrently; results cannot depend on the worker count because every
// reader consumes only its own PRNG stream.
func (e *engine) runGroup(group []int, start float64, workers int, pool *sim.ScratchPool) {
	if workers > len(group) {
		workers = len(group)
	}
	if workers <= 1 {
		rs := pool.Get()
		for _, id := range group {
			e.runSession(id, start, rs.IndexFrame())
		}
		pool.Put(rs)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs := pool.Get()
			defer pool.Put(rs)
			fr := rs.IndexFrame()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(group) {
					return
				}
				e.runSession(group[i], start, fr)
			}
		}()
	}
	wg.Wait()
}

func (e *engine) runSession(id int, start float64, fr *sched.IndexFrame) {
	e.rds[id].session(e.store, fr, e.costs, start, e.spec.SessionMicros,
		e.spec.NewcomerBatch, e.spec.MaxFrame)
}

// mergeGroup folds the group's sessions back into global state, in
// ascending reader order. Phase one applies the minimum read time per
// tag (two same-colour readers can both read a tag in one window);
// phase two folds first-read latency for tags read for the first time,
// in discovery order. Census and airtime fold in the same pass.
func (e *engine) mergeGroup(group []int) {
	e.newlyRead = e.newlyRead[:0]
	for _, id := range group {
		r := &e.rds[id]
		for _, rec := range r.reads {
			if !e.store.Valid(rec.h) || rec.at > e.store.LeaveAt(rec.h) {
				continue // departed mid-window: the read came too late
			}
			cur := e.store.FirstRead(rec.h)
			if cur < 0 {
				e.newlyRead = append(e.newlyRead, rec.h)
				e.store.SetFirstRead(rec.h, rec.at)
			} else if rec.at < cur {
				e.store.SetFirstRead(rec.h, rec.at)
			}
		}
		r.reads = r.reads[:0]
		e.res.Census.Add(r.census)
		r.census = metrics.Census{}
		e.res.AirtimeMicros += r.air
		r.air = 0
	}
	for _, h := range e.newlyRead {
		lat := e.store.FirstRead(h) - e.store.ArriveAt(h)
		e.res.Latency.Add(lat)
		e.res.Read++
		e.epochReads++
		e.epochLat += lat
	}
}

// emitProgress publishes one progress snapshot and resets the
// interval's read tallies.
func (e *engine) emitProgress(now float64, fn func(Progress)) {
	if fn == nil {
		e.epochReads, e.epochLat = 0, 0
		return
	}
	span := float64(e.spec.EpochsPerProgress) * float64(e.res.Colors) * e.spec.SessionMicros
	p := Progress{
		Epoch:      e.res.Epochs,
		SimMicros:  now,
		Live:       e.store.Len(),
		Arrived:    e.res.Arrived,
		Read:       e.res.Read,
		Missed:     e.res.Missed,
		EpochReads: e.epochReads,
		MissRate:   e.res.MissRate(),
	}
	if e.epochReads > 0 {
		p.EpochMeanLatencyMicros = e.epochLat / float64(e.epochReads)
	}
	if span > 0 {
		p.ReadsPerSecond = float64(e.epochReads) / (span / 1e6)
	}
	e.epochReads, e.epochLat = 0, 0
	fn(p)
}
