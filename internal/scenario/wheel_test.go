package scenario

import (
	"testing"
)

// collect returns a fire callback appending payloads to out.
func collect(out *[]uint64) func(uint64) {
	return func(p uint64) { *out = append(*out, p) }
}

func TestWheelFiresInTickOrder(t *testing.T) {
	w := NewWheel(10, 8)
	w.Schedule(95, 3) // tick 9
	w.Schedule(25, 1) // tick 2
	w.Schedule(50, 2) // tick 5
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
	var got []uint64
	w.AdvanceTo(55, collect(&got))
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("fired %v, want [1 2]", got)
	}
	got = got[:0]
	w.AdvanceTo(100, collect(&got))
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("fired %v, want [3]", got)
	}
	if w.Len() != 0 {
		t.Fatalf("Len = %d after firing everything", w.Len())
	}
}

// TestWheelWraparound schedules events several laps apart in the same
// bucket: the near event must fire without disturbing the far one, and
// the far one must survive the laps in between.
func TestWheelWraparound(t *testing.T) {
	w := NewWheel(10, 4) // lap = 4 ticks = 40 μs
	w.Schedule(15, 1)    // tick 1
	w.Schedule(55, 2)    // tick 5: same bucket, one lap later
	w.Schedule(95, 3)    // tick 9: same bucket, two laps later
	var got []uint64
	w.AdvanceTo(20, collect(&got))
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("lap 0 fired %v, want [1]", got)
	}
	got = got[:0]
	w.AdvanceTo(60, collect(&got))
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("lap 1 fired %v, want [2]", got)
	}
	got = got[:0]
	w.AdvanceTo(200, collect(&got))
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("lap 2 fired %v, want [3]", got)
	}
}

// TestWheelSameTick pins behaviour within one tick: insertion order is
// firing order, and Cancel removes exactly one matching event without
// perturbing the order of the rest.
func TestWheelSameTick(t *testing.T) {
	w := NewWheel(10, 8)
	w.Schedule(42, 7)
	w.Schedule(43, 8)
	w.Schedule(44, 7) // duplicate payload, same tick
	if !w.Cancel(45, 7) {
		t.Fatal("Cancel found no match")
	}
	if w.Cancel(45, 99) {
		t.Fatal("Cancel matched a payload never scheduled")
	}
	if w.Len() != 2 {
		t.Fatalf("Len = %d, want 2", w.Len())
	}
	var got []uint64
	w.AdvanceTo(49, collect(&got))
	if len(got) != 2 || got[0] != 8 || got[1] != 7 {
		t.Fatalf("fired %v, want [8 7] (first 7 cancelled, order stable)", got)
	}
}

// TestWheelZeroDwell: an event scheduled at (or before) already-visited
// time must not vanish — it clamps forward and fires on the next
// advance, exactly once.
func TestWheelZeroDwell(t *testing.T) {
	w := NewWheel(10, 8)
	var got []uint64
	w.AdvanceTo(50, collect(&got)) // visit ticks 0..5
	w.Schedule(50, 1)              // inside an already-visited tick
	w.Schedule(0, 2)               // far in the past
	w.AdvanceTo(50, collect(&got)) // same target: nothing new to visit
	if len(got) != 0 {
		t.Fatalf("fired %v before the clock moved", got)
	}
	w.AdvanceTo(60, collect(&got))
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("fired %v, want [1 2]", got)
	}
	got = got[:0]
	w.AdvanceTo(200, collect(&got))
	if len(got) != 0 {
		t.Fatalf("events fired twice: %v", got)
	}
}

// TestWheelDrain: Drain must flush clamped events sitting past any
// real timestamp — the zero-dwell end-of-run case.
func TestWheelDrain(t *testing.T) {
	w := NewWheel(10, 4)
	w.AdvanceTo(100, func(uint64) {})
	w.Schedule(5, 1)   // clamps to the cursor, tick 11
	w.Schedule(500, 2) // many laps ahead
	var got []uint64
	w.Drain(collect(&got))
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("drained %v, want [1 2]", got)
	}
	if w.Len() != 0 {
		t.Fatalf("Len = %d after Drain", w.Len())
	}
}

func TestWheelSchedulePanicsOnBadTick(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWheel accepted a non-positive tick")
		}
	}()
	NewWheel(0, 8)
}
