// Package core is the canonical home of the paper's primary contribution:
// the Quick Collision Detection (QCD) scheme and the collision-detector
// abstraction it plugs into. The implementation lives in
// repro/internal/detect; this package re-exports it so the repository's
// mandated layout (internal/core = the contribution) holds.
package core

import (
	"repro/internal/crc"
	"repro/internal/detect"
)

// Detector is the collision-detection scheme interface; see
// repro/internal/detect.Detector.
type Detector = detect.Detector

// QCD is the paper's Quick Collision Detection scheme.
type QCD = detect.QCD

// CRCCD is the CRC-based baseline scheme.
type CRCCD = detect.CRCCD

// Oracle is the idealised ablation detector.
type Oracle = detect.Oracle

// NewQCD returns a QCD detector of the given strength over idBits-bit IDs.
func NewQCD(strength, idBits int) *QCD { return detect.NewQCD(strength, idBits) }

// NewCRCCD returns a CRC-CD detector with the given CRC parameters.
func NewCRCCD(params crc.Params, idBits int) *CRCCD { return detect.NewCRCCD(params, idBits) }

// NewOracle returns the idealised detector.
func NewOracle(contentionBits, idBits int) *Oracle { return detect.NewOracle(contentionBits, idBits) }
