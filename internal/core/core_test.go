package core

import (
	"testing"

	"repro/internal/crc"
	"repro/internal/signal"
)

// The core package is a re-export surface; these tests pin that the
// canonical constructors build the same schemes as internal/detect.
func TestConstructors(t *testing.T) {
	var d Detector = NewQCD(8, 64)
	if d.Name() != "QCD-8" || d.ContentionBits() != 16 {
		t.Errorf("QCD via core = %s/%d", d.Name(), d.ContentionBits())
	}
	d = NewCRCCD(crc.CRC16EPC, 64)
	if d.ContentionBits() != 80 {
		t.Errorf("CRC-CD via core = %d bits", d.ContentionBits())
	}
	d = NewOracle(1, 64)
	if d.Classify(signal.Reception{Responders: 3}) != signal.Collided {
		t.Error("oracle via core misclassifies")
	}
}
