package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/rescache"
	"repro/internal/sim"
)

// Runner schedules sweep cells across a shared jobs pool. Before a cell
// runs, the result cache is consulted (a hit short-circuits the cell);
// cells inside one sweep that canonicalise to the same configuration
// coalesce onto a single computation; computed results are published
// back to the cache, so a later sweep — or a later single job — hitting
// the same configuration is served from memory. Per-worker round
// scratch comes from the shared ScratchPool, so a thousand-cell sweep
// allocates its working sets roughly Workers times, not Cells times.
//
// The zero value is not usable: Pool is required; everything else is
// optional.
type Runner struct {
	// Pool runs the cells. Required.
	Pool *jobs.Pool
	// Cache, when set, dedups cells against previously computed results.
	Cache *rescache.Cache
	// Origin attributes the runner's cache lookups (default "sweep").
	Origin string
	// Scratch, when set, recycles sim.RoundScratch across cells.
	Scratch *sim.ScratchPool
	// Window bounds how many cells one sweep keeps in flight on the
	// pool (default: pool workers + 2), so a huge sweep cannot occupy
	// the whole bounded queue and starve single-job traffic.
	Window int
	// CacheLookup, when set, observes the duration of every result-cache
	// lookup the runner performs.
	CacheLookup *obs.Histogram
	// WindowWait, when set, observes time spent waiting for a slot in
	// the per-sweep in-flight window — the sweep-side saturation signal.
	WindowWait *obs.Histogram
	// OnCellDone, when set, is called once per cell as it reaches a
	// terminal state (from the feeder or a waiter goroutine; keep it
	// fast and do not call back into the sweep).
	OnCellDone func(CellDone)

	started   atomic.Uint64
	finished  atomic.Uint64
	run       atomic.Uint64
	cached    atomic.Uint64
	coalesced atomic.Uint64
	failed    atomic.Uint64
	canceled  atomic.Uint64
}

// Register exposes the runner's series on reg under prefix (for example
// "rfidd_sweep" yields rfidd_sweep_sweeps_started_total, ...).
func (r *Runner) Register(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+"_sweeps_started_total", "Sweeps accepted and scheduled.", r.started.Load)
	reg.CounterFunc(prefix+"_sweeps_finished_total", "Sweeps that reached a terminal state.", r.finished.Load)
	reg.CounterFunc(prefix+"_cells_run_total", "Sweep cells computed on the worker pool.", r.run.Load)
	reg.CounterFunc(prefix+"_cells_cached_total", "Sweep cells short-circuited by the result cache.", r.cached.Load)
	reg.CounterFunc(prefix+"_cells_coalesced_total", "Duplicate cells folded onto an identical cell of the same sweep.", r.coalesced.Load)
	reg.CounterFunc(prefix+"_cells_failed_total", "Sweep cells that failed permanently.", r.failed.Load)
	reg.CounterFunc(prefix+"_cells_canceled_total", "Sweep cells canceled before completion.", r.canceled.Load)
}

func (r *Runner) origin() string {
	if r.Origin == "" {
		return "sweep"
	}
	return r.Origin
}

func (r *Runner) window() int {
	if r.Window > 0 {
		return r.Window
	}
	return r.Pool.Stats().Workers + 2
}

// CellState is the live record of one cell: the expanded Cell plus its
// content key, lifecycle status, result provenance and outcome. Cells
// reuse the jobs lifecycle vocabulary — queued, running, done, failed,
// canceled.
type CellState struct {
	Cell
	// Key is the cell's rescache content address.
	Key string
	// Status is the cell's lifecycle state.
	Status jobs.Status
	// Cached marks a cell served from the result cache without running.
	Cached bool
	// DupOf is the index of the earlier identical cell this one
	// coalesced onto, or -1 for a primary cell.
	DupOf int
	// Result is the report.AggregateSummary encoding, byte-identical to
	// the single-job result for the same canonical configuration.
	Result json.RawMessage
	// Err is the failure message for failed cells.
	Err string
}

// CellDone describes one cell's terminal outcome for the OnCellDone
// hook: a copy of the terminal state plus the decomposed latencies of
// the underlying job. Cached, coalesced and never-started cells report
// zero durations.
type CellDone struct {
	SweepID   string
	State     CellState
	QueueWait time.Duration
	RunTime   time.Duration
}

// Counts summarises a sweep's cell outcomes.
type Counts struct {
	Cells     int `json:"cells"`
	Done      int `json:"done"` // includes cached and coalesced cells
	Failed    int `json:"failed"`
	Canceled  int `json:"canceled"`
	Cached    int `json:"cached"`
	Coalesced int `json:"coalesced"`
}

// Terminal reports whether every cell reached a terminal state.
func (c Counts) Terminal() bool { return c.Done+c.Failed+c.Canceled == c.Cells }

// Snapshot is a copy of a sweep's externally visible state.
type Snapshot struct {
	ID         string
	Name       string
	Axes       []string
	Status     jobs.Status // running | done | failed | canceled
	Counts     Counts
	CreatedAt  time.Time
	FinishedAt time.Time // zero until terminal
}

// Sweep is one scheduled grid. Create it with Runner.Start; it is safe
// for concurrent use.
type Sweep struct {
	id          string
	name        string
	axes        []string
	cellWorkers int
	pool        *jobs.Pool
	bus         *obs.Bus
	cancel      context.CancelFunc
	done        chan struct{}
	span        obs.SpanHandle  // the sweep-level span, ended in finish
	sctx        obs.SpanContext // parent context for per-cell spans

	mu         sync.Mutex
	cells      []CellState
	jobIDs     map[int]string // submitted primary cells, index → pool job id
	dups       map[int][]int  // primary index → coalesced cell indexes
	counts     Counts
	canceled   bool
	createdAt  time.Time
	finishedAt time.Time
}

// Start expands the spec and begins scheduling its cells. The returned
// sweep is already running; ctx cancellation (or Cancel) stops feeding
// new cells and cancels the ones in flight. bus, when non-nil, receives
// one "cell" event per cell state change and a terminal "sweep" event,
// and is closed when the sweep finishes.
func (r *Runner) Start(ctx context.Context, id string, spec Spec, bus *obs.Bus) (*Sweep, error) {
	if r.Pool == nil {
		return nil, errors.New("sweep: Runner.Pool is required")
	}
	cells, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	cellWorkers := spec.CellWorkers
	if cellWorkers < 1 {
		cellWorkers = 1
	}
	// The span context rides in on ctx (obs.WithSpan); only the trace
	// position is kept — the derived ctx below governs cancellation.
	span := obs.SpanFrom(ctx).Start("sweep", "sweep "+id)
	ctx, cancel := context.WithCancel(ctx)
	s := &Sweep{
		id:          id,
		name:        spec.Name,
		axes:        spec.AxisNames(),
		cellWorkers: cellWorkers,
		pool:        r.Pool,
		bus:         bus,
		cancel:      cancel,
		done:        make(chan struct{}),
		span:        span,
		sctx:        span.Context(),
		cells:       make([]CellState, len(cells)),
		jobIDs:      make(map[int]string),
		dups:        make(map[int][]int),
		counts:      Counts{Cells: len(cells)},
		createdAt:   time.Now(),
	}
	firstByKey := make(map[string]int, len(cells))
	for i, c := range cells {
		key, err := rescache.ConfigKey(c.Config)
		if err != nil {
			cancel()
			if span.Live() {
				span.End(obs.SA("status", "failed"))
			} else {
				span.End()
			}
			return nil, fmt.Errorf("sweep: keying cell %d: %w", i, err)
		}
		st := CellState{Cell: c, Key: key, Status: jobs.StatusQueued, DupOf: -1}
		if first, dup := firstByKey[key]; dup {
			st.DupOf = first
			s.dups[first] = append(s.dups[first], i)
		} else {
			firstByKey[key] = i
		}
		s.cells[i] = st
	}
	r.started.Add(1)
	go s.run(ctx, r)
	return s, nil
}

// run is the sweep's feeder: it walks the cells in sweep order, serves
// cache hits inline, and keeps at most Window primaries in flight on
// the pool. It returns once every cell is terminal.
func (s *Sweep) run(ctx context.Context, r *Runner) {
	origin := r.origin()
	sem := make(chan struct{}, r.window())
	var wg sync.WaitGroup
	for i := range s.cells {
		s.mu.Lock()
		dup := s.cells[i].DupOf >= 0
		s.mu.Unlock()
		if dup {
			continue // resolved when its primary finishes
		}
		if ctx.Err() != nil {
			s.completeCellSpan(i, "canceled", time.Now())
			s.finishCell(r, i, jobs.StatusCanceled, nil, context.Canceled, false, 0, 0)
			continue
		}
		if r.Cache != nil {
			lookStart := time.Now()
			v, hit := r.Cache.GetOrigin(s.cells[i].Key, origin)
			if r.CacheLookup != nil {
				r.CacheLookup.Observe(time.Since(lookStart).Seconds())
			}
			if hit {
				if body, ok := v.(json.RawMessage); ok {
					s.completeCellSpan(i, "cache", lookStart)
					s.finishCell(r, i, jobs.StatusDone, body, nil, true, 0, 0)
					continue
				}
			}
		}
		semStart := time.Now()
		select {
		case sem <- struct{}{}:
			if r.WindowWait != nil {
				r.WindowWait.Observe(time.Since(semStart).Seconds())
			}
		case <-ctx.Done():
			s.completeCellSpan(i, "canceled", semStart)
			s.finishCell(r, i, jobs.StatusCanceled, nil, context.Canceled, false, 0, 0)
			continue
		}
		jobID := s.id + "/c" + strconv.Itoa(i)
		cfg := s.cells[i].Config // canonical; fixed after Start
		runCfg := cfg
		runCfg.Workers = s.cellWorkers
		idx := i
		fn := func(jctx context.Context) (any, error) {
			s.markRunning(idx)
			agg, err := sim.RunContextPool(jctx, runCfg, r.Scratch)
			if err != nil {
				return nil, err
			}
			// Exactly the single-job encoding of the canonical config, so
			// sweep cells and single submissions are byte-identical and
			// cache-compatible.
			b, err := json.Marshal(report.NewAggregateSummary(cfg, agg))
			if err != nil {
				return nil, err
			}
			return json.RawMessage(b), nil
		}
		cellSpan := s.sctx.Start("cell", s.cells[i].Label)
		if err := s.submit(ctx, r, jobID, fn, cellSpan.Context()); err != nil {
			<-sem
			status := jobs.StatusFailed
			if errors.Is(err, context.Canceled) || errors.Is(err, jobs.ErrClosed) {
				status = jobs.StatusCanceled
			}
			s.endCellSpan(cellSpan, i, string(status), "submit-error")
			s.finishCell(r, i, status, nil, err, false, 0, 0)
			continue
		}
		s.mu.Lock()
		s.jobIDs[i] = jobID
		s.mu.Unlock()
		wg.Add(1)
		go func(i int, key, jobID string, cellSpan obs.SpanHandle) {
			defer wg.Done()
			defer func() { <-sem }()
			// Terminal state is guaranteed: canceled jobs finish fast and
			// pool shutdown drains the queue, so waiting on the background
			// context cannot leak.
			snap, err := s.pool.Wait(context.Background(), jobID)
			s.mu.Lock()
			delete(s.jobIDs, i)
			s.mu.Unlock()
			s.pool.Forget(jobID) // keep the pool index bounded under cell streams
			var qw, rt time.Duration
			if !snap.StartedAt.IsZero() {
				qw = snap.StartedAt.Sub(snap.EnqueuedAt)
				if !snap.FinishedAt.IsZero() {
					rt = snap.FinishedAt.Sub(snap.StartedAt)
				}
			}
			if err != nil {
				s.endCellSpan(cellSpan, i, string(jobs.StatusFailed), "run")
				s.finishCell(r, i, jobs.StatusFailed, nil, err, false, qw, rt)
				return
			}
			s.endCellSpan(cellSpan, i, string(snap.Status), "run")
			switch snap.Status {
			case jobs.StatusDone:
				body, ok := snap.Result.(json.RawMessage)
				if !ok {
					s.finishCell(r, i, jobs.StatusFailed, nil, fmt.Errorf("sweep: cell %d returned %T", i, snap.Result), false, qw, rt)
					return
				}
				if r.Cache != nil {
					r.Cache.Put(key, body)
				}
				s.finishCell(r, i, jobs.StatusDone, body, nil, false, qw, rt)
			case jobs.StatusCanceled:
				s.finishCell(r, i, jobs.StatusCanceled, nil, snap.Err, false, qw, rt)
			default:
				s.finishCell(r, i, jobs.StatusFailed, nil, snap.Err, false, qw, rt)
			}
		}(i, s.cells[i].Key, jobID, cellSpan)
	}
	wg.Wait()
	s.finish(r)
}

// completeCellSpan records a span for a cell that never ran on the
// pool: cache hits span the lookup, canceled cells get a zero-duration
// marker. No-op when the sweep carries no trace context.
func (s *Sweep) completeCellSpan(i int, disposition string, start time.Time) {
	if !s.sctx.Valid() {
		return
	}
	s.sctx.Complete("cell", s.cells[i].Label, start, time.Now(),
		obs.SA("cell", i), obs.SA("disposition", disposition))
}

// endCellSpan closes a primary cell's live span with its outcome.
func (s *Sweep) endCellSpan(h obs.SpanHandle, i int, status, disposition string) {
	if h.Live() {
		h.End(obs.SA("cell", i), obs.SA("status", status), obs.SA("disposition", disposition))
		return
	}
	h.End()
}

// submit enqueues the cell job, waiting out transient queue-full
// rejections so a sweep larger than the bounded queue still drains.
// The cell span context sc parents the job's queue-wait and run spans.
func (s *Sweep) submit(ctx context.Context, r *Runner, id string, fn jobs.Func, sc obs.SpanContext) error {
	tctx := obs.WithSpan(context.Background(), sc)
	backoff := 2 * time.Millisecond
	for {
		err := r.Pool.SubmitTraced(tctx, id, fn)
		if err == nil || !errors.Is(err, jobs.ErrQueueFull) {
			return err
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return context.Canceled
		}
		if backoff < 128*time.Millisecond {
			backoff *= 2
		}
	}
}

// markRunning flips a cell to running and publishes its progress event.
func (s *Sweep) markRunning(i int) {
	s.mu.Lock()
	if s.cells[i].Status != jobs.StatusQueued {
		s.mu.Unlock()
		return
	}
	s.cells[i].Status = jobs.StatusRunning
	ev := s.cellEventLocked(i)
	s.mu.Unlock()
	s.bus.Publish("cell", ev)
}

// finishCell records one primary cell's terminal state, resolves the
// duplicates coalesced onto it, publishes their events, and bumps the
// runner's outcome counters. qw and rt decompose the underlying job's
// latency for the OnCellDone hook (zero when the cell never ran).
func (s *Sweep) finishCell(r *Runner, i int, status jobs.Status, body json.RawMessage, err error, fromCache bool, qw, rt time.Duration) {
	s.mu.Lock()
	if s.cells[i].Status.Terminal() {
		s.mu.Unlock()
		return
	}
	events := make([]map[string]any, 0, 1+len(s.dups[i]))
	dones := make([]CellDone, 0, 1+len(s.dups[i]))
	terminate := func(idx int, cached bool, qw, rt time.Duration) {
		c := &s.cells[idx]
		c.Status = status
		c.Cached = cached
		c.Result = body
		if err != nil {
			c.Err = err.Error()
		}
		switch status {
		case jobs.StatusDone:
			s.counts.Done++
		case jobs.StatusCanceled:
			s.counts.Canceled++
			r.canceled.Add(1)
		default:
			s.counts.Failed++
			r.failed.Add(1)
		}
		events = append(events, s.cellEventLocked(idx))
		if r.OnCellDone != nil {
			dones = append(dones, CellDone{SweepID: s.id, State: *c, QueueWait: qw, RunTime: rt})
		}
	}
	terminate(i, fromCache, qw, rt)
	if status == jobs.StatusDone && !fromCache {
		r.run.Add(1)
	}
	if fromCache {
		s.counts.Cached++
		r.cached.Add(1)
	}
	for _, di := range s.dups[i] {
		s.counts.Coalesced++
		r.coalesced.Add(1)
		terminate(di, false, 0, 0)
		if s.sctx.Valid() {
			now := time.Now()
			s.sctx.Complete("cell", s.cells[di].Label, now, now,
				obs.SA("cell", di), obs.SA("disposition", "coalesced"), obs.SA("dup_of", i))
		}
	}
	s.mu.Unlock()
	for _, ev := range events {
		s.bus.Publish("cell", ev)
	}
	for _, d := range dones {
		r.OnCellDone(d)
	}
}

// cellEventLocked assembles one cell progress event; s.mu must be held.
func (s *Sweep) cellEventLocked(i int) map[string]any {
	c := &s.cells[i]
	ev := map[string]any{
		"sweep":  s.id,
		"cell":   i,
		"label":  c.Label,
		"status": string(c.Status),
		"done":   s.counts.Done,
		"cells":  s.counts.Cells,
	}
	if c.Cached {
		ev["cached"] = true
	}
	if c.DupOf >= 0 {
		ev["coalesced_onto"] = c.DupOf
	}
	if c.Err != "" {
		ev["error"] = c.Err
	}
	return ev
}

// finish seals the sweep: terminal status, the "sweep" event, bus
// closure and the done signal. The sweep span ends first — a client
// that polls for the terminal status and immediately fetches the trace
// must find the span already recorded.
func (s *Sweep) finish(r *Runner) {
	s.mu.Lock()
	counts := s.counts
	status := terminalStatus(s.canceled, counts)
	s.mu.Unlock()
	if s.span.Live() {
		s.span.End(obs.SA("status", string(status)), obs.SA("cells", counts.Cells),
			obs.SA("cached", counts.Cached), obs.SA("coalesced", counts.Coalesced),
			obs.SA("failed", counts.Failed), obs.SA("canceled", counts.Canceled))
	} else {
		s.span.End()
	}
	s.mu.Lock()
	s.finishedAt = time.Now()
	ev := map[string]any{
		"sweep":     s.id,
		"status":    string(status),
		"cells":     s.counts.Cells,
		"done":      s.counts.Done,
		"failed":    s.counts.Failed,
		"canceled":  s.counts.Canceled,
		"cached":    s.counts.Cached,
		"coalesced": s.counts.Coalesced,
	}
	s.mu.Unlock()
	r.finished.Add(1)
	s.bus.Publish("sweep", ev)
	s.bus.Close()
	close(s.done)
}

// statusLocked derives the sweep-level status; s.mu must be held.
func (s *Sweep) statusLocked() jobs.Status {
	if !s.finishedAt.IsZero() {
		return terminalStatus(s.canceled, s.counts)
	}
	return jobs.StatusRunning
}

// terminalStatus folds cell outcomes into the sweep-level terminal
// status.
func terminalStatus(canceled bool, c Counts) jobs.Status {
	switch {
	case canceled || c.Canceled > 0:
		return jobs.StatusCanceled
	case c.Failed > 0:
		return jobs.StatusFailed
	default:
		return jobs.StatusDone
	}
}

// ID returns the sweep's identifier.
func (s *Sweep) ID() string { return s.id }

// Bus returns the sweep's event bus (nil when none was attached).
func (s *Sweep) Bus() *obs.Bus { return s.bus }

// Snapshot returns a copy of the sweep's summary state.
func (s *Sweep) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Snapshot{
		ID:         s.id,
		Name:       s.name,
		Axes:       append([]string(nil), s.axes...),
		Status:     s.statusLocked(),
		Counts:     s.counts,
		CreatedAt:  s.createdAt,
		FinishedAt: s.finishedAt,
	}
}

// Cells returns copies of the cell records, optionally filtered to one
// status ("" returns all), in sweep order.
func (s *Sweep) Cells(status jobs.Status) []CellState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]CellState, 0, len(s.cells))
	for _, c := range s.cells {
		if status != "" && c.Status != status {
			continue
		}
		out = append(out, c)
	}
	return out
}

// Cancel stops feeding new cells and cancels the ones in flight. Safe
// to call repeatedly and after completion.
func (s *Sweep) Cancel() {
	s.mu.Lock()
	if s.finishedAt.IsZero() {
		s.canceled = true
	}
	ids := make([]string, 0, len(s.jobIDs))
	for _, id := range s.jobIDs {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	s.cancel() // stops the feeder
	for _, id := range ids {
		s.pool.Cancel(id)
	}
}

// Wait blocks until every cell is terminal or ctx expires.
func (s *Sweep) Wait(ctx context.Context) error {
	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Done returns a channel closed once the sweep is terminal.
func (s *Sweep) Done() <-chan struct{} { return s.done }

// MergedTable renders the merged paper-style output of every completed
// cell, in sweep order: one row per cell with its axis coordinates and
// headline metrics, a provenance column, and a note per failed or
// canceled cell. Callers take Table.Render() or Table.CSV() from it.
func (s *Sweep) MergedTable() (*report.Table, error) {
	s.mu.Lock()
	title := s.name
	if title == "" {
		title = s.id
	}
	rows := make([]report.SweepRow, 0, len(s.cells))
	var notes []string
	for _, c := range s.cells {
		switch {
		case c.Status == jobs.StatusDone && len(c.Result) > 0:
			var sum report.AggregateSummary
			if err := json.Unmarshal(c.Result, &sum); err != nil {
				s.mu.Unlock()
				return nil, fmt.Errorf("sweep: decoding cell %d result: %w", c.Index, err)
			}
			src := "run"
			switch {
			case c.Cached:
				src = "cache"
			case c.DupOf >= 0:
				src = "coalesced"
			}
			rows = append(rows, report.SweepRow{Coords: c.Coords, Source: src, Summary: sum})
		case c.Status.Terminal():
			note := fmt.Sprintf("cell %d (%s) %s", c.Index, c.Label, c.Status)
			if c.Err != "" {
				note += ": " + c.Err
			}
			notes = append(notes, note)
		}
	}
	axes := append([]string(nil), s.axes...)
	s.mu.Unlock()
	t := report.NewSweepTable("sweep "+title, axes, rows)
	for _, n := range notes {
		t.AddNote("%s", n)
	}
	return t, nil
}
