// Package sweep turns parameter grids — the shape in which the paper
// reports every result (Tables V–IX, Figure 5) and the unit of work a
// heavy-traffic deployment actually receives — into first-class
// experiments. A Spec is a base sim.Config plus a list of axes; it
// expands deterministically into canonical per-cell configurations, and
// a Runner schedules those cells across a shared jobs pool with
// result-cache dedup, intra-sweep coalescing, per-worker scratch reuse
// and live per-cell progress events.
package sweep

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Axis field names. Integer fields take Ints or Range, string fields
// take Strings, "seed" takes Seeds (or Ints), and "case" takes Cases.
const (
	FieldTags      = "tags"      // population size n
	FieldFrame     = "frame"     // FSA frame size F
	FieldStrength  = "strength"  // QCD preamble strength l
	FieldRounds    = "rounds"    // Monte-Carlo repetitions
	FieldSeed      = "seed"      // master seed
	FieldAlgorithm = "algorithm" // identification engine
	FieldDetector  = "detector"  // collision detector
	FieldPolicy    = "policy"    // FSA frame policy
	FieldCRC       = "crc"       // CRC preset for crccd
	FieldMode      = "mode"      // simulation fidelity: exact | stat
	FieldCase      = "case"      // linked (tags, frame) pairs — the paper's Table VI cases
)

// Cell caps: a spec without MaxCells may expand to DefaultMaxCells
// cells; no spec may exceed HardMaxCells.
const (
	DefaultMaxCells = 4096
	HardMaxCells    = 1 << 16
)

// Spec describes one parameter-grid sweep: every cell starts from Base
// and overrides one value per axis. The grid is the Cartesian product
// of the axes, expanded row-major (the last axis varies fastest), so
// the cell order is a deterministic function of the spec alone.
type Spec struct {
	// Name labels the sweep in merged reports (optional).
	Name string `json:"name,omitempty"`
	// Base is the configuration template every cell is derived from.
	Base sim.Config `json:"base"`
	// Axes are the grid dimensions, outermost first. A spec with no
	// axes expands to the single cell Base.
	Axes []Axis `json:"axes"`
	// MaxCells caps the expansion (default DefaultMaxCells, hard limit
	// HardMaxCells); specs expanding beyond it are rejected whole.
	MaxCells int `json:"max_cells,omitempty"`
	// CellWorkers is the rounds-parallelism inside one cell (default 1:
	// sweeps parallelise across cells, on the pool's workers).
	CellWorkers int `json:"cell_workers,omitempty"`
}

// Axis is one grid dimension: a config field plus the values it takes.
// Exactly one of Ints, Strings, Seeds, Range, Cases must be set, and it
// must suit the field's type.
type Axis struct {
	Field   string   `json:"field"`
	Ints    []int    `json:"ints,omitempty"`
	Strings []string `json:"strings,omitempty"`
	Seeds   []uint64 `json:"seeds,omitempty"`
	Range   *Range   `json:"range,omitempty"`
	Cases   []Case   `json:"cases,omitempty"`
}

// Range is an inclusive integer progression: arithmetic with Step
// (default 1), or geometric with Mul (From, From·Mul, … ≤ To).
type Range struct {
	From int `json:"from"`
	To   int `json:"to"`
	Step int `json:"step,omitempty"`
	Mul  int `json:"mul,omitempty"`
}

// values materialises the progression.
func (r Range) values() []int {
	var out []int
	if r.Mul > 1 {
		for v := r.From; v <= r.To; v *= r.Mul {
			out = append(out, v)
		}
		return out
	}
	step := r.Step
	if step == 0 {
		step = 1
	}
	for v := r.From; v <= r.To; v += step {
		out = append(out, v)
	}
	return out
}

func (r Range) validate() error {
	if r.Mul != 0 && r.Step != 0 {
		return fmt.Errorf("range sets both step and mul")
	}
	if r.Mul != 0 {
		if r.Mul < 2 {
			return fmt.Errorf("range mul %d < 2", r.Mul)
		}
		if r.From < 1 {
			return fmt.Errorf("geometric range from %d < 1", r.From)
		}
	} else if r.Step < 0 {
		return fmt.Errorf("range step %d < 0", r.Step)
	}
	if r.To < r.From {
		return fmt.Errorf("range to %d < from %d", r.To, r.From)
	}
	return nil
}

// Case is one linked (tags, frame) setting, for axes whose values move
// several fields together — the paper's Table VI cases I–IV. A zero
// Frame keeps the base frame size.
type Case struct {
	Name  string `json:"name,omitempty"`
	Tags  int    `json:"tags"`
	Frame int    `json:"frame,omitempty"`
}

// coord is the case's single-cell label: its name, or "n<tags>".
func (c Case) coord() string {
	if c.Name != "" {
		return c.Name
	}
	return "n" + strconv.Itoa(c.Tags)
}

// intField reports whether the field takes integer values.
func intField(f string) bool {
	switch f {
	case FieldTags, FieldFrame, FieldStrength, FieldRounds, FieldSeed:
		return true
	}
	return false
}

// stringField reports whether the field takes string values.
func stringField(f string) bool {
	switch f {
	case FieldAlgorithm, FieldDetector, FieldPolicy, FieldCRC, FieldMode:
		return true
	}
	return false
}

// count returns the axis's value count, or an error when the axis is
// structurally invalid for its field.
func (a Axis) count() (int, error) {
	sources := 0
	for _, set := range []bool{len(a.Ints) > 0, len(a.Strings) > 0, len(a.Seeds) > 0, a.Range != nil, len(a.Cases) > 0} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return 0, fmt.Errorf("axis %q needs exactly one of ints, strings, seeds, range, cases", a.Field)
	}
	switch {
	case a.Field == FieldCase:
		if len(a.Cases) == 0 {
			return 0, fmt.Errorf("axis %q takes cases only", a.Field)
		}
		for _, c := range a.Cases {
			if c.Tags < 1 {
				return 0, fmt.Errorf("axis %q: case %q needs tags >= 1", a.Field, c.coord())
			}
		}
		return len(a.Cases), nil
	case stringField(a.Field):
		if len(a.Strings) == 0 {
			return 0, fmt.Errorf("axis %q takes strings only", a.Field)
		}
		return len(a.Strings), nil
	case intField(a.Field):
		if len(a.Strings) > 0 || len(a.Cases) > 0 {
			return 0, fmt.Errorf("axis %q takes ints, seeds or range only", a.Field)
		}
		if len(a.Seeds) > 0 && a.Field != FieldSeed {
			return 0, fmt.Errorf("axis %q takes ints or range only", a.Field)
		}
		if a.Range != nil {
			if err := a.Range.validate(); err != nil {
				return 0, fmt.Errorf("axis %q: %v", a.Field, err)
			}
			n := len(a.Range.values())
			if n == 0 {
				return 0, fmt.Errorf("axis %q: empty range", a.Field)
			}
			return n, nil
		}
		if len(a.Seeds) > 0 {
			return len(a.Seeds), nil
		}
		return len(a.Ints), nil
	default:
		return 0, fmt.Errorf("unknown axis field %q", a.Field)
	}
}

// coords returns the axis's per-value labels, in value order.
func (a Axis) coords() []string {
	switch {
	case len(a.Cases) > 0:
		out := make([]string, len(a.Cases))
		for i, c := range a.Cases {
			out[i] = c.coord()
		}
		return out
	case len(a.Strings) > 0:
		return a.Strings
	case len(a.Seeds) > 0:
		out := make([]string, len(a.Seeds))
		for i, s := range a.Seeds {
			out[i] = strconv.FormatUint(s, 10)
		}
		return out
	case a.Range != nil:
		vals := a.Range.values()
		out := make([]string, len(vals))
		for i, v := range vals {
			out[i] = strconv.Itoa(v)
		}
		return out
	default:
		out := make([]string, len(a.Ints))
		for i, v := range a.Ints {
			out[i] = strconv.Itoa(v)
		}
		return out
	}
}

// apply sets the axis's vi-th value on cfg.
func (a Axis) apply(cfg *sim.Config, vi int) {
	intVal := func() int {
		if a.Range != nil {
			return a.Range.values()[vi]
		}
		return a.Ints[vi]
	}
	switch a.Field {
	case FieldCase:
		c := a.Cases[vi]
		cfg.Tags = c.Tags
		if c.Frame != 0 {
			cfg.FrameSize = c.Frame
		}
	case FieldTags:
		cfg.Tags = intVal()
	case FieldFrame:
		cfg.FrameSize = intVal()
	case FieldStrength:
		cfg.Strength = intVal()
	case FieldRounds:
		cfg.Rounds = intVal()
	case FieldSeed:
		if len(a.Seeds) > 0 {
			cfg.Seed = a.Seeds[vi]
		} else {
			cfg.Seed = uint64(intVal())
		}
	case FieldAlgorithm:
		cfg.Algorithm = a.Strings[vi]
	case FieldDetector:
		cfg.Detector = a.Strings[vi]
	case FieldPolicy:
		cfg.FramePolicy = a.Strings[vi]
	case FieldCRC:
		cfg.CRCName = a.Strings[vi]
	case FieldMode:
		cfg.Mode = a.Strings[vi]
	}
}

// AxisNames returns the spec's axis fields in order — the coordinate
// column names of the merged output.
func (s Spec) AxisNames() []string {
	names := make([]string, len(s.Axes))
	for i, a := range s.Axes {
		names[i] = a.Field
	}
	return names
}

// CellCount returns the number of cells the spec expands to without
// materialising them.
func (s Spec) CellCount() (int, error) {
	total := 1
	for _, a := range s.Axes {
		n, err := a.count()
		if err != nil {
			return 0, err
		}
		total *= n
		if total > HardMaxCells {
			return 0, fmt.Errorf("sweep: grid exceeds the hard cap of %d cells", HardMaxCells)
		}
	}
	return total, nil
}

// Validate reports structural spec errors: unknown or duplicated axis
// fields, malformed value lists, and cell counts beyond the cap. Per-cell
// configuration errors surface from Expand.
func (s Spec) Validate() error {
	seen := make(map[string]bool, len(s.Axes))
	for _, a := range s.Axes {
		if seen[a.Field] {
			return fmt.Errorf("sweep: duplicate axis %q", a.Field)
		}
		seen[a.Field] = true
	}
	n, err := s.CellCount()
	if err != nil {
		return err
	}
	limit := s.MaxCells
	if limit == 0 {
		limit = DefaultMaxCells
	}
	if limit < 1 || limit > HardMaxCells {
		return fmt.Errorf("sweep: max_cells %d out of [1,%d]", s.MaxCells, HardMaxCells)
	}
	if n > limit {
		return fmt.Errorf("sweep: grid expands to %d cells, above the cap of %d", n, limit)
	}
	if s.CellWorkers < 0 {
		return fmt.Errorf("sweep: cell_workers %d < 0", s.CellWorkers)
	}
	return nil
}

// Cell is one expanded grid point: its index in sweep order, its
// coordinates (one per axis), a human label, and the canonical
// configuration it runs.
type Cell struct {
	Index  int        `json:"index"`
	Coords []string   `json:"coords,omitempty"`
	Label  string     `json:"label"`
	Config sim.Config `json:"config"`
}

// Expand materialises the grid in deterministic sweep order: the
// Cartesian product of the axes with the last axis varying fastest,
// every cell validated and in canonical form (defaults filled,
// scheduling-only fields cleared). Expanding the same spec always
// yields the same cells in the same order.
func (s Spec) Expand() ([]Cell, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	total, err := s.CellCount()
	if err != nil {
		return nil, err
	}
	coords := make([][]string, len(s.Axes))
	for i, a := range s.Axes {
		coords[i] = a.coords()
	}
	cells := make([]Cell, 0, total)
	idx := make([]int, len(s.Axes)) // odometer, last axis fastest
	for i := 0; i < total; i++ {
		cfg := s.Base
		cell := Cell{Index: i, Coords: make([]string, len(s.Axes))}
		var label strings.Builder
		for ai, a := range s.Axes {
			a.apply(&cfg, idx[ai])
			cell.Coords[ai] = coords[ai][idx[ai]]
			if ai > 0 {
				label.WriteByte(' ')
			}
			label.WriteString(a.Field)
			label.WriteByte('=')
			label.WriteString(cell.Coords[ai])
		}
		cell.Label = label.String()
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("sweep: cell %d (%s): %w", i, cell.Label, err)
		}
		cell.Config = cfg.Canonical()
		cells = append(cells, cell)
		for ai := len(idx) - 1; ai >= 0; ai-- {
			idx[ai]++
			if idx[ai] < len(coords[ai]) {
				break
			}
			idx[ai] = 0
		}
	}
	return cells, nil
}
