package sweep

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkSweepExpand tracks the cost of materialising a paper-sized
// grid (the Figure 5 shape: 4 cases × 3 strengths, ×8 seeds to give the
// odometer some depth). Guarded by the allocs gate in scripts/bench.sh.
func BenchmarkSweepExpand(b *testing.B) {
	spec := Spec{
		Base: sim.Config{Tags: 100, Seed: 1, Rounds: 10, Algorithm: sim.AlgFSA, FrameSize: 128, Detector: sim.DetQCD},
		Axes: []Axis{
			{Field: FieldCase, Cases: []Case{
				{Name: "I", Tags: 100, Frame: 128},
				{Name: "II", Tags: 300, Frame: 128},
				{Name: "III", Tags: 500, Frame: 256},
				{Name: "IV", Tags: 1000, Frame: 256},
			}},
			{Field: FieldStrength, Ints: []int{4, 8, 16}},
			{Field: FieldSeed, Range: &Range{From: 1, To: 8}},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cells, err := spec.Expand()
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != 96 {
			b.Fatalf("expanded to %d cells", len(cells))
		}
	}
}
