package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/rescache"
	"repro/internal/sim"
)

func testSpec() Spec {
	return Spec{
		Name: "t",
		Base: sim.Config{Tags: 30, Seed: 5, Rounds: 3, Algorithm: sim.AlgFSA, FrameSize: 16, Detector: sim.DetQCD, Strength: 4},
		Axes: []Axis{
			{Field: FieldCase, Cases: []Case{{Name: "I", Tags: 20, Frame: 16}, {Name: "II", Tags: 40, Frame: 16}}},
			{Field: FieldStrength, Ints: []int{4, 8}},
		},
	}
}

// runSweep starts a sweep on a fresh pool and waits it out.
func runSweep(t *testing.T, spec Spec, workers int, cache *rescache.Cache, r *Runner) *Sweep {
	t.Helper()
	pool := jobs.NewPool(jobs.Options{Workers: workers})
	t.Cleanup(func() { pool.Shutdown(context.Background()) })
	if r == nil {
		r = &Runner{}
	}
	r.Pool = pool
	r.Cache = cache
	r.Scratch = &sim.ScratchPool{}
	s, err := r.Start(context.Background(), "swp-test", spec, obs.NewBus(256))
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Wait(ctx); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	return s
}

func TestSweepDeterministicAcrossPoolWorkers(t *testing.T) {
	var results [][]json.RawMessage
	for _, workers := range []int{1, 4} {
		s := runSweep(t, testSpec(), workers, nil, nil)
		snap := s.Snapshot()
		if snap.Status != jobs.StatusDone {
			t.Fatalf("workers=%d: sweep status %s, counts %+v", workers, snap.Status, snap.Counts)
		}
		cells := s.Cells("")
		out := make([]json.RawMessage, len(cells))
		for i, c := range cells {
			if c.Index != i {
				t.Fatalf("workers=%d: cell order broken at %d (index %d)", workers, i, c.Index)
			}
			if c.Status != jobs.StatusDone || len(c.Result) == 0 {
				t.Fatalf("workers=%d: cell %d status %s", workers, i, c.Status)
			}
			out[i] = c.Result
		}
		results = append(results, out)
	}
	for i := range results[0] {
		if !bytes.Equal(results[0][i], results[1][i]) {
			t.Errorf("cell %d differs between Workers=1 and Workers=4:\n%s\n%s", i, results[0][i], results[1][i])
		}
	}
}

func TestSweepCellMatchesSingleRun(t *testing.T) {
	s := runSweep(t, testSpec(), 2, nil, nil)
	cells := s.Cells(jobs.StatusDone)
	if len(cells) != 4 {
		t.Fatalf("got %d done cells, want 4", len(cells))
	}
	for _, c := range cells {
		agg, err := sim.RunContext(context.Background(), c.Config)
		if err != nil {
			t.Fatalf("single run of cell %d: %v", c.Index, err)
		}
		want, err := json.Marshal(report.NewAggregateSummary(c.Config, agg))
		if err != nil {
			t.Fatalf("encoding single run: %v", err)
		}
		if !bytes.Equal(c.Result, want) {
			t.Errorf("cell %d result diverges from the single-job encoding:\n got %s\nwant %s", c.Index, c.Result, want)
		}
	}
}

func TestSweepCacheShortCircuitAndCoalesce(t *testing.T) {
	cache := rescache.New(64)
	r := &Runner{}
	// Duplicate strength values: cells 1 and 3 canonicalise identically
	// to cells 0 and 2, so they must coalesce without touching the cache
	// counters.
	spec := testSpec()
	spec.Axes[1] = Axis{Field: FieldStrength, Ints: []int{4, 4}}
	s := runSweep(t, spec, 2, cache, r)
	snap := s.Snapshot()
	if snap.Status != jobs.StatusDone {
		t.Fatalf("sweep status %s", snap.Status)
	}
	if snap.Counts.Coalesced != 2 {
		t.Errorf("coalesced = %d, want 2", snap.Counts.Coalesced)
	}
	if snap.Counts.Cached != 0 {
		t.Errorf("first sweep cached = %d, want 0", snap.Counts.Cached)
	}
	os := cache.OriginStats("sweep")
	// Exactly one lookup per primary cell — duplicates must not double
	// count.
	if os.Hits != 0 || os.Misses != 2 {
		t.Errorf("after first sweep: origin hits=%d misses=%d, want 0/2", os.Hits, os.Misses)
	}
	for _, c := range s.Cells("") {
		if c.Status != jobs.StatusDone || len(c.Result) == 0 {
			t.Fatalf("cell %d status %s", c.Index, c.Status)
		}
	}
	dups := s.Cells("")
	if dups[1].DupOf != 0 || dups[3].DupOf != 2 {
		t.Errorf("DupOf = [%d _ %d _], want coalescing onto 0 and 2", dups[1].DupOf, dups[3].DupOf)
	}
	if !bytes.Equal(dups[1].Result, dups[0].Result) {
		t.Error("coalesced cell result differs from its primary")
	}

	// The same spec again: every primary cell is now a cache hit.
	s2 := runSweep(t, spec, 2, cache, r)
	snap2 := s2.Snapshot()
	if snap2.Counts.Cached != 2 {
		t.Errorf("second sweep cached = %d, want 2", snap2.Counts.Cached)
	}
	os = cache.OriginStats("sweep")
	if os.Hits != 2 || os.Misses != 2 {
		t.Errorf("after second sweep: origin hits=%d misses=%d, want 2/2", os.Hits, os.Misses)
	}
	if !bytes.Equal(s2.Cells("")[0].Result, s.Cells("")[0].Result) {
		t.Error("cached result differs from the computed one")
	}
	if r.cached.Load() != 2 || r.run.Load() != 2 || r.coalesced.Load() != 4 {
		t.Errorf("runner counters cached=%d run=%d coalesced=%d, want 2/2/4",
			r.cached.Load(), r.run.Load(), r.coalesced.Load())
	}
}

func TestSweepCancelLeavesNoOrphans(t *testing.T) {
	pool := jobs.NewPool(jobs.Options{Workers: 2, QueueDepth: 8})
	defer pool.Shutdown(context.Background())
	r := &Runner{Pool: pool, Scratch: &sim.ScratchPool{}}
	spec := Spec{
		Base: sim.Config{Tags: 400, Seed: 1, Rounds: 40, Algorithm: sim.AlgFSA, FrameSize: 64, Detector: sim.DetQCD},
		Axes: []Axis{{Field: FieldSeed, Range: &Range{From: 1, To: 24}}},
	}
	bus := obs.NewBus(256)
	sub := bus.Subscribe(256, 0)
	s, err := r.Start(context.Background(), "swp-cancel", spec, bus)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Cancel as soon as the first cell reports running.
	for ev := range sub.Events() {
		if ev.Type == "cell" && ev.Data["status"] == string(jobs.StatusRunning) {
			break
		}
	}
	s.Cancel()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Wait(ctx); err != nil {
		t.Fatalf("Wait after cancel: %v", err)
	}
	snap := s.Snapshot()
	if snap.Status != jobs.StatusCanceled {
		t.Errorf("sweep status %s, want canceled", snap.Status)
	}
	if !snap.Counts.Terminal() {
		t.Errorf("non-terminal counts after Wait: %+v", snap.Counts)
	}
	if snap.Counts.Canceled == 0 {
		t.Error("cancel canceled no cells")
	}
	// No orphaned cells: nothing left queued on the pool, and every
	// submitted cell job was forgotten from the pool index.
	ps := pool.Stats()
	if ps.QueueDepth != 0 {
		t.Errorf("pool still holds %d queued jobs", ps.QueueDepth)
	}
	for _, j := range pool.List() {
		if strings.HasPrefix(j.ID, "swp-cancel/") {
			t.Errorf("orphaned cell job %s (%s) left in the pool", j.ID, j.Status)
		}
	}
	// Cancel after completion stays safe.
	s.Cancel()
}

func TestSweepEventsAndMergedTable(t *testing.T) {
	bus := obs.NewBus(256)
	pool := jobs.NewPool(jobs.Options{Workers: 2})
	defer pool.Shutdown(context.Background())
	r := &Runner{Pool: pool, Scratch: &sim.ScratchPool{}}
	s, err := r.Start(context.Background(), "swp-ev", testSpec(), bus)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Wait(ctx); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	sub := bus.Subscribe(1024, 0) // closed bus still replays the ring
	var cellDone, sweepDone int
	for ev := range sub.Events() {
		switch ev.Type {
		case "cell":
			if ev.Data["status"] == string(jobs.StatusDone) {
				cellDone++
			}
		case "sweep":
			sweepDone++
			if ev.Data["status"] != string(jobs.StatusDone) {
				t.Errorf("sweep event status %v", ev.Data["status"])
			}
		}
	}
	if cellDone != 4 {
		t.Errorf("saw %d cell-done events, want 4", cellDone)
	}
	if sweepDone != 1 {
		t.Errorf("saw %d sweep events, want 1", sweepDone)
	}

	tbl, err := s.MergedTable()
	if err != nil {
		t.Fatalf("MergedTable: %v", err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("merged table has %d rows, want 4", len(tbl.Rows))
	}
	wantCols := []string{"case", "strength", "slots", "throughput", "accuracy", "ur", "time_ms", "source"}
	if len(tbl.Columns) != len(wantCols) {
		t.Fatalf("merged table columns %v", tbl.Columns)
	}
	for i, c := range wantCols {
		if tbl.Columns[i] != c {
			t.Fatalf("merged table columns %v, want %v", tbl.Columns, wantCols)
		}
	}
	csv := tbl.CSV()
	if lines := strings.Count(csv, "\n"); lines != 5 {
		t.Errorf("merged CSV has %d lines, want 5:\n%s", lines, csv)
	}
	if !strings.Contains(csv, "run") {
		t.Errorf("merged CSV lacks provenance:\n%s", csv)
	}
	if out := tbl.Render(); !strings.Contains(out, "strength") {
		t.Errorf("merged render lacks axis column:\n%s", out)
	}
}

func TestSweepStatusFilter(t *testing.T) {
	s := runSweep(t, testSpec(), 2, nil, nil)
	if got := len(s.Cells(jobs.StatusDone)); got != 4 {
		t.Errorf("done filter returned %d cells, want 4", got)
	}
	if got := len(s.Cells(jobs.StatusFailed)); got != 0 {
		t.Errorf("failed filter returned %d cells, want 0", got)
	}
}
