package sweep

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

func baseCfg() sim.Config {
	return sim.Config{Tags: 20, Seed: 1, Rounds: 2, Algorithm: sim.AlgFSA, FrameSize: 16, Detector: sim.DetQCD}
}

func TestExpandOrderAndLabels(t *testing.T) {
	s := Spec{
		Base: baseCfg(),
		Axes: []Axis{
			{Field: FieldStrength, Ints: []int{4, 8}},
			{Field: FieldDetector, Strings: []string{sim.DetQCD, sim.DetCRCCD}},
		},
	}
	cells, err := s.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	wantLabels := []string{
		"strength=4 detector=qcd",
		"strength=4 detector=crccd",
		"strength=8 detector=qcd",
		"strength=8 detector=crccd",
	}
	if len(cells) != len(wantLabels) {
		t.Fatalf("got %d cells, want %d", len(cells), len(wantLabels))
	}
	for i, c := range cells {
		if c.Label != wantLabels[i] {
			t.Errorf("cell %d label = %q, want %q", i, c.Label, wantLabels[i])
		}
		if c.Index != i {
			t.Errorf("cell %d carries index %d", i, c.Index)
		}
		if c.Config.Workers != 0 {
			t.Errorf("cell %d config not canonical: Workers=%d", i, c.Config.Workers)
		}
	}
	if cells[1].Config.Strength != 4 || cells[1].Config.Detector != sim.DetCRCCD {
		t.Errorf("cell 1 config = strength %d detector %q", cells[1].Config.Strength, cells[1].Config.Detector)
	}
}

// TestModeAxis pins the mode grid dimension: exact and stat cells of
// the same workload expand side by side with distinct canonical
// configurations (exact's canonical Mode spelling is the empty string),
// so the result cache can never serve one mode's aggregate for the
// other.
func TestModeAxis(t *testing.T) {
	s := Spec{
		Base: baseCfg(),
		Axes: []Axis{{Field: FieldMode, Strings: []string{sim.ModeExact, sim.ModeStat}}},
	}
	cells, err := s.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	if cells[0].Label != "mode=exact" || cells[1].Label != "mode=stat" {
		t.Errorf("labels = %q, %q", cells[0].Label, cells[1].Label)
	}
	if cells[0].Config.Mode != "" {
		t.Errorf("exact cell canonical Mode = %q, want empty", cells[0].Config.Mode)
	}
	if cells[1].Config.Mode != sim.ModeStat {
		t.Errorf("stat cell Mode = %q", cells[1].Config.Mode)
	}
	if reflect.DeepEqual(cells[0].Config, cells[1].Config) {
		t.Error("exact and stat cells canonicalised to the same config")
	}
	// A mode axis over an algorithm stat mode cannot run fails expansion
	// at the offending cell rather than at run time.
	bad := Spec{
		Base: baseCfg(),
		Axes: []Axis{
			{Field: FieldAlgorithm, Strings: []string{sim.AlgFSA, sim.AlgBT}},
			{Field: FieldMode, Strings: []string{sim.ModeExact, sim.ModeStat}},
		},
	}
	if _, err := bad.Expand(); err == nil || !strings.Contains(err.Error(), "stat mode") {
		t.Errorf("bt+stat cell expanded without error (err=%v)", err)
	}
}

func TestExpandDeterministic(t *testing.T) {
	s := Spec{
		Base: baseCfg(),
		Axes: []Axis{
			{Field: FieldCase, Cases: []Case{{Name: "I", Tags: 10, Frame: 16}, {Name: "II", Tags: 30, Frame: 16}}},
			{Field: FieldStrength, Ints: []int{4, 8, 16}},
			{Field: FieldSeed, Seeds: []uint64{1, 2}},
		},
	}
	a, err := s.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	b, err := s.Expand()
	if err != nil {
		t.Fatalf("Expand (again): %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two expansions of the same spec differ")
	}
	if len(a) != 12 {
		t.Fatalf("got %d cells, want 12", len(a))
	}
	if a[0].Config.Tags != 10 || a[0].Config.FrameSize != 16 {
		t.Errorf("case axis not applied: tags=%d frame=%d", a[0].Config.Tags, a[0].Config.FrameSize)
	}
}

func TestExpandRanges(t *testing.T) {
	arith := Axis{Field: FieldTags, Range: &Range{From: 10, To: 30, Step: 10}}
	if got := arith.coords(); !reflect.DeepEqual(got, []string{"10", "20", "30"}) {
		t.Errorf("arithmetic range coords = %v", got)
	}
	geom := Axis{Field: FieldTags, Range: &Range{From: 16, To: 128, Mul: 2}}
	if got := geom.coords(); !reflect.DeepEqual(got, []string{"16", "32", "64", "128"}) {
		t.Errorf("geometric range coords = %v", got)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"duplicate axis", Spec{Base: baseCfg(), Axes: []Axis{
			{Field: FieldTags, Ints: []int{1}}, {Field: FieldTags, Ints: []int{2}},
		}}, "duplicate"},
		{"unknown field", Spec{Base: baseCfg(), Axes: []Axis{
			{Field: "bogus", Ints: []int{1}},
		}}, "unknown"},
		{"two sources", Spec{Base: baseCfg(), Axes: []Axis{
			{Field: FieldTags, Ints: []int{1}, Range: &Range{From: 1, To: 2}},
		}}, "exactly one"},
		{"strings on int field", Spec{Base: baseCfg(), Axes: []Axis{
			{Field: FieldTags, Strings: []string{"x"}},
		}}, "ints"},
		{"seeds on non-seed field", Spec{Base: baseCfg(), Axes: []Axis{
			{Field: FieldFrame, Seeds: []uint64{1}},
		}}, "ints or range"},
		{"over cap", Spec{Base: baseCfg(), MaxCells: 4, Axes: []Axis{
			{Field: FieldTags, Range: &Range{From: 1, To: 10}},
		}}, "above the cap"},
		{"step and mul", Spec{Base: baseCfg(), Axes: []Axis{
			{Field: FieldTags, Range: &Range{From: 1, To: 8, Step: 2, Mul: 2}},
		}}, "both"},
		{"negative cell workers", Spec{Base: baseCfg(), CellWorkers: -1}, "cell_workers"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the spec", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestExpandRejectsInvalidCell(t *testing.T) {
	s := Spec{
		Base: baseCfg(),
		Axes: []Axis{{Field: FieldTags, Ints: []int{10, -5}}},
	}
	if _, err := s.Expand(); err == nil {
		t.Fatal("Expand accepted a cell with negative tags")
	}
}

func TestCellCountOverflowGuard(t *testing.T) {
	s := Spec{
		Base:     baseCfg(),
		MaxCells: HardMaxCells,
		Axes: []Axis{
			{Field: FieldTags, Range: &Range{From: 1, To: 300}},
			{Field: FieldFrame, Range: &Range{From: 1, To: 300}},
		},
	}
	if _, err := s.CellCount(); err == nil {
		t.Fatal("CellCount accepted a grid beyond the hard cap")
	}
}

func TestNoAxesExpandsToBase(t *testing.T) {
	s := Spec{Base: baseCfg()}
	cells, err := s.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(cells))
	}
	want := baseCfg().Canonical()
	if !reflect.DeepEqual(cells[0].Config, want) {
		t.Errorf("cell config = %+v, want canonical base %+v", cells[0].Config, want)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	s := Spec{
		Name: "fig5",
		Base: baseCfg(),
		Axes: []Axis{
			{Field: FieldCase, Cases: []Case{{Name: "I", Tags: 10}}},
			{Field: FieldStrength, Ints: []int{4, 8, 16}},
		},
		CellWorkers: 2,
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back Spec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	ca, err := s.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	cb, err := back.Expand()
	if err != nil {
		t.Fatalf("Expand (round-tripped): %v", err)
	}
	if !reflect.DeepEqual(ca, cb) {
		t.Fatal("round-tripped spec expands differently")
	}
}
