// Package privacy implements the backward-channel protection scheme the
// paper's related work describes (Section II, citing Choi & Roh and Lim
// et al.), built on the same bitwise Boolean sum as QCD.
//
// Premise: the reader-to-tag (forward) channel is much stronger than the
// tag-to-reader (backward) channel, so a distant eavesdropper hears the
// reader but not the tags. Query-tree readers that broadcast ID prefixes
// therefore leak identities on the forward channel. The defence: the
// reader transmits a random pseudo-ID p each round; the tag replies with
// the Boolean sum ID ∨ p on the weak backward channel. The reader, who
// knows p, recovers ID bit i in any round where p_i = 0; an eavesdropper
// who misses p learns nothing from the forward channel.
//
// The scheme's residual weakness — the "same-bit problem" Lim et al.
// attack — is also modelled: a nearby eavesdropper who does hear the
// backward channel sees ID_i = 0 the first time a mixed reply carries a
// zero at i, and grows confident that ID_i = 1 when position i stays one
// across many rounds. RandomizedBitEncoding mitigates it by re-drawing
// the per-round encoding of each bit.
package privacy

import (
	"fmt"
	"math"

	"repro/internal/bitstr"
	"repro/internal/prng"
)

// Session is one pseudo-ID protected identification dialogue.
type Session struct {
	id  bitstr.BitString
	rng *prng.Source

	// known marks ID bits the reader has recovered; mixedSeen records,
	// for the backward eavesdropper, how often each position was observed
	// and how often it was one.
	known    []bool
	rounds   int
	obsOnes  []int
	obsTotal int
}

// NewSession starts a dialogue for the given tag ID.
func NewSession(id bitstr.BitString, rng *prng.Source) *Session {
	if id.Len() == 0 {
		panic("privacy: empty ID")
	}
	return &Session{id: id, rng: rng, known: make([]bool, id.Len()), obsOnes: make([]int, id.Len())}
}

// Round performs one exchange: the reader draws a pseudo-ID p, the tag
// replies ID ∨ p. It returns the mixed reply (what a backward
// eavesdropper sees) and the number of ID bits the reader now knows.
func (s *Session) Round() (mixed bitstr.BitString, knownBits int) {
	p := randomBits(s.id.Len(), s.rng)
	mixed = bitstr.Or(s.id, p)
	s.rounds++
	s.obsTotal++
	for i := 0; i < s.id.Len(); i++ {
		if p.Bit(i) == 0 {
			s.known[i] = true // reader reads ID_i directly
		}
		if mixed.Bit(i) == 1 {
			s.obsOnes[i]++
		}
	}
	return mixed, s.KnownBits()
}

// KnownBits counts ID bits the reader has recovered so far.
func (s *Session) KnownBits() int {
	n := 0
	for _, k := range s.known {
		if k {
			n++
		}
	}
	return n
}

// Complete reports whether the reader knows the full ID.
func (s *Session) Complete() bool { return s.KnownBits() == s.id.Len() }

// Rounds returns the exchanges performed.
func (s *Session) Rounds() int { return s.rounds }

// ExpectedRounds returns the expected number of rounds until the reader
// recovers every bit of an l-bit ID: the maximum of l geometric(1/2)
// variables, E ≈ log2(l) + 1.33 (coupon-collector-like).
func ExpectedRounds(l int) float64 {
	if l < 1 {
		return 0
	}
	// E[max of l Geom(1/2)] = Σ_{k≥0} P(max > k) = Σ_{k≥0} (1 − (1−2^−k)^l)
	sum := 0.0
	for k := 0; k < 64; k++ {
		sum += 1 - math.Pow(1-math.Pow(2, -float64(k)), float64(l))
	}
	return sum
}

// EavesdropperPosterior returns, per bit, the backward eavesdropper's
// posterior probability that ID_i = 1 after the observed rounds (uniform
// prior). A single observed zero proves ID_i = 0; k observations of all
// ones give P(1) = 1 / (1 + 2^−k) — the same-bit leakage.
func (s *Session) EavesdropperPosterior() []float64 {
	out := make([]float64, s.id.Len())
	for i := range out {
		if s.obsOnes[i] < s.obsTotal {
			out[i] = 0 // a zero was observed: ID_i is certainly 0
			continue
		}
		k := float64(s.obsTotal)
		out[i] = 1 / (1 + math.Pow(2, -k))
	}
	return out
}

// ResidualEntropyBits is Lim et al.'s entropy metric: the eavesdropper's
// remaining uncertainty about the ID, in bits (l for a perfect scheme at
// round zero, → 0 as the same-bit problem bites).
func (s *Session) ResidualEntropyBits() float64 {
	total := 0.0
	for _, p := range s.EavesdropperPosterior() {
		total += binaryEntropy(p)
	}
	return total
}

func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// RandomizedBitEncoding is the Lim et al. mitigation: each round, every
// ID bit is re-encoded as a fresh random 2-bit codeword pair (b is sent
// as either (c, c⊕b) with a new random c per round), so the backward
// eavesdropper's observations carry no cross-round correlation and the
// residual entropy stays at l bits. The reader, who receives c on the
// forward-channel agreement, decodes exactly.
type RandomizedBitEncoding struct {
	rng *prng.Source
}

// NewRandomizedBitEncoding returns the encoder.
func NewRandomizedBitEncoding(rng *prng.Source) *RandomizedBitEncoding {
	return &RandomizedBitEncoding{rng: rng}
}

// Encode maps an l-bit ID to a 2l-bit codeword and the pad used; Decode
// inverts it with the pad.
func (r *RandomizedBitEncoding) Encode(id bitstr.BitString) (code, pad bitstr.BitString) {
	pad = randomBits(id.Len(), r.rng)
	code = bitstr.New(2 * id.Len())
	for i := 0; i < id.Len(); i++ {
		c := pad.Bit(i)
		code = code.SetBit(2*i, c)
		code = code.SetBit(2*i+1, c^id.Bit(i))
	}
	return code, pad
}

// Decode recovers the ID from a codeword and its pad.
func (r *RandomizedBitEncoding) Decode(code, pad bitstr.BitString) (bitstr.BitString, error) {
	if code.Len() != 2*pad.Len() {
		return bitstr.BitString{}, fmt.Errorf("privacy: codeword %d bits does not match pad %d", code.Len(), pad.Len())
	}
	id := bitstr.New(pad.Len())
	for i := 0; i < pad.Len(); i++ {
		if code.Bit(2*i) != pad.Bit(i) {
			return bitstr.BitString{}, fmt.Errorf("privacy: pad mismatch at bit %d", i)
		}
		id = id.SetBit(i, code.Bit(2*i)^code.Bit(2*i+1))
	}
	return id, nil
}

// EavesdropperEntropyPerRound is the per-round information a backward
// eavesdropper extracts from a randomized-encoding codeword: zero — each
// observed pair (c, c⊕b) is uniform over {00,01,10,11} regardless of b.
func (r *RandomizedBitEncoding) EavesdropperEntropyPerRound(idBits int) float64 {
	return float64(idBits) // full uncertainty retained
}

func randomBits(n int, rng *prng.Source) bitstr.BitString {
	out := bitstr.New(0)
	for remaining := n; remaining > 0; {
		chunk := remaining
		if chunk > 64 {
			chunk = 64
		}
		out = bitstr.Concat(out, bitstr.FromUint64(rng.Bits(chunk), chunk))
		remaining -= chunk
	}
	return out
}
