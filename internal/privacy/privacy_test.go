package privacy

import (
	"math"
	"testing"

	"repro/internal/bitstr"
	"repro/internal/prng"
)

func id64(seed uint64) bitstr.BitString {
	return bitstr.FromUint64(prng.New(seed).Bits(64), 64)
}

func TestReaderRecoversID(t *testing.T) {
	s := NewSession(id64(1), prng.New(2))
	rounds := 0
	for !s.Complete() {
		s.Round()
		rounds++
		if rounds > 200 {
			t.Fatal("reader failed to recover the ID in 200 rounds")
		}
	}
	if s.KnownBits() != 64 {
		t.Errorf("known = %d", s.KnownBits())
	}
	// Expected ≈ log2(64)+1.33 ≈ 7.3; allow generous slack per run.
	if rounds > 30 {
		t.Errorf("recovery took %d rounds (expected ≈7)", rounds)
	}
}

func TestExpectedRounds(t *testing.T) {
	// E[max of 64 Geom(1/2)] ≈ 7.3.
	got := ExpectedRounds(64)
	if got < 6.5 || got > 8.0 {
		t.Errorf("ExpectedRounds(64) = %v", got)
	}
	if ExpectedRounds(1) < 1.9 || ExpectedRounds(1) > 2.1 {
		t.Errorf("ExpectedRounds(1) = %v, want 2 (geometric mean)", ExpectedRounds(1))
	}
	if ExpectedRounds(0) != 0 {
		t.Error("ExpectedRounds(0) != 0")
	}
	// Empirical check: average recovery rounds over trials ≈ analytic.
	trials, sum := 200, 0
	for i := 0; i < trials; i++ {
		s := NewSession(id64(uint64(i)+10), prng.New(uint64(i)+500))
		for !s.Complete() {
			s.Round()
		}
		sum += s.Rounds()
	}
	mean := float64(sum) / float64(trials)
	if math.Abs(mean-ExpectedRounds(64)) > 0.8 {
		t.Errorf("empirical rounds %v vs analytic %v", mean, ExpectedRounds(64))
	}
}

func TestMixedReplyHidesFromForwardEavesdropper(t *testing.T) {
	// The mixed reply must not equal the raw ID in general (p ≠ 0).
	id := id64(3)
	s := NewSession(id, prng.New(4))
	different := 0
	for i := 0; i < 20; i++ {
		mixed, _ := s.Round()
		if !mixed.Equal(id) {
			different++
		}
		// OR-mixing never clears a one bit of the ID.
		if !bitstr.And(mixed, id).Equal(id) {
			t.Fatal("mixing cleared an ID bit")
		}
	}
	if different == 0 {
		t.Error("mixed replies always equalled the ID")
	}
}

func TestSameBitLeakage(t *testing.T) {
	// After many rounds the backward eavesdropper pins every bit: zeros
	// are proven the first time a zero shows; ones become near-certain.
	id := id64(5)
	s := NewSession(id, prng.New(6))
	for i := 0; i < 30; i++ {
		s.Round()
	}
	post := s.EavesdropperPosterior()
	for i, p := range post {
		if id.Bit(i) == 0 && p != 0 {
			t.Fatalf("bit %d is 0 but posterior %v", i, p)
		}
		if id.Bit(i) == 1 && p < 0.999 {
			t.Fatalf("bit %d is 1 but posterior only %v after 30 rounds", i, p)
		}
	}
	if h := s.ResidualEntropyBits(); h > 0.1 {
		t.Errorf("residual entropy %v bits after 30 rounds; same-bit problem should have bitten", h)
	}
}

func TestResidualEntropyStartsHighAndDecays(t *testing.T) {
	s := NewSession(id64(7), prng.New(8))
	s.Round()
	h1 := s.ResidualEntropyBits()
	for i := 0; i < 10; i++ {
		s.Round()
	}
	h11 := s.ResidualEntropyBits()
	if !(h1 > h11) {
		t.Errorf("entropy did not decay: %v -> %v", h1, h11)
	}
	if h1 <= 0 {
		t.Errorf("first-round entropy %v, want positive", h1)
	}
}

func TestRandomizedBitEncodingRoundTrip(t *testing.T) {
	enc := NewRandomizedBitEncoding(prng.New(9))
	for i := 0; i < 50; i++ {
		id := id64(uint64(i) + 100)
		code, pad := enc.Encode(id)
		if code.Len() != 128 {
			t.Fatalf("code length %d", code.Len())
		}
		got, err := enc.Decode(code, pad)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(id) {
			t.Fatal("round-trip failed")
		}
	}
}

func TestRandomizedBitEncodingHidesBits(t *testing.T) {
	// Codewords of the SAME ID must differ across rounds (fresh pads), and
	// each pair position must take all four values over many rounds.
	enc := NewRandomizedBitEncoding(prng.New(10))
	id := id64(11)
	seen := map[string]bool{}
	pairValues := map[int]map[string]bool{}
	for r := 0; r < 64; r++ {
		code, _ := enc.Encode(id)
		seen[code.Key()] = true
		for i := 0; i < 4; i++ { // inspect the first 4 bit pairs
			pv := code.Slice(2*i, 2*i+2).String()
			if pairValues[i] == nil {
				pairValues[i] = map[string]bool{}
			}
			pairValues[i][pv] = true
		}
	}
	if len(seen) < 60 {
		t.Errorf("only %d distinct codewords in 64 rounds", len(seen))
	}
	for i, vals := range pairValues {
		// For a fixed bit b, the pair (c, c⊕b) takes exactly two values
		// as c varies — but WHICH two depends on b, and both occur.
		if len(vals) != 2 {
			t.Errorf("pair %d took %d values, want 2 (both pads)", i, len(vals))
		}
	}
}

func TestDecodeValidation(t *testing.T) {
	enc := NewRandomizedBitEncoding(prng.New(12))
	id := id64(13)
	code, pad := enc.Encode(id)
	if _, err := enc.Decode(code.Slice(0, 10), pad); err == nil {
		t.Error("length mismatch accepted")
	}
	// Corrupt a pad-position bit: decode must detect it.
	bad := code.SetBit(0, 1-code.Bit(0))
	if _, err := enc.Decode(bad, pad); err == nil {
		t.Error("pad mismatch accepted")
	}
}

func TestEmptyIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty ID accepted")
		}
	}()
	NewSession(bitstr.BitString{}, prng.New(1))
}
