// Package phy models the EPC Gen-2 / ISO 18000-6C physical layer enough
// to time transmissions accurately: PIE (pulse-interval encoding) on the
// reader-to-tag link, where a data-1 symbol is physically longer than a
// data-0, and FM0 / Miller subcarrier encodings on the tag-to-reader
// backscatter link, whose bit rate is set by the backscatter link
// frequency (BLF) and the Miller factor M.
//
// The paper's evaluation assumes one τ per bit in both directions. That
// is a simplification: a real Gen-2 link is asymmetric (reader symbols
// are Tari-scaled and value-dependent; tag bits are M/BLF each). This
// package supplies the accurate per-link timing so the reproduction can
// check that the paper's conclusions survive the realistic link budget
// (experiment "phy").
package phy

import "fmt"

// Tari is the reference time interval of the reader's data-0 symbol, in
// microseconds. Gen-2 allows 6.25, 12.5 or 25 μs.
type Tari float64

// Gen-2 Tari values.
const (
	Tari625 Tari = 6.25
	Tari125 Tari = 12.5
	Tari25  Tari = 25.0
)

func (t Tari) valid() bool { return t == Tari625 || t == Tari125 || t == Tari25 }

// PIE encodes reader bits: data-0 occupies one Tari, data-1 between 1.5
// and 2 Tari (we use the maximal 2 Tari, the robust choice).
type PIE struct {
	Tari Tari
	// OneLen is the data-1 length in Tari units (1.5..2).
	OneLen float64
}

// NewPIE returns a PIE encoder. It panics on out-of-spec parameters.
func NewPIE(t Tari, oneLen float64) PIE {
	if !t.valid() {
		panic(fmt.Sprintf("phy: Tari %v out of spec {6.25, 12.5, 25}", float64(t)))
	}
	if oneLen < 1.5 || oneLen > 2.0 {
		panic(fmt.Sprintf("phy: data-1 length %v Tari out of [1.5, 2.0]", oneLen))
	}
	return PIE{Tari: t, OneLen: oneLen}
}

// SymbolMicros returns the duration of one symbol carrying the given bit.
func (p PIE) SymbolMicros(bit byte) float64 {
	if bit == 0 {
		return float64(p.Tari)
	}
	return float64(p.Tari) * p.OneLen
}

// Micros returns the duration of a command of zeros zero-bits and ones
// one-bits (commands are specified by composition, not content, at this
// resolution).
func (p PIE) Micros(zeros, ones int) float64 {
	return float64(zeros)*p.SymbolMicros(0) + float64(ones)*p.SymbolMicros(1)
}

// MeanBitMicros is the expected symbol time for balanced random payloads,
// the right per-bit charge for commands whose content we don't model.
func (p PIE) MeanBitMicros() float64 {
	return (p.SymbolMicros(0) + p.SymbolMicros(1)) / 2
}

// TagEncoding is the backscatter modulation: FM0 (one symbol per bit) or
// Miller with M subcarrier cycles per bit.
type TagEncoding int

// Tag encodings.
const (
	FM0 TagEncoding = 1 // baseband FM0: 1 cycle per bit
	M2  TagEncoding = 2 // Miller, M=2
	M4  TagEncoding = 4
	M8  TagEncoding = 8
)

func (e TagEncoding) valid() bool {
	switch e {
	case FM0, M2, M4, M8:
		return true
	}
	return false
}

// String implements fmt.Stringer.
func (e TagEncoding) String() string {
	if e == FM0 {
		return "FM0"
	}
	return fmt.Sprintf("Miller-%d", int(e))
}

// Backscatter times the tag-to-reader link.
type Backscatter struct {
	// BLFkHz is the backscatter link frequency in kHz (Gen-2: 40–640).
	BLFkHz float64
	// Encoding sets cycles per bit.
	Encoding TagEncoding
}

// NewBackscatter returns a backscatter link timing. It panics on
// out-of-spec parameters.
func NewBackscatter(blfKHz float64, enc TagEncoding) Backscatter {
	if blfKHz < 40 || blfKHz > 640 {
		panic(fmt.Sprintf("phy: BLF %v kHz out of [40, 640]", blfKHz))
	}
	if !enc.valid() {
		panic(fmt.Sprintf("phy: invalid tag encoding %d", int(enc)))
	}
	return Backscatter{BLFkHz: blfKHz, Encoding: enc}
}

// BitMicros is the duration of one tag bit: M cycles of the subcarrier.
func (b Backscatter) BitMicros() float64 {
	return float64(int(b.Encoding)) * 1e3 / b.BLFkHz
}

// Micros times an n-bit tag transmission.
func (b Backscatter) Micros(n int) float64 { return float64(n) * b.BitMicros() }

// Link is a complete asymmetric link budget.
type Link struct {
	Reader PIE
	Tag    Backscatter
	// T1, T2 are the Gen-2 turnaround times (tag response delay and
	// reader-to-next-command delay) in μs; charged once per phase switch.
	T1Micros, T2Micros float64
}

// Profiles:

// FastLink is an aggressive but in-spec profile: Tari 6.25 μs, data-1 at
// 1.5 Tari, Miller-2 at BLF 320 kHz.
func FastLink() Link {
	return Link{
		Reader:   NewPIE(Tari625, 1.5),
		Tag:      NewBackscatter(320, M2),
		T1Micros: 39, T2Micros: 20,
	}
}

// TypicalLink is the common dense-reader profile: Tari 12.5 μs, data-1 at
// 2 Tari, Miller-4 at BLF 256 kHz.
func TypicalLink() Link {
	return Link{
		Reader:   NewPIE(Tari125, 2.0),
		Tag:      NewBackscatter(256, M4),
		T1Micros: 62.5, T2Micros: 31.25,
	}
}

// SlowLink is the conservative long-range profile: Tari 25 μs, Miller-8
// at BLF 40 kHz.
func SlowLink() Link {
	return Link{
		Reader:   NewPIE(Tari25, 2.0),
		Tag:      NewBackscatter(40, M8),
		T1Micros: 125, T2Micros: 62.5,
	}
}

// EncodeMicros times an actual bit sequence under PIE (content-exact,
// unlike the balanced-mean Micros).
func (p PIE) EncodeMicros(bits []byte) float64 {
	total := 0.0
	for _, b := range bits {
		total += p.SymbolMicros(b)
	}
	return total
}

// PreambleMicros is the Gen-2 R=>T preamble that opens a Query: delimiter
// (12.5 μs) + data-0 + RTcal + TRcal. RTcal = data-0 + data-1; TRcal is
// RTcal scaled by the divide ratio (we use the customary 8/3 · RTcal / DR
// with DR=8, i.e. TRcal = RTcal · 8/3 / 8 · 3 = RTcal — simplified to the
// spec floor TRcal ≥ 1.1·RTcal, charged at 1.1).
func (p PIE) PreambleMicros() float64 {
	rtcal := p.SymbolMicros(0) + p.SymbolMicros(1)
	trcal := 1.1 * rtcal
	return 12.5 + p.SymbolMicros(0) + rtcal + trcal
}

// FrameSyncMicros opens every non-Query command: delimiter + data-0 +
// RTcal.
func (p PIE) FrameSyncMicros() float64 {
	return 12.5 + p.SymbolMicros(0) + p.SymbolMicros(0) + p.SymbolMicros(1)
}

// TagPreambleBits is the FM0/Miller pilot the tag prepends to a reply
// (TRext=0: 6 bits for FM0, 10 for Miller).
func (b Backscatter) TagPreambleBits() int {
	if b.Encoding == FM0 {
		return 6
	}
	return 10
}

// TagBitsMicros times n tag bits plus the T1 turnaround that precedes a
// tag reply.
func (l Link) TagBitsMicros(n int) float64 {
	if n == 0 {
		return 0
	}
	return l.T1Micros + l.Tag.Micros(n)
}

// CommandMicros times an n-bit reader command (balanced composition)
// plus the T2 turnaround.
func (l Link) CommandMicros(n int) float64 {
	if n == 0 {
		return 0
	}
	return l.T2Micros + float64(n)*l.Reader.MeanBitMicros()
}
