package phy

import (
	"math"
	"testing"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPIESymbolTimes(t *testing.T) {
	p := NewPIE(Tari125, 2.0)
	if p.SymbolMicros(0) != 12.5 {
		t.Errorf("data-0 = %v", p.SymbolMicros(0))
	}
	if p.SymbolMicros(1) != 25 {
		t.Errorf("data-1 = %v", p.SymbolMicros(1))
	}
	if got := p.Micros(4, 4); got != 4*12.5+4*25 {
		t.Errorf("Micros(4,4) = %v", got)
	}
	if got := p.MeanBitMicros(); got != (12.5+25)/2 {
		t.Errorf("mean bit = %v", got)
	}
}

func TestPIEValidation(t *testing.T) {
	for _, c := range []struct {
		tari Tari
		one  float64
	}{{13, 2}, {Tari125, 1.4}, {Tari125, 2.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PIE(%v,%v) accepted", c.tari, c.one)
				}
			}()
			NewPIE(c.tari, c.one)
		}()
	}
}

func TestBackscatterRates(t *testing.T) {
	// FM0 at 640 kHz: 1.5625 μs per bit — the fastest Gen-2 tag rate.
	b := NewBackscatter(640, FM0)
	if !almost(b.BitMicros(), 1.5625, 1e-12) {
		t.Errorf("FM0@640 bit = %v", b.BitMicros())
	}
	// Miller-8 at 40 kHz: 200 μs per bit — the slowest.
	s := NewBackscatter(40, M8)
	if !almost(s.BitMicros(), 200, 1e-12) {
		t.Errorf("M8@40 bit = %v", s.BitMicros())
	}
	if got := b.Micros(96); !almost(got, 150, 1e-9) {
		t.Errorf("96 bits = %v", got)
	}
}

func TestBackscatterValidation(t *testing.T) {
	for _, c := range []struct {
		blf float64
		enc TagEncoding
	}{{30, FM0}, {700, FM0}, {100, TagEncoding(3)}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Backscatter(%v,%v) accepted", c.blf, c.enc)
				}
			}()
			NewBackscatter(c.blf, c.enc)
		}()
	}
}

func TestEncodingStrings(t *testing.T) {
	if FM0.String() != "FM0" || M4.String() != "Miller-4" {
		t.Error("encoding names")
	}
}

func TestLinkProfilesOrdered(t *testing.T) {
	// Fast < typical < slow for both a tag reply and a reader command.
	fast, typ, slow := FastLink(), TypicalLink(), SlowLink()
	for _, n := range []int{16, 96} {
		f, ty, s := fast.TagBitsMicros(n), typ.TagBitsMicros(n), slow.TagBitsMicros(n)
		if !(f < ty && ty < s) {
			t.Errorf("tag %d bits: %v %v %v not ordered", n, f, ty, s)
		}
	}
	f, ty, s := fast.CommandMicros(22), typ.CommandMicros(22), slow.CommandMicros(22)
	if !(f < ty && ty < s) {
		t.Errorf("command: %v %v %v not ordered", f, ty, s)
	}
}

func TestLinkZeroBitsCostNothing(t *testing.T) {
	l := TypicalLink()
	if l.TagBitsMicros(0) != 0 || l.CommandMicros(0) != 0 {
		t.Error("zero-bit transmissions must cost nothing")
	}
}

func TestEncodeMicrosContentExact(t *testing.T) {
	p := NewPIE(Tari125, 2.0)
	// 0b0011: two zeros (12.5 each) + two ones (25 each).
	if got := p.EncodeMicros([]byte{0, 0, 1, 1}); got != 75 {
		t.Errorf("EncodeMicros = %v", got)
	}
	if got := p.EncodeMicros(nil); got != 0 {
		t.Errorf("empty encode = %v", got)
	}
}

func TestPreambleAndFrameSync(t *testing.T) {
	p := NewPIE(Tari125, 2.0)
	// Preamble = 12.5 + 12.5 + (12.5+25) + 1.1×(12.5+25) = 103.75 μs.
	if !almost(p.PreambleMicros(), 103.75, 1e-9) {
		t.Errorf("preamble = %v", p.PreambleMicros())
	}
	// FrameSync = 12.5 + 12.5 + 12.5 + 25 = 62.5 μs.
	if !almost(p.FrameSyncMicros(), 62.5, 1e-9) {
		t.Errorf("frame-sync = %v", p.FrameSyncMicros())
	}
	if p.PreambleMicros() <= p.FrameSyncMicros() {
		t.Error("preamble should exceed frame-sync (it adds TRcal)")
	}
}

func TestTagPreambleBits(t *testing.T) {
	if NewBackscatter(320, FM0).TagPreambleBits() != 6 {
		t.Error("FM0 pilot")
	}
	if NewBackscatter(320, M4).TagPreambleBits() != 10 {
		t.Error("Miller pilot")
	}
}

func TestAsymmetry(t *testing.T) {
	// The point of the package: reader and tag bit times differ. With the
	// typical profile a tag bit (M4 @ 256 kHz = 15.625 μs) is slower than
	// a mean reader bit (18.75 μs)? Compute both and assert they're
	// simply different, and that the QCD preamble (16 tag bits) is much
	// cheaper than the CRC-CD unit (96 tag bits) in absolute μs.
	l := TypicalLink()
	tagBit := l.Tag.BitMicros()
	readerBit := l.Reader.MeanBitMicros()
	if tagBit == readerBit {
		t.Error("symmetric link defeats the test premise")
	}
	preamble := l.TagBitsMicros(16)
	unit := l.TagBitsMicros(96)
	if !(preamble < unit/3) {
		t.Errorf("16-bit preamble %vμs not ≪ 96-bit unit %vμs", preamble, unit)
	}
}
