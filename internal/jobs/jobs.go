// Package jobs provides the experiment service's execution substrate: a
// bounded FIFO job queue drained by a fixed worker pool. Each job runs
// under its own context (per-job timeout, explicit cancellation, pool
// shutdown), transient failures are retried with exponential backoff,
// and shutdown drains in-flight and queued work before returning.
//
// The package is deliberately independent of the simulator: a job is any
// func(ctx) (any, error), so the pool is reusable for sweeps, floor
// inventories, or future workloads.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Func is the unit of work a job executes. It must honour ctx: the pool
// cancels it on per-job timeout, explicit Cancel, or forced shutdown.
type Func func(ctx context.Context) (any, error)

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states. Queued and Running are live; the rest are
// terminal.
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// NoTimeout, passed to SubmitTracedTimeout, exempts one job from the
// pool-wide Options.Timeout: its attempts run until they finish, are
// canceled, or the pool is force-stopped.
const NoTimeout time.Duration = -1

// Submission errors.
var (
	// ErrQueueFull is returned by Submit when the bounded queue cannot
	// accept another job; callers should shed load (HTTP 429/503).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed is returned by Submit after Shutdown has begun.
	ErrClosed = errors.New("jobs: pool closed")
	// ErrDuplicateID is returned by Submit when the ID is already taken.
	ErrDuplicateID = errors.New("jobs: duplicate job id")
)

// transientError marks an error as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so the pool will retry the job (up to
// Options.Retries times with exponential backoff). A nil err returns
// nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// Options configures a Pool. The zero value is usable: workers default
// to runtime.NumCPU(), queue depth to 64, no per-job timeout, no
// retries.
type Options struct {
	// Workers is the number of concurrent job runners (default NumCPU).
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs
	// (default 64). Submit fails with ErrQueueFull beyond it.
	QueueDepth int
	// Timeout bounds each attempt's run time; 0 means no limit.
	// SubmitTracedTimeout can override it per job.
	Timeout time.Duration
	// Retries is how many times a transient failure is re-attempted.
	Retries int
	// Backoff is the delay before the first retry, doubling per attempt
	// (default 100 ms when Retries > 0).
	Backoff time.Duration
	// OnDone, if set, is called after a job reaches a terminal state
	// (from the worker goroutine; keep it fast).
	OnDone func(Snapshot)
	// OnTransition, if set, is called on every job lifecycle change,
	// including the initial enqueue (From == ""). It runs on the
	// submitting or worker goroutine; keep it fast and do not call back
	// into the pool.
	OnTransition func(Transition)
	// Tracer, if set, receives worker lifetime spans, per-attempt job
	// run spans, and retry instants (repro/internal/obs).
	Tracer *obs.Tracer
	// Logger, if set, receives structured worker lifecycle and job
	// terminal logs.
	Logger *slog.Logger
}

// Transition records one job lifecycle state change.
type Transition struct {
	ID       string
	From, To Status // From is "" for the initial enqueue
	Attempts int    // run attempts started when the transition happened
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	return o
}

// Snapshot is a copy of a job's externally visible state.
type Snapshot struct {
	ID         string
	Status     Status
	Attempts   int // run attempts started (1 + retries so far)
	Result     any
	Err        error
	EnqueuedAt time.Time
	StartedAt  time.Time // zero until the first attempt starts
	FinishedAt time.Time // zero until terminal
}

// Latency is queue wait plus run time for finished jobs, and zero
// otherwise.
func (s Snapshot) Latency() time.Duration {
	if s.FinishedAt.IsZero() {
		return 0
	}
	return s.FinishedAt.Sub(s.EnqueuedAt)
}

// job is the pool-internal mutable state behind a Snapshot.
type job struct {
	id      string
	fn      Func
	sctx    obs.SpanContext // service-level trace position, captured at submit
	timeout time.Duration   // 0 = pool default, >0 = override, <0 = unlimited

	mu         sync.Mutex
	status     Status
	attempts   int
	result     any
	err        error
	enqueuedAt time.Time
	startedAt  time.Time
	finishedAt time.Time
	cancel     context.CancelFunc // non-nil while running
	canceled   bool               // Cancel requested (also covers queued jobs)
	done       chan struct{}      // closed on terminal state
}

func (j *job) snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Snapshot{
		ID: j.id, Status: j.status, Attempts: j.attempts,
		Result: j.result, Err: j.err,
		EnqueuedAt: j.enqueuedAt, StartedAt: j.startedAt, FinishedAt: j.finishedAt,
	}
}

// Stats is a point-in-time view of pool load, for /metrics.
type Stats struct {
	Workers        int
	Busy           int // workers currently running a job
	QueueDepth     int // jobs waiting in the queue
	QueueHighWater int // deepest the queue has ever been
	Submitted      uint64
	Done           uint64
	Failed         uint64
	Canceled       uint64
	Retries        uint64  // re-attempts after transient failures
	BusySeconds    float64 // cumulative worker time spent running jobs
}

// Utilisation is Busy / Workers.
func (s Stats) Utilisation() float64 {
	if s.Workers == 0 {
		return 0
	}
	return float64(s.Busy) / float64(s.Workers)
}

// Pool is a fixed-size worker pool over a bounded FIFO queue. Create it
// with NewPool; it is safe for concurrent use.
type Pool struct {
	opts  Options
	queue chan *job
	wg    sync.WaitGroup

	// hardCtx cancels running jobs when a shutdown deadline expires.
	hardCtx  context.Context
	hardStop context.CancelFunc

	mu     sync.Mutex
	byID   map[string]*job
	order  []string // submission order, for List
	closed bool

	busy       atomic.Int64
	qHighWater atomic.Int64 // deepest queue observed at enqueue time
	busyNanos  atomic.Int64 // cumulative worker-busy time
	submitted  atomic.Uint64
	nDone      atomic.Uint64
	nFailed    atomic.Uint64
	nCanceled  atomic.Uint64
	nRetries   atomic.Uint64
}

// NewPool starts a pool with Options.Workers runner goroutines.
func NewPool(o Options) *Pool {
	o = o.withDefaults()
	hardCtx, hardStop := context.WithCancel(context.Background())
	p := &Pool{
		opts:     o,
		queue:    make(chan *job, o.QueueDepth),
		hardCtx:  hardCtx,
		hardStop: hardStop,
		byID:     make(map[string]*job),
	}
	for w := 0; w < o.Workers; w++ {
		p.wg.Add(1)
		go p.worker(w)
	}
	return p
}

// transition reports one lifecycle change to the OnTransition hook.
func (p *Pool) transition(id string, from, to Status, attempts int) {
	if p.opts.OnTransition != nil {
		p.opts.OnTransition(Transition{ID: id, From: from, To: to, Attempts: attempts})
	}
}

// Submit enqueues fn under the caller-chosen id. It fails fast with
// ErrQueueFull, ErrClosed, or ErrDuplicateID — it never blocks.
func (p *Pool) Submit(id string, fn Func) error {
	return p.SubmitTraced(context.Background(), id, fn)
}

// SubmitTraced is Submit carrying trace context: the span context on
// ctx (obs.WithSpan) is captured with the job, the time spent queued is
// recorded as a queue-wait span under it, and each run attempt executes
// under a child run span so lower layers (the simulator) can attach.
// Only the span context is retained — ctx's deadline and cancellation
// do NOT bound the job (use Cancel or Options.Timeout for that), so a
// request-scoped ctx is safe to pass.
func (p *Pool) SubmitTraced(ctx context.Context, id string, fn Func) error {
	return p.SubmitTracedTimeout(ctx, id, fn, 0)
}

// SubmitTracedTimeout is SubmitTraced with a per-job attempt timeout:
// 0 keeps the pool-wide Options.Timeout, a positive value replaces it
// for this job, and NoTimeout removes the bound entirely. Long-running
// job classes (streaming scenarios) share a pool whose Timeout is sized
// for one-shot experiments; the override lets them coexist without a
// second pool.
func (p *Pool) SubmitTracedTimeout(ctx context.Context, id string, fn Func, timeout time.Duration) error {
	if fn == nil {
		return fmt.Errorf("jobs: nil Func for job %q", id)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	if _, dup := p.byID[id]; dup {
		p.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrDuplicateID, id)
	}
	j := &job{
		id: id, fn: fn, timeout: timeout,
		sctx:       obs.SpanFrom(ctx),
		status:     StatusQueued,
		enqueuedAt: time.Now(),
		done:       make(chan struct{}),
	}
	select {
	case p.queue <- j:
	default:
		p.mu.Unlock()
		return ErrQueueFull
	}
	// Track the deepest the queue has been: saturation shows up here
	// long before submissions start bouncing with ErrQueueFull.
	depth := int64(len(p.queue))
	for {
		hw := p.qHighWater.Load()
		if depth <= hw || p.qHighWater.CompareAndSwap(hw, depth) {
			break
		}
	}
	p.byID[id] = j
	p.order = append(p.order, id)
	p.submitted.Add(1)
	p.mu.Unlock() // hooks run lock-free: they may take their own locks

	p.opts.Tracer.Instant("jobs", "enqueued", 0, map[string]any{"id": id})
	p.transition(id, "", StatusQueued, 0)
	return nil
}

// Get returns the snapshot of the job with the given id.
func (p *Pool) Get(id string) (Snapshot, bool) {
	p.mu.Lock()
	j, ok := p.byID[id]
	p.mu.Unlock()
	if !ok {
		return Snapshot{}, false
	}
	return j.snapshot(), true
}

// List returns snapshots of all known jobs in submission order.
func (p *Pool) List() []Snapshot {
	p.mu.Lock()
	js := make([]*job, 0, len(p.order))
	for _, id := range p.order {
		if j, ok := p.byID[id]; ok {
			js = append(js, j)
		}
	}
	p.mu.Unlock()
	out := make([]Snapshot, len(js))
	for i, j := range js {
		out[i] = j.snapshot()
	}
	return out
}

// Forget drops a terminal job from the pool's index, so callers that
// submit unbounded job streams (sweep cells) can bound the index after
// harvesting each result. Live jobs are refused. The submission-order
// list is compacted lazily once forgotten entries dominate it.
func (p *Pool) Forget(id string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.byID[id]
	if !ok {
		return false
	}
	j.mu.Lock()
	terminal := j.status.Terminal()
	j.mu.Unlock()
	if !terminal {
		return false
	}
	delete(p.byID, id)
	if len(p.order) > 16 && len(p.order) > 2*len(p.byID) {
		kept := p.order[:0]
		for _, oid := range p.order {
			if _, live := p.byID[oid]; live {
				kept = append(kept, oid)
			}
		}
		p.order = kept
	}
	return true
}

// Cancel requests cancellation of the job: a queued job is skipped when
// it reaches a worker, a running job has its context canceled. It
// reports whether the job exists and was still live.
func (p *Pool) Cancel(id string) bool {
	p.mu.Lock()
	j, ok := p.byID[id]
	p.mu.Unlock()
	if !ok {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.Terminal() {
		return false
	}
	j.canceled = true
	if j.cancel != nil {
		j.cancel()
	}
	return true
}

// Wait blocks until the job reaches a terminal state or ctx expires.
func (p *Pool) Wait(ctx context.Context, id string) (Snapshot, error) {
	p.mu.Lock()
	j, ok := p.byID[id]
	p.mu.Unlock()
	if !ok {
		return Snapshot{}, fmt.Errorf("jobs: unknown job %q", id)
	}
	select {
	case <-j.done:
		return j.snapshot(), nil
	case <-ctx.Done():
		return j.snapshot(), ctx.Err()
	}
}

// Stats returns a point-in-time load snapshot.
func (p *Pool) Stats() Stats {
	return Stats{
		Workers:        p.opts.Workers,
		Busy:           int(p.busy.Load()),
		QueueDepth:     len(p.queue),
		QueueHighWater: int(p.qHighWater.Load()),
		Submitted:      p.submitted.Load(),
		Done:           p.nDone.Load(),
		Failed:         p.nFailed.Load(),
		Canceled:       p.nCanceled.Load(),
		Retries:        p.nRetries.Load(),
		BusySeconds:    time.Duration(p.busyNanos.Load()).Seconds(),
	}
}

// Shutdown stops accepting submissions and drains the queue: queued and
// in-flight jobs run to completion. If ctx expires first, running jobs
// are canceled and Shutdown returns ctx.Err() after they exit.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		p.hardStop() // cancel running jobs, then wait for workers to exit
		<-drained
		return ctx.Err()
	}
}

func (p *Pool) worker(wid int) {
	defer p.wg.Done()
	tid := wid + 1 // tracer track 0 is the submit/lifecycle track
	if l := p.opts.Logger; l != nil {
		l.Info("worker started", "worker", wid)
	}
	span := p.opts.Tracer.StartSpan("jobs", "worker", tid)
	n := 0
	for j := range p.queue {
		p.busy.Add(1)
		t0 := time.Now()
		p.run(j, tid)
		p.busyNanos.Add(int64(time.Since(t0)))
		p.busy.Add(-1)
		n++
	}
	span.End(map[string]any{"worker": wid, "jobs": n})
	if l := p.opts.Logger; l != nil {
		l.Info("worker stopped", "worker", wid, "jobs", n)
	}
}

// run executes one job with retries and records its terminal state.
func (p *Pool) run(j *job, tid int) {
	j.mu.Lock()
	if j.canceled { // canceled while still queued
		j.status = StatusCanceled
		j.err = context.Canceled
		j.finishedAt = time.Now()
		close(j.done)
		j.mu.Unlock()
		if j.sctx.Valid() {
			j.sctx.Complete("jobs", "queue-wait", j.enqueuedAt, j.finishedAt,
				obs.SA("id", j.id), obs.SA("outcome", "canceled"))
		}
		p.nCanceled.Add(1)
		p.transition(j.id, StatusQueued, StatusCanceled, 0)
		p.finishLog(j)
		p.notify(j)
		return
	}
	runCtx, cancel := context.WithCancel(p.hardCtx)
	j.status = StatusRunning
	j.startedAt = time.Now()
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()
	if j.sctx.Valid() {
		j.sctx.Complete("jobs", "queue-wait", j.enqueuedAt, j.startedAt, obs.SA("id", j.id))
	}
	runSpan := j.sctx.Start("jobs", "run")
	runCtx = obs.WithSpan(runCtx, runSpan.Context())
	p.transition(j.id, StatusQueued, StatusRunning, 0)
	span := p.opts.Tracer.StartSpan("jobs", "job "+j.id, tid)

	var result any
	var err error
	backoff := p.opts.Backoff
	for attempt := 0; ; attempt++ {
		j.mu.Lock()
		j.attempts++
		j.mu.Unlock()

		timeout := p.opts.Timeout
		switch {
		case j.timeout > 0:
			timeout = j.timeout
		case j.timeout < 0:
			timeout = 0
		}
		attemptCtx := runCtx
		var attemptCancel context.CancelFunc = func() {}
		if timeout > 0 {
			attemptCtx, attemptCancel = context.WithTimeout(runCtx, timeout)
		}
		result, err = j.fn(attemptCtx)
		attemptCancel()

		if err == nil || !IsTransient(err) || attempt >= p.opts.Retries || runCtx.Err() != nil {
			break
		}
		p.nRetries.Add(1)
		p.opts.Tracer.Instant("jobs", "retry", tid, map[string]any{"id": j.id, "attempt": attempt + 1})
		select {
		case <-time.After(backoff):
		case <-runCtx.Done():
		}
		backoff *= 2
	}

	j.mu.Lock()
	j.cancel = nil
	j.finishedAt = time.Now()
	switch {
	case err == nil:
		j.status = StatusDone
		j.result = result
		p.nDone.Add(1)
	case j.canceled || errors.Is(err, context.Canceled):
		j.status = StatusCanceled
		j.err = err
		p.nCanceled.Add(1)
	default:
		j.status = StatusFailed
		j.err = err
		p.nFailed.Add(1)
	}
	status := j.status
	attempts := j.attempts
	close(j.done)
	j.mu.Unlock()
	if runSpan.Live() {
		runSpan.End(obs.SA("id", j.id), obs.SA("status", string(status)),
			obs.SA("attempts", attempts))
	} else {
		runSpan.End()
	}
	span.End(map[string]any{"id": j.id, "status": string(status), "attempts": attempts})
	p.transition(j.id, StatusRunning, status, attempts)
	p.finishLog(j)
	p.notify(j)
}

// finishLog emits one structured log line for a job's terminal state.
func (p *Pool) finishLog(j *job) {
	l := p.opts.Logger
	if l == nil {
		return
	}
	snap := j.snapshot()
	attrs := []any{
		"id", snap.ID, "status", string(snap.Status),
		"attempts", snap.Attempts, "latency", snap.Latency(),
	}
	if snap.Err != nil {
		attrs = append(attrs, "err", snap.Err.Error())
	}
	if snap.Status == StatusFailed {
		l.Warn("job finished", attrs...)
		return
	}
	l.Info("job finished", attrs...)
}

// Register exposes the pool's load series on reg under prefix (for
// example "rfidd" yields rfidd_queue_depth, rfidd_jobs_done_total, ...),
// sampled from Stats at exposition time.
func (p *Pool) Register(reg *obs.Registry, prefix string) {
	reg.GaugeFunc(prefix+"_queue_depth", "Experiments waiting in the bounded FIFO queue.",
		func() float64 { return float64(len(p.queue)) })
	reg.GaugeFunc(prefix+"_workers", "Size of the worker pool.",
		func() float64 { return float64(p.opts.Workers) })
	reg.GaugeFunc(prefix+"_workers_busy", "Workers currently running an experiment.",
		func() float64 { return float64(p.busy.Load()) })
	reg.GaugeFunc(prefix+"_worker_utilisation", "Busy workers divided by pool size.",
		func() float64 { return p.Stats().Utilisation() })
	reg.CounterFunc(prefix+"_jobs_submitted_total", "Experiments accepted onto the queue.", p.submitted.Load)
	reg.CounterFunc(prefix+"_jobs_done_total", "Experiments completed successfully.", p.nDone.Load)
	reg.CounterFunc(prefix+"_jobs_failed_total", "Experiments that failed permanently.", p.nFailed.Load)
	reg.CounterFunc(prefix+"_jobs_canceled_total", "Experiments canceled before completion.", p.nCanceled.Load)
	reg.CounterFunc(prefix+"_jobs_retries_total", "Retry attempts after transient failures.", p.nRetries.Load)
	reg.GaugeFunc(prefix+"_queue_depth_high_water", "Deepest the queue has been since startup.",
		func() float64 { return float64(p.qHighWater.Load()) })
	reg.CounterFloatFunc(prefix+"_worker_busy_seconds_total", "Cumulative worker time spent running experiments.",
		func() float64 { return time.Duration(p.busyNanos.Load()).Seconds() })
}

func (p *Pool) notify(j *job) {
	if p.opts.OnDone != nil {
		p.opts.OnDone(j.snapshot())
	}
}
