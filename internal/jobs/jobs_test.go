package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// newTestPool returns a small pool sized independently of the host.
func newTestPool(o Options) *Pool {
	if o.Workers == 0 {
		o.Workers = 2
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 8
	}
	return NewPool(o)
}

func TestSubmitRunsToDone(t *testing.T) {
	p := newTestPool(Options{})
	defer p.Shutdown(context.Background())
	if err := p.Submit("j1", func(ctx context.Context) (any, error) {
		return 42, nil
	}); err != nil {
		t.Fatal(err)
	}
	snap, err := p.Wait(context.Background(), "j1")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Status != StatusDone || snap.Result.(int) != 42 || snap.Err != nil {
		t.Errorf("snapshot = %+v", snap)
	}
	if snap.Attempts != 1 {
		t.Errorf("attempts = %d, want 1", snap.Attempts)
	}
	if snap.Latency() <= 0 {
		t.Errorf("latency = %v, want > 0", snap.Latency())
	}
}

func TestSubmitValidation(t *testing.T) {
	p := newTestPool(Options{})
	defer p.Shutdown(context.Background())
	if err := p.Submit("j1", nil); err == nil {
		t.Error("nil Func accepted")
	}
	ok := func(ctx context.Context) (any, error) { return nil, nil }
	if err := p.Submit("j1", ok); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit("j1", ok); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate id: err = %v", err)
	}
	if _, found := p.Get("nope"); found {
		t.Error("Get found an unknown id")
	}
	if _, err := p.Wait(context.Background(), "nope"); err == nil {
		t.Error("Wait on unknown id succeeded")
	}
}

func TestQueueFull(t *testing.T) {
	p := NewPool(Options{Workers: 1, QueueDepth: 2})
	defer p.Shutdown(context.Background())

	block := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit("running", func(ctx context.Context) (any, error) {
		close(started)
		<-block
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started // the single worker is now occupied
	sleepy := func(ctx context.Context) (any, error) { return nil, nil }
	if err := p.Submit("q1", sleepy); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit("q2", sleepy); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit("q3", sleepy); !errors.Is(err, ErrQueueFull) {
		t.Errorf("overfull submit: err = %v, want ErrQueueFull", err)
	}
	close(block)
}

func TestRetryTransientThenSucceed(t *testing.T) {
	p := newTestPool(Options{Retries: 3, Backoff: time.Millisecond})
	defer p.Shutdown(context.Background())
	var calls atomic.Int32
	if err := p.Submit("flaky", func(ctx context.Context) (any, error) {
		if calls.Add(1) < 3 {
			return nil, Transient(errors.New("blip"))
		}
		return "ok", nil
	}); err != nil {
		t.Fatal(err)
	}
	snap, err := p.Wait(context.Background(), "flaky")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Status != StatusDone || snap.Attempts != 3 {
		t.Errorf("status = %s attempts = %d, want done after 3", snap.Status, snap.Attempts)
	}
	if got := p.Stats().Retries; got != 2 {
		t.Errorf("retries counter = %d, want 2", got)
	}
}

func TestTransientExhaustsRetries(t *testing.T) {
	p := newTestPool(Options{Retries: 2, Backoff: time.Millisecond})
	defer p.Shutdown(context.Background())
	boom := errors.New("still down")
	p.Submit("down", func(ctx context.Context) (any, error) {
		return nil, Transient(boom)
	})
	snap, _ := p.Wait(context.Background(), "down")
	if snap.Status != StatusFailed || !errors.Is(snap.Err, boom) {
		t.Errorf("snapshot = %+v", snap)
	}
	if snap.Attempts != 3 { // 1 + 2 retries
		t.Errorf("attempts = %d, want 3", snap.Attempts)
	}
}

func TestPermanentErrorNotRetried(t *testing.T) {
	p := newTestPool(Options{Retries: 5, Backoff: time.Millisecond})
	defer p.Shutdown(context.Background())
	var calls atomic.Int32
	p.Submit("fatal", func(ctx context.Context) (any, error) {
		calls.Add(1)
		return nil, errors.New("bad config")
	})
	snap, _ := p.Wait(context.Background(), "fatal")
	if snap.Status != StatusFailed || calls.Load() != 1 {
		t.Errorf("status = %s calls = %d, want one failed attempt", snap.Status, calls.Load())
	}
}

func TestTransientHelpers(t *testing.T) {
	if Transient(nil) != nil {
		t.Error("Transient(nil) != nil")
	}
	base := errors.New("x")
	wrapped := Transient(base)
	if !IsTransient(wrapped) || IsTransient(base) {
		t.Error("IsTransient misclassifies")
	}
	if !errors.Is(wrapped, base) {
		t.Error("Transient does not unwrap")
	}
	if wrapped.Error() != "x" {
		t.Errorf("message = %q", wrapped.Error())
	}
}

func TestPerJobTimeout(t *testing.T) {
	p := newTestPool(Options{Timeout: 10 * time.Millisecond})
	defer p.Shutdown(context.Background())
	p.Submit("slow", func(ctx context.Context) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	snap, _ := p.Wait(context.Background(), "slow")
	if snap.Status != StatusFailed || !errors.Is(snap.Err, context.DeadlineExceeded) {
		t.Errorf("snapshot = %+v, want failed with DeadlineExceeded", snap)
	}
}

// TestPerJobTimeoutOverride: SubmitTracedTimeout's three regimes on a
// pool whose default timeout is tight. NoTimeout exempts the job (it
// finishes on its own clock), a positive override replaces the pool
// default, and 0 inherits it.
func TestPerJobTimeoutOverride(t *testing.T) {
	p := newTestPool(Options{Timeout: 20 * time.Millisecond})
	defer p.Shutdown(context.Background())
	sleep := func(d time.Duration) Func {
		return func(ctx context.Context) (any, error) {
			select {
			case <-time.After(d):
				return "finished", nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	ctx := context.Background()
	if err := p.SubmitTracedTimeout(ctx, "exempt", sleep(60*time.Millisecond), NoTimeout); err != nil {
		t.Fatal(err)
	}
	if err := p.SubmitTracedTimeout(ctx, "tighter", sleep(60*time.Millisecond), 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := p.SubmitTracedTimeout(ctx, "default", sleep(60*time.Millisecond), 0); err != nil {
		t.Fatal(err)
	}

	snap, _ := p.Wait(ctx, "exempt")
	if snap.Status != StatusDone || snap.Result != "finished" {
		t.Errorf("exempt job = %+v, want done despite the 20ms pool timeout", snap)
	}
	for _, id := range []string{"tighter", "default"} {
		snap, _ := p.Wait(ctx, id)
		if snap.Status != StatusFailed || !errors.Is(snap.Err, context.DeadlineExceeded) {
			t.Errorf("%s job = %+v, want failed with DeadlineExceeded", id, snap)
		}
	}
}

func TestCancelRunning(t *testing.T) {
	p := newTestPool(Options{})
	defer p.Shutdown(context.Background())
	started := make(chan struct{})
	p.Submit("victim", func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	<-started
	if !p.Cancel("victim") {
		t.Fatal("Cancel returned false for a running job")
	}
	snap, _ := p.Wait(context.Background(), "victim")
	if snap.Status != StatusCanceled {
		t.Errorf("status = %s, want canceled", snap.Status)
	}
	if p.Cancel("victim") {
		t.Error("Cancel succeeded twice")
	}
	if p.Cancel("ghost") {
		t.Error("Cancel found an unknown id")
	}
}

func TestCancelQueued(t *testing.T) {
	p := NewPool(Options{Workers: 1, QueueDepth: 4})
	defer p.Shutdown(context.Background())
	block := make(chan struct{})
	started := make(chan struct{})
	p.Submit("blocker", func(ctx context.Context) (any, error) {
		close(started)
		<-block
		return nil, nil
	})
	<-started
	var ran atomic.Bool
	p.Submit("queued", func(ctx context.Context) (any, error) {
		ran.Store(true)
		return nil, nil
	})
	if !p.Cancel("queued") {
		t.Fatal("Cancel returned false for a queued job")
	}
	close(block)
	snap, _ := p.Wait(context.Background(), "queued")
	if snap.Status != StatusCanceled || ran.Load() {
		t.Errorf("queued job ran despite cancellation: %+v ran=%v", snap, ran.Load())
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	p := NewPool(Options{Workers: 2, QueueDepth: 16})
	var finished atomic.Int32
	const n = 8
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("j%d", i)
		if err := p.Submit(id, func(ctx context.Context) (any, error) {
			time.Sleep(5 * time.Millisecond)
			finished.Add(1)
			return id, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if finished.Load() != n {
		t.Errorf("drained %d of %d jobs", finished.Load(), n)
	}
	st := p.Stats()
	if st.Done != n || st.QueueDepth != 0 || st.Busy != 0 {
		t.Errorf("post-drain stats = %+v", st)
	}
	if err := p.Submit("late", func(ctx context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after shutdown: err = %v, want ErrClosed", err)
	}
	// A second Shutdown is a no-op.
	if err := p.Shutdown(context.Background()); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}

func TestShutdownDeadlineCancelsRunning(t *testing.T) {
	p := NewPool(Options{Workers: 1, QueueDepth: 4})
	started := make(chan struct{})
	p.Submit("stubborn", func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done() // only exits when the pool hard-cancels
		return nil, ctx.Err()
	})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown err = %v, want DeadlineExceeded", err)
	}
	snap, _ := p.Get("stubborn")
	if snap.Status != StatusCanceled {
		t.Errorf("status = %s, want canceled after forced shutdown", snap.Status)
	}
}

func TestStatsAndUtilisation(t *testing.T) {
	p := NewPool(Options{Workers: 2, QueueDepth: 8})
	defer p.Shutdown(context.Background())
	block := make(chan struct{})
	started := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		p.Submit(fmt.Sprintf("b%d", i), func(ctx context.Context) (any, error) {
			started <- struct{}{}
			<-block
			return nil, nil
		})
	}
	<-started
	<-started
	st := p.Stats()
	if st.Busy != 2 || st.Workers != 2 {
		t.Errorf("stats = %+v, want 2/2 busy", st)
	}
	if st.Utilisation() != 1 {
		t.Errorf("utilisation = %v, want 1", st.Utilisation())
	}
	close(block)
	if (Stats{}).Utilisation() != 0 {
		t.Error("zero-worker utilisation != 0")
	}
}

func TestOnDoneCallbackAndList(t *testing.T) {
	doneIDs := make(chan string, 4)
	p := NewPool(Options{Workers: 2, QueueDepth: 8, OnDone: func(s Snapshot) {
		if !s.Status.Terminal() {
			t.Errorf("OnDone with live status %s", s.Status)
		}
		doneIDs <- s.ID
	}})
	defer p.Shutdown(context.Background())
	p.Submit("a", func(ctx context.Context) (any, error) { return 1, nil })
	p.Submit("b", func(ctx context.Context) (any, error) { return nil, errors.New("no") })
	got := map[string]bool{<-doneIDs: true, <-doneIDs: true}
	if !got["a"] || !got["b"] {
		t.Errorf("OnDone ids = %v", got)
	}
	list := p.List()
	if len(list) != 2 || list[0].ID != "a" || list[1].ID != "b" {
		t.Errorf("List = %+v, want submission order a,b", list)
	}
}

func TestForgetDropsTerminalJobsOnly(t *testing.T) {
	p := newTestPool(Options{})
	defer p.Shutdown(context.Background())

	release := make(chan struct{})
	if err := p.Submit("live", func(ctx context.Context) (any, error) {
		<-release
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if p.Forget("live") {
		t.Error("Forget accepted a live job")
	}
	if p.Forget("absent") {
		t.Error("Forget accepted an unknown job")
	}
	close(release)
	if _, err := p.Wait(context.Background(), "live"); err != nil {
		t.Fatal(err)
	}
	if !p.Forget("live") {
		t.Error("Forget refused a terminal job")
	}
	if _, ok := p.Get("live"); ok {
		t.Error("forgotten job still indexed")
	}
	if n := len(p.List()); n != 0 {
		t.Errorf("List returned %d jobs after Forget, want 0", n)
	}
	// The id is reusable afterwards, and the index stays bounded under a
	// sustained submit/forget stream.
	for i := 0; i < 100; i++ {
		if err := p.Submit("live", func(ctx context.Context) (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Wait(context.Background(), "live"); err != nil {
			t.Fatal(err)
		}
		if !p.Forget("live") {
			t.Fatal("Forget refused a terminal job")
		}
	}
	p.mu.Lock()
	ordered := len(p.order)
	p.mu.Unlock()
	if ordered > 64 {
		t.Errorf("submission-order list grew to %d entries; lazy compaction failed", ordered)
	}
}
