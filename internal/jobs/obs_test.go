package jobs

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestTransitionSequence checks the lifecycle hook fires in order for a
// successful job: enqueue (From == ""), queued→running, running→done.
func TestTransitionSequence(t *testing.T) {
	var mu sync.Mutex
	var got []Transition
	p := NewPool(Options{Workers: 1, OnTransition: func(tr Transition) {
		mu.Lock()
		got = append(got, tr)
		mu.Unlock()
	}})
	defer p.Shutdown(context.Background())

	if err := p.Submit("t1", func(context.Context) (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Wait(context.Background(), "t1"); err != nil {
		t.Fatal(err)
	}

	// The terminal transition fires after close(j.done); give the worker
	// goroutine a beat to deliver it.
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 3 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	want := []Transition{
		{ID: "t1", From: "", To: StatusQueued, Attempts: 0},
		{ID: "t1", From: StatusQueued, To: StatusRunning, Attempts: 0},
		{ID: "t1", From: StatusRunning, To: StatusDone, Attempts: 1},
	}
	if len(got) != len(want) {
		t.Fatalf("transitions = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("transition %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestTransitionCanceledWhileQueued pins the queued→canceled path for a
// job canceled before any worker picks it up.
func TestTransitionCanceledWhileQueued(t *testing.T) {
	var mu sync.Mutex
	var got []Transition
	block := make(chan struct{})
	p := NewPool(Options{Workers: 1, QueueDepth: 4, OnTransition: func(tr Transition) {
		mu.Lock()
		got = append(got, tr)
		mu.Unlock()
	}})
	defer p.Shutdown(context.Background())

	// Occupy the only worker so the second job stays queued.
	p.Submit("blocker", func(ctx context.Context) (any, error) {
		<-block
		return nil, nil
	})
	p.Submit("victim", func(context.Context) (any, error) { return nil, nil })
	if !p.Cancel("victim") {
		t.Fatal("Cancel returned false for a queued job")
	}
	close(block)
	if _, err := p.Wait(context.Background(), "victim"); err != nil {
		t.Fatal(err)
	}
	snap, _ := p.Get("victim")
	if snap.Status != StatusCanceled {
		t.Fatalf("victim status = %v", snap.Status)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		var seen bool
		for _, tr := range got {
			if tr.ID == "victim" && tr.From == StatusQueued && tr.To == StatusCanceled {
				seen = true
			}
		}
		mu.Unlock()
		if seen {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no queued→canceled transition for victim; got %+v", got)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPoolTracerEvents checks the pool emits enqueue instants, per-job
// spans, retry instants, and worker lifetime spans into its tracer.
func TestPoolTracerEvents(t *testing.T) {
	tr := obs.NewTracer(1024)
	p := NewPool(Options{Workers: 2, Retries: 1, Backoff: time.Millisecond, Tracer: tr})

	p.Submit("ok", func(context.Context) (any, error) { return nil, nil })
	attempts := 0
	p.Submit("flaky", func(context.Context) (any, error) {
		attempts++
		if attempts == 1 {
			return nil, Transient(errors.New("blip"))
		}
		return nil, nil
	})
	p.Wait(context.Background(), "ok")
	p.Wait(context.Background(), "flaky")
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	counts := map[string]int{}
	for _, ev := range tr.Events() {
		counts[ev.Name]++
	}
	if counts["enqueued"] != 2 {
		t.Errorf("enqueued instants = %d, want 2", counts["enqueued"])
	}
	if counts["job ok"] != 1 || counts["job flaky"] != 1 {
		t.Errorf("job spans = %d/%d, want 1/1", counts["job ok"], counts["job flaky"])
	}
	if counts["retry"] != 1 {
		t.Errorf("retry instants = %d, want 1", counts["retry"])
	}
	if counts["worker"] != 2 {
		t.Errorf("worker spans = %d, want 2", counts["worker"])
	}
}

// TestPoolLogging checks the structured log stream covers worker
// lifecycle and job terminal states, with the failure logged at warn.
func TestPoolLogging(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(&lockedWriter{w: &buf, mu: &mu}, nil))
	p := NewPool(Options{Workers: 1, Logger: logger})

	p.Submit("good", func(context.Context) (any, error) { return nil, nil })
	p.Submit("bad", func(context.Context) (any, error) { return nil, errors.New("boom") })
	p.Wait(context.Background(), "good")
	p.Wait(context.Background(), "bad")
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	for _, want := range []string{
		"worker started", "worker stopped",
		`id=good status=done`,
		`level=WARN msg="job finished" id=bad status=failed`,
		"err=boom",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("log stream missing %q:\n%s", want, out)
		}
	}
}

// TestPoolRegisterExposition checks Register publishes the pool's load
// series under the given prefix.
func TestPoolRegisterExposition(t *testing.T) {
	p := NewPool(Options{Workers: 3})
	reg := obs.NewRegistry()
	p.Register(reg, "pool")

	p.Submit("a", func(context.Context) (any, error) { return nil, nil })
	p.Wait(context.Background(), "a")
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	text := sb.String()
	for _, want := range []string{
		"pool_workers 3",
		"pool_jobs_submitted_total 1",
		"pool_jobs_done_total 1",
		"pool_jobs_failed_total 0",
		"pool_queue_depth 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// lockedWriter serialises concurrent handler writes from worker
// goroutines.
type lockedWriter struct {
	w  *bytes.Buffer
	mu *sync.Mutex
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
