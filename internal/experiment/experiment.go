// Package experiment contains one driver per table and figure of the
// paper's evaluation (Section VI) plus the Section III/V analytical
// results and the ablations DESIGN.md calls out. Every driver returns a
// renderable result carrying the regenerated numbers alongside the
// paper's reported values, so EXPERIMENTS.md can be produced mechanically.
package experiment

import (
	"fmt"
	"sort"

	"repro/internal/epc"
	"repro/internal/sim"
)

// Renderable is anything the drivers can return (report.Table,
// report.Series, or a composite).
type Renderable interface {
	Render() string
}

// Multi concatenates several renderables (e.g. Figure 7's two panels).
type Multi []Renderable

// Render implements Renderable.
func (m Multi) Render() string {
	out := ""
	for i, r := range m {
		if i > 0 {
			out += "\n"
		}
		out += r.Render()
	}
	return out
}

// csver is satisfied by report.Table and report.Series.
type csver interface{ CSV() string }

// CSVOf extracts comma-separated data from a result: each table or series
// becomes one CSV block (blocks separated by a blank line). It returns ""
// when the result carries no tabular data.
func CSVOf(r Renderable) string {
	switch v := r.(type) {
	case csver:
		return v.CSV()
	case Multi:
		out := ""
		for _, child := range v {
			if c := CSVOf(child); c != "" {
				if out != "" {
					out += "\n"
				}
				out += c
			}
		}
		return out
	default:
		return ""
	}
}

// Options scales an experiment run.
type Options struct {
	// Rounds is the Monte-Carlo repetition count; 0 means the paper's 100.
	Rounds int
	// MaxCase limits the Table VI cases used (1..4); 0 means all four.
	// Case IV has 50000 tags — full-fidelity runs take minutes.
	MaxCase int
	// Seed is the master seed (default 1).
	Seed uint64
	// Workers bounds parallel rounds (default GOMAXPROCS).
	Workers int
}

func (o Options) normalize() Options {
	if o.Rounds <= 0 {
		o.Rounds = epc.PaperSetup().Rounds
	}
	if o.MaxCase <= 0 || o.MaxCase > 4 {
		o.MaxCase = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Quick returns options sized for tests and smoke benches: cases I–II,
// a handful of rounds.
func Quick() Options { return Options{Rounds: 5, MaxCase: 2, Seed: 1} }

func (o Options) cases() []epc.Case {
	return epc.PaperCases()[:o.MaxCase]
}

// strengths are the paper's evaluated QCD strengths.
func strengths() []int { return epc.PaperSetup().StrengthValues }

// baseConfig assembles a sim.Config for one (case, algorithm, detector).
func (o Options) baseConfig(c epc.Case, alg, det string, strength int) sim.Config {
	return sim.Config{
		Tags:         c.Tags,
		IDBits:       epc.IDBits,
		Seed:         o.Seed,
		Rounds:       o.Rounds,
		Algorithm:    alg,
		FrameSize:    c.Slots,
		Detector:     det,
		Strength:     strength,
		Workers:      o.Workers,
		ConfirmEmpty: alg == sim.AlgFSA,
	}
}

// run executes one aggregate.
func (o Options) run(c epc.Case, alg, det string, strength int) (*sim.Aggregate, error) {
	return sim.Run(o.baseConfig(c, alg, det, strength))
}

// Runner is a named experiment.
type Runner struct {
	ID    string // e.g. "table7", "fig5", "lemma1"
	Title string
	Run   func(Options) (Renderable, error)
}

// Registry lists every experiment in paper order.
func Registry() []Runner {
	return []Runner{
		{ID: "lemma1", Title: "Lemma 1: FSA throughput peaks at 1/e when F = n", Run: Lemma1},
		{ID: "lemma2", Title: "Lemma 2: BT needs 2.885n slots (λ ≈ 0.35)", Run: Lemma2},
		{ID: "table2", Title: "Table II: minimum EI of QCD on FSA", Run: Table2},
		{ID: "table3", Title: "Table III: average EI of QCD on BT", Run: Table3},
		{ID: "table4", Title: "Table IV: CRC-CD vs QCD cost comparison", Run: Table4},
		{ID: "setup", Title: "Tables V & VI: simulation setup and cases", Run: Setup},
		{ID: "fig5", Title: "Figure 5: QCD detection accuracy vs strength", Run: Figure5},
		{ID: "table7", Title: "Table VII: FSA slot census per case", Run: Table7},
		{ID: "table8", Title: "Table VIII: BT slot census per case", Run: Table8},
		{ID: "table9", Title: "Table IX: utilisation rate vs strength", Run: Table9},
		{ID: "fig6", Title: "Figure 6: identification delay, CRC-CD vs QCD", Run: Figure6},
		{ID: "fig7", Title: "Figure 7: transmission time, CRC-CD vs QCD (FSA & BT)", Run: Figure7},
		{ID: "fig8", Title: "Figure 8: measured EI per strength (FSA & BT)", Run: Figure8},
		{ID: "ablation-detector", Title: "Ablation: oracle vs QCD vs CRC-CD", Run: AblationDetector},
		{ID: "ablation-strength", Title: "Ablation: strength sweep 1..16", Run: AblationStrength},
		{ID: "ablation-policy", Title: "Ablation: FSA frame policies under QCD and CRC-CD", Run: AblationFramePolicy},
		{ID: "ablation-protocols", Title: "Ablation: QCD across FSA/BT/Q-adaptive/QT", Run: AblationProtocols},
		{ID: "ablation-estimate", Title: "Ablation: cardinality-estimating frame policies", Run: AblationEstimate},
		{ID: "ablation-energy", Title: "Ablation: per-tag transmitted bits (tag energy)", Run: AblationEnergy},
		{ID: "ablation-overhead", Title: "Ablation: EI with Gen-2 command overhead charged", Run: AblationOverhead},
		{ID: "mobility", Title: "Mobility: miss rate of a flowing population (Sec. VI-D)", Run: Mobility},
		{ID: "floor", Title: "Multi-reader floor (Table V environment)", Run: Floor},
		{ID: "gen2", Title: "Gen-2 command-level inventory: RN16 vs CRC-CD vs QCD", Run: Gen2},
		{ID: "noise", Title: "Channel noise: identification time vs BER", Run: Noise},
		{ID: "capture", Title: "Capture effect: slots/time vs capture probability", Run: Capture},
		{ID: "schedule", Title: "Reader-interference scheduling on the Table V floor", Run: Schedule},
		{ID: "edfsa", Title: "EDFSA grouping vs capped fixed frames", Run: EDFSAExperiment},
		{ID: "workloads", Title: "ID-structure sensitivity: QT vs FSA on EPC-shaped populations", Run: Workloads},
		{ID: "phy", Title: "EI under real Gen-2 PHY link budgets (PIE/FM0/Miller)", Run: Phy},
		{ID: "privacy", Title: "Backward-channel protection: pseudo-ID mixing & same-bit leakage", Run: Privacy},
	}
}

// ByID returns the named experiment.
func ByID(id string) (Runner, bool) {
	for _, r := range Registry() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	var out []string
	for _, r := range Registry() {
		out = append(out, r.ID)
	}
	sort.Strings(out)
	return out
}

func fmtMicros(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.3gs", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.4gms", v/1e3)
	default:
		return fmt.Sprintf("%.4gμs", v)
	}
}
