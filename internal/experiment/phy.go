package experiment

import (
	"repro/internal/aloha"
	"repro/internal/epc"
	"repro/internal/metrics"
	"repro/internal/phy"
	"repro/internal/prng"
	"repro/internal/report"
	"repro/internal/signal"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tagmodel"
	"repro/internal/timing"
)

// Phy re-times the paper's headline comparison under real Gen-2 link
// budgets (PIE reader symbols, FM0/Miller backscatter, T1 turnarounds)
// instead of the symmetric τ = 1 μs/bit. The slot censuses come from the
// same simulations; only the clock changes. The EI must survive every
// in-spec profile for the paper's conclusion to be robust.
func Phy(o Options) (Renderable, error) {
	o = o.normalize()
	c, _ := epc.CaseByName("II")

	// One census per algorithm (ground truth; detector-independent).
	fsaAgg, err := o.run(c, sim.AlgFSA, sim.DetCRCCD, 8)
	if err != nil {
		return nil, err
	}
	btAgg, err := o.run(c, sim.AlgBT, sim.DetCRCCD, 8)
	if err != nil {
		return nil, err
	}
	fsaCensus := metrics.Census{
		Idle:     int64(fsaAgg.Idle.Mean()),
		Single:   int64(fsaAgg.Single.Mean()),
		Collided: int64(fsaAgg.Collided.Mean()),
	}
	btCensus := metrics.Census{
		Idle:     int64(btAgg.Idle.Mean()),
		Single:   int64(btAgg.Single.Mean()),
		Collided: int64(btAgg.Collided.Mean()),
	}

	t := report.NewTable("EI under real Gen-2 link budgets (case II censuses, strength 8)",
		"link profile", "tag bit (μs)", "FSA EI", "BT EI", "paper τ=1 FSA EI")
	paperFSA := report.F(eiForLink(fsaCensus, symmetricLink()), 4)

	profiles := []struct {
		name string
		link phy.Link
	}{
		{"paper τ=1 symmetric", symmetricLink()},
		{"fast (Tari 6.25, M2@320k)", phy.FastLink()},
		{"typical (Tari 12.5, M4@256k)", phy.TypicalLink()},
		{"slow (Tari 25, M8@40k)", phy.SlowLink()},
	}
	for _, p := range profiles {
		t.AddRow(p.name,
			report.F(p.link.Tag.BitMicros(), 3),
			report.F(eiForLink(fsaCensus, p.link), 4),
			report.F(eiForLink(btCensus, p.link), 4),
			paperFSA)
	}
	t.AddNote("only the clock changes between rows; T1 turnarounds dilute EI slightly on slow links")

	// Figure 6 under real clocks: record one session's slot log per
	// detector and retime the identification delays per profile.
	t2 := report.NewTable("Mean identification delay re-clocked per link (case I session, FSA)",
		"link profile", "CRC-CD delay", "QCD-8 delay", "reduction")
	cI, _ := epc.CaseByName("I")
	logs := map[string][]metrics.SlotRecord{}
	for _, detName := range []string{"crccd", "qcd"} {
		cfg := o.baseConfig(cI, sim.AlgFSA, detName, 8)
		sess, err := runLogged(cfg)
		if err != nil {
			return nil, err
		}
		logs[detName] = sess.SlotLog()
	}
	for _, p := range profiles {
		var mean [2]float64
		for i, detName := range []string{"crccd", "qcd"} {
			cost := slotCostForLink(detName, p.link)
			_, delays := metrics.Retime(logs[detName], cost)
			var acc stats.Accumulator
			acc.AddAll(delays)
			mean[i] = acc.Mean()
		}
		t2.AddRow(p.name, fmtMicros(mean[0]), fmtMicros(mean[1]),
			report.Pct((mean[0]-mean[1])/mean[0]))
	}
	t2.AddNote("delays replayed from the same slot logs; the ≈60%% reduction of Figure 6 holds under every profile")
	return Multi{t, t2}, nil
}

// runLogged runs one FSA session with slot logging enabled.
func runLogged(cfg sim.Config) (*metrics.Session, error) {
	det, err := sim.BuildDetector(cfg)
	if err != nil {
		return nil, err
	}
	pop := tagmodel.NewPopulation(cfg.Tags, epc.IDBits, prng.New(cfg.Seed))
	return aloha.RunWithOptions(pop, det, aloha.NewFixed(cfg.FrameSize), timing.Default,
		aloha.Options{KeepSlotLog: true, ConfirmEmpty: true}), nil
}

// slotCostForLink charges a declared slot's airtime under link l for the
// named scheme.
func slotCostForLink(detName string, l phy.Link) metrics.SlotCost {
	return func(declared signal.SlotType, _ bool) float64 {
		const prm, id, unit = 16, epc.IDBits, epc.IDBits + epc.CRCBits
		if detName == "crccd" {
			return l.TagBitsMicros(unit)
		}
		if declared == signal.Single {
			return l.TagBitsMicros(prm) + l.TagBitsMicros(id)
		}
		return l.TagBitsMicros(prm)
	}
}

// symmetricLink approximates the paper's τ = 1 μs/bit with no turnarounds
// inside the phy vocabulary.
func symmetricLink() phy.Link {
	return phy.Link{
		Reader: phy.NewPIE(phy.Tari625, 1.5), // unused: commands not charged here
		Tag:    phy.NewBackscatter(640, phy.TagEncoding(1)),
		// 640 kHz FM0 = 1.5625 μs/bit; scale handled by ratios, so the
		// exact τ value cancels in EI. T1 = 0 matches the paper.
	}
}

// eiForLink times both schemes' sessions over the census c under link l,
// per the paper's accounting (tag airtime only; idle slots charged at the
// nominal reply length):
//
//	CRC-CD: every slot carries l_id+l_crc tag bits.
//	QCD:    idle/collided carry l_prm; single carries l_prm then l_id,
//	        two tag phases (two T1 turnarounds).
func eiForLink(c metrics.Census, l phy.Link) float64 {
	const (
		prm  = 16
		id   = epc.IDBits
		unit = epc.IDBits + epc.CRCBits
	)
	slots := float64(c.Idle + c.Single + c.Collided)
	tCRC := slots * l.TagBitsMicros(unit)
	tQCD := float64(c.Idle+c.Collided)*l.TagBitsMicros(prm) +
		float64(c.Single)*(l.TagBitsMicros(prm)+l.TagBitsMicros(id))
	return (tCRC - tQCD) / tCRC
}
