package experiment

import (
	"fmt"

	"repro/internal/aloha"
	"repro/internal/btree"
	"repro/internal/crc"
	"repro/internal/detect"
	"repro/internal/epc"
	"repro/internal/estimate"
	"repro/internal/mobility"
	"repro/internal/prng"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/tagmodel"
	"repro/internal/timing"
)

// AblationEstimate evaluates cardinality-estimating frame policies
// (Section VI-C's "the reader cannot exactly know the number of tags in
// advance"): slot usage of each estimator versus the fixed Table VI frame
// and the clairvoyant optimum, all under QCD.
func AblationEstimate(o Options) (Renderable, error) {
	o = o.normalize()
	c, _ := epc.CaseByName("II")
	det := detect.NewQCD(8, epc.IDBits)
	tm := timing.Default

	t := report.NewTable("Ablation: frame sizing via cardinality estimation (case II, QCD-8)",
		"policy", "slots (mean)", "throughput", "time")

	runPolicy := func(name string, mk func() aloha.FramePolicy) error {
		var slots, thr, tme stats.Accumulator
		seeds := prng.New(o.Seed)
		for r := 0; r < o.Rounds; r++ {
			pop := tagmodel.NewPopulation(c.Tags, epc.IDBits, prng.New(seeds.Uint64()))
			s := aloha.Run(pop, det, mk(), tm)
			slots.Add(float64(s.Census.Slots()))
			thr.Add(s.Census.Throughput())
			tme.Add(s.TimeMicros)
		}
		t.AddRow(name, report.F(slots.Mean(), 0), report.F(thr.Mean(), 3), fmtMicros(tme.Mean()))
		return nil
	}

	if err := runPolicy("fixed-300 (Table VI)", func() aloha.FramePolicy { return aloha.NewFixed(c.Slots) }); err != nil {
		return nil, err
	}
	for _, est := range estimate.All() {
		est := est
		if err := runPolicy("estimate-"+est.Name(), func() aloha.FramePolicy {
			return estimate.NewPolicy(est, c.Slots)
		}); err != nil {
			return nil, err
		}
	}
	if err := runPolicy("optimal (clairvoyant)", func() aloha.FramePolicy { return aloha.Optimal{N: c.Tags} }); err != nil {
		return nil, err
	}
	t.AddNote("estimators close most of the gap between a mis-sized fixed frame and the Lemma-1 optimum")
	return t, nil
}

// Mobility quantifies the operational consequence of Figure 6's delay
// reduction: in a field tags flow through (Poisson arrivals, finite
// dwell), a slower reader loses more tags. Compares BT and ABS under
// CRC-CD and QCD across dwell times.
func Mobility(o Options) (Renderable, error) {
	o = o.normalize()
	t := report.NewTable("Mobility: miss rate of a flowing tag population (2000 tags/s)",
		"dwell", "protocol", "CRC-CD miss", "QCD-8 miss", "QCD reads/CRC reads")
	const rate = 2000
	duration := 2e6 // 2 s simulated
	for _, dwellMs := range []float64{3, 5, 10, 25} {
		arr := mobility.Arrivals{RatePerSecond: rate, DwellMicros: dwellMs * 1000}
		for _, proto := range []mobility.Protocol{mobility.ProtoBT, mobility.ProtoABS} {
			crcRes := mobility.Run(proto, detect.NewCRCCD(crc.CRC32IEEE, epc.IDBits), arr, duration, o.Seed)
			qcdRes := mobility.Run(proto, detect.NewQCD(8, epc.IDBits), arr, duration, o.Seed)
			ratio := 0.0
			if crcRes.Read > 0 {
				ratio = float64(qcdRes.Read) / float64(crcRes.Read)
			}
			t.AddRow(
				fmt.Sprintf("%.0fms", dwellMs),
				proto.String(),
				report.Pct(crcRes.MissRate()),
				report.Pct(qcdRes.MissRate()),
				report.F(ratio, 2),
			)
		}
	}
	t.AddNote("miss = tag left the field unread; QCD's shorter slots read the same flow with far fewer losses")
	return t, nil
}

// AblationEnergy accounts per-tag transmitted bits — the dominant energy
// cost of a passive tag's backscatter — under each detector and protocol.
// QCD tags transmit only 2l bits in non-single slots, so their energy
// budget drops along with the reader's airtime.
func AblationEnergy(o Options) (Renderable, error) {
	o = o.normalize()
	c, _ := epc.CaseByName("I")
	tm := timing.Default
	t := report.NewTable("Ablation: mean bits transmitted per tag (case I)",
		"protocol", "CRC-CD", "QCD-8", "saving")
	for _, proto := range []string{"fsa", "bt"} {
		means := map[string]float64{}
		for _, detName := range []string{"crccd", "qcd"} {
			var det detect.Detector
			if detName == "qcd" {
				det = detect.NewQCD(8, epc.IDBits)
			} else {
				det = detect.NewCRCCD(crc.CRC32IEEE, epc.IDBits)
			}
			var acc stats.Accumulator
			seeds := prng.New(o.Seed)
			for r := 0; r < o.Rounds; r++ {
				pop := tagmodel.NewPopulation(c.Tags, epc.IDBits, prng.New(seeds.Uint64()))
				if proto == "fsa" {
					aloha.Run(pop, det, aloha.NewFixed(c.Slots), tm)
				} else {
					btree.Run(pop, det, tm)
				}
				for _, tag := range pop {
					acc.Add(float64(tag.BitsSent))
				}
			}
			means[detName] = acc.Mean()
		}
		saving := (means["crccd"] - means["qcd"]) / means["crccd"]
		t.AddRow(proto,
			report.F(means["crccd"], 0)+" bits",
			report.F(means["qcd"], 0)+" bits",
			report.Pct(saving))
	}
	t.AddNote("CRC-CD tags retransmit the 96-bit ID+CRC in every contention; QCD tags send 16-bit preambles until singled out")
	return t, nil
}

// AblationOverhead re-evaluates EI when reader-to-tag command airtime
// (Query/QueryRep/ACK, which the paper's methodology excludes) is charged
// per slot, showing the headline gain is robust to the excluded term.
func AblationOverhead(o Options) (Renderable, error) {
	o = o.normalize()
	t := report.NewTable("Ablation: EI with Gen-2 command overhead charged per slot (FSA)",
		"case", "EI (paper methodology)", "EI (with command bits)")
	// Per-slot command cost: a QueryRep opens every slot; a single slot
	// additionally carries an ACK. Both schemes pay the same commands,
	// which dilutes — but must not erase — the saving.
	const perSlot = epc.QueryRepBits
	const perSingle = epc.AckBits
	for _, c := range o.cases() {
		crcAgg, err := o.run(c, "fsa", "crccd", 8)
		if err != nil {
			return nil, err
		}
		qcdAgg, err := o.run(c, "fsa", "qcd", 8)
		if err != nil {
			return nil, err
		}
		ei := (crcAgg.TimeMicros.Mean() - qcdAgg.TimeMicros.Mean()) / crcAgg.TimeMicros.Mean()
		crcT := crcAgg.TimeMicros.Mean() + perSlot*crcAgg.Slots.Mean() + perSingle*crcAgg.Single.Mean()
		qcdT := qcdAgg.TimeMicros.Mean() + perSlot*qcdAgg.Slots.Mean() + perSingle*qcdAgg.Single.Mean()
		eiOver := (crcT - qcdT) / crcT
		t.AddRow(c.Name, report.F(ei, 4), report.F(eiOver, 4))
	}
	t.AddNote("command bits at τ=1μs: QueryRep=%d per slot, ACK=%d per single slot, identical under both schemes", perSlot, perSingle)
	return t, nil
}
