package experiment

import (
	"fmt"

	"repro/internal/epc"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Figure5 reproduces the accuracy comparison: QCD detection accuracy under
// FSA for strengths 4/8/16 across the Table VI cases.
func Figure5(o Options) (Renderable, error) {
	o = o.normalize()
	t := report.NewTable("Figure 5: QCD collision-detection accuracy (FSA)",
		"case", "tags", "4-bit", "8-bit", "16-bit", "paper shape")
	for _, c := range o.cases() {
		row := []string{c.Name, fmt.Sprintf("%d", c.Tags)}
		for _, s := range strengths() {
			agg, err := o.run(c, sim.AlgFSA, sim.DetQCD, s)
			if err != nil {
				return nil, err
			}
			row = append(row, report.Pct(agg.Accuracy.Mean()))
		}
		row = append(row, "4-bit ≈ 94%, 8-bit ≈ 100%, 16-bit ≈ 100%")
		t.AddRow(row...)
	}
	t.AddNote("accuracy = correctly detected collided slots / all collided slots (n'_c / n_c)")
	return t, nil
}

// Table7 reproduces the FSA slot census.
func Table7(o Options) (Renderable, error) {
	o = o.normalize()
	t := report.NewTable("Table VII: framed slotted ALOHA simulation (CRC-CD reader, constant frame)",
		"case", "#frames", "#idle", "#single", "#collided", "throughput", "paper λ")
	paperLambda := map[string]string{"I": "0.25", "II": "0.22", "III": "0.20", "IV": "0.20"}
	for _, c := range o.cases() {
		agg, err := o.run(c, sim.AlgFSA, sim.DetCRCCD, 8)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			c.Name,
			report.F(agg.Frames.Mean(), 1),
			report.I(agg.Idle.Mean()),
			report.I(agg.Single.Mean()),
			report.I(agg.Collided.Mean()),
			report.F(agg.Throughput.Mean(), 2),
			paperLambda[c.Name],
		)
	}
	t.AddNote("census counts ground-truth slot types; the census is detector-independent up to CRC aliasing (~2^-32)")
	t.AddNote("the paper's case-I idle/collided cells are swapped (its own cases II–IV have collided/n ≈ 0.79)")
	return t, nil
}

// Table8 reproduces the BT slot census.
func Table8(o Options) (Renderable, error) {
	o = o.normalize()
	t := report.NewTable("Table VIII: binary tree simulation",
		"case", "#slots", "#idle", "#single", "#collided", "throughput", "paper λ")
	paperLambda := map[string]string{"I": "0.36", "II": "0.35", "III": "0.34", "IV": "0.34"}
	for _, c := range o.cases() {
		agg, err := o.run(c, sim.AlgBT, sim.DetCRCCD, 8)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			c.Name,
			report.I(agg.Slots.Mean()),
			report.I(agg.Idle.Mean()),
			report.I(agg.Single.Mean()),
			report.I(agg.Collided.Mean()),
			report.F(agg.Throughput.Mean(), 2),
			paperLambda[c.Name],
		)
	}
	return t, nil
}

// Table9 reproduces the utilisation-rate comparison: UR of QCD at
// strengths 4/8/16 on the FSA workloads.
func Table9(o Options) (Renderable, error) {
	o = o.normalize()
	t := report.NewTable("Table IX: UR comparison among QCD strengths (FSA)",
		"case", "4-bit", "8-bit", "16-bit", "paper (4/8/16)")
	paper := map[string]string{
		"I":   "66.78% / 50.13% / 33.44%",
		"II":  "63.80% / 46.84% / 30.58%",
		"III": "62.33% / 45.27% / 29.26%",
		"IV":  "61.15% / 44.03% / 28.24%",
	}
	for _, c := range o.cases() {
		row := []string{c.Name}
		for _, s := range strengths() {
			agg, err := o.run(c, sim.AlgFSA, sim.DetQCD, s)
			if err != nil {
				return nil, err
			}
			row = append(row, report.Pct(agg.UR.Mean()))
		}
		row = append(row, paper[c.Name])
		t.AddRow(row...)
	}
	t.AddNote("UR = N1·l_id / (N1·(l_prm+l_id) + (N0+Nc)·l_prm), measured from actual airtime")
	return t, nil
}

// Figure6 reproduces the identification-delay comparison between CRC-CD
// and QCD (8-bit) on FSA: mean delay and its spread per case.
func Figure6(o Options) (Renderable, error) {
	o = o.normalize()
	t := report.NewTable("Figure 6: identification delay, CRC-CD vs QCD-8 (FSA)",
		"case", "CRC-CD mean", "QCD mean", "reduction", "CRC-CD CV", "QCD CV", "paper")
	for _, c := range o.cases() {
		crcAgg, err := o.run(c, sim.AlgFSA, sim.DetCRCCD, 8)
		if err != nil {
			return nil, err
		}
		qcdAgg, err := o.run(c, sim.AlgFSA, sim.DetQCD, 8)
		if err != nil {
			return nil, err
		}
		red := (crcAgg.Delay.Mean() - qcdAgg.Delay.Mean()) / crcAgg.Delay.Mean()
		cvC := crcAgg.Delay.StdDev() / crcAgg.Delay.Mean()
		cvQ := qcdAgg.Delay.StdDev() / qcdAgg.Delay.Mean()
		t.AddRow(
			c.Name,
			fmtMicros(crcAgg.Delay.Mean()),
			fmtMicros(qcdAgg.Delay.Mean()),
			report.Pct(red),
			report.F(cvC, 3),
			report.F(cvQ, 3),
			">80% reduction, tighter spread",
		)
	}
	t.AddNote("delay = time from session start to a tag's acknowledgement; CV = stddev/mean over all tags and rounds")

	// The distribution view: normalised delay histograms (delay / mean)
	// from one representative case-I session per scheme — the paper's
	// "more sharply concentrate around the mean" claim, drawable.
	out := Multi{t}
	cI, _ := epc.CaseByName("I")
	for _, detName := range []string{sim.DetCRCCD, sim.DetQCD} {
		sess, err := sim.RunRound(o.baseConfig(cI, sim.AlgFSA, detName, 8), o.Seed)
		if err != nil {
			return nil, err
		}
		normalized := stats.Normalize(sess.DelaysMicros)
		h := stats.NewHistogram(0, 2.5, 10)
		for _, d := range normalized {
			h.Add(d)
		}
		out = append(out, histogramRenderable{
			title: fmt.Sprintf("Figure 6 distribution (%s): delay / mean, case I", detName),
			lo:    0, hi: 2.5, buckets: h.Buckets,
		})
	}
	return out, nil
}

// histogramRenderable adapts a histogram to the Renderable interface.
type histogramRenderable struct {
	title   string
	lo, hi  float64
	buckets []int64
}

func (h histogramRenderable) Render() string {
	return report.HistogramChart(h.title, h.lo, h.hi, h.buckets, 40)
}

// Figure7 reproduces the transmission-time comparison on FSA (panel a)
// and BT (panel b), CRC-CD vs QCD-8, in μs.
func Figure7(o Options) (Renderable, error) {
	o = o.normalize()
	out := Multi{}
	for _, alg := range []struct{ id, label string }{
		{sim.AlgFSA, "FSA"}, {sim.AlgBT, "BT"},
	} {
		s := report.NewSeries(
			fmt.Sprintf("Figure 7 (%s): transmission time, CRC-CD vs QCD-8", alg.label),
			"tags", "time (μs)", "CRC-CD", "QCD")
		for _, c := range o.cases() {
			crcAgg, err := o.run(c, alg.id, sim.DetCRCCD, 8)
			if err != nil {
				return nil, err
			}
			qcdAgg, err := o.run(c, alg.id, sim.DetQCD, 8)
			if err != nil {
				return nil, err
			}
			s.Add(float64(c.Tags), crcAgg.TimeMicros.Mean(), qcdAgg.TimeMicros.Mean())
		}
		out = append(out, s)
	}
	return out, nil
}

// Figure8 reproduces the measured EI per strength per case on FSA and BT.
func Figure8(o Options) (Renderable, error) {
	o = o.normalize()
	out := Multi{}
	paperShape := map[string]string{
		sim.AlgFSA: "8-bit: 0.65→0.70 rising with n (theory floor 0.5864)",
		sim.AlgBT:  "stable per strength: ≈0.67 / 0.60 / 0.43",
	}
	for _, alg := range []struct{ id, label string }{
		{sim.AlgFSA, "FSA"}, {sim.AlgBT, "BT"},
	} {
		t := report.NewTable(
			fmt.Sprintf("Figure 8 (%s): measured EI of QCD over CRC-CD", alg.label),
			"case", "strength=4", "strength=8", "strength=16")
		for _, c := range o.cases() {
			crcAgg, err := o.run(c, alg.id, sim.DetCRCCD, 8)
			if err != nil {
				return nil, err
			}
			row := []string{c.Name}
			for _, s := range strengths() {
				qcdAgg, err := o.run(c, alg.id, sim.DetQCD, s)
				if err != nil {
					return nil, err
				}
				ei := (crcAgg.TimeMicros.Mean() - qcdAgg.TimeMicros.Mean()) / crcAgg.TimeMicros.Mean()
				row = append(row, report.F(ei, 4))
			}
			t.AddRow(row...)
		}
		t.AddNote("paper shape: %s", paperShape[alg.id])
		out = append(out, t)
	}
	return out, nil
}
