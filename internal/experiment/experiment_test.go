package experiment

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	want := []string{
		"lemma1", "lemma2", "table2", "table3", "table4", "setup",
		"fig5", "table7", "table8", "table9", "fig6", "fig7", "fig8",
	}
	have := map[string]bool{}
	for _, r := range Registry() {
		have[r.ID] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("registry missing paper artifact %q", id)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("table7"); !ok {
		t.Error("ByID(table7) not found")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID found a ghost")
	}
	if len(IDs()) != len(Registry()) {
		t.Error("IDs()/Registry() length mismatch")
	}
}

func TestClosedFormExperimentsRender(t *testing.T) {
	for _, id := range []string{"table2", "table3", "table4", "setup"} {
		r, _ := ByID(id)
		out, err := r.Run(Quick())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(out.Render()) < 50 {
			t.Errorf("%s rendered suspiciously little:\n%s", id, out.Render())
		}
	}
}

func TestTable2ExactValues(t *testing.T) {
	r, _ := ByID("table2")
	out, err := r.Run(Quick())
	if err != nil {
		t.Fatal(err)
	}
	s := out.Render()
	for _, v := range []string{"0.6698", "0.5864", "0.4198"} {
		if !strings.Contains(s, v) {
			t.Errorf("Table II missing %s:\n%s", v, s)
		}
	}
}

func TestTable3ExactValues(t *testing.T) {
	r, _ := ByID("table3")
	out, err := r.Run(Quick())
	if err != nil {
		t.Fatal(err)
	}
	s := out.Render()
	for _, v := range []string{"0.6856", "0.6023", "0.4356"} {
		if !strings.Contains(s, v) {
			t.Errorf("Table III missing %s:\n%s", v, s)
		}
	}
}

func TestTable7QuickShape(t *testing.T) {
	r, _ := ByID("table7")
	out, err := r.Run(Quick())
	if err != nil {
		t.Fatal(err)
	}
	s := out.Render()
	if !strings.Contains(s, "I") || !strings.Contains(s, "II") {
		t.Errorf("Table VII missing cases:\n%s", s)
	}
	// Case II single slots must be 500 (every tag identified once).
	if !strings.Contains(s, "500") {
		t.Errorf("Table VII missing the 500-singles column:\n%s", s)
	}
}

func TestFigure5QuickAccuracy(t *testing.T) {
	r, _ := ByID("fig5")
	out, err := r.Run(Quick())
	if err != nil {
		t.Fatal(err)
	}
	s := out.Render()
	// 16-bit accuracy should print as 100.00%.
	if !strings.Contains(s, "100.00%") {
		t.Errorf("Figure 5 has no ~100%% cell:\n%s", s)
	}
}

func TestFigure8QuickEIBand(t *testing.T) {
	r, _ := ByID("fig8")
	out, err := r.Run(Options{Rounds: 3, MaxCase: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := out.Render()
	// Extract all numeric cells that look like EIs and check the band.
	found := 0
	for _, f := range strings.Fields(s) {
		if v, err := strconv.ParseFloat(f, 64); err == nil && v > 0.3 && v < 0.9 {
			found++
		}
	}
	if found < 6 {
		t.Errorf("Figure 8 produced %d EI-like cells, want ≥6 (2 panels × 3 strengths):\n%s", found, s)
	}
}

func TestFigure6ShowsLargeReduction(t *testing.T) {
	r, _ := ByID("fig6")
	out, err := r.Run(Options{Rounds: 3, MaxCase: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := out.Render()
	if !strings.Contains(s, "%") {
		t.Errorf("Figure 6 shows no reduction percentage:\n%s", s)
	}
}

func TestAblationsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations take a few seconds")
	}
	for _, id := range []string{"ablation-detector", "ablation-strength", "ablation-policy", "ablation-protocols"} {
		r, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		out, err := r.Run(Options{Rounds: 2, MaxCase: 1, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(out.Render()) < 50 {
			t.Errorf("%s rendered too little", id)
		}
	}
}

func TestExtensionExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("extension experiments take a few seconds")
	}
	for _, id := range []string{
		"ablation-estimate", "ablation-energy", "ablation-overhead", "mobility",
		"gen2", "schedule", "edfsa", "workloads", "phy", "privacy",
	} {
		r, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		out, err := r.Run(Options{Rounds: 2, MaxCase: 1, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		s := out.Render()
		if len(s) < 50 {
			t.Errorf("%s rendered too little", id)
		}
		if !strings.Contains(s, "note:") {
			t.Errorf("%s missing its methodology note:\n%s", id, s)
		}
	}
	// Series-shaped extension experiments.
	for _, id := range []string{"noise", "capture"} {
		r, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		out, err := r.Run(Options{Rounds: 2, MaxCase: 1, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(out.Render(), "#") {
			t.Errorf("%s did not render a series header", id)
		}
	}
}

func TestFloorRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("floor experiment takes a few seconds")
	}
	r, _ := ByID("floor")
	out, err := r.Run(Options{Rounds: 1, MaxCase: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Render(), "100 readers") {
		t.Errorf("floor output:\n%s", out.Render())
	}
}

func TestLemmasQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("lemma sweeps take a few seconds")
	}
	for _, id := range []string{"lemma1", "lemma2"} {
		r, _ := ByID(id)
		out, err := r.Run(Options{Rounds: 2, MaxCase: 2, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(out.Render()) < 50 {
			t.Errorf("%s rendered too little", id)
		}
	}
}

func TestCSVOf(t *testing.T) {
	r, _ := ByID("table2")
	out, err := r.Run(Quick())
	if err != nil {
		t.Fatal(err)
	}
	csv := CSVOf(out)
	if !strings.Contains(csv, "0.5864") || !strings.Contains(csv, "strength") {
		t.Errorf("CSVOf(table2):\n%s", csv)
	}
	// Multi results concatenate their blocks.
	setup, _ := ByID("setup")
	out, err = setup.Run(Quick())
	if err != nil {
		t.Fatal(err)
	}
	csv = CSVOf(out)
	if !strings.Contains(csv, "parameter") || !strings.Contains(csv, "case") {
		t.Errorf("CSVOf(setup) missing blocks:\n%s", csv)
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.normalize()
	if o.Rounds != 100 || o.MaxCase != 4 || o.Seed != 1 {
		t.Errorf("defaults = %+v", o)
	}
	o = Options{Rounds: 7, MaxCase: 9}.normalize()
	if o.Rounds != 7 || o.MaxCase != 4 {
		t.Errorf("clamping = %+v", o)
	}
	if len(Quick().cases()) != 2 {
		t.Error("Quick should use two cases")
	}
}
