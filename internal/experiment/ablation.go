package experiment

import (
	"fmt"

	"repro/internal/aloha"
	"repro/internal/crc"
	"repro/internal/deploy"
	"repro/internal/detect"
	"repro/internal/epc"
	"repro/internal/prng"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/tagmodel"
	"repro/internal/timing"
)

// AblationDetector isolates where QCD's gain comes from by inserting the
// oracle detector between CRC-CD and QCD: the oracle has perfect detection
// with a 1-bit contention burst, lower-bounding any scheme's time.
func AblationDetector(o Options) (Renderable, error) {
	o = o.normalize()
	t := report.NewTable("Ablation: detector comparison on FSA (time per session)",
		"case", "CRC-CD", "QCD-8", "oracle", "QCD gap to oracle")
	for _, c := range o.cases() {
		var times [3]float64
		for i, det := range []string{sim.DetCRCCD, sim.DetQCD, sim.DetOracle} {
			agg, err := o.run(c, sim.AlgFSA, det, 8)
			if err != nil {
				return nil, err
			}
			times[i] = agg.TimeMicros.Mean()
		}
		gap := (times[1] - times[2]) / times[2]
		t.AddRow(c.Name,
			fmtMicros(times[0]), fmtMicros(times[1]), fmtMicros(times[2]),
			report.Pct(gap))
	}
	t.AddNote("the oracle pays 1 contention bit per slot; QCD's residual gap is its 2l-bit preamble")
	return t, nil
}

// AblationStrength sweeps QCD strength l = 1..16, exposing the
// accuracy/overhead tradeoff of Section IV-B beyond the paper's three
// points.
func AblationStrength(o Options) (Renderable, error) {
	o = o.normalize()
	c, _ := epc.CaseByName("II")
	s := report.NewSeries("Ablation: QCD strength sweep (case II, FSA)",
		"strength (bits)", "metric", "accuracy", "UR", "EI vs CRC-CD")
	crcAgg, err := o.run(c, sim.AlgFSA, sim.DetCRCCD, 8)
	if err != nil {
		return nil, err
	}
	for _, l := range []int{1, 2, 3, 4, 6, 8, 10, 12, 16} {
		agg, err := o.run(c, sim.AlgFSA, sim.DetQCD, l)
		if err != nil {
			return nil, err
		}
		ei := (crcAgg.TimeMicros.Mean() - agg.TimeMicros.Mean()) / crcAgg.TimeMicros.Mean()
		s.Add(float64(l), agg.Accuracy.Mean(), agg.UR.Mean(), ei)
	}
	return s, nil
}

// AblationFramePolicy shows QCD's gain is orthogonal to frame adaptation:
// it speeds up fixed, Schoute-dynamic and Gen2 Q-adaptive FSA alike.
func AblationFramePolicy(o Options) (Renderable, error) {
	o = o.normalize()
	c, _ := epc.CaseByName("II")
	t := report.NewTable("Ablation: frame policies under both detectors (case II)",
		"policy", "CRC-CD time", "QCD-8 time", "EI")
	type pol struct {
		name   string
		policy string
		alg    string
	}
	pols := []pol{
		{"fixed-300", sim.PolicyFixed, sim.AlgFSA},
		{"schoute", sim.PolicySchoute, sim.AlgFSA},
		{"lowerbound", sim.PolicyLowerBound, sim.AlgFSA},
		{"optimal", sim.PolicyOptimal, sim.AlgFSA},
		{"gen2-Q", "", sim.AlgQAdaptive},
	}
	for _, p := range pols {
		run := func(det string) (float64, error) {
			cfg := o.baseConfig(c, p.alg, det, 8)
			cfg.FramePolicy = p.policy
			agg, err := sim.Run(cfg)
			if err != nil {
				return 0, err
			}
			return agg.TimeMicros.Mean(), nil
		}
		tCRC, err := run(sim.DetCRCCD)
		if err != nil {
			return nil, err
		}
		tQCD, err := run(sim.DetQCD)
		if err != nil {
			return nil, err
		}
		t.AddRow(p.name, fmtMicros(tCRC), fmtMicros(tQCD), report.Pct((tCRC-tQCD)/tCRC))
	}
	t.AddNote("the paper's 'seamless adoption' claim: EI stays ≈0.5–0.7 under every frame policy")
	return t, nil
}

// AblationProtocols plugs QCD into every implemented anti-collision
// protocol and reports the speedup over CRC-CD.
func AblationProtocols(o Options) (Renderable, error) {
	o = o.normalize()
	c, _ := epc.CaseByName("I")
	t := report.NewTable("Ablation: QCD across protocols (case I)",
		"protocol", "CRC-CD time", "QCD-8 time", "EI", "slots (QCD)")
	for _, alg := range []string{sim.AlgFSA, sim.AlgBT, sim.AlgQAdaptive, sim.AlgQT} {
		crcAgg, err := o.run(c, alg, sim.DetCRCCD, 8)
		if err != nil {
			return nil, err
		}
		qcdAgg, err := o.run(c, alg, sim.DetQCD, 8)
		if err != nil {
			return nil, err
		}
		ei := (crcAgg.TimeMicros.Mean() - qcdAgg.TimeMicros.Mean()) / crcAgg.TimeMicros.Mean()
		t.AddRow(alg, fmtMicros(crcAgg.TimeMicros.Mean()), fmtMicros(qcdAgg.TimeMicros.Mean()),
			report.Pct(ei), report.I(qcdAgg.Slots.Mean()))
	}
	return t, nil
}

// Floor runs the full Table V environment: 100 readers on a 100 m grid,
// tags scattered uniformly, sequential reader activation, per-reader FSA
// sessions under CRC-CD and QCD.
func Floor(o Options) (Renderable, error) {
	o = o.normalize()
	t := report.NewTable("Multi-reader floor (Table V): 100 readers, 100m×100m, 3m range",
		"tags on floor", "covered", "identified", "CRC-CD time", "QCD-8 time", "EI")

	for _, n := range []int{1000, 5000} {
		var tCRC, tQCD float64
		var covered, identified int
		for _, det := range []detect.Detector{
			detect.NewCRCCD(crc.CRC32IEEE, epc.IDBits),
			detect.NewQCD(8, epc.IDBits),
		} {
			rng := prng.New(o.Seed)
			floor := deploy.NewFloor(100)
			floor.PlaceReadersGrid(100, 3)
			pop := tagmodel.NewPopulation(n, epc.IDBits, rng)
			floor.PlaceTags(pop, rng)
			tm := timing.Default
			micros, ident := floor.RunSequential(func(sub tagmodel.Population) float64 {
				return aloha.Run(sub, det, aloha.NewFixed(maxi(1, len(sub))), tm).TimeMicros
			})
			if _, isQCD := det.(*detect.QCD); isQCD {
				tQCD = micros
			} else {
				tCRC = micros
			}
			identified = ident
			covered = int(floor.Coverage() * float64(n))
		}
		ei := (tCRC - tQCD) / tCRC
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", covered),
			fmt.Sprintf("%d", identified), fmtMicros(tCRC), fmtMicros(tQCD), report.Pct(ei))
	}
	t.AddNote("a 10m reader grid with 3m range covers ~28%% of the floor; uncovered tags are unreachable by design")
	return t, nil
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
