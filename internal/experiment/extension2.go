package experiment

import (
	"fmt"

	"repro/internal/air"
	"repro/internal/aloha"
	"repro/internal/crc"
	"repro/internal/deploy"
	"repro/internal/detect"
	"repro/internal/epc"
	"repro/internal/gen2"
	"repro/internal/metrics"
	"repro/internal/prng"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/tagmodel"
	"repro/internal/timing"
)

// Gen2 evaluates the paper's compatibility claim at the command level:
// the full EPC Gen-2 inventory exchange (Query/QueryRep/ACK airtime
// charged, RN16 handshake semantics) with the slot-opening reply being
// stock RN16, CRC-CD, or QCD.
func Gen2(o Options) (Renderable, error) {
	o = o.normalize()
	c, _ := epc.CaseByName("II")
	t := report.NewTable("Gen-2 command-level inventory (case II, commands charged)",
		"reply scheme", "time", "wasted ACKs", "queries", "command bits", "EI vs RN16")
	configs := []gen2.Config{
		gen2.DefaultConfig(gen2.ReplyRN16, nil),
		gen2.DefaultConfig(gen2.ReplyCRCCD, detect.NewCRCCD(crc.CRC32IEEE, epc.IDBits)),
		gen2.DefaultConfig(gen2.ReplyQCD, detect.NewQCD(8, epc.IDBits)),
	}
	var baseline float64
	for i, cfg := range configs {
		var tme, wasted, queries, cmdBits stats.Accumulator
		seeds := prng.New(o.Seed)
		for r := 0; r < o.Rounds; r++ {
			seed := seeds.Uint64()
			pop := tagmodel.NewPopulation(c.Tags, epc.IDBits, prng.New(seed))
			res := gen2.Run(pop, cfg, timing.Default, seed)
			tme.Add(res.Session.TimeMicros)
			wasted.Add(float64(res.WastedACKs))
			queries.Add(float64(res.Queries))
			cmdBits.Add(float64(res.CommandBits))
		}
		if i == 0 {
			baseline = tme.Mean()
		}
		ei := (baseline - tme.Mean()) / baseline
		t.AddRow(cfg.Scheme.String(),
			fmtMicros(tme.Mean()),
			report.F(wasted.Mean(), 0),
			report.F(queries.Mean(), 1),
			report.F(cmdBits.Mean(), 0),
			report.Pct(ei))
	}
	t.AddNote("stock RN16 carries no self-check: every collided slot costs a full wasted ACK exchange")
	return t, nil
}

// Noise sweeps the channel bit-error rate: noise fails the self-check of
// both schemes closed (singles re-arbitrated, never mis-read), so
// identification slows gracefully; QCD's 16-bit preamble is a smaller
// noise target than the 96-bit ID+CRC.
func Noise(o Options) (Renderable, error) {
	o = o.normalize()
	c, _ := epc.CaseByName("I")
	s := report.NewSeries("Noise: identification time vs channel BER (case I, FSA)",
		"BER", "time (μs)", "CRC-CD", "QCD-8", "EI")
	tm := timing.Default
	for _, ber := range []float64{0, 1e-4, 1e-3, 3e-3, 1e-2} {
		times := map[string]float64{}
		for _, detName := range []string{"crccd", "qcd"} {
			var det detect.Detector
			if detName == "qcd" {
				det = detect.NewQCD(8, epc.IDBits)
			} else {
				det = detect.NewCRCCD(crc.CRC32IEEE, epc.IDBits)
			}
			var acc stats.Accumulator
			seeds := prng.New(o.Seed)
			for r := 0; r < o.Rounds; r++ {
				seed := seeds.Uint64()
				pop := tagmodel.NewPopulation(c.Tags, epc.IDBits, prng.New(seed))
				var im *air.Impairment
				if ber > 0 {
					im = &air.Impairment{BER: ber, Rng: prng.New(seed ^ 0x9015e)}
				}
				sess := aloha.RunWithOptions(pop, det, aloha.NewFixed(c.Slots), tm,
					aloha.Options{Impairment: im})
				acc.Add(sess.TimeMicros)
			}
			times[detName] = acc.Mean()
		}
		ei := (times["crccd"] - times["qcd"]) / times["crccd"]
		s.Add(ber, times["crccd"], times["qcd"], ei)
	}
	return s, nil
}

// Capture sweeps the capture-effect probability: captures convert
// collisions into reads for both schemes, shrinking total slots while
// preserving QCD's advantage.
func Capture(o Options) (Renderable, error) {
	o = o.normalize()
	c, _ := epc.CaseByName("I")
	s := report.NewSeries("Capture effect: slots and time vs capture probability (case I, FSA, QCD-8)",
		"capture prob", "mean", "slots", "time (μs)")
	tm := timing.Default
	det := detect.NewQCD(8, epc.IDBits)
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		var slots, tme stats.Accumulator
		seeds := prng.New(o.Seed)
		for r := 0; r < o.Rounds; r++ {
			seed := seeds.Uint64()
			pop := tagmodel.NewPopulation(c.Tags, epc.IDBits, prng.New(seed))
			var im *air.Impairment
			if p > 0 {
				im = &air.Impairment{CaptureProb: p, Rng: prng.New(seed ^ 0xca9)}
			}
			sess := aloha.RunWithOptions(pop, det, aloha.NewFixed(c.Slots), tm,
				aloha.Options{Impairment: im})
			slots.Add(float64(sess.Census.Slots()))
			tme.Add(sess.TimeMicros)
		}
		s.Add(p, slots.Mean(), tme.Mean())
	}
	return s, nil
}

// Schedule compares sequential reader activation against the
// interference-colored parallel schedule on the Table V floor (the
// Section II reader-collision remedies, made quantitative).
func Schedule(o Options) (Renderable, error) {
	o = o.normalize()
	t := report.NewTable("Reader scheduling on the Table V floor (QCD-8, 3m range)",
		"interference radius", "colors", "sequential", "scheduled makespan", "speedup")
	det := detect.NewQCD(8, epc.IDBits)
	tm := timing.Default
	session := func(sub tagmodel.Population) float64 {
		f := len(sub)
		if f < 1 {
			f = 1
		}
		return aloha.Run(sub, det, aloha.NewFixed(f), tm).TimeMicros
	}
	const tags = 2000
	for _, radius := range []float64{10, 15, 25, 40} {
		f1, _ := floorWithTags(tags, o.Seed)
		seq, _ := f1.RunSequential(session)
		f2, _ := floorWithTags(tags, o.Seed)
		res := f2.RunScheduled(radius, session)
		t.AddRow(fmt.Sprintf("%.0fm", radius),
			fmt.Sprintf("%d", res.Colors),
			fmtMicros(seq),
			fmtMicros(res.MakespanMicros),
			report.F(res.Speedup(), 1))
	}
	t.AddNote("speedup = summed airtime / makespan; wider interference radii force more colors and less parallelism")

	// The failure mode scheduling avoids: all readers keyed up at once.
	f3, _ := floorWithTags(tags, o.Seed)
	un := f3.RunUnscheduled(20, session)
	t2 := report.NewTable("Unscheduled all-on activation (carrier radius 20m): Reader-Tag collisions",
		"identified", "jammed (covered but drowned)", "makespan")
	t2.AddRow(fmt.Sprintf("%d", un.Identified), fmt.Sprintf("%d", un.Jammed), fmtMicros(un.MakespanMicros))
	t2.AddNote("Section II: without scheduling, a neighbour reader's carrier drowns the tag's backscatter")
	return Multi{t, t2}, nil
}

func floorWithTags(n int, seed uint64) (*deploy.Floor, tagmodel.Population) {
	rng := prng.New(seed)
	f := deploy.NewFloor(100)
	f.PlaceReadersGrid(100, 3)
	pop := tagmodel.NewPopulation(n, epc.IDBits, rng)
	f.PlaceTags(pop, rng)
	return f, pop
}

// EDFSAExperiment compares enhanced dynamic FSA (Lee et al., the paper's
// reference [8]) against capped fixed frames under both detectors.
func EDFSAExperiment(o Options) (Renderable, error) {
	o = o.normalize()
	t := report.NewTable("EDFSA (frame cap 256) vs capped fixed FSA, 2000 tags",
		"algorithm", "CRC-CD time", "QCD-8 time", "slots (QCD)", "λ (QCD)")
	tm := timing.Default
	run := func(det detect.Detector, edfsa bool, seed uint64) (float64, int64, float64) {
		var tme, slots, thr stats.Accumulator
		seeds := prng.New(seed)
		for r := 0; r < o.Rounds; r++ {
			pop := tagmodel.NewPopulation(2000, epc.IDBits, prng.New(seeds.Uint64()))
			var sess *metrics.Session
			if edfsa {
				sess = aloha.RunEDFSA(pop, det, aloha.EDFSAConfig{MaxFrame: 256}, tm)
			} else {
				sess = aloha.Run(pop, det, aloha.NewFixed(256), tm)
			}
			tme.Add(sess.TimeMicros)
			slots.Add(float64(sess.Census.Slots()))
			thr.Add(sess.Census.Throughput())
		}
		return tme.Mean(), int64(slots.Mean()), thr.Mean()
	}
	for _, alg := range []struct {
		name  string
		edfsa bool
	}{{"fixed-256", false}, {"edfsa-256", true}} {
		crcT, _, _ := run(detect.NewCRCCD(crc.CRC32IEEE, epc.IDBits), alg.edfsa, o.Seed)
		qcdT, qcdSlots, qcdThr := run(detect.NewQCD(8, epc.IDBits), alg.edfsa, o.Seed)
		t.AddRow(alg.name, fmtMicros(crcT), fmtMicros(qcdT),
			fmt.Sprintf("%d", qcdSlots), report.F(qcdThr, 3))
	}
	t.AddNote("grouping keeps per-frame occupancy near the λ=1/e point despite the hardware frame cap")
	return t, nil
}
