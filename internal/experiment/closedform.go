package experiment

import (
	"fmt"

	"repro/internal/analytic"
	"repro/internal/crc"
	"repro/internal/epc"
	"repro/internal/report"
	"repro/internal/sim"
)

// Lemma1 validates λ_max = 1/e ≈ 0.37: analytically over an F/n sweep and
// empirically with the clairvoyant optimal frame policy.
func Lemma1(o Options) (Renderable, error) {
	o = o.normalize()
	s := report.NewSeries("Lemma 1: FSA throughput vs frame size (n = 1000)",
		"F/n", "throughput λ", "analytic", "simulated")

	const n = 1000
	for _, ratio := range []float64{0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0} {
		f := int(ratio * n)
		ana := analytic.FSAThroughput(n, float64(f))
		// Simulate a single frame's census (first frame only: Lemma 1 is a
		// per-frame statement).
		cfg := sim.Config{
			Tags: n, Seed: o.Seed, Rounds: o.Rounds,
			Algorithm: sim.AlgFSA, FrameSize: f,
			Detector: sim.DetOracle, Workers: o.Workers,
		}
		agg, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}
		// The analytic column is the single-frame λ of Lemma 1; the
		// simulated column is the whole-session λ, which sits below it
		// because frames after the first are sparsely occupied. Both peak
		// around F = n.
		s.Add(ratio, ana, agg.Throughput.Mean())
	}

	t := report.NewTable("Lemma 1 check", "quantity", "value", "paper")
	t.AddRow("max analytic λ (at F=n)", report.F(analytic.FSAMaxThroughput(), 4), "≈0.37")
	opt := sim.Config{
		Tags: 1000, Seed: o.Seed, Rounds: o.Rounds,
		Algorithm: sim.AlgFSA, FramePolicy: sim.PolicyOptimal,
		Detector: sim.DetOracle, Workers: o.Workers,
	}
	agg, err := sim.Run(opt)
	if err != nil {
		return nil, err
	}
	t.AddRow("simulated session λ (optimal policy)", report.F(agg.Throughput.Mean(), 4), "≤0.37")
	t.AddNote("whole sessions run below the single-frame optimum because late frames are sparse")
	return Multi{s, t}, nil
}

// Lemma2 validates the BT constants 2.885n / 1.443n / 0.442n.
func Lemma2(o Options) (Renderable, error) {
	o = o.normalize()
	t := report.NewTable("Lemma 2: BT slot constants (per tag, simulated vs analytic)",
		"n", "slots/n", "collided/n", "idle/n", "λ", "paper slots/n", "paper λ")
	for _, c := range o.cases() {
		agg, err := o.run(c, sim.AlgBT, sim.DetOracle, 8)
		if err != nil {
			return nil, err
		}
		n := float64(c.Tags)
		t.AddRow(
			fmt.Sprintf("%d", c.Tags),
			report.F(agg.Slots.Mean()/n, 3),
			report.F(agg.Collided.Mean()/n, 3),
			report.F(agg.Idle.Mean()/n, 3),
			report.F(agg.Throughput.Mean(), 3),
			report.F(analytic.BTSlotsPerTag, 3),
			report.F(analytic.BTAvgThroughput(), 2),
		)
	}
	return t, nil
}

// Table2 regenerates Table II from the corrected closed form.
func Table2(Options) (Renderable, error) {
	t := report.NewTable("Table II: minimum EI on FSA (l_id=64, l_crc=32)",
		"strength", "EI (this repo)", "EI (paper)")
	paper := map[int]string{4: "≥0.6698", 8: "≥0.5864", 16: "≥0.4198"}
	for _, s := range strengths() {
		t.AddRow(fmt.Sprintf("%d-bit", s),
			report.F(analytic.FSAEI(analytic.PaperLengths(s)), 4), paper[s])
	}
	t.AddNote("formula: EI = ((1.7/2.7)·l_id + l_crc − l_prm)/(l_id+l_crc); the paper's printed formula has sign typos")
	return t, nil
}

// Table3 regenerates Table III.
func Table3(Options) (Renderable, error) {
	t := report.NewTable("Table III: average EI on BT (l_id=64, l_crc=32)",
		"strength", "EI (this repo)", "EI (paper)")
	paper := map[int]string{4: "≈0.6856", 8: "≈0.6023", 16: "≈0.4356"}
	for _, s := range strengths() {
		t.AddRow(fmt.Sprintf("%d-bit", s),
			report.F(analytic.BTEI(analytic.PaperLengths(s)), 4), paper[s])
	}
	return t, nil
}

// Table4 regenerates the cost comparison from the instrumented engines.
func Table4(Options) (Renderable, error) {
	crcCost := crc.CRCCDCost(crc.CRC32IEEE, epc.IDBits)
	qcdCost := crc.QCDCost(8)
	t := report.NewTable("Table IV: CRC-CD vs QCD (tag-side cost, measured from the engines)",
		"dimension", "CRC-CD (CRC-32, 64-bit ID)", "QCD (8-bit strength)", "paper")
	t.AddRow("# of instructions",
		fmt.Sprintf("%d", crcCost.Instructions),
		fmt.Sprintf("%d", qcdCost.Instructions),
		">100 vs 1")
	t.AddRow("complexity", crcCost.Complexity, qcdCost.Complexity, "O(l) vs O(1)")
	t.AddRow("memory",
		fmt.Sprintf("%dB lookup table (reader) + %d-bit register", crcCost.LookupTableB, crc.CRC32IEEE.Width),
		fmt.Sprintf("%d bits", qcdCost.MemoryBits),
		"1KB vs 16 bits")
	t.AddRow("transmission (idle/collided slot)",
		fmt.Sprintf("%d bits", crcCost.TransmitBits),
		fmt.Sprintf("%d bits", qcdCost.TransmitBits),
		"96 bits vs 16 bits")
	t.AddRow("gate estimate (tag IC)",
		fmt.Sprintf("~%d", crcCost.GateEstimate),
		fmt.Sprintf("~%d", qcdCost.GateEstimate),
		"(not quantified)")
	t.AddNote("instruction count measured by running the instrumented bit-serial CRC over a 64-bit ID")
	t.AddNote("BenchmarkTable4 measures the same gap in real ns/op on this machine")
	return t, nil
}

// Setup prints Tables V and VI.
func Setup(Options) (Renderable, error) {
	s := epc.PaperSetup()
	tv := report.NewTable("Table V: simulation setup", "parameter", "value")
	tv.AddRow("simulation area", fmt.Sprintf("%.0fm × %.0fm", s.AreaMeters, s.AreaMeters))
	tv.AddRow("number of readers", fmt.Sprintf("%d", s.Readers))
	tv.AddRow("identification range", fmt.Sprintf("%.0fm", s.RangeMeters))
	tv.AddRow("tag ID", fmt.Sprintf("random %d-bit ID + %d-bit CRC (96-bit unit)", epc.IDBits, epc.CRCBits))
	tv.AddRow("rounds per test", fmt.Sprintf("%d", s.Rounds))
	tv.AddRow("τ (per bit)", fmt.Sprintf("%.0f μs", s.TauMicros))

	tvi := report.NewTable("Table VI: simulation cases", "case", "# of tags", "# of slots (FSA frame)")
	for _, c := range epc.PaperCases() {
		tvi.AddRow(c.Name, fmt.Sprintf("%d", c.Tags), fmt.Sprintf("%d", c.Slots))
	}
	tvi.AddNote("the paper's printed case-IV tag count (5000) is a typo; Tables VII–IX use 50000")
	return Multi{tv, tvi}, nil
}
