package experiment

import (
	"fmt"

	"repro/internal/detect"
	"repro/internal/prng"
	"repro/internal/qtree"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/tagmodel"
	"repro/internal/timing"
	"repro/internal/trace"

	"repro/internal/aloha"
)

// Workloads evaluates ID-structure sensitivity: query trees walk the ID
// space, so a pallet of one vendor's sequential EPCs (a 60-bit shared
// prefix) costs them dearly, while FSA — which randomises in time, not in
// ID space — is indifferent. Includes the 4-ary tree as the classic
// mitigation.
func Workloads(o Options) (Renderable, error) {
	o = o.normalize()
	const n = 256
	t := report.NewTable("Workload shapes: slots to identify 256 tags (QCD-8)",
		"population", "shared prefix", "QT binary", "QT 4-ary", "FSA (F=256)")
	det := detect.NewQCD(8, 96)
	detFSA := detect.NewQCD(8, 96)
	tm := timing.Default

	for _, kind := range trace.Kinds() {
		var qtBin, qtQuad, fsa stats.Accumulator
		shared := 0
		seeds := prng.New(o.Seed)
		for r := 0; r < o.Rounds; r++ {
			seed := seeds.Uint64()
			build := func() tagmodel.Population {
				pop, err := trace.Build(trace.Spec{Kind: kind, N: n, IDBits: 96}, prng.New(seed))
				if err != nil {
					panic(err)
				}
				return pop
			}
			pop := build()
			shared = trace.SharedPrefixLen(pop)
			qtBin.Add(float64(qtree.Run(pop, det, tm, qtree.Options{FanoutBits: 1}).Session.Census.Slots()))
			qtQuad.Add(float64(qtree.Run(build(), det, tm, qtree.Options{FanoutBits: 2}).Session.Census.Slots()))
			fsa.Add(float64(aloha.Run(build(), detFSA, aloha.NewFixed(n), tm).Census.Slots()))
		}
		t.AddRow(string(kind),
			fmt.Sprintf("%d bits", shared),
			report.F(qtBin.Mean(), 0),
			report.F(qtQuad.Mean(), 0),
			report.F(fsa.Mean(), 0))
	}
	t.AddNote("FSA slot counts are flat across shapes; QT pays one collided level per shared-prefix bit (binary) or per two bits (4-ary)")
	return t, nil
}
