package experiment

import (
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/privacy"
	"repro/internal/prng"
	"repro/internal/report"
	"repro/internal/stats"
)

// Privacy evaluates the backward-channel protection of Section II's
// related work: pseudo-ID Boolean-sum mixing (reader recovery cost and
// the same-bit leakage an eavesdropper exploits) and the randomized
// bit-encoding mitigation.
func Privacy(o Options) (Renderable, error) {
	o = o.normalize()
	const idBits = 64

	t := report.NewTable("Backward-channel protection: pseudo-ID mixing (64-bit IDs)",
		"metric", "value", "reference")
	var rounds stats.Accumulator
	entropyAt := map[int]*stats.Accumulator{1: {}, 4: {}, 8: {}, 16: {}}
	seeds := prng.New(o.Seed)
	for r := 0; r < o.Rounds; r++ {
		rng := prng.New(seeds.Uint64())
		id := bitstr.FromUint64(rng.Bits(64), 64)
		s := privacy.NewSession(id, rng.Split())
		k := 0
		for !s.Complete() || k < 16 {
			s.Round()
			k++
			if acc, ok := entropyAt[k]; ok {
				acc.Add(s.ResidualEntropyBits())
			}
			if k >= 200 {
				break
			}
		}
		rounds.Add(float64(recoveryRounds(id, rng.Split())))
	}
	t.AddRow("rounds to full reader recovery (mean)",
		report.F(rounds.Mean(), 2),
		fmt.Sprintf("analytic E[max Geom] = %.2f", privacy.ExpectedRounds(idBits)))
	for _, k := range []int{1, 4, 8, 16} {
		t.AddRow(fmt.Sprintf("eavesdropper residual entropy after %d rounds", k),
			report.F(entropyAt[k].Mean(), 2)+" bits",
			"64 bits would be perfect secrecy")
	}
	enc := privacy.NewRandomizedBitEncoding(prng.New(o.Seed))
	t.AddRow("randomized bit-encoding residual entropy (any #rounds)",
		report.F(enc.EavesdropperEntropyPerRound(idBits), 0)+" bits",
		"Lim et al.'s mitigation of the same-bit problem")
	t.AddNote("plain OR-mixing leaks to a backward eavesdropper as rounds accumulate (the same-bit problem); re-randomised encodings do not")
	return t, nil
}

// recoveryRounds runs a fresh session to completion and returns the
// rounds used (separated from the entropy loop so both metrics are
// measured on independent sessions).
func recoveryRounds(id bitstr.BitString, rng *prng.Source) int {
	s := privacy.NewSession(id, rng)
	for !s.Complete() {
		s.Round()
		if s.Rounds() >= 200 {
			break
		}
	}
	return s.Rounds()
}
