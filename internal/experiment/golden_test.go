package experiment

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// Golden regression values: exact aggregates for pinned (seed, rounds)
// configurations, guarding the reproduction numbers against accidental
// behavioural drift in any layer (PRNG, channel, detectors, engines,
// aggregation). Values were captured from the verified build that
// produced EXPERIMENTS.md; a legitimate behavioural change must update
// them deliberately. Tolerances are relative 1e-9 to absorb FMA/fusion
// differences across architectures, not to hide drift.
type golden struct {
	name string
	cfg  sim.Config
}

func goldens() []golden {
	base := func(alg, det string) sim.Config {
		return sim.Config{
			Tags: 200, FrameSize: 120, Seed: 424242, Rounds: 4,
			Algorithm: alg, Detector: det, Strength: 8,
			ConfirmEmpty: alg == sim.AlgFSA,
		}
	}
	return []golden{
		{name: "fsa-qcd", cfg: base(sim.AlgFSA, sim.DetQCD)},
		{name: "fsa-crccd", cfg: base(sim.AlgFSA, sim.DetCRCCD)},
		{name: "bt-qcd", cfg: base(sim.AlgBT, sim.DetQCD)},
		{name: "qt-oracle", cfg: base(sim.AlgQT, sim.DetOracle)},
	}
}

// TestGoldenRegeneration is self-bootstrapping: with -update-goldens it
// prints the current values; without, it asserts stability of the
// *internal consistency relations* plus hard-coded anchors that were
// verified by hand against the paper's shapes.
func TestGoldenAnchors(t *testing.T) {
	// Hand-verified anchors (seed 424242, 4 rounds, 200 tags, frame 120):
	anchors := map[string][4]float64{
		// slots, timeμs, throughput, single
		"fsa-qcd":   {900, 27232, 0.2232142857142857, 200},
		"fsa-crccd": {870, 83520, 0.23065476190476189, 200},
		"bt-qcd":    {565.5, 21848, 0.35415607790814296, 200},
		"qt-oracle": {576.5, 13376.5, 0.34718660561728959, 200},
	}
	for _, g := range goldens() {
		agg, err := sim.Run(g.cfg)
		if err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		got := [4]float64{
			agg.Slots.Mean(), agg.TimeMicros.Mean(),
			agg.Throughput.Mean(), agg.Single.Mean(),
		}
		want, ok := anchors[g.name]
		if !ok {
			t.Fatalf("no anchor for %s; measured %v", g.name, got)
		}
		for i := range got {
			if relDiff(got[i], want[i]) > 1e-9 {
				t.Errorf("%s[%d] = %.10g, golden %.10g (behavioural drift — update deliberately)",
					g.name, i, got[i], want[i])
			}
		}
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}
