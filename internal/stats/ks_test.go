package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestKSIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if d := KolmogorovSmirnov(a, a); d > 0.2+1e-12 {
		// Tie-walking gives at most 1/n between identical samples.
		t.Errorf("KS of identical samples = %v", d)
	}
}

func TestKSDisjointSamples(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if d := KolmogorovSmirnov(a, b); d != 1 {
		t.Errorf("KS of disjoint samples = %v, want 1", d)
	}
}

func TestKSDetectsShiftedDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := make([]float64, 500)
	b := make([]float64, 500)
	c := make([]float64, 500)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64() // same distribution
		c[i] = r.NormFloat64() + 2
	}
	dSame := KolmogorovSmirnov(a, b)
	dShift := KolmogorovSmirnov(a, c)
	if dSame > 0.12 {
		t.Errorf("same-distribution KS = %v", dSame)
	}
	if dShift < 0.5 {
		t.Errorf("shifted-distribution KS = %v", dShift)
	}
	if pSame := KSPValue(dSame, 500, 500); pSame < 0.05 {
		t.Errorf("same-distribution p = %v, should not reject", pSame)
	}
	if pShift := KSPValue(dShift, 500, 500); pShift > 1e-6 {
		t.Errorf("shifted-distribution p = %v, should reject hard", pShift)
	}
}

func TestKSOrderInvariance(t *testing.T) {
	a := []float64{5, 1, 3, 2, 4}
	b := []float64{2.5, 0.5, 4.5, 1.5, 3.5}
	d1 := KolmogorovSmirnov(a, b)
	sortedA := []float64{1, 2, 3, 4, 5}
	sortedB := []float64{0.5, 1.5, 2.5, 3.5, 4.5}
	d2 := KolmogorovSmirnov(sortedA, sortedB)
	if d1 != d2 {
		t.Errorf("KS depends on input order: %v vs %v", d1, d2)
	}
	// Inputs unmodified.
	if a[0] != 5 || b[0] != 2.5 {
		t.Error("KS mutated inputs")
	}
}

func TestKSEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty sample accepted")
		}
	}()
	KolmogorovSmirnov(nil, []float64{1})
}

func TestKSPValueBounds(t *testing.T) {
	if p := KSPValue(0, 100, 100); p < 0.99 {
		t.Errorf("p(D=0) = %v, want ≈1", p)
	}
	if p := KSPValue(1, 100, 100); p > 1e-10 {
		t.Errorf("p(D=1) = %v, want ≈0", p)
	}
	for _, d := range []float64{0.05, 0.1, 0.3, 0.7} {
		p := KSPValue(d, 50, 80)
		if p < 0 || p > 1 {
			t.Errorf("p(%v) = %v out of [0,1]", d, p)
		}
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{2, 4, 6}
	out := Normalize(xs)
	if math.Abs(out[0]-0.5) > 1e-12 || math.Abs(out[2]-1.5) > 1e-12 {
		t.Errorf("Normalize = %v", out)
	}
	if xs[0] != 2 {
		t.Error("Normalize mutated input")
	}
	zeros := Normalize([]float64{0, 0})
	if zeros[0] != 0 {
		t.Error("zero-mean normalize broken")
	}
}
