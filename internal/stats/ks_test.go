package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestKSIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if d := KolmogorovSmirnov(a, a); d != 0 {
		t.Errorf("KS of identical samples = %v, want 0", d)
	}
}

// TestKSTiedSamplesNotInflated pins the discrete-data behaviour: both
// CDFs jump together at a tied value, so shared ties contribute nothing
// to D. A sample massed at one point vs itself must give D = 0, and two
// mostly-zero samples must measure only the genuine mass difference.
func TestKSTiedSamplesNotInflated(t *testing.T) {
	constant := []float64{7, 7, 7, 7, 7, 7}
	if d := KolmogorovSmirnov(constant, constant); d != 0 {
		t.Errorf("KS of identical constant samples = %v, want 0", d)
	}
	// 90% zeros both sides, the rest at different values: D is the CDF gap
	// between the tails (0.1), not the tie mass at zero.
	a := []float64{0, 0, 0, 0, 0, 0, 0, 0, 0, 1}
	b := []float64{0, 0, 0, 0, 0, 0, 0, 0, 0, 2}
	if d := KolmogorovSmirnov(a, b); math.Abs(d-0.1) > 1e-12 {
		t.Errorf("KS of shared-tie samples = %v, want 0.1", d)
	}
}

func TestKSDisjointSamples(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if d := KolmogorovSmirnov(a, b); d != 1 {
		t.Errorf("KS of disjoint samples = %v, want 1", d)
	}
}

func TestKSDetectsShiftedDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := make([]float64, 500)
	b := make([]float64, 500)
	c := make([]float64, 500)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64() // same distribution
		c[i] = r.NormFloat64() + 2
	}
	dSame := KolmogorovSmirnov(a, b)
	dShift := KolmogorovSmirnov(a, c)
	if dSame > 0.12 {
		t.Errorf("same-distribution KS = %v", dSame)
	}
	if dShift < 0.5 {
		t.Errorf("shifted-distribution KS = %v", dShift)
	}
	if pSame := KSPValue(dSame, 500, 500); pSame < 0.05 {
		t.Errorf("same-distribution p = %v, should not reject", pSame)
	}
	if pShift := KSPValue(dShift, 500, 500); pShift > 1e-6 {
		t.Errorf("shifted-distribution p = %v, should reject hard", pShift)
	}
}

func TestKSOrderInvariance(t *testing.T) {
	a := []float64{5, 1, 3, 2, 4}
	b := []float64{2.5, 0.5, 4.5, 1.5, 3.5}
	d1 := KolmogorovSmirnov(a, b)
	sortedA := []float64{1, 2, 3, 4, 5}
	sortedB := []float64{0.5, 1.5, 2.5, 3.5, 4.5}
	d2 := KolmogorovSmirnov(sortedA, sortedB)
	if d1 != d2 {
		t.Errorf("KS depends on input order: %v vs %v", d1, d2)
	}
	// Inputs unmodified.
	if a[0] != 5 || b[0] != 2.5 {
		t.Error("KS mutated inputs")
	}
}

func TestKSEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty sample accepted")
		}
	}()
	KolmogorovSmirnov(nil, []float64{1})
}

func TestKSPValueBounds(t *testing.T) {
	if p := KSPValue(0, 100, 100); p < 0.99 {
		t.Errorf("p(D=0) = %v, want ≈1", p)
	}
	if p := KSPValue(1, 100, 100); p > 1e-10 {
		t.Errorf("p(D=1) = %v, want ≈0", p)
	}
	for _, d := range []float64{0.05, 0.1, 0.3, 0.7} {
		p := KSPValue(d, 50, 80)
		if p < 0 || p > 1 {
			t.Errorf("p(%v) = %v out of [0,1]", d, p)
		}
	}
}

func TestKSCriticalValue(t *testing.T) {
	// Equal samples of 100: threshold = c(α)·sqrt(2/100); c(0.05) ≈ 1.358.
	got := KSCriticalValue(0.05, 100, 100)
	want := 1.3581 * math.Sqrt(2.0/100)
	if math.Abs(got-want) > 1e-3 {
		t.Errorf("critical(0.05, 100, 100) = %v, want ≈ %v", got, want)
	}
	// Stricter alpha → larger threshold; more data → smaller threshold.
	if KSCriticalValue(0.01, 100, 100) <= got {
		t.Error("alpha 0.01 threshold not above alpha 0.05")
	}
	if KSCriticalValue(0.05, 1000, 1000) >= got {
		t.Error("larger samples did not shrink the threshold")
	}
	// Consistency with KSPValue: D at the threshold has p ≈ α.
	if p := KSPValue(got, 100, 100); math.Abs(p-0.05) > 0.02 {
		t.Errorf("p-value at the 0.05 critical D = %v, want ≈ 0.05", p)
	}
	for _, bad := range []struct {
		alpha  float64
		na, nb int
	}{{0, 10, 10}, {1, 10, 10}, {0.05, 0, 10}, {0.05, 10, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("KSCriticalValue(%v, %d, %d) did not panic", bad.alpha, bad.na, bad.nb)
				}
			}()
			KSCriticalValue(bad.alpha, bad.na, bad.nb)
		}()
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{2, 4, 6}
	out := Normalize(xs)
	if math.Abs(out[0]-0.5) > 1e-12 || math.Abs(out[2]-1.5) > 1e-12 {
		t.Errorf("Normalize = %v", out)
	}
	if xs[0] != 2 {
		t.Error("Normalize mutated input")
	}
	zeros := Normalize([]float64{0, 0})
	if zeros[0] != 0 {
		t.Error("zero-mean normalize broken")
	}
}
