package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// Streaming mean/variance over the 100-round averages.
func ExampleAccumulator() {
	var a stats.Accumulator
	a.AddAll([]float64{0.25, 0.22, 0.20, 0.21})
	fmt.Printf("λ = %.3f ± %.3f (n=%d)\n", a.Mean(), a.CI95(), a.N())
	// Output: λ = 0.220 ± 0.021 (n=4)
}

// Compare two delay distributions shape-only: normalise by the mean, then
// apply the two-sample KS test.
func ExampleKolmogorovSmirnov() {
	crcDelays := []float64{10, 20, 30, 40, 50}
	qcdDelays := []float64{4, 8, 12, 16, 20} // same shape, 2.5× faster
	d := stats.KolmogorovSmirnov(
		stats.Normalize(crcDelays),
		stats.Normalize(qcdDelays),
	)
	fmt.Printf("%.2f\n", d) // identical normalised shapes
	// Output: 0.00
}
