package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.N() != 0 {
		t.Error("zero accumulator not zero")
	}
	a.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if a.N() != 8 {
		t.Errorf("N = %d", a.N())
	}
	if !almost(a.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v", a.Mean())
	}
	// Population variance is 4; sample variance = 32/7.
	if !almost(a.Variance(), 32.0/7, 1e-12) {
		t.Errorf("Variance = %v", a.Variance())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("extrema = %v/%v", a.Min(), a.Max())
	}
	if a.CI95() <= 0 {
		t.Error("CI95 not positive")
	}
}

func TestAccumulatorSingleValue(t *testing.T) {
	var a Accumulator
	a.Add(3.5)
	if a.Mean() != 3.5 || a.Variance() != 0 || a.CI95() != 0 {
		t.Error("single observation stats wrong")
	}
	if a.Min() != 3.5 || a.Max() != 3.5 {
		t.Error("single observation extrema wrong")
	}
}

func TestMergeMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n1, n2 := r.Intn(50), r.Intn(50)
		xs := make([]float64, n1+n2)
		for i := range xs {
			xs[i] = r.NormFloat64()*10 + 5
		}
		var whole, a, b Accumulator
		whole.AddAll(xs)
		a.AddAll(xs[:n1])
		b.AddAll(xs[n1:])
		a.Merge(&b)
		if whole.N() != a.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		return almost(whole.Mean(), a.Mean(), 1e-9) &&
			almost(whole.Variance(), a.Variance(), 1e-6) &&
			whole.Min() == a.Min() && whole.Max() == a.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergeEmptySides(t *testing.T) {
	var a, b Accumulator
	b.AddAll([]float64{1, 2, 3})
	a.Merge(&b)
	if a.N() != 3 || !almost(a.Mean(), 2, 1e-12) {
		t.Error("merge into empty failed")
	}
	var empty Accumulator
	a.Merge(&empty)
	if a.N() != 3 {
		t.Error("merge of empty changed state")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); !almost(got, c.want, 1e-12) {
			t.Errorf("P%.0f = %v, want %v", c.p*100, got, c.want)
		}
	}
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Percentile of empty data did not panic")
		}
	}()
	Percentile(nil, 0.5)
}

func TestSummarize(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	s := Summarize(xs)
	if s.N != 5 || !almost(s.Mean, 30, 1e-12) || !almost(s.P50, 30, 1e-12) {
		t.Errorf("Summary = %+v", s)
	}
	if s.Min != 10 || s.Max != 50 {
		t.Error("Summary extrema wrong")
	}
	if s.CoefOfVariation <= 0 {
		t.Error("CV not positive")
	}
	// Input must not be reordered.
	if xs[0] != 10 || xs[4] != 50 {
		t.Error("Summarize mutated input")
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Error("empty summary N != 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 100} {
		h.Add(x)
	}
	if h.Underflow != 1 || h.Overflow != 2 {
		t.Errorf("under/over = %d/%d", h.Underflow, h.Overflow)
	}
	want := []int64{2, 1, 1, 0, 1}
	for i, w := range want {
		if h.Buckets[i] != w {
			t.Errorf("bucket %d = %d, want %d (%v)", i, h.Buckets[i], w, h.Buckets)
		}
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d", h.Total())
	}
}

func TestHistogramValidation(t *testing.T) {
	for _, c := range []struct {
		lo, hi float64
		n      int
	}{{0, 0, 5}, {1, 0, 5}, {0, 1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v,%v,%d) did not panic", c.lo, c.hi, c.n)
				}
			}()
			NewHistogram(c.lo, c.hi, c.n)
		}()
	}
}

func TestWelfordStability(t *testing.T) {
	// Large offset + tiny variance is the classic catastrophic
	// cancellation case; Welford must keep the variance accurate.
	var a Accumulator
	const offset = 1e9
	for i := 0; i < 1000; i++ {
		a.Add(offset + float64(i%2)) // values offset, offset+1 alternating
	}
	if !almost(a.Variance(), 0.25025, 1e-3) {
		t.Errorf("Variance = %v, want ~0.25", a.Variance())
	}
}
