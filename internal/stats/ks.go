package stats

import (
	"math"
	"sort"
)

// KolmogorovSmirnov computes the two-sample KS statistic
// D = sup_x |F_a(x) − F_b(x)| between the empirical CDFs of two samples.
// It is used to compare identification-delay distributions (Figure 6's
// "more sharply concentrate around the mean" claim) without assuming a
// shape. Inputs need not be sorted; they are not modified.
func KolmogorovSmirnov(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		panic("stats: KS on empty sample")
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)

	var d float64
	i, j := 0, 0
	na, nb := float64(len(as)), float64(len(bs))
	for i < len(as) && j < len(bs) {
		// Advance both walks through every copy of the smaller value
		// before reading the CDF gap: both empirical CDFs jump at a tied
		// value simultaneously, so measuring mid-tie would inflate D by
		// the tie mass — fatal for discrete observables (slot counts,
		// rates massed at zero) where most of the sample is ties.
		v := as[i]
		if bs[j] < v {
			v = bs[j]
		}
		for i < len(as) && as[i] == v {
			i++
		}
		for j < len(bs) && bs[j] == v {
			j++
		}
		if diff := math.Abs(float64(i)/na - float64(j)/nb); diff > d {
			d = diff
		}
	}
	return d
}

// KSPValue returns the asymptotic two-sample p-value for the KS statistic
// d with sample sizes na and nb (Kolmogorov distribution tail).
func KSPValue(d float64, na, nb int) float64 {
	if na < 1 || nb < 1 {
		panic("stats: KS p-value needs positive sample sizes")
	}
	ne := float64(na) * float64(nb) / float64(na+nb)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	// Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}; the series only converges
	// usefully for λ away from zero — Q(0) = 1 by definition.
	if lambda < 1e-3 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	converged := false
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k)*float64(k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			converged = true
			break
		}
		sign = -sign
	}
	if !converged {
		return 1
	}
	p := 2 * sum
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	}
	return p
}

// KSCriticalValue returns the two-sample KS rejection threshold at
// significance level alpha for sample sizes na and nb: reject equality
// when D exceeds c(α)·sqrt((na+nb)/(na·nb)) with
// c(α) = sqrt(−ln(α/2)/2). The familiar c(0.05) ≈ 1.358 falls out.
// Stat-mode equivalence harnesses compare against this rather than a
// p-value so a fixed-seed test has one deterministic pass bound.
func KSCriticalValue(alpha float64, na, nb int) float64 {
	if alpha <= 0 || alpha >= 1 {
		panic("stats: KS critical value needs alpha in (0,1)")
	}
	if na < 1 || nb < 1 {
		panic("stats: KS critical value needs positive sample sizes")
	}
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	return c * math.Sqrt(float64(na+nb)/(float64(na)*float64(nb)))
}

// Normalize returns xs scaled by its mean (a copy), for shape-only
// distribution comparisons.
func Normalize(xs []float64) []float64 {
	var a Accumulator
	a.AddAll(xs)
	m := a.Mean()
	out := make([]float64, len(xs))
	if m == 0 {
		copy(out, xs)
		return out
	}
	for i, x := range xs {
		out[i] = x / m
	}
	return out
}
