// Package stats provides the summary statistics the evaluation reports:
// streaming mean/variance (Welford), confidence intervals for the
// 100-round averages, percentiles for the delay distributions of
// Figure 6, and fixed-width histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes mean and variance in one streaming pass using
// Welford's algorithm; numerically stable for long runs.
type Accumulator struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add absorbs one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// AddAll absorbs a slice of observations.
func (a *Accumulator) AddAll(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// N returns the number of observations.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the sample mean (0 with no observations).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (0 with <2 observations).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min and Max return the extrema (0 with no observations).
func (a *Accumulator) Min() float64 { return a.min }
func (a *Accumulator) Max() float64 { return a.max }

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean.
func (a *Accumulator) CI95() float64 {
	if a.n < 2 {
		return 0
	}
	return 1.96 * a.StdDev() / math.Sqrt(float64(a.n))
}

// Merge folds another accumulator into a (Chan et al.'s parallel variance
// combination), so per-round statistics computed concurrently can be
// combined into one deterministic total.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	a.mean += d * float64(b.n) / float64(n)
	a.n = n
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
}

// Summary is a value snapshot of an Accumulator plus order statistics.
type Summary struct {
	N               int64
	Mean, StdDev    float64
	Min, Max        float64
	P50, P90, P99   float64
	CI95            float64
	CoefOfVariation float64
}

// Summarize computes a full summary of xs (xs is not modified).
func Summarize(xs []float64) Summary {
	var a Accumulator
	a.AddAll(xs)
	s := Summary{
		N: a.N(), Mean: a.Mean(), StdDev: a.StdDev(),
		Min: a.Min(), Max: a.Max(), CI95: a.CI95(),
	}
	if s.Mean != 0 {
		s.CoefOfVariation = s.StdDev / s.Mean
	}
	if len(xs) > 0 {
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		s.P50 = Percentile(sorted, 0.50)
		s.P90 = Percentile(sorted, 0.90)
		s.P99 = Percentile(sorted, 0.99)
	}
	return s
}

// Percentile returns the p-quantile (0..1) of sorted data by linear
// interpolation. It panics if data is empty or unsorted input is detected
// at the endpoints.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: percentile of empty data")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-width bucket histogram over [Lo, Hi); values
// outside land in the under/overflow counters.
type Histogram struct {
	Lo, Hi    float64
	Buckets   []int64
	Underflow int64
	Overflow  int64
}

// NewHistogram returns a histogram of n equal buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 || !(hi > lo) {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v) x%d", lo, hi, n))
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int64, n)}
}

// Add places one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		h.Overflow++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
		if i == len(h.Buckets) { // guard against FP edge at x≈Hi
			i--
		}
		h.Buckets[i]++
	}
}

// Total returns the count of all observations including out-of-range ones.
func (h *Histogram) Total() int64 {
	t := h.Underflow + h.Overflow
	for _, b := range h.Buckets {
		t += b
	}
	return t
}
