package deploy

import (
	"reflect"
	"testing"

	"repro/internal/prng"
)

// TestColorReadersDeterministic: the same floor must produce the same
// colouring on every call — the streaming scenario's epoch schedule and
// its cross-worker bit-identity depend on it. Run it over both the grid
// and an adversarial random layout with many degree ties.
func TestColorReadersDeterministic(t *testing.T) {
	floors := map[string]*Floor{}

	grid := NewFloor(100)
	grid.PlaceReadersGrid(100, 3)
	floors["grid"] = grid

	random := NewFloor(60)
	random.PlaceReadersRandom(80, 3, prng.New(5))
	floors["random"] = random

	for name, f := range floors {
		adj := f.InterferenceGraph(10)
		base, baseCount := ColorReaders(adj)
		for trial := 0; trial < 20; trial++ {
			colors, count := ColorReaders(adj)
			if count != baseCount || !reflect.DeepEqual(colors, base) {
				t.Fatalf("%s: trial %d diverged: %v (%d) vs %v (%d)",
					name, trial, colors, count, base, baseCount)
			}
		}
	}
}

// TestColorReadersProper: no two adjacent readers share a colour, every
// reader is coloured, and the colour count is tight.
func TestColorReadersProper(t *testing.T) {
	f := NewFloor(60)
	f.PlaceReadersRandom(80, 3, prng.New(9))
	adj := f.InterferenceGraph(12)
	colors, count := ColorReaders(adj)
	maxSeen := -1
	for v, c := range colors {
		if c < 0 {
			t.Fatalf("reader %d uncoloured", v)
		}
		if c > maxSeen {
			maxSeen = c
		}
		for _, u := range adj[v] {
			if colors[u] == c {
				t.Fatalf("readers %d and %d interfere but share colour %d", v, u, c)
			}
		}
	}
	if maxSeen+1 != count {
		t.Fatalf("count %d but highest colour %d", count, maxSeen)
	}
}

func BenchmarkColorReaders(b *testing.B) {
	f := NewFloor(100)
	f.PlaceReadersGrid(400, 3)
	adj := f.InterferenceGraph(15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ColorReaders(adj)
	}
}
