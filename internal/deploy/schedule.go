package deploy

import (
	"fmt"
	"sort"

	"repro/internal/tagmodel"
)

// Section II of the paper defines two multi-reader collision types and
// prescribes their remedies: Reader-Tag collisions (a reader's strong
// carrier drowning a neighbour's tag replies) are avoided by "scheduling
// their interrogations into different slots", and Reader-Reader
// collisions by never activating two mutually audible readers at once.
// The evaluation then assumes those remedies are in place. This file
// implements the remedy: an interference graph over the readers and a
// greedy colouring that partitions them into concurrently-safe activation
// groups, turning the floor inventory from a sequential scan into a
// parallel schedule.

// InterferenceGraph returns, for each reader, the readers it must not be
// active with: those within radius metres (readers interfere well beyond
// their read range; a common rule of thumb is several times the tag
// range).
func (f *Floor) InterferenceGraph(radius float64) [][]int {
	if radius < 0 {
		panic(fmt.Sprintf("deploy: negative interference radius %v", radius))
	}
	adj := make([][]int, len(f.Readers))
	for i := range f.Readers {
		for j := i + 1; j < len(f.Readers); j++ {
			if f.Readers[i].Pos.Dist(f.Readers[j].Pos) <= radius {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
	}
	return adj
}

// ColorReaders greedily colours the interference graph (largest degree
// first, reader ID breaking ties) and returns one colour per reader plus
// the colour count. Readers with the same colour can be activated
// simultaneously. The visit order is a strict total order and the
// smallest-free-colour scan consults only per-colour flags, so the
// colouring is a pure function of the adjacency — no map-iteration or
// sort-instability dependence — which the streaming scenario relies on
// for bit-identical schedules.
func ColorReaders(adj [][]int) (colors []int, count int) {
	n := len(adj)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := len(adj[order[a]]), len(adj[order[b]])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	colors = make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	// used[c] == stamp marks colour c taken by a neighbour of the current
	// vertex; stamping avoids both a per-vertex map and a per-vertex clear.
	used := make([]int, n+1)
	for step, v := range order {
		stamp := step + 1
		for _, u := range adj[v] {
			if c := colors[u]; c >= 0 {
				used[c] = stamp
			}
		}
		c := 0
		for used[c] == stamp {
			c++
		}
		colors[v] = c
		if c+1 > count {
			count = c + 1
		}
	}
	return colors, count
}

// ScheduleResult reports a scheduled (colour-parallel) floor inventory.
type ScheduleResult struct {
	// Colors is the number of activation groups.
	Colors int
	// MakespanMicros is the wall time of the schedule: groups run one
	// after another, readers within a group run concurrently, so each
	// group costs its slowest member.
	MakespanMicros float64
	// TotalAirtimeMicros is the summed airtime (equals the sequential
	// activation time).
	TotalAirtimeMicros float64
	// Identified counts tags read.
	Identified int
}

// Speedup is total airtime over makespan (1 = no parallelism gained).
func (r ScheduleResult) Speedup() float64 {
	if r.MakespanMicros == 0 {
		return 1
	}
	return r.TotalAirtimeMicros / r.MakespanMicros
}

// RunScheduled performs the floor inventory under the colour schedule:
// colour groups are activated in ascending order; within a group every
// reader runs its session on the tags in its range that are still
// unidentified when the group starts. Tags covered by two same-colour
// readers are deterministically assigned to the lower-ID reader (their
// discs do not interfere-overlap by construction of the radius, but read
// ranges may still touch).
func (f *Floor) RunScheduled(interferenceRadius float64, run SessionFn) ScheduleResult {
	adj := f.InterferenceGraph(interferenceRadius)
	colors, count := ColorReaders(adj)

	var res ScheduleResult
	res.Colors = count
	for c := 0; c < count; c++ {
		groupMax := 0.0
		claimed := map[int]bool{} // tag index -> claimed this group
		for ri, r := range f.Readers {
			if colors[ri] != c {
				continue
			}
			var sub []int
			for _, pt := range f.tagIndicesInRange(r) {
				if !f.Tags[pt].Tag.Identified && !claimed[pt] {
					claimed[pt] = true
					sub = append(sub, pt)
				}
			}
			if len(sub) == 0 {
				continue
			}
			micros := run(f.population(sub))
			res.TotalAirtimeMicros += micros
			if micros > groupMax {
				groupMax = micros
			}
		}
		res.MakespanMicros += groupMax
	}
	for _, pt := range f.Tags {
		if pt.Tag.Identified {
			res.Identified++
		}
	}
	return res
}

// UnscheduledResult quantifies the failure mode the schedule exists to
// avoid: all readers keying up at once.
type UnscheduledResult struct {
	// MakespanMicros is the slowest concurrent session (all readers start
	// together).
	MakespanMicros float64
	// Identified counts tags read.
	Identified int
	// Jammed counts tags inside some reader's read range that could not
	// be read because another active reader's carrier reached them
	// (Reader-Tag collision, Section II: the tag's backscatter is
	// "drowned" by the neighbour's transmission).
	Jammed int
}

// RunUnscheduled activates every reader simultaneously. A tag is readable
// only by a reader whose range covers it while no *other* reader within
// carrierRadius of the tag is transmitting — with all readers active,
// that means no second reader's carrier may reach the tag at all. The
// result demonstrates why Section II prescribes scheduling: with a
// realistic carrier radius several times the read range, most covered
// tags are jammed.
func (f *Floor) RunUnscheduled(carrierRadius float64, run SessionFn) UnscheduledResult {
	if carrierRadius < 0 {
		panic(fmt.Sprintf("deploy: negative carrier radius %v", carrierRadius))
	}
	var res UnscheduledResult
	claimed := map[int]bool{}
	jammedSet := map[int]bool{}
	for ri, r := range f.Readers {
		var sub []int
		for _, ti := range f.tagIndicesInRange(r) {
			if f.Tags[ti].Tag.Identified || claimed[ti] {
				continue
			}
			// Jammed if any other reader's carrier reaches this tag.
			jammed := false
			for rj, other := range f.Readers {
				if rj != ri && other.Pos.Dist(f.Tags[ti].Pos) <= carrierRadius {
					jammed = true
					break
				}
			}
			if jammed {
				jammedSet[ti] = true
				continue
			}
			claimed[ti] = true
			sub = append(sub, ti)
		}
		if len(sub) == 0 {
			continue
		}
		micros := run(f.population(sub))
		if micros > res.MakespanMicros {
			res.MakespanMicros = micros
		}
	}
	for _, pt := range f.Tags {
		if pt.Tag.Identified {
			res.Identified++
		}
	}
	res.Jammed = len(jammedSet)
	return res
}

// tagIndicesInRange is TagsInRange returning indices into f.Tags.
func (f *Floor) tagIndicesInRange(r Reader) []int {
	if f.grid == nil {
		return nil
	}
	lo := f.cellOf(Point{X: maxF(0, r.Pos.X-r.Range), Y: maxF(0, r.Pos.Y-r.Range)})
	hi := f.cellOf(Point{X: minF(f.Side, r.Pos.X+r.Range), Y: minF(f.Side, r.Pos.Y+r.Range)})
	var out []int
	for cx := lo[0]; cx <= hi[0]; cx++ {
		for cy := lo[1]; cy <= hi[1]; cy++ {
			for _, i := range f.grid[[2]int{cx, cy}] {
				if r.Covers(f.Tags[i].Pos) {
					out = append(out, i)
				}
			}
		}
	}
	return out
}

func (f *Floor) population(indices []int) tagmodel.Population {
	pop := make(tagmodel.Population, 0, len(indices))
	for _, i := range indices {
		pop = append(pop, f.Tags[i].Tag)
	}
	return pop
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
