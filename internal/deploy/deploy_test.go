package deploy

import (
	"math"
	"testing"

	"repro/internal/aloha"
	"repro/internal/detect"
	"repro/internal/prng"
	"repro/internal/tagmodel"
	"repro/internal/timing"
)

func TestPointDist(t *testing.T) {
	if d := (Point{0, 0}).Dist(Point{3, 4}); d != 5 {
		t.Errorf("Dist = %v", d)
	}
}

func TestReaderCovers(t *testing.T) {
	r := Reader{Pos: Point{10, 10}, Range: 3}
	if !r.Covers(Point{12, 10}) || !r.Covers(Point{10, 13}) {
		t.Error("in-range point not covered")
	}
	if r.Covers(Point{14, 10}) {
		t.Error("out-of-range point covered")
	}
}

func TestPlaceReadersGridTableV(t *testing.T) {
	// The paper's setup: 100 readers over 100 m × 100 m with 3 m range.
	f := NewFloor(100)
	f.PlaceReadersGrid(100, 3)
	if len(f.Readers) != 100 {
		t.Fatalf("readers = %d", len(f.Readers))
	}
	for _, r := range f.Readers {
		if r.Pos.X < 0 || r.Pos.X > 100 || r.Pos.Y < 0 || r.Pos.Y > 100 {
			t.Fatalf("reader %d outside the floor: %+v", r.ID, r.Pos)
		}
		if r.Range != 3 {
			t.Fatalf("reader range = %v", r.Range)
		}
	}
	// Grid spacing 10 m with 3 m range covers π·9/100 ≈ 28% of area.
	rng := prng.New(1)
	pop := tagmodel.NewPopulation(2000, 64, rng)
	f.PlaceTags(pop, rng)
	cov := f.Coverage()
	if math.Abs(cov-0.28) > 0.05 {
		t.Errorf("coverage = %v, want ≈ π·3²/10² ≈ 0.28", cov)
	}
}

func TestPlaceReadersGridRejectsNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-square reader count accepted")
		}
	}()
	NewFloor(100).PlaceReadersGrid(10, 3)
}

func TestGridIndexMatchesBruteForce(t *testing.T) {
	rng := prng.New(2)
	f := NewFloor(50)
	f.PlaceReadersRandom(20, 5, rng)
	pop := tagmodel.NewPopulation(500, 64, rng)
	f.PlaceTags(pop, rng)
	for _, r := range f.Readers {
		fast := map[int]bool{}
		for _, tag := range f.TagsInRange(r) {
			fast[tag.Index] = true
		}
		slow := map[int]bool{}
		for _, pt := range f.Tags {
			if r.Covers(pt.Pos) {
				slow[pt.Tag.Index] = true
			}
		}
		if len(fast) != len(slow) {
			t.Fatalf("reader %d: grid %d vs brute force %d", r.ID, len(fast), len(slow))
		}
		for idx := range slow {
			if !fast[idx] {
				t.Fatalf("reader %d: grid missed tag %d", r.ID, idx)
			}
		}
	}
}

func TestRunSequentialIdentifiesCoveredTags(t *testing.T) {
	rng := prng.New(3)
	f := NewFloor(100)
	f.PlaceReadersGrid(100, 3)
	pop := tagmodel.NewPopulation(1000, 64, rng)
	f.PlaceTags(pop, rng)

	det := detect.NewQCD(8, 64)
	tmdl := timing.Model{TauMicros: 1}
	total, identified := f.RunSequential(func(sub tagmodel.Population) float64 {
		return aloha.Run(sub, det, aloha.NewFixed(maxInt(1, len(sub))), tmdl).TimeMicros
	})
	if total <= 0 {
		t.Error("no airtime spent")
	}

	// Every covered tag must be identified; no uncovered tag can be.
	for _, pt := range f.Tags {
		covered := false
		for _, r := range f.Readers {
			if r.Covers(pt.Pos) {
				covered = true
				break
			}
		}
		if covered != pt.Tag.Identified {
			t.Fatalf("tag %d covered=%v identified=%v", pt.Tag.Index, covered, pt.Tag.Identified)
		}
	}
	wantIdentified := 0
	for _, pt := range f.Tags {
		if pt.Tag.Identified {
			wantIdentified++
		}
	}
	if identified != wantIdentified {
		t.Errorf("identified = %d, recount = %d", identified, wantIdentified)
	}
}

func TestTagIdentifiedOnceAcrossReaders(t *testing.T) {
	// Overlapping readers: a tag identified by the first keeps silent for
	// the second, so sessions see shrinking sub-populations.
	rng := prng.New(4)
	f := NewFloor(10)
	f.Readers = []Reader{
		{ID: 0, Pos: Point{5, 5}, Range: 6},
		{ID: 1, Pos: Point{5, 5}, Range: 6}, // same coverage
	}
	pop := tagmodel.NewPopulation(50, 64, rng)
	f.PlaceTags(pop, rng)

	det := detect.NewQCD(8, 64)
	tmdl := timing.Model{TauMicros: 1}
	sessions := 0
	f.RunSequential(func(sub tagmodel.Population) float64 {
		sessions++
		if sessions == 2 {
			t.Fatalf("second reader saw %d tags, want none left", len(sub))
		}
		return aloha.Run(sub, det, aloha.NewFixed(len(sub)), tmdl).TimeMicros
	})
	if sessions != 1 {
		t.Errorf("sessions = %d", sessions)
	}
}

func TestFloorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive floor accepted")
		}
	}()
	NewFloor(0)
}

func TestCoverageEmpty(t *testing.T) {
	if NewFloor(10).Coverage() != 0 {
		t.Error("empty floor coverage != 0")
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
