package deploy

import (
	"testing"

	"repro/internal/aloha"
	"repro/internal/detect"
	"repro/internal/prng"
	"repro/internal/tagmodel"
	"repro/internal/timing"
)

func paperFloorWithTags(n int, seed uint64) (*Floor, tagmodel.Population) {
	rng := prng.New(seed)
	f := NewFloor(100)
	f.PlaceReadersGrid(100, 3)
	pop := tagmodel.NewPopulation(n, 64, rng)
	f.PlaceTags(pop, rng)
	return f, pop
}

func TestInterferenceGraphSymmetric(t *testing.T) {
	f, _ := paperFloorWithTags(10, 1)
	adj := f.InterferenceGraph(15)
	for i, ns := range adj {
		for _, j := range ns {
			found := false
			for _, k := range adj[j] {
				if k == i {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d-%d not symmetric", i, j)
			}
		}
	}
}

func TestInterferenceGraphRadius(t *testing.T) {
	f, _ := paperFloorWithTags(1, 2)
	// Grid pitch is 10 m: radius 9 yields no edges, radius 10 connects
	// the 4-neighbourhood, radius 15 adds diagonals.
	if adj := f.InterferenceGraph(9); countEdges(adj) != 0 {
		t.Errorf("radius 9: %d edges, want 0", countEdges(adj))
	}
	adj10 := f.InterferenceGraph(10)
	if countEdges(adj10) != 360 { // 180 grid-neighbour pairs, both directions
		t.Errorf("radius 10: %d directed edges, want 360", countEdges(adj10))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative radius accepted")
		}
	}()
	f.InterferenceGraph(-1)
}

func countEdges(adj [][]int) int {
	n := 0
	for _, e := range adj {
		n += len(e)
	}
	return n
}

func TestColoringIsProper(t *testing.T) {
	f, _ := paperFloorWithTags(1, 3)
	for _, radius := range []float64{10, 15, 25} {
		adj := f.InterferenceGraph(radius)
		colors, count := ColorReaders(adj)
		if count < 1 {
			t.Fatalf("radius %v: %d colors", radius, count)
		}
		for i, ns := range adj {
			for _, j := range ns {
				if colors[i] == colors[j] {
					t.Fatalf("radius %v: adjacent readers %d,%d share color %d", radius, i, j, colors[i])
				}
			}
		}
	}
}

func TestColoringGridUsesFewColors(t *testing.T) {
	f, _ := paperFloorWithTags(1, 4)
	_, count := ColorReaders(f.InterferenceGraph(10))
	// A grid 4-neighbourhood is bipartite: greedy needs at most 3 colors.
	if count > 3 {
		t.Errorf("grid colored with %d colors", count)
	}
}

func TestRunScheduledMatchesSequentialCoverage(t *testing.T) {
	det := detect.NewQCD(8, 64)
	tm := timing.Default
	session := func(sub tagmodel.Population) float64 {
		return aloha.Run(sub, det, aloha.NewFixed(maxInt(1, len(sub))), tm).TimeMicros
	}

	f1, _ := paperFloorWithTags(800, 5)
	res := f1.RunScheduled(15, session)

	f2, _ := paperFloorWithTags(800, 5)
	seqMicros, seqIdent := f2.RunSequential(session)

	if res.Identified != seqIdent {
		t.Errorf("scheduled identified %d, sequential %d", res.Identified, seqIdent)
	}
	if res.MakespanMicros >= seqMicros {
		t.Errorf("schedule makespan %.0f not below sequential %.0f", res.MakespanMicros, seqMicros)
	}
	if res.Speedup() < 2 {
		t.Errorf("speedup %.2f, expected real parallelism on a 100-reader floor", res.Speedup())
	}
	if res.Colors < 2 {
		t.Errorf("colors = %d", res.Colors)
	}
}

func TestRunUnscheduledJamsCoveredTags(t *testing.T) {
	// With a 20 m carrier radius on a 10 m reader grid, every point of
	// the floor interior is inside at least one *other* reader's carrier,
	// so an unscheduled all-on activation jams essentially every covered
	// tag; the scheduled run reads them all.
	det := detect.NewQCD(8, 64)
	tm := timing.Default
	session := func(sub tagmodel.Population) float64 {
		return aloha.Run(sub, det, aloha.NewFixed(maxInt(1, len(sub))), tm).TimeMicros
	}
	f1, _ := paperFloorWithTags(600, 9)
	un := f1.RunUnscheduled(20, session)

	f2, _ := paperFloorWithTags(600, 9)
	sched := f2.RunScheduled(20, session)

	if un.Jammed == 0 {
		t.Fatal("no tags jammed under all-on activation (premise broken)")
	}
	if un.Identified >= sched.Identified {
		t.Errorf("unscheduled read %d ≥ scheduled %d", un.Identified, sched.Identified)
	}
	if un.Identified+un.Jammed < sched.Identified {
		t.Errorf("identified+jammed (%d+%d) below scheduled coverage %d",
			un.Identified, un.Jammed, sched.Identified)
	}
}

func TestRunUnscheduledValidation(t *testing.T) {
	f, _ := paperFloorWithTags(5, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("negative carrier radius accepted")
		}
	}()
	f.RunUnscheduled(-1, func(tagmodel.Population) float64 { return 0 })
}

func TestRunScheduledNoInterference(t *testing.T) {
	// Radius below the grid pitch: everything is one color; the makespan
	// is the slowest single reader.
	det := detect.NewQCD(8, 64)
	tm := timing.Default
	f, _ := paperFloorWithTags(300, 6)
	res := f.RunScheduled(5, func(sub tagmodel.Population) float64 {
		return aloha.Run(sub, det, aloha.NewFixed(maxInt(1, len(sub))), tm).TimeMicros
	})
	if res.Colors != 1 {
		t.Errorf("colors = %d, want 1", res.Colors)
	}
	if res.MakespanMicros > res.TotalAirtimeMicros/3 {
		t.Errorf("makespan %.0f vs total %.0f: expected heavy overlap", res.MakespanMicros, res.TotalAirtimeMicros)
	}
}

func TestZeroReaders(t *testing.T) {
	rng := prng.New(11)
	f := NewFloor(100)
	pop := tagmodel.NewPopulation(50, 64, rng)
	f.PlaceTags(pop, rng)

	adj := f.InterferenceGraph(15)
	if len(adj) != 0 {
		t.Fatalf("interference graph has %d nodes for 0 readers", len(adj))
	}
	colors, count := ColorReaders(adj)
	if len(colors) != 0 || count != 0 {
		t.Errorf("ColorReaders(empty) = %v, %d", colors, count)
	}

	ran := false
	session := func(sub tagmodel.Population) float64 { ran = true; return 1 }
	res := f.RunScheduled(15, session)
	if ran {
		t.Error("a session ran with no readers")
	}
	if res.Colors != 0 || res.Identified != 0 || res.MakespanMicros != 0 || res.TotalAirtimeMicros != 0 {
		t.Errorf("scheduled result = %+v, want all zero", res)
	}
	if res.Speedup() != 1 {
		t.Errorf("zero-makespan speedup = %v, want 1", res.Speedup())
	}
	un := f.RunUnscheduled(20, session)
	if un.Identified != 0 || un.Jammed != 0 || un.MakespanMicros != 0 {
		t.Errorf("unscheduled result = %+v, want all zero", un)
	}
	if micros, ident := f.RunSequential(session); micros != 0 || ident != 0 {
		t.Errorf("sequential = %v, %d, want 0, 0", micros, ident)
	}
}

func TestReaderRangeLargerThanArena(t *testing.T) {
	// One reader in the middle of a 10 m floor with a 200 m range: its
	// disc swallows the whole arena, so a single session must identify
	// every tag and the grid index must not miss any cell.
	rng := prng.New(12)
	f := NewFloor(10)
	f.Readers = append(f.Readers, Reader{ID: 0, Pos: Point{X: 5, Y: 5}, Range: 200})
	pop := tagmodel.NewPopulation(120, 64, rng)
	f.PlaceTags(pop, rng)

	if got := len(f.TagsInRange(f.Readers[0])); got != 120 {
		t.Fatalf("oversized range covers %d of 120 tags", got)
	}
	if cov := f.Coverage(); cov != 1 {
		t.Errorf("coverage = %v, want 1", cov)
	}

	det := detect.NewQCD(8, 64)
	session := func(sub tagmodel.Population) float64 {
		return aloha.Run(sub, det, aloha.NewFixed(maxInt(1, len(sub))), timing.Default).TimeMicros
	}
	res := f.RunScheduled(15, session)
	if res.Identified != 120 {
		t.Errorf("identified %d of 120", res.Identified)
	}
	if res.Colors != 1 {
		t.Errorf("colors = %d, want 1 for a single reader", res.Colors)
	}
	if res.MakespanMicros != res.TotalAirtimeMicros {
		t.Errorf("single reader: makespan %v != total %v", res.MakespanMicros, res.TotalAirtimeMicros)
	}
}

func TestOversizedRangeGridCoversWholeArena(t *testing.T) {
	// Four gridded readers whose ranges each dwarf the arena: every
	// reader covers every tag, the interference graph is complete at any
	// radius >= the grid pitch, and a schedule still reads everything
	// exactly once.
	rng := prng.New(13)
	f := NewFloor(10)
	f.PlaceReadersGrid(4, 200)
	pop := tagmodel.NewPopulation(60, 64, rng)
	f.PlaceTags(pop, rng)

	for _, r := range f.Readers {
		if got := len(f.TagsInRange(r)); got != 60 {
			t.Fatalf("reader %d covers %d of 60 tags", r.ID, got)
		}
	}
	adj := f.InterferenceGraph(200)
	colors, count := ColorReaders(adj)
	if count != 4 {
		t.Errorf("complete K4 colored with %d colors, want 4", count)
	}
	seen := map[int]bool{}
	for _, c := range colors {
		if seen[c] {
			t.Errorf("complete graph reused color %d", c)
		}
		seen[c] = true
	}

	det := detect.NewQCD(8, 64)
	res := f.RunScheduled(200, func(sub tagmodel.Population) float64 {
		return aloha.Run(sub, det, aloha.NewFixed(maxInt(1, len(sub))), timing.Default).TimeMicros
	})
	if res.Identified != 60 {
		t.Errorf("identified %d of 60", res.Identified)
	}
}
