package deploy_test

import (
	"fmt"

	"repro/internal/deploy"
	"repro/internal/prng"
	"repro/internal/tagmodel"
)

// The paper's Table V floor: 100 readers on a 10 m grid, 3 m read range.
// A 3 m disc per reader covers π·9/100 ≈ 28% of each 10 m cell.
func ExampleFloor_Coverage() {
	rng := prng.New(1)
	f := deploy.NewFloor(100)
	f.PlaceReadersGrid(100, 3)
	pop := tagmodel.NewPopulation(5000, 64, rng)
	f.PlaceTags(pop, rng)
	cov := f.Coverage()
	fmt.Println(cov > 0.25 && cov < 0.32)
	// Output: true
}

// Interference colouring: a 10 m grid with a 15 m interference radius
// needs four colours (the diagonal neighbours join the graph).
func ExampleColorReaders() {
	f := deploy.NewFloor(100)
	f.PlaceReadersGrid(100, 3)
	_, count := deploy.ColorReaders(f.InterferenceGraph(15))
	fmt.Println(count)
	// Output: 4
}
