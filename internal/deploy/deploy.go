// Package deploy implements the paper's Table V spatial environment: a
// 100 m × 100 m area covered by 100 readers with a 3 m identification
// range, and tags placed uniformly at random. Readers are activated
// sequentially (the paper assumes no reader-reader or reader-tag
// collisions, Section II), each running an ordinary single-reader
// identification session over the tags inside its range.
//
// A uniform grid index answers the range queries so floor-scale
// deployments stay O(tags) instead of O(readers × tags).
package deploy

import (
	"fmt"
	"math"

	"repro/internal/prng"
	"repro/internal/tagmodel"
)

// Point is a position in metres.
type Point struct{ X, Y float64 }

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// Reader is a fixed interrogator with a circular identification range.
type Reader struct {
	ID    int
	Pos   Point
	Range float64
}

// Covers reports whether the reader can interrogate a tag at q.
func (r Reader) Covers(q Point) bool { return r.Pos.Dist(q) <= r.Range }

// PlacedTag pairs a tag with its position.
type PlacedTag struct {
	Tag *tagmodel.Tag
	Pos Point
}

// Floor is a populated deployment area.
type Floor struct {
	Side    float64
	Readers []Reader
	Tags    []PlacedTag

	cell float64
	grid map[[2]int][]int // cell -> indices into Tags
}

// NewFloor returns an empty floor of the given square side (metres).
func NewFloor(side float64) *Floor {
	if side <= 0 {
		panic(fmt.Sprintf("deploy: floor side %v must be positive", side))
	}
	return &Floor{Side: side}
}

// PlaceReadersGrid positions count readers on a regular √count × √count
// grid (count must be a perfect square, e.g. the paper's 100 readers).
func (f *Floor) PlaceReadersGrid(count int, rng float64) {
	k := int(math.Round(math.Sqrt(float64(count))))
	if k*k != count {
		panic(fmt.Sprintf("deploy: %d readers do not form a square grid", count))
	}
	step := f.Side / float64(k)
	f.Readers = f.Readers[:0]
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			f.Readers = append(f.Readers, Reader{
				ID:    i*k + j,
				Pos:   Point{X: (float64(i) + 0.5) * step, Y: (float64(j) + 0.5) * step},
				Range: rng,
			})
		}
	}
}

// PlaceReadersRandom positions count readers uniformly at random.
func (f *Floor) PlaceReadersRandom(count int, rng float64, src *prng.Source) {
	f.Readers = f.Readers[:0]
	for i := 0; i < count; i++ {
		f.Readers = append(f.Readers, Reader{
			ID:    i,
			Pos:   Point{X: src.Float64() * f.Side, Y: src.Float64() * f.Side},
			Range: rng,
		})
	}
}

// PlaceTags scatters the population uniformly over the floor and builds
// the spatial index. The cell size is the maximum reader range so a range
// query inspects at most 3×3 cells.
func (f *Floor) PlaceTags(pop tagmodel.Population, src *prng.Source) {
	maxRange := 1.0
	for _, r := range f.Readers {
		if r.Range > maxRange {
			maxRange = r.Range
		}
	}
	f.cell = maxRange
	f.grid = make(map[[2]int][]int)
	f.Tags = make([]PlacedTag, len(pop))
	for i, t := range pop {
		p := Point{X: src.Float64() * f.Side, Y: src.Float64() * f.Side}
		f.Tags[i] = PlacedTag{Tag: t, Pos: p}
		c := f.cellOf(p)
		f.grid[c] = append(f.grid[c], i)
	}
}

func (f *Floor) cellOf(p Point) [2]int {
	return [2]int{int(p.X / f.cell), int(p.Y / f.cell)}
}

// TagsInRange returns the tags a reader covers, via the grid index.
func (f *Floor) TagsInRange(r Reader) tagmodel.Population {
	if f.grid == nil {
		return nil
	}
	lo := f.cellOf(Point{X: math.Max(0, r.Pos.X-r.Range), Y: math.Max(0, r.Pos.Y-r.Range)})
	hi := f.cellOf(Point{X: math.Min(f.Side, r.Pos.X+r.Range), Y: math.Min(f.Side, r.Pos.Y+r.Range)})
	var out tagmodel.Population
	for cx := lo[0]; cx <= hi[0]; cx++ {
		for cy := lo[1]; cy <= hi[1]; cy++ {
			for _, i := range f.grid[[2]int{cx, cy}] {
				if r.Covers(f.Tags[i].Pos) {
					out = append(out, f.Tags[i].Tag)
				}
			}
		}
	}
	return out
}

// Coverage returns the fraction of tags covered by at least one reader.
func (f *Floor) Coverage() float64 {
	if len(f.Tags) == 0 {
		return 0
	}
	covered := 0
	for _, pt := range f.Tags {
		for _, r := range f.Readers {
			if r.Covers(pt.Pos) {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(len(f.Tags))
}

// SessionFn runs one single-reader identification session over a
// sub-population and returns its airtime in microseconds.
type SessionFn func(pop tagmodel.Population) (micros float64)

// RunSequential activates each reader in turn on the tags in its range
// that are still unidentified (a tag identified by one reader keeps
// silent for later readers). It returns total airtime and the number of
// tags identified.
func (f *Floor) RunSequential(run SessionFn) (totalMicros float64, identified int) {
	for _, r := range f.Readers {
		var sub tagmodel.Population
		for _, t := range f.TagsInRange(r) {
			if !t.Identified {
				sub = append(sub, t)
			}
		}
		if len(sub) == 0 {
			continue
		}
		totalMicros += run(sub)
	}
	for _, pt := range f.Tags {
		if pt.Tag.Identified {
			identified++
		}
	}
	return totalMicros, identified
}
