package detect

import (
	"strings"
	"testing"

	"repro/internal/bitstr"
)

func TestComplementIsACollisionFunction(t *testing.T) {
	// Theorem 1, verified exhaustively: pairs up to width 10, triples up
	// to width 6.
	for _, w := range []int{1, 2, 4, 8, 10} {
		if ce := Verify(Complement(), w, 2); ce != nil {
			t.Fatalf("width %d: complement failed Definition 1: %v", w, ce)
		}
	}
	if ce := Verify(Complement(), 6, 3); ce != nil {
		t.Fatalf("complement failed on triples: %v", ce)
	}
}

func TestIdentityFails(t *testing.T) {
	ce := Verify(Identity(), 4, 2)
	if ce == nil {
		t.Fatal("identity passed Definition 1 (impossible: OR is idempotent)")
	}
	if ce.Spurious {
		t.Error("identity should fail by missing collisions, not flagging singles")
	}
}

func TestReverseFails(t *testing.T) {
	if ce := Verify(Reverse(), 2, 2); ce == nil {
		t.Fatal("bit-reversal passed Definition 1")
	}
	// The documented witness: r1=01, r2=10.
	r1 := bitstr.MustParse("01")
	r2 := bitstr.MustParse("10")
	f := Reverse().F
	or := bitstr.Or(r1, r2)
	if !f(or).Equal(bitstr.Or(f(r1), f(r2))) {
		t.Error("documented witness no longer reproduces")
	}
}

func TestRotateFails(t *testing.T) {
	if ce := Verify(RotateOne(), 3, 2); ce == nil {
		t.Fatal("rotation passed Definition 1")
	}
}

func TestXorConstOnlyAllOnesWorks(t *testing.T) {
	// f(r) = r ⊕ k equals the complement exactly when k is all ones; any
	// zero bit in k leaves a position where OR distributes.
	w := 4
	allOnes := bitstr.Not(bitstr.New(w))
	if ce := Verify(XorConst(allOnes), w, 2); ce != nil {
		t.Fatalf("xor-1111 (the complement) failed: %v", ce)
	}
	for _, k := range []string{"0000", "0001", "1110", "1010"} {
		if ce := Verify(XorConst(bitstr.MustParse(k)), w, 2); ce == nil {
			t.Errorf("xor-%s passed Definition 1, should fail", k)
		}
	}
}

func TestCounterexampleString(t *testing.T) {
	ce := Counterexample{Rs: []bitstr.BitString{bitstr.MustParse("01"), bitstr.MustParse("10")}}
	if !strings.Contains(ce.String(), "missed collision") || !strings.Contains(ce.String(), "01") {
		t.Errorf("String() = %s", ce.String())
	}
	ce.Spurious = true
	if !strings.Contains(ce.String(), "spurious") {
		t.Errorf("String() = %s", ce.String())
	}
}

func TestVerifyWidthValidation(t *testing.T) {
	for _, w := range []int{0, 17} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("width %d accepted", w)
				}
			}()
			Verify(Complement(), w, 2)
		}()
	}
}
