package detect

import (
	"math"
	"testing"

	"repro/internal/bitstr"
	"repro/internal/crc"
	"repro/internal/prng"
	"repro/internal/signal"
	"repro/internal/tagmodel"
)

func newTag(idBits int, seed uint64) *tagmodel.Tag {
	rng := prng.New(seed)
	id := bitstr.FromUint64(rng.Bits(min64(idBits)), min64(idBits))
	for id.Len() < idBits {
		id = bitstr.Concat(id, bitstr.FromUint64(rng.Bits(1), 1))
	}
	return tagmodel.New(0, id, rng.Split())
}

func min64(n int) int {
	if n > 64 {
		return 64
	}
	return n
}

// --- QCD ---

func TestQCDPayloadShape(t *testing.T) {
	q := NewQCD(8, 64)
	tag := newTag(64, 1)
	p := q.ContentionPayload(tag)
	if p.Len() != 16 {
		t.Fatalf("payload length = %d, want 16", p.Len())
	}
	r := p.Slice(0, 8)
	c := p.Slice(8, 16)
	if !c.Equal(bitstr.Not(r)) {
		t.Fatalf("payload %v is not r||~r", p)
	}
}

func TestQCDClassifyIdle(t *testing.T) {
	q := NewQCD(8, 64)
	if got := q.Classify(signal.Reception{}); got != signal.Idle {
		t.Errorf("no energy classified as %v", got)
	}
}

func TestQCDClassifySingle(t *testing.T) {
	q := NewQCD(8, 64)
	tag := newTag(64, 2)
	rx := signal.Overlap(q.ContentionPayload(tag))
	if got := q.Classify(rx); got != signal.Single {
		t.Errorf("lone responder classified as %v", got)
	}
}

func TestQCDClassifyCollisionDistinctIntegers(t *testing.T) {
	// Theorem 1: two distinct integers are always detected.
	q := NewQCD(4, 64)
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			ra := bitstr.FromUint64(a, 4)
			rb := bitstr.FromUint64(b, 4)
			rx := signal.Overlap(
				bitstr.Concat(ra, bitstr.Not(ra)),
				bitstr.Concat(rb, bitstr.Not(rb)),
			)
			got := q.Classify(rx)
			if a == b {
				if got != signal.Single {
					t.Fatalf("equal integers %d: classified %v (indistinguishable case must pass)", a, got)
				}
			} else if got != signal.Collided {
				t.Fatalf("distinct integers %d,%d: classified %v, Theorem 1 violated", a, b, got)
			}
		}
	}
}

func TestQCDClassifyManyTags(t *testing.T) {
	q := NewQCD(8, 64)
	rng := prng.New(9)
	for trial := 0; trial < 200; trial++ {
		m := 2 + rng.Intn(10)
		payloads := make([]bitstr.BitString, m)
		distinct := false
		first := uint64(0)
		for i := range payloads {
			r := rng.Bits(8)
			if i == 0 {
				first = r
			} else if r != first {
				distinct = true
			}
			rb := bitstr.FromUint64(r, 8)
			payloads[i] = bitstr.Concat(rb, bitstr.Not(rb))
		}
		got := q.Classify(signal.Overlap(payloads...))
		if distinct && got != signal.Collided {
			t.Fatalf("distinct integers not detected (m=%d)", m)
		}
		if !distinct && got != signal.Single {
			t.Fatalf("identical integers flagged (m=%d)", m)
		}
	}
}

func TestQCDMalformedSignal(t *testing.T) {
	q := NewQCD(8, 64)
	rx := signal.Reception{Signal: bitstr.New(10), Energy: true}
	if got := q.Classify(rx); got != signal.Collided {
		t.Errorf("malformed frame classified %v, want collided", got)
	}
}

func TestQCDSlotBits(t *testing.T) {
	q := NewQCD(8, 64)
	if got := SlotBits(q, signal.Idle); got != 16 {
		t.Errorf("idle slot = %d bits, want 16", got)
	}
	if got := SlotBits(q, signal.Collided); got != 16 {
		t.Errorf("collided slot = %d bits, want 16", got)
	}
	if got := SlotBits(q, signal.Single); got != 80 {
		t.Errorf("single slot = %d bits, want 16+64", got)
	}
}

func TestQCDMissProbability(t *testing.T) {
	q := NewQCD(8, 64)
	if q.MissProbability(1) != 0 {
		t.Error("m=1 miss probability must be 0")
	}
	if got := q.MissProbability(2); math.Abs(got-1.0/256) > 1e-12 {
		t.Errorf("m=2 miss = %v, want 1/256", got)
	}
	if got := q.MissProbability(3); math.Abs(got-1.0/65536) > 1e-15 {
		t.Errorf("m=3 miss = %v, want 2^-16", got)
	}
	// Strength 64 must not overflow.
	if got := NewQCD(64, 64).MissProbability(2); got <= 0 || got > 1e-18 {
		t.Errorf("strength-64 miss = %v", got)
	}
}

func TestQCDEmpiricalMissRate(t *testing.T) {
	// Two tags, strength 4: collisions evade detection iff both draw the
	// same integer, expected rate 1/16.
	q := NewQCD(4, 64)
	a, b := newTag(64, 10), newTag(64, 11)
	misses, trials := 0, 20000
	for i := 0; i < trials; i++ {
		rx := signal.Overlap(q.ContentionPayload(a), q.ContentionPayload(b))
		if q.Classify(rx) == signal.Single {
			misses++
		}
	}
	rate := float64(misses) / float64(trials)
	if math.Abs(rate-1.0/16) > 0.01 {
		t.Errorf("empirical miss rate = %v, want ~%v", rate, 1.0/16)
	}
}

func TestQCDExtractID(t *testing.T) {
	q := NewQCD(8, 64)
	tag := newTag(64, 3)
	idRx := signal.Overlap(tag.ID)
	id, ok := q.ExtractID(signal.Reception{}, idRx)
	if !ok || !id.Equal(tag.ID) {
		t.Errorf("ExtractID = %v/%v", id, ok)
	}
	if _, ok := q.ExtractID(signal.Reception{}, signal.Reception{}); ok {
		t.Error("ExtractID succeeded with no ID phase")
	}
}

func TestQCDStrengthValidation(t *testing.T) {
	for _, s := range []int{0, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("strength %d not rejected", s)
				}
			}()
			NewQCD(s, 64)
		}()
	}
}

// --- CRC-CD ---

func TestCRCCDPayloadAndClassify(t *testing.T) {
	d := NewCRCCD(crc.CRC16EPC, 64)
	tag := newTag(64, 4)
	p := d.ContentionPayload(tag)
	if p.Len() != 80 {
		t.Fatalf("payload = %d bits, want 64+16", p.Len())
	}
	rx := signal.Overlap(p)
	if got := d.Classify(rx); got != signal.Single {
		t.Errorf("lone responder classified %v", got)
	}
	id, ok := d.ExtractID(rx, signal.Reception{})
	if !ok || !id.Equal(tag.ID) {
		t.Errorf("ExtractID = %v/%v", id, ok)
	}
}

func TestCRCCDClassifyIdleAndCollision(t *testing.T) {
	d := NewCRCCD(crc.CRC16EPC, 64)
	if got := d.Classify(signal.Reception{}); got != signal.Idle {
		t.Errorf("idle classified %v", got)
	}
	a, b := newTag(64, 5), newTag(64, 6)
	rx := signal.Overlap(d.ContentionPayload(a), d.ContentionPayload(b))
	if got := d.Classify(rx); got != signal.Collided {
		t.Errorf("collision classified %v (CRC aliasing is ~2^-16, not this pair)", got)
	}
}

func TestCRCCDCollisionDetectionRate(t *testing.T) {
	// Random pairs must essentially always be detected (alias rate 2^-16).
	d := NewCRCCD(crc.CRC16EPC, 64)
	rng := prng.New(12)
	for i := 0; i < 5000; i++ {
		a := tagmodel.New(0, bitstr.FromUint64(rng.Bits(64), 64), rng.Split())
		b := tagmodel.New(1, bitstr.FromUint64(rng.Bits(64), 64), rng.Split())
		if a.ID.Equal(b.ID) {
			continue
		}
		rx := signal.Overlap(d.ContentionPayload(a), d.ContentionPayload(b))
		if d.Classify(rx) == signal.Single {
			t.Fatalf("trial %d: collision missed by CRC-CD (possible but ~2^-16; investigate)", i)
		}
	}
}

func TestCRCCDSlotBits(t *testing.T) {
	d := NewCRCCD(crc.CRC32IEEE, 64)
	for _, typ := range []signal.SlotType{signal.Idle, signal.Single, signal.Collided} {
		if got := SlotBits(d, typ); got != 96 {
			t.Errorf("%v slot = %d bits, want 96 for all types", typ, got)
		}
	}
}

func TestCRCCDRejectsMisalignedReflectedIDs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("reflected CRC with 63-bit IDs not rejected")
		}
	}()
	NewCRCCD(crc.CRC32IEEE, 63)
}

func TestCRCCDWrongTagLengthPanics(t *testing.T) {
	d := NewCRCCD(crc.CRC16EPC, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched tag ID length not rejected")
		}
	}()
	d.ContentionPayload(newTag(32, 7))
}

// --- Oracle ---

func TestOracleClassifiesByGroundTruth(t *testing.T) {
	o := NewOracle(1, 64)
	if got := o.Classify(signal.Reception{Responders: 0}); got != signal.Idle {
		t.Errorf("0 responders -> %v", got)
	}
	if got := o.Classify(signal.Reception{Responders: 1, Energy: true}); got != signal.Single {
		t.Errorf("1 responder -> %v", got)
	}
	if got := o.Classify(signal.Reception{Responders: 5, Energy: true}); got != signal.Collided {
		t.Errorf("5 responders -> %v", got)
	}
}

func TestOracleBits(t *testing.T) {
	o := NewOracle(1, 64)
	if SlotBits(o, signal.Idle) != 1 || SlotBits(o, signal.Single) != 65 {
		t.Error("oracle slot bits wrong")
	}
}

func TestDetectorNames(t *testing.T) {
	if NewQCD(8, 64).Name() != "QCD-8" {
		t.Error("QCD name")
	}
	if NewCRCCD(crc.CRC32IEEE, 64).Name() != "CRC-CD/CRC-32/IEEE" {
		t.Error("CRC-CD name")
	}
	if NewOracle(1, 64).Name() != "Oracle" {
		t.Error("oracle name")
	}
}
