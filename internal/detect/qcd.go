package detect

import (
	"fmt"
	"math"

	"repro/internal/bitstr"
	"repro/internal/signal"
	"repro/internal/tagmodel"
)

// QCD is the paper's Quick Collision Detection scheme (Section IV).
//
// Each responding tag draws a fresh random strength-bit integer r and
// transmits the collision preamble r ⊕ f(r) with f(r) = r̄. By Theorem 1,
// if at least two responders drew different integers, the overlapped
// preamble s = (∨r_i) ⊕ (∨r̄_i) fails the check c = f(r) — the complement
// of an OR is the AND of complements, not their OR — so the reader flags a
// collision. The only undetected collisions are slots where every
// responder drew the same integer, with probability 2^-(strength·(m-1)).
type QCD struct {
	strength int // bits of the random integer r ("strength of QCD")
	idBits   int // bits of the tag ID sent in the follow-up phase
}

// NewQCD returns a QCD detector with the given strength (the paper
// recommends 8) for IDs of idBits bits (the paper uses 64).
func NewQCD(strength, idBits int) *QCD {
	if strength < 1 || strength > 64 {
		panic(fmt.Sprintf("detect: QCD strength %d out of range [1,64]", strength))
	}
	checkIDBits(idBits)
	return &QCD{strength: strength, idBits: idBits}
}

// Name implements Detector.
func (q *QCD) Name() string { return fmt.Sprintf("QCD-%d", q.strength) }

// Strength returns the random-integer length in bits.
func (q *QCD) Strength() int { return q.strength }

// ContentionPayload draws r from the tag's stream and returns r ⊕ r̄.
func (q *QCD) ContentionPayload(t *tagmodel.Tag) bitstr.BitString {
	r := bitstr.FromUint64(t.Rng.Bits(q.strength), q.strength)
	return bitstr.Concat(r, bitstr.Not(r))
}

// ContentionPayloadInto implements ScratchPayloader. It draws exactly the
// same random integer as ContentionPayload; the preamble is assembled in
// scratch, which for strengths up to 32 stays inline and costs nothing.
func (q *QCD) ContentionPayloadInto(t *tagmodel.Tag, scratch bitstr.BitString) bitstr.BitString {
	r := bitstr.FromUint64(t.Rng.Bits(q.strength), q.strength)
	return bitstr.ConcatInto(&scratch, r, bitstr.Not(r))
}

// Classify implements Algorithm 1 of the paper:
//
//	if s = 0 (no energy)      -> idle
//	else split s into r ⊕ c:
//	  if c = f(r) = r̄         -> single
//	  else                    -> collided
func (q *QCD) Classify(rx signal.Reception) signal.SlotType {
	if !rx.Energy {
		return signal.Idle
	}
	if rx.Signal.Len() != 2*q.strength {
		// A malformed phase (e.g. jamming with the wrong frame length)
		// cannot be a clean single response.
		return signal.Collided
	}
	// c = r̄ compared as machine words: both halves of the preamble fit in
	// 64 bits (strength <= 64), so no sub-string is materialised.
	r := rx.Signal.Uint64Range(0, q.strength)
	c := rx.Signal.Uint64Range(q.strength, 2*q.strength)
	mask := ^uint64(0) >> (64 - uint(q.strength))
	if c == ^r&mask {
		return signal.Single
	}
	return signal.Collided
}

// ContentionBits is the preamble length l_prm = 2·strength.
func (q *QCD) ContentionBits() int { return 2 * q.strength }

// NeedsIDPhase is true: QCD tags transmit their ID only after the reader
// declares the slot single.
func (q *QCD) NeedsIDPhase() bool { return true }

// IDPhaseBits is the ID length l_id.
func (q *QCD) IDPhaseBits() int { return q.idBits }

// ExtractID reads the acknowledged ID from the ID-phase reception.
func (q *QCD) ExtractID(_, idPhase signal.Reception) (bitstr.BitString, bool) {
	if !idPhase.Energy || idPhase.Signal.Len() != q.idBits {
		return bitstr.BitString{}, false
	}
	return idPhase.Signal, true
}

// MissProbability returns the probability that a collision among m
// responders goes undetected: all m tags must draw the same integer,
// which happens with probability 2^-(strength·(m-1)).
func (q *QCD) MissProbability(m int) float64 {
	if m <= 1 {
		return 0
	}
	return math.Pow(2, -float64(q.strength)*float64(m-1))
}

var _ Detector = (*QCD)(nil)
