package detect

import (
	"testing"

	"repro/internal/crc"
	"repro/internal/signal"
)

func BenchmarkQCDClassify(b *testing.B) {
	q := NewQCD(8, 64)
	tag := newTag(64, 1)
	rx := signal.Overlap(q.ContentionPayload(tag))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = q.Classify(rx)
	}
}

func BenchmarkCRCCDClassify(b *testing.B) {
	d := NewCRCCD(crc.CRC32IEEE, 64)
	tag := newTag(64, 1)
	rx := signal.Overlap(d.ContentionPayload(tag))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = d.Classify(rx)
	}
}

func BenchmarkQCDPayload(b *testing.B) {
	q := NewQCD(8, 64)
	tag := newTag(64, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = q.ContentionPayload(tag)
	}
}

func BenchmarkCRCCDPayload(b *testing.B) {
	d := NewCRCCD(crc.CRC32IEEE, 64)
	tag := newTag(64, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = d.ContentionPayload(tag)
	}
}
