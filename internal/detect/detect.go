// Package detect implements the paper's collision detection schemes.
//
// A collision detector decides, from the overlapped signal of one slot,
// whether zero, one, or more than one tag responded. The paper's baseline
// is CRC-CD (every tag transmits ID || crc(ID); the reader recomputes the
// CRC over the overlapped signal). The contribution is QCD — Quick
// Collision Detection — in which each tag transmits a short collision
// preamble r || f(r) with f(r) = r̄ (bitwise complement, Theorem 1), and
// only a tag in a slot the reader declares single goes on to transmit its
// ID. Idle and collided slots therefore carry 2·l bits instead of
// l_id + l_crc bits, and the tag-side checksum costs one instruction
// instead of an O(l) CRC.
//
// Detectors are pure per-slot deciders; the anti-collision engines
// (internal/aloha, internal/btree, internal/qtree) own the scheduling.
package detect

import (
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/signal"
	"repro/internal/tagmodel"
)

// Detector is a collision detection scheme, pluggable into any
// anti-collision algorithm (the paper's "no modification on upper-level
// air protocols" property).
type Detector interface {
	// Name identifies the scheme in reports.
	Name() string

	// ContentionPayload returns the bits tag t transmits in the contention
	// phase of a slot. It may consume randomness from t.Rng.
	ContentionPayload(t *tagmodel.Tag) bitstr.BitString

	// Classify decides the slot type from the overlapped contention
	// signal. Implementations other than the oracle must not read
	// rx.Responders.
	Classify(rx signal.Reception) signal.SlotType

	// ContentionBits is the airtime, in bits, of the contention phase.
	// The reader must budget it for every slot, including idle ones.
	ContentionBits() int

	// NeedsIDPhase reports whether a slot classified single is followed by
	// a separate ID transmission (true for QCD, false for CRC-CD where the
	// ID rode along in the contention phase).
	NeedsIDPhase() bool

	// IDPhaseBits is the airtime of that ID transmission.
	IDPhaseBits() int

	// ExtractID recovers the acknowledged ID from a slot declared single:
	// for CRC-CD it is embedded in the contention signal; for QCD the
	// caller supplies the ID-phase reception. ok is false when the signal
	// cannot possibly carry an ID of the right length.
	ExtractID(contention, idPhase signal.Reception) (id bitstr.BitString, ok bool)
}

// ScratchPayloader is an optional extension of Detector for the
// zero-allocation slot path. ContentionPayloadInto behaves exactly like
// ContentionPayload — same bits, same draws from t.Rng — but may reuse
// scratch's backing storage to build the payload. The caller passes the
// previous return value back in as scratch on the next call; the payload
// is only valid until then, so the slot engine copies it into the channel
// before reuse. Scratch travels by value (not by pointer) so that this
// interface call never forces the caller's slot state onto the heap.
// Wrappers that decorate a Detector should forward this interface so the
// fast path survives instrumentation.
type ScratchPayloader interface {
	ContentionPayloadInto(t *tagmodel.Tag, scratch bitstr.BitString) bitstr.BitString
}

// PayloadInto dispatches to ContentionPayloadInto when d implements
// ScratchPayloader, threading *scratch through it, and falls back to
// ContentionPayload otherwise.
func PayloadInto(d Detector, t *tagmodel.Tag, scratch *bitstr.BitString) bitstr.BitString {
	if sp, ok := d.(ScratchPayloader); ok {
		*scratch = sp.ContentionPayloadInto(t, *scratch)
		return *scratch
	}
	return d.ContentionPayload(t)
}

// SlotBits returns the total airtime in bits of a slot classified as
// typ under detector d. This is the quantity the paper's timing analysis
// integrates: CRC-CD pays ContentionBits for every slot type, QCD pays
// 2·l for idle/collided slots and 2·l + l_id for single slots.
func SlotBits(d Detector, typ signal.SlotType) int {
	bits := d.ContentionBits()
	if typ == signal.Single && d.NeedsIDPhase() {
		bits += d.IDPhaseBits()
	}
	return bits
}

func checkIDBits(idBits int) {
	if idBits < 1 {
		panic(fmt.Sprintf("detect: idBits %d must be positive", idBits))
	}
}
