package detect

import (
	"repro/internal/bitstr"
	"repro/internal/signal"
	"repro/internal/tagmodel"
)

// Oracle is an idealised detector for ablation studies: it classifies
// slots from ground truth with zero contention overhead (as if the reader
// had the special collision-sensing hardware the paper's Section I calls
// "costly and unaffordable"). It lower-bounds the identification time of
// any real detection scheme, isolating how much of QCD's gain comes from
// the short preamble versus from detection accuracy.
type Oracle struct {
	contentionBits int // configurable floor, usually 1 (a minimal RN burst)
	idBits         int
	burst          bitstr.BitString // precomputed all-ones contention burst
}

// NewOracle returns an oracle detector. contentionBits models the shortest
// physically meaningful contention burst (use 1 for the pure lower bound).
func NewOracle(contentionBits, idBits int) *Oracle {
	if contentionBits < 1 {
		panic("detect: oracle contention must be at least 1 bit")
	}
	checkIDBits(idBits)
	return &Oracle{
		contentionBits: contentionBits,
		idBits:         idBits,
		burst:          bitstr.Not(bitstr.New(contentionBits)),
	}
}

// Name implements Detector.
func (o *Oracle) Name() string { return "Oracle" }

// ContentionPayload is a minimal constant burst; content is irrelevant
// because classification uses ground truth.
func (o *Oracle) ContentionPayload(*tagmodel.Tag) bitstr.BitString {
	return o.burst
}

// Classify reads the ground-truth responder count.
func (o *Oracle) Classify(rx signal.Reception) signal.SlotType {
	return signal.Classify(rx.Responders)
}

// ContentionBits implements Detector.
func (o *Oracle) ContentionBits() int { return o.contentionBits }

// NeedsIDPhase is true: like QCD, the ID is sent only in single slots.
func (o *Oracle) NeedsIDPhase() bool { return true }

// IDPhaseBits implements Detector.
func (o *Oracle) IDPhaseBits() int { return o.idBits }

// ExtractID reads the ID-phase reception.
func (o *Oracle) ExtractID(_, idPhase signal.Reception) (bitstr.BitString, bool) {
	if !idPhase.Energy || idPhase.Signal.Len() != o.idBits {
		return bitstr.BitString{}, false
	}
	return idPhase.Signal, true
}

var _ Detector = (*Oracle)(nil)
