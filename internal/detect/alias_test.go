package detect

import (
	"testing"

	"repro/internal/bitstr"
	"repro/internal/crc"
	"repro/internal/prng"
	"repro/internal/signal"
	"repro/internal/tagmodel"
)

// TestCRC16AliasExistsAndFoolsCRCCD hunts for a concrete instance of the
// paper's CRC misdetection (error probability 2^-r, Section IV-A): a pair
// of IDs whose overlapped signal happens to satisfy
// crc(id_a ∨ id_b) = crc(id_a) ∨ crc(id_b), which CRC-CD declares a
// single slot. Expected hits per trial are 2^-16, so half a million
// random pairs find one with overwhelming probability — and QCD-16 at the
// same check width must still flag the very same pair (its misses depend
// on the random integers, not the IDs).
func TestCRC16AliasExistsAndFoolsCRCCD(t *testing.T) {
	if testing.Short() {
		t.Skip("alias hunt samples ~500k pairs")
	}
	params := crc.CRC16EPC
	tab := crc.NewTable(params)
	rng := prng.New(0xA11A5)

	found := false
	var idA, idB bitstr.BitString
	const trials = 2_000_000
	buf := make([]byte, 8)
	or := make([]byte, 8)
	for i := 0; i < trials && !found; i++ {
		a := rng.Uint64()
		b := rng.Uint64()
		if a == b {
			continue
		}
		put64(buf, a)
		ca := tab.Checksum(buf)
		put64(buf, b)
		cb := tab.Checksum(buf)
		put64(or, a|b)
		cOr := tab.Checksum(or)
		if cOr == ca|cb {
			found = true
			idA = bitstr.FromUint64(a, 64)
			idB = bitstr.FromUint64(b, 64)
		}
	}
	if !found {
		// P(no hit) ≈ (1 − 2^-16)^2e6 ≈ e^-30.5: effectively impossible.
		t.Fatal("no CRC-16 alias in 2M pairs — misdetection model or CRC engine is off")
	}

	// The found pair must fool the actual CRC-CD detector end to end.
	det := NewCRCCD(params, 64)
	src := prng.New(1)
	ta := tagmodel.New(0, idA, src.Split())
	tb := tagmodel.New(1, idB, src.Split())
	rx := signal.Overlap(det.ContentionPayload(ta), det.ContentionPayload(tb))
	if got := det.Classify(rx); got != signal.Single {
		t.Fatalf("alias pair classified %v by CRC-CD; expected a missed collision", got)
	}

	// QCD at the same 16-bit check width flags this exact pair unless the
	// tags draw identical integers (2^-16 per slot, independent of IDs).
	q := NewQCD(16, 64)
	misses := 0
	for i := 0; i < 1000; i++ {
		rxq := signal.Overlap(q.ContentionPayload(ta), q.ContentionPayload(tb))
		if q.Classify(rxq) == signal.Single {
			misses++
		}
	}
	if misses > 2 {
		t.Errorf("QCD-16 missed the alias pair %d/1000 times; expected ~0 (2^-16 per slot)", misses)
	}
}

func put64(dst []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		dst[i] = byte(v)
		v >>= 8
	}
}
