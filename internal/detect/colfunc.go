package detect

import (
	"fmt"

	"repro/internal/bitstr"
)

// CollisionFunc is a candidate f for the paper's Definition 1: each tag
// transmits r ‖ f(r); the reader declares a collision when
// f(∨ r_i) ≠ ∨ f(r_i). f must be length-preserving.
type CollisionFunc struct {
	Name string
	F    func(bitstr.BitString) bitstr.BitString
}

// Complement is the paper's choice, f(r) = r̄ (Theorem 1 proves it valid).
func Complement() CollisionFunc {
	return CollisionFunc{Name: "complement", F: bitstr.Not}
}

// Identity is the degenerate f(r) = r; it satisfies neither direction
// (f(∨r) always equals ∨f(r)), so it never detects anything.
func Identity() CollisionFunc {
	return CollisionFunc{Name: "identity", F: func(r bitstr.BitString) bitstr.BitString { return r }}
}

// Reverse is f(r) = r with the bit order reversed — a plausible-looking
// candidate that fails Definition 1: e.g. r1=01, r2=10 give
// f(r1∨r2)=f(11)=11 = f(r1)∨f(r2)=10∨01, flagging nothing.
func Reverse() CollisionFunc {
	return CollisionFunc{Name: "reverse", F: func(r bitstr.BitString) bitstr.BitString {
		out := bitstr.New(r.Len())
		for i := 0; i < r.Len(); i++ {
			out = out.SetBit(i, r.Bit(r.Len()-1-i))
		}
		return out
	}}
}

// XorConst is f(r) = r ⊕ k for a constant pattern k; for k = all-ones it
// coincides with the complement, for any other k it fails on the bit
// positions where k is zero.
func XorConst(k bitstr.BitString) CollisionFunc {
	return CollisionFunc{
		Name: fmt.Sprintf("xor-%s", k),
		F: func(r bitstr.BitString) bitstr.BitString {
			return bitstr.Xor(r, k)
		},
	}
}

// RotateOne is f(r) = r rotated left by one — fails Definition 1 (any
// rotation-closed pair defeats it).
func RotateOne() CollisionFunc {
	return CollisionFunc{Name: "rotate1", F: func(r bitstr.BitString) bitstr.BitString {
		if r.Len() == 0 {
			return r
		}
		return bitstr.Concat(r.Slice(1, r.Len()), r.Slice(0, 1))
	}}
}

// Counterexample is a witness that f violates Definition 1: a set of
// integers with at least two distinct values whose overlap f fails to
// flag, or a singleton f flags spuriously.
type Counterexample struct {
	Rs       []bitstr.BitString
	Spurious bool // true: a singleton was flagged; false: a collision was missed
}

// String formats the witness.
func (c Counterexample) String() string {
	kind := "missed collision"
	if c.Spurious {
		kind = "spurious flag"
	}
	s := kind + " on {"
	for i, r := range c.Rs {
		if i > 0 {
			s += ", "
		}
		s += r.String()
	}
	return s + "}"
}

// Verify exhaustively checks Definition 1 for all multisets of up to m
// integers of the given bit width (width ≤ 12 keeps this tractable; pair
// checking is width ≤ 16). It returns nil if f is a collision function on
// that domain, or the first counterexample found.
//
// Definition 1 has two directions:
//  1. m > 1 with at least two distinct values ⇒ f(∨r_i) ≠ ∨f(r_i);
//  2. m = 1 (or all values equal, indistinguishable from m = 1 on the
//     air) ⇒ equality.
//
// Direction 1 for arbitrary m reduces to pairs: the Boolean sum is
// associative and monotone, but a pair-valid f can still fail on triples,
// so Verify checks pairs and triples explicitly.
func Verify(f CollisionFunc, width, m int) *Counterexample {
	if width < 1 || width > 16 {
		panic(fmt.Sprintf("detect: Verify width %d out of [1,16]", width))
	}
	n := uint64(1) << uint(width)

	// Direction 2 (m = 1 or all values equal ⇒ equality) holds trivially
	// for any deterministic f: f(∨ of one value) and the ∨ of one f-value
	// are the same expression. Only direction 1 can fail.

	// Direction 1: every distinct pair must be flagged.
	for a := uint64(0); a < n; a++ {
		for b := a + 1; b < n; b++ {
			ra := bitstr.FromUint64(a, width)
			rb := bitstr.FromUint64(b, width)
			or := bitstr.Or(ra, rb)
			if f.F(or).Equal(bitstr.Or(f.F(ra), f.F(rb))) {
				return &Counterexample{Rs: []bitstr.BitString{ra, rb}}
			}
		}
	}
	if m < 3 || width > 8 {
		return nil
	}
	// Triples (distinctness needs only two differing elements).
	for a := uint64(0); a < n; a++ {
		for b := uint64(0); b < n; b++ {
			for c := uint64(0); c < n; c++ {
				if a == b && b == c {
					continue
				}
				ra := bitstr.FromUint64(a, width)
				rb := bitstr.FromUint64(b, width)
				rc := bitstr.FromUint64(c, width)
				or := bitstr.OrAll(ra, rb, rc)
				fs := bitstr.OrAll(f.F(ra), f.F(rb), f.F(rc))
				if f.F(or).Equal(fs) {
					return &Counterexample{Rs: []bitstr.BitString{ra, rb, rc}}
				}
			}
		}
	}
	return nil
}
