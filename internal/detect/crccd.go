package detect

import (
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/crc"
	"repro/internal/signal"
	"repro/internal/tagmodel"
)

// CRCCD is the baseline collision detector of Figure 1: in every slot a
// responding tag transmits ID ⊕ crc(ID); the reader recomputes the CRC of
// the (possibly overlapped) ID portion and compares it against the
// (possibly overlapped) checksum portion. Equality declares a single
// slot. A collision is missed only when crc(∨ id_i) happens to equal
// ∨ crc(id_i), with probability ≈ 2^-width.
type CRCCD struct {
	params crc.Params
	idBits int
}

// NewCRCCD returns a CRC-CD detector using the given CRC parameter set
// over idBits-bit IDs. The paper's configuration is 64-bit IDs with a
// 32-bit CRC (l_id = 64, l_crc = 32).
func NewCRCCD(params crc.Params, idBits int) *CRCCD {
	checkIDBits(idBits)
	if params.RefIn && idBits%8 != 0 {
		panic(fmt.Sprintf("detect: %s reflects input bytes; idBits %d is not a whole number of bytes", params.Name, idBits))
	}
	return &CRCCD{params: params, idBits: idBits}
}

// Name implements Detector.
func (c *CRCCD) Name() string { return "CRC-CD/" + c.params.Name }

// CRCWidth returns l_crc in bits.
func (c *CRCCD) CRCWidth() int { return c.params.Width }

// ContentionPayload is the framed unit ID ⊕ crc(ID).
func (c *CRCCD) ContentionPayload(t *tagmodel.Tag) bitstr.BitString {
	if t.ID.Len() != c.idBits {
		panic(fmt.Sprintf("detect: tag ID of %d bits under a %d-bit CRC-CD", t.ID.Len(), c.idBits))
	}
	return crc.AppendBits(c.params, t.ID)
}

// Classify recomputes the CRC over the overlapped ID portion and compares
// it with the overlapped checksum portion.
func (c *CRCCD) Classify(rx signal.Reception) signal.SlotType {
	if !rx.Energy {
		return signal.Idle
	}
	if rx.Signal.Len() != c.idBits+c.params.Width {
		return signal.Collided
	}
	if crc.VerifyBits(c.params, rx.Signal) {
		return signal.Single
	}
	return signal.Collided
}

// ContentionBits is l_id + l_crc: the ID and checksum ride in every slot.
func (c *CRCCD) ContentionBits() int { return c.idBits + c.params.Width }

// NeedsIDPhase is false: the ID was already carried in contention.
func (c *CRCCD) NeedsIDPhase() bool { return false }

// IDPhaseBits is zero for CRC-CD.
func (c *CRCCD) IDPhaseBits() int { return 0 }

// ExtractID returns the ID portion of the contention signal.
func (c *CRCCD) ExtractID(contention, _ signal.Reception) (bitstr.BitString, bool) {
	if !contention.Energy || contention.Signal.Len() != c.idBits+c.params.Width {
		return bitstr.BitString{}, false
	}
	return contention.Signal.Slice(0, c.idBits), true
}

var _ Detector = (*CRCCD)(nil)
