package detect

import (
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/crc"
	"repro/internal/signal"
	"repro/internal/tagmodel"
)

// CRCCD is the baseline collision detector of Figure 1: in every slot a
// responding tag transmits ID ⊕ crc(ID); the reader recomputes the CRC of
// the (possibly overlapped) ID portion and compares it against the
// (possibly overlapped) checksum portion. Equality declares a single
// slot. A collision is missed only when crc(∨ id_i) happens to equal
// ∨ crc(id_i), with probability ≈ 2^-width.
type CRCCD struct {
	params crc.Params
	idBits int
	tab    *crc.Table // table-driven engine for byte-multiple IDs
}

// NewCRCCD returns a CRC-CD detector using the given CRC parameter set
// over idBits-bit IDs. The paper's configuration is 64-bit IDs with a
// 32-bit CRC (l_id = 64, l_crc = 32). The 256-entry lookup table is
// precomputed here so the per-slot path never runs the bit-serial engine
// for byte-multiple IDs.
func NewCRCCD(params crc.Params, idBits int) *CRCCD {
	checkIDBits(idBits)
	if params.RefIn && idBits%8 != 0 {
		panic(fmt.Sprintf("detect: %s reflects input bytes; idBits %d is not a whole number of bytes", params.Name, idBits))
	}
	return &CRCCD{params: params, idBits: idBits, tab: crc.NewTable(params)}
}

// crcFastBytes bounds the stack buffer of the table-driven checksum path:
// 32 bytes cover a 256-bit contention frame, beyond every preset ID/CRC
// combination. Larger or non-byte-multiple payloads take the bit-serial
// engine, which computes the identical value (see crc.SelfTest and the
// differential test in internal/crc).
const crcFastBytes = 32

// checksumID computes crc(id) without allocating when the ID is a whole
// number of bytes and fits the stack buffer.
func (c *CRCCD) checksumID(id bitstr.BitString) uint64 {
	if id.Len()%8 == 0 && id.Len() <= 8*crcFastBytes {
		var buf [crcFastBytes]byte
		n := id.PutBytes(buf[:])
		return c.tab.Checksum(buf[:n])
	}
	return crc.ChecksumBits(c.params, id)
}

// Name implements Detector.
func (c *CRCCD) Name() string { return "CRC-CD/" + c.params.Name }

// CRCWidth returns l_crc in bits.
func (c *CRCCD) CRCWidth() int { return c.params.Width }

// ContentionPayload is the framed unit ID ⊕ crc(ID).
func (c *CRCCD) ContentionPayload(t *tagmodel.Tag) bitstr.BitString {
	if t.ID.Len() != c.idBits {
		panic(fmt.Sprintf("detect: tag ID of %d bits under a %d-bit CRC-CD", t.ID.Len(), c.idBits))
	}
	return bitstr.Concat(t.ID, bitstr.FromUint64(c.checksumID(t.ID), c.params.Width))
}

// ContentionPayloadInto implements ScratchPayloader: the framed unit is
// assembled in scratch, whose buffer is reused across slots.
func (c *CRCCD) ContentionPayloadInto(t *tagmodel.Tag, scratch bitstr.BitString) bitstr.BitString {
	if t.ID.Len() != c.idBits {
		panic(fmt.Sprintf("detect: tag ID of %d bits under a %d-bit CRC-CD", t.ID.Len(), c.idBits))
	}
	sum := bitstr.FromUint64(c.checksumID(t.ID), c.params.Width)
	return bitstr.ConcatInto(&scratch, t.ID, sum)
}

// Classify recomputes the CRC over the overlapped ID portion and compares
// it with the overlapped checksum portion. The common byte-multiple case
// packs the signal into a stack buffer and runs the table-driven engine;
// the received checksum is read straight out of the signal as a word, so
// no sub-strings are materialised.
func (c *CRCCD) Classify(rx signal.Reception) signal.SlotType {
	if !rx.Energy {
		return signal.Idle
	}
	total := c.idBits + c.params.Width
	if rx.Signal.Len() != total {
		return signal.Collided
	}
	got := rx.Signal.Uint64Range(c.idBits, total)
	var sum uint64
	if c.idBits%8 == 0 && total <= 8*crcFastBytes {
		var buf [crcFastBytes]byte
		rx.Signal.PutBytes(buf[:])
		sum = c.tab.Checksum(buf[:c.idBits/8])
	} else {
		sum = crc.ChecksumBits(c.params, rx.Signal.Slice(0, c.idBits))
	}
	if sum == got {
		return signal.Single
	}
	return signal.Collided
}

// ContentionBits is l_id + l_crc: the ID and checksum ride in every slot.
func (c *CRCCD) ContentionBits() int { return c.idBits + c.params.Width }

// NeedsIDPhase is false: the ID was already carried in contention.
func (c *CRCCD) NeedsIDPhase() bool { return false }

// IDPhaseBits is zero for CRC-CD.
func (c *CRCCD) IDPhaseBits() int { return 0 }

// ExtractID returns the ID portion of the contention signal.
func (c *CRCCD) ExtractID(contention, _ signal.Reception) (bitstr.BitString, bool) {
	if !contention.Energy || contention.Signal.Len() != c.idBits+c.params.Width {
		return bitstr.BitString{}, false
	}
	return contention.Signal.Slice(0, c.idBits), true
}

var _ Detector = (*CRCCD)(nil)
