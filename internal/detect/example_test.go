package detect_test

import (
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/detect"
	"repro/internal/signal"
)

// Algorithm 1 of the paper, run by hand: the reader splits the received
// signal into r ⊕ c and checks c = r̄.
func ExampleQCD_Classify() {
	q := detect.NewQCD(4, 64)

	// One tag drew r = 1010 and transmitted r ‖ r̄.
	single := signal.Overlap(bitstr.MustParse("10100101"))
	fmt.Println(q.Classify(single))

	// Two tags drew 1010 and 0110; the overlapped preamble fails the check.
	collided := signal.Overlap(
		bitstr.MustParse("10100101"),
		bitstr.MustParse("01101001"),
	)
	fmt.Println(q.Classify(collided))

	// Nobody transmitted.
	fmt.Println(q.Classify(signal.Reception{}))
	// Output:
	// single
	// collided
	// idle
}

// Definition 1 can be checked exhaustively for small widths: the
// complement passes, a lookalike like bit-reversal does not.
func ExampleVerify() {
	fmt.Println(detect.Verify(detect.Complement(), 6, 2) == nil)
	ce := detect.Verify(detect.Reverse(), 2, 2)
	fmt.Println(ce != nil)
	// Output:
	// true
	// true
}
