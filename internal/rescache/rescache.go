// Package rescache is a content-addressed in-memory result cache for
// experiment aggregates. The simulator is deterministic per configuration
// (see the sim package docs), so a result keyed by a canonical hash of
// its sim.Config never needs recomputing: identical submissions are
// served the stored bytes. The cache is LRU-bounded and keeps hit/miss
// counters for the service's /metrics endpoint.
package rescache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/sim"
)

// ConfigKey returns the content address of a configuration: the SHA-256
// hex digest of the canonical form's JSON encoding. Two configurations
// that describe the same experiment (differing only in defaulted or
// scheduling-only fields, e.g. Workers) share a key.
func ConfigKey(c sim.Config) (string, error) {
	b, err := json.Marshal(c.Canonical())
	if err != nil {
		return "", fmt.Errorf("rescache: encoding config: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits     uint64
	Misses   uint64
	Entries  int
	Capacity int
}

// HitRatio is Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a bounded LRU map from content key to stored value. It is
// safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	hits    uint64
	misses  uint64
	origins map[string]*Stats // per-origin hit/miss tallies (GetOrigin)
}

type entry struct {
	key string
	val any
}

// New returns an empty cache bounded to capacity entries (minimum 1).
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:     capacity,
		ll:      list.New(),
		items:   make(map[string]*list.Element, capacity),
		origins: make(map[string]*Stats),
	}
}

// Get returns the value stored under key and marks it most recently
// used. The second result reports whether the key was present; every
// call counts as a hit or a miss.
func (c *Cache) Get(key string) (any, bool) {
	return c.GetOrigin(key, "")
}

// GetOrigin is Get attributing the lookup to an origin ("job" for
// single submissions, "sweep" for sweep cells, ...), so /metrics can
// show who the cache is serving. Exactly one hit or one miss is counted
// per call — on both the totals and the origin's tally — which is what
// keeps cache-hit short-circuit paths honest: callers must consult the
// cache once (no Contains-then-Get pairs) and attribute the lookup at
// that single point. An empty origin counts only the totals.
func (c *Cache) GetOrigin(key, origin string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var os *Stats
	if origin != "" {
		os = c.origins[origin]
		if os == nil {
			os = &Stats{}
			c.origins[origin] = os
		}
	}
	el, ok := c.items[key]
	if !ok {
		c.misses++
		if os != nil {
			os.Misses++
		}
		return nil, false
	}
	c.hits++
	if os != nil {
		os.Hits++
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Contains reports whether key is cached without touching recency or the
// hit/miss counters.
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// Put stores val under key, evicting the least recently used entry if
// the cache is full. Storing an existing key refreshes its value and
// recency.
func (c *Cache) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).val = val
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry).key)
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, val: val})
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len(), Capacity: c.cap}
}

// OriginStats returns the hit/miss tallies attributed to one origin by
// GetOrigin (zero Stats for an origin never seen). Entries and Capacity
// describe the whole cache.
func (c *Cache) OriginStats(origin string) Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := Stats{Entries: c.ll.Len(), Capacity: c.cap}
	if os := c.origins[origin]; os != nil {
		out.Hits = os.Hits
		out.Misses = os.Misses
	}
	return out
}

// Register exposes the cache's effectiveness series on reg under prefix
// (for example "rfidd_cache" yields rfidd_cache_hits_total, ...),
// sampled from Stats at exposition time.
func (c *Cache) Register(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+"_hits_total", "Result-cache lookups served from memory.",
		func() uint64 { return c.Stats().Hits })
	reg.CounterFunc(prefix+"_misses_total", "Result-cache lookups that required computation.",
		func() uint64 { return c.Stats().Misses })
	reg.GaugeFunc(prefix+"_entries", "Aggregates currently cached.",
		func() float64 { return float64(c.Len()) })
	reg.GaugeFunc(prefix+"_capacity", "Result-cache capacity in entries.",
		func() float64 { return float64(c.cap) })
	reg.GaugeFunc(prefix+"_hit_ratio", "Hits over all cache lookups.",
		func() float64 { return c.Stats().HitRatio() })
}

// RegisterOrigin additionally exposes one origin's attributed lookups as
// labelled series ({prefix}_origin_hits_total{origin="sweep"}, ...), so
// sweep-cell dedup is distinguishable from single-job traffic on the
// same /metrics walk.
func (c *Cache) RegisterOrigin(reg *obs.Registry, prefix, origin string) {
	lbl := obs.L("origin", origin)
	reg.CounterFunc(prefix+"_origin_hits_total",
		"Result-cache lookups served from memory, by requesting origin.",
		func() uint64 { return c.OriginStats(origin).Hits }, lbl)
	reg.CounterFunc(prefix+"_origin_misses_total",
		"Result-cache lookups that required computation, by requesting origin.",
		func() uint64 { return c.OriginStats(origin).Misses }, lbl)
}
