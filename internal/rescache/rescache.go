// Package rescache is a content-addressed in-memory result cache for
// experiment aggregates. The simulator is deterministic per configuration
// (see the sim package docs), so a result keyed by a canonical hash of
// its sim.Config never needs recomputing: identical submissions are
// served the stored bytes. The cache is LRU-bounded and keeps hit/miss
// counters for the service's /metrics endpoint.
package rescache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/sim"
)

// ConfigKey returns the content address of a configuration: the SHA-256
// hex digest of the canonical form's JSON encoding. Two configurations
// that describe the same experiment (differing only in defaulted or
// scheduling-only fields, e.g. Workers) share a key.
func ConfigKey(c sim.Config) (string, error) {
	b, err := json.Marshal(c.Canonical())
	if err != nil {
		return "", fmt.Errorf("rescache: encoding config: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits     uint64
	Misses   uint64
	Entries  int
	Capacity int
}

// HitRatio is Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a bounded LRU map from content key to stored value. It is
// safe for concurrent use.
type Cache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
	hits   uint64
	misses uint64
}

type entry struct {
	key string
	val any
}

// New returns an empty cache bounded to capacity entries (minimum 1).
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// Get returns the value stored under key and marks it most recently
// used. The second result reports whether the key was present; every
// call counts as a hit or a miss.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Contains reports whether key is cached without touching recency or the
// hit/miss counters.
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// Put stores val under key, evicting the least recently used entry if
// the cache is full. Storing an existing key refreshes its value and
// recency.
func (c *Cache) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).val = val
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry).key)
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, val: val})
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len(), Capacity: c.cap}
}

// Register exposes the cache's effectiveness series on reg under prefix
// (for example "rfidd_cache" yields rfidd_cache_hits_total, ...),
// sampled from Stats at exposition time.
func (c *Cache) Register(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+"_hits_total", "Result-cache lookups served from memory.",
		func() uint64 { return c.Stats().Hits })
	reg.CounterFunc(prefix+"_misses_total", "Result-cache lookups that required computation.",
		func() uint64 { return c.Stats().Misses })
	reg.GaugeFunc(prefix+"_entries", "Aggregates currently cached.",
		func() float64 { return float64(c.Len()) })
	reg.GaugeFunc(prefix+"_capacity", "Result-cache capacity in entries.",
		func() float64 { return float64(c.cap) })
	reg.GaugeFunc(prefix+"_hit_ratio", "Hits over all cache lookups.",
		func() float64 { return c.Stats().HitRatio() })
}
