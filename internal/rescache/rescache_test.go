package rescache

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

func TestConfigKeyCanonicalises(t *testing.T) {
	sparse := sim.Config{Tags: 100, Algorithm: sim.AlgFSA, FrameSize: 60, Detector: sim.DetQCD}
	full := sparse
	full.IDBits = 64
	full.Rounds = 1
	full.Strength = 8
	full.Workers = 7 // scheduling only — must not change the key

	k1, err := ConfigKey(sparse)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := ConfigKey(full)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("equivalent configs hash differently: %s vs %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Errorf("key %q is not a sha256 hex digest", k1)
	}

	other := sparse
	other.Tags = 101
	k3, _ := ConfigKey(other)
	if k3 == k1 {
		t.Error("different configs share a key")
	}
}

// TestConfigKeySeparatesModes is the stat-mode cache-isolation
// regression test: the same grid point in exact and stat mode must
// never share a cache entry, in either lookup direction, because the
// two modes' aggregates follow different draw sequences. It also pins
// the compatibility contract: explicit "exact" hashes identically to
// the default empty Mode, so pre-Mode cache keys stay valid.
func TestConfigKeySeparatesModes(t *testing.T) {
	base := sim.Config{Tags: 100, Algorithm: sim.AlgFSA, FrameSize: 60, Detector: sim.DetQCD}

	exact := base
	exact.Mode = sim.ModeExact
	stat := base
	stat.Mode = sim.ModeStat

	kDefault, err := ConfigKey(base)
	if err != nil {
		t.Fatal(err)
	}
	kExact, err := ConfigKey(exact)
	if err != nil {
		t.Fatal(err)
	}
	kStat, err := ConfigKey(stat)
	if err != nil {
		t.Fatal(err)
	}
	if kDefault != kExact {
		t.Errorf("explicit exact mode changed the key: %s vs %s (pre-Mode cache entries invalidated)", kExact, kDefault)
	}
	if kStat == kExact {
		t.Fatal("exact and stat configs share a cache key")
	}

	// Populate one mode, look up the other — both directions must miss.
	c := New(8)
	c.Put(kExact, "exact-aggregate")
	if v, ok := c.GetOrigin(kStat, "job"); ok {
		t.Errorf("stat lookup served the exact aggregate %v", v)
	}
	c.Put(kStat, "stat-aggregate")
	if v, _ := c.GetOrigin(kExact, "job"); v != "exact-aggregate" {
		t.Errorf("exact lookup returned %v", v)
	}
	if v, _ := c.GetOrigin(kStat, "job"); v != "stat-aggregate" {
		t.Errorf("stat lookup returned %v", v)
	}
}

func TestGetPutAndCounters(t *testing.T) {
	c := New(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("a", 1)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	c.Put("a", 2) // refresh
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatalf("refreshed value = %v, want 2", v)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 || st.Capacity != 4 {
		t.Errorf("stats = %+v", st)
	}
	if got := st.HitRatio(); got < 0.66 || got > 0.67 {
		t.Errorf("hit ratio = %v, want 2/3", got)
	}
	if (Stats{}).HitRatio() != 0 {
		t.Error("empty stats hit ratio != 0")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(3)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	c.Get("k0")    // k0 now most recent; k1 is the LRU
	c.Put("k3", 3) // evicts k1
	if c.Contains("k1") {
		t.Error("k1 survived eviction")
	}
	for _, want := range []string{"k0", "k2", "k3"} {
		if !c.Contains(want) {
			t.Errorf("%s missing after eviction", want)
		}
	}
	if c.Len() != 3 {
		t.Errorf("len = %d, want 3", c.Len())
	}
}

func TestZeroCapacityClamped(t *testing.T) {
	c := New(0)
	c.Put("a", 1)
	if !c.Contains("a") {
		t.Error("capacity-clamped cache dropped its only entry")
	}
	c.Put("b", 2)
	if c.Contains("a") || !c.Contains("b") {
		t.Error("capacity-1 cache did not evict the older entry")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%24)
				c.Put(key, g)
				c.Get(key)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Errorf("len = %d exceeds capacity", c.Len())
	}
}

// TestRegisterExposition checks the cache publishes its effectiveness
// series under the given prefix, sampled live at exposition time.
func TestRegisterExposition(t *testing.T) {
	c := New(8)
	reg := obs.NewRegistry()
	c.Register(reg, "cache")

	c.Get("missing")
	c.Put("k", 1)
	c.Get("k")
	c.Get("k")

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	text := sb.String()
	for _, want := range []string{
		"cache_hits_total 2",
		"cache_misses_total 1",
		"cache_entries 1",
		"cache_capacity 8",
		"cache_hit_ratio 0.6666666666666666",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestOriginCounters(t *testing.T) {
	c := New(4)
	c.Put("k", 1)

	// Each GetOrigin call counts exactly once, on both the totals and
	// the origin's tally — a cache-hit short-circuit that consults the
	// cache once can never double-count.
	if _, hit := c.GetOrigin("k", "sweep"); !hit {
		t.Fatal("expected hit")
	}
	if _, hit := c.GetOrigin("absent", "sweep"); hit {
		t.Fatal("unexpected hit")
	}
	if _, hit := c.GetOrigin("k", "job"); !hit {
		t.Fatal("expected hit")
	}
	if _, hit := c.Get("k"); !hit { // totals only
		t.Fatal("expected hit")
	}

	sw := c.OriginStats("sweep")
	if sw.Hits != 1 || sw.Misses != 1 {
		t.Errorf("sweep origin = %d hits / %d misses, want 1/1", sw.Hits, sw.Misses)
	}
	jb := c.OriginStats("job")
	if jb.Hits != 1 || jb.Misses != 0 {
		t.Errorf("job origin = %d hits / %d misses, want 1/0", jb.Hits, jb.Misses)
	}
	if none := c.OriginStats("never"); none.Hits != 0 || none.Misses != 0 {
		t.Errorf("unseen origin = %+v, want zero tallies", none)
	}
	tot := c.Stats()
	if tot.Hits != 3 || tot.Misses != 1 {
		t.Errorf("totals = %d hits / %d misses, want 3/1", tot.Hits, tot.Misses)
	}
}

func TestRegisterOriginExposition(t *testing.T) {
	c := New(4)
	reg := obs.NewRegistry()
	c.Register(reg, "test_cache")
	c.RegisterOrigin(reg, "test_cache", "job")
	c.RegisterOrigin(reg, "test_cache", "sweep")

	c.Put("k", 1)
	c.GetOrigin("k", "sweep")
	c.GetOrigin("miss", "job")

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	text := sb.String()
	for _, want := range []string{
		`test_cache_origin_hits_total{origin="sweep"} 1`,
		`test_cache_origin_misses_total{origin="sweep"} 0`,
		`test_cache_origin_hits_total{origin="job"} 0`,
		`test_cache_origin_misses_total{origin="job"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if errs := obs.LintPrometheus(text); len(errs) > 0 {
		t.Errorf("exposition lint: %v", errs)
	}
}
