package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("seeds 1 and 2 agreed on %d of 100 draws", same)
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	s := New(0)
	if s.Uint64() == 0 && s.Uint64() == 0 && s.Uint64() == 0 {
		t.Error("zero seed produced a degenerate stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("sibling streams agreed on %d of 1000 draws", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(9).Split()
	b := New(9).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 3, 7, 30, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square against uniform over 10 buckets; threshold is the 0.999
	// quantile for 9 degrees of freedom, so a false failure is rare and
	// the test is deterministic given the fixed seed.
	s := New(12345)
	const buckets, draws = 10, 100000
	var count [buckets]int
	for i := 0; i < draws; i++ {
		count[s.Intn(buckets)]++
	}
	expected := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range count {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.88 {
		t.Errorf("chi-square = %.2f exceeds 0.999 quantile (27.88): %v", chi2, count)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBits(t *testing.T) {
	s := New(11)
	for _, n := range []int{0, 1, 4, 8, 16, 63, 64} {
		for i := 0; i < 100; i++ {
			v := s.Bits(n)
			if n < 64 && v >= 1<<uint(n) {
				t.Fatalf("Bits(%d) = %#x out of range", n, v)
			}
		}
	}
	if New(1).Bits(0) != 0 {
		t.Error("Bits(0) != 0")
	}
}

func TestBitsPanicsOutOfRange(t *testing.T) {
	for _, n := range []int{-1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bits(%d) did not panic", n)
				}
			}()
			New(1).Bits(n)
		}()
	}
}

func TestCoinBalance(t *testing.T) {
	s := New(77)
	ones := 0
	const n = 100000
	for i := 0; i < n; i++ {
		c := s.Coin()
		if c != 0 && c != 1 {
			t.Fatalf("Coin = %d", c)
		}
		ones += c
	}
	if ratio := float64(ones) / n; math.Abs(ratio-0.5) > 0.01 {
		t.Errorf("Coin ones ratio = %v", ratio)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		n := 1 + int(seed%64)
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64nBounds(t *testing.T) {
	f := func(seed uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := New(seed).Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFillUint64MatchesStream(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000} {
		ref := New(99)
		want := make([]uint64, n)
		for i := range want {
			want[i] = ref.Uint64()
		}
		s := New(99)
		got := make([]uint64, n)
		s.FillUint64(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("FillUint64 len %d: draw %d = %#x, want %#x", n, i, got[i], want[i])
			}
		}
		// The state must have advanced identically: the next draw agrees.
		if s.Uint64() != ref.Uint64() {
			t.Fatalf("FillUint64 len %d left the state out of sync", n)
		}
	}
}

func TestFillIntnMatchesIntn(t *testing.T) {
	for _, n := range []int{1, 2, 3, 30, 3000, 1 << 15} {
		ref := New(7)
		want := make([]int32, 500)
		for i := range want {
			want[i] = int32(ref.Intn(n))
		}
		s := New(7)
		got := make([]int32, 500)
		s.FillIntn(got, n)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("FillIntn(%d): draw %d = %d, want %d", n, i, got[i], want[i])
			}
		}
		if s.Uint64() != ref.Uint64() {
			t.Fatalf("FillIntn(%d) consumed a different number of raw draws", n)
		}
	}
}

func TestFillIntnPanicsNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FillIntn(%d) did not panic", n)
				}
			}()
			New(1).FillIntn(make([]int32, 4), n)
		}()
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	s := New(3)
	if got := s.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0, .5) = %d", got)
	}
	if got := s.Binomial(10, 0); got != 0 {
		t.Errorf("Binomial(10, 0) = %d", got)
	}
	if got := s.Binomial(10, 1); got != 10 {
		t.Errorf("Binomial(10, 1) = %d", got)
	}
	for _, bad := range []struct {
		n int
		p float64
	}{{-1, 0.5}, {10, -0.1}, {10, 1.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Binomial(%d, %v) did not panic", bad.n, bad.p)
				}
			}()
			s.Binomial(bad.n, bad.p)
		}()
	}
}

// TestBinomialMatchesPMF chi-squares the inversion sampler against the
// exact Binomial(n, p) pmf on small n where every mass is computable.
func TestBinomialMatchesPMF(t *testing.T) {
	const n, draws = 8, 40000
	p := 0.3
	s := New(11)
	var counts [n + 1]int
	for i := 0; i < draws; i++ {
		k := s.Binomial(n, p)
		if k < 0 || k > n {
			t.Fatalf("draw %d out of [0,%d]", k, n)
		}
		counts[k]++
	}
	// Exact pmf by the same recurrence (independent of the sampler's u).
	pmf := make([]float64, n+1)
	pmf[0] = math.Pow(1-p, n)
	for k := 1; k <= n; k++ {
		pmf[k] = pmf[k-1] * (p / (1 - p)) * float64(n-k+1) / float64(k)
	}
	chi2 := 0.0
	for k := 0; k <= n; k++ {
		exp := pmf[k] * draws
		if exp < 1 {
			continue // deep tail; one stray draw would dominate chi2
		}
		d := float64(counts[k]) - exp
		chi2 += d * d / exp
	}
	// ~8 effective dof; chi2 > 35 is p < 1e-4 territory.
	if chi2 > 35 {
		t.Errorf("chi-square %.1f too large; counts %v", chi2, counts)
	}
}

// TestBinomialLargeMeanMoments checks the normal-approximation branch
// (mean above binomialInversionCap) keeps the right first two moments.
func TestBinomialLargeMeanMoments(t *testing.T) {
	const n, draws = 5000, 20000
	p := 0.25 // mean 1250, far above the inversion cap
	s := New(13)
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		k := s.Binomial(n, p)
		if k < 0 || k > n {
			t.Fatalf("draw %d out of [0,%d]", k, n)
		}
		f := float64(k)
		sum += f
		sumSq += f * f
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	wantMean := float64(n) * p
	wantVar := wantMean * (1 - p)
	// 4σ tolerance on the sample mean; 10% on the sample variance.
	if math.Abs(mean-wantMean) > 4*math.Sqrt(wantVar/draws) {
		t.Errorf("mean %.2f, want %.2f", mean, wantMean)
	}
	if math.Abs(variance-wantVar)/wantVar > 0.10 {
		t.Errorf("variance %.1f, want %.1f", variance, wantVar)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Intn(3000)
	}
}

// BenchmarkFillUint64 measures the bulk kernel per element, against
// BenchmarkUint64's per-call cost, over a frame-sized batch.
func BenchmarkFillUint64(b *testing.B) {
	s := New(1)
	buf := make([]uint64, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i += len(buf) {
		s.FillUint64(buf)
	}
}

func BenchmarkFillIntn(b *testing.B) {
	s := New(1)
	buf := make([]int32, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i += len(buf) {
		s.FillIntn(buf, 3000)
	}
}
