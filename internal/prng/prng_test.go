package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("seeds 1 and 2 agreed on %d of 100 draws", same)
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	s := New(0)
	if s.Uint64() == 0 && s.Uint64() == 0 && s.Uint64() == 0 {
		t.Error("zero seed produced a degenerate stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("sibling streams agreed on %d of 1000 draws", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(9).Split()
	b := New(9).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 3, 7, 30, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square against uniform over 10 buckets; threshold is the 0.999
	// quantile for 9 degrees of freedom, so a false failure is rare and
	// the test is deterministic given the fixed seed.
	s := New(12345)
	const buckets, draws = 10, 100000
	var count [buckets]int
	for i := 0; i < draws; i++ {
		count[s.Intn(buckets)]++
	}
	expected := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range count {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.88 {
		t.Errorf("chi-square = %.2f exceeds 0.999 quantile (27.88): %v", chi2, count)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBits(t *testing.T) {
	s := New(11)
	for _, n := range []int{0, 1, 4, 8, 16, 63, 64} {
		for i := 0; i < 100; i++ {
			v := s.Bits(n)
			if n < 64 && v >= 1<<uint(n) {
				t.Fatalf("Bits(%d) = %#x out of range", n, v)
			}
		}
	}
	if New(1).Bits(0) != 0 {
		t.Error("Bits(0) != 0")
	}
}

func TestBitsPanicsOutOfRange(t *testing.T) {
	for _, n := range []int{-1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bits(%d) did not panic", n)
				}
			}()
			New(1).Bits(n)
		}()
	}
}

func TestCoinBalance(t *testing.T) {
	s := New(77)
	ones := 0
	const n = 100000
	for i := 0; i < n; i++ {
		c := s.Coin()
		if c != 0 && c != 1 {
			t.Fatalf("Coin = %d", c)
		}
		ones += c
	}
	if ratio := float64(ones) / n; math.Abs(ratio-0.5) > 0.01 {
		t.Errorf("Coin ones ratio = %v", ratio)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		n := 1 + int(seed%64)
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64nBounds(t *testing.T) {
	f := func(seed uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := New(seed).Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Intn(3000)
	}
}
