// Package prng provides a small, fast, deterministic pseudo-random number
// generator with splittable streams.
//
// The simulator needs (a) reproducible runs from a single seed, (b) an
// independent stream per tag and per Monte-Carlo round so that results do
// not depend on scheduling order when rounds execute in parallel, and
// (c) cheap generation, because a 50000-tag case draws millions of slot
// choices. math/rand's global state satisfies none of these, so we carry
// our own xoshiro256** generator seeded through SplitMix64, the
// combination recommended by the xoshiro authors.
package prng

import (
	"math"
	"math/bits"
)

// Source is a xoshiro256** generator. It is NOT safe for concurrent use;
// give each goroutine its own Source via Split.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded from seed via SplitMix64 so that even small
// or similar seeds yield well-mixed initial states.
func New(seed uint64) *Source {
	var src Source
	src.seed(seed)
	return &src
}

// Seed re-initialises s from seed exactly as New does, so a pooled
// Source can be reused across rounds without a fresh allocation.
func (s *Source) Seed(seed uint64) { s.seed(seed) }

// seed initialises s from seed via SplitMix64.
func (s *Source) seed(seed uint64) {
	sm := seed
	s.s0 = splitmix64(&sm)
	s.s1 = splitmix64(&sm)
	s.s2 = splitmix64(&sm)
	s.s3 = splitmix64(&sm)
	// The all-zero state is invalid for xoshiro; SplitMix64 cannot emit
	// four zeros in a row, but keep the guard for safety.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 1
	}
}

func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = bits.RotateLeft64(s.s3, 45)
	return result
}

// FillUint64 fills dst with the next len(dst) outputs of the stream —
// exactly the values len(dst) successive Uint64 calls would return. The
// generator state lives in registers for the whole pass, so filling a
// frame's worth of draws costs a fraction of the equivalent call loop;
// this is the base kernel of the simulator's vectorised stat mode.
func (s *Source) FillUint64(dst []uint64) {
	s0, s1, s2, s3 := s.s0, s.s1, s.s2, s.s3
	for i := range dst {
		dst[i] = bits.RotateLeft64(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
	}
	s.s0, s.s1, s.s2, s.s3 = s0, s1, s2, s3
}

// FillIntn fills dst with uniform draws from [0, n) — the values len(dst)
// successive Intn(n) calls would return, consuming the same underlying
// Uint64 stream (including Lemire rejection resamples), so bulk and
// per-call consumers stay interchangeable. dst is int32 because every
// bounded draw in the simulator is a slot or group index (frames top out
// at 2^15 slots); it panics if n <= 0 or n overflows int32.
func (s *Source) FillIntn(dst []int32, n int) {
	if n <= 0 {
		panic("prng: FillIntn with non-positive n")
	}
	if n > 1<<31-1 {
		panic("prng: FillIntn bound overflows int32")
	}
	un := uint64(n)
	// thresh = 2^64 mod n < n, so testing lo < thresh directly accepts and
	// rejects exactly the draws Uint64n's lazy form does.
	thresh := -un % un
	s0, s1, s2, s3 := s.s0, s.s1, s.s2, s.s3
	next := func() uint64 {
		r := bits.RotateLeft64(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
		return r
	}
	for i := range dst {
		hi, lo := bits.Mul64(next(), un)
		for lo < thresh {
			hi, lo = bits.Mul64(next(), un)
		}
		dst[i] = int32(hi)
	}
	s.s0, s.s1, s.s2, s.s3 = s0, s1, s2, s3
}

// Split derives a new statistically independent Source from s, advancing s.
// Each call yields a distinct stream; use one per tag / per round.
func (s *Source) Split() *Source {
	// Seeding a fresh SplitMix64 chain from the parent's output gives
	// streams that do not overlap in practice for simulation workloads.
	return New(s.Uint64())
}

// SplitInto seeds dst with a new independent stream, advancing s exactly
// as Split does. It exists so callers creating many streams (one per tag)
// can batch-allocate the Sources instead of paying one heap allocation
// per Split.
func (s *Source) SplitInto(dst *Source) {
	dst.seed(s.Uint64())
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's nearly
// division-free bounded generation with rejection to remove modulo bias.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prng: Uint64n with zero n")
	}
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// binomialInversionCap is the largest mean n·p the CDF-inversion sampler
// handles; above it (1-p)^n underflows long before float64's range ends,
// so Binomial switches to a rounded normal approximation, whose error at
// that size is far below anything a Monte-Carlo round count can resolve.
const binomialInversionCap = 64

// Binomial returns a draw from Binomial(n, p): the number of successes
// in n independent trials of probability p. The simulator's stat mode
// uses it to realise slot occupancies without per-tag draws — when R
// tags each pick uniformly among the F slots of a frame and slots are
// revealed in order, the count in the next slot given the past is
// Binomial(remaining, 1/(slots left)), the sequential decomposition of
// the multinomial.
//
// Small means draw by CDF inversion (exact up to float64 rounding, O(np)
// expected iterations); means above binomialInversionCap use a clamped
// rounded-normal approximation. It panics if n < 0 or p is outside [0,1].
func (s *Source) Binomial(n int, p float64) int {
	if n < 0 {
		panic("prng: Binomial with negative n")
	}
	if p < 0 || p > 1 {
		panic("prng: Binomial probability out of [0,1]")
	}
	if n == 0 || p == 0 {
		return 0
	}
	if p == 1 {
		return n
	}
	mean := float64(n) * p
	if mean > binomialInversionCap {
		// Normal approximation N(np, np(1-p)), rounded and clamped. At
		// np > 64 the skew correction is below 1e-2 counts; stat mode
		// only reads such large counts as "collided with multiplicity m",
		// where the m-dependence (a 2^-l(m-1) miss probability) is long
		// past underflow anyway.
		z := s.normal()
		k := int(math.Round(mean + z*math.Sqrt(mean*(1-p))))
		if k < 0 {
			k = 0
		}
		if k > n {
			k = n
		}
		return k
	}
	// CDF inversion via the pmf recurrence
	// P(k+1) = P(k) · (n-k)/(k+1) · p/(1-p), seeded at P(0) = (1-p)^n.
	u := s.Float64()
	q := 1 - p
	r := p / q
	pk := math.Exp(float64(n) * math.Log(q))
	cum := pk
	k := 0
	for cum <= u && k < n {
		k++
		pk *= r * float64(n-k+1) / float64(k)
		cum += pk
		if pk == 0 {
			break // deep-tail underflow; cum can no longer grow
		}
	}
	return k
}

// Exp returns a draw from the exponential distribution with the given
// mean (-mean·ln U, zero-rejected so the log is always finite). Poisson
// inter-arrival gaps and exponential dwell windows — the mobile-tag flow
// of internal/mobility and internal/scenario — are built from it.
func (s *Source) Exp(mean float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// normal returns a standard normal draw (Box–Muller, one half used).
func (s *Source) normal() float64 {
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Bits returns n random bits packed into the low bits of a uint64.
// It panics unless 0 <= n <= 64.
func (s *Source) Bits(n int) uint64 {
	if n < 0 || n > 64 {
		panic("prng: Bits length out of range")
	}
	if n == 0 {
		return 0
	}
	return s.Uint64() >> (64 - uint(n))
}

// Coin returns a uniform random bit as 0 or 1, the tag's binary-splitting
// choice in BT protocols.
func (s *Source) Coin() int {
	return int(s.Uint64() >> 63)
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher–Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
