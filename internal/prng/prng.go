// Package prng provides a small, fast, deterministic pseudo-random number
// generator with splittable streams.
//
// The simulator needs (a) reproducible runs from a single seed, (b) an
// independent stream per tag and per Monte-Carlo round so that results do
// not depend on scheduling order when rounds execute in parallel, and
// (c) cheap generation, because a 50000-tag case draws millions of slot
// choices. math/rand's global state satisfies none of these, so we carry
// our own xoshiro256** generator seeded through SplitMix64, the
// combination recommended by the xoshiro authors.
package prng

import "math/bits"

// Source is a xoshiro256** generator. It is NOT safe for concurrent use;
// give each goroutine its own Source via Split.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded from seed via SplitMix64 so that even small
// or similar seeds yield well-mixed initial states.
func New(seed uint64) *Source {
	var src Source
	src.seed(seed)
	return &src
}

// seed initialises s from seed via SplitMix64.
func (s *Source) seed(seed uint64) {
	sm := seed
	s.s0 = splitmix64(&sm)
	s.s1 = splitmix64(&sm)
	s.s2 = splitmix64(&sm)
	s.s3 = splitmix64(&sm)
	// The all-zero state is invalid for xoshiro; SplitMix64 cannot emit
	// four zeros in a row, but keep the guard for safety.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 1
	}
}

func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = bits.RotateLeft64(s.s3, 45)
	return result
}

// Split derives a new statistically independent Source from s, advancing s.
// Each call yields a distinct stream; use one per tag / per round.
func (s *Source) Split() *Source {
	// Seeding a fresh SplitMix64 chain from the parent's output gives
	// streams that do not overlap in practice for simulation workloads.
	return New(s.Uint64())
}

// SplitInto seeds dst with a new independent stream, advancing s exactly
// as Split does. It exists so callers creating many streams (one per tag)
// can batch-allocate the Sources instead of paying one heap allocation
// per Split.
func (s *Source) SplitInto(dst *Source) {
	dst.seed(s.Uint64())
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's nearly
// division-free bounded generation with rejection to remove modulo bias.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prng: Uint64n with zero n")
	}
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bits returns n random bits packed into the low bits of a uint64.
// It panics unless 0 <= n <= 64.
func (s *Source) Bits(n int) uint64 {
	if n < 0 || n > 64 {
		panic("prng: Bits length out of range")
	}
	if n == 0 {
		return 0
	}
	return s.Uint64() >> (64 - uint(n))
}

// Coin returns a uniform random bit as 0 or 1, the tag's binary-splitting
// choice in BT protocols.
func (s *Source) Coin() int {
	return int(s.Uint64() >> 63)
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher–Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
