package tagmodel

import (
	"testing"

	"repro/internal/bitstr"
	"repro/internal/prng"
)

func TestNewPopulationBasics(t *testing.T) {
	rng := prng.New(1)
	pop := NewPopulation(100, 64, rng)
	if len(pop) != 100 {
		t.Fatalf("population size = %d", len(pop))
	}
	if !pop.IDsUnique() {
		t.Fatal("population has duplicate IDs")
	}
	for i, tag := range pop {
		if tag.Index != i {
			t.Errorf("tag %d has index %d", i, tag.Index)
		}
		if tag.ID.Len() != 64 {
			t.Errorf("tag %d ID length = %d", i, tag.ID.Len())
		}
		if tag.Identified {
			t.Errorf("tag %d starts identified", i)
		}
	}
}

func TestPopulationDeterministic(t *testing.T) {
	a := NewPopulation(50, 64, prng.New(7))
	b := NewPopulation(50, 64, prng.New(7))
	for i := range a {
		if !a[i].ID.Equal(b[i].ID) {
			t.Fatalf("tag %d differs across identically seeded populations", i)
		}
	}
}

func TestPopulationIndependentTagStreams(t *testing.T) {
	pop := NewPopulation(2, 64, prng.New(3))
	// The two tags' streams must differ.
	same := 0
	for i := 0; i < 100; i++ {
		if pop[0].Rng.Uint64() == pop[1].Rng.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("tag streams agreed on %d draws", same)
	}
}

// TestPopulationDrawSequenceUnchanged pins the word-dedup fast path
// (idBits <= 64) to the draw sequence of the original string-keyed
// implementation: one Bits(idBits) per candidate, one Split per accepted
// tag. Any change to the PRNG consumption pattern would silently shift
// every downstream aggregate.
func TestPopulationDrawSequenceUnchanged(t *testing.T) {
	for _, idBits := range []int{3, 8, 33, 64} {
		rng := prng.New(99)
		// Reference: the pre-optimisation algorithm, drawn by hand.
		ref := prng.New(99)
		n := 8
		var want []uint64
		seen := map[string]bool{}
		for len(want) < n {
			v := ref.Bits(idBits)
			k := bitstr.FromUint64(v, idBits).Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			want = append(want, v)
			ref.Split()
		}

		pop := NewPopulation(n, idBits, rng)
		for i, tag := range pop {
			if got := tag.ID.Uint64(); got != want[i] {
				t.Fatalf("idBits=%d tag %d ID = %#x, want %#x", idBits, i, got, want[i])
			}
		}
	}
}

// TestPopulationDedupBothPaths forces a duplicate draw on both the
// word-keyed (<=64) and string-keyed (>64) paths by exhausting a tiny ID
// space, and checks the paths behave identically at their boundary.
func TestPopulationDedupBothPaths(t *testing.T) {
	for _, idBits := range []int{2, 64, 65, 96} {
		n := 4
		pop := NewPopulation(n, idBits, prng.New(13))
		if len(pop) != n {
			t.Fatalf("idBits=%d population size = %d", idBits, len(pop))
		}
		if !pop.IDsUnique() {
			t.Fatalf("idBits=%d population has duplicate IDs", idBits)
		}
		for _, tag := range pop {
			if tag.ID.Len() != idBits {
				t.Fatalf("idBits=%d tag ID length = %d", idBits, tag.ID.Len())
			}
		}
	}
}

func TestLongIDs(t *testing.T) {
	pop := NewPopulation(10, 96, prng.New(5))
	for _, tag := range pop {
		if tag.ID.Len() != 96 {
			t.Fatalf("96-bit ID has length %d", tag.ID.Len())
		}
	}
	if !pop.IDsUnique() {
		t.Fatal("96-bit IDs not unique")
	}
}

func TestTinyIDSpace(t *testing.T) {
	// 2^3 = 8 IDs for 8 tags must still terminate via uniqueness retry.
	pop := NewPopulation(8, 3, prng.New(11))
	if !pop.IDsUnique() {
		t.Fatal("3-bit IDs not unique")
	}
}

func TestPopulationTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized population not rejected")
		}
	}()
	NewPopulation(9, 3, prng.New(1))
}

func TestResetAndUnidentified(t *testing.T) {
	pop := NewPopulation(4, 64, prng.New(2))
	pop[1].Identified = true
	pop[1].IdentifiedAtMicros = 42
	pop[1].BitsSent = 10
	pop[3].Counter = 5

	un := pop.Unidentified()
	if len(un) != 3 {
		t.Fatalf("unidentified = %d, want 3", len(un))
	}
	if pop.AllIdentified() {
		t.Fatal("AllIdentified true with unidentified tags")
	}

	pop.Reset()
	for i, tag := range pop {
		if tag.Identified || tag.IdentifiedAtMicros != 0 || tag.BitsSent != 0 || tag.Counter != 0 {
			t.Errorf("tag %d not fully reset: %+v", i, tag)
		}
	}

	for _, tag := range pop {
		tag.Identified = true
	}
	if !pop.AllIdentified() {
		t.Fatal("AllIdentified false with all identified")
	}
}

func TestInvalidIDBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("idBits=0 not rejected")
		}
	}()
	NewPopulation(1, 0, prng.New(1))
}
