// Package tagmodel models passive RFID tags: a unique ID, the per-protocol
// contention state (FSA slot choice, BT counter, QT prefix matching), a
// private random stream, and airtime accounting.
package tagmodel

import (
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/prng"
)

// Tag is one RFID tag in the reader's field.
type Tag struct {
	// ID is the tag's EPC identifier (the paper uses 64-bit IDs with a
	// 32-bit CRC, i.e. a 96-bit transmitted unit).
	ID bitstr.BitString

	// Rng is the tag's private random stream, used for slot selection,
	// BT coin flips, and QCD preamble integers. Each tag gets an
	// independent split stream so simulations are order-independent.
	Rng *prng.Source

	// Index is the tag's position in its population (stable identity for
	// metrics).
	Index int

	// Slot is the slot chosen in the current FSA frame.
	Slot int

	// Counter is the BT/ABS splitting counter.
	Counter int

	// Identified records whether the reader has acknowledged this tag.
	Identified bool

	// IdentifiedAtMicros is the simulation time (μs) at which the tag was
	// identified; meaningful only when Identified is true.
	IdentifiedAtMicros float64

	// BitsSent counts the tag's total transmitted bits (energy budget).
	BitsSent int64
}

// New returns a tag with the given ID and private random stream.
func New(index int, id bitstr.BitString, rng *prng.Source) *Tag {
	return &Tag{Index: index, ID: id, Rng: rng}
}

// Reset clears per-session state so the same population can be identified
// again (ABS/AQS rounds, repeated experiments on one deployment).
func (t *Tag) Reset() {
	t.Slot = 0
	t.Counter = 0
	t.Identified = false
	t.IdentifiedAtMicros = 0
	t.BitsSent = 0
}

// Population is a set of tags with unique IDs.
type Population []*Tag

// NewPopulation draws n tags with unique uniformly random idBits-bit IDs.
// Each tag receives an independent split of rng. It panics if idBits is
// too small to accommodate n distinct IDs.
func NewPopulation(n, idBits int, rng *prng.Source) Population {
	return new(PopScratch).NewPopulation(n, idBits, rng)
}

// PopScratch pools the storage a population draw needs — the tag and
// random-stream arrays, the population slice, and the ID dedup sets —
// so a Monte-Carlo worker building one population per round allocates
// that working set once instead of once per round. The zero value is
// ready; not safe for concurrent use.
type PopScratch struct {
	pop      Population
	tags     []Tag
	srcs     []prng.Source
	seenWord map[uint64]bool
	seenKey  map[string]bool
}

// NewPopulation is the package-level NewPopulation drawing from (and
// recycling) the scratch's storage. The returned population, its tags
// and their random streams alias the scratch: they are valid until the
// next call, which reuses them for the next round's tags. The draw
// sequence is identical to the package-level function's, so pooled and
// fresh populations are bit-for-bit the same.
func (ps *PopScratch) NewPopulation(n, idBits int, rng *prng.Source) Population {
	if idBits < 1 {
		panic("tagmodel: idBits must be positive")
	}
	if idBits < 63 && n > 0 && uint64(n) > (uint64(1)<<uint(idBits)) {
		panic(fmt.Sprintf("tagmodel: %d tags cannot have unique %d-bit IDs", n, idBits))
	}
	// Tags and their random streams are batch-allocated: two slice
	// allocations for the whole population instead of 2n individual ones
	// (and zero in steady state). Population setup otherwise dominates
	// the allocation profile of small-round sweeps.
	if cap(ps.pop) < n {
		ps.pop = make(Population, 0, n)
	}
	if cap(ps.tags) < n {
		ps.tags = make([]Tag, n)
	}
	if cap(ps.srcs) < n {
		ps.srcs = make([]prng.Source, n)
	}
	pop := ps.pop[:0]
	tags := ps.tags[:n]
	srcs := ps.srcs[:n]
	accept := func(id bitstr.BitString) {
		i := len(pop)
		rng.SplitInto(&srcs[i])
		tags[i] = Tag{Index: i, ID: id, Rng: &srcs[i]}
		pop = append(pop, &tags[i])
	}
	defer func() { ps.pop = pop }()
	if idBits <= 64 {
		// Word-sized IDs dedup on the raw integer — no Key() string per
		// draw. The draw sequence is identical to randomID's single-chunk
		// path, so populations are bit-for-bit the same as before.
		if ps.seenWord == nil {
			ps.seenWord = make(map[uint64]bool, n)
		} else {
			clear(ps.seenWord)
		}
		seen := ps.seenWord
		for len(pop) < n {
			v := rng.Bits(idBits)
			if seen[v] {
				continue
			}
			seen[v] = true
			accept(bitstr.FromUint64(v, idBits))
		}
		return pop
	}
	if ps.seenKey == nil {
		ps.seenKey = make(map[string]bool, n)
	} else {
		clear(ps.seenKey)
	}
	seen := ps.seenKey
	for len(pop) < n {
		id := randomID(idBits, rng)
		k := id.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		accept(id)
	}
	return pop
}

func randomID(idBits int, rng *prng.Source) bitstr.BitString {
	id := bitstr.New(0)
	for remaining := idBits; remaining > 0; {
		chunk := remaining
		if chunk > 64 {
			chunk = 64
		}
		id = bitstr.Concat(id, bitstr.FromUint64(rng.Bits(chunk), chunk))
		remaining -= chunk
	}
	return id
}

// Reset clears session state on every tag in the population.
func (p Population) Reset() {
	for _, t := range p {
		t.Reset()
	}
}

// Unidentified returns the tags not yet identified.
func (p Population) Unidentified() Population {
	var out Population
	for _, t := range p {
		if !t.Identified {
			out = append(out, t)
		}
	}
	return out
}

// AllIdentified reports whether every tag has been identified.
func (p Population) AllIdentified() bool {
	for _, t := range p {
		if !t.Identified {
			return false
		}
	}
	return true
}

// IDsUnique verifies the population invariant that all IDs are distinct.
func (p Population) IDsUnique() bool {
	seen := make(map[string]bool, len(p))
	for _, t := range p {
		k := t.ID.Key()
		if seen[k] {
			return false
		}
		seen[k] = true
	}
	return true
}
