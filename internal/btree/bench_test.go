package btree

import (
	"testing"

	"repro/internal/crc"
	"repro/internal/detect"
	"repro/internal/prng"
	"repro/internal/tagmodel"
)

func benchRun(b *testing.B, n int, det detect.Detector) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pop := tagmodel.NewPopulation(n, 64, prng.New(uint64(i)+1))
		Run(pop, det, tm)
	}
}

func BenchmarkBT500QCD(b *testing.B)   { benchRun(b, 500, detect.NewQCD(8, 64)) }
func BenchmarkBT500CRCCD(b *testing.B) { benchRun(b, 500, detect.NewCRCCD(crc.CRC32IEEE, 64)) }
func BenchmarkBT5000QCD(b *testing.B)  { benchRun(b, 5000, detect.NewQCD(8, 64)) }

// BenchmarkABSSteadyState measures the re-read cost of a stable
// population: n single slots, no collisions.
func BenchmarkABSSteadyState(b *testing.B) {
	det := detect.NewQCD(8, 64)
	pop := tagmodel.NewPopulation(500, 64, prng.New(1))
	PrepareABS(pop)
	RunABS(pop, det, tm)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunABS(pop, det, tm)
	}
}
