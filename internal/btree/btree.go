// Package btree implements Binary Tree (BT) splitting anti-collision
// (Section III-B of the paper, Figure 2): every tag holds a counter,
// initially 0; a tag responds whenever its counter is 0. After a collided
// slot, the tags that collided add a random bit to their counter (the
// binary split) while everyone else increments; after a non-collided slot
// everyone decrements. Hush & Wood's analysis gives 2.885·n slots on
// average (1.443·n collided, 0.442·n idle, n single), λ ≈ 0.35 (Lemma 2).
//
// Implementation note: the per-tag counters of the protocol description
// are represented as a stack of groups — the group at depth d holds
// exactly the tags whose counter is d. A split pushes, a non-collided
// slot pops, and a misdetected collision merges the unacknowledged
// responders into the next group (they and it both reach counter 0
// together). This turns the naive O(n) per-slot scan into work
// proportional to the tags actually touched, which is what makes the
// 50000-tag case of Table VIII tractable.
//
// The package also provides ABS (Adaptive Binary Splitting, Myung & Lee):
// across repeated inventory rounds the tags keep the slot order the
// previous round established, so a stable population is re-read in
// exactly n consecutive single slots.
package btree

import (
	"fmt"

	"repro/internal/air"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/signal"
	"repro/internal/tagmodel"
	"repro/internal/timing"
)

func slotCap(n int) int64 { return int64(n)*1000 + 1_000_000 }

// groupStack is the counter representation: stack[head+d] holds the tags
// whose counter is d.
type groupStack struct {
	stack [][]*tagmodel.Tag
	head  int
}

func (g *groupStack) empty() bool { return g.head >= len(g.stack) }

func (g *groupStack) top() []*tagmodel.Tag {
	if g.empty() {
		return nil
	}
	return g.stack[g.head]
}

// pop removes the counter-0 group (a non-collided slot: everyone else
// decrements by sliding the window).
func (g *groupStack) pop() {
	g.stack[g.head] = nil
	g.head++
}

// split replaces the counter-0 group with two groups (the random-bit
// split); every deeper group's counter implicitly increments.
func (g *groupStack) split(zero, one []*tagmodel.Tag) {
	g.stack[g.head] = one
	if g.head == 0 {
		g.stack = append([][]*tagmodel.Tag{zero}, g.stack...)
	} else {
		g.head--
		g.stack[g.head] = zero
	}
}

// mergeIntoNext folds leftover counter-0 tags into the group below before
// a pop, modelling a declared-non-collided slot whose responders were not
// acknowledged: they stay at 0 while the next group decrements to 0.
func (g *groupStack) mergeIntoNext(leftover []*tagmodel.Tag) {
	if len(leftover) == 0 {
		return
	}
	if g.head+1 >= len(g.stack) {
		g.stack = append(g.stack, nil)
	}
	g.stack[g.head+1] = append(g.stack[g.head+1], leftover...)
}

// Run identifies the whole population with counter-based binary splitting
// under the given detector and returns the session metrics. The Frames
// field of the census counts slots (one probe per slot), matching the
// "#of frame" column of the paper's Table VIII, which for BT equals the
// total slot count.
func Run(pop tagmodel.Population, det detect.Detector, tm timing.Model) *metrics.Session {
	g := &groupStack{stack: [][]*tagmodel.Tag{nil}}
	for _, t := range pop {
		if !t.Identified {
			g.stack[0] = append(g.stack[0], t)
		}
	}
	return run(g, len(pop), det, tm, nil)
}

func run(g *groupStack, n int, det detect.Detector, tm timing.Model, onIdentify func(*tagmodel.Tag)) *metrics.Session {
	s := &metrics.Session{}
	now := 0.0
	var sc air.SlotScratch
	var slots int64
	remaining := 0
	for i := g.head; i < len(g.stack); i++ {
		remaining += len(g.stack[i])
	}

	for remaining > 0 {
		if slots > slotCap(n) {
			panic(fmt.Sprintf("btree: exceeded slot cap identifying %d tags (detector %s)", n, det.Name()))
		}
		if g.empty() {
			// All groups drained without identifying everyone (cannot
			// happen: identified tags leave, others are merged/split).
			panic("btree: group stack drained with tags remaining")
		}
		responders := g.top()
		o := sc.RunSlot(det, responders, now, tm.TauMicros)
		now += float64(o.Bits) * tm.TauMicros
		s.Record(o, now)
		s.Census.Frames++
		slots++
		if o.Identified != nil {
			remaining--
			if onIdentify != nil {
				onIdentify(o.Identified)
			}
		}

		if o.Declared == signal.Collided {
			// Binary split: every responder draws a random bit.
			var zero, one []*tagmodel.Tag
			for _, t := range responders {
				if t.Rng.Coin() == 0 {
					zero = append(zero, t)
				} else {
					one = append(one, t)
				}
			}
			g.split(zero, one)
		} else {
			// Non-collided: unacknowledged responders (phantom reads or
			// misdetected collisions) stay at counter 0 and merge with the
			// decrementing next group.
			var leftover []*tagmodel.Tag
			for _, t := range responders {
				if !t.Identified {
					leftover = append(leftover, t)
				}
			}
			g.mergeIntoNext(leftover)
			g.pop()
		}
	}
	return s
}

// absUnordered marks a tag with no position from a previous ABS round.
const absUnordered = -1

// PrepareABS marks the whole population as newcomers for a first ABS
// round; RunABS then behaves like a cold BT round.
func PrepareABS(pop tagmodel.Population) {
	for _, t := range pop {
		t.Slot = absUnordered
	}
}

// ResetOrder is an alias of PrepareABS: forget the inter-round ordering.
func ResetOrder(pop tagmodel.Population) { PrepareABS(pop) }

// PrepareABSNewcomers marks just the given tags (e.g. tags that entered
// the field since the last round) as newcomers; the rest of the
// population keeps its order.
func PrepareABSNewcomers(newcomers tagmodel.Population) {
	for _, t := range newcomers {
		t.Slot = absUnordered
	}
}

// RunABS performs one ABS inventory round. Tags whose Slot field holds an
// order from a previous round start at that counter, so a stable
// population is re-read in n single slots with no collisions; newcomers
// (Slot == absUnordered) join at a random existing position and provoke a
// split only where they land. After the round every identified tag's Slot
// holds its new order.
func RunABS(pop tagmodel.Population, det detect.Detector, tm timing.Model) *metrics.Session {
	maxOrder := 0
	ordered := false
	for _, t := range pop {
		if t.Slot != absUnordered {
			ordered = true
			if t.Slot+1 > maxOrder {
				maxOrder = t.Slot + 1
			}
		}
	}
	g := &groupStack{}
	counterOf := func(t *tagmodel.Tag) int {
		switch {
		case t.Slot != absUnordered:
			return t.Slot
		case ordered:
			return t.Rng.Intn(maxOrder)
		default:
			return 0
		}
	}
	depth := maxOrder
	if depth == 0 {
		depth = 1
	}
	g.stack = make([][]*tagmodel.Tag, depth)
	for _, t := range pop {
		t.Identified = false
		t.IdentifiedAtMicros = 0
		c := counterOf(t)
		g.stack[c] = append(g.stack[c], t)
	}

	order := 0
	return run(g, len(pop), det, tm, func(t *tagmodel.Tag) {
		t.Slot = order
		order++
	})
}
