package btree_test

import (
	"fmt"

	"repro/internal/btree"
	"repro/internal/detect"
	"repro/internal/prng"
	"repro/internal/tagmodel"
	"repro/internal/timing"
)

// Binary-tree identification: the slot census follows Lemma 2's
// 2.885n expectation, with exactly n single slots.
func ExampleRun() {
	pop := tagmodel.NewPopulation(200, 64, prng.New(7))
	s := btree.Run(pop, detect.NewOracle(1, 64), timing.Default)
	fmt.Println(s.Census.Single, pop.AllIdentified(), s.Census.Slots() > 450 && s.Census.Slots() < 700)
	// Output: 200 true true
}

// ABS re-reads a stable population with zero collisions: each tag keeps
// the slot order the previous round assigned.
func ExampleRunABS() {
	pop := tagmodel.NewPopulation(50, 64, prng.New(8))
	det := detect.NewQCD(8, 64)
	btree.PrepareABS(pop)
	btree.RunABS(pop, det, timing.Default) // cold round: splits from scratch
	second := btree.RunABS(pop, det, timing.Default)
	fmt.Println(second.Census.Collided, second.Census.Slots())
	// Output: 0 50
}
