package btree

import (
	"math"
	"testing"

	"repro/internal/crc"
	"repro/internal/detect"
	"repro/internal/prng"
	"repro/internal/tagmodel"
	"repro/internal/timing"
)

var tm = timing.Model{TauMicros: 1}

func pop(n int, seed uint64) tagmodel.Population {
	return tagmodel.NewPopulation(n, 64, prng.New(seed))
}

func TestRunIdentifiesEveryone(t *testing.T) {
	for _, det := range []detect.Detector{
		detect.NewQCD(8, 64),
		detect.NewCRCCD(crc.CRC32IEEE, 64),
		detect.NewOracle(1, 64),
	} {
		p := pop(200, 1)
		s := Run(p, det, tm)
		if !p.AllIdentified() {
			t.Fatalf("%s: tags left unidentified", det.Name())
		}
		if s.TagsIdentified != 200 || s.Census.Single != 200 {
			t.Errorf("%s: identified %d, single %d", det.Name(), s.TagsIdentified, s.Census.Single)
		}
	}
}

func TestSingleTagOneSlot(t *testing.T) {
	p := pop(1, 2)
	s := Run(p, detect.NewQCD(8, 64), tm)
	if s.Census.Slots() != 1 || s.Census.Single != 1 {
		t.Errorf("census = %+v", s.Census)
	}
}

func TestLemma2SlotCounts(t *testing.T) {
	// Lemma 2 / Table VIII: ~2.885n total slots, 1.443n collided, 0.442n
	// idle, λ ≈ 0.34–0.36.
	var total, collided, idle float64
	const n, rounds = 1000, 10
	for r := uint64(0); r < rounds; r++ {
		p := pop(n, 10+r)
		s := Run(p, detect.NewOracle(1, 64), tm)
		total += float64(s.Census.Slots())
		collided += float64(s.Census.Collided)
		idle += float64(s.Census.Idle)
	}
	total /= rounds * n
	collided /= rounds * n
	idle /= rounds * n
	if math.Abs(total-2.885) > 0.15 {
		t.Errorf("slots/tag = %.3f, Lemma 2 gives 2.885", total)
	}
	if math.Abs(collided-1.443) > 0.1 {
		t.Errorf("collided/tag = %.3f, Lemma 2 gives 1.443", collided)
	}
	if math.Abs(idle-0.442) > 0.07 {
		t.Errorf("idle/tag = %.3f, Lemma 2 gives 0.442", idle)
	}
	throughput := 1 / total
	if throughput < 0.32 || throughput > 0.38 {
		t.Errorf("λ = %.3f, paper reports ≈0.35", throughput)
	}
}

func TestFramesEqualSlotsForBT(t *testing.T) {
	// Table VIII's "#of frame" column equals the slot count for BT.
	p := pop(50, 3)
	s := Run(p, detect.NewQCD(8, 64), tm)
	if s.Census.Frames != s.Census.Slots() {
		t.Errorf("frames %d != slots %d", s.Census.Frames, s.Census.Slots())
	}
}

func TestQCDFasterThanCRCCDOnBT(t *testing.T) {
	// Table III / Figure 8b: EI ≈ 0.60 at strength 8.
	var tQCD, tCRC float64
	const rounds = 10
	for r := uint64(0); r < rounds; r++ {
		p1 := pop(500, 100+r)
		tQCD += Run(p1, detect.NewQCD(8, 64), tm).TimeMicros
		p2 := pop(500, 100+r)
		tCRC += Run(p2, detect.NewCRCCD(crc.CRC32IEEE, 64), tm).TimeMicros
	}
	ei := (tCRC - tQCD) / tCRC
	if math.Abs(ei-0.60) > 0.06 {
		t.Errorf("BT EI at strength 8 = %.3f, Table III gives ≈0.602", ei)
	}
}

func TestLowStrengthStillTerminates(t *testing.T) {
	// Strength 1 misses half of all pairwise collisions; the merge path
	// must still converge.
	p := pop(100, 4)
	s := Run(p, detect.NewQCD(1, 64), tm)
	if !p.AllIdentified() {
		t.Fatal("strength-1 QCD failed to terminate")
	}
	if s.Detection.FalseSingle == 0 {
		t.Error("strength-1 QCD reported no misses over a 100-tag run (implausible)")
	}
}

func TestDelaysWithinSession(t *testing.T) {
	p := pop(64, 5)
	s := Run(p, detect.NewQCD(8, 64), tm)
	for _, d := range s.DelaysMicros {
		if d <= 0 || d > s.TimeMicros {
			t.Fatalf("delay %v outside (0, %v]", d, s.TimeMicros)
		}
	}
}

func TestDeterministic(t *testing.T) {
	run := func() int64 {
		p := pop(128, 6)
		return Run(p, detect.NewQCD(8, 64), tm).Census.Slots()
	}
	if run() != run() {
		t.Error("BT run not deterministic")
	}
}

// --- ABS ---

func TestABSFirstRoundLikeBT(t *testing.T) {
	p := pop(100, 7)
	PrepareABS(p)
	s := RunABS(p, detect.NewQCD(8, 64), tm)
	if !p.AllIdentified() || s.TagsIdentified != 100 {
		t.Fatal("ABS round 1 failed")
	}
	// Orders must be a permutation of 0..n-1.
	seen := make([]bool, 100)
	for _, tag := range p {
		if tag.Slot < 0 || tag.Slot >= 100 || seen[tag.Slot] {
			t.Fatalf("bad ABS order %d", tag.Slot)
		}
		seen[tag.Slot] = true
	}
}

func TestABSSteadyStateIsCollisionFree(t *testing.T) {
	// Myung & Lee's key property: re-reading a stable population reuses
	// the previous order, giving exactly n single slots, zero collisions.
	p := pop(100, 8)
	PrepareABS(p)
	RunABS(p, detect.NewQCD(8, 64), tm)
	s2 := RunABS(p, detect.NewQCD(8, 64), tm)
	if s2.Census.Collided != 0 {
		t.Errorf("steady-state round had %d collisions", s2.Census.Collided)
	}
	if s2.Census.Slots() != 100 || s2.Census.Single != 100 {
		t.Errorf("steady-state census = %+v", s2.Census)
	}
}

func TestABSNewcomerCausesLocalSplit(t *testing.T) {
	p := pop(50, 9)
	PrepareABS(p)
	RunABS(p, detect.NewQCD(8, 64), tm)

	// A newcomer joins; the next round should cost only a few extra slots.
	newcomer := tagmodel.NewPopulation(1, 64, prng.New(999))[0]
	newcomer.Index = 50
	p = append(p, newcomer)
	PrepareABSNewcomers(p[50:])
	s := RunABS(p, detect.NewQCD(8, 64), tm)
	if !p.AllIdentified() {
		t.Fatal("round with newcomer failed")
	}
	if s.Census.Slots() > 60 {
		t.Errorf("newcomer round took %d slots for 51 tags", s.Census.Slots())
	}
	if s.Census.Collided > 5 {
		t.Errorf("newcomer caused %d collisions, expected a local split", s.Census.Collided)
	}
}

func TestResetOrderForgets(t *testing.T) {
	p := pop(30, 11)
	PrepareABS(p)
	RunABS(p, detect.NewQCD(8, 64), tm)
	ResetOrder(p)
	s := RunABS(p, detect.NewQCD(8, 64), tm)
	if s.Census.Collided == 0 {
		t.Error("after ResetOrder the round should split from scratch")
	}
	if !p.AllIdentified() {
		t.Fatal("cold round failed")
	}
}
