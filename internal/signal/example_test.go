package signal_test

import (
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/signal"
)

// A slot's channel accumulates concurrent transmissions as a Boolean sum;
// the reader observes the overlap and the (physical) carrier presence.
func ExampleChannel() {
	var ch signal.Channel
	ch.Transmit(bitstr.MustParse("011001"))
	ch.Transmit(bitstr.MustParse("010010"))
	rx := ch.Receive()
	fmt.Println(rx.Signal, rx.Energy, rx.Responders)
	// Output: 011011 true 2
}

// Ground-truth slot classification by responder count.
func ExampleClassify() {
	fmt.Println(signal.Classify(0), signal.Classify(1), signal.Classify(7))
	// Output: idle single collided
}
