package signal

import (
	"testing"

	"repro/internal/bitstr"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		m    int
		want SlotType
	}{
		{0, Idle}, {1, Single}, {2, Collided}, {10, Collided},
	}
	for _, c := range cases {
		if got := Classify(c.m); got != c.want {
			t.Errorf("Classify(%d) = %v, want %v", c.m, got, c.want)
		}
	}
}

func TestSlotTypeString(t *testing.T) {
	if Idle.String() != "idle" || Single.String() != "single" || Collided.String() != "collided" {
		t.Error("SlotType strings wrong")
	}
	if SlotType(99).String() != "SlotType(99)" {
		t.Error("unknown SlotType string wrong")
	}
}

func TestEmptyChannel(t *testing.T) {
	var ch Channel
	rx := ch.Receive()
	if rx.Energy {
		t.Error("empty channel reports energy")
	}
	if rx.Responders != 0 {
		t.Errorf("empty channel responders = %d", rx.Responders)
	}
	if rx.Signal.Len() != 0 {
		t.Errorf("empty channel signal length = %d", rx.Signal.Len())
	}
}

func TestSingleTransmission(t *testing.T) {
	var ch Channel
	payload := bitstr.MustParse("011001")
	ch.Transmit(payload)
	rx := ch.Receive()
	if !rx.Energy || rx.Responders != 1 {
		t.Fatalf("single transmission: energy=%v responders=%d", rx.Energy, rx.Responders)
	}
	if !rx.Signal.Equal(payload) {
		t.Errorf("signal = %v, want %v", rx.Signal, payload)
	}
}

func TestOverlapIsBooleanSum(t *testing.T) {
	// The paper's Section I example.
	rx := Overlap(bitstr.MustParse("011001"), bitstr.MustParse("010010"))
	if rx.Signal.String() != "011011" {
		t.Errorf("overlap = %s, want 011011", rx.Signal)
	}
	if rx.Responders != 2 {
		t.Errorf("responders = %d", rx.Responders)
	}
}

func TestTransmitDoesNotAliasPayload(t *testing.T) {
	var ch Channel
	payload := bitstr.MustParse("0000")
	ch.Transmit(payload)
	ch.Transmit(bitstr.MustParse("1111"))
	if payload.String() != "0000" {
		t.Error("Transmit mutated the first payload")
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	var ch Channel
	ch.Transmit(bitstr.New(8))
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch not detected")
		}
	}()
	ch.Transmit(bitstr.New(9))
}

func TestReset(t *testing.T) {
	var ch Channel
	ch.Transmit(bitstr.MustParse("1"))
	ch.Reset()
	rx := ch.Receive()
	if rx.Energy || rx.Responders != 0 {
		t.Error("Reset did not clear the channel")
	}
	// A different length is fine after Reset.
	ch.Transmit(bitstr.New(16))
	if ch.Receive().Signal.Len() != 16 {
		t.Error("channel unusable after Reset")
	}
}

func TestManyTransmittersSaturate(t *testing.T) {
	var ch Channel
	for i := 0; i < 8; i++ {
		ch.Transmit(bitstr.FromUint64(1<<uint(i), 8))
	}
	rx := ch.Receive()
	if rx.Signal.OnesCount() != 8 {
		t.Errorf("saturated signal = %v", rx.Signal)
	}
	if rx.Responders != 8 {
		t.Errorf("responders = %d", rx.Responders)
	}
}
