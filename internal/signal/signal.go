// Package signal models the tag-to-reader RF channel at the bit level.
//
// Following Section IV-A of the paper, the physical overlap of concurrent
// backscatter transmissions is abstracted as a bitwise Boolean sum: when m
// tags transmit s_1 … s_m in the same slot, the reader receives
// s = s_1 ∨ s_2 ∨ … ∨ s_m with |s| = |s_i|. An idle slot delivers no
// signal at all (no carrier energy), which the reader can observe.
package signal

import (
	"fmt"

	"repro/internal/bitstr"
)

// SlotType classifies a slot from the reader's point of view.
type SlotType int

const (
	// Idle: no tag responded.
	Idle SlotType = iota
	// Single: exactly one tag responded and its payload is readable.
	Single
	// Collided: two or more tags responded; the signals overlapped.
	Collided
)

// String implements fmt.Stringer.
func (t SlotType) String() string {
	switch t {
	case Idle:
		return "idle"
	case Single:
		return "single"
	case Collided:
		return "collided"
	default:
		return fmt.Sprintf("SlotType(%d)", int(t))
	}
}

// Classify returns the ground-truth slot type for m responders.
func Classify(m int) SlotType {
	switch {
	case m == 0:
		return Idle
	case m == 1:
		return Single
	default:
		return Collided
	}
}

// Reception is what the reader's radio hands to the collision detector
// after a transmission phase.
//
// Energy (carrier presence) is physically observable by any receiver, so
// detectors may branch on it; Responders is ground truth that only the
// oracle detector and the metrics layer may consult.
type Reception struct {
	Signal     bitstr.BitString // bitwise Boolean sum of all transmissions
	Energy     bool             // true iff at least one tag transmitted
	Responders int              // ground truth count (oracle/metrics only)
}

// Channel accumulates the transmissions of one phase of one slot.
// The zero value is an empty channel. Channel is not safe for concurrent
// use; the simulator runs each reader's slots sequentially and
// parallelises across Monte-Carlo rounds instead.
//
// A Channel retains its internal signal buffer across Reset so that a
// reused channel performs no allocation in steady state. Consequently the
// Reception returned by Receive aliases that buffer: its Signal is valid
// only until the next Transmit after a Reset. The slot engine finishes
// classifying a phase before reusing the channel, so this is safe there;
// callers that need the signal to outlive the channel must Clone it.
type Channel struct {
	sig   bitstr.BitString
	buf   []byte // retained backing storage for sig (slice-backed payloads)
	count int
}

// Reset clears the channel for the next phase, keeping the signal buffer
// for reuse.
func (c *Channel) Reset() {
	c.sig = bitstr.BitString{}
	c.count = 0
}

// Transmit overlaps b onto the channel. All transmissions within a phase
// must have equal length; the air interface enforces equal slot formats.
func (c *Channel) Transmit(b bitstr.BitString) {
	if c.count == 0 {
		c.sig, c.buf = bitstr.CloneInto(c.buf, b)
		c.count = 1
		return
	}
	if b.Len() != c.sig.Len() {
		panic(fmt.Sprintf("signal: transmission of %d bits into a %d-bit phase", b.Len(), c.sig.Len()))
	}
	c.sig.OrInPlace(b)
	c.count++
}

// Receive returns the overlapped signal observed by the reader.
func (c *Channel) Receive() Reception {
	return Reception{Signal: c.sig, Energy: c.count > 0, Responders: c.count}
}

// Overlap is a convenience that overlaps a set of transmissions directly.
func Overlap(tx ...bitstr.BitString) Reception {
	var c Channel
	for _, b := range tx {
		c.Transmit(b)
	}
	return c.Receive()
}
