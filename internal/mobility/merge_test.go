package mobility

import (
	"reflect"
	"testing"

	"repro/internal/detect"
	"repro/internal/metrics"
)

// fillNonZero sets every settable (exported) field of v to a non-zero
// probe value, recursing into structs. It fails the test on any field
// kind it does not know how to probe, so new field types must be added
// here deliberately.
func fillNonZero(t *testing.T, v reflect.Value, path string) {
	t.Helper()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		name := path + "." + v.Type().Field(i).Name
		if !f.CanSet() {
			continue // unexported: not part of the merge contract
		}
		switch f.Kind() {
		case reflect.Int, reflect.Int32, reflect.Int64:
			f.SetInt(7)
		case reflect.Float64:
			f.SetFloat(3.5)
		case reflect.Bool:
			f.SetBool(true)
		case reflect.Slice:
			elem := reflect.New(f.Type().Elem()).Elem()
			switch elem.Kind() {
			case reflect.Float64:
				elem.SetFloat(2.25)
			case reflect.Int, reflect.Int32, reflect.Int64:
				elem.SetInt(9)
			default:
				t.Fatalf("%s: no probe for slice of %s", name, elem.Kind())
			}
			f.Set(reflect.Append(f, elem))
		case reflect.Struct:
			fillNonZero(t, f, name)
		default:
			t.Fatalf("%s: no probe for kind %s — extend fillNonZero and mergeSession", name, f.Kind())
		}
	}
}

// TestMergeSessionCoversEveryField is the completeness guard for
// mergeSession: every exported metrics.Session field (recursively) set
// to a non-zero probe in the source must come out non-zero — in fact
// equal, since the destination starts zero — after the merge. A field
// added to metrics.Session without a matching mergeSession line fails
// here instead of silently vanishing from mobile-run aggregates, which
// is exactly how DelaysMicros went missing.
func TestMergeSessionCoversEveryField(t *testing.T) {
	var src metrics.Session
	fillNonZero(t, reflect.ValueOf(&src).Elem(), "Session")

	var dst metrics.Session
	mergeSession(&dst, &src)

	sv := reflect.ValueOf(src)
	dv := reflect.ValueOf(dst)
	for i := 0; i < sv.NumField(); i++ {
		field := sv.Type().Field(i)
		if !field.IsExported() {
			continue
		}
		got, want := dv.Field(i).Interface(), sv.Field(i).Interface()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("mergeSession drops Session.%s: merged %v, want %v", field.Name, got, want)
		}
	}
}

// TestMergeSessionAccumulates pins the additive semantics over two
// merges (counts sum, delay logs concatenate).
func TestMergeSessionAccumulates(t *testing.T) {
	a := metrics.Session{Bits: 10, TimeMicros: 5, TagsIdentified: 2, DelaysMicros: []float64{1, 2}}
	b := metrics.Session{Bits: 3, TimeMicros: 2.5, TagsIdentified: 1, DelaysMicros: []float64{9}}
	var dst metrics.Session
	mergeSession(&dst, &a)
	mergeSession(&dst, &b)
	if dst.Bits != 13 || dst.TimeMicros != 7.5 || dst.TagsIdentified != 3 {
		t.Fatalf("bad totals: %+v", dst)
	}
	if want := []float64{1, 2, 9}; !reflect.DeepEqual(dst.DelaysMicros, want) {
		t.Fatalf("DelaysMicros = %v, want %v", dst.DelaysMicros, want)
	}
}

// TestRunSessionKeepsDelays: the end-to-end consequence of the fix —
// a mobile run's aggregate session carries one delay sample per
// identified-tag event across all rounds.
func TestRunSessionKeepsDelays(t *testing.T) {
	res := Run(ProtoBT, detect.NewQCD(8, 64), Arrivals{RatePerSecond: 2000, DwellMicros: 100_000}, 500_000, 11)
	if res.Session.TagsIdentified == 0 {
		t.Fatal("run identified nothing")
	}
	if got := int64(len(res.Session.DelaysMicros)); got != res.Session.TagsIdentified {
		t.Fatalf("aggregate session has %d delay samples for %d identifications",
			got, res.Session.TagsIdentified)
	}
}
