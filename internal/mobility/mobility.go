// Package mobility models the dynamic tag environment of the paper's
// Section VI-D: "the tag may move out of the reader's range before it is
// identified by the reader if the identification is slow."
//
// Tags arrive in the reader's field as a Poisson process, dwell for a
// deterministic or exponential contact window, and leave whether or not
// they were read. The reader runs back-to-back inventory rounds; the key
// metric is the miss rate — the fraction of tags that left unread — as a
// function of the detection scheme's speed. This is the operational
// consequence of Figure 6's delay reduction, and the natural home of the
// ABS protocol (stable tags are re-read collision-free between rounds).
package mobility

import (
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/btree"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/prng"
	"repro/internal/tagmodel"
	"repro/internal/timing"
)

// Arrivals configures the tag flow through the field.
type Arrivals struct {
	// RatePerSecond is the mean tag arrival rate λ of the Poisson process.
	RatePerSecond float64
	// DwellMicros is the mean contact window.
	DwellMicros float64
	// ExponentialDwell draws dwell times Exp(DwellMicros) instead of the
	// deterministic window (a free-moving crowd vs a fixed-speed belt).
	ExponentialDwell bool
	// IDBits is the tag ID length (default 64).
	IDBits int
}

func (a Arrivals) validate() {
	if a.RatePerSecond <= 0 || a.DwellMicros <= 0 {
		panic(fmt.Sprintf("mobility: non-positive arrivals %+v", a))
	}
}

func (a Arrivals) idBits() int {
	if a.IDBits == 0 {
		return 64
	}
	return a.IDBits
}

// Result summarises a mobile-environment run.
type Result struct {
	// Arrived counts tags that entered the field during the simulation.
	Arrived int
	// Read counts tags identified before they left.
	Read int
	// Missed counts tags whose dwell expired unread.
	Missed int
	// Rounds is the number of inventory rounds executed.
	Rounds int
	// Session accumulates the air metrics of all rounds.
	Session metrics.Session
	// MeanFieldSize is the time-averaged number of tags in the field,
	// sampled at round starts.
	MeanFieldSize float64
}

// MissRate returns Missed / Arrived (0 when nothing arrived).
func (r Result) MissRate() float64 {
	if r.Arrived == 0 {
		return 0
	}
	return float64(r.Missed) / float64(r.Arrived)
}

// Protocol selects the inventory algorithm for the mobile run.
type Protocol int

// Protocols.
const (
	// ProtoBT runs an independent binary-tree round each time.
	ProtoBT Protocol = iota
	// ProtoABS runs adaptive binary splitting: tags keep their slot order
	// between rounds, so only newcomers cause collisions.
	ProtoABS
)

func (p Protocol) String() string {
	switch p {
	case ProtoBT:
		return "BT"
	case ProtoABS:
		return "ABS"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// mobileTag wraps a tag with its lifetime.
type mobileTag struct {
	tag     *tagmodel.Tag
	leaveAt float64 // μs
	wasRead bool
}

// Run simulates the mobile field for durationMicros under the given
// protocol and detector. The reader executes inventory rounds back to
// back; between rounds, arrivals and departures are applied at the
// current clock.
func Run(proto Protocol, det detect.Detector, arr Arrivals, durationMicros float64, seed uint64) Result {
	arr.validate()
	rng := prng.New(seed)
	tm := timing.Default

	var res Result
	now := 0.0
	nextArrival := now + rng.Exp(1e6/arr.RatePerSecond)
	var field []*mobileTag
	seen := make(map[string]bool)
	nextIndex := 0

	admit := func(at float64) {
		// Draw a unique ID for the newcomer.
		var id bitstr.BitString
		for {
			id = bitstr.FromUint64(rng.Bits(min64(arr.idBits())), min64(arr.idBits()))
			for id.Len() < arr.idBits() {
				id = bitstr.Concat(id, bitstr.FromUint64(rng.Bits(1), 1))
			}
			if !seen[id.Key()] {
				seen[id.Key()] = true
				break
			}
		}
		t := tagmodel.New(nextIndex, id, rng.Split())
		nextIndex++
		dwell := arr.DwellMicros
		if arr.ExponentialDwell {
			dwell = rng.Exp(arr.DwellMicros)
		}
		mt := &mobileTag{tag: t, leaveAt: at + dwell}
		if proto == ProtoABS {
			t.Slot = -1 // newcomer marker for ABS
		}
		field = append(field, mt)
		res.Arrived++
	}

	sync := func() {
		// Admit arrivals up to the clock; retire departures.
		for nextArrival <= now && now < durationMicros {
			admit(nextArrival)
			nextArrival += rng.Exp(1e6 / arr.RatePerSecond)
		}
		kept := field[:0]
		for _, mt := range field {
			if mt.leaveAt <= now {
				if mt.wasRead {
					res.Read++
				} else {
					res.Missed++
				}
				continue
			}
			kept = append(kept, mt)
		}
		field = kept
	}

	fieldSizeSum := 0.0
	for now < durationMicros {
		sync()
		if len(field) == 0 {
			// Idle-wait to the next arrival (or the end).
			if nextArrival >= durationMicros {
				break
			}
			now = nextArrival
			continue
		}
		res.Rounds++
		fieldSizeSum += float64(len(field))

		pop := make(tagmodel.Population, len(field))
		for i, mt := range field {
			pop[i] = mt.tag
			mt.tag.Identified = false
		}
		var s *metrics.Session
		if proto == ProtoABS {
			s = btree.RunABS(pop, det, tm)
		} else {
			pop.Reset()
			s = btree.Run(pop, det, tm)
		}
		// Credit reads that happened before each tag's departure.
		for _, mt := range field {
			if mt.tag.Identified && now+mt.tag.IdentifiedAtMicros <= mt.leaveAt {
				mt.wasRead = true
			}
		}
		mergeSession(&res.Session, s)
		now += s.TimeMicros
	}
	// Drain: anything still in the field counts by its read status.
	for _, mt := range field {
		if mt.wasRead {
			res.Read++
		} else {
			res.Missed++
		}
	}
	if res.Rounds > 0 {
		res.MeanFieldSize = fieldSizeSum / float64(res.Rounds)
	}
	return res
}

// mergeSession folds one round's session into the run aggregate. It
// must cover every exported metrics.Session field — the reflection test
// TestMergeSessionCoversEveryField fails the build of any new field
// that is not merged here (DelaysMicros was silently dropped once).
func mergeSession(dst *metrics.Session, src *metrics.Session) {
	dst.Census.Add(src.Census)
	dst.Detection.Add(src.Detection)
	dst.Bits += src.Bits
	dst.TimeMicros += src.TimeMicros
	dst.DelaysMicros = append(dst.DelaysMicros, src.DelaysMicros...)
	dst.TagsIdentified += src.TagsIdentified
}

func min64(n int) int {
	if n > 64 {
		return 64
	}
	return n
}
