package mobility

import (
	"testing"

	"repro/internal/crc"
	"repro/internal/detect"
)

func arrivals() Arrivals {
	// ~50 tags/s with 0.5 s dwell → ~25 tags in the field on average.
	return Arrivals{RatePerSecond: 50, DwellMicros: 500_000}
}

func TestRunConservation(t *testing.T) {
	res := Run(ProtoBT, detect.NewQCD(8, 64), arrivals(), 3e6, 1)
	if res.Arrived == 0 {
		t.Fatal("no arrivals in 3 s at 50/s")
	}
	if res.Read+res.Missed != res.Arrived {
		t.Fatalf("conservation violated: %d read + %d missed != %d arrived",
			res.Read, res.Missed, res.Arrived)
	}
	if res.Rounds == 0 || res.Session.TimeMicros <= 0 {
		t.Error("no inventory work recorded")
	}
}

func TestQCDMissesFewerThanCRC(t *testing.T) {
	// The operational consequence of Figure 6: with a tight dwell, the
	// slower CRC-CD reader loses more tags. Use a short dwell so the
	// difference is forced.
	// ~10 tags in the field; a CRC-CD BT round over 10 tags costs ≈2.8 ms
	// of airtime, so a 5 ms dwell is frequently blown (wait for the
	// current round + be read in the next), while a QCD round (≈1.1 ms)
	// fits twice over.
	tight := Arrivals{RatePerSecond: 2000, DwellMicros: 5_000}
	qcd := Run(ProtoBT, detect.NewQCD(8, 64), tight, 3e6, 2)
	crcRes := Run(ProtoBT, detect.NewCRCCD(crc.CRC32IEEE, 64), tight, 3e6, 2)
	if qcd.MissRate() >= crcRes.MissRate() {
		t.Errorf("QCD miss %.3f not better than CRC-CD %.3f",
			qcd.MissRate(), crcRes.MissRate())
	}
	if crcRes.MissRate() == 0 {
		t.Error("test premise broken: CRC-CD missed nothing under the tight dwell")
	}
}

func TestABSBeatsColdBTInSlots(t *testing.T) {
	// With a mostly stable field, ABS re-reads known tags in single slots;
	// per-round slot usage must be well below cold BT's 2.885n.
	stable := Arrivals{RatePerSecond: 20, DwellMicros: 2_000_000} // ~40 in field
	abs := Run(ProtoABS, detect.NewQCD(8, 64), stable, 5e6, 3)
	bt := Run(ProtoBT, detect.NewQCD(8, 64), stable, 5e6, 3)
	absSlotsPerTagRead := float64(abs.Session.Census.Slots()) / float64(abs.Session.TagsIdentified)
	btSlotsPerTagRead := float64(bt.Session.Census.Slots()) / float64(bt.Session.TagsIdentified)
	if absSlotsPerTagRead >= btSlotsPerTagRead {
		t.Errorf("ABS %.2f slots/read not better than BT %.2f", absSlotsPerTagRead, btSlotsPerTagRead)
	}
	if absSlotsPerTagRead > 2.0 {
		t.Errorf("ABS used %.2f slots per read; steady state should be near 1", absSlotsPerTagRead)
	}
}

func TestExponentialDwell(t *testing.T) {
	arr := arrivals()
	arr.ExponentialDwell = true
	res := Run(ProtoBT, detect.NewQCD(8, 64), arr, 2e6, 4)
	if res.Read+res.Missed != res.Arrived {
		t.Fatal("conservation violated with exponential dwell")
	}
}

func TestDeterministic(t *testing.T) {
	a := Run(ProtoBT, detect.NewQCD(8, 64), arrivals(), 1e6, 5)
	b := Run(ProtoBT, detect.NewQCD(8, 64), arrivals(), 1e6, 5)
	if a.Arrived != b.Arrived || a.Read != b.Read || a.Session.TimeMicros != b.Session.TimeMicros {
		t.Error("mobile run not deterministic")
	}
}

func TestEmptyWindow(t *testing.T) {
	// A duration shorter than the first inter-arrival gap: nothing happens.
	res := Run(ProtoBT, detect.NewQCD(8, 64), Arrivals{RatePerSecond: 0.001, DwellMicros: 1000}, 10, 6)
	if res.Arrived != 0 || res.Rounds != 0 {
		t.Errorf("unexpected activity: %+v", res)
	}
	if res.MissRate() != 0 {
		t.Error("empty run miss rate != 0")
	}
}

func TestValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid arrivals accepted")
		}
	}()
	Run(ProtoBT, detect.NewQCD(8, 64), Arrivals{}, 1e6, 1)
}

func TestProtocolString(t *testing.T) {
	if ProtoBT.String() != "BT" || ProtoABS.String() != "ABS" {
		t.Error("protocol names")
	}
	if Protocol(9).String() != "Protocol(9)" {
		t.Error("unknown protocol name")
	}
}

func TestMeanFieldSizeTracksLittlesLaw(t *testing.T) {
	// Little's law: L = λW = 50/s × 0.5s = 25 tags in the field.
	res := Run(ProtoBT, detect.NewQCD(8, 64), arrivals(), 10e6, 7)
	if res.MeanFieldSize < 12 || res.MeanFieldSize > 40 {
		t.Errorf("mean field size %.1f, Little's law predicts ≈25", res.MeanFieldSize)
	}
}
