package mobility_test

import (
	"fmt"

	"repro/internal/detect"
	"repro/internal/mobility"
)

// A flowing population: tags arrive at 100/s, dwell 200 ms, and the
// reader runs back-to-back BT inventory rounds. The miss rate is the
// fraction that left the field unread.
func ExampleRun() {
	arr := mobility.Arrivals{RatePerSecond: 100, DwellMicros: 200_000}
	res := mobility.Run(mobility.ProtoBT, detect.NewQCD(8, 64), arr, 1e6, 1)
	fmt.Println(res.Read+res.Missed == res.Arrived, res.MissRate() < 0.05)
	// Output: true true
}
