package sim

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

func baseCfg() Config {
	return Config{
		Tags: 100, Seed: 1, Rounds: 4,
		Algorithm: AlgFSA, FrameSize: 60,
		Detector: DetQCD, Strength: 8,
	}
}

func TestRunBasic(t *testing.T) {
	agg, err := Run(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if agg.Single.Mean() != 100 {
		t.Errorf("mean single slots = %v, want 100 (every tag once)", agg.Single.Mean())
	}
	if agg.Throughput.Mean() <= 0 || agg.Throughput.Mean() > 0.42 {
		t.Errorf("throughput = %v", agg.Throughput.Mean())
	}
	if agg.Delay.N() != 400 { // 100 tags × 4 rounds
		t.Errorf("delay observations = %d", agg.Delay.N())
	}
	if agg.Accuracy.Mean() < 0.95 {
		t.Errorf("accuracy = %v", agg.Accuracy.Mean())
	}
}

func TestDeterministicAcrossParallelism(t *testing.T) {
	c := baseCfg()
	c.Rounds = 8
	c.Workers = 1
	seq, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	c.Workers = 8
	par, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if seq.TimeMicros.Mean() != par.TimeMicros.Mean() ||
		seq.Slots.Mean() != par.Slots.Mean() ||
		seq.Delay.Mean() != par.Delay.Mean() {
		t.Error("aggregate depends on worker count")
	}
}

func TestSeedChangesResults(t *testing.T) {
	a, err := Run(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	c := baseCfg()
	c.Seed = 2
	b, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.TimeMicros.Mean() == b.TimeMicros.Mean() {
		t.Error("different seeds gave identical times (suspicious)")
	}
}

func TestAllAlgorithmsAndDetectors(t *testing.T) {
	for _, alg := range []string{AlgFSA, AlgBT, AlgQAdaptive, AlgQT, AlgEDFSA} {
		for _, det := range []string{DetQCD, DetCRCCD, DetOracle} {
			c := Config{
				Tags: 60, Seed: 3, Rounds: 2,
				Algorithm: alg, FrameSize: 40, Detector: det,
			}
			agg, err := Run(c)
			if err != nil {
				t.Fatalf("%s/%s: %v", alg, det, err)
			}
			if agg.Single.Mean() < 60 {
				t.Errorf("%s/%s: single %v < tags", alg, det, agg.Single.Mean())
			}
		}
	}
}

func TestFramePolicies(t *testing.T) {
	for _, pol := range []string{PolicyFixed, PolicySchoute, PolicyLowerBound, PolicyOptimal} {
		c := baseCfg()
		c.FramePolicy = pol
		if _, err := Run(c); err != nil {
			t.Errorf("policy %s: %v", pol, err)
		}
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{Tags: 0, Algorithm: AlgFSA, FrameSize: 10, Detector: DetQCD},
		{Tags: 10, Algorithm: AlgEDFSA, FrameSize: 0, Detector: DetQCD},
		{Tags: 10, Algorithm: "nope", Detector: DetQCD},
		{Tags: 10, Algorithm: AlgFSA, FrameSize: 0, Detector: DetQCD},
		{Tags: 10, Algorithm: AlgFSA, FrameSize: 10, Detector: "nope"},
		{Tags: 10, Algorithm: AlgFSA, FrameSize: 10, Detector: DetQCD, Strength: 99},
		{Tags: 10, Algorithm: AlgFSA, FrameSize: 10, Detector: DetCRCCD, CRCName: "nope"},
	}
	for i, c := range bad {
		if _, err := Run(c); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
	// Rounds < 0 is rejected too.
	c := baseCfg()
	c.Rounds = -1
	if err := c.Validate(); err == nil {
		t.Error("negative rounds accepted")
	}
}

func TestQCDBeatsCRCInAggregate(t *testing.T) {
	q := baseCfg()
	q.Rounds = 5
	qa, err := Run(q)
	if err != nil {
		t.Fatal(err)
	}
	cc := q
	cc.Detector = DetCRCCD
	ca, err := Run(cc)
	if err != nil {
		t.Fatal(err)
	}
	ei := (ca.TimeMicros.Mean() - qa.TimeMicros.Mean()) / ca.TimeMicros.Mean()
	if ei < 0.40 {
		t.Errorf("aggregate EI = %v, want > 0.40", ei)
	}
}

func TestBuildDetectorNames(t *testing.T) {
	c := baseCfg()
	d, err := BuildDetector(c)
	if err != nil || !strings.HasPrefix(d.Name(), "QCD") {
		t.Errorf("detector = %v, %v", d, err)
	}
	c.Detector = DetCRCCD
	d, err = BuildDetector(c)
	if err != nil || !strings.HasPrefix(d.Name(), "CRC-CD") {
		t.Errorf("detector = %v, %v", d, err)
	}
	c.Detector = DetOracle
	d, err = BuildDetector(c)
	if err != nil || d.Name() != "Oracle" {
		t.Errorf("detector = %v, %v", d, err)
	}
}

func TestRunRound(t *testing.T) {
	s, err := RunRound(baseCfg(), 12345)
	if err != nil {
		t.Fatal(err)
	}
	if s.TagsIdentified != 100 {
		t.Errorf("identified %d", s.TagsIdentified)
	}
	// Same round seed, same session.
	s2, err := RunRound(baseCfg(), 12345)
	if err != nil {
		t.Fatal(err)
	}
	if s.TimeMicros != s2.TimeMicros || s.Census != s2.Census {
		t.Error("RunRound not deterministic")
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := Config{Tags: 10, Algorithm: AlgBT, Detector: DetQCD}
	agg, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Cfg.IDBits != 64 || agg.Cfg.Strength != 8 || agg.Cfg.TauMicros != 1 {
		t.Errorf("defaults not applied: %+v", agg.Cfg)
	}
}

func TestURInRange(t *testing.T) {
	agg, err := Run(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if ur := agg.UR.Mean(); ur <= 0 || ur >= 1 {
		t.Errorf("UR = %v", ur)
	}
}

func TestImpairedChannelThroughConfig(t *testing.T) {
	clean := baseCfg()
	noisy := baseCfg()
	noisy.BER = 0.005
	ca, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	na, err := Run(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if na.TimeMicros.Mean() <= ca.TimeMicros.Mean() {
		t.Error("noise did not slow identification")
	}
	// Noise re-arbitrates true singles, so truth-single slots exceed the
	// population; completion is asserted via per-tag delays instead.
	if na.Delay.N() != int64(noisy.Tags*noisy.Rounds) {
		t.Errorf("noisy run identified %d tag-rounds, want %d", na.Delay.N(), noisy.Tags*noisy.Rounds)
	}
	if na.Single.Mean() < 100 {
		t.Errorf("noisy truth singles %v < population", na.Single.Mean())
	}

	capt := baseCfg()
	capt.CaptureProb = 0.8
	cpt, err := Run(capt)
	if err != nil {
		t.Fatal(err)
	}
	if cpt.Slots.Mean() >= ca.Slots.Mean() {
		t.Error("capture did not reduce slot usage")
	}
}

func TestAccuracyImprovesWithStrength(t *testing.T) {
	acc := func(strength int) float64 {
		c := Config{
			Tags: 200, Seed: 9, Rounds: 6,
			Algorithm: AlgFSA, FrameSize: 100,
			Detector: DetQCD, Strength: strength,
		}
		agg, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		return agg.Accuracy.Mean()
	}
	a2, a8 := acc(2), acc(8)
	if !(a2 < a8) {
		t.Errorf("accuracy not increasing: strength2=%v strength8=%v", a2, a8)
	}
	if a8 < 0.99 {
		t.Errorf("strength-8 accuracy %v, paper reports ≈100%%", a8)
	}
	if math.Abs(a2-1) < 1e-9 {
		t.Error("strength-2 accuracy suspiciously perfect")
	}
}

func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, baseCfg()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunContextMatchesRun(t *testing.T) {
	c := baseCfg()
	plain, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := RunContext(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if plain.TimeMicros.Mean() != viaCtx.TimeMicros.Mean() ||
		plain.Slots.Mean() != viaCtx.Slots.Mean() {
		t.Error("RunContext with a background context diverged from Run")
	}
}

func TestRunContextDeadline(t *testing.T) {
	c := baseCfg()
	c.Tags = 2000
	c.Rounds = 64
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	if _, err := RunContext(ctx, c); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestCanonical(t *testing.T) {
	sparse := Config{Tags: 100, Algorithm: AlgBT, Detector: DetQCD}
	full := sparse
	full.IDBits = 64
	full.Rounds = 1
	full.FramePolicy = PolicyFixed
	full.Strength = 8
	full.CRCName = "CRC-32/IEEE"
	full.TauMicros = 1
	full.Workers = 13 // scheduling only: must not affect the canonical form
	if sparse.Canonical() != full.Canonical() {
		t.Errorf("canonical forms differ:\n%+v\n%+v", sparse.Canonical(), full.Canonical())
	}
	if got := sparse.Canonical().Workers; got != 0 {
		t.Errorf("canonical Workers = %d, want 0", got)
	}
}
