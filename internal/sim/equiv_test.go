package sim

import (
	"math"
	"os"
	"reflect"
	"testing"

	"repro/internal/obs/audit"
)

// equivCases are the paper's Table-VI workloads the in-repo harness
// covers. Cases III and IV (5000 and 50000 tags) take long enough in
// exact mode that they run through cmd/ksequiv in CI instead; set
// EQUIV_FULL=1 to include them here.
func equivCases(t *testing.T) map[string]Config {
	cases := map[string]Config{
		"case1-fsa-qcd": {Tags: 50, Seed: 42, Algorithm: AlgFSA, FrameSize: 30,
			Detector: DetQCD, Strength: 8},
		"case2-fsa-qcd": {Tags: 500, Seed: 42, Algorithm: AlgFSA, FrameSize: 300,
			Detector: DetQCD, Strength: 8},
		"case1-fsa-crccd": {Tags: 50, Seed: 42, Algorithm: AlgFSA, FrameSize: 30,
			Detector: DetCRCCD},
		"case1-edfsa": {Tags: 50, Seed: 42, Algorithm: AlgEDFSA, FrameSize: 64,
			Detector: DetQCD, Strength: 8},
		"case1-qadaptive": {Tags: 50, Seed: 42, Algorithm: AlgQAdaptive,
			Detector: DetQCD, Strength: 8},
	}
	if os.Getenv("EQUIV_FULL") != "" {
		cases["case3-fsa-qcd"] = Config{Tags: 5000, Seed: 42, Algorithm: AlgFSA,
			FrameSize: 3000, Detector: DetQCD, Strength: 8}
		cases["case4-fsa-qcd"] = Config{Tags: 50000, Seed: 42, Algorithm: AlgFSA,
			FrameSize: 30000, Detector: DetQCD, Strength: 8}
	}
	return cases
}

// TestStatEquivalence is the statistical-correctness acceptance test for
// ModeStat: for each workload, the exact and stat round distributions of
// slots, identification time and misidentification rate must be
// KS-indistinguishable. Seeds are fixed, so D is deterministic — a
// failure is a real distributional drift, not noise; alpha 0.01 keeps
// the threshold meaningful while leaving slack above the observed Ds.
func TestStatEquivalence(t *testing.T) {
	for name, cfg := range equivCases(t) {
		t.Run(name, func(t *testing.T) {
			rounds := 120
			if cfg.Tags >= 5000 {
				rounds = 40
			}
			rep, err := StatEquivalence(cfg, rounds, 0.01)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Pass() {
				t.Errorf("stat mode distribution drift:\n%s", rep)
			}
			// Guard against a vacuous pass where both engines return junk:
			// the slot means must be in the right ballpark of each other.
			for _, m := range rep.Metrics {
				if m.Name == "slots" && (m.ExactMean <= 0 || m.StatMean <= 0) {
					t.Errorf("degenerate slot samples: %+v", m)
				}
			}
		})
	}
}

func TestStatEquivalenceInputChecks(t *testing.T) {
	if _, err := StatEquivalence(Config{Tags: 10, Algorithm: AlgBT, Detector: DetQCD}, 20, 0.05); err == nil {
		t.Error("BT config accepted (stat mode cannot run it)")
	}
	if _, err := StatEquivalence(Config{Tags: 10, Algorithm: AlgFSA, FrameSize: 8, Detector: DetQCD}, 5, 0.05); err == nil {
		t.Error("5 rounds accepted (no KS power)")
	}
}

// TestStatModeValidate pins which configurations stat mode refuses.
func TestStatModeValidate(t *testing.T) {
	base := Config{Tags: 10, Algorithm: AlgFSA, FrameSize: 8, Detector: DetQCD, Mode: ModeStat}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid stat config rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Config){
		"bt":      func(c *Config) { c.Algorithm = AlgBT },
		"qt":      func(c *Config) { c.Algorithm = AlgQT },
		"ber":     func(c *Config) { c.BER = 1e-4 },
		"capture": func(c *Config) { c.CaptureProb = 0.5 },
		"unknown": func(c *Config) { c.Mode = "approximate" },
	} {
		c := base
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: invalid stat config accepted", name)
		}
	}
	// The canonical spelling of exact mode is the empty string, so both
	// spellings must validate and canonicalise identically.
	exact := Config{Tags: 10, Algorithm: AlgBT, Detector: DetQCD, Mode: ModeExact}
	if err := exact.Validate(); err != nil {
		t.Errorf("explicit exact mode rejected: %v", err)
	}
	if exact.Canonical().Mode != "" {
		t.Errorf("Canonical kept Mode = %q, want empty", exact.Canonical().Mode)
	}
}

// TestStatAggregateBitIdenticalAcrossWorkers extends the package's
// determinism contract to stat mode: per-round seeds are pre-drawn and
// each round re-seeds its pooled source, so worker count must not leak
// into the aggregate.
func TestStatAggregateBitIdenticalAcrossWorkers(t *testing.T) {
	cases := map[string]Config{
		"fsa": {Tags: 200, Seed: 42, Rounds: 8, Algorithm: AlgFSA,
			FrameSize: 128, Detector: DetQCD, Mode: ModeStat},
		"edfsa": {Tags: 200, Seed: 42, Rounds: 8, Algorithm: AlgEDFSA,
			FrameSize: 64, Detector: DetCRCCD, Mode: ModeStat},
		"qadaptive": {Tags: 200, Seed: 42, Rounds: 8, Algorithm: AlgQAdaptive,
			Detector: DetQCD, Mode: ModeStat},
	}
	for name, c := range cases {
		t.Run(name, func(t *testing.T) {
			var ref *Aggregate
			for _, w := range []int{1, 4} {
				cw := c
				cw.Workers = w
				agg, err := Run(cw)
				if err != nil {
					t.Fatal(err)
				}
				agg.Cfg.Workers = 0
				if ref == nil {
					ref = agg
					continue
				}
				if !reflect.DeepEqual(ref, agg) {
					t.Error("stat aggregate differs between Workers=1 and Workers=4")
				}
			}
		})
	}
}

// TestStatAuditThreeSigma is TestAuditThreeSigmaQCD for the stat
// engines: the Observe feed must give the audit layer the same analytic
// expectation model, and the batched Bernoulli coins must realise it —
// measured false singles within 3σ of Σ 2^-(l·(m-1)).
func TestStatAuditThreeSigma(t *testing.T) {
	a := withAuditor(t, audit.Options{ExemplarCap: 16})
	c := Config{
		Tags: 200, Seed: 42, Rounds: 80,
		Algorithm: AlgFSA, FrameSize: 64,
		Detector: DetQCD, Strength: 4,
		Mode: ModeStat,
	}
	if _, err := Run(c); err != nil {
		t.Fatal(err)
	}
	rep := a.Report()
	if len(rep.Detectors) != 1 {
		t.Fatalf("detectors = %+v, want just QCD-4", rep.Detectors)
	}
	d := rep.Detectors[0]
	if d.Detector != "QCD-4" || d.Strength != 4 {
		t.Fatalf("audited %q/%d, want QCD-4/4", d.Detector, d.Strength)
	}
	if d.TrueCollided == 0 || d.ExpectedStdDev == 0 {
		t.Fatalf("no collisions audited: %+v", d)
	}
	if d.FalseSingle == 0 {
		t.Fatalf("no false singles at l=4 over %d collided slots", d.TrueCollided)
	}
	diff := math.Abs(float64(d.FalseSingle) - d.ExpectedFalseSingles)
	if diff > 3*d.ExpectedStdDev {
		t.Errorf("false singles %d vs expected %.1f: |Δ|=%.1f exceeds 3σ=%.1f",
			d.FalseSingle, d.ExpectedFalseSingles, diff, 3*d.ExpectedStdDev)
	}
	if d.FalseCollision != 0 || d.FalseIdle != 0 {
		t.Errorf("impossible cells populated: %+v", d)
	}
}

// TestStatModeFasterThanExact pins the perf_opt headline at the sim
// layer with a generous margin (the bench gate enforces the strict 5x):
// a stat-mode run of the 500-tag Q-adaptive case must not be slower
// than exact mode.
func TestStatModeFasterThanExact(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	c := Config{Tags: 500, Seed: 42, Rounds: 30, Workers: 1,
		Algorithm: AlgQAdaptive, Detector: DetQCD}
	exact := c
	stat := c
	stat.Mode = ModeStat
	timeRun := func(cfg Config) float64 {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(res.NsPerOp())
	}
	et, st := timeRun(exact), timeRun(stat)
	if st > et {
		t.Errorf("stat mode slower than exact: %.0fns vs %.0fns", st, et)
	}
}
