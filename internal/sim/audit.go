package sim

// Shadow-oracle verdict auditing: when enabled, every slot verdict of
// every round is re-classified by a detect.Oracle (which reads the
// ground-truth responder count the reception already carries) and the
// confusion cell folded into the process-wide auditor. Like metric
// instrumentation, the disabled path costs one atomic pointer load per
// round and nothing per slot.

import (
	"sync/atomic"

	"repro/internal/bitstr"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/audit"
	"repro/internal/signal"
	"repro/internal/tagmodel"
)

// activeAuditor is the installed auditor, nil when auditing is off.
var activeAuditor atomic.Pointer[audit.Auditor]

// InstrumentAudit enables shadow-oracle verdict auditing process-wide:
// every subsequent round runs the oracle alongside its configured
// detector and folds each verdict into a's confusion matrix.
// Re-installing re-points recording; UninstrumentAudit stops it. The
// wrapper only observes — it draws nothing from any tag PRNG — so
// audited runs stay bit-identical to unaudited ones.
func InstrumentAudit(a *audit.Auditor) { activeAuditor.Store(a) }

// UninstrumentAudit disables verdict auditing.
func UninstrumentAudit() { activeAuditor.Store(nil) }

// auditedDetector wraps the configured detector so that every verdict
// is shadowed by the oracle's ground-truth classification.
type auditedDetector struct {
	detect.Detector
	oracle *detect.Oracle
	rec    *audit.Recorder
}

func (d auditedDetector) Classify(rx signal.Reception) signal.SlotType {
	declared := d.Detector.Classify(rx)
	d.rec.Observe(d.oracle.Classify(rx), declared, rx)
	return declared
}

// ContentionPayloadInto forwards the wrapped detector's scratch-payload
// fast path (detect.ScratchPayloader) so auditing does not force the
// slot engine off its zero-allocation route.
func (d auditedDetector) ContentionPayloadInto(t *tagmodel.Tag, scratch bitstr.BitString) bitstr.BitString {
	if sp, ok := d.Detector.(detect.ScratchPayloader); ok {
		return sp.ContentionPayloadInto(t, scratch)
	}
	return d.Detector.ContentionPayload(t)
}

// frameEvents builds a frame hook publishing one "frame" event per
// completed FSA frame onto the bus.
func frameEvents(bus *obs.Bus, round int) func(metrics.FrameInfo) {
	return func(fi metrics.FrameInfo) {
		bus.Publish("frame", map[string]any{
			"round":    round,
			"frame":    fi.Index,
			"size":     fi.Size,
			"idle":     fi.Idle,
			"single":   fi.Single,
			"collided": fi.Collided,
			"sim_us":   fi.EndMicros,
		})
	}
}

// combineFrameHooks folds any number of frame hooks into one (nil when
// none are installed, preserving the no-hook fast path in EndFrame).
func combineFrameHooks(hooks []func(metrics.FrameInfo)) func(metrics.FrameInfo) {
	switch len(hooks) {
	case 0:
		return nil
	case 1:
		return hooks[0]
	default:
		return func(fi metrics.FrameInfo) {
			for _, h := range hooks {
				h(fi)
			}
		}
	}
}
