package sim_test

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkRunRoundCaseII is the acceptance benchmark for the slot-engine
// fast path: one complete FSA round at the paper's case-II scale (n=500,
// F=256) under QCD-8 and CRC-CD. It exercises population setup, frame
// bucketing, and every per-slot kernel end to end.
func BenchmarkRunRoundCaseII(b *testing.B) {
	for _, d := range []struct{ name, det string }{
		{"qcd", sim.DetQCD},
		{"crccd", sim.DetCRCCD},
	} {
		b.Run(d.name, func(b *testing.B) {
			c := sim.Config{
				Tags: 500, Seed: 1, Rounds: 1,
				Algorithm: sim.AlgFSA, FrameSize: 256,
				Detector: d.det, Strength: 8,
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunRound(c, uint64(i)+1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
