package sim_test

// Golden determinism tests: for a fixed (Config, Seed), sim.Run aggregates
// must stay byte-identical across refactors of the slot engine. The files
// under testdata/ were generated at the seed state of the repository;
// any diff here means the PRNG draw sequence or the fold order changed,
// which invalidates cross-version comparisons of paper artifacts.
//
// Regenerate (only when an intentional semantic change is made) with:
//
//	UPDATE_GOLDEN=1 go test ./internal/sim -run TestGoldenAggregates

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/report"
	"repro/internal/sim"
)

var goldenCases = []struct {
	name string
	cfg  sim.Config
}{
	{"fsa_qcd", sim.Config{Tags: 200, Seed: 42, Rounds: 20, Algorithm: sim.AlgFSA, FrameSize: 128, Detector: sim.DetQCD, Strength: 8, ConfirmEmpty: true}},
	{"fsa_crccd", sim.Config{Tags: 150, Seed: 7, Rounds: 10, Algorithm: sim.AlgFSA, FrameSize: 128, Detector: sim.DetCRCCD}},
	{"bt_qcd", sim.Config{Tags: 100, Seed: 3, Rounds: 10, Algorithm: sim.AlgBT, Detector: sim.DetQCD}},
	{"qt_crccd", sim.Config{Tags: 64, Seed: 9, Rounds: 5, Algorithm: sim.AlgQT, Detector: sim.DetCRCCD}},
	{"edfsa_qcd", sim.Config{Tags: 200, Seed: 11, Rounds: 10, Algorithm: sim.AlgEDFSA, FrameSize: 64, Detector: sim.DetQCD}},
	{"qadaptive_oracle", sim.Config{Tags: 100, Seed: 13, Rounds: 5, Algorithm: sim.AlgQAdaptive, Detector: sim.DetOracle}},
	{"fsa_qcd_impaired", sim.Config{Tags: 100, Seed: 17, Rounds: 5, Algorithm: sim.AlgFSA, FrameSize: 64, Detector: sim.DetQCD, BER: 0.001, CaptureProb: 0.2}},
	{"fsa_qcd_strength32", sim.Config{Tags: 80, Seed: 23, Rounds: 5, Algorithm: sim.AlgFSA, FrameSize: 64, Detector: sim.DetQCD, Strength: 32}},
	{"bt_crccd_id96", sim.Config{Tags: 50, IDBits: 96, Seed: 29, Rounds: 5, Algorithm: sim.AlgBT, Detector: sim.DetCRCCD}},
}

func goldenJSON(t *testing.T, cfg sim.Config) []byte {
	t.Helper()
	agg, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(report.NewAggregateSummary(cfg.Canonical(), agg), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

func TestGoldenAggregates(t *testing.T) {
	update := os.Getenv("UPDATE_GOLDEN") != ""
	for _, c := range goldenCases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join("testdata", "golden_"+c.name+".json")
			got := goldenJSON(t, c.cfg)
			if update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Errorf("aggregate for %s diverged from the seed-state golden file %s;\n"+
					"the slot engine changed observable behaviour (PRNG draws or fold order)", c.name, path)
			}
		})
	}
}
