package sim

import (
	"context"
	"math"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/audit"
)

// withAuditor installs a fresh auditor for one test and guarantees the
// process-global hook is cleared afterwards.
func withAuditor(t *testing.T, o audit.Options) *audit.Auditor {
	t.Helper()
	a := audit.New(obs.NewRegistry(), o)
	InstrumentAudit(a)
	t.Cleanup(UninstrumentAudit)
	return a
}

// TestAuditThreeSigmaQCD is the acceptance check for the shadow oracle:
// over a seeded FSA run with QCD at l=4, the measured number of false
// singles must sit within 3σ of the analytic expectation Σ 2^-(l·(m-1))
// accumulated slot-by-slot (QCD Theorem 1). A detector drifting from
// the paper's model — or an auditor mis-accounting it — fails this.
func TestAuditThreeSigmaQCD(t *testing.T) {
	a := withAuditor(t, audit.Options{ExemplarCap: 16})
	c := Config{
		Tags: 200, Seed: 42, Rounds: 80,
		Algorithm: AlgFSA, FrameSize: 64,
		Detector: DetQCD, Strength: 4,
	}
	if _, err := Run(c); err != nil {
		t.Fatal(err)
	}
	rep := a.Report()
	if len(rep.Detectors) != 1 {
		t.Fatalf("detectors = %+v, want just qcd/4", rep.Detectors)
	}
	d := rep.Detectors[0]
	if d.Detector != "QCD-4" || d.Strength != 4 {
		t.Fatalf("audited %q/%d, want QCD-4/4", d.Detector, d.Strength)
	}
	if d.TrueCollided == 0 || d.ExpectedStdDev == 0 {
		t.Fatalf("no collisions audited: %+v", d)
	}
	// With l=4 a two-tag collision is missed with p=1/16: this run must
	// actually exercise misses, not vacuously pass on zeros.
	if d.FalseSingle == 0 {
		t.Fatalf("no false singles at l=4 over %d collided slots", d.TrueCollided)
	}
	diff := math.Abs(float64(d.FalseSingle) - d.ExpectedFalseSingles)
	if diff > 3*d.ExpectedStdDev {
		t.Errorf("false singles %d vs expected %.1f: |Δ|=%.1f exceeds 3σ=%.1f",
			d.FalseSingle, d.ExpectedFalseSingles, diff, 3*d.ExpectedStdDev)
	}
	// QCD never invents collisions or idles: it only ever misses them.
	if d.FalseCollision != 0 || d.FalseIdle != 0 {
		t.Errorf("impossible cells populated: %+v", d)
	}
	if len(rep.Exemplars) == 0 {
		t.Error("misses occurred but no exemplars captured")
	}
	for _, ex := range rep.Exemplars {
		if ex.Truth != "collided" || ex.Declared != "single" {
			t.Errorf("exemplar is not a false single: %+v", ex)
		}
		if ex.Responders < 2 {
			t.Errorf("false single with %d responders", ex.Responders)
		}
	}
}

// TestAuditDoesNotPerturbResults pins the observe-only contract: the
// audit wrapper draws nothing from any PRNG, so an audited run is
// bit-identical to an unaudited one.
func TestAuditDoesNotPerturbResults(t *testing.T) {
	c := baseCfg()
	c.Rounds = 6
	plain, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	withAuditor(t, audit.Options{})
	audited, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Slots.Mean() != audited.Slots.Mean() ||
		plain.TimeMicros.Mean() != audited.TimeMicros.Mean() ||
		plain.Delay.Mean() != audited.Delay.Mean() ||
		plain.Collided.Mean() != audited.Collided.Mean() {
		t.Error("enabling the audit changed simulation results")
	}
}

// TestAuditOracleDetectorIsAllCorrect audits the oracle against itself:
// every verdict must land in the correct cell.
func TestAuditOracleDetectorIsAllCorrect(t *testing.T) {
	a := withAuditor(t, audit.Options{})
	c := baseCfg()
	c.Detector = DetOracle
	c.Strength = 0
	if _, err := Run(c); err != nil {
		t.Fatal(err)
	}
	d := a.Report().Detectors[0]
	if d.FalseSingle != 0 || d.FalseCollision != 0 || d.FalseIdle != 0 {
		t.Errorf("oracle misclassified: %+v", d)
	}
	if d.Correct == 0 {
		t.Error("nothing audited")
	}
}

// TestRunContextPublishesTelemetry wires a bus through RunContext and
// checks the stream: one "round" event per round plus per-frame "frame"
// events carrying the frame accounting.
func TestRunContextPublishesTelemetry(t *testing.T) {
	bus := obs.NewBus(4096)
	sub := bus.Subscribe(4096, 0)
	c := baseCfg()
	c.Rounds = 3
	if _, err := RunContext(obs.WithBus(context.Background(), bus), c); err != nil {
		t.Fatal(err)
	}
	bus.Close()

	rounds, frames := 0, 0
	seen := make(map[int]bool)
	for ev := range sub.Events() {
		switch ev.Type {
		case "round":
			rounds++
			r, ok := ev.Data["round"].(int)
			if !ok || seen[r] {
				t.Errorf("bad or duplicate round event: %v", ev.Data)
			}
			seen[r] = true
			if ev.Data["rounds"] != 3 {
				t.Errorf("round event missing total: %v", ev.Data)
			}
			if s, ok := ev.Data["slots"].(int64); !ok || s <= 0 {
				t.Errorf("round event slots = %v", ev.Data["slots"])
			}
		case "frame":
			frames++
			if sz, ok := ev.Data["size"].(int); !ok || sz <= 0 {
				t.Errorf("frame event size = %v", ev.Data["size"])
			}
		default:
			t.Errorf("unexpected event type %q", ev.Type)
		}
	}
	if rounds != 3 {
		t.Errorf("round events = %d, want 3", rounds)
	}
	if frames < 3 {
		t.Errorf("frame events = %d, want at least one per round", frames)
	}
	if bus.Dropped() != 0 {
		t.Errorf("events dropped during test: %d", bus.Dropped())
	}
}

// TestAuditEventsOnBus runs audited with a bus: every false single
// surfaces as an "audit" event with slot coordinates.
func TestAuditEventsOnBus(t *testing.T) {
	a := withAuditor(t, audit.Options{})
	bus := obs.NewBus(8192)
	sub := bus.Subscribe(8192, 0)
	c := Config{
		Tags: 200, Seed: 7, Rounds: 20,
		Algorithm: AlgFSA, FrameSize: 64,
		Detector: DetQCD, Strength: 4,
	}
	if _, err := RunContext(obs.WithBus(context.Background(), bus), c); err != nil {
		t.Fatal(err)
	}
	bus.Close()

	hits := 0
	for ev := range sub.Events() {
		if ev.Type != "audit" {
			continue
		}
		hits++
		if ev.Data["detector"] != "QCD-4" || ev.Data["declared"] != "single" {
			t.Errorf("audit event = %v", ev.Data)
		}
	}
	if want := a.Report().Detectors[0].FalseSingle; uint64(hits) != want {
		t.Errorf("audit events = %d, confusion matrix counted %d", hits, want)
	}
	if hits == 0 {
		t.Error("no audit hits at l=4 (test has no power)")
	}
}
