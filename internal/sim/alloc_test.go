//go:build !race

package sim

import "testing"

// TestPooledRoundSteadyStateAllocs guards the cross-round reuse path: a
// warmed RoundScratch must run a full round with a small, bounded number
// of allocations (detector construction and map housekeeping — nothing
// proportional to slots or tags). Excluded under -race, whose
// instrumentation changes allocation behaviour.
func TestPooledRoundSteadyStateAllocs(t *testing.T) {
	cases := map[string]Config{
		"fsa/qcd":   {Tags: 100, Algorithm: AlgFSA, FrameSize: 60, Detector: DetQCD},
		"fsa/crccd": {Tags: 100, Algorithm: AlgFSA, FrameSize: 60, Detector: DetCRCCD},
		"qadaptive": {Tags: 100, Algorithm: AlgQAdaptive, Detector: DetQCD},
		"edfsa":     {Tags: 100, Algorithm: AlgEDFSA, FrameSize: 64, Detector: DetQCD},
		"qt":        {Tags: 100, Algorithm: AlgQT, Detector: DetCRCCD},
	}
	for name, c := range cases {
		t.Run(name, func(t *testing.T) {
			c = c.withDefaults()
			rs := new(RoundScratch)
			run := func() {
				if _, err := runRound(c, 12345, roundEnv{}, rs); err != nil {
					t.Fatal(err)
				}
			}
			run() // warm the scratch
			if allocs := testing.AllocsPerRun(5, run); allocs > 100 {
				t.Errorf("steady-state round allocations = %v, want <= 100", allocs)
			}
		})
	}
}

// TestStatRoundSteadyStateAllocs is the same guard for the stat round
// path with a far tighter budget: the engines themselves are
// allocation-free on a warmed scratch (pinned in internal/aloha), so
// all that remains per round is runRoundStat's model/policy plumbing —
// a handful of allocations, independent of tags and slots.
func TestStatRoundSteadyStateAllocs(t *testing.T) {
	cases := map[string]Config{
		"fsa/qcd":   {Tags: 500, Algorithm: AlgFSA, FrameSize: 300, Detector: DetQCD, Mode: ModeStat},
		"fsa/crccd": {Tags: 500, Algorithm: AlgFSA, FrameSize: 300, Detector: DetCRCCD, Mode: ModeStat},
		"qadaptive": {Tags: 500, Algorithm: AlgQAdaptive, Detector: DetQCD, Mode: ModeStat},
		"edfsa":     {Tags: 500, Algorithm: AlgEDFSA, FrameSize: 256, Detector: DetQCD, Mode: ModeStat},
	}
	for name, c := range cases {
		t.Run(name, func(t *testing.T) {
			c = c.withDefaults()
			rs := new(RoundScratch)
			run := func() {
				if _, err := runRound(c, 12345, roundEnv{}, rs); err != nil {
					t.Fatal(err)
				}
			}
			run() // warm the scratch
			if allocs := testing.AllocsPerRun(5, run); allocs > 8 {
				t.Errorf("steady-state stat round allocations = %v, want <= 8", allocs)
			}
		})
	}
}
