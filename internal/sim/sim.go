// Package sim orchestrates Monte-Carlo identification experiments: it
// builds tag populations, wires an anti-collision algorithm to a collision
// detector, fans the paper's 100 repetition rounds out over a worker pool,
// and folds the per-round sessions into deterministic aggregates.
//
// Determinism: round r draws its seed from the r-th output of a parent
// PRNG before any worker starts, and per-round results are folded in round
// order after all workers finish, so the aggregate is bit-identical
// regardless of GOMAXPROCS or scheduling.
package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/air"
	"repro/internal/aloha"
	"repro/internal/btree"
	"repro/internal/crc"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/audit"
	"repro/internal/prng"
	"repro/internal/qtree"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/tagmodel"
	"repro/internal/timing"
)

// Algorithm names accepted by Config.
const (
	AlgFSA       = "fsa"
	AlgBT        = "bt"
	AlgQAdaptive = "qadaptive"
	AlgQT        = "qt"
	AlgEDFSA     = "edfsa" // enhanced dynamic FSA; FrameSize acts as the frame cap
)

// Detector names accepted by Config.
const (
	DetQCD    = "qcd"
	DetCRCCD  = "crccd"
	DetOracle = "oracle"
)

// Frame policy names for FSA.
const (
	PolicyFixed      = "fixed"
	PolicySchoute    = "schoute"
	PolicyLowerBound = "lowerbound"
	PolicyOptimal    = "optimal"
)

// Simulation modes accepted by Config.Mode.
//
// ModeExact is the default: per-tag PRNG streams consumed in population
// index order, bit-identical across releases and pinned by the golden
// tests. ModeStat is the opt-in vectorised Monte-Carlo mode: slot draws
// are bulk-filled per frame and detector verdicts evaluate over
// word-packed occupancy masks (see internal/aloha's stat engines).
// Stat-mode aggregates are still deterministic in (Config, Seed) and
// bit-identical across worker counts, but follow a different draw
// sequence than exact mode; the two agree distributionally (the KS
// equivalence harness in this package pins that), not draw for draw.
const (
	ModeExact = "exact"
	ModeStat  = "stat"
)

// Config describes one experiment configuration.
type Config struct {
	Tags   int    // population size n
	IDBits int    // tag ID length l_id (default 64)
	Seed   uint64 // master seed
	Rounds int    // Monte-Carlo repetitions (paper: 100)

	Algorithm   string // fsa | bt | qadaptive | qt
	FrameSize   int    // FSA frame length F (Table VI)
	FramePolicy string // fixed | schoute | lowerbound | optimal (default fixed)

	Detector string // qcd | crccd | oracle
	Strength int    // QCD strength l (default 8)
	CRCName  string // CRC preset for crccd (default CRC-32/IEEE)

	// Mode selects the simulation fidelity: ModeExact (the default; ""
	// means exact) or the vectorised ModeStat. Mode is part of the
	// canonical configuration — the result cache never serves one mode's
	// aggregate for the other. The canonical spelling of exact mode is
	// the empty string, so pre-Mode configurations keep their canonical
	// hashes and golden serialisations.
	Mode string `json:",omitempty"`

	TauMicros float64 // per-bit airtime (default 1 μs)
	Workers   int     // parallel rounds (default GOMAXPROCS)

	// ConfirmEmpty makes FSA readers terminate only after a fully idle
	// frame (how a real reader detects an empty field; the paper's
	// Table VII idle counts include this frame).
	ConfirmEmpty bool

	// BER and CaptureProb apply a non-ideal channel to FSA sessions
	// (bit errors fail the self-checks closed; captures singulate one
	// tag out of a collision). Zero means the ideal channel.
	BER         float64
	CaptureProb float64
}

// withDefaults fills zero fields with the paper's defaults.
func (c Config) withDefaults() Config {
	if c.IDBits == 0 {
		c.IDBits = 64
	}
	if c.Rounds == 0 {
		c.Rounds = 1
	}
	if c.FramePolicy == "" {
		c.FramePolicy = PolicyFixed
	}
	if c.Strength == 0 {
		c.Strength = 8
	}
	if c.CRCName == "" {
		c.CRCName = crc.CRC32IEEE.Name
	}
	if c.TauMicros == 0 {
		c.TauMicros = 1
	}
	if c.Mode == ModeExact {
		c.Mode = "" // canonical spelling of the default mode
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Canonical returns the configuration with every defaulted field filled
// in and scheduling-only fields cleared, so that two configurations
// describing the same experiment compare (and hash) equal. Workers is
// zeroed because the aggregate is bit-identical regardless of
// parallelism (see the package docs).
func (c Config) Canonical() Config {
	c = c.withDefaults()
	c.Workers = 0
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Tags < 1 {
		return fmt.Errorf("sim: Tags = %d, need at least 1", c.Tags)
	}
	if c.Rounds < 1 {
		return fmt.Errorf("sim: Rounds = %d, need at least 1", c.Rounds)
	}
	switch c.Algorithm {
	case AlgFSA:
		if c.FramePolicy == PolicyFixed && c.FrameSize < 1 {
			return fmt.Errorf("sim: FSA with fixed policy needs FrameSize >= 1")
		}
	case AlgEDFSA:
		if c.FrameSize < 1 {
			return fmt.Errorf("sim: EDFSA needs FrameSize >= 1 (the frame cap)")
		}
	case AlgBT, AlgQAdaptive, AlgQT:
	default:
		return fmt.Errorf("sim: unknown algorithm %q", c.Algorithm)
	}
	switch c.Detector {
	case DetQCD:
		if c.Strength < 1 || c.Strength > 64 {
			return fmt.Errorf("sim: QCD strength %d out of [1,64]", c.Strength)
		}
	case DetCRCCD:
		if _, ok := crc.ByName(c.CRCName); !ok {
			return fmt.Errorf("sim: unknown CRC preset %q", c.CRCName)
		}
	case DetOracle:
	default:
		return fmt.Errorf("sim: unknown detector %q", c.Detector)
	}
	switch c.Mode {
	case "", ModeExact:
	case ModeStat:
		switch c.Algorithm {
		case AlgFSA, AlgEDFSA, AlgQAdaptive:
		default:
			return fmt.Errorf("sim: stat mode does not support algorithm %q (framed-ALOHA only)", c.Algorithm)
		}
		if c.BER > 0 || c.CaptureProb > 0 {
			return fmt.Errorf("sim: stat mode models the ideal channel only (BER/CaptureProb must be 0)")
		}
	default:
		return fmt.Errorf("sim: unknown mode %q", c.Mode)
	}
	return nil
}

// BuildDetector constructs the configured detector.
func BuildDetector(c Config) (detect.Detector, error) {
	c = c.withDefaults()
	switch c.Detector {
	case DetQCD:
		return detect.NewQCD(c.Strength, c.IDBits), nil
	case DetCRCCD:
		p, ok := crc.ByName(c.CRCName)
		if !ok {
			return nil, fmt.Errorf("sim: unknown CRC preset %q", c.CRCName)
		}
		return detect.NewCRCCD(p, c.IDBits), nil
	case DetOracle:
		return detect.NewOracle(1, c.IDBits), nil
	default:
		return nil, fmt.Errorf("sim: unknown detector %q", c.Detector)
	}
}

func buildPolicy(c Config) (aloha.FramePolicy, error) {
	switch c.FramePolicy {
	case PolicyFixed:
		return aloha.NewFixed(c.FrameSize), nil
	case PolicySchoute:
		f := c.FrameSize
		if f < 1 {
			f = c.Tags
		}
		return aloha.NewSchoute(f), nil
	case PolicyLowerBound:
		f := c.FrameSize
		if f < 1 {
			f = c.Tags
		}
		return aloha.NewLowerBound(f), nil
	case PolicyOptimal:
		return aloha.Optimal{N: c.Tags}, nil
	default:
		return nil, fmt.Errorf("sim: unknown frame policy %q", c.FramePolicy)
	}
}

// RunRound executes one complete identification session for round index r
// and returns its metrics. It is deterministic in (Config, roundSeed).
func RunRound(c Config, roundSeed uint64) (*metrics.Session, error) {
	// A fresh scratch per call: the returned session aliases it, so the
	// public single-round API must never recycle one underneath a caller.
	return runRound(c, roundSeed, roundEnv{}, new(RoundScratch))
}

// RoundScratch pools the complete working set of one identification
// round — the population (tags, ID dedup sets, per-tag PRNG streams),
// the slot scratch (channel and payload buffers), the frame scheduler
// buckets, the query-tree arena, the metrics session's delay/log
// slices, and the impairment's PRNG stream. RunContext holds one per
// worker, so an experiment allocates its round working set Workers
// times instead of Rounds times; RunRound allocates a fresh one per
// call. Sessions produced with a scratch alias it and are only valid
// until the scratch's next round. Not safe for concurrent use.
type RoundScratch struct {
	pop    tagmodel.PopScratch
	slot   air.SlotScratch
	frame  sched.Frame
	groups sched.Frame
	qt     qtree.Reuse
	sess   metrics.Session
	imp    air.Impairment
	impRng prng.Source
	stat   aloha.StatScratch
	rng    prng.Source
	idx    sched.IndexFrame
}

// IndexFrame lends out the scratch's handle-based frame scheduler, the
// piece engines that keep tags in packed stores (internal/scenario's
// streaming readers) borrow in place of the object-based Frame. The
// same aliasing rule applies: frames built on it are valid only until
// the scratch's next use.
func (rs *RoundScratch) IndexFrame() *sched.IndexFrame { return &rs.idx }

// ScratchPool is a concurrency-safe free list of RoundScratch, letting
// callers that run many experiments back to back (the sweep engine, a
// busy service worker) reuse each scratch's population, slot, scheduler
// and session storage across whole runs instead of allocating it per
// run. Scratch contents never influence results — every round rebuilds
// its state from the round seed — so pooling is draw-neutral. The zero
// value is ready to use; a nil *ScratchPool is valid and simply
// allocates fresh scratches.
type ScratchPool struct {
	mu   sync.Mutex
	free []*RoundScratch
}

// Get returns a pooled scratch, or a fresh one when the pool is empty
// or nil.
func (p *ScratchPool) Get() *RoundScratch {
	if p == nil {
		return new(RoundScratch)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		rs := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return rs
	}
	return new(RoundScratch)
}

// Put returns a scratch to the pool. The caller must not use rs (or any
// session aliasing it) afterwards.
func (p *ScratchPool) Put(rs *RoundScratch) {
	if p == nil || rs == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free = append(p.free, rs)
}

// roundEnv carries per-round observability context into runRound: the
// round's index, the run tracer (nil = disabled) with the worker's
// track id, and the live event bus (nil = disabled). All of it is
// optional and none of it affects the simulated outcome.
type roundEnv struct {
	round int
	tr    *obs.Tracer
	bus   *obs.Bus
	tid   int
}

// runRound is RunRound with optional observability wiring. When metric
// instrumentation is active (Instrument) the detector is wrapped to
// time verdicts and the finished session is folded into the registry;
// when auditing is active (InstrumentAudit) it is additionally wrapped
// to shadow every verdict with the oracle; tracer and bus receive
// per-frame spans and events for the FSA reader.
func runRound(c Config, roundSeed uint64, env roundEnv, rs *RoundScratch) (*metrics.Session, error) {
	c = c.withDefaults()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if c.Mode == ModeStat {
		return runRoundStat(c, roundSeed, env, rs)
	}
	rng := prng.New(roundSeed)
	pop := rs.pop.NewPopulation(c.Tags, c.IDBits, rng)
	det, err := BuildDetector(c)
	if err != nil {
		return nil, err
	}
	m := instr.Load()
	if m != nil {
		det = timedDetector{Detector: det, h: m.detLatency}
	}
	var rec *audit.Recorder
	if a := activeAuditor.Load(); a != nil {
		strength := 0
		if c.Detector == DetQCD {
			strength = c.Strength
		}
		rec = a.Recorder(det.Name(), strength, env.round, env.bus)
		det = auditedDetector{Detector: det, oracle: detect.NewOracle(1, c.IDBits), rec: rec}
	}
	tm := timing.Model{TauMicros: c.TauMicros}
	// The reuse fields all come from the round scratch: slot channels,
	// payload buffers, frame buckets, the tree arena and the session's
	// slices are allocated at most once per scratch and reused for every
	// slot of every round the scratch serves.
	opts := aloha.Options{
		Scratch: &rs.slot, Frame: &rs.frame, Groups: &rs.groups, Session: &rs.sess,
	}

	var s *metrics.Session
	switch c.Algorithm {
	case AlgFSA:
		policy, err := buildPolicy(c)
		if err != nil {
			return nil, err
		}
		opts.ConfirmEmpty = c.ConfirmEmpty
		if c.BER > 0 || c.CaptureProb > 0 {
			// Same split draw as the historical rng.Split(), minus the
			// allocation; the stream lands in the pooled source.
			rng.SplitInto(&rs.impRng)
			rs.imp = air.Impairment{BER: c.BER, CaptureProb: c.CaptureProb, Rng: &rs.impRng}
			opts.Impairment = &rs.imp
		}
		var hooks []func(metrics.FrameInfo)
		if env.tr.Enabled() {
			hooks = append(hooks, frameTracer(env.tr, env.tid))
		}
		if rec != nil {
			hooks = append(hooks, func(metrics.FrameInfo) { rec.EndFrame() })
		}
		if env.bus.Enabled() {
			hooks = append(hooks, frameEvents(env.bus, env.round))
		}
		opts.FrameHook = combineFrameHooks(hooks)
		s = aloha.RunWithOptions(pop, det, policy, tm, opts)
	case AlgEDFSA:
		s = aloha.RunEDFSAWithOptions(pop, det, aloha.EDFSAConfig{MaxFrame: c.FrameSize}, tm, opts)
	case AlgBT:
		s = btree.Run(pop, det, tm)
	case AlgQAdaptive:
		s = aloha.RunQAdaptiveWithOptions(pop, det, aloha.DefaultQConfig(), tm, opts)
	case AlgQT:
		s = qtree.Run(pop, det, tm, qtree.Options{
			Scratch: &rs.slot, Reuse: &rs.qt, Session: &rs.sess,
		}).Session
	default:
		return nil, fmt.Errorf("sim: unknown algorithm %q", c.Algorithm)
	}
	if m != nil {
		m.record(s)
	}
	return s, nil
}

// Aggregate is the cross-round summary of one configuration. Every field
// accumulates one observation per round except Delay, which accumulates
// one observation per identified tag over all rounds.
type Aggregate struct {
	Cfg Config

	// Completed counts the rounds folded in. It equals Cfg.Rounds for a
	// full run and may be smaller for the partial aggregate RunContext
	// returns alongside a cancellation error.
	Completed int

	Idle, Single, Collided stats.Accumulator // slots by ground truth
	Frames, Slots          stats.Accumulator
	Throughput             stats.Accumulator // λ per round
	TimeMicros, Bits       stats.Accumulator
	Accuracy               stats.Accumulator // Figure-5 metric per round
	UR                     stats.Accumulator // Table-IX metric per round
	FalseSingle, Phantom   stats.Accumulator

	DelayMean stats.Accumulator // per-round mean identification delay
	Delay     stats.Accumulator // all tags, all rounds
}

// roundFold is the per-round summary a worker extracts from its pooled
// session the moment the round finishes — everything Aggregate.fold
// needs, copied out by value, so the session's storage can be recycled
// for the worker's next round while the final fold still happens in
// round order. The per-round delay accumulator is built in the worker
// (AddAll in identification order, exactly as fold used to), so the
// floating-point operation sequence — and therefore the aggregate — is
// bit-identical to folding the full sessions.
type roundFold struct {
	census     metrics.Census
	detection  metrics.Detection
	bits       int64
	timeMicros float64
	identified int64
	delay      stats.Accumulator
}

// ur mirrors metrics.Session.UR on the summary's tallies.
func (f roundFold) ur(idBits int) float64 {
	if f.bits == 0 {
		return 0
	}
	return float64(f.identified*int64(idBits)) / float64(f.bits)
}

// summarizeRound extracts a session's fold summary.
func summarizeRound(s *metrics.Session) roundFold {
	f := roundFold{
		census:     s.Census,
		detection:  s.Detection,
		bits:       s.Bits,
		timeMicros: s.TimeMicros,
		identified: s.TagsIdentified,
	}
	f.delay.AddAll(s.DelaysMicros)
	return f
}

type roundResult struct {
	fold roundFold
	ok   bool
	err  error
}

// Run executes Config.Rounds independent sessions, in parallel up to
// Config.Workers, and folds them deterministically.
func Run(c Config) (*Aggregate, error) {
	return RunContext(context.Background(), c)
}

// RunContext is Run honouring a context: cancellation is checked between
// rounds (a round, once started, runs to completion), so long experiments
// can be aborted by a timeout or an explicit cancel. On cancellation it
// returns ctx.Err() together with a partial aggregate folding every
// round that did complete (Aggregate.Completed says how many), so
// callers can flush partial results instead of discarding the work.
//
// When the context carries an obs tracer (obs.WithTracer), the run
// emits one experiment span plus per-round spans with slot censuses
// attached — and per-frame spans for the FSA reader — onto it. When it
// carries an event bus (obs.WithBus), the run publishes one "round"
// progress event per completed round and one "frame" event per FSA
// frame (plus "audit" events when auditing is on), which is what the
// server streams over SSE.
func RunContext(ctx context.Context, c Config) (*Aggregate, error) {
	return RunContextPool(ctx, c, nil)
}

// RunContextPool is RunContext drawing per-worker round scratch from sp
// instead of allocating it, so back-to-back runs (sweep cells) reuse the
// same working sets. A nil pool reproduces RunContext exactly; the
// aggregate is bit-identical either way.
func RunContextPool(ctx context.Context, c Config, sp *ScratchPool) (*Aggregate, error) {
	c = c.withDefaults()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	tr := obs.TracerFrom(ctx)
	bus := obs.BusFrom(ctx)
	sc := obs.SpanFrom(ctx)
	if sc.Valid() && sc.TraceID() != "" {
		// Stamp the service trace ID into the ring trace so the two can
		// be joined after the fact (the server merges them at export).
		tr.Instant("sim", "trace-link", 0, map[string]any{"trace": sc.TraceID()})
	}
	expSpan := tr.StartSpan("sim", "experiment", 0)
	// Pre-draw per-round seeds so parallel scheduling cannot affect them.
	parent := prng.New(c.Seed)
	seeds := make([]uint64, c.Rounds)
	for i := range seeds {
		seeds[i] = parent.Uint64()
	}

	results := make([]roundResult, c.Rounds)
	var wg sync.WaitGroup
	var completed atomic.Int64
	work := make(chan int)
	workers := c.Workers
	if workers > c.Rounds {
		workers = c.Rounds
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			// One scratch per worker: every round this worker runs reuses
			// the same population, slot, scheduler and session storage, so
			// the summary must be extracted before the next round starts.
			// With a pool the scratch outlives this run too.
			rs := sp.Get()
			defer sp.Put(rs)
			for r := range work {
				if ctx.Err() != nil {
					continue // drain without computing
				}
				sp := tr.StartSpan("sim", "round", tid)
				rsp := sc.Start("sim", "round")
				s, err := runRound(c, seeds[r], roundEnv{round: r, tr: tr, bus: bus, tid: tid}, rs)
				if s == nil {
					sp.End(map[string]any{"round": r, "error": fmt.Sprint(err)})
					if rsp.Live() {
						rsp.End(obs.SA("round", r), obs.SA("error", fmt.Sprint(err)))
					} else {
						rsp.End()
					}
					results[r] = roundResult{err: err}
					continue
				}
				sp.End(roundArgs(r, s))
				if rsp.Live() {
					rsp.End(obs.SA("round", r), obs.SA("slots", s.Census.Slots()),
						obs.SA("identified", s.TagsIdentified))
				} else {
					rsp.End()
				}
				results[r] = roundResult{fold: summarizeRound(s), ok: true}
				done := completed.Add(1)
				if bus.Enabled() {
					bus.Publish("round", map[string]any{
						"round":      r,
						"completed":  done,
						"rounds":     c.Rounds,
						"slots":      s.Census.Slots(),
						"identified": s.TagsIdentified,
						"sim_us":     s.TimeMicros,
					})
				}
			}
		}(w + 1) // track 0 is the experiment span
	}
feed:
	for r := 0; r < c.Rounds; r++ {
		select {
		case work <- r:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()

	if ctxErr := ctx.Err(); ctxErr != nil {
		// Fold whatever finished so the caller can flush partial results.
		// The workers' completion counter is the authoritative count — it
		// was incremented once per successful round, bus or no bus — and
		// matches what the partial fold accumulates.
		agg := &Aggregate{Cfg: c}
		for _, res := range results {
			if res.ok {
				agg.foldRound(res.fold)
			}
		}
		expSpan.End(map[string]any{
			"algorithm": c.Algorithm, "tags": c.Tags,
			"rounds_done": completed.Load(), "rounds": c.Rounds, "aborted": true,
		})
		return agg, ctxErr
	}
	agg := &Aggregate{Cfg: c}
	for r, res := range results {
		if res.err != nil {
			expSpan.End(map[string]any{"algorithm": c.Algorithm, "error": res.err.Error()})
			return nil, fmt.Errorf("sim: round %d: %w", r, res.err)
		}
		agg.foldRound(res.fold)
	}
	expSpan.End(map[string]any{
		"algorithm": c.Algorithm, "tags": c.Tags,
		"rounds_done": agg.Completed, "rounds": c.Rounds,
	})
	return agg, nil
}

// fold accumulates one round's full session; foldRound is the same fold
// from a pre-extracted summary. Both produce identical aggregates: the
// derived quantities (throughput, accuracy, UR, delay accumulator) are
// computed from the same integer tallies by the same expressions.
func (a *Aggregate) fold(s *metrics.Session) {
	a.foldRound(summarizeRound(s))
}

func (a *Aggregate) foldRound(f roundFold) {
	a.Completed++
	a.Idle.Add(float64(f.census.Idle))
	a.Single.Add(float64(f.census.Single))
	a.Collided.Add(float64(f.census.Collided))
	a.Frames.Add(float64(f.census.Frames))
	a.Slots.Add(float64(f.census.Slots()))
	a.Throughput.Add(f.census.Throughput())
	a.TimeMicros.Add(f.timeMicros)
	a.Bits.Add(float64(f.bits))
	a.Accuracy.Add(f.detection.Accuracy())
	a.UR.Add(f.ur(a.Cfg.IDBits))
	a.FalseSingle.Add(float64(f.detection.FalseSingle))
	a.Phantom.Add(float64(f.detection.Phantom))

	if f.delay.N() > 0 {
		a.DelayMean.Add(f.delay.Mean())
	}
	a.Delay.Merge(&f.delay)
}
