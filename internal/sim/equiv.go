package sim

import (
	"fmt"
	"strings"

	"repro/internal/prng"
	"repro/internal/stats"
)

// This file is the statistical-correctness harness for ModeStat. Stat
// mode deliberately abandons exact mode's draw sequence, so "correct"
// cannot mean bit-identical; it means the two modes sample the same
// distributions. The harness runs the same configuration through both
// engines round by round, collects the per-round observables the paper
// reports (total slots, identification time, misidentification rate),
// and applies a two-sample Kolmogorov–Smirnov test per observable with
// a fixed-alpha critical value, so a seeded run has one deterministic
// pass/fail bound instead of a flaky p-value threshold.

// EquivMetric is one observable's exact-vs-stat comparison.
type EquivMetric struct {
	Name      string  // observable ("slots", "time_us", "misid_rate")
	D         float64 // two-sample KS statistic
	Critical  float64 // rejection threshold at the harness alpha
	ExactMean float64
	StatMean  float64
}

// Pass reports whether the observable's distributions are
// indistinguishable at the harness significance level.
func (m EquivMetric) Pass() bool { return m.D <= m.Critical }

// EquivReport is the result of one StatEquivalence run.
type EquivReport struct {
	Cfg     Config
	Rounds  int
	Alpha   float64
	Metrics []EquivMetric
}

// Pass reports whether every observable passed.
func (r *EquivReport) Pass() bool {
	for _, m := range r.Metrics {
		if !m.Pass() {
			return false
		}
	}
	return true
}

// String renders one line per observable, for harness logs.
func (r *EquivReport) String() string {
	var b strings.Builder
	for _, m := range r.Metrics {
		verdict := "ok"
		if !m.Pass() {
			verdict = "REJECT"
		}
		fmt.Fprintf(&b, "%-10s D=%.4f crit=%.4f exact=%.1f stat=%.1f %s\n",
			m.Name, m.D, m.Critical, m.ExactMean, m.StatMean, verdict)
	}
	return b.String()
}

// equivSamples holds one mode's per-round observable samples.
type equivSamples struct {
	slots, timeUs, misid []float64
}

// collect runs cfg (whose Mode is already set) for the given seeds and
// extracts one sample of each observable per round.
func collect(cfg Config, seeds []uint64) (equivSamples, error) {
	s := equivSamples{
		slots:  make([]float64, 0, len(seeds)),
		timeUs: make([]float64, 0, len(seeds)),
		misid:  make([]float64, 0, len(seeds)),
	}
	rs := new(RoundScratch)
	for _, seed := range seeds {
		sess, err := runRound(cfg, seed, roundEnv{}, rs)
		if err != nil {
			return s, err
		}
		s.slots = append(s.slots, float64(sess.Census.Slots()))
		s.timeUs = append(s.timeUs, sess.TimeMicros)
		rate := 0.0
		if tc := sess.Detection.TrueCollided; tc > 0 {
			rate = float64(sess.Detection.FalseSingle) / float64(tc)
		}
		s.misid = append(s.misid, rate)
	}
	return s, nil
}

// StatEquivalence runs cfg for rounds rounds in exact mode and rounds
// rounds in stat mode and KS-tests each observable at significance
// alpha. cfg.Mode and cfg.Rounds are ignored; the configuration must
// otherwise be valid in both modes (framed ALOHA, ideal channel). The
// result is deterministic in (cfg, rounds): seeds derive from cfg.Seed
// exactly as Run's round seeds do.
func StatEquivalence(cfg Config, rounds int, alpha float64) (*EquivReport, error) {
	if rounds < 10 {
		return nil, fmt.Errorf("sim: StatEquivalence needs >= 10 rounds, got %d", rounds)
	}
	cfg = cfg.withDefaults()
	exact := cfg
	exact.Mode = ""
	stat := cfg
	stat.Mode = ModeStat
	if err := stat.Validate(); err != nil {
		return nil, err
	}

	// Same seed schedule as RunContext so the harness exercises the very
	// rounds an experiment would run.
	parent := prng.New(cfg.Seed)
	seeds := make([]uint64, rounds)
	for i := range seeds {
		seeds[i] = parent.Uint64()
	}

	es, err := collect(exact, seeds)
	if err != nil {
		return nil, fmt.Errorf("sim: equivalence exact runs: %w", err)
	}
	ss, err := collect(stat, seeds)
	if err != nil {
		return nil, fmt.Errorf("sim: equivalence stat runs: %w", err)
	}

	crit := stats.KSCriticalValue(alpha, rounds, rounds)
	rep := &EquivReport{Cfg: stat.Canonical(), Rounds: rounds, Alpha: alpha}
	for _, obs := range []struct {
		name        string
		exact, stat []float64
	}{
		{"slots", es.slots, ss.slots},
		{"time_us", es.timeUs, ss.timeUs},
		{"misid_rate", es.misid, ss.misid},
	} {
		rep.Metrics = append(rep.Metrics, EquivMetric{
			Name:      obs.name,
			D:         stats.KolmogorovSmirnov(obs.exact, obs.stat),
			Critical:  crit,
			ExactMean: mean(obs.exact),
			StatMean:  mean(obs.stat),
		})
	}
	return rep, nil
}

func mean(xs []float64) float64 {
	var a stats.Accumulator
	a.AddAll(xs)
	return a.Mean()
}
