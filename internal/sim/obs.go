package sim

// This file is the simulator's observability wiring: metric series and
// per-round / per-frame trace emission. All of it is dormant until
// Instrument is called (metrics) or a tracer travels in via context
// (tracing); the dormant path costs one atomic pointer load per round
// and allocates nothing, which the root obs benchmark guards.

import (
	"sync/atomic"
	"time"

	"repro/internal/bitstr"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/signal"
	"repro/internal/tagmodel"
)

// simSeries are the simulator-level metric handles, registered on one
// obs.Registry by Instrument.
type simSeries struct {
	rounds        *obs.Counter
	slotsIdle     *obs.Counter
	slotsSingle   *obs.Counter
	slotsCollided *obs.Counter
	frames        *obs.Counter
	identified    *obs.Counter
	detLatency    *obs.Histogram
}

// instr is the active instrumentation, nil when disabled. A single
// atomic pointer so RunRound's hot path pays one load.
var instr atomic.Pointer[simSeries]

// detectorLatencyBuckets bound the per-verdict classification latency
// histogram, in seconds: verdicts are nanosecond-to-microsecond scale.
var detectorLatencyBuckets = []float64{
	1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 1e-4, 1e-3,
}

// Instrument registers the simulator's metric series on reg and starts
// recording into them from every subsequent RunRound, process-wide.
// Calling it again (e.g. with a fresh registry) re-points recording at
// the new series; Uninstrument stops recording entirely.
func Instrument(reg *obs.Registry) {
	const slotsHelp = "Slots simulated, by ground-truth type."
	instr.Store(&simSeries{
		rounds:        reg.Counter("sim_rounds_total", "Identification rounds completed."),
		slotsIdle:     reg.Counter("sim_slots_total", slotsHelp, obs.L("type", "idle")),
		slotsSingle:   reg.Counter("sim_slots_total", slotsHelp, obs.L("type", "single")),
		slotsCollided: reg.Counter("sim_slots_total", slotsHelp, obs.L("type", "collided")),
		frames:        reg.Counter("sim_frames_total", "Frames announced across all rounds."),
		identified:    reg.Counter("sim_tags_identified_total", "Tags acknowledged across all rounds."),
		detLatency: reg.Histogram("sim_detector_classify_seconds",
			"Wall-clock latency of one detector verdict.", detectorLatencyBuckets),
	})
}

// Uninstrument detaches the simulator from any registry; RunRound goes
// back to recording nothing.
func Uninstrument() { instr.Store(nil) }

// record folds one finished session into the registered series.
func (m *simSeries) record(s *metrics.Session) {
	m.rounds.Inc()
	m.slotsIdle.Add(uint64(s.Census.Idle))
	m.slotsSingle.Add(uint64(s.Census.Single))
	m.slotsCollided.Add(uint64(s.Census.Collided))
	m.frames.Add(uint64(s.Census.Frames))
	m.identified.Add(uint64(s.TagsIdentified))
}

// timedDetector wraps a detector to observe per-verdict wall-clock
// latency. Only installed while instrumentation is active: it costs two
// clock reads per slot.
type timedDetector struct {
	detect.Detector
	h *obs.Histogram
}

func (d timedDetector) Classify(rx signal.Reception) signal.SlotType {
	start := time.Now()
	v := d.Detector.Classify(rx)
	d.h.Observe(time.Since(start).Seconds())
	return v
}

// ContentionPayloadInto forwards the wrapped detector's scratch-payload
// fast path (detect.ScratchPayloader) so instrumentation does not force
// the slot engine off its zero-allocation route.
func (d timedDetector) ContentionPayloadInto(t *tagmodel.Tag, scratch bitstr.BitString) bitstr.BitString {
	if sp, ok := d.Detector.(detect.ScratchPayloader); ok {
		return sp.ContentionPayloadInto(t, scratch)
	}
	return d.Detector.ContentionPayload(t)
}

// frameTracer builds a metrics frame hook that emits one complete span
// per FSA frame onto tr's track tid. Span intervals are wall-clock (the
// tracer's timeline); the simulated timeline rides along in args.
func frameTracer(tr *obs.Tracer, tid int) func(metrics.FrameInfo) {
	lastEnd := tr.Now()
	return func(fi metrics.FrameInfo) {
		now := tr.Now()
		tr.Complete("sim", "frame", tid, lastEnd, now-lastEnd, map[string]any{
			"index":    fi.Index,
			"size":     fi.Size,
			"idle":     fi.Idle,
			"single":   fi.Single,
			"collided": fi.Collided,
			"sim_us":   fi.EndMicros,
		})
		lastEnd = now
	}
}

// roundArgs summarises a finished session for a round span.
func roundArgs(round int, s *metrics.Session) map[string]any {
	return map[string]any{
		"round":      round,
		"idle":       s.Census.Idle,
		"single":     s.Census.Single,
		"collided":   s.Census.Collided,
		"frames":     s.Census.Frames,
		"slots":      s.Census.Slots(),
		"identified": s.TagsIdentified,
		"sim_us":     s.TimeMicros,
	}
}
