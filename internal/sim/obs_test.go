package sim

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestInstrumentRecordsSeries(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	t.Cleanup(Uninstrument)

	c := baseCfg()
	agg, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	text := sb.String()
	for _, want := range []string{
		"sim_rounds_total 4",
		"sim_tags_identified_total 400",
		`sim_slots_total{type="idle"}`,
		`sim_slots_total{type="single"} 400`,
		`sim_slots_total{type="collided"}`,
		"sim_frames_total",
		"sim_detector_classify_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// The detector latency histogram saw one verdict per slot.
	wantVerdicts := uint64(agg.Slots.Mean() * float64(c.Rounds))
	line := "sim_detector_classify_seconds_count " + strconv.FormatUint(wantVerdicts, 10)
	if !strings.Contains(text, line) {
		t.Errorf("exposition missing %q (one verdict per slot):\n%s", line, text)
	}
}

func TestUninstrumentStopsRecording(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	Uninstrument()
	if _, err := Run(baseCfg()); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "sim_rounds_total 0") {
		t.Errorf("rounds recorded after Uninstrument:\n%s", sb.String())
	}
}

// TestRunContextEmitsSpans routes a tracer in via context and checks the
// run produced an experiment span, one round span per round, and frame
// spans from the FSA frame hook.
func TestRunContextEmitsSpans(t *testing.T) {
	tr := obs.NewTracer(4096)
	ctx := obs.WithTracer(context.Background(), tr)
	c := baseCfg()
	if _, err := RunContext(ctx, c); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, ev := range tr.Events() {
		counts[ev.Name]++
	}
	if counts["experiment"] != 1 {
		t.Errorf("experiment spans = %d, want 1", counts["experiment"])
	}
	if counts["round"] != c.Rounds {
		t.Errorf("round spans = %d, want %d", counts["round"], c.Rounds)
	}
	if counts["frame"] == 0 {
		t.Error("no frame spans emitted")
	}
}

// TestRunContextPartialAggregate aborts a long experiment and checks the
// partial aggregate still comes back alongside the context error, with
// Completed reflecting only the rounds that finished.
func TestRunContextPartialAggregate(t *testing.T) {
	c := baseCfg()
	c.Rounds = 100000
	c.Workers = 1
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	agg, err := RunContext(ctx, c)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if agg == nil {
		t.Fatal("no partial aggregate returned")
	}
	if agg.Completed <= 0 || agg.Completed >= c.Rounds {
		t.Fatalf("Completed = %d, want in (0, %d)", agg.Completed, c.Rounds)
	}
	if agg.Slots.N() != int64(agg.Completed) {
		t.Errorf("aggregate folded %d rounds but Completed = %d", agg.Slots.N(), agg.Completed)
	}
	if agg.Single.Mean() != float64(c.Tags) {
		t.Errorf("partial rounds are whole rounds: mean singles = %v, want %v", agg.Single.Mean(), c.Tags)
	}
}

// TestCompletedOnFullRun pins Completed == Rounds for an unaborted run.
func TestCompletedOnFullRun(t *testing.T) {
	c := baseCfg()
	agg, err := RunContext(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Completed != c.Rounds {
		t.Errorf("Completed = %d, want %d", agg.Completed, c.Rounds)
	}
}
