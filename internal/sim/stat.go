package sim

import (
	"fmt"

	"repro/internal/aloha"
	"repro/internal/crc"
	"repro/internal/metrics"
	"repro/internal/obs/audit"
	"repro/internal/signal"
	"repro/internal/timing"
)

// statModel derives the closed-form detector model stat mode evaluates
// from the configured detector. The airtime figures match internal/detect
// exactly (QCD: 2l contention + l_id ID phase; CRC-CD: l_id + l_crc in
// every slot; oracle: 1-bit probe + l_id ID phase) and the false-single
// exponents match the analytic miss models the audit layer checks
// against (QCD Theorem 1's l·(m-1); CRC aliasing's ≈2^-width; the oracle
// never misses).
func statModel(c Config) (aloha.StatModel, error) {
	switch c.Detector {
	case DetQCD:
		return aloha.StatModel{
			Name:           fmt.Sprintf("QCD-%d", c.Strength),
			ContentionBits: 2 * c.Strength,
			IDPhaseBits:    c.IDBits,
			Strength:       c.Strength,
		}, nil
	case DetCRCCD:
		p, ok := crc.ByName(c.CRCName)
		if !ok {
			return aloha.StatModel{}, fmt.Errorf("sim: unknown CRC preset %q", c.CRCName)
		}
		return aloha.StatModel{
			Name:           "CRC-CD/" + p.Name,
			ContentionBits: c.IDBits + p.Width,
			IDPhaseBits:    0,
			MissExp:        p.Width,
		}, nil
	case DetOracle:
		return aloha.StatModel{
			Name:           "oracle",
			ContentionBits: 1,
			IDPhaseBits:    c.IDBits,
			MissExp:        -1,
		}, nil
	default:
		return aloha.StatModel{}, fmt.Errorf("sim: unknown detector %q", c.Detector)
	}
}

// auditObserver adapts the stat engines' per-slot verdict feed to the
// shadow-oracle audit recorder: stat mode has no received signal, so the
// recorder sees a synthetic Reception carrying only the ground-truth
// responder count — exactly what the analytic 2^-(l·(m-1)) expectation
// model consumes.
func auditObserver(rec *audit.Recorder) func(truth, declared signal.SlotType, responders int) {
	return func(truth, declared signal.SlotType, responders int) {
		rec.Observe(truth, declared, signal.Reception{Energy: responders > 0, Responders: responders})
	}
}

// runRoundStat is runRound's vectorised branch: no population is built
// and no detector object runs — the round draws straight from the
// round-seeded stream into the stat engines. Validate has already
// confirmed the algorithm/channel combination.
func runRoundStat(c Config, roundSeed uint64, env roundEnv, rs *RoundScratch) (*metrics.Session, error) {
	model, err := statModel(c)
	if err != nil {
		return nil, err
	}
	rs.rng.Seed(roundSeed)
	tm := timing.Model{TauMicros: c.TauMicros}
	opt := aloha.StatOptions{Scratch: &rs.stat, Session: &rs.sess}

	var rec *audit.Recorder
	if a := activeAuditor.Load(); a != nil {
		strength := 0
		if c.Detector == DetQCD {
			strength = c.Strength
		}
		rec = a.Recorder(model.Name, strength, env.round, env.bus)
		opt.Observe = auditObserver(rec)
	}

	var s *metrics.Session
	switch c.Algorithm {
	case AlgFSA:
		policy, err := buildPolicy(c)
		if err != nil {
			return nil, err
		}
		opt.ConfirmEmpty = c.ConfirmEmpty
		var hooks []func(metrics.FrameInfo)
		if env.tr.Enabled() {
			hooks = append(hooks, frameTracer(env.tr, env.tid))
		}
		if rec != nil {
			hooks = append(hooks, func(metrics.FrameInfo) { rec.EndFrame() })
		}
		if env.bus.Enabled() {
			hooks = append(hooks, frameEvents(env.bus, env.round))
		}
		opt.FrameHook = combineFrameHooks(hooks)
		s = aloha.RunFSAStat(c.Tags, model, policy, tm, &rs.rng, opt)
	case AlgEDFSA:
		s = aloha.RunEDFSAStat(c.Tags, model, aloha.EDFSAConfig{MaxFrame: c.FrameSize}, tm, &rs.rng, opt)
	case AlgQAdaptive:
		s = aloha.RunQAdaptiveStat(c.Tags, model, aloha.DefaultQConfig(), tm, &rs.rng, opt)
	default:
		return nil, fmt.Errorf("sim: stat mode does not support algorithm %q", c.Algorithm)
	}
	if m := instr.Load(); m != nil {
		m.record(s)
	}
	return s, nil
}
