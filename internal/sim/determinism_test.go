package sim

import (
	"reflect"
	"runtime"
	"testing"
)

// TestAggregateBitIdenticalAcrossWorkers is the package's determinism
// contract as a property test: for every algorithm, the full aggregate —
// every accumulator, compared field-by-field on raw floats — must be
// bit-identical for any worker count. This is what lets Config.Canonical
// zero Workers out of the cache key, and what the pooled round scratch
// must preserve.
func TestAggregateBitIdenticalAcrossWorkers(t *testing.T) {
	cases := map[string]Config{
		"fsa": {Tags: 100, Seed: 42, Rounds: 6, Algorithm: AlgFSA,
			FrameSize: 60, Detector: DetQCD},
		"edfsa": {Tags: 150, Seed: 42, Rounds: 6, Algorithm: AlgEDFSA,
			FrameSize: 64, Detector: DetCRCCD},
		"qadaptive": {Tags: 100, Seed: 42, Rounds: 6, Algorithm: AlgQAdaptive,
			Detector: DetQCD},
		"qt": {Tags: 100, Seed: 42, Rounds: 6, Algorithm: AlgQT,
			Detector: DetCRCCD},
	}
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for name, c := range cases {
		t.Run(name, func(t *testing.T) {
			var ref *Aggregate
			var refWorkers int
			for _, w := range workerCounts {
				cw := c
				cw.Workers = w
				agg, err := Run(cw)
				if err != nil {
					t.Fatal(err)
				}
				// Workers is the only field allowed to differ.
				agg.Cfg.Workers = 0
				if ref == nil {
					ref, refWorkers = agg, w
					continue
				}
				if !reflect.DeepEqual(ref, agg) {
					t.Errorf("aggregate differs between Workers=%d and Workers=%d", refWorkers, w)
				}
			}
		})
	}
}
