// Package estimate implements tag-cardinality estimators. Lemma 1 says
// FSA peaks at F = n, but — as the paper's Section VI-C notes — "in
// practice, the reader cannot exactly know the number of tags in
// advance", citing the estimation literature (Schoute; Vogt; Kodialam &
// Nandagopal; Qian et al.). These estimators read a frame's
// idle/single/collided census and predict the backlog, closing the loop
// between collision detection and frame sizing.
package estimate

import (
	"fmt"
	"math"

	"repro/internal/aloha"
)

// Estimator predicts the number of tags that participated in a frame,
// given the frame's census.
type Estimator interface {
	Name() string
	// Estimate returns n̂, the estimated number of tags that responded
	// somewhere in the frame (including the identified singles).
	Estimate(c aloha.FrameCensus) float64
}

// Schoute is the classic estimator n̂ = N1 + 2.39·Nc: at the ALOHA
// operating point a collided slot hides e/(e−1)+1 ≈ 2.39 tags on average.
type Schoute struct{}

// Name implements Estimator.
func (Schoute) Name() string { return "schoute" }

// Estimate implements Estimator.
func (Schoute) Estimate(c aloha.FrameCensus) float64 {
	return float64(c.Single) + 2.39*float64(c.Collided)
}

// LowerBound is Vogt's n̂ = N1 + 2·Nc: a collision hides at least two tags.
type LowerBound struct{}

// Name implements Estimator.
func (LowerBound) Name() string { return "lowerbound" }

// Estimate implements Estimator.
func (LowerBound) Estimate(c aloha.FrameCensus) float64 {
	return float64(c.Single) + 2*float64(c.Collided)
}

// ZeroBased inverts the idle-slot count: E[N0] = F·(1−1/F)^n, so
// n̂ = ln(N0/F) / ln(1−1/F). It uses only carrier sensing — no payload
// decoding at all — which pairs naturally with QCD's cheap slot
// classification. Degenerate censuses (no idle slots) fall back to the
// Schoute estimate.
type ZeroBased struct{}

// Name implements Estimator.
func (ZeroBased) Name() string { return "zerobased" }

// Estimate implements Estimator.
func (ZeroBased) Estimate(c aloha.FrameCensus) float64 {
	f := float64(c.Size)
	if f < 2 || c.Idle <= 0 {
		return Schoute{}.Estimate(c)
	}
	n := math.Log(float64(c.Idle)/f) / math.Log(1-1/f)
	if math.IsNaN(n) || math.IsInf(n, 0) || n < 0 {
		return Schoute{}.Estimate(c)
	}
	return n
}

// MLE picks the n whose expected census (N0, N1, Nc) minimises the
// squared distance to the observed one (Vogt's minimum-distance
// estimator). The search is bounded by maxN.
type MLE struct {
	// MaxN bounds the search (default 4× the lower-bound estimate + frame).
	MaxN int
}

// Name implements Estimator.
func (MLE) Name() string { return "mle" }

// Estimate implements Estimator.
func (m MLE) Estimate(c aloha.FrameCensus) float64 {
	f := float64(c.Size)
	if f < 1 {
		return 0
	}
	hi := m.MaxN
	if hi <= 0 {
		hi = int(4*LowerBound{}.Estimate(c)) + c.Size + 4
	}
	bestN, bestD := 0.0, math.Inf(1)
	for n := 0; n <= hi; n++ {
		e0, e1, ec := expectedCensus(float64(n), f)
		d0 := e0 - float64(c.Idle)
		d1 := e1 - float64(c.Single)
		dc := ec - float64(c.Collided)
		d := d0*d0 + d1*d1 + dc*dc
		if d < bestD {
			bestD = d
			bestN = float64(n)
		}
	}
	return bestN
}

func expectedCensus(n, f float64) (idle, single, collided float64) {
	p := 1 / f
	idle = f * math.Pow(1-p, n)
	single = n * math.Pow(1-p, n-1)
	collided = f - idle - single
	return
}

// All returns every built-in estimator.
func All() []Estimator {
	return []Estimator{Schoute{}, LowerBound{}, ZeroBased{}, MLE{}}
}

// Policy adapts an Estimator into an FSA frame policy: after each frame
// it estimates the backlog (estimate minus the singles just identified)
// and sizes the next frame to it, the Lemma-1 optimum under uncertainty.
type Policy struct {
	Est     Estimator
	Initial int
}

// NewPolicy returns an estimating frame policy.
func NewPolicy(est Estimator, initial int) Policy {
	if initial < 1 {
		panic(fmt.Sprintf("estimate: initial frame %d must be positive", initial))
	}
	return Policy{Est: est, Initial: initial}
}

// Name implements aloha.FramePolicy.
func (p Policy) Name() string { return "estimate-" + p.Est.Name() }

// FirstFrame implements aloha.FramePolicy.
func (p Policy) FirstFrame() int { return p.Initial }

// NextFrame implements aloha.FramePolicy.
func (p Policy) NextFrame(prev aloha.FrameCensus) int {
	backlog := p.Est.Estimate(prev) - float64(prev.Single)
	f := int(math.Round(backlog))
	if f < 1 {
		f = 1
	}
	return f
}

var _ aloha.FramePolicy = Policy{}
