package estimate

import (
	"math"
	"testing"

	"repro/internal/aloha"
	"repro/internal/detect"
	"repro/internal/prng"
	"repro/internal/tagmodel"
	"repro/internal/timing"
)

// observedCensus runs one real FSA frame of size f over n tags and
// returns its census (using the oracle so classification is exact).
func observedCensus(n, f int, seed uint64) aloha.FrameCensus {
	rng := prng.New(seed)
	var c aloha.FrameCensus
	c.Size = f
	counts := make([]int, f)
	for i := 0; i < n; i++ {
		counts[rng.Intn(f)]++
	}
	for _, k := range counts {
		switch {
		case k == 0:
			c.Idle++
		case k == 1:
			c.Single++
		default:
			c.Collided++
		}
	}
	return c
}

func TestEstimatorsNearTruth(t *testing.T) {
	// Average estimates over several frames; all estimators should land
	// within ~15% of the truth at the F≈n operating point.
	const n, f, rounds = 300, 300, 30
	for _, est := range All() {
		sum := 0.0
		for r := uint64(0); r < rounds; r++ {
			sum += est.Estimate(observedCensus(n, f, r+1))
		}
		got := sum / rounds
		if math.Abs(got-n)/n > 0.15 {
			t.Errorf("%s: mean estimate %.1f for true n=%d", est.Name(), got, n)
		}
	}
}

func TestLowerBoundIsLower(t *testing.T) {
	c := observedCensus(300, 300, 7)
	if (LowerBound{}).Estimate(c) > (Schoute{}).Estimate(c) {
		t.Error("lower bound above Schoute")
	}
}

func TestZeroBasedDegenerate(t *testing.T) {
	// No idle slots at all: must fall back gracefully, not NaN.
	c := aloha.FrameCensus{Size: 10, Idle: 0, Single: 2, Collided: 8}
	got := ZeroBased{}.Estimate(c)
	if math.IsNaN(got) || got <= 0 {
		t.Errorf("degenerate zero-based estimate = %v", got)
	}
	// Tiny frame.
	c = aloha.FrameCensus{Size: 1, Idle: 1}
	if got := (ZeroBased{}).Estimate(c); math.IsNaN(got) {
		t.Error("size-1 frame gives NaN")
	}
}

func TestMLEExactOnExpectedCensus(t *testing.T) {
	// Feed the MLE the *expected* census for a known n: it must recover n
	// (the distance at the truth is 0).
	for _, n := range []float64{10, 50, 200} {
		f := 128.0
		e0, e1, ec := expectedCensus(n, f)
		c := aloha.FrameCensus{
			Size: int(f), Idle: int(math.Round(e0)),
			Single: int(math.Round(e1)), Collided: int(math.Round(ec)),
		}
		got := MLE{}.Estimate(c)
		if math.Abs(got-n) > 3 {
			t.Errorf("MLE on expected census of n=%v returned %v", n, got)
		}
	}
}

func TestPolicyIdentifiesEveryone(t *testing.T) {
	for _, est := range All() {
		pop := tagmodel.NewPopulation(400, 64, prng.New(11))
		s := aloha.Run(pop, detect.NewQCD(8, 64), NewPolicy(est, 128), timing.Default)
		if !pop.AllIdentified() {
			t.Fatalf("%s policy failed to identify everyone", est.Name())
		}
		// Estimating policies should stay within 2× of the clairvoyant
		// optimum's slot usage.
		pop2 := tagmodel.NewPopulation(400, 64, prng.New(11))
		opt := aloha.Run(pop2, detect.NewQCD(8, 64), aloha.Optimal{N: 400}, timing.Default)
		if s.Census.Slots() > 2*opt.Census.Slots() {
			t.Errorf("%s policy used %d slots, optimal used %d",
				est.Name(), s.Census.Slots(), opt.Census.Slots())
		}
	}
}

func TestPolicyBeatsBadFixedStart(t *testing.T) {
	// Starting with a frame 8× too small, the estimator must still
	// converge quickly.
	pop := tagmodel.NewPopulation(800, 64, prng.New(13))
	s := aloha.Run(pop, detect.NewQCD(8, 64), NewPolicy(Schoute{}, 100), timing.Default)
	if !pop.AllIdentified() {
		t.Fatal("estimating policy failed from an undersized start")
	}
	if s.Census.Slots() > 5000 {
		t.Errorf("took %d slots for 800 tags", s.Census.Slots())
	}
}

func TestPolicyValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("initial frame 0 accepted")
		}
	}()
	NewPolicy(Schoute{}, 0)
}

func TestNames(t *testing.T) {
	want := map[string]bool{"schoute": true, "lowerbound": true, "zerobased": true, "mle": true}
	for _, e := range All() {
		if !want[e.Name()] {
			t.Errorf("unexpected estimator %q", e.Name())
		}
	}
	if NewPolicy(MLE{}, 4).Name() != "estimate-mle" {
		t.Error("policy name")
	}
}
