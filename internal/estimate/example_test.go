package estimate_test

import (
	"fmt"

	"repro/internal/aloha"
	"repro/internal/estimate"
)

// Estimate the backlog behind an observed frame census. The frame had 300
// slots; Schoute charges 2.39 tags per collision.
func ExampleSchoute_Estimate() {
	census := aloha.FrameCensus{Size: 300, Idle: 56, Single: 95, Collided: 149}
	fmt.Printf("%.1f\n", estimate.Schoute{}.Estimate(census))
	// Output: 451.1
}

// An estimator becomes a frame policy: each frame is sized to the
// estimated remaining backlog.
func ExampleNewPolicy() {
	p := estimate.NewPolicy(estimate.Schoute{}, 128)
	next := p.NextFrame(aloha.FrameCensus{Size: 128, Single: 40, Collided: 30})
	fmt.Println(p.Name(), next) // 40 + 2.39×30 − 40 identified ≈ 72
	// Output: estimate-schoute 72
}
