package crc

import (
	"hash/crc32"
	"testing"
)

// FuzzCRC32AgainstStdlib cross-checks both engines against hash/crc32 on
// arbitrary byte strings.
func FuzzCRC32AgainstStdlib(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("123456789"))
	f.Add([]byte{0x00, 0xFF, 0xA5})
	tab := NewTable(CRC32IEEE)
	f.Fuzz(func(t *testing.T, data []byte) {
		want := uint64(crc32.ChecksumIEEE(data))
		if got := Checksum(CRC32IEEE, data); got != want {
			t.Fatalf("bit-serial = %#x, stdlib = %#x", got, want)
		}
		if got := tab.Checksum(data); got != want {
			t.Fatalf("table = %#x, stdlib = %#x", got, want)
		}
	})
}

// FuzzEnginesAgree cross-checks the bit-serial and table engines on every
// preset for arbitrary input.
func FuzzEnginesAgree(f *testing.F) {
	f.Add([]byte("hello"))
	f.Add([]byte{})
	tables := map[string]*Table{}
	for _, p := range Presets() {
		tables[p.Name] = NewTable(p)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, p := range Presets() {
			if bs, tb := Checksum(p, data), tables[p.Name].Checksum(data); bs != tb {
				t.Fatalf("%s: bit-serial %#x != table %#x on %d bytes", p.Name, bs, tb, len(data))
			}
		}
	})
}
