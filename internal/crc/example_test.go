package crc_test

import (
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/crc"
)

// Checksum a message with the EPC Gen-2 CRC-16 and verify the framed unit.
func ExampleAppendBits() {
	id := bitstr.MustParse("1100101011110000")
	framed := crc.AppendBits(crc.CRC16EPC, id)
	fmt.Println(framed.Len(), crc.VerifyBits(crc.CRC16EPC, framed))

	// Any single-bit error is caught.
	corrupted := framed.SetBit(3, 1-framed.Bit(3))
	fmt.Println(crc.VerifyBits(crc.CRC16EPC, corrupted))
	// Output:
	// 32 true
	// false
}

// The catalogue check value of every preset is the checksum of "123456789".
func ExampleChecksum() {
	fmt.Printf("%#x\n", crc.Checksum(crc.CRC32IEEE, []byte("123456789")))
	// Output: 0xcbf43926
}

// Table-driven engines trade 256-entry lookup tables (the paper's "1KB
// extra memory") for byte-at-a-time speed.
func ExampleNewTable() {
	tab := crc.NewTable(crc.CRC32IEEE)
	fmt.Println(tab.SizeBytes(), "bytes")
	fmt.Printf("%#x\n", tab.Checksum([]byte("123456789")))
	// Output:
	// 1024 bytes
	// 0xcbf43926
}
