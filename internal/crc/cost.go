package crc

import "repro/internal/bitstr"

// Cost quantifies what a detection scheme demands of a tag's IC, the
// dimensions of the paper's Table IV: instruction count per checksum,
// asymptotic complexity, working memory, and bits on the air per
// contention slot.
type Cost struct {
	Scheme         string
	Instructions   int64  // register operations to produce one checksum
	Complexity     string // big-O in the payload length l
	MemoryBits     int    // working storage a tag must dedicate
	TransmitBits   int    // bits transmitted in an idle/collided slot
	LookupTableB   int    // reader-side lookup table bytes (0 if none)
	GateEstimate   int    // rough combinational gate count on the tag
	InstrPerBitHot float64
}

// CRCCDCost measures the tag-side cost of CRC-CD for an idBits-bit ID
// protected by parameter set p, by actually running the instrumented
// bit-serial engine over a worst-case (all-ones) payload.
func CRCCDCost(p Params, idBits int) Cost {
	payload := allOnes(idBits)
	_, ops := ChecksumBitsCounted(p, payload)
	tab := NewTable(p)
	return Cost{
		Scheme:         "CRC-CD (" + p.Name + ")",
		Instructions:   ops,
		Complexity:     "O(l)",
		MemoryBits:     p.Width + idBits, // register plus the ID being fed
		TransmitBits:   idBits + p.Width,
		LookupTableB:   tab.SizeBytes(),
		GateEstimate:   gateEstimateCRC(p),
		InstrPerBitHot: float64(ops) / float64(idBits),
	}
}

// QCDCost measures the tag-side cost of QCD at the given strength
// (random-integer length in bits): one bitwise complement instruction and
// 2·strength bits of preamble state.
func QCDCost(strength int) Cost {
	return Cost{
		Scheme:         "QCD",
		Instructions:   1, // r̄ is a single bitwise-NOT over the register
		Complexity:     "O(1)",
		MemoryBits:     2 * strength,
		TransmitBits:   2 * strength,
		LookupTableB:   0,
		GateEstimate:   strength, // one inverter per preamble bit
		InstrPerBitHot: 1.0 / float64(strength),
	}
}

// gateEstimateCRC approximates the combinational logic of a serial CRC:
// one flip-flop plus feedback XOR per register bit, and an XOR tap per set
// polynomial bit; a standard ballpark of ~8 gates per tap-and-register bit.
func gateEstimateCRC(p Params) int {
	taps := 0
	for i := 0; i < p.Width; i++ {
		if p.Poly>>uint(i)&1 == 1 {
			taps++
		}
	}
	return 8*p.Width + 4*taps
}

func allOnes(n int) bitstr.BitString {
	return bitstr.Not(bitstr.New(n))
}
