package crc

// Presets for the CRCs the RFID standards in the paper use. Check values
// are the CRC catalogue checksums of ASCII "123456789" and are verified by
// SelfTest in the package tests.
var (
	// CRC5EPC is the 5-bit CRC EPCglobal Class-1 Gen-2 protects Query
	// commands with (poly x^5+x^3+1, preset 01001).
	CRC5EPC = Params{
		Name: "CRC-5/EPC", Width: 5, Poly: 0x09, Init: 0x09,
		RefIn: false, RefOut: false, XorOut: 0x00, Check: 0x00,
	}

	// CRC16EPC is the 16-bit CRC of EPC Gen-2 / ISO 18000-6 backscatter
	// frames (ISO/IEC 13239: poly 0x1021, preset 0xFFFF, final complement).
	// The catalogue calls this CRC-16/GENIBUS.
	CRC16EPC = Params{
		Name: "CRC-16/EPC", Width: 16, Poly: 0x1021, Init: 0xFFFF,
		RefIn: false, RefOut: false, XorOut: 0xFFFF, Check: 0xD64E,
	}

	// CRC16CCITTFalse is the plain CCITT variant without the final
	// complement, provided for completeness and cross-checking.
	CRC16CCITTFalse = Params{
		Name: "CRC-16/CCITT-FALSE", Width: 16, Poly: 0x1021, Init: 0xFFFF,
		RefIn: false, RefOut: false, XorOut: 0x0000, Check: 0x29B1,
	}

	// CRC32IEEE is the ubiquitous reflected CRC-32. The paper quotes
	// "ISO 18000-6 employs 32 bits CRC" and an error rate of 2^-32; this is
	// the 32-bit code used for l_crc = 32 in the evaluation.
	CRC32IEEE = Params{
		Name: "CRC-32/IEEE", Width: 32, Poly: 0x04C11DB7, Init: 0xFFFFFFFF,
		RefIn: true, RefOut: true, XorOut: 0xFFFFFFFF, Check: 0xCBF43926,
	}

	// CRC8ATM is a small non-reflected code used in tests to exercise the
	// 8-bit boundary of the table engine.
	CRC8ATM = Params{
		Name: "CRC-8/ATM", Width: 8, Poly: 0x07, Init: 0x00,
		RefIn: false, RefOut: false, XorOut: 0x00, Check: 0xF4,
	}
)

// Presets lists every built-in parameter set.
func Presets() []Params {
	return []Params{CRC5EPC, CRC16EPC, CRC16CCITTFalse, CRC32IEEE, CRC8ATM}
}

// ByName returns the preset with the given name and whether it exists.
func ByName(name string) (Params, bool) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, true
		}
	}
	return Params{}, false
}
