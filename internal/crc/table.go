package crc

// Table is a byte-at-a-time CRC engine with a precomputed 256-entry lookup
// table. This is the classic fast software implementation whose memory
// footprint (256 × width/8 bytes ≈ 1 KB for CRC-32) is what Table IV of
// the paper charges CRC-CD with; readers can afford it, tags cannot.
type Table struct {
	p   Params
	tab [256]uint64
}

// NewTable precomputes the lookup table for p.
func NewTable(p Params) *Table {
	p.validate()
	t := &Table{p: p}
	for b := 0; b < 256; b++ {
		var reg uint64
		if p.RefIn {
			// Reflected algorithm: table is indexed by raw input bytes and
			// the register shifts right.
			reg = uint64(b)
			polyRef := reflect(p.Poly&p.mask(), p.Width)
			for i := 0; i < 8; i++ {
				if reg&1 != 0 {
					reg = (reg >> 1) ^ polyRef
				} else {
					reg >>= 1
				}
			}
		} else if p.Width >= 8 {
			reg = uint64(b) << uint(p.Width-8)
			for i := 0; i < 8; i++ {
				if reg&p.topBit() != 0 {
					reg = ((reg << 1) ^ p.Poly) & p.mask()
				} else {
					reg = (reg << 1) & p.mask()
				}
			}
		} else {
			// Widths below 8 (e.g. CRC-5/EPC) keep the register
			// left-aligned in an 8-bit window; see narrowEntry.
			reg = t.narrowEntry(byte(b))
		}
		t.tab[b] = reg & t.widthMask()
	}
	return t
}

func (t *Table) widthMask() uint64 { return t.p.mask() }

// narrowEntry computes the table entry for widths < 8 by running the
// bit-serial step over the 8 bits of b with a zero starting register,
// returning the register after those steps given the register's top
// p.Width bits pre-loaded with b's effect. Narrow CRCs are handled by
// keeping the register left-aligned in an 8-bit window.
func (t *Table) narrowEntry(b byte) uint64 {
	// Keep the register left-justified in 8 bits: reg8 holds reg << (8-W).
	poly8 := (t.p.Poly & t.p.mask()) << uint(8-t.p.Width)
	reg8 := uint64(b)
	for i := 0; i < 8; i++ {
		if reg8&0x80 != 0 {
			reg8 = ((reg8 << 1) ^ poly8) & 0xFF
		} else {
			reg8 = (reg8 << 1) & 0xFF
		}
	}
	return reg8 >> uint(8-t.p.Width)
}

// Checksum computes the CRC of data using the lookup table.
func (t *Table) Checksum(data []byte) uint64 {
	reg := t.update(t.initReg(), data)
	return t.finish(reg)
}

// Engine is a streaming CRC accumulator over a Table.
type Engine struct {
	t   *Table
	reg uint64
}

// NewEngine returns a streaming accumulator for t's parameters.
func (t *Table) NewEngine() *Engine { return &Engine{t: t, reg: t.initReg()} }

// Write absorbs data; it never fails. It implements io.Writer.
func (e *Engine) Write(data []byte) (int, error) {
	e.reg = e.t.update(e.reg, data)
	return len(data), nil
}

// Sum returns the checksum of everything written so far.
func (e *Engine) Sum() uint64 { return e.t.finish(e.reg) }

// Reset restores the engine to its initial state.
func (e *Engine) Reset() { e.reg = e.t.initReg() }

func (t *Table) initReg() uint64 {
	init := t.p.Init & t.p.mask()
	if t.p.RefIn {
		return reflect(init, t.p.Width)
	}
	return init
}

func (t *Table) update(reg uint64, data []byte) uint64 {
	p := t.p
	switch {
	case p.RefIn:
		for _, b := range data {
			reg = (reg >> 8) ^ t.tab[byte(reg)^b]
		}
	case p.Width >= 8:
		shift := uint(p.Width - 8)
		for _, b := range data {
			reg = ((reg << 8) ^ t.tab[byte(reg>>shift)^b]) & p.mask()
		}
	default:
		// Narrow non-reflected CRC: keep register left-aligned in 8 bits.
		up := uint(8 - p.Width)
		r8 := reg << up
		for _, b := range data {
			r8 = t.tab[byte(r8)^b] << up
		}
		reg = r8 >> up
	}
	return reg
}

func (t *Table) finish(reg uint64) uint64 {
	p := t.p
	if p.RefIn != p.RefOut {
		reg = reflect(reg, p.Width)
	}
	return (reg ^ p.XorOut) & p.mask()
}

// SizeBytes returns the lookup table's memory footprint in bytes, the
// figure behind Table IV's "1KB" row: 256 entries of width/8 bytes
// (rounded up to whole bytes per entry).
func (t *Table) SizeBytes() int {
	entry := (t.p.Width + 7) / 8
	return 256 * entry
}
