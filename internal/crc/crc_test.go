package crc

import (
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitstr"
)

func TestPresetsSelfTest(t *testing.T) {
	for _, p := range Presets() {
		if err := SelfTest(p); err != nil {
			t.Errorf("%v", err)
		}
	}
}

func TestCRC32AgainstStdlib(t *testing.T) {
	// Our from-scratch CRC-32 must agree with hash/crc32 on arbitrary data.
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		n := r.Intn(200)
		data := make([]byte, n)
		r.Read(data)
		want := uint64(crc32.ChecksumIEEE(data))
		if got := Checksum(CRC32IEEE, data); got != want {
			t.Fatalf("CRC32 of %d bytes = %#x, want %#x", n, got, want)
		}
		if got := NewTable(CRC32IEEE).Checksum(data); got != want {
			t.Fatalf("table CRC32 of %d bytes = %#x, want %#x", n, got, want)
		}
	}
}

func TestBitSerialMatchesTable(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, p := range Presets() {
		tab := NewTable(p)
		for i := 0; i < 30; i++ {
			n := r.Intn(100)
			data := make([]byte, n)
			r.Read(data)
			bs := Checksum(p, data)
			tb := tab.Checksum(data)
			if bs != tb {
				t.Fatalf("%s: bit-serial %#x != table %#x on %d bytes", p.Name, bs, tb, n)
			}
		}
	}
}

func TestChecksumBitsNonByteLengths(t *testing.T) {
	// Non-reflected CRCs must accept arbitrary bit lengths; shifting in an
	// extra zero bit must change the checksum in general.
	p := CRC16CCITTFalse
	a := bitstr.MustParse("1011001")
	b := bitstr.MustParse("10110010")
	if ChecksumBits(p, a) == ChecksumBits(p, b) {
		t.Error("7-bit and 8-bit messages share a checksum (suspicious)")
	}
}

func TestReflectedRejectsPartialBytes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("reflected CRC accepted a 7-bit message")
		}
	}()
	ChecksumBits(CRC32IEEE, bitstr.New(7))
}

func TestAppendVerifyRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, p := range []Params{CRC5EPC, CRC16EPC, CRC16CCITTFalse, CRC8ATM} {
		for i := 0; i < 30; i++ {
			n := r.Intn(128) + 1
			payload := randomBits(r, n)
			framed := AppendBits(p, payload)
			if framed.Len() != n+p.Width {
				t.Fatalf("%s framed length = %d", p.Name, framed.Len())
			}
			if !VerifyBits(p, framed) {
				t.Fatalf("%s verify failed on own frame", p.Name)
			}
		}
	}
}

func TestVerifyDetectsSingleBitErrors(t *testing.T) {
	// Any CRC detects all single-bit errors; flip each bit of a frame and
	// check Verify rejects it.
	p := CRC16EPC
	payload := bitstr.MustParse("1100101011110000110010101111000011001010111100001100101011110000")
	framed := AppendBits(p, payload)
	for i := 0; i < framed.Len(); i++ {
		bad := framed.SetBit(i, 1-framed.Bit(i))
		if VerifyBits(p, bad) {
			t.Fatalf("single-bit error at %d not detected", i)
		}
	}
}

func TestVerifyPanicsOnShortFrame(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("VerifyBits accepted frame shorter than checksum")
		}
	}()
	VerifyBits(CRC16EPC, bitstr.New(8))
}

func TestEngineStreaming(t *testing.T) {
	for _, p := range Presets() {
		tab := NewTable(p)
		e := tab.NewEngine()
		data := []byte("123456789")
		if _, err := e.Write(data[:3]); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Write(data[3:]); err != nil {
			t.Fatal(err)
		}
		if got := e.Sum(); got != p.Check {
			t.Errorf("%s streaming = %#x, want %#x", p.Name, got, p.Check)
		}
		e.Reset()
		if _, err := e.Write(data); err != nil {
			t.Fatal(err)
		}
		if got := e.Sum(); got != p.Check {
			t.Errorf("%s after Reset = %#x, want %#x", p.Name, got, p.Check)
		}
	}
}

func TestTableSizeBytes(t *testing.T) {
	if got := NewTable(CRC32IEEE).SizeBytes(); got != 1024 {
		t.Errorf("CRC-32 table = %d bytes, want 1024 (the paper's 1KB)", got)
	}
	if got := NewTable(CRC16EPC).SizeBytes(); got != 512 {
		t.Errorf("CRC-16 table = %d bytes, want 512", got)
	}
	if got := NewTable(CRC5EPC).SizeBytes(); got != 256 {
		t.Errorf("CRC-5 table = %d bytes, want 256", got)
	}
}

func TestInstructionCountScalesWithLength(t *testing.T) {
	// The Table IV claim: CRC is O(l) with >100 instructions for realistic
	// ID lengths, QCD is a single instruction.
	_, ops64 := ChecksumBitsCounted(CRC16EPC, bitstr.New(64))
	_, ops128 := ChecksumBitsCounted(CRC16EPC, bitstr.New(128))
	if ops64 < 100 {
		t.Errorf("CRC of 64-bit ID took %d instructions, paper claims >100", ops64)
	}
	if ops128 <= ops64 {
		t.Errorf("instruction count not increasing: %d vs %d", ops64, ops128)
	}
	// Roughly linear: doubling the payload should not much more than
	// double the count.
	if ops128 > 3*ops64 {
		t.Errorf("superlinear growth: %d -> %d", ops64, ops128)
	}
}

func TestCostModel(t *testing.T) {
	c := CRCCDCost(CRC32IEEE, 64)
	if c.Instructions <= 100 {
		t.Errorf("CRC-CD instructions = %d, want >100", c.Instructions)
	}
	if c.LookupTableB != 1024 {
		t.Errorf("CRC-CD lookup table = %dB, want 1024", c.LookupTableB)
	}
	if c.TransmitBits != 96 {
		t.Errorf("CRC-CD transmit = %d bits, want 96", c.TransmitBits)
	}
	q := QCDCost(8)
	if q.Instructions != 1 {
		t.Errorf("QCD instructions = %d, want 1", q.Instructions)
	}
	if q.TransmitBits != 16 || q.MemoryBits != 16 {
		t.Errorf("QCD bits = %d/%d, want 16/16", q.TransmitBits, q.MemoryBits)
	}
}

func TestByName(t *testing.T) {
	if p, ok := ByName("CRC-32/IEEE"); !ok || p.Width != 32 {
		t.Error("ByName failed to find CRC-32/IEEE")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName found a nonexistent preset")
	}
}

func TestWidthValidation(t *testing.T) {
	for _, w := range []int{0, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("width %d not rejected", w)
				}
			}()
			Checksum(Params{Name: "bad", Width: w, Poly: 1}, []byte{1})
		}()
	}
}

// TestQuickLinearity exercises the defining property of CRCs with zero
// Init/XorOut: crc(a ^ b) == crc(a) ^ crc(b) for equal-length messages.
func TestQuickLinearity(t *testing.T) {
	p := Params{Name: "lin", Width: 16, Poly: 0x1021} // Init=0, XorOut=0
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(64)
		a := randomBits(r, n)
		b := randomBits(r, n)
		left := ChecksumBits(p, bitstr.Xor(a, b))
		right := ChecksumBits(p, a) ^ ChecksumBits(p, b)
		return left == right
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randomBits(r *rand.Rand, n int) bitstr.BitString {
	s := bitstr.New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 1 {
			s = s.SetBit(i, 1)
		}
	}
	return s
}

func BenchmarkBitSerialCRC16Of64Bits(b *testing.B) {
	payload := allOnes(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ChecksumBits(CRC16EPC, payload)
	}
}

func BenchmarkTableCRC32(b *testing.B) {
	tab := NewTable(CRC32IEEE)
	data := make([]byte, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tab.Checksum(data)
	}
}
