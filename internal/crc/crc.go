// Package crc implements cyclic redundancy checks from first principles:
// a generic parameterised engine (width, polynomial, init, reflection,
// final XOR), bit-serial and table-driven computations, and an instruction
// cost model.
//
// The paper's baseline collision detector, CRC-CD, has every tag transmit
// ID || crc(ID); the reader recomputes the CRC over the (possibly
// overlapped) ID signal and compares. This package supplies the CRC used
// by both tags and readers in that scheme, with presets for the codes the
// RFID standards employ: CRC-5 and CRC-16 from EPCglobal Class-1 Gen-2 /
// ISO 18000-6, and CRC-32 (the strength the paper quotes error rates for).
//
// The bit-serial implementation exists because tag IDs are bit strings,
// not byte streams, and because its operation count is what the paper's
// Table IV "more than 100 instructions, O(l)" claim is about; the
// table-driven implementation is the reader-side fast path and the source
// of the "1KB lookup table" memory figure.
package crc

import (
	"fmt"
	"math/bits"

	"repro/internal/bitstr"
)

// Params describes a CRC in the Rocksoft/CRC-catalogue model.
type Params struct {
	Name   string
	Width  int    // bits of the register, 1..64
	Poly   uint64 // generator polynomial, normal (MSB-first) form, top bit implicit
	Init   uint64 // initial register value
	RefIn  bool   // reflect each input byte before use
	RefOut bool   // reflect the register before the final XOR
	XorOut uint64 // value XORed into the final register
	Check  uint64 // expected checksum of ASCII "123456789" (self-test)
}

func (p Params) validate() {
	if p.Width < 1 || p.Width > 64 {
		panic(fmt.Sprintf("crc: width %d out of range", p.Width))
	}
}

// topBit returns a mask selecting the register's most significant bit.
func (p Params) topBit() uint64 { return 1 << uint(p.Width-1) }

// mask returns a mask covering the register width.
func (p Params) mask() uint64 {
	if p.Width == 64 {
		return ^uint64(0)
	}
	return (1 << uint(p.Width)) - 1
}

// ChecksumBits computes the CRC of an arbitrary-length bit string using
// the bit-serial algorithm. For parameter sets with RefIn, the input
// length must be a whole number of bytes (reflection is defined per byte).
func ChecksumBits(p Params, data bitstr.BitString) uint64 {
	sum, _ := checksumBits(p, data)
	return sum
}

// ChecksumBitsCounted is ChecksumBits that also reports the number of
// primitive register operations performed (shift/xor/test per bit), the
// quantity behind Table IV's instruction comparison.
func ChecksumBitsCounted(p Params, data bitstr.BitString) (sum uint64, ops int64) {
	return checksumBits(p, data)
}

func checksumBits(p Params, data bitstr.BitString) (uint64, int64) {
	p.validate()
	if p.RefIn && data.Len()%8 != 0 {
		panic(fmt.Sprintf("crc: %s reflects input bytes; %d bits is not a whole number of bytes", p.Name, data.Len()))
	}
	reg := p.Init & p.mask()
	var ops int64
	n := data.Len()
	for i := 0; i < n; i++ {
		b := data.Bit(bitIndex(p, i, n))
		// One shift step of the non-augmented MSB-first algorithm:
		// XOR the input bit into the register's top bit, shift, and feed
		// back the polynomial when the shifted-out bit is one.
		top := (reg&p.topBit() != 0) != (b == 1)
		reg = (reg << 1) & p.mask()
		if top {
			reg ^= p.Poly & p.mask()
			ops += 4 // load bit, test+xor, shift, xor-poly
		} else {
			ops += 3 // load bit, test+xor, shift
		}
	}
	if p.RefOut {
		reg = reflect(reg, p.Width)
		ops++
	}
	return (reg ^ p.XorOut) & p.mask(), ops + 1
}

// bitIndex maps the i-th processed bit to an index in the input, applying
// per-byte reflection when the parameter set demands it.
func bitIndex(p Params, i, n int) int {
	if !p.RefIn {
		return i
	}
	byteIdx := i / 8
	within := i % 8
	_ = n
	return byteIdx*8 + (7 - within)
}

// Checksum computes the CRC of a byte slice with the bit-serial algorithm.
func Checksum(p Params, data []byte) uint64 {
	return ChecksumBits(p, bitstr.FromBytes(data, len(data)*8))
}

// AppendBits returns data ⊕ crc(data): the unit a CRC-CD tag transmits.
// The checksum occupies p.Width bits, MSB first.
func AppendBits(p Params, data bitstr.BitString) bitstr.BitString {
	sum := ChecksumBits(p, data)
	return bitstr.Concat(data, bitstr.FromUint64(sum, p.Width))
}

// VerifyBits splits framed into payload and p.Width checksum bits, and
// reports whether the checksum matches the payload. It panics if framed is
// shorter than the checksum.
func VerifyBits(p Params, framed bitstr.BitString) bool {
	if framed.Len() < p.Width {
		panic(fmt.Sprintf("crc: frame of %d bits shorter than %d-bit checksum", framed.Len(), p.Width))
	}
	payload := framed.Slice(0, framed.Len()-p.Width)
	got := framed.Slice(framed.Len()-p.Width, framed.Len()).Uint64()
	return ChecksumBits(p, payload) == got
}

func reflect(v uint64, width int) uint64 {
	return bits.Reverse64(v) >> (64 - uint(width))
}

// SelfTest recomputes the catalogue check value ("123456789") for p and
// reports whether both the bit-serial and table-driven engines agree with
// it. Presets are verified by this in package tests.
func SelfTest(p Params) error {
	data := []byte("123456789")
	if got := Checksum(p, data); got != p.Check {
		return fmt.Errorf("crc: %s bit-serial check = %#x, want %#x", p.Name, got, p.Check)
	}
	tab := NewTable(p)
	if got := tab.Checksum(data); got != p.Check {
		return fmt.Errorf("crc: %s table check = %#x, want %#x", p.Name, got, p.Check)
	}
	return nil
}
