package air

import (
	"testing"

	"repro/internal/bitstr"
	"repro/internal/crc"
	"repro/internal/detect"
	"repro/internal/prng"
	"repro/internal/signal"
	"repro/internal/tagmodel"
)

func pop(n int, seed uint64) tagmodel.Population {
	return tagmodel.NewPopulation(n, 64, prng.New(seed))
}

func TestIdleSlot(t *testing.T) {
	for _, det := range []detect.Detector{
		detect.NewQCD(8, 64),
		detect.NewCRCCD(crc.CRC32IEEE, 64),
		detect.NewOracle(1, 64),
	} {
		o := RunSlot(det, nil, 0, 1)
		if o.Truth != signal.Idle || o.Declared != signal.Idle {
			t.Errorf("%s: idle slot -> truth %v declared %v", det.Name(), o.Truth, o.Declared)
		}
		if o.Identified != nil || o.Phantom {
			t.Errorf("%s: idle slot identified/phantom", det.Name())
		}
		if o.Bits != det.ContentionBits() {
			t.Errorf("%s: idle slot bits = %d", det.Name(), o.Bits)
		}
	}
}

func TestSingleSlotIdentifies(t *testing.T) {
	for _, det := range []detect.Detector{
		detect.NewQCD(8, 64),
		detect.NewCRCCD(crc.CRC32IEEE, 64),
		detect.NewOracle(1, 64),
	} {
		p := pop(1, 42)
		o := RunSlot(det, p, 100, 1)
		if o.Declared != signal.Single {
			t.Fatalf("%s: single slot declared %v", det.Name(), o.Declared)
		}
		if o.Identified != p[0] || !p[0].Identified {
			t.Fatalf("%s: tag not identified", det.Name())
		}
		wantEnd := 100 + float64(o.Bits)
		if p[0].IdentifiedAtMicros != wantEnd {
			t.Errorf("%s: identified at %v, want %v", det.Name(), p[0].IdentifiedAtMicros, wantEnd)
		}
		wantBits := detect.SlotBits(det, signal.Single)
		if o.Bits != wantBits {
			t.Errorf("%s: bits = %d, want %d", det.Name(), o.Bits, wantBits)
		}
	}
}

func TestCollidedSlotNoIdentification(t *testing.T) {
	// Strength 16 makes a detection miss vanishingly unlikely for a fixed
	// seeded pair, so this is deterministic in practice.
	det := detect.NewQCD(16, 64)
	p := pop(2, 43)
	o := RunSlot(det, p, 0, 1)
	if o.Truth != signal.Collided {
		t.Fatalf("truth = %v", o.Truth)
	}
	if o.Declared != signal.Collided {
		t.Fatalf("declared = %v", o.Declared)
	}
	if o.Identified != nil {
		t.Fatal("a collided slot identified a tag")
	}
	if o.Bits != det.ContentionBits() {
		t.Errorf("collided slot bits = %d, want contention only", o.Bits)
	}
}

func TestBitsSentAccounting(t *testing.T) {
	det := detect.NewQCD(8, 64)
	p := pop(1, 44)
	RunSlot(det, p, 0, 1)
	// Contention preamble (16) + ID phase (64).
	if p[0].BitsSent != 80 {
		t.Errorf("tag sent %d bits, want 80", p[0].BitsSent)
	}

	p2 := pop(2, 45)
	RunSlot(detect.NewQCD(16, 64), p2, 0, 1)
	for _, tag := range p2 {
		if tag.BitsSent != 32 { // collided: preamble only
			t.Errorf("collided tag sent %d bits, want 32", tag.BitsSent)
		}
	}
}

func TestMisdetectedCollisionPhantomOrSubset(t *testing.T) {
	// Force a QCD miss: both tags will draw the same 1-bit integer with
	// probability 1/2, so scan seeds for a missed detection and check the
	// outcome is phantom (OR of distinct IDs matches neither) or a subset
	// identification (OR equals one ID).
	det := detect.NewQCD(1, 8)
	sawMiss := false
	for seed := uint64(0); seed < 64 && !sawMiss; seed++ {
		rng := prng.New(seed)
		a := tagmodel.New(0, bitstr.FromUint64(rng.Bits(8), 8), rng.Split())
		b := tagmodel.New(1, bitstr.FromUint64(rng.Bits(8), 8), rng.Split())
		if a.ID.Equal(b.ID) {
			continue
		}
		o := RunSlot(det, []*tagmodel.Tag{a, b}, 0, 1)
		if o.Truth != signal.Collided || o.Declared != signal.Single {
			continue
		}
		sawMiss = true
		or := bitstr.Or(a.ID, b.ID)
		subset := or.Equal(a.ID) || or.Equal(b.ID)
		if subset {
			if o.Identified == nil || o.Phantom {
				t.Error("subset-ID collision should identify the superset tag")
			}
		} else {
			if o.Identified != nil || !o.Phantom {
				t.Error("garbled ACK should identify nobody and flag phantom")
			}
		}
		// The slot must have paid for the ID phase either way.
		if o.Bits != det.ContentionBits()+det.IDPhaseBits() {
			t.Errorf("misdetected slot bits = %d", o.Bits)
		}
	}
	if !sawMiss {
		t.Fatal("no missed detection found across 64 seeds (1-bit strength should miss ~50%)")
	}
}

func TestSubsetIDIdentifiesSupersetTagOnly(t *testing.T) {
	// Craft IDs where a ⊂ b bitwise, and force same preamble integers by
	// using the oracle-defeating 1-bit strength until a miss occurs with
	// the OR equal to b's ID: then b is identified, a is not.
	det := detect.NewQCD(1, 4)
	idA := bitstr.MustParse("0001")
	idB := bitstr.MustParse("0011") // a|b == b
	for seed := uint64(0); seed < 200; seed++ {
		rng := prng.New(seed)
		a := tagmodel.New(0, idA, rng.Split())
		b := tagmodel.New(1, idB, rng.Split())
		o := RunSlot(det, []*tagmodel.Tag{a, b}, 0, 1)
		if o.Declared != signal.Single {
			continue
		}
		if o.Identified != b {
			t.Fatal("expected the superset tag to be acknowledged")
		}
		if a.Identified {
			t.Fatal("subset tag must stay unidentified")
		}
		return
	}
	t.Fatal("no missed detection in 200 seeds")
}
