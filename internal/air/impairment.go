package air

import (
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/detect"
	"repro/internal/prng"
	"repro/internal/signal"
	"repro/internal/tagmodel"
)

// Impairment models a non-ideal channel, the "more practical issues"
// the paper's conclusion defers:
//
//   - BER flips each bit the reader receives independently with the given
//     probability. Noise makes both schemes conservative: a flipped
//     preamble bit breaks c = r̄ and a flipped payload bit breaks the CRC,
//     so clean singles get re-arbitrated instead of mis-read.
//   - CaptureProb is the capture effect: with this probability a slot
//     with m ≥ 2 responders delivers only the strongest tag's signal, so
//     the reader legitimately singulates one tag out of a collision.
//
// The zero value is the ideal channel.
type Impairment struct {
	BER         float64
	CaptureProb float64
	// Rng drives the noise and capture draws; required when either
	// probability is non-zero.
	Rng *prng.Source
}

func (im *Impairment) active() bool {
	return im != nil && (im.BER > 0 || im.CaptureProb > 0)
}

func (im *Impairment) validate() {
	if im == nil {
		return
	}
	if im.BER < 0 || im.BER >= 1 || im.CaptureProb < 0 || im.CaptureProb > 1 {
		panic(fmt.Sprintf("air: invalid impairment %+v", im))
	}
	if im.active() && im.Rng == nil {
		panic("air: impairment needs an Rng")
	}
}

// corrupt flips bits of s independently with probability BER.
func (im *Impairment) corrupt(s bitstr.BitString) bitstr.BitString {
	if im == nil || im.BER == 0 || s.Len() == 0 {
		return s
	}
	out := s
	for i := 0; i < s.Len(); i++ {
		if im.Rng.Float64() < im.BER {
			out = out.SetBit(i, 1-out.Bit(i))
		}
	}
	return out
}

// RunSlotImpaired is RunSlot over a noisy/capturing channel, reusing sc's
// channels and buffers. A nil or zero impairment reproduces RunSlot
// exactly.
func (sc *SlotScratch) RunSlotImpaired(det detect.Detector, responders []*tagmodel.Tag, im *Impairment, nowMicros, tauMicros float64) Outcome {
	im.validate()
	if !im.active() {
		return sc.RunSlot(det, responders, nowMicros, tauMicros)
	}
	out := Outcome{Truth: signal.Classify(len(responders))}

	// Capture: one slot-wide draw decides whether the strongest responder
	// (modelled as a uniform pick) captures both phases.
	captured := -1
	if len(responders) >= 2 && im.CaptureProb > 0 && im.Rng.Float64() < im.CaptureProb {
		captured = im.Rng.Intn(len(responders))
	}

	ch := &sc.contention
	ch.Reset()
	for i, t := range responders {
		payload := detect.PayloadInto(det, t, &sc.payload)
		t.BitsSent += int64(payload.Len())
		if captured >= 0 && i != captured {
			continue // drowned out by the captured tag
		}
		ch.Transmit(payload)
	}
	contention := ch.Receive()
	contention.Responders = len(responders) // ground truth survives capture
	contention.Signal = im.corrupt(contention.Signal)
	out.Declared = det.Classify(contention)
	out.Bits = det.ContentionBits()
	if out.Declared != signal.Single {
		return out
	}

	var idPhase signal.Reception
	if det.NeedsIDPhase() {
		out.Bits += det.IDPhaseBits()
		idCh := &sc.idPhase
		idCh.Reset()
		for i, t := range responders {
			t.BitsSent += int64(t.ID.Len())
			if captured >= 0 && i != captured {
				continue
			}
			idCh.Transmit(t.ID)
		}
		idPhase = idCh.Receive()
		idPhase.Responders = len(responders)
		idPhase.Signal = im.corrupt(idPhase.Signal)
	}

	acked, ok := det.ExtractID(contention, idPhase)
	if ok {
		out.Identified = matchResponder(responders, acked)
	}
	if out.Identified != nil {
		out.Identified.Identified = true
		out.Identified.IdentifiedAtMicros = nowMicros + float64(out.Bits)*tauMicros
	} else {
		out.Phantom = true
	}
	return out
}

// RunSlotImpaired is the convenience form of SlotScratch.RunSlotImpaired
// with freshly zeroed scratch state; engines in a hot loop should hold a
// SlotScratch instead.
func RunSlotImpaired(det detect.Detector, responders []*tagmodel.Tag, im *Impairment, nowMicros, tauMicros float64) Outcome {
	var sc SlotScratch
	return sc.RunSlotImpaired(det, responders, im, nowMicros, tauMicros)
}
