package air

import (
	"testing"

	"repro/internal/crc"
	"repro/internal/detect"
	"repro/internal/prng"
	"repro/internal/signal"
)

func TestZeroImpairmentMatchesIdeal(t *testing.T) {
	det := detect.NewQCD(8, 64)
	p1 := pop(3, 50)
	ideal := RunSlot(det, p1, 0, 1)
	p2 := pop(3, 50)
	same := RunSlotImpaired(det, p2, nil, 0, 1)
	if ideal.Declared != same.Declared || ideal.Bits != same.Bits {
		t.Error("nil impairment diverged from RunSlot")
	}
	p3 := pop(3, 50)
	zero := RunSlotImpaired(det, p3, &Impairment{}, 0, 1)
	if ideal.Declared != zero.Declared {
		t.Error("zero impairment diverged from RunSlot")
	}
}

func TestNoiseCausesFalseCollisionsNotMisreads(t *testing.T) {
	// Under heavy noise, true singles get re-arbitrated (declared
	// collided) but are essentially never mis-identified: the self-check
	// fails closed for both schemes.
	for _, det := range []detect.Detector{
		detect.NewQCD(8, 64),
		detect.NewCRCCD(crc.CRC32IEEE, 64),
	} {
		im := &Impairment{BER: 0.05, Rng: prng.New(1)}
		falseCollision, misread := 0, 0
		for i := 0; i < 500; i++ {
			p := pop(1, 1000+uint64(i))
			o := RunSlotImpaired(det, p, im, 0, 1)
			switch {
			case o.Declared == signal.Collided:
				falseCollision++
			case o.Identified != nil && o.Identified != p[0]:
				misread++
			}
		}
		if falseCollision == 0 {
			t.Errorf("%s: no false collisions at BER=0.05 (noise not applied?)", det.Name())
		}
		if misread != 0 {
			t.Errorf("%s: %d misreads", det.Name(), misread)
		}
	}
}

func TestCaptureSingulatesCollisions(t *testing.T) {
	// With capture probability 1, every 2-tag slot reads exactly one of
	// the two tags.
	det := detect.NewQCD(16, 64)
	im := &Impairment{CaptureProb: 1, Rng: prng.New(2)}
	for i := 0; i < 100; i++ {
		p := pop(2, 2000+uint64(i))
		o := RunSlotImpaired(det, p, im, 0, 1)
		if o.Declared != signal.Single {
			t.Fatalf("trial %d: captured slot declared %v", i, o.Declared)
		}
		if o.Identified == nil || (o.Identified != p[0] && o.Identified != p[1]) {
			t.Fatalf("trial %d: captured slot identified %v", i, o.Identified)
		}
		if o.Truth != signal.Collided {
			t.Fatalf("trial %d: ground truth lost", i)
		}
	}
}

func TestCaptureNeverFiresOnSingles(t *testing.T) {
	det := detect.NewQCD(8, 64)
	im := &Impairment{CaptureProb: 1, Rng: prng.New(3)}
	p := pop(1, 77)
	o := RunSlotImpaired(det, p, im, 0, 1)
	if o.Identified != p[0] {
		t.Error("capture broke the lone-responder path")
	}
}

func TestImpairmentValidation(t *testing.T) {
	det := detect.NewQCD(8, 64)
	bad := []*Impairment{
		{BER: -0.1, Rng: prng.New(1)},
		{BER: 1.0, Rng: prng.New(1)},
		{CaptureProb: 1.5, Rng: prng.New(1)},
		{BER: 0.1}, // missing Rng
	}
	for i, im := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("impairment %d accepted: %+v", i, im)
				}
			}()
			RunSlotImpaired(det, pop(1, 9), im, 0, 1)
		}()
	}
}

func TestCaptureCountsAllTransmissions(t *testing.T) {
	// Drowned-out tags still spent their energy transmitting.
	det := detect.NewQCD(8, 64)
	im := &Impairment{CaptureProb: 1, Rng: prng.New(4)}
	p := pop(2, 88)
	RunSlotImpaired(det, p, im, 0, 1)
	for _, tag := range p {
		if tag.BitsSent < 16 {
			t.Errorf("tag %d sent %d bits; capture must not erase its cost", tag.Index, tag.BitsSent)
		}
	}
}
