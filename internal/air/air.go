// Package air executes the over-the-air protocol of a single slot: the
// contention phase, the reader's classification, the optional ID phase,
// and the acknowledgement rule that decides whether a tag was identified.
//
// Every anti-collision engine (FSA, BT, QT) reduces to "choose who
// responds in this slot"; the slot mechanics themselves are shared and
// live here so that any detector plugs into any algorithm — the paper's
// "seamlessly adopted by current anti-collision algorithms" property.
//
// # Allocation invariant
//
// A slot over the ideal channel performs no heap allocation: contention
// payloads are built inline or into a reusable scratch (see SlotScratch
// and detect.ScratchPayloader), the channel retains its signal buffer
// across slots, and classification reads the overlapped signal as machine
// words. The allocation-guard test in this package pins RunSlot at
// 0 allocs/op for QCD and the oracle; keep it green when touching the
// slot path.
package air

import (
	"repro/internal/bitstr"
	"repro/internal/detect"
	"repro/internal/signal"
	"repro/internal/tagmodel"
)

// Outcome describes what happened in one slot.
type Outcome struct {
	// Truth is the ground-truth slot type (from the responder count).
	Truth signal.SlotType
	// Declared is the detector's classification.
	Declared signal.SlotType
	// Identified is the tag whose ID the reader successfully acknowledged,
	// or nil. A tag can be identified only in a slot declared single.
	Identified *tagmodel.Tag
	// Phantom is true when the slot was declared single but the extracted
	// ID matched no responder (a garbled acknowledgement): airtime was
	// spent, nobody was identified, and the responders re-arbitrate.
	Phantom bool
	// Bits is the total airtime of the slot in bits, as actually spent:
	// contention, plus the ID phase if the detector declared single and
	// uses a separate ID transmission.
	Bits int
}

// SlotScratch holds the per-slot working state — the two phase channels
// and a payload assembly buffer — so that an engine can run an entire
// inventory round without per-slot allocation. The zero value is ready to
// use; allocate one per round (or per engine session) and pass it to
// RunSlot. A SlotScratch must not be shared between concurrently running
// rounds.
type SlotScratch struct {
	contention signal.Channel
	idPhase    signal.Channel
	payload    bitstr.BitString
}

// RunSlot executes one slot in which the given tags respond under det,
// reusing sc's channels and buffers. nowMicros is the simulation time at
// the start of the slot and tauMicros the per-bit airtime; an identified
// tag is stamped with the slot's end time. Responders must be unidentified
// tags; the engine guarantees this.
func (sc *SlotScratch) RunSlot(det detect.Detector, responders []*tagmodel.Tag, nowMicros, tauMicros float64) Outcome {
	out := Outcome{Truth: signal.Classify(len(responders))}

	ch := &sc.contention
	ch.Reset()
	for _, t := range responders {
		payload := detect.PayloadInto(det, t, &sc.payload)
		t.BitsSent += int64(payload.Len())
		ch.Transmit(payload)
	}
	contention := ch.Receive()
	out.Declared = det.Classify(contention)
	out.Bits = det.ContentionBits()

	if out.Declared != signal.Single {
		return out
	}

	// The reader believes exactly one tag responded. Run the ID phase if
	// the scheme defers the ID, then acknowledge the extracted ID; only a
	// tag whose ID matches the acknowledgement byte-for-byte considers
	// itself identified (EPC Gen-2 ACK semantics), so a misdetected
	// collision usually wastes the slot rather than corrupting state.
	var idPhase signal.Reception
	if det.NeedsIDPhase() {
		out.Bits += det.IDPhaseBits()
		idCh := &sc.idPhase
		idCh.Reset()
		for _, t := range responders {
			t.BitsSent += int64(t.ID.Len())
			idCh.Transmit(t.ID)
		}
		idPhase = idCh.Receive()
	}

	acked, ok := det.ExtractID(contention, idPhase)
	if ok {
		out.Identified = matchResponder(responders, acked)
	}
	if out.Identified != nil {
		out.Identified.Identified = true
		out.Identified.IdentifiedAtMicros = nowMicros + float64(out.Bits)*tauMicros
	} else {
		out.Phantom = true
	}
	return out
}

// RunSlot executes one slot with freshly zeroed scratch state. It is the
// convenience form of SlotScratch.RunSlot for callers outside the hot
// loop; engines iterating over frames should hold a SlotScratch instead so
// channel buffers persist across slots.
func RunSlot(det detect.Detector, responders []*tagmodel.Tag, nowMicros, tauMicros float64) Outcome {
	var sc SlotScratch
	return sc.RunSlot(det, responders, nowMicros, tauMicros)
}

func matchResponder(responders []*tagmodel.Tag, acked bitstr.BitString) *tagmodel.Tag {
	for _, t := range responders {
		if t.ID.Equal(acked) {
			return t
		}
	}
	return nil
}
