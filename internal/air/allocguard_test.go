//go:build !race

// Allocation guards for the slot engine's zero-allocation invariant (see
// the package documentation). Excluded under the race detector, which
// instruments allocations and would trip the counts.

package air

import (
	"testing"

	"repro/internal/crc"
	"repro/internal/detect"
)

// TestRunSlotIdealChannelAllocatesNothing pins RunSlot over the ideal
// channel at exactly 0 allocs for QCD and the oracle across every slot
// type — the tentpole invariant of the word-backed slot path. If this
// fails, something on the slot path (payload assembly, channel clone,
// classification, ID extraction) regressed onto the heap.
func TestRunSlotIdealChannelAllocatesNothing(t *testing.T) {
	dets := []struct {
		name string
		det  detect.Detector
	}{
		{"qcd", detect.NewQCD(8, 64)},
		{"qcd-strength32", detect.NewQCD(32, 64)},
		{"oracle", detect.NewOracle(1, 64)},
	}
	tags := pop(4, 1)
	cases := []struct {
		name  string
		count int
	}{
		{name: "idle", count: 0},
		{name: "single", count: 1},
		{name: "collided", count: 4},
	}
	for _, d := range dets {
		for _, c := range cases {
			responders := tags[:c.count]
			got := testing.AllocsPerRun(200, func() {
				o := RunSlot(d.det, responders, 0, 1)
				if o.Identified != nil {
					o.Identified.Identified = false
				}
			})
			if got != 0 {
				t.Errorf("%s/%s: RunSlot allocates %.1f/op, want 0", d.name, c.name, got)
			}
		}
	}
}

// TestSlotScratchReuseCRCCDSteadyState checks that CRC-CD, whose 96-bit
// framed unit cannot live inline, still reaches zero steady-state
// allocation once a reused SlotScratch owns the buffers — the state every
// engine runs in after its first slot. (A fresh scratch per slot pays for
// the payload and channel buffers; that transient is allowed.)
func TestSlotScratchReuseCRCCDSteadyState(t *testing.T) {
	det := detect.NewCRCCD(crc.CRC32IEEE, 64)
	tags := pop(4, 2)
	var sc SlotScratch
	// Warm-up: let the scratch grow its buffers.
	for i := 0; i < 4; i++ {
		o := sc.RunSlot(det, tags[:2], 0, 1)
		if o.Identified != nil {
			o.Identified.Identified = false
		}
	}
	got := testing.AllocsPerRun(200, func() {
		o := sc.RunSlot(det, tags[:2], 0, 1)
		if o.Identified != nil {
			o.Identified.Identified = false
		}
	})
	if got != 0 {
		t.Errorf("CRC-CD with reused scratch allocates %.1f/op in steady state, want 0", got)
	}
}
