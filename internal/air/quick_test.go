package air

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitstr"
	"repro/internal/crc"
	"repro/internal/detect"
	"repro/internal/prng"
	"repro/internal/signal"
	"repro/internal/tagmodel"
)

// randomResponders builds 0..6 tags with unique random 64-bit IDs.
func randomResponders(r *rand.Rand) []*tagmodel.Tag {
	n := r.Intn(7)
	rng := prng.New(r.Uint64())
	if n == 0 {
		return nil
	}
	return tagmodel.NewPopulation(n, 64, rng)
}

func detectors() []detect.Detector {
	return []detect.Detector{
		detect.NewQCD(8, 64),
		detect.NewQCD(1, 64), // high miss rate on purpose
		detect.NewCRCCD(crc.CRC32IEEE, 64),
		detect.NewCRCCD(crc.CRC16EPC, 64),
		detect.NewOracle(1, 64),
	}
}

// TestQuickSlotInvariants checks, for random responder sets and every
// detector:
//  1. idle truth ⇒ idle declared (no detector hallucinates energy);
//  2. single truth ⇒ single declared AND the tag is identified
//     (Theorem 1 claim 2 / CRC self-consistency);
//  3. an identified tag is always one of the responders;
//  4. declared collided ⇒ nobody identified;
//  5. bits spent match the declared slot type's airtime.
func TestQuickSlotInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for _, det := range detectors() {
			tags := randomResponders(r)
			o := RunSlot(det, tags, 0, 1)
			switch {
			case len(tags) == 0:
				if o.Declared != signal.Idle || o.Identified != nil {
					return false
				}
			case len(tags) == 1:
				if o.Declared != signal.Single || o.Identified != tags[0] {
					return false
				}
			}
			if o.Identified != nil {
				found := false
				for _, tag := range tags {
					if tag == o.Identified {
						found = true
					}
				}
				if !found {
					return false
				}
			}
			if o.Declared == signal.Collided && o.Identified != nil {
				return false
			}
			want := detect.SlotBits(det, o.Declared)
			if o.Bits != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickNoFalseCollisionOnTrueSingle is Theorem 1's converse as a
// standalone property: m = 1 is never flagged.
func TestQuickNoFalseCollisionOnTrueSingle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rng := prng.New(r.Uint64())
		tag := tagmodel.New(0, bitstr.FromUint64(rng.Bits(64), 64), rng.Split())
		for _, det := range detectors() {
			o := RunSlot(det, []*tagmodel.Tag{tag}, 0, 1)
			tag.Identified = false // reset for the next detector
			if o.Declared != signal.Single {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickPhantomImpliesFalseSingle: a phantom can only arise from a
// misdetected collision, never from a true single.
func TestQuickPhantomImpliesFalseSingle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		det := detect.NewQCD(1, 64) // misses ~half of pairwise collisions
		tags := randomResponders(r)
		o := RunSlot(det, tags, 0, 1)
		if o.Phantom && o.Truth != signal.Collided {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
