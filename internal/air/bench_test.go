package air

import (
	"testing"

	"repro/internal/crc"
	"repro/internal/detect"
	"repro/internal/signal"
)

// Per-slot micro-benchmarks for the three ground-truth slot types under
// each detector. These localise hot-path regressions to the slot engine
// (bitstr + signal + air) before they show up in end-to-end numbers; the
// companion allocation guard pins the ideal-channel QCD/oracle paths at
// zero allocations.

func benchSlot(b *testing.B, det detect.Detector, responders int) {
	b.Helper()
	p := pop(responders, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := RunSlot(det, p, 0, 1)
		if o.Identified != nil {
			o.Identified.Identified = false
		}
	}
}

func BenchmarkRunSlot(b *testing.B) {
	dets := []struct {
		name string
		det  detect.Detector
	}{
		{"qcd", detect.NewQCD(8, 64)},
		{"crccd", detect.NewCRCCD(crc.CRC32IEEE, 64)},
		{"oracle", detect.NewOracle(1, 64)},
	}
	cases := []struct {
		name       string
		responders int
	}{
		{"idle", 0},
		{"single", 1},
		{"collided", 4},
	}
	for _, c := range cases {
		for _, d := range dets {
			b.Run(c.name+"/"+d.name, func(b *testing.B) {
				benchSlot(b, d.det, c.responders)
			})
		}
	}
}

// BenchmarkRunSlotImpaired measures the noisy-channel slot path (BER +
// capture), which is allowed to allocate; it exists so an optimisation of
// the ideal path cannot silently regress the impaired one.
func BenchmarkRunSlotImpaired(b *testing.B) {
	det := detect.NewQCD(8, 64)
	p := pop(4, 1)
	im := &Impairment{BER: 0.001, CaptureProb: 0.1, Rng: p[0].Rng.Split()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := RunSlotImpaired(det, p, im, 0, 1)
		if o.Identified != nil {
			o.Identified.Identified = false
		}
	}
}

var benchSink signal.SlotType

// BenchmarkClassifyOnly isolates the reader-side verdict from payload
// generation: one overlapped reception classified repeatedly.
func BenchmarkClassifyOnly(b *testing.B) {
	det := detect.NewQCD(8, 64)
	p := pop(2, 1)
	rx := signal.Overlap(det.ContentionPayload(p[0]), det.ContentionPayload(p[1]))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = det.Classify(rx)
	}
}
