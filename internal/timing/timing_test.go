package timing

import (
	"testing"

	"repro/internal/crc"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/signal"
)

func TestSlotMicros(t *testing.T) {
	m := Model{TauMicros: 1}
	qcd := detect.NewQCD(8, 64)
	if got := m.SlotMicros(qcd, signal.Idle); got != 16 {
		t.Errorf("QCD idle slot = %v μs", got)
	}
	if got := m.SlotMicros(qcd, signal.Single); got != 80 {
		t.Errorf("QCD single slot = %v μs", got)
	}
	crccd := detect.NewCRCCD(crc.CRC32IEEE, 64)
	for _, typ := range []signal.SlotType{signal.Idle, signal.Single, signal.Collided} {
		if got := m.SlotMicros(crccd, typ); got != 96 {
			t.Errorf("CRC-CD %v slot = %v μs", typ, got)
		}
	}
}

func TestTauScaling(t *testing.T) {
	m := Model{TauMicros: 25} // e.g. a 40 kbps backscatter link
	if got := m.BitsMicros(96); got != 2400 {
		t.Errorf("96 bits at τ=25 = %v μs", got)
	}
}

func TestSessionMicrosMatchesPaperFormulas(t *testing.T) {
	// Case II of Table VII with the paper's formulas: 1376 idle, 500
	// single, 394 collided.
	c := metrics.Census{Idle: 1376, Single: 500, Collided: 394}
	m := Default

	crccd := detect.NewCRCCD(crc.CRC32IEEE, 64)
	wantCRC := float64(c.Slots()) * 96
	if got := m.SessionMicros(c, crccd); got != wantCRC {
		t.Errorf("CRC-CD session = %v, want %v", got, wantCRC)
	}

	qcd := detect.NewQCD(8, 64)
	wantQCD := 500.0*(16+64) + float64(1376+394)*16
	if got := m.SessionMicros(c, qcd); got != wantQCD {
		t.Errorf("QCD session = %v, want %v", got, wantQCD)
	}

	// And the resulting EI is the Figure-8a case-II value (~0.69).
	ei := (wantCRC - wantQCD) / wantCRC
	if ei < 0.6 || ei > 0.75 {
		t.Errorf("case-II EI = %v, expected ≈ 0.69", ei)
	}
}

func TestDefaultModel(t *testing.T) {
	if Default.TauMicros != 1 {
		t.Errorf("default τ = %v, want 1 μs", Default.TauMicros)
	}
}
