// Package timing converts airtime in bits into wall time. The paper's
// Section V assumes a constant per-bit time τ; with τ = 1 μs the
// transmission-time magnitudes of Figure 7 (1e5 μs for hundreds of tags,
// 1e7 μs for tens of thousands) fall out of the slot censuses directly.
package timing

import (
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/signal"
)

// Model is a constant-rate timing model.
type Model struct {
	// TauMicros is the time to transmit one bit, in microseconds.
	TauMicros float64
}

// Default is the paper's evaluation setting, τ = 1 μs per bit.
var Default = Model{TauMicros: 1}

// SlotMicros returns the airtime of one slot of the given declared type
// under detector d.
func (m Model) SlotMicros(d detect.Detector, typ signal.SlotType) float64 {
	return float64(detect.SlotBits(d, typ)) * m.TauMicros
}

// BitsMicros converts a bit count to microseconds.
func (m Model) BitsMicros(bits int64) float64 { return float64(bits) * m.TauMicros }

// SessionMicros evaluates the paper's closed-form session time for a slot
// census under detector d, assuming perfect detection (every single slot
// pays the ID phase, every idle/collided slot pays only contention):
//
//	CRC-CD: (N0+N1+Nc) · (l_id+l_crc) · τ
//	QCD:    N1·(l_prm+l_id)·τ + (N0+Nc)·l_prm·τ
func (m Model) SessionMicros(c metrics.Census, d detect.Detector) float64 {
	bits := int64(c.Single)*int64(detect.SlotBits(d, signal.Single)) +
		int64(c.Idle)*int64(detect.SlotBits(d, signal.Idle)) +
		int64(c.Collided)*int64(detect.SlotBits(d, signal.Collided))
	return m.BitsMicros(bits)
}
