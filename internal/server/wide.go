package server

// Wide events: one canonical, high-dimensionality record per finished
// unit of work (single experiment or sweep cell). Each event carries
// the who (origin, id, cell label), the what (algorithm, detector,
// tags, frame), the how (cache disposition) and the span timings
// (queue wait, run time) in a single slog line, plus a bounded ring of
// recent events rendered on /debug/statusz. The matching aggregate
// view is the per-origin histogram set registered in metrics.go.

import (
	"strconv"
	"sync"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/sweep"
)

// originLat bundles the latency-decomposition histograms for one
// request origin (single submissions vs sweep cells).
type originLat struct {
	queueWait *obs.Histogram
	run       *obs.Histogram
	lookup    *obs.Histogram
}

// wideEvent is one finished job or cell, flattened for logs and
// statusz.
type wideEvent struct {
	Time      time.Time
	Origin    string // originJob or originSweep
	ID        string // experiment id, or sweep-cell job id
	Label     string // sweep cell label; "" for single experiments
	Status    string
	Algorithm string
	Detector  string
	Tags      int
	FrameSize int
	Cache     string // "hit", "miss" or "coalesced"
	QueueWait time.Duration
	RunTime   time.Duration
	Attempts  int
	Err       string
}

// wideLog is a fixed-size ring of the most recent wide events.
type wideLog struct {
	mu    sync.Mutex
	buf   []wideEvent
	next  int // overwrite position once the ring is full
	total uint64
}

func newWideLog(n int) *wideLog {
	if n <= 0 {
		n = 128
	}
	return &wideLog{buf: make([]wideEvent, 0, n)}
}

func (l *wideLog) add(ev wideEvent) {
	l.mu.Lock()
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, ev)
	} else {
		l.buf[l.next] = ev
		l.next = (l.next + 1) % len(l.buf)
	}
	l.total++
	l.mu.Unlock()
}

// recent returns up to max events, newest first.
func (l *wideLog) recent(max int) []wideEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.buf)
	if max > n {
		max = n
	}
	out := make([]wideEvent, 0, max)
	// Newest entry is just before the overwrite cursor (or the slice end
	// while the ring is still filling).
	for i := 0; i < max; i++ {
		idx := (l.next - 1 - i + 2*n) % n
		out = append(out, l.buf[idx])
	}
	return out
}

// count returns how many wide events have ever been emitted.
func (l *wideLog) count() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// emitWide records one wide event: ring for statusz, one slog line for
// everything downstream.
func (s *Server) emitWide(ev wideEvent) {
	ev.Time = time.Now()
	s.wide.add(ev)
	if s.logger == nil {
		return
	}
	attrs := []any{
		"origin", ev.Origin, "id", ev.ID, "status", ev.Status,
		"algorithm", ev.Algorithm, "detector", ev.Detector,
		"tags", ev.Tags, "frame", ev.FrameSize, "cache", ev.Cache,
		"queue_wait", ev.QueueWait, "run_time", ev.RunTime,
	}
	if ev.Label != "" {
		attrs = append(attrs, "cell", ev.Label)
	}
	if ev.Attempts > 0 {
		attrs = append(attrs, "attempts", ev.Attempts)
	}
	if ev.Err != "" {
		attrs = append(attrs, "err", ev.Err)
	}
	s.logger.Info("wide", attrs...)
}

// onCellDone receives every sweep cell's terminal state from the sweep
// runner: the decomposition histograms see cells that actually ran,
// and every cell (run, cached, coalesced, canceled) gets a wide event.
func (s *Server) onCellDone(d sweep.CellDone) {
	st := d.State
	cache := "miss"
	switch {
	case st.Cached:
		cache = "hit"
	case st.DupOf >= 0:
		cache = "coalesced"
	}
	if cache == "miss" && (d.QueueWait > 0 || d.RunTime > 0) {
		s.sweepLat.queueWait.Observe(d.QueueWait.Seconds())
		s.sweepLat.run.Observe(d.RunTime.Seconds())
	}
	s.emitWide(wideEvent{
		Origin:    originSweep,
		ID:        d.SweepID + "/c" + strconv.Itoa(st.Index),
		Label:     st.Label,
		Status:    string(st.Status),
		Algorithm: st.Config.Algorithm,
		Detector:  st.Config.Detector,
		Tags:      st.Config.Tags,
		FrameSize: st.Config.FrameSize,
		Cache:     cache,
		QueueWait: d.QueueWait,
		RunTime:   d.RunTime,
		Err:       st.Err,
	})
}

// wideOfJob flattens a finished single experiment into a wide event.
func wideOfJob(exp *experiment, snap jobs.Snapshot, qw, rt time.Duration) wideEvent {
	ev := wideEvent{
		Origin:    originJob,
		ID:        snap.ID,
		Status:    string(snap.Status),
		Algorithm: exp.cfg.Algorithm,
		Detector:  exp.cfg.Detector,
		Tags:      exp.cfg.Tags,
		FrameSize: exp.cfg.FrameSize,
		Cache:     "miss", // cache-served submissions never reach the pool
		QueueWait: qw,
		RunTime:   rt,
		Attempts:  snap.Attempts,
	}
	if snap.Err != nil {
		ev.Err = snap.Err.Error()
	}
	return ev
}
