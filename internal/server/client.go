package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// Client is a thin typed client for the rfidd API, used by the
// end-to-end tests and suitable for scripting sweeps against a running
// daemon.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// NewClient returns a client for the given base URL.
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// apiError is a non-2xx response surfaced as an error.
type apiError struct {
	StatusCode int
	Message    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("server: HTTP %d: %s", e.StatusCode, e.Message)
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	_, err := c.doTraced(ctx, method, path, "", body, out)
	return err
}

// doTraced is do with trace propagation: a non-empty traceID is sent
// as X-Trace-Id, and the server's effective trace ID (minted when none
// was sent) is returned from the response header.
func (c *Client) doTraced(ctx context.Context, method, path, traceID string, body, out any) (string, error) {
	var rdr io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return "", err
		}
		rdr = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rdr)
	if err != nil {
		return "", err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if traceID != "" {
		req.Header.Set(TraceHeader, traceID)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	gotTrace := resp.Header.Get(TraceHeader)
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return gotTrace, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e errorResponse
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return gotTrace, &apiError{StatusCode: resp.StatusCode, Message: e.Error}
		}
		return gotTrace, &apiError{StatusCode: resp.StatusCode, Message: string(raw)}
	}
	if out != nil {
		return gotTrace, json.Unmarshal(raw, out)
	}
	return gotTrace, nil
}

// Submit enqueues an experiment and returns its (possibly cached or
// coalesced) record.
func (c *Client) Submit(ctx context.Context, cfg sim.Config) (ExperimentResponse, error) {
	var out ExperimentResponse
	err := c.do(ctx, http.MethodPost, "/v1/experiments", SubmitRequest{Config: cfg}, &out)
	return out, err
}

// Get fetches one experiment by ID.
func (c *Client) Get(ctx context.Context, id string) (ExperimentResponse, error) {
	var out ExperimentResponse
	err := c.do(ctx, http.MethodGet, "/v1/experiments/"+id, nil, &out)
	return out, err
}

// List fetches all experiment summaries.
func (c *Client) List(ctx context.Context) ([]ExperimentResponse, error) {
	var out ListResponse
	err := c.do(ctx, http.MethodGet, "/v1/experiments", nil, &out)
	return out.Experiments, err
}

// ListStatus fetches experiment summaries in one lifecycle state
// (queued, running, done, failed or canceled).
func (c *Client) ListStatus(ctx context.Context, status string) ([]ExperimentResponse, error) {
	var out ListResponse
	err := c.do(ctx, http.MethodGet, "/v1/experiments?status="+url.QueryEscape(status), nil, &out)
	return out.Experiments, err
}

// Cancel requests cancellation of a queued or running experiment.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/experiments/"+id, nil, nil)
}

// SubmitSweep schedules a parameter-grid sweep and returns its record.
func (c *Client) SubmitSweep(ctx context.Context, spec sweep.Spec) (SweepResponse, error) {
	var out SweepResponse
	err := c.do(ctx, http.MethodPost, "/v1/sweeps", SweepSubmitRequest{Spec: spec}, &out)
	return out, err
}

// SubmitSweepTraced is SubmitSweep under a service-level trace: the
// given trace ID (minted by the server when empty) is propagated, and
// the effective ID is returned for a later Trace call.
func (c *Client) SubmitSweepTraced(ctx context.Context, spec sweep.Spec, traceID string) (SweepResponse, string, error) {
	var out SweepResponse
	id, err := c.doTraced(ctx, http.MethodPost, "/v1/sweeps", traceID, SweepSubmitRequest{Spec: spec}, &out)
	return out, id, err
}

// SubmitTraced is Submit under a service-level trace; see
// SubmitSweepTraced.
func (c *Client) SubmitTraced(ctx context.Context, cfg sim.Config, traceID string) (ExperimentResponse, string, error) {
	var out ExperimentResponse
	id, err := c.doTraced(ctx, http.MethodPost, "/v1/experiments", traceID, SubmitRequest{Config: cfg}, &out)
	return out, id, err
}

// Traces lists the server's retained service-level traces.
func (c *Client) Traces(ctx context.Context) ([]obs.TraceSummary, error) {
	var out TracesResponse
	err := c.do(ctx, http.MethodGet, "/v1/traces", nil, &out)
	return out.Traces, err
}

// Trace fetches one joined trace in the given format ("" or "chrome"
// for Chrome trace-event JSON, "jsonl" for JSONL).
func (c *Client) Trace(ctx context.Context, id, format string) (string, error) {
	path := "/v1/traces/" + id
	if format != "" {
		path += "?format=" + url.QueryEscape(format)
	}
	return c.fetchText(ctx, path)
}

// Statusz fetches the /debug/statusz HTML snapshot.
func (c *Client) Statusz(ctx context.Context) (string, error) {
	return c.fetchText(ctx, "/debug/statusz")
}

// fetchText GETs a non-JSON endpoint and returns its body.
func (c *Client) fetchText(ctx context.Context, path string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		if json.Unmarshal(b, &e) == nil && e.Error != "" {
			return "", &apiError{StatusCode: resp.StatusCode, Message: e.Error}
		}
		return "", &apiError{StatusCode: resp.StatusCode, Message: string(b)}
	}
	return string(b), nil
}

// GetSweep fetches one sweep summary by ID.
func (c *Client) GetSweep(ctx context.Context, id string) (SweepResponse, error) {
	var out SweepResponse
	err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+id, nil, &out)
	return out, err
}

// ListSweeps fetches all sweep summaries.
func (c *Client) ListSweeps(ctx context.Context) ([]SweepResponse, error) {
	var out SweepListResponse
	err := c.do(ctx, http.MethodGet, "/v1/sweeps", nil, &out)
	return out.Sweeps, err
}

// SweepCells fetches a sweep's per-cell records; status "" lists every
// cell, withResults embeds each cell's aggregate bytes.
func (c *Client) SweepCells(ctx context.Context, id, status string, withResults bool) ([]SweepCellResponse, error) {
	q := url.Values{}
	if status != "" {
		q.Set("status", status)
	}
	if withResults {
		q.Set("results", "1")
	}
	path := "/v1/sweeps/" + id + "/cells"
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	var out SweepCellsResponse
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out.Cells, err
}

// SweepReport fetches the merged paper-style output, format "table" or
// "csv".
func (c *Client) SweepReport(ctx context.Context, id, format string) (string, error) {
	path := "/v1/sweeps/" + id + "/report"
	if format != "" {
		path += "?format=" + url.QueryEscape(format)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		if json.Unmarshal(b, &e) == nil && e.Error != "" {
			return "", &apiError{StatusCode: resp.StatusCode, Message: e.Error}
		}
		return "", &apiError{StatusCode: resp.StatusCode, Message: string(b)}
	}
	return string(b), nil
}

// CancelSweep requests cancellation of a running sweep.
func (c *Client) CancelSweep(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sweeps/"+id, nil, nil)
}

// WaitSweep polls GetSweep until the sweep is terminal or ctx expires.
// A zero interval polls every 10 ms.
func (c *Client) WaitSweep(ctx context.Context, id string, interval time.Duration) (SweepResponse, error) {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		resp, err := c.GetSweep(ctx, id)
		if err != nil {
			return resp, err
		}
		if terminalStatus(resp.Status) {
			return resp, nil
		}
		select {
		case <-ticker.C:
		case <-ctx.Done():
			return resp, ctx.Err()
		}
	}
}

// WatchSweep streams a sweep's per-cell progress over SSE, invoking fn
// for every event. It returns nil once the terminal "sweep" event
// arrives; transient stream drops reconnect with Last-Event-ID.
func (c *Client) WatchSweep(ctx context.Context, id string, fn func(WatchEvent) error) error {
	isTerminal := func(ev WatchEvent) bool { return ev.Type == "sweep" }
	return c.watch(ctx, "/v1/sweeps/"+id+"/events", isTerminal, fn, func() (bool, error) {
		resp, err := c.GetSweep(ctx, id)
		if err != nil {
			return false, err
		}
		return terminalStatus(resp.Status), nil
	})
}

// SubmitScenario schedules a streaming warehouse scenario and returns
// its record.
func (c *Client) SubmitScenario(ctx context.Context, spec scenario.Spec) (ScenarioResponse, error) {
	var out ScenarioResponse
	err := c.do(ctx, http.MethodPost, "/v1/scenarios", ScenarioSubmitRequest{Spec: spec}, &out)
	return out, err
}

// GetScenario fetches one scenario by ID (status, latest progress and,
// when done, the result).
func (c *Client) GetScenario(ctx context.Context, id string) (ScenarioResponse, error) {
	var out ScenarioResponse
	err := c.do(ctx, http.MethodGet, "/v1/scenarios/"+id, nil, &out)
	return out, err
}

// ListScenarios fetches all scenario summaries.
func (c *Client) ListScenarios(ctx context.Context) ([]ScenarioResponse, error) {
	var out ScenarioListResponse
	err := c.do(ctx, http.MethodGet, "/v1/scenarios", nil, &out)
	return out.Scenarios, err
}

// CancelScenario requests cancellation of a queued or running scenario.
func (c *Client) CancelScenario(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/scenarios/"+id, nil, nil)
}

// WaitScenario polls GetScenario until the run is terminal or ctx
// expires. A zero interval polls every 10 ms.
func (c *Client) WaitScenario(ctx context.Context, id string, interval time.Duration) (ScenarioResponse, error) {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		resp, err := c.GetScenario(ctx, id)
		if err != nil {
			return resp, err
		}
		if terminalStatus(resp.Status) {
			return resp, nil
		}
		select {
		case <-ticker.C:
		case <-ctx.Done():
			return resp, ctx.Err()
		}
	}
}

// WatchScenario streams a scenario's per-epoch progress over SSE,
// invoking fn for every event. It returns nil once the terminal
// "scenario" event arrives; transient stream drops reconnect with
// Last-Event-ID.
func (c *Client) WatchScenario(ctx context.Context, id string, fn func(WatchEvent) error) error {
	isTerminal := func(ev WatchEvent) bool { return ev.Type == "scenario" }
	return c.watch(ctx, "/v1/scenarios/"+id+"/events", isTerminal, fn, func() (bool, error) {
		resp, err := c.GetScenario(ctx, id)
		if err != nil {
			return false, err
		}
		return terminalStatus(resp.Status), nil
	})
}

// Wait polls Get until the experiment reaches a terminal status or ctx
// expires. A zero interval polls every 10 ms.
func (c *Client) Wait(ctx context.Context, id string, interval time.Duration) (ExperimentResponse, error) {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		resp, err := c.Get(ctx, id)
		if err != nil {
			return resp, err
		}
		switch resp.Status {
		case "done", "failed", "canceled":
			return resp, nil
		}
		select {
		case <-ticker.C:
		case <-ctx.Done():
			return resp, ctx.Err()
		}
	}
}

// WatchEvent is one telemetry event received by Watch.
type WatchEvent struct {
	// ID is the bus sequence number (the SSE id field).
	ID uint64
	// Type is the event type: "round", "frame", "audit" or "job".
	Type string
	// Data is the decoded event payload.
	Data map[string]any
}

// terminalJobEvent reports whether ev announces a terminal job state.
func terminalJobEvent(ev WatchEvent) bool {
	if ev.Type != "job" {
		return false
	}
	switch ev.Data["to"] {
	case "done", "failed", "canceled":
		return true
	}
	return false
}

// Watch streams an experiment's live telemetry over SSE, invoking fn
// for every event (heartbeat comments are filtered out). It returns nil
// once the experiment reaches a terminal state, or fn's error if fn
// returns one. Transient stream drops are survived by reconnecting with
// Last-Event-ID, so fn sees every event still in the server's replay
// ring exactly once.
func (c *Client) Watch(ctx context.Context, id string, fn func(WatchEvent) error) error {
	return c.watch(ctx, "/v1/experiments/"+id+"/events", terminalJobEvent, fn, func() (bool, error) {
		resp, err := c.Get(ctx, id)
		if err != nil {
			return false, err
		}
		return terminalStatus(resp.Status), nil
	})
}

// terminalStatus reports whether an API status string is terminal.
func terminalStatus(status string) bool {
	switch status {
	case "done", "failed", "canceled":
		return true
	}
	return false
}

// watch is the reconnecting SSE loop shared by Watch and WatchSweep:
// isTerminal spots the stream's natural end, probe decides after an
// early stream drop whether the watched object already finished.
func (c *Client) watch(ctx context.Context, path string, isTerminal func(WatchEvent) bool,
	fn func(WatchEvent) error, probe func() (bool, error)) error {
	var last uint64
	for {
		terminal, err := c.watchOnce(ctx, path, isTerminal, &last, fn)
		if terminal || err != nil {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		// The stream ended without a terminal event (e.g. this consumer
		// was dropped for lagging). Poll once: if the work already ended
		// we are done, otherwise reconnect and resume.
		done, err := probe()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// watchOnce runs one SSE connection until the stream ends. It reports
// whether a terminal event was seen; a non-nil error is fatal to the
// whole watch (API errors, fn failures, context cancellation).
func (c *Client) watchOnce(ctx context.Context, path string, isTerminal func(WatchEvent) bool,
	last *uint64, fn func(WatchEvent) error) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if *last > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(*last, 10))
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return false, ctx.Err()
		}
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		var e errorResponse
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return false, &apiError{StatusCode: resp.StatusCode, Message: e.Error}
		}
		return false, &apiError{StatusCode: resp.StatusCode, Message: string(raw)}
	}

	var ev WatchEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			// Blank line dispatches the accumulated event.
			if ev.Type != "" || ev.ID != 0 {
				if ev.ID > *last {
					*last = ev.ID
				}
				if err := fn(ev); err != nil {
					return false, err
				}
				if isTerminal(ev) {
					return true, nil
				}
			}
			ev = WatchEvent{}
		case strings.HasPrefix(line, ":"): // heartbeat comment
		case strings.HasPrefix(line, "id: "):
			ev.ID, _ = strconv.ParseUint(line[len("id: "):], 10, 64)
		case strings.HasPrefix(line, "event: "):
			ev.Type = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			_ = json.Unmarshal([]byte(line[len("data: "):]), &ev.Data)
		}
	}
	if ctx.Err() != nil {
		return false, ctx.Err()
	}
	return false, nil // stream ended; caller decides whether to resume
}

// Health probes /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Metrics returns the raw Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &apiError{StatusCode: resp.StatusCode, Message: string(b)}
	}
	return string(b), nil
}

// HistoryIndex lists the history store's retained series.
func (c *Client) HistoryIndex(ctx context.Context) (HistoryIndexResponse, error) {
	var out HistoryIndexResponse
	err := c.do(ctx, http.MethodGet, "/v1/metrics/history", nil, &out)
	return out, err
}

// MetricsHistory fetches derived points for one or more series
// selectors over the trailing window (0 = full retention). reduce ""
// takes the server's per-kind default (counters rate, gauges raw,
// histograms avg).
func (c *Client) MetricsHistory(ctx context.Context, selectors []string, window time.Duration, reduce string) (HistoryResponse, error) {
	q := url.Values{}
	for _, sel := range selectors {
		q.Add("series", sel)
	}
	if window > 0 {
		q.Set("window", window.String())
	}
	if reduce != "" {
		q.Set("reduce", reduce)
	}
	var out HistoryResponse
	err := c.do(ctx, http.MethodGet, "/v1/metrics/history?"+q.Encode(), nil, &out)
	return out, err
}

// Alerts fetches every SLO objective's alert status.
func (c *Client) Alerts(ctx context.Context) (AlertsResponse, error) {
	var out AlertsResponse
	err := c.do(ctx, http.MethodGet, "/v1/alerts", nil, &out)
	return out, err
}

// ErrStopWatch, returned from a watch callback, ends the watch cleanly.
var ErrStopWatch = errors.New("stop watch")

// WatchAlerts streams SLO alert transitions (SSE). The alert bus's
// replay ring means a fresh watch first delivers the retained
// transition history, then live transitions. The watch runs until ctx
// ends or fn returns an error; ErrStopWatch ends it with a nil error.
func (c *Client) WatchAlerts(ctx context.Context, fn func(WatchEvent) error) error {
	err := c.watch(ctx, "/v1/alerts/events",
		func(WatchEvent) bool { return false }, fn,
		func() (bool, error) { return false, nil })
	if errors.Is(err, ErrStopWatch) {
		return nil
	}
	return err
}
