package server

// Scenario endpoints: POST /v1/scenarios accepts a streaming warehouse
// spec (internal/scenario) and runs it as one long-lived job on the
// shared worker pool, exempted from the pool-wide experiment timeout
// via jobs.NoTimeout. Per-epoch progress streams over SSE ("epoch"
// events, terminal "scenario" event) from a replay ring sized to hold
// the whole run, so a client connecting after completion still drains
// every event.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// ScenarioSubmitRequest is the POST /v1/scenarios body.
type ScenarioSubmitRequest struct {
	Spec scenario.Spec `json:"spec"`
}

// ScenarioResponse is the JSON shape of one scenario, returned by the
// submit, get and list endpoints (list omits Result).
type ScenarioResponse struct {
	ID     string        `json:"id"`
	Status string        `json:"status"`
	Spec   scenario.Spec `json:"spec"` // defaulted form

	EnqueuedAt string `json:"enqueued_at,omitempty"`
	StartedAt  string `json:"started_at,omitempty"`
	FinishedAt string `json:"finished_at,omitempty"`

	// Progress is the latest epoch snapshot of a live run (also present
	// after completion, as the final epoch reported).
	Progress *scenario.Progress `json:"progress,omitempty"`
	// Result is the scenario.Result encoding, set once the run is done.
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// ScenarioListResponse is the GET /v1/scenarios body.
type ScenarioListResponse struct {
	Scenarios []ScenarioResponse `json:"scenarios"`
}

// scenarioRec is the server-side record behind a scenario ID. Lifecycle
// state lives in the pool job with the same ID; the record carries what
// the pool does not: the defaulted spec, the event bus and the latest
// progress snapshot (stored from the engine's OnEpoch callback, read by
// handlers without taking s.mu).
type scenarioRec struct {
	id        string
	spec      scenario.Spec
	createdAt time.Time
	traceID   string
	bus       *obs.Bus
	prog      atomic.Pointer[scenario.Progress]
}

func (s *Server) handleScenarioSubmit(w http.ResponseWriter, r *http.Request) {
	var req ScenarioSubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	spec := req.Spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	sc := obs.SpanFrom(r.Context())

	var bus *obs.Bus
	if s.opts.EventHistory > 0 {
		// Size the replay ring for the whole run: one "epoch" event per
		// progress report plus the terminal "scenario" event.
		epochMicros := float64(colorUpperBound(spec)) * spec.SessionMicros
		reports := int(spec.DurationMicros/(epochMicros*float64(spec.EpochsPerProgress))) + 16
		if reports > 1<<13 {
			reports = 1 << 13
		}
		bus = obs.NewBus(reports)
		bus.CountDropsInto(s.evDrops)
	}

	s.mu.Lock()
	s.nextScenID++
	id := "scn-" + strconv.FormatUint(s.nextScenID, 10)
	rec := &scenarioRec{
		id: id, spec: spec, createdAt: time.Now(),
		traceID: sc.TraceID(), bus: bus,
	}
	s.mu.Unlock()

	runSpec := spec
	fn := func(ctx context.Context) (any, error) {
		res, err := scenario.RunContext(ctx, runSpec, scenario.Options{
			Scratch: s.sweeps.Scratch,
			OnEpoch: func(p scenario.Progress) {
				rec.prog.Store(&p)
				rec.bus.Publish("epoch", progressEvent(p))
			},
		})
		if err != nil {
			return nil, err
		}
		b, err := json.Marshal(res)
		if err != nil {
			return nil, err
		}
		return json.RawMessage(b), nil
	}
	// The run outlives this request (only the span context rides along)
	// and is exempt from the pool's one-shot experiment timeout — a
	// warehouse run is minutes by design, DELETE /v1/scenarios/{id}
	// bounds it.
	if err := s.pool.SubmitTracedTimeout(r.Context(), id, fn, jobs.NoTimeout); err != nil {
		switch {
		case errors.Is(err, jobs.ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		case errors.Is(err, jobs.ErrClosed):
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		default:
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		}
		return
	}
	s.mu.Lock()
	s.scenByID[id] = rec
	s.scenOrder = append(s.scenOrder, id)
	s.pruneScenariosLocked()
	s.scenRecords.Store(int64(len(s.scenByID)))
	resp := s.scenarioResponseOf(rec)
	s.mu.Unlock()
	if s.logger != nil {
		s.logger.Info("scenario submitted", "id", id,
			"readers", spec.Readers, "arrivals_per_second", spec.ArrivalsPerSecond,
			"duration_micros", spec.DurationMicros)
	}
	s.hist.Annotate("scenario", fmt.Sprintf("%s started (%d readers, λ=%g/s)",
		id, spec.Readers, spec.ArrivalsPerSecond)) // nil-safe when history is off
	// Watch for the terminal state: publish the closing "scenario" event,
	// retire the stream, and mark the history timeline.
	go s.watchScenario(rec)
	w.Header().Set("Location", "/v1/scenarios/"+id)
	writeJSON(w, http.StatusAccepted, resp)
}

// progressEvent flattens one epoch snapshot into the bus's event
// payload shape, keys matching the Progress JSON encoding.
func progressEvent(p scenario.Progress) map[string]any {
	return map[string]any{
		"epoch":                     p.Epoch,
		"sim_micros":                p.SimMicros,
		"live":                      p.Live,
		"arrived":                   p.Arrived,
		"read":                      p.Read,
		"missed":                    p.Missed,
		"epoch_reads":               p.EpochReads,
		"epoch_mean_latency_micros": p.EpochMeanLatencyMicros,
		"reads_per_second":          p.ReadsPerSecond,
		"miss_rate":                 p.MissRate,
	}
}

// watchScenario waits for the scenario's pool job to reach a terminal
// state, then emits the terminal "scenario" SSE event, closes the bus
// (subscribers drain the replay ring, then hang up) and annotates the
// metrics history.
func (s *Server) watchScenario(rec *scenarioRec) {
	snap, err := s.pool.Wait(context.Background(), rec.id)
	if err != nil {
		return // record vanished from the pool; nothing to finalise
	}
	data := map[string]any{"id": rec.id, "status": string(snap.Status)}
	if snap.Err != nil {
		data["error"] = snap.Err.Error()
	}
	rec.bus.Publish("scenario", data)
	rec.bus.Close()
	s.hist.Annotate("scenario", fmt.Sprintf("%s %s", rec.id, snap.Status))
}

// pruneScenariosLocked evicts the oldest terminal scenarios above
// ScenarioRecordCap, forgetting their pool jobs with them; s.mu must be
// held.
func (s *Server) pruneScenariosLocked() {
	for len(s.scenOrder) > s.opts.ScenarioRecordCap {
		id := s.scenOrder[0]
		if snap, ok := s.pool.Get(id); ok && !snap.Status.Terminal() {
			return // oldest scenario still live; keep everything
		}
		s.pool.Forget(id)
		s.scenOrder = s.scenOrder[1:]
		delete(s.scenByID, id)
	}
}

// scenarioByIDOr404 resolves the path id or writes the 404.
func (s *Server) scenarioByIDOr404(w http.ResponseWriter, r *http.Request) *scenarioRec {
	id := r.PathValue("id")
	s.mu.Lock()
	rec := s.scenByID[id]
	s.mu.Unlock()
	if rec == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown scenario " + id})
	}
	return rec
}

// scenarioResponseOf assembles the response for one record from its
// pool snapshot and latest progress.
func (s *Server) scenarioResponseOf(rec *scenarioRec) ScenarioResponse {
	resp := ScenarioResponse{
		ID:       rec.id,
		Spec:     rec.spec,
		Progress: rec.prog.Load(),
	}
	snap, ok := s.pool.Get(rec.id)
	if !ok {
		resp.Status = string(jobs.StatusFailed)
		resp.Error = "job state lost"
		return resp
	}
	resp.Status = string(snap.Status)
	resp.EnqueuedAt = snap.EnqueuedAt.UTC().Format(time.RFC3339Nano)
	if !snap.StartedAt.IsZero() {
		resp.StartedAt = snap.StartedAt.UTC().Format(time.RFC3339Nano)
	}
	if !snap.FinishedAt.IsZero() {
		resp.FinishedAt = snap.FinishedAt.UTC().Format(time.RFC3339Nano)
	}
	if snap.Status == jobs.StatusDone {
		if body, isRaw := snap.Result.(json.RawMessage); isRaw {
			resp.Result = body
		}
	}
	if snap.Err != nil {
		resp.Error = snap.Err.Error()
	}
	return resp
}

func (s *Server) handleScenarioGet(w http.ResponseWriter, r *http.Request) {
	rec := s.scenarioByIDOr404(w, r)
	if rec == nil {
		return
	}
	writeJSON(w, http.StatusOK, s.scenarioResponseOf(rec))
}

func (s *Server) handleScenarioList(w http.ResponseWriter, r *http.Request) {
	filter, err := statusFilter(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	s.mu.Lock()
	recs := make([]*scenarioRec, 0, len(s.scenOrder))
	for _, id := range s.scenOrder {
		if rec := s.scenByID[id]; rec != nil {
			recs = append(recs, rec)
		}
	}
	s.mu.Unlock()
	out := ScenarioListResponse{Scenarios: make([]ScenarioResponse, 0, len(recs))}
	for _, rec := range recs {
		resp := s.scenarioResponseOf(rec)
		if filter != "" && resp.Status != string(filter) {
			continue
		}
		resp.Result = nil // keep listings light
		out.Scenarios = append(out.Scenarios, resp)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleScenarioEvents streams a scenario's epoch progress as SSE: one
// "epoch" event per progress report and a terminal "scenario" event.
func (s *Server) handleScenarioEvents(w http.ResponseWriter, r *http.Request) {
	rec := s.scenarioByIDOr404(w, r)
	if rec == nil {
		return
	}
	if rec.bus == nil {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: "no event stream for " + rec.id + " (streaming disabled)"})
		return
	}
	s.streamSSE(w, r, rec.bus)
}

func (s *Server) handleScenarioCancel(w http.ResponseWriter, r *http.Request) {
	rec := s.scenarioByIDOr404(w, r)
	if rec == nil {
		return
	}
	if !s.pool.Cancel(rec.id) {
		writeJSON(w, http.StatusConflict, errorResponse{Error: "scenario " + rec.id + " is not cancellable"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": rec.id, "canceled": true})
}

// colorUpperBound is a cheap overestimate of the interference-colouring
// class count used only to size the event replay ring before the engine
// computes the real colouring: readers within the interference radius
// of one grid cell, capped at the reader count.
func colorUpperBound(spec scenario.Spec) int {
	k := 1
	for k*k < spec.Readers {
		k++
	}
	step := spec.SideMetres / float64(k)
	if step <= 0 {
		return spec.Readers
	}
	d := int(spec.InterferenceRadiusMetres/step) + 1
	c := (2*d + 1) * (2*d + 1)
	if c > spec.Readers {
		c = spec.Readers
	}
	if c < 1 {
		c = 1
	}
	return c
}
