package server

// Metrics history + SLO alerting endpoints:
//
//	GET /v1/metrics/history                 index of retained series
//	GET /v1/metrics/history?series=…        derived points per series
//	    (&window=30s &reduce=raw|rate|delta|avg, series repeatable,
//	     &annotations=1 appends the annotation ring)
//	GET /v1/alerts                          every objective's alert status
//	GET /v1/alerts/events                   alert transitions as SSE
//
// The history store samples the registry on a fixed interval from one
// background goroutine; the SLO engine evaluates after every tick on
// that same goroutine, so alerting can never lag sampling.

import (
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/slo"
	"repro/internal/obs/tsdb"
)

// startHistory wires the history store, runtime collector, SLO engine
// and alert bus, then starts the sampler goroutine. Called from New
// after registerMetrics so every registry series exists when the first
// tick runs; a negative HistoryInterval leaves everything nil (the
// disabled path).
func (s *Server) startHistory() {
	if s.opts.HistoryInterval < 0 {
		return
	}
	s.runstats = obs.NewRuntimeCollector()
	s.runstats.Register(s.reg)
	s.hist = tsdb.New(s.reg, tsdb.Options{
		Interval:  s.opts.HistoryInterval,
		Retention: s.opts.HistoryRetention,
	})
	s.hist.Register(s.reg)
	cfg := slo.DefaultConfig()
	if s.opts.SLOConfig != nil {
		cfg = *s.opts.SLOConfig
	}
	s.alertBus = obs.NewBus(s.opts.AlertEventHistory)
	s.alertBus.CountDropsInto(s.evDrops)
	eng, err := slo.New(cfg, s.hist, s.reg, s.alertBus)
	if err != nil {
		// A bad policy must not take the service down with it: run
		// without alerting (history still records) and say so.
		if s.logger != nil {
			s.logger.Error("slo config rejected; alerting disabled", "err", err)
		}
	} else {
		s.slos = eng
	}
	s.samplerStop = make(chan struct{})
	go s.sampleLoop()
}

// sampleLoop is the history heartbeat: one registry sample then one
// SLO evaluation per tick, until Shutdown.
func (s *Server) sampleLoop() {
	t := time.NewTicker(s.opts.HistoryInterval)
	defer t.Stop()
	for {
		select {
		case now := <-t.C:
			s.hist.Sample(now)
			s.slos.Evaluate(now)
		case <-s.samplerStop:
			return
		}
	}
}

// stopHistory halts the sampler goroutine; idempotent.
func (s *Server) stopHistory() {
	if s.samplerStop == nil {
		return
	}
	s.samplerOnce.Do(func() { close(s.samplerStop) })
}

// HistoryIndexResponse is the GET /v1/metrics/history body when no
// series is selected.
type HistoryIndexResponse struct {
	IntervalMS  int64             `json:"interval_ms"`
	RetentionMS int64             `json:"retention_ms"`
	Series      []tsdb.SeriesInfo `json:"series"`
}

// HistoryResponse is the GET /v1/metrics/history body for one or more
// selected series.
type HistoryResponse struct {
	IntervalMS  int64             `json:"interval_ms"`
	Results     []tsdb.Result     `json:"results"`
	Annotations []tsdb.Annotation `json:"annotations,omitempty"`
}

// AlertsResponse is the GET /v1/alerts body.
type AlertsResponse struct {
	Firing int         `json:"firing"`
	Alerts []slo.Alert `json:"alerts"`
}

func (s *Server) handleMetricsHistory(w http.ResponseWriter, r *http.Request) {
	if s.hist == nil {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: "metrics history disabled (start the server with a non-negative history interval)"})
		return
	}
	q := r.URL.Query()
	selectors := q["series"]
	if len(selectors) == 0 {
		writeJSON(w, http.StatusOK, HistoryIndexResponse{
			IntervalMS:  s.hist.Interval().Milliseconds(),
			RetentionMS: s.hist.Retention().Milliseconds(),
			Series:      s.hist.Series(),
		})
		return
	}
	var window time.Duration
	if raw := q.Get("window"); raw != "" {
		var err error
		if window, err = time.ParseDuration(raw); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad window: " + err.Error()})
			return
		}
	}
	reduce := q.Get("reduce")
	resp := HistoryResponse{IntervalMS: s.hist.Interval().Milliseconds()}
	for _, sel := range selectors {
		res, err := s.hist.Query(sel, window, reduce)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		resp.Results = append(resp.Results, res)
	}
	if q.Get("annotations") == "1" {
		since := time.Time{}
		if window > 0 {
			since = time.Now().Add(-window)
		}
		resp.Annotations = s.hist.Annotations(since)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if s.slos == nil {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: "slo alerting disabled (history off or config rejected)"})
		return
	}
	alerts := s.slos.Alerts()
	firing := 0
	for _, a := range alerts {
		if a.State == slo.StateFiring {
			firing++
		}
	}
	writeJSON(w, http.StatusOK, AlertsResponse{Firing: firing, Alerts: alerts})
}

// handleAlertEvents streams alert state transitions as SSE; the bus's
// replay ring makes `?after=0` a complete transition log.
func (s *Server) handleAlertEvents(w http.ResponseWriter, r *http.Request) {
	if s.alertBus == nil {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: "slo alerting disabled (history off)"})
		return
	}
	s.streamSSE(w, r, s.alertBus)
}
