package server

// Sweep endpoints: POST /v1/sweeps accepts a parameter-grid spec
// (internal/sweep), schedules its cells on the shared worker pool, and
// exposes per-cell progress (SSE), per-cell records, and the merged
// paper-style report. Sweep cells and single experiments share the
// result cache, so a cell computed here serves later identical
// submissions byte-identically and vice versa.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// Cache-lookup origins: who asked. Single submissions and sweep cells
// are tallied separately on /metrics.
const (
	originJob   = "job"
	originSweep = "sweep"
)

// statusFilter parses the shared ?status= query parameter used by the
// experiment listing and the sweep cell listing; "" means no filter.
func statusFilter(r *http.Request) (jobs.Status, error) {
	raw := r.URL.Query().Get("status")
	switch st := jobs.Status(raw); st {
	case "", jobs.StatusQueued, jobs.StatusRunning, jobs.StatusDone, jobs.StatusFailed, jobs.StatusCanceled:
		return st, nil
	default:
		return "", fmt.Errorf("unknown status %q (want queued, running, done, failed or canceled)", raw)
	}
}

// SweepSubmitRequest is the POST /v1/sweeps body.
type SweepSubmitRequest struct {
	Spec sweep.Spec `json:"spec"`
}

// SweepResponse is the JSON shape of one sweep summary.
type SweepResponse struct {
	ID         string       `json:"id"`
	Name       string       `json:"name,omitempty"`
	Status     string       `json:"status"`
	Axes       []string     `json:"axes,omitempty"`
	Counts     sweep.Counts `json:"counts"`
	CreatedAt  string       `json:"created_at,omitempty"`
	FinishedAt string       `json:"finished_at,omitempty"`
}

// SweepListResponse is the GET /v1/sweeps body.
type SweepListResponse struct {
	Sweeps []SweepResponse `json:"sweeps"`
}

// SweepCellResponse is one cell record in the per-cell listing.
type SweepCellResponse struct {
	Index         int        `json:"index"`
	Label         string     `json:"label"`
	Coords        []string   `json:"coords,omitempty"`
	Status        string     `json:"status"`
	Cached        bool       `json:"cached,omitempty"`
	CoalescedOnto *int       `json:"coalesced_onto,omitempty"`
	Config        sim.Config `json:"config"`

	// Result is the report.AggregateSummary encoding, byte-identical to
	// the single-experiment result for the same configuration; only
	// embedded when the listing asks for ?results=1.
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// SweepCellsResponse is the GET /v1/sweeps/{id}/cells body.
type SweepCellsResponse struct {
	Sweep  string              `json:"sweep"`
	Status string              `json:"status"`
	Cells  []SweepCellResponse `json:"cells"`
}

func sweepResponseOf(snap sweep.Snapshot) SweepResponse {
	resp := SweepResponse{
		ID:        snap.ID,
		Name:      snap.Name,
		Status:    string(snap.Status),
		Axes:      snap.Axes,
		Counts:    snap.Counts,
		CreatedAt: snap.CreatedAt.UTC().Format(time.RFC3339Nano),
	}
	if !snap.FinishedAt.IsZero() {
		resp.FinishedAt = snap.FinishedAt.UTC().Format(time.RFC3339Nano)
	}
	return resp
}

func cellResponseOf(c sweep.CellState, withResult bool) SweepCellResponse {
	resp := SweepCellResponse{
		Index:  c.Index,
		Label:  c.Label,
		Coords: c.Coords,
		Status: string(c.Status),
		Cached: c.Cached,
		Config: c.Config,
		Error:  c.Err,
	}
	if c.DupOf >= 0 {
		dup := c.DupOf
		resp.CoalescedOnto = &dup
	}
	if withResult {
		resp.Result = c.Result
	}
	return resp
}

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepSubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	spec := req.Spec
	// Clamp the expansion to the server's cap; the spec may ask for less
	// but not more.
	if spec.MaxCells == 0 || spec.MaxCells > s.opts.SweepMaxCells {
		spec.MaxCells = s.opts.SweepMaxCells
	}
	if err := spec.Validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	cells, err := spec.CellCount()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}

	var bus *obs.Bus
	if s.opts.EventHistory > 0 {
		// Size the replay ring to hold the whole sweep's progress (two
		// events per cell plus the terminal sweep event), so a client
		// connecting after completion still drains every event.
		bus = obs.NewBus(2*cells + 16)
		bus.CountDropsInto(s.evDrops)
	}
	s.mu.Lock()
	s.nextSweepID++
	id := "swp-" + strconv.FormatUint(s.nextSweepID, 10)
	s.mu.Unlock()
	// The sweep outlives this request: run it on the background context
	// (DELETE /v1/sweeps/{id} cancels it). Only the request's span
	// context rides along, parenting the sweep and cell spans.
	sctx := obs.WithSpan(context.Background(), obs.SpanFrom(r.Context()))
	sw, err := s.sweeps.Start(sctx, id, spec, bus)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	s.mu.Lock()
	s.sweepByID[id] = sw
	s.sweepOrder = append(s.sweepOrder, id)
	s.pruneSweepsLocked()
	s.sweepRecords.Store(int64(len(s.sweepByID)))
	s.mu.Unlock()
	if s.logger != nil {
		s.logger.Info("sweep submitted", "id", id, "cells", cells, "axes", spec.AxisNames())
	}
	// Mark the sweep's lifetime on the metrics history timeline, so a
	// latency spike on a sparkline can be read against what was running.
	if s.hist != nil {
		s.hist.Annotate("sweep", fmt.Sprintf("%s started (%d cells)", id, cells))
		go func() {
			<-sw.Done()
			snap := sw.Snapshot()
			s.hist.Annotate("sweep", fmt.Sprintf("%s %s (%d done, %d failed)",
				id, snap.Status, snap.Counts.Done, snap.Counts.Failed))
		}()
	}
	w.Header().Set("Location", "/v1/sweeps/"+id)
	writeJSON(w, http.StatusAccepted, sweepResponseOf(sw.Snapshot()))
}

// pruneSweepsLocked evicts the oldest terminal sweeps above
// SweepRecordCap; s.mu must be held.
func (s *Server) pruneSweepsLocked() {
	for len(s.sweepOrder) > s.opts.SweepRecordCap {
		id := s.sweepOrder[0]
		if sw := s.sweepByID[id]; sw != nil {
			select {
			case <-sw.Done():
			default:
				return // oldest sweep still live; keep everything
			}
		}
		s.sweepOrder = s.sweepOrder[1:]
		delete(s.sweepByID, id)
	}
}

// sweepByIDOr404 resolves the path id or writes the 404.
func (s *Server) sweepByIDOr404(w http.ResponseWriter, r *http.Request) *sweep.Sweep {
	id := r.PathValue("id")
	s.mu.Lock()
	sw := s.sweepByID[id]
	s.mu.Unlock()
	if sw == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown sweep " + id})
	}
	return sw
}

func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	sw := s.sweepByIDOr404(w, r)
	if sw == nil {
		return
	}
	writeJSON(w, http.StatusOK, sweepResponseOf(sw.Snapshot()))
}

func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sweeps := make([]*sweep.Sweep, 0, len(s.sweepOrder))
	for _, id := range s.sweepOrder {
		if sw := s.sweepByID[id]; sw != nil {
			sweeps = append(sweeps, sw)
		}
	}
	s.mu.Unlock()
	out := SweepListResponse{Sweeps: make([]SweepResponse, 0, len(sweeps))}
	for _, sw := range sweeps {
		out.Sweeps = append(out.Sweeps, sweepResponseOf(sw.Snapshot()))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSweepCells(w http.ResponseWriter, r *http.Request) {
	sw := s.sweepByIDOr404(w, r)
	if sw == nil {
		return
	}
	filter, err := statusFilter(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	withResults := r.URL.Query().Get("results") == "1"
	cells := sw.Cells(filter)
	out := SweepCellsResponse{
		Sweep:  sw.ID(),
		Status: string(sw.Snapshot().Status),
		Cells:  make([]SweepCellResponse, 0, len(cells)),
	}
	for _, c := range cells {
		out.Cells = append(out.Cells, cellResponseOf(c, withResults))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSweepReport(w http.ResponseWriter, r *http.Request) {
	sw := s.sweepByIDOr404(w, r)
	if sw == nil {
		return
	}
	tbl, err := sw.MergedTable()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "table":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(tbl.Render()))
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		_, _ = w.Write([]byte(tbl.CSV()))
	default:
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: "unknown report format (want table or csv)"})
	}
}

// handleSweepEvents streams a sweep's per-cell progress as SSE: one
// "cell" event per cell state change and a terminal "sweep" event. The
// replay ring holds the whole sweep, so Last-Event-ID resume and
// after-the-fact drains both work.
func (s *Server) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	sw := s.sweepByIDOr404(w, r)
	if sw == nil {
		return
	}
	if sw.Bus() == nil {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: "no event stream for " + sw.ID() + " (streaming disabled)"})
		return
	}
	s.streamSSE(w, r, sw.Bus())
}

func (s *Server) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	sw := s.sweepByIDOr404(w, r)
	if sw == nil {
		return
	}
	sw.Cancel()
	writeJSON(w, http.StatusOK, map[string]any{"id": sw.ID(), "canceled": true})
}
