package server

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// chromeTrace decodes a /v1/traces/{id} Chrome trace-event body.
func chromeTrace(t *testing.T, body string) []obs.Event {
	t.Helper()
	var doc struct {
		TraceEvents []obs.Event `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("trace is not Chrome trace-event JSON: %v\n%s", err, body)
	}
	return doc.TraceEvents
}

// spanIDOf pulls the span identity out of an exported event's args.
func spanIDOf(t *testing.T, ev obs.Event, key string) uint64 {
	t.Helper()
	v, ok := ev.Args[key].(float64) // JSON numbers decode as float64
	if !ok {
		return 0
	}
	return uint64(v)
}

// TestSweepTraceEndToEnd is the joinability acceptance test: one sweep
// submitted over HTTP yields a single trace whose request span parents
// the sweep span, which parents every cell span — including, on a
// second identical sweep, the cache-hit cells.
func TestSweepTraceEndToEnd(t *testing.T) {
	_, c := startServer(t, Options{Workers: 2, QueueDepth: 8, CacheSize: 64})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	sub, traceID, err := c.SubmitSweepTraced(ctx, fig5MiniSpec(), "")
	if err != nil {
		t.Fatal(err)
	}
	if !obs.ValidTraceID(traceID) {
		t.Fatalf("X-Trace-Id response header %q is not a valid trace ID", traceID)
	}
	if _, err := c.WaitSweep(ctx, sub.ID, 0); err != nil {
		t.Fatal(err)
	}

	body, err := c.Trace(ctx, traceID, "")
	if err != nil {
		t.Fatal(err)
	}
	events := chromeTrace(t, body)

	var reqID, sweepID uint64
	cells := 0
	cats := map[string]int{}
	for _, ev := range events {
		cats[ev.Cat]++
		switch ev.Cat {
		case "http":
			reqID = spanIDOf(t, ev, "span")
		case "sweep":
			sweepID = spanIDOf(t, ev, "span")
			if got := spanIDOf(t, ev, "parent"); reqID == 0 || got != reqID {
				t.Errorf("sweep span parent = %d, want request span %d", got, reqID)
			}
		case "cell":
			cells++
		}
	}
	if reqID == 0 {
		t.Fatal("no http request span in trace")
	}
	if sweepID == 0 {
		t.Fatal("no sweep span in trace")
	}
	if cells != 4 {
		t.Errorf("cell spans = %d, want one per cell (4)", cells)
	}
	for _, ev := range events {
		if ev.Cat == "cell" {
			if got := spanIDOf(t, ev, "parent"); got != sweepID {
				t.Errorf("cell span %q parent = %d, want sweep span %d", ev.Name, got, sweepID)
			}
		}
	}
	// The cells ran on the pool: their queue-wait and run spans, and the
	// simulator's per-round spans, must be in the same trace.
	for _, cat := range []string{"jobs", "sim"} {
		if cats[cat] == 0 {
			t.Errorf("no %q spans in trace; got %v", cat, cats)
		}
	}

	// Second identical sweep under its own trace: every cell is served
	// from the cache and still shows up as a span with the disposition.
	_, trace2, err := c.SubmitSweepTraced(ctx, fig5MiniSpec(), "")
	if err != nil {
		t.Fatal(err)
	}
	if trace2 == traceID {
		t.Fatalf("second submission reused trace %q", traceID)
	}
	// Waiting on the sweep list: the second sweep is swp-2.
	if _, err := c.WaitSweep(ctx, "swp-2", 0); err != nil {
		t.Fatal(err)
	}
	body2, err := c.Trace(ctx, trace2, "")
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, ev := range chromeTrace(t, body2) {
		if ev.Cat == "cell" && ev.Args["disposition"] == "cache" {
			hits++
		}
	}
	if hits != 4 {
		t.Errorf("cache-hit cell spans in second trace = %d, want 4", hits)
	}
}

// TestSubmitTraceJoinsRunTrace checks the single-experiment join: the
// per-run ring trace (rounds, frames) is rebased into the service
// trace at export, linked by the shared trace ID.
func TestSubmitTraceJoinsRunTrace(t *testing.T) {
	_, c := startServer(t, Options{Workers: 1, QueueDepth: 4})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	sub, traceID, err := c.SubmitTraced(ctx, fastCfg(), "my-trace-01")
	if err != nil {
		t.Fatal(err)
	}
	if traceID != "my-trace-01" {
		t.Fatalf("server did not adopt the client trace ID: got %q", traceID)
	}
	if _, err := c.Wait(ctx, sub.ID, 0); err != nil {
		t.Fatal(err)
	}

	body, err := c.Trace(ctx, traceID, "")
	if err != nil {
		t.Fatal(err)
	}
	var storeSpans, ringEvents, links int
	for _, ev := range chromeTrace(t, body) {
		if _, ok := ev.Args["trace"]; ok && ev.Phase == "X" {
			storeSpans++
		} else {
			ringEvents++
		}
		if ev.Name == "trace-link" {
			links++
			if got := ev.Args["trace"]; got != traceID {
				t.Errorf("trace-link stamped %v, want %q", got, traceID)
			}
		}
	}
	if storeSpans == 0 {
		t.Error("no service spans in joined trace")
	}
	if ringEvents == 0 {
		t.Error("no ring-tracer events joined into the service trace")
	}
	if links != 1 {
		t.Errorf("trace-link instants = %d, want 1", links)
	}

	// JSONL export serves the same set, one JSON object per line.
	jl, err := c.Trace(ctx, traceID, "jsonl")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jl), "\n")
	if len(lines) != storeSpans+ringEvents {
		t.Errorf("JSONL lines = %d, want %d", len(lines), storeSpans+ringEvents)
	}
	for _, ln := range lines {
		var ev obs.Event
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", ln, err)
		}
	}

	// The trace index lists it.
	sums, err := c.Traces(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range sums {
		if s.ID == traceID && s.Spans > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("trace %q missing from /v1/traces: %+v", traceID, sums)
	}
}

// TestTraceStoreDisabled pins the disabled contract: the ID still
// propagates (header echoed) but nothing records and the trace
// endpoints 404.
func TestTraceStoreDisabled(t *testing.T) {
	_, c := startServer(t, Options{Workers: 1, QueueDepth: 4, TraceStoreTraces: -1})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	sub, traceID, err := c.SubmitTraced(ctx, fastCfg(), "")
	if err != nil {
		t.Fatal(err)
	}
	if !obs.ValidTraceID(traceID) {
		t.Fatalf("disabled store stopped ID propagation: header %q", traceID)
	}
	if _, err := c.Wait(ctx, sub.ID, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Trace(ctx, traceID, ""); err == nil {
		t.Error("GET /v1/traces/{id} succeeded with the span store disabled")
	}
	if _, err := c.Traces(ctx); err == nil {
		t.Error("GET /v1/traces succeeded with the span store disabled")
	}
}

// TestUntracedPollsStayOutOfStore: read-only requests without a header
// must not mint traces, or polling would churn the bounded store.
func TestUntracedPollsStayOutOfStore(t *testing.T) {
	s, c := startServer(t, Options{Workers: 1, QueueDepth: 4})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := c.List(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if sums := s.spans.Summaries(); len(sums) != 0 {
		t.Errorf("GET polls minted %d traces: %+v", len(sums), sums)
	}
}

// TestStatusz renders the snapshot after real traffic and spot-checks
// the sections.
func TestStatusz(t *testing.T) {
	_, c := startServer(t, Options{Workers: 2, QueueDepth: 8})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	sub, err := c.SubmitSweep(ctx, fig5MiniSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitSweep(ctx, sub.ID, 0); err != nil {
		t.Fatal(err)
	}

	body, err := c.Statusz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"rfidd statusz", "worker pool", "result cache",
		sub.ID, "recent wide events", "origin",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("statusz missing %q", want)
		}
	}
	// Every finished cell produced a wide event row (origin column
	// followed by the sweep-scoped cell ID).
	if got := strings.Count(body, "<td>sweep</td><td>"+sub.ID+"/c"); got != 4 {
		t.Errorf("wide-event rows with origin sweep = %d, want 4", got)
	}
}
