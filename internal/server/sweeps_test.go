package server

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/sweep"
)

func fig5MiniSpec() sweep.Spec {
	return sweep.Spec{
		Name: "fig5-mini",
		Base: fastCfg(),
		Axes: []sweep.Axis{
			{Field: sweep.FieldCase, Cases: []sweep.Case{
				{Name: "I", Tags: 40, Frame: 40},
				{Name: "II", Tags: 80, Frame: 40},
			}},
			{Field: sweep.FieldStrength, Ints: []int{4, 8}},
		},
	}
}

func TestSweepEndToEnd(t *testing.T) {
	_, c := startServer(t, Options{Workers: 2, QueueDepth: 8, CacheSize: 64})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	sw, err := c.SubmitSweep(ctx, fig5MiniSpec())
	if err != nil {
		t.Fatalf("SubmitSweep: %v", err)
	}
	if sw.ID == "" || sw.Counts.Cells != 4 {
		t.Fatalf("sweep record %+v", sw)
	}

	// Per-cell progress over SSE: every cell must report done, then the
	// terminal sweep event ends the stream.
	var cellDone int
	var sweepEvents int
	err = c.WatchSweep(ctx, sw.ID, func(ev WatchEvent) error {
		switch ev.Type {
		case "cell":
			if ev.Data["status"] == "done" {
				cellDone++
			}
		case "sweep":
			sweepEvents++
		}
		return nil
	})
	if err != nil {
		t.Fatalf("WatchSweep: %v", err)
	}
	if cellDone != 4 || sweepEvents != 1 {
		t.Fatalf("saw %d cell-done and %d sweep events, want 4 and 1", cellDone, sweepEvents)
	}

	final, err := c.WaitSweep(ctx, sw.ID, 0)
	if err != nil {
		t.Fatalf("WaitSweep: %v", err)
	}
	if final.Status != "done" || final.Counts.Done != 4 {
		t.Fatalf("final sweep %+v", final)
	}

	// Every cell result must be byte-identical to a single-job
	// submission of the same configuration — which is now served from
	// the cache the sweep populated.
	cells, err := c.SweepCells(ctx, sw.ID, "", true)
	if err != nil {
		t.Fatalf("SweepCells: %v", err)
	}
	if len(cells) != 4 {
		t.Fatalf("got %d cells", len(cells))
	}
	for _, cell := range cells {
		single, err := c.Submit(ctx, cell.Config)
		if err != nil {
			t.Fatalf("resubmitting cell %d: %v", cell.Index, err)
		}
		if !single.Cached {
			t.Errorf("cell %d config not served from the sweep-populated cache", cell.Index)
		}
		if !bytes.Equal(cell.Result, single.Result) {
			t.Errorf("cell %d result diverges from the single-job bytes:\n%s\n%s",
				cell.Index, cell.Result, single.Result)
		}
	}

	// Merged outputs: axis columns plus metrics, one row per cell.
	csv, err := c.SweepReport(ctx, sw.ID, "csv")
	if err != nil {
		t.Fatalf("SweepReport csv: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 5 {
		t.Fatalf("merged CSV has %d lines, want 5:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "case,strength,") {
		t.Fatalf("merged CSV header %q", lines[0])
	}
	table, err := c.SweepReport(ctx, sw.ID, "table")
	if err != nil {
		t.Fatalf("SweepReport table: %v", err)
	}
	if !strings.Contains(table, "strength") || !strings.Contains(table, "run") {
		t.Fatalf("merged table lacks expected columns:\n%s", table)
	}

	// The same sweep again: all four cells short-circuit through the
	// cache, attributed to the sweep origin on /metrics.
	sw2, err := c.SubmitSweep(ctx, fig5MiniSpec())
	if err != nil {
		t.Fatalf("second SubmitSweep: %v", err)
	}
	final2, err := c.WaitSweep(ctx, sw2.ID, 0)
	if err != nil {
		t.Fatalf("WaitSweep (second): %v", err)
	}
	if final2.Counts.Cached != 4 {
		t.Fatalf("second sweep cached %d cells, want 4: %+v", final2.Counts.Cached, final2.Counts)
	}

	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{
		`rfidd_cache_origin_hits_total{origin="sweep"} 4`,
		`rfidd_cache_origin_misses_total{origin="sweep"} 4`,
		`rfidd_cache_origin_hits_total{origin="job"} 4`,
		`rfidd_sweep_cells_run_total 4`,
		`rfidd_sweep_cells_cached_total 4`,
		`rfidd_sweep_sweeps_finished_total 2`,
		`rfidd_sweeps 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition lacks %q", want)
		}
	}

	// Sweep listing includes both runs in submission order.
	list, err := c.ListSweeps(ctx)
	if err != nil {
		t.Fatalf("ListSweeps: %v", err)
	}
	if len(list) != 2 || list[0].ID != sw.ID || list[1].ID != sw2.ID {
		t.Fatalf("sweep listing %+v", list)
	}
}

func TestSweepCellStatusFilterSharedWithExperiments(t *testing.T) {
	_, c := startServer(t, Options{Workers: 2, QueueDepth: 8})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	sw, err := c.SubmitSweep(ctx, fig5MiniSpec())
	if err != nil {
		t.Fatalf("SubmitSweep: %v", err)
	}
	if _, err := c.WaitSweep(ctx, sw.ID, 0); err != nil {
		t.Fatalf("WaitSweep: %v", err)
	}
	done, err := c.SweepCells(ctx, sw.ID, "done", false)
	if err != nil {
		t.Fatalf("SweepCells done: %v", err)
	}
	if len(done) != 4 {
		t.Errorf("done filter returned %d cells, want 4", len(done))
	}
	failed, err := c.SweepCells(ctx, sw.ID, "failed", false)
	if err != nil {
		t.Fatalf("SweepCells failed: %v", err)
	}
	if len(failed) != 0 {
		t.Errorf("failed filter returned %d cells, want 0", len(failed))
	}
	if _, err := c.SweepCells(ctx, sw.ID, "bogus", false); err == nil {
		t.Error("bogus cell status filter accepted")
	}

	// The same ?status= vocabulary on the experiment listing.
	exp, err := c.Submit(ctx, fastCfg())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := c.Wait(ctx, exp.ID, 0); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	doneExps, err := c.ListStatus(ctx, "done")
	if err != nil {
		t.Fatalf("ListStatus done: %v", err)
	}
	if len(doneExps) == 0 {
		t.Error("done experiment filter returned nothing")
	}
	queued, err := c.ListStatus(ctx, "queued")
	if err != nil {
		t.Fatalf("ListStatus queued: %v", err)
	}
	if len(queued) != 0 {
		t.Errorf("queued filter returned %d experiments, want 0", len(queued))
	}
	if _, err := c.ListStatus(ctx, "bogus"); err == nil {
		t.Error("bogus experiment status filter accepted")
	}
}

func TestSweepCancelEndpoint(t *testing.T) {
	_, c := startServer(t, Options{Workers: 1, QueueDepth: 4})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	spec := sweep.Spec{
		Base: fastCfg(),
		Axes: []sweep.Axis{{Field: sweep.FieldSeed, Range: &sweep.Range{From: 1, To: 32}}},
	}
	spec.Base.Tags = 300
	spec.Base.Rounds = 30
	sw, err := c.SubmitSweep(ctx, spec)
	if err != nil {
		t.Fatalf("SubmitSweep: %v", err)
	}
	if err := c.CancelSweep(ctx, sw.ID); err != nil {
		t.Fatalf("CancelSweep: %v", err)
	}
	final, err := c.WaitSweep(ctx, sw.ID, 0)
	if err != nil {
		t.Fatalf("WaitSweep: %v", err)
	}
	if final.Status != "canceled" {
		t.Errorf("sweep status %s after cancel", final.Status)
	}
	if final.Counts.Canceled == 0 {
		t.Error("cancel canceled no cells")
	}
}

func TestSweepRejectsBadSpecs(t *testing.T) {
	_, c := startServer(t, Options{Workers: 1, SweepMaxCells: 8})
	ctx := context.Background()

	// Over the server's cell cap.
	big := sweep.Spec{
		Base: fastCfg(),
		Axes: []sweep.Axis{{Field: sweep.FieldSeed, Range: &sweep.Range{From: 1, To: 100}}},
	}
	if _, err := c.SubmitSweep(ctx, big); err == nil {
		t.Error("a 100-cell sweep passed an 8-cell cap")
	}
	// Structurally invalid axis.
	bad := sweep.Spec{
		Base: fastCfg(),
		Axes: []sweep.Axis{{Field: "bogus", Ints: []int{1}}},
	}
	if _, err := c.SubmitSweep(ctx, bad); err == nil {
		t.Error("unknown axis field accepted")
	}
	// Invalid per-cell config.
	badCell := sweep.Spec{
		Base: fastCfg(),
		Axes: []sweep.Axis{{Field: sweep.FieldTags, Ints: []int{-4}}},
	}
	if _, err := c.SubmitSweep(ctx, badCell); err == nil {
		t.Error("negative tags cell accepted")
	}
	if _, err := c.GetSweep(ctx, "swp-404"); err == nil {
		t.Error("unknown sweep id did not 404")
	}
}
