package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

func fastCfg() sim.Config {
	return sim.Config{
		Tags: 60, Seed: 42, Rounds: 3,
		Algorithm: sim.AlgFSA, FrameSize: 40,
		Detector: sim.DetQCD, Strength: 8,
	}
}

// startServer returns a running service on a loopback listener plus its
// client; the server drains on test cleanup.
func startServer(t *testing.T, o Options) (*Server, *Client) {
	t.Helper()
	s := New(o)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, NewClient(ts.URL)
}

// metricValue extracts an un-labelled metric value from an exposition.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9.eE+-]+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %s not found in exposition:\n%s", name, text)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s: %v", name, err)
	}
	return v
}

func TestEndToEndCachedResubmissionIsByteIdentical(t *testing.T) {
	_, c := startServer(t, Options{Workers: 2, QueueDepth: 8, CacheSize: 16})
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	first, err := c.Submit(ctx, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first submission reported cached")
	}
	done, err := c.Wait(ctx, first.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != "done" || len(done.Result) == 0 {
		t.Fatalf("first run: status=%s err=%q", done.Status, done.Error)
	}

	second, err := c.Submit(ctx, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("identical resubmission was not served from cache")
	}
	if second.ID == first.ID {
		t.Error("cached submission reused the original experiment id")
	}
	if second.Status != "done" {
		t.Errorf("cached status = %s", second.Status)
	}
	if !bytes.Equal(done.Result, second.Result) {
		t.Errorf("aggregates differ:\n%s\n%s", done.Result, second.Result)
	}

	// A config differing only in defaulted/scheduling fields also hits.
	alt := fastCfg()
	alt.IDBits = 64
	alt.Workers = 3
	third, err := c.Submit(ctx, alt)
	if err != nil {
		t.Fatal(err)
	}
	if !third.Cached || !bytes.Equal(done.Result, third.Result) {
		t.Error("canonically-equal config missed the cache")
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if hits := metricValue(t, metrics, "rfidd_cache_hits_total"); hits < 2 {
		t.Errorf("rfidd_cache_hits_total = %v, want >= 2", hits)
	}
	if done := metricValue(t, metrics, "rfidd_jobs_done_total"); done != 1 {
		t.Errorf("rfidd_jobs_done_total = %v, want exactly 1 computation", done)
	}
}

func TestConcurrentDuplicateSubmissions(t *testing.T) {
	_, c := startServer(t, Options{Workers: 2, QueueDepth: 32, CacheSize: 16})
	ctx := context.Background()

	const n = 8
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := c.Submit(ctx, fastCfg())
			if err != nil {
				errs[i] = err
				return
			}
			final, err := c.Wait(ctx, resp.ID, 0)
			if err != nil {
				errs[i] = err
				return
			}
			if final.Status != "done" {
				errs[i] = fmt.Errorf("status %s: %s", final.Status, final.Error)
				return
			}
			bodies[i] = final.Result
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submitter %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("submitter %d saw a different aggregate", i)
		}
	}

	// Coalescing + caching must have collapsed the duplicates: the pool
	// ran the experiment at most a couple of times, not n times.
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if done := metricValue(t, metrics, "rfidd_jobs_done_total"); done > 2 {
		t.Errorf("rfidd_jobs_done_total = %v for %d duplicate submissions", done, n)
	}
}

func TestSubmitValidationAndNotFound(t *testing.T) {
	_, c := startServer(t, Options{Workers: 1, QueueDepth: 4})
	ctx := context.Background()

	bad := sim.Config{Tags: 0, Algorithm: sim.AlgFSA, FrameSize: 10, Detector: sim.DetQCD}
	if _, err := c.Submit(ctx, bad); err == nil {
		t.Error("invalid config accepted")
	} else if ae, ok := err.(*apiError); !ok || ae.StatusCode != 400 {
		t.Errorf("invalid config: err = %v, want HTTP 400", err)
	}

	if _, err := c.Get(ctx, "exp-999"); err == nil {
		t.Error("unknown id succeeded")
	} else if ae, ok := err.(*apiError); !ok || ae.StatusCode != 404 {
		t.Errorf("unknown id: err = %v, want HTTP 404", err)
	}

	if err := c.Cancel(ctx, "exp-999"); err == nil {
		t.Error("cancel of unknown id succeeded")
	}
}

func TestListReportsSubmissionsWithoutResults(t *testing.T) {
	_, c := startServer(t, Options{Workers: 2, QueueDepth: 8})
	ctx := context.Background()

	cfgA := fastCfg()
	cfgB := fastCfg()
	cfgB.Seed = 43
	ra, _ := c.Submit(ctx, cfgA)
	rb, _ := c.Submit(ctx, cfgB)
	if _, err := c.Wait(ctx, ra.ID, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, rb.ID, 0); err != nil {
		t.Fatal(err)
	}

	list, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("list has %d entries, want 2", len(list))
	}
	if list[0].ID != ra.ID || list[1].ID != rb.ID {
		t.Errorf("list order = %s,%s want %s,%s", list[0].ID, list[1].ID, ra.ID, rb.ID)
	}
	for _, e := range list {
		if len(e.Result) != 0 {
			t.Errorf("listing for %s carries a result body", e.ID)
		}
	}
}

func TestCancelRunningExperiment(t *testing.T) {
	_, c := startServer(t, Options{Workers: 1, QueueDepth: 4})
	ctx := context.Background()

	slow := sim.Config{
		Tags: 3000, Seed: 1, Rounds: 2000,
		Algorithm: sim.AlgFSA, FrameSize: 1500,
		Detector: sim.DetQCD, Strength: 8, Workers: 1,
	}
	resp, err := c.Submit(ctx, slow)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(ctx, resp.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	final, err := c.Wait(ctx, resp.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != "canceled" {
		t.Errorf("status = %s, want canceled", final.Status)
	}
}

func TestQueueFullShedsLoad(t *testing.T) {
	_, c := startServer(t, Options{Workers: 1, QueueDepth: 1})
	ctx := context.Background()

	slow := func(seed uint64) sim.Config {
		return sim.Config{
			Tags: 2000, Seed: seed, Rounds: 500,
			Algorithm: sim.AlgFSA, FrameSize: 1000,
			Detector: sim.DetQCD, Strength: 8, Workers: 1,
		}
	}
	var ids []string
	sawFull := false
	for seed := uint64(1); seed <= 8; seed++ {
		resp, err := c.Submit(ctx, slow(seed))
		if err != nil {
			if ae, ok := err.(*apiError); ok && ae.StatusCode == 503 {
				sawFull = true
				break
			}
			t.Fatalf("seed %d: %v", seed, err)
		}
		ids = append(ids, resp.ID)
	}
	if !sawFull {
		t.Fatal("never saw HTTP 503 despite a depth-1 queue")
	}
	for _, id := range ids {
		_ = c.Cancel(ctx, id)
	}
}

func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	s := New(Options{Workers: 2, QueueDepth: 16})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	var ids []string
	for seed := uint64(1); seed <= 6; seed++ {
		cfg := fastCfg()
		cfg.Seed = seed
		resp, err := c.Submit(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, resp.ID)
	}

	shCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := s.Shutdown(shCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Every submission, queued or in-flight at shutdown, must have run
	// to completion — that is the drain guarantee.
	for _, id := range ids {
		final, err := c.Get(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if final.Status != "done" {
			t.Errorf("%s: status = %s after graceful shutdown, want done", id, final.Status)
		}
	}
	// New work is refused once draining has begun.
	cfg := fastCfg()
	cfg.Seed = 99
	if _, err := c.Submit(ctx, cfg); err == nil {
		t.Error("submission accepted after shutdown")
	} else if ae, ok := err.(*apiError); !ok || ae.StatusCode != 503 {
		t.Errorf("post-shutdown submit: err = %v, want HTTP 503", err)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, c := startServer(t, Options{Workers: 2, QueueDepth: 8})
	ctx := context.Background()

	resp, err := c.Submit(ctx, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, resp.ID, 0); err != nil {
		t.Fatal(err)
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, text, "rfidd_workers"); got != 2 {
		t.Errorf("rfidd_workers = %v", got)
	}
	if got := metricValue(t, text, "rfidd_jobs_submitted_total"); got != 1 {
		t.Errorf("rfidd_jobs_submitted_total = %v", got)
	}
	if got := metricValue(t, text, "rfidd_cache_misses_total"); got != 1 {
		t.Errorf("rfidd_cache_misses_total = %v", got)
	}
	if got := metricValue(t, text, "rfidd_experiments"); got != 1 {
		t.Errorf("rfidd_experiments = %v", got)
	}
	// The latency histogram must have recorded exactly one observation
	// with a parseable cumulative bucket series.
	if got := metricValue(t, text, "rfidd_job_latency_seconds_count"); got != 1 {
		t.Errorf("latency count = %v", got)
	}
	re := regexp.MustCompile(`(?m)^rfidd_job_latency_seconds_bucket\{le="\+Inf"\} (\d+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil || m[1] != "1" {
		t.Errorf("+Inf bucket missing or wrong: %v", m)
	}
}

func TestResultDecodesAsAggregateSummary(t *testing.T) {
	_, c := startServer(t, Options{Workers: 2, QueueDepth: 8})
	ctx := context.Background()

	resp, err := c.Submit(ctx, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, resp.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Config  sim.Config                    `json:"config"`
		Metrics map[string]map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(final.Result, &decoded); err != nil {
		t.Fatalf("result does not decode: %v", err)
	}
	if decoded.Config.Tags != 60 {
		t.Errorf("result config tags = %d", decoded.Config.Tags)
	}
	if decoded.Metrics["single"]["mean"] != 60 {
		t.Errorf("single mean = %v, want 60", decoded.Metrics["single"]["mean"])
	}
}
