package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/audit"
	"repro/internal/sim"
)

// TestWriteSSEFramingGolden pins the wire format byte-for-byte: the SSE
// triad in id/event/data order, JSON payload, blank-line terminator,
// and the comment form of heartbeats.
func TestWriteSSEFramingGolden(t *testing.T) {
	var sb strings.Builder
	err := writeSSEEvent(&sb, obs.StreamEvent{
		ID: 7, Type: "round", Data: map[string]any{"round": 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := "id: 7\nevent: round\ndata: {\"round\":2}\n\n"; sb.String() != want {
		t.Errorf("framing = %q, want %q", sb.String(), want)
	}

	sb.Reset()
	if err := writeSSEEvent(&sb, obs.StreamEvent{ID: 1, Type: "job"}); err != nil {
		t.Fatal(err)
	}
	if want := "id: 1\nevent: job\ndata: {}\n\n"; sb.String() != want {
		t.Errorf("nil-data framing = %q, want %q", sb.String(), want)
	}

	sb.Reset()
	if err := writeSSEHeartbeat(&sb); err != nil {
		t.Fatal(err)
	}
	if want := ": heartbeat\n\n"; sb.String() != want {
		t.Errorf("heartbeat = %q, want %q", sb.String(), want)
	}
}

// sseEvent is one parsed frame of a raw SSE body.
type sseEvent struct {
	id    uint64
	typ   string
	data  map[string]any
	lines []string
}

// parseSSE splits a full SSE body into events, failing on any framing
// violation (unknown field lines, data before id, missing terminator).
func parseSSE(t *testing.T, body string) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	for _, line := range strings.Split(body, "\n") {
		switch {
		case line == "":
			if len(cur.lines) > 0 {
				out = append(out, cur)
				cur = sseEvent{}
			}
		case strings.HasPrefix(line, ": "):
			// comment/heartbeat; stands alone, not part of an event
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &cur.id)
			cur.lines = append(cur.lines, line)
		case strings.HasPrefix(line, "event: "):
			cur.typ = strings.TrimPrefix(line, "event: ")
			cur.lines = append(cur.lines, line)
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(line[len("data: "):]), &cur.data); err != nil {
				t.Fatalf("bad data line %q: %v", line, err)
			}
			cur.lines = append(cur.lines, line)
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if len(cur.lines) > 0 {
		t.Fatalf("body does not end with a blank-line terminator: %q", cur.lines)
	}
	return out
}

// TestEventsStreamEndToEnd runs an experiment to completion and then
// replays its whole stream over HTTP, checking framing, ordering and
// the event mix a run must produce.
func TestEventsStreamEndToEnd(t *testing.T) {
	_, c := startServer(t, Options{Workers: 1, QueueDepth: 4, EventHistory: 2048})
	ctx := context.Background()
	sub, err := c.Submit(ctx, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, sub.ID, 0); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(c.BaseURL + "/v1/experiments/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body) // bus is closed: replay then EOF
	if err != nil {
		t.Fatal(err)
	}
	events := parseSSE(t, string(body))
	if len(events) == 0 {
		t.Fatal("empty stream")
	}

	counts := map[string]int{}
	var lastID uint64
	for _, ev := range events {
		counts[ev.typ]++
		if ev.id <= lastID {
			t.Errorf("event ids not strictly increasing: %d after %d", ev.id, lastID)
		}
		lastID = ev.id
	}
	if counts["round"] != 3 {
		t.Errorf("round events = %d, want one per round", counts["round"])
	}
	if counts["frame"] == 0 {
		t.Error("no frame events")
	}
	if counts["job"] == 0 {
		t.Error("no job lifecycle events")
	}
	last := events[len(events)-1]
	if last.typ != "job" || last.data["to"] != "done" {
		t.Errorf("stream does not end with the terminal job event: %+v", last)
	}
}

// TestEventsStreamThroughLoggingHandler repeats the replay fetch with
// request logging enabled, so the statusRecorder wrapper is in the
// response path. Regression: the wrapper's embedded interface hid the
// Flusher method set, and the SSE handler 500ed behind the real
// daemon (which always logs) while direct-handler tests passed.
func TestEventsStreamThroughLoggingHandler(t *testing.T) {
	_, c := startServer(t, Options{
		Workers: 1, QueueDepth: 4, EventHistory: 2048,
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	ctx := context.Background()
	sub, err := c.Submit(ctx, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, sub.ID, 0); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(c.BaseURL + "/v1/experiments/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d through logging handler", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if events := parseSSE(t, string(body)); len(events) == 0 {
		t.Fatal("empty stream through logging handler")
	}
}

// TestEventsLastEventIDResume reconnects mid-stream with both resume
// spellings and checks delivery starts strictly after the cursor.
func TestEventsLastEventIDResume(t *testing.T) {
	_, c := startServer(t, Options{Workers: 1, QueueDepth: 4, EventHistory: 2048})
	ctx := context.Background()
	sub, err := c.Submit(ctx, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, sub.ID, 0); err != nil {
		t.Fatal(err)
	}

	full := fetchEvents(t, c, sub.ID, nil)
	if len(full) < 4 {
		t.Fatalf("stream too short to test resume: %d events", len(full))
	}
	cursor := full[len(full)/2].id

	hdr := map[string]string{"Last-Event-ID": fmt.Sprint(cursor)}
	for name, evs := range map[string][]sseEvent{
		"header": fetchEvents(t, c, sub.ID, hdr),
		"query":  fetchEvents(t, c, sub.ID+"/events?after="+fmt.Sprint(cursor), nil),
	} {
		if len(evs) != len(full)-len(full)/2-1 {
			t.Errorf("%s resume returned %d events, want %d", name, len(evs), len(full)-len(full)/2-1)
		}
		for _, ev := range evs {
			if ev.id <= cursor {
				t.Errorf("%s resume replayed event %d at or before cursor %d", name, ev.id, cursor)
			}
		}
	}
}

// TestSweepEventsLastEventIDResume mirrors the resume contract on the
// sweep-cell stream: reconnecting with a cursor — header or ?after= —
// replays only the cell/sweep events strictly after it, and the
// resumed stream still ends with the terminal sweep event.
func TestSweepEventsLastEventIDResume(t *testing.T) {
	_, c := startServer(t, Options{Workers: 2, QueueDepth: 8, EventHistory: 2048})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sub, err := c.SubmitSweep(ctx, fig5MiniSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitSweep(ctx, sub.ID, 0); err != nil {
		t.Fatal(err)
	}

	path := "/v1/sweeps/" + sub.ID + "/events"
	full := fetchSSE(t, c, path, nil)
	if len(full) < 4 {
		t.Fatalf("stream too short to test resume: %d events", len(full))
	}
	if last := full[len(full)-1]; last.typ != "sweep" {
		t.Fatalf("stream does not end with the terminal sweep event: %+v", last)
	}
	cursor := full[len(full)/2].id

	hdr := map[string]string{"Last-Event-ID": fmt.Sprint(cursor)}
	for name, evs := range map[string][]sseEvent{
		"header": fetchSSE(t, c, path, hdr),
		"query":  fetchSSE(t, c, path+"?after="+fmt.Sprint(cursor), nil),
	} {
		if want := len(full) - len(full)/2 - 1; len(evs) != want {
			t.Errorf("%s resume returned %d events, want %d", name, len(evs), want)
		}
		for _, ev := range evs {
			if ev.id <= cursor {
				t.Errorf("%s resume replayed event %d at or before cursor %d", name, ev.id, cursor)
			}
		}
		if len(evs) > 0 && evs[len(evs)-1].typ != "sweep" {
			t.Errorf("%s resume lost the terminal sweep event: %+v", name, evs[len(evs)-1])
		}
	}
}

// fetchEvents reads one full (closed-bus) experiment SSE stream. id may
// carry a pre-built path suffix with query parameters.
func fetchEvents(t *testing.T, c *Client, id string, hdr map[string]string) []sseEvent {
	t.Helper()
	path := id
	if !strings.Contains(path, "/events") {
		path += "/events"
	}
	return fetchSSE(t, c, "/v1/experiments/"+path, hdr)
}

// fetchSSE reads one full (closed-bus) SSE stream at path.
func fetchSSE(t *testing.T, c *Client, path string, hdr map[string]string) []sseEvent {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d %s", path, resp.StatusCode, body)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseSSE(t, string(body))
}

// injectExperiment plants a live experiment record with an open bus, so
// streaming behaviour can be driven deterministically without a job.
func injectExperiment(s *Server, id string, bus *obs.Bus) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byID[id] = &experiment{id: id, bus: bus}
}

// TestEventsHeartbeat holds a stream open on an idle bus and reads
// comment heartbeats off the wire.
func TestEventsHeartbeat(t *testing.T) {
	s, c := startServer(t, Options{Workers: 1, HeartbeatInterval: 5 * time.Millisecond})
	bus := obs.NewBus(16)
	injectExperiment(s, "exp-live", bus)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/experiments/exp-live/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	r := bufio.NewReader(resp.Body)
	beats := 0
	for beats < 3 {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended after %d heartbeats: %v", beats, err)
		}
		if strings.TrimRight(line, "\n") == ": heartbeat" {
			beats++
		}
	}
	// A published event interleaves cleanly with heartbeats.
	bus.Publish("round", map[string]any{"round": 1})
	deadline := time.Now().Add(2 * time.Second)
	for {
		line, err := r.ReadString('\n')
		if err != nil || time.Now().After(deadline) {
			t.Fatalf("round event never arrived: %v", err)
		}
		if strings.HasPrefix(line, "event: round") {
			break
		}
	}
	bus.Close() // ends the stream
	if _, err := io.ReadAll(r); err != nil {
		t.Fatalf("drain after close: %v", err)
	}
}

// TestEventsSlowConsumerDropped opens a stream and refuses to read it
// while the bus floods: the subscriber must be dropped, the stream
// closed, and the drop surfaced on /metrics. Run under -race this also
// exercises the publish/drop/handler-teardown interleaving.
func TestEventsSlowConsumerDropped(t *testing.T) {
	s, c := startServer(t, Options{Workers: 1, EventBuffer: 1, HeartbeatInterval: time.Hour})
	bus := obs.NewBus(4)
	bus.CountDropsInto(s.evDrops)
	injectExperiment(s, "exp-slow", bus)

	resp, err := http.Get(c.BaseURL + "/v1/experiments/exp-slow/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// The handler is subscribed (headers are sent after Subscribe). Flood
	// with payloads large enough to fill the socket buffers while the
	// client reads nothing; with a 1-event lag budget the subscriber must
	// get dropped. 64 KiB × 4096 ≫ any kernel buffering.
	big := strings.Repeat("x", 64*1024)
	for i := 0; i < 4096 && bus.Dropped() == 0; i++ {
		bus.Publish("round", map[string]any{"pad": big})
	}
	if bus.Dropped() == 0 {
		t.Fatal("subscriber was never dropped")
	}

	// The dropped subscription's channel is closed: the stream ends once
	// the in-flight writes drain.
	if _, err := io.ReadAll(resp.Body); err != nil {
		t.Fatalf("reading out the truncated stream: %v", err)
	}

	metrics, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, metrics, "rfidd_event_subscribers_dropped_total"); got < 1 {
		t.Errorf("rfidd_event_subscribers_dropped_total = %v, want >= 1", got)
	}
	bus.Close()
}

// TestEventsNotFound covers the 404 shapes: unknown id, and a record
// with no stream (cache-served).
func TestEventsNotFound(t *testing.T) {
	s, c := startServer(t, Options{Workers: 1})
	if resp, err := http.Get(c.BaseURL + "/v1/experiments/nope/events"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: status %d", resp.StatusCode)
	}
	injectExperiment(s, "exp-nostream", nil)
	if resp, err := http.Get(c.BaseURL + "/v1/experiments/exp-nostream/events"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusNotFound {
		t.Errorf("bus-less record: status %d", resp.StatusCode)
	}
}

// TestClientWatch drives the typed Watch helper end to end: every event
// exactly once, terminal detection, and a resumable cursor.
func TestClientWatch(t *testing.T) {
	_, c := startServer(t, Options{Workers: 1, QueueDepth: 4, EventHistory: 2048})
	ctx := context.Background()
	sub, err := c.Submit(ctx, fastCfg())
	if err != nil {
		t.Fatal(err)
	}

	var events []WatchEvent
	err = c.Watch(ctx, sub.ID, func(ev WatchEvent) error {
		events = append(events, ev)
		return nil
	})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("watch saw no events")
	}
	last := events[len(events)-1]
	if !terminalJobEvent(last) {
		t.Errorf("watch did not end on a terminal job event: %+v", last)
	}
	rounds := 0
	var lastID uint64
	for _, ev := range events {
		if ev.Type == "round" {
			rounds++
		}
		if ev.ID <= lastID {
			t.Errorf("watch ids not strictly increasing: %d after %d", ev.ID, lastID)
		}
		lastID = ev.ID
	}
	if rounds != 3 {
		t.Errorf("watch saw %d round events, want 3", rounds)
	}

	// Watching an already-finished experiment replays the ring and still
	// terminates (the bus retains history after close).
	n := 0
	if err := c.Watch(ctx, sub.ID, func(WatchEvent) error { n++; return nil }); err != nil {
		t.Fatalf("watch after completion: %v", err)
	}
	if n != len(events) {
		t.Errorf("replay watch saw %d events, live watch saw %d", n, len(events))
	}
}

// TestAuditEndpoint runs an audited experiment and reads the confusion
// matrix back over both /v1/audit and /metrics.
func TestAuditEndpoint(t *testing.T) {
	_, c := startServer(t, Options{Workers: 1, QueueDepth: 4, EnableAudit: true})
	t.Cleanup(sim.UninstrumentAudit) // New installed the process-global hook
	ctx := context.Background()

	cfg := fastCfg()
	cfg.Strength = 4 // low strength so misses actually occur
	cfg.Rounds = 10
	sub, err := c.Submit(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, sub.ID, 0); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(c.BaseURL + "/v1/audit")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep audit.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Detectors) != 1 || rep.Detectors[0].Detector != "QCD-4" {
		t.Fatalf("audit report = %+v", rep.Detectors)
	}
	d := rep.Detectors[0]
	if d.Correct == 0 || d.TrueCollided == 0 {
		t.Errorf("nothing audited: %+v", d)
	}
	if d.FalseSingle == 0 || len(rep.Exemplars) == 0 {
		t.Errorf("no misses captured at l=4: %+v", d)
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, `sim_audit_verdicts_total{detector="QCD-4",l="4",cell="false_single"}`) {
		t.Error("audit series missing from /metrics")
	}
}

// TestAuditEndpointDisabled is the 404 shape without EnableAudit.
func TestAuditEndpointDisabled(t *testing.T) {
	_, c := startServer(t, Options{Workers: 1})
	resp, err := http.Get(c.BaseURL + "/v1/audit")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

// TestMetricsExpositionConformance is the whole-exposition conformance
// gate: after real traffic (including audit series and histograms) the
// full /metrics body must pass the Prometheus text-format linter, and
// the endpoint must declare the 0.0.4 content type.
func TestMetricsExpositionConformance(t *testing.T) {
	_, c := startServer(t, Options{Workers: 1, QueueDepth: 4, EnableAudit: true})
	t.Cleanup(sim.UninstrumentAudit)
	ctx := context.Background()
	sub, err := c.Submit(ctx, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, sub.ID, 0); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, errLint := range obs.LintPrometheus(string(body)) {
		t.Error(errLint)
	}
	// Spot-check that the families this PR added are actually present.
	for _, name := range []string{
		"obs_trace_dropped_spans_total",
		"rfidd_event_subscribers_dropped_total",
		"sim_audit_verdicts_total",
	} {
		if !strings.Contains(string(body), "# TYPE "+name+" counter") {
			t.Errorf("family %s missing from exposition", name)
		}
	}
}
