package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestMetricsIncludesSimAndTransitionSeries checks /metrics carries the
// whole stack from one registry walk: simulator series, job transition
// counts, pool load, and cache effectiveness.
func TestMetricsIncludesSimAndTransitionSeries(t *testing.T) {
	_, c := startServer(t, Options{Workers: 1, QueueDepth: 8})
	ctx := context.Background()

	resp, err := c.Submit(ctx, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, resp.ID, 0); err != nil {
		t.Fatal(err)
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Simulator instrumentation is process-global; another test's server
	// may have re-pointed it, so only require presence of the family.
	for _, want := range []string{
		"# TYPE sim_rounds_total counter",
		`sim_slots_total{type="single"}`,
		"sim_detector_classify_seconds_bucket",
		`rfidd_job_transitions_total{from="new",to="queued"} 1`,
		`rfidd_job_transitions_total{from="queued",to="running"} 1`,
		`rfidd_job_transitions_total{from="running",to="done"} 1`,
		"rfidd_cache_hit_ratio",
		"rfidd_worker_utilisation",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestTraceEndpoint covers the per-experiment trace route: Chrome JSON
// with round spans, the JSONL flavour, and both 404 shapes.
func TestTraceEndpoint(t *testing.T) {
	_, c := startServer(t, Options{Workers: 1, QueueDepth: 8})
	ctx := context.Background()

	resp, err := c.Submit(ctx, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, resp.ID, 0); err != nil {
		t.Fatal(err)
	}

	code, body := get(t, c.BaseURL+"/v1/experiments/"+resp.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("trace status = %d: %s", code, body)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &trace); err != nil {
		t.Fatalf("trace is not Chrome JSON: %v", err)
	}
	var rounds int
	for _, ev := range trace.TraceEvents {
		if ev.Name == "round" {
			rounds++
		}
	}
	if rounds != fastCfg().Rounds {
		t.Errorf("trace has %d round spans, want %d", rounds, fastCfg().Rounds)
	}

	code, body = get(t, c.BaseURL+"/v1/experiments/"+resp.ID+"/trace?format=jsonl")
	if code != http.StatusOK {
		t.Fatalf("jsonl status = %d", code)
	}
	for i, ln := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("jsonl line %d: %v", i+1, err)
		}
	}

	if code, _ = get(t, c.BaseURL+"/v1/experiments/"+resp.ID+"/trace?format=bogus"); code != http.StatusBadRequest {
		t.Errorf("bogus format status = %d, want 400", code)
	}
	if code, _ = get(t, c.BaseURL+"/v1/experiments/nope/trace"); code != http.StatusNotFound {
		t.Errorf("unknown id status = %d, want 404", code)
	}

	// A cache-hit record has no run of its own, hence no trace.
	resp2, err := c.Submit(ctx, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if resp2.ID == resp.ID {
		t.Fatal("resubmission did not mint a new record")
	}
	if code, _ = get(t, c.BaseURL+"/v1/experiments/"+resp2.ID+"/trace"); code != http.StatusNotFound {
		t.Errorf("cached record trace status = %d, want 404", code)
	}
}

// TestTraceDisabled checks a negative TraceCapacity turns the recorder
// off entirely: even a run record reports no trace.
func TestTraceDisabled(t *testing.T) {
	_, c := startServer(t, Options{Workers: 1, QueueDepth: 8, TraceCapacity: -1})
	ctx := context.Background()
	resp, err := c.Submit(ctx, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, resp.ID, 0); err != nil {
		t.Fatal(err)
	}
	if code, _ := get(t, c.BaseURL+"/v1/experiments/"+resp.ID+"/trace"); code != http.StatusNotFound {
		t.Errorf("trace status with tracing disabled = %d, want 404", code)
	}
}

// TestPoolTraceEndpoint checks /debug/trace serves the worker-pool
// lifecycle trace as Chrome JSON.
func TestPoolTraceEndpoint(t *testing.T) {
	_, c := startServer(t, Options{Workers: 1, QueueDepth: 8})
	code, body := get(t, c.BaseURL+"/debug/trace")
	if code != http.StatusOK {
		t.Fatalf("/debug/trace status = %d", code)
	}
	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &trace); err != nil {
		t.Fatalf("/debug/trace not Chrome JSON: %v", err)
	}
}

// TestPprofGated checks the pprof handlers exist only behind the option.
func TestPprofGated(t *testing.T) {
	_, c := startServer(t, Options{Workers: 1})
	if code, _ := get(t, c.BaseURL+"/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("pprof served without EnablePprof: %d", code)
	}
	_, c2 := startServer(t, Options{Workers: 1, EnablePprof: true})
	code, body := get(t, c2.BaseURL+"/debug/pprof/cmdline")
	if code != http.StatusOK || len(body) == 0 {
		t.Errorf("pprof cmdline = %d (%d bytes), want 200 with body", code, len(body))
	}
}

// TestRequestLogging checks the slog request log carries method, path,
// status, and the submit log its cache-hit marker.
func TestRequestLogging(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(syncWriter{mu: &mu, w: &buf}, nil))
	_, c := startServer(t, Options{Workers: 1, QueueDepth: 8, Logger: logger})
	ctx := context.Background()

	resp, err := c.Submit(ctx, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, resp.ID, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, fastCfg()); err != nil { // cache hit
		t.Fatal(err)
	}

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	for _, want := range []string{
		`msg=request method=POST path=/v1/experiments status=202`,
		`msg="experiment submitted" id=` + resp.ID + " cache_hit=false",
		"cache_hit=true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("log stream missing %q:\n%s", want, out)
		}
	}
}

type syncWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (s syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
