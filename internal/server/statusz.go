package server

// GET /debug/statusz: a self-contained HTML snapshot of the service —
// pool load and saturation, cache effectiveness by origin, recent
// sweeps, retained traces, and the tail of the wide-event stream — for
// a human with a browser and no Prometheus. Everything here is served
// from in-memory state; rendering takes no locks longer than the
// snapshot copies require.

import (
	"fmt"
	"html/template"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/rescache"
)

var statuszTmpl = template.Must(template.New("statusz").Funcs(template.FuncMap{
	"dur": func(d time.Duration) string { return d.Round(time.Microsecond).String() },
	"pct": func(f float64) string { return fmt.Sprintf("%.0f%%", 100*f) },
	"ts":  func(t time.Time) string { return t.Format("15:04:05.000") },
}).Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>rfidd statusz</title>
<style>
body { font-family: monospace; margin: 1.5em; background: #fafafa; color: #222; }
h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.4em; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #bbb; padding: 2px 8px; text-align: left; }
th { background: #eee; }
.num { text-align: right; }
.muted { color: #888; }
</style></head><body>
<h1>rfidd statusz</h1>
<p>snapshot {{ts .Now}} &middot; up {{.Uptime}}</p>

<h2>worker pool</h2>
<table>
<tr><th>workers</th><th>busy</th><th>utilisation</th><th>queue</th><th>queue high-water</th><th>busy-seconds</th></tr>
<tr><td class="num">{{.Pool.Workers}}</td><td class="num">{{.Pool.Busy}}</td>
<td class="num">{{pct .Pool.Utilisation}}</td><td class="num">{{.Pool.QueueDepth}}</td>
<td class="num">{{.Pool.QueueHighWater}}</td><td class="num">{{printf "%.3f" .Pool.BusySeconds}}</td></tr>
</table>
<table>
<tr><th>submitted</th><th>done</th><th>failed</th><th>canceled</th><th>retries</th></tr>
<tr><td class="num">{{.Pool.Submitted}}</td><td class="num">{{.Pool.Done}}</td>
<td class="num">{{.Pool.Failed}}</td><td class="num">{{.Pool.Canceled}}</td>
<td class="num">{{.Pool.Retries}}</td></tr>
</table>

<h2>result cache</h2>
<table>
<tr><th>origin</th><th>hits</th><th>misses</th><th>hit ratio</th></tr>
<tr><td>job</td><td class="num">{{.JobCache.Hits}}</td><td class="num">{{.JobCache.Misses}}</td><td class="num">{{pct .JobCache.HitRatio}}</td></tr>
<tr><td>sweep</td><td class="num">{{.SweepCache.Hits}}</td><td class="num">{{.SweepCache.Misses}}</td><td class="num">{{pct .SweepCache.HitRatio}}</td></tr>
</table>
<p>{{.Cache.Entries}}/{{.Cache.Capacity}} entries &middot; {{.Experiments}} experiment records indexed</p>

<h2>sweeps</h2>
{{if .Sweeps}}<table>
<tr><th>id</th><th>status</th><th>cells</th><th>done</th><th>cached</th><th>coalesced</th><th>failed</th><th>canceled</th></tr>
{{range .Sweeps}}<tr><td>{{.ID}}</td><td>{{.Status}}</td>
<td class="num">{{.Counts.Cells}}</td><td class="num">{{.Counts.Done}}</td>
<td class="num">{{.Counts.Cached}}</td><td class="num">{{.Counts.Coalesced}}</td>
<td class="num">{{.Counts.Failed}}</td><td class="num">{{.Counts.Canceled}}</td></tr>
{{end}}</table>{{else}}<p class="muted">none</p>{{end}}

<h2>traces</h2>
{{if not .Tracing}}<p class="muted">service tracing disabled</p>
{{else if .Traces}}<table>
<tr><th>trace</th><th>spans</th><th>dropped</th><th>started</th></tr>
{{range .Traces}}<tr><td><a href="/v1/traces/{{.ID}}">{{.ID}}</a></td>
<td class="num">{{.Spans}}</td><td class="num">{{.Dropped}}</td><td>{{ts .StartedAt}}</td></tr>
{{end}}</table>{{else}}<p class="muted">none recorded yet</p>{{end}}

<h2>recent wide events <span class="muted">({{.WideTotal}} total)</span></h2>
{{if .Wide}}<table>
<tr><th>time</th><th>origin</th><th>id</th><th>status</th><th>alg</th><th>det</th><th>tags</th><th>frame</th><th>cache</th><th>queue wait</th><th>run</th><th>err</th></tr>
{{range .Wide}}<tr><td>{{ts .Time}}</td><td>{{.Origin}}</td><td>{{.ID}}</td>
<td>{{.Status}}</td><td>{{.Algorithm}}</td><td>{{.Detector}}</td>
<td class="num">{{.Tags}}</td><td class="num">{{.FrameSize}}</td><td>{{.Cache}}</td>
<td class="num">{{dur .QueueWait}}</td><td class="num">{{dur .RunTime}}</td><td>{{.Err}}</td></tr>
{{end}}</table>{{else}}<p class="muted">none yet</p>{{end}}
</body></html>
`))

// statuszData is the snapshot the template renders.
type statuszData struct {
	Now         time.Time
	Uptime      time.Duration
	Pool        poolView
	Cache       rescache.Stats
	JobCache    rescache.Stats
	SweepCache  rescache.Stats
	Experiments int64
	Sweeps      []SweepResponse
	Tracing     bool
	Traces      []obs.TraceSummary
	Wide        []wideEvent
	WideTotal   uint64
}

// poolView adds the derived utilisation to jobs.Stats for the template.
type poolView struct {
	Workers, Busy, QueueDepth, QueueHighWater int
	Submitted, Done, Failed, Canceled, Retries uint64
	BusySeconds                                float64
	Utilisation                                float64
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	ps := s.pool.Stats()
	d := statuszData{
		Now:    time.Now(),
		Uptime: time.Since(s.startedAt).Round(time.Second),
		Pool: poolView{
			Workers: ps.Workers, Busy: ps.Busy,
			QueueDepth: ps.QueueDepth, QueueHighWater: ps.QueueHighWater,
			Submitted: ps.Submitted, Done: ps.Done, Failed: ps.Failed,
			Canceled: ps.Canceled, Retries: ps.Retries,
			BusySeconds: ps.BusySeconds, Utilisation: ps.Utilisation(),
		},
		Cache:       s.cache.Stats(),
		JobCache:    s.cache.OriginStats(originJob),
		SweepCache:  s.cache.OriginStats(originSweep),
		Experiments: s.records.Load(),
		Tracing:     s.spans != nil,
		Wide:        s.wide.recent(32),
		WideTotal:   s.wide.count(),
	}
	s.mu.Lock()
	for i := len(s.sweepOrder) - 1; i >= 0 && len(d.Sweeps) < 16; i-- {
		if sw := s.sweepByID[s.sweepOrder[i]]; sw != nil {
			d.Sweeps = append(d.Sweeps, sweepResponseOf(sw.Snapshot()))
		}
	}
	s.mu.Unlock()
	if s.spans != nil {
		sums := s.spans.Summaries()
		if len(sums) > 16 { // newest are appended last; show the tail
			sums = sums[len(sums)-16:]
		}
		d.Traces = sums
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := statuszTmpl.Execute(w, d); err != nil && s.logger != nil {
		s.logger.Warn("statusz render failed", "err", err)
	}
}
